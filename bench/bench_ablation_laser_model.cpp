// Ablation AB1: does the trade-off depend on the laser wall-plug model?
// Re-runs the Fig. 5 sweep under (a) the Fig. 4-calibrated piecewise
// model and (b) the first-principles self-heating fixed-point model.
// The claim that must survive: uncoded > H(71,64) > H(7,4) in laser
// power at iso-BER, with roughly 2x separation, under both models.
#include <iostream>

#include "photecc/ecc/registry.hpp"
#include "photecc/link/snr_solver.hpp"
#include "photecc/math/table.hpp"
#include "photecc/math/units.hpp"

namespace {

void run_model(
    const std::string& title,
    const std::shared_ptr<const photecc::photonics::LaserPowerModel>&
        model) {
  using namespace photecc;
  link::MwsrParams params;
  params.laser_model = model;
  const link::MwsrChannel channel{params};
  const auto schemes = ecc::paper_schemes();

  std::cout << "--- " << title << " ---\n";
  std::cout << "max deliverable optical power: "
            << math::format_fixed(
                   math::as_micro(
                       channel.laser().max_optical_power(0.25)),
                   0)
            << " uW\n";
  math::TextTable table({"target BER", "w/o ECC [mW]", "H(71,64) [mW]",
                         "H(7,4) [mW]", "uncoded/H(71,64)"});
  for (const double ber : {1e-6, 1e-9, 1e-11, 1e-12}) {
    std::vector<std::string> row{math::format_sci(ber, 0)};
    double uncoded_power = 0.0, h7164_power = 0.0;
    for (const auto& code : schemes) {
      const auto point = link::solve_operating_point(channel, *code, ber);
      if (code->name() == "w/o ECC") uncoded_power = point.p_laser_w;
      if (code->name() == "H(71,64)") h7164_power = point.p_laser_w;
      row.push_back(point.feasible
                        ? math::format_fixed(
                              math::as_milli(point.p_laser_w), 2)
                        : "infeasible");
    }
    row.push_back(uncoded_power > 0.0 && h7164_power > 0.0
                      ? math::format_fixed(uncoded_power / h7164_power, 2)
                      : "-");
    table.add_row(std::move(row));
  }
  table.render(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  using namespace photecc;
  std::cout << "=== Ablation AB1: laser wall-plug model ===\n\n";
  run_model("calibrated piecewise model (Fig. 4)",
            photonics::default_laser_model());
  run_model("self-heating fixed-point model (first principles)",
            std::make_shared<photonics::SelfHeatingVcselModel>());
  std::cout << "Shape check: the scheme ordering and the ~2x coded "
               "saving must hold under both models; only the absolute "
               "milliwatt values move.\n";
  return 0;
}
