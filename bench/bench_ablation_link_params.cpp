// Ablation AB2: sensitivity of the laser operating point to the link
// parameters — crosstalk on/off, eye penalty on/off, ONI count,
// waveguide length and channel spacing — all at BER 1e-11 for the
// uncoded scheme (the most stressed configuration).
//
// Each knob is one link-variant axis on the photecc::explore engine
// (codes x variants evaluated in parallel); the table rows are read
// straight out of the engine's cell results.
#include <iostream>

#include "photecc/explore/runner.hpp"
#include "photecc/math/table.hpp"
#include "photecc/math/units.hpp"

namespace {

using photecc::link::MwsrParams;

void sweep(const std::string& name,
           const std::vector<photecc::explore::LinkVariant>& cases,
           photecc::math::TextTable& table) {
  using namespace photecc;
  explore::ScenarioGrid grid;
  grid.codes({"w/o ECC", "H(7,4)"}).ber_targets({1e-11}).link_variants(cases);
  const auto result = explore::SweepRunner{}.run(grid);
  // Cells are code-minor: variant j holds uncoded at 2j, H(7,4) at 2j+1.
  for (std::size_t j = 0; j < cases.size(); ++j) {
    const auto& unc = result.cells[2 * j];
    const auto& h74 = result.cells[2 * j + 1];
    const auto& pu = unc.scheme->operating_point;
    table.add_row({
        name,
        cases[j].first,
        math::format_fixed(*unc.metric("total_loss_db"), 2),
        pu.feasible
            ? math::format_fixed(math::as_micro(pu.op_laser_w), 0)
            // append() avoids GCC 12's -Wrestrict false positive (PR105651).
            : std::string(">").append(
                  math::format_fixed(math::as_micro(pu.op_laser_w), 0)),
        pu.feasible ? math::format_fixed(math::as_milli(pu.p_laser_w), 2)
                    : "infeasible",
        h74.feasible
            ? math::format_fixed(math::as_milli(*h74.metric("p_laser_w")), 2)
            : "infeasible",
    });
  }
}

}  // namespace

int main() {
  using namespace photecc;
  std::cout << "=== Ablation AB2: link parameter sensitivity "
               "(BER 1e-11) ===\n\n";
  math::TextTable table({"knob", "value", "path loss [dB]",
                         "OPlaser unc [uW]", "Plaser unc [mW]",
                         "Plaser H(7,4) [mW]"});

  {
    std::vector<explore::LinkVariant> cases;
    MwsrParams p;
    cases.emplace_back("on (default)", p);
    p.include_crosstalk = false;
    cases.emplace_back("off", p);
    sweep("crosstalk", cases, table);
  }
  {
    std::vector<explore::LinkVariant> cases;
    MwsrParams p;
    cases.emplace_back("on (default)", p);
    p.include_eye_penalty = false;
    cases.emplace_back("off", p);
    sweep("eye penalty", cases, table);
  }
  {
    std::vector<explore::LinkVariant> cases;
    for (const std::size_t onis : {4u, 8u, 12u, 16u, 24u}) {
      MwsrParams p;
      p.oni_count = onis;
      cases.emplace_back(std::to_string(onis) + " ONIs", p);
    }
    sweep("ONI count", cases, table);
  }
  {
    std::vector<explore::LinkVariant> cases;
    for (const double cm : {2.0, 6.0, 10.0, 14.0}) {
      MwsrParams p;
      p.waveguide_length_m = cm * 1e-2;
      cases.emplace_back(math::format_fixed(cm, 0) + " cm", p);
    }
    sweep("waveguide length", cases, table);
  }
  {
    std::vector<explore::LinkVariant> cases;
    for (const double nm : {0.15, 0.30, 0.60, 1.20}) {
      MwsrParams p;
      p.grid.channel_spacing_m = nm * 1e-9;
      cases.emplace_back(math::format_fixed(nm, 2) + " nm", p);
    }
    sweep("channel spacing", cases, table);
  }
  table.render(std::cout);
  std::cout << "\nReadings: more ONIs / longer guides push the uncoded "
               "scheme toward (and past) the 700 uW ceiling first; "
               "tighter WDM spacing raises crosstalk and with it the "
               "required laser power; coding consistently buys back "
               "about half the laser power across the whole space.\n";
  return 0;
}
