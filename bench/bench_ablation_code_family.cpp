// Ablation AB3: the full code family on the Fig. 6b plane.  Sweeps the
// Hamming ladder (m = 3..7), the shortened codes, SECDED variants and
// repetition baselines at a fixed BER target, then prints the Pareto
// front — showing where the paper's two chosen codes sit inside the
// larger design space.
//
// The sweep itself is one declarative grid on the photecc::explore
// engine; the front comes from the engine's generic Pareto extraction.
#include <algorithm>
#include <iostream>

#include "photecc/core/report.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/explore/evaluators.hpp"
#include "photecc/explore/runner.hpp"
#include "photecc/math/units.hpp"

int main() {
  using namespace photecc;
  std::vector<std::string> code_names;
  for (const auto& code : ecc::all_known_codes())
    code_names.push_back(code->name());

  const explore::SweepRunner runner;
  for (const double ber : {1e-9, 1e-11}) {
    std::cout << "=== Ablation AB3: code family sweep @ BER "
              << math::format_sci(ber, 0) << " ===\n\n";
    explore::ScenarioGrid grid;
    grid.codes(code_names).ber_targets({ber});
    const auto result = runner.run(grid);
    const auto sweep = result.to_tradeoff_sweep();
    core::print_table(std::cout, "All codes ('*' = Pareto-optimal):",
                      core::pareto_table(sweep));

    // Name the front and locate the paper's picks.
    const auto front = result.pareto_front(explore::fig6b_objectives());
    std::cout << "Pareto front (by CT): ";
    for (std::size_t i = 0; i < front.size(); ++i) {
      if (i) std::cout << " -> ";
      std::cout << result.cells[front[i]].scheme->scheme;
    }
    std::cout << "\n";
    const auto on_front = [&](const std::string& name) {
      return std::any_of(front.begin(), front.end(), [&](std::size_t i) {
        return result.cells[i].scheme->scheme == name;
      });
    };
    std::cout << "Paper's picks: H(71,64) "
              << (on_front("H(71,64)") ? "ON" : "off") << " the front, "
              << "H(7,4) " << (on_front("H(7,4)") ? "ON" : "off")
              << " the front.\n\n";
  }

  std::cout << "Reading: the long Hamming codes (H(63,57), H(127,120), "
               "H(71,64)) crowd the low-CT end, the short strong codes "
               "and repetition own the low-power end at ruinous CT; the "
               "paper's pair spans the useful middle.\n";
  return 0;
}
