// Fig. 4 reproduction: electrical laser power Plaser as a function of
// the requested optical output OPlaser at 25 % chip activity.  The
// curve is linear (~5.2 % efficiency) up to ~500 uW and grows
// exponentially beyond as the temperature-dependent efficiency drops;
// the deliverable maximum is 700 uW.
#include <iostream>

#include "photecc/math/interp.hpp"
#include "photecc/math/table.hpp"
#include "photecc/math/units.hpp"
#include "photecc/photonics/laser.hpp"

int main() {
  using namespace photecc;
  const photonics::CalibratedVcselModel laser;
  const double activity = 0.25;

  std::cout << "=== Fig. 4: Plaser vs OPlaser at 25% chip activity ===\n\n";
  math::TextTable table(
      {"OPlaser [uW]", "Plaser [mW]", "efficiency [%]"});
  for (const double op_uw : math::linspace(0.0, 700.0, 29)) {
    const auto p = laser.electrical_power(math::micro_watts(op_uw),
                                          activity);
    if (!p) continue;
    const double eff = op_uw == 0.0 ? laser.params().base_efficiency
                                    : math::micro_watts(op_uw) / *p;
    table.add_row({math::format_fixed(op_uw, 0),
                   math::format_fixed(math::as_milli(*p), 3),
                   math::format_fixed(100.0 * eff, 2)});
  }
  table.render(std::cout);
  std::cout << "\nMax deliverable optical power: "
            << math::format_fixed(
                   math::as_micro(laser.max_optical_power(activity)), 0)
            << " uW (paper: 700 uW)\n";
  std::cout << "Calibration point: Plaser(655 uW) = "
            << math::format_fixed(
                   math::as_milli(
                       *laser.electrical_power(655e-6, activity)),
                   2)
            << " mW (paper's uncoded BER 1e-11 operating point: "
               "14.35 mW)\n";
  return 0;
}
