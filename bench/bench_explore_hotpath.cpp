// Explore hot-path benchmark: the lowered sweep plan against the
// legacy per-cell evaluator.
//
// Part 1 (headline): the 600-cell Fig. 6b-style grid (full code family
// x 6 BER targets x 5 waveguide lengths) evaluated cold — per-cell
// evaluate_link_cell, rebuilding the channel and re-running the code
// inversion for every cell — and through explore::LoweredPlan.  The
// exports must be byte-identical (cold vs plan, and plan at 1 vs 4
// threads); the plan must deliver >= 10x per-cell throughput including
// its own lowering time.
//
// Part 2 (scale): a 100 000-cell grid (codes x 100 BER targets x 5
// links x 5 ONI counts x 2 modulations) executed plan-only, sequential
// and multi-threaded — the datapoint that the hot path holds its
// throughput when the grid outgrows any per-cell approach.
//
// Usage: bench_explore_hotpath [--smoke]
//   --smoke: a 12-cell grid, cold-vs-plan and 1-vs-4-thread byte
//   identity plus counter sanity only (no timing assertion — CI runs
//   this in Debug).  Exit code != 0 on any identity or counter failure.
#include <chrono>
#include <cmath>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "photecc/ecc/registry.hpp"
#include "photecc/explore/evaluators.hpp"
#include "photecc/explore/plan.hpp"
#include "photecc/explore/runner.hpp"
#include "photecc/math/parallel.hpp"
#include "photecc/spec/builder.hpp"
#include "photecc/spec/run.hpp"

namespace {

using namespace photecc;

std::vector<std::string> all_code_names() {
  std::vector<std::string> names;
  for (const auto& code : ecc::all_known_codes())
    names.push_back(code->name());
  return names;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Cold reference: the legacy per-cell path, sequential.
explore::ExperimentResult run_cold(const explore::ScenarioGrid& grid) {
  const explore::SweepRunner runner{{1}};
  return runner.run(grid, explore::SweepRunner::Evaluator{
                              explore::evaluate_link_cell});
}

/// Byte-compares two results' exports; reports and returns false on
/// mismatch.
bool identical_exports(const explore::ExperimentResult& a,
                       const explore::ExperimentResult& b,
                       const std::string& what) {
  if (a.csv() == b.csv() && a.json() == b.json()) return true;
  std::cerr << "FAILED: " << what << " exports differ\n";
  return false;
}

bool check(bool condition, const std::string& what) {
  if (!condition) std::cerr << "FAILED: " << what << "\n";
  return condition;
}

int run_smoke() {
  const spec::ExperimentSpec experiment =
      spec::SpecBuilder()
          .codes(explore::paper_scheme_names())
          .ber_targets({1e-8, 1e-10})
          .links({"2 cm", "4 cm"})
          .build();
  const explore::ScenarioGrid grid = spec::lower(experiment);
  const auto cold = run_cold(grid);

  const explore::LoweredPlan plan{grid};
  const auto sequential = plan.execute(1);
  const auto parallel = plan.execute(4);

  bool ok = identical_exports(cold, sequential, "cold vs plan");
  ok &= identical_exports(sequential, parallel, "1 vs 4 thread plan");
  const auto& stats = *sequential.stats;
  ok &= check(stats.cells == 12, "12 cells executed");
  ok &= check(stats.channels_lowered == 2, "2 channel combos lowered");
  ok &= check(stats.root_solves == 6, "6 (code, BER) root solves");
  ok &= check(stats.warm_reuses == 6, "6 warm reuses");
  ok &= check(stats.solver_iterations > 0, "solver iterations counted");
  if (!ok) return 1;
  std::cout << "smoke OK: 12-cell grid byte-identical cold vs plan and 1 "
               "vs 4 threads; counters "
            << stats.json() << "\n";
  return 0;
}

int run_full() {
  // --- Part 1: the 600-cell Fig. 6b-style grid, cold vs lowered.
  const spec::ExperimentSpec headline =
      spec::SpecBuilder()
          .name("hotpath-600")
          .codes(all_code_names())
          .ber_targets({1e-6, 1e-7, 1e-8, 1e-9, 1e-10, 1e-11})
          .links({"2 cm", "4 cm", "6 cm", "10 cm", "14 cm"})
          .build();
  const explore::ScenarioGrid grid = spec::lower(headline);

  auto start = std::chrono::steady_clock::now();
  const auto cold = run_cold(grid);
  const double cold_s = seconds_since(start);

  start = std::chrono::steady_clock::now();
  const explore::LoweredPlan plan{grid};
  const auto lowered = plan.execute(1);
  const double plan_s = seconds_since(start);  // lowering + execution
  const auto parallel = plan.execute(4);

  bool ok = identical_exports(cold, lowered, "600-cell cold vs plan");
  ok &= identical_exports(lowered, parallel, "600-cell 1 vs 4 threads");

  const double speedup = plan_s > 0.0 ? cold_s / plan_s : 0.0;
  const auto& stats = *lowered.stats;

  // --- Part 2: plan-only scaling datapoint, >= 100k cells.
  std::vector<double> dense_bers;
  for (int i = 0; i < 100; ++i)
    dense_bers.push_back(std::pow(10.0, -4.0 - 9.0 * i / 99.0));
  const spec::ExperimentSpec scale =
      spec::SpecBuilder()
          .name("hotpath-scale")
          .codes(all_code_names())
          .ber_targets(dense_bers)
          .links({"2 cm", "4 cm", "6 cm", "10 cm", "14 cm"})
          .oni_counts({4, 8, 12, 16, 32})
          .modulations({"ook", "pam4"})
          .build();
  const explore::ScenarioGrid scale_grid = spec::lower(scale);
  const explore::LoweredPlan scale_plan{scale_grid};
  const auto scale_seq = scale_plan.execute(1);
  const auto scale_par = scale_plan.execute(0);
  ok &= identical_exports(scale_seq, scale_par, "scale 1 vs N threads");
  const auto& scale_stats = *scale_seq.stats;

  std::cout << "{\n"
            << "  \"benchmark\": \"explore_hotpath\",\n"
            << "  \"hardware_concurrency\": "
            << std::thread::hardware_concurrency() << ",\n"
            << "  \"threads_available\": " << math::default_thread_count()
            << ",\n"
            << "  \"headline_cells\": " << cold.cells.size() << ",\n"
            << "  \"cold_s\": " << cold_s << ",\n"
            << "  \"plan_s\": " << plan_s << ",\n"
            << "  \"speedup\": " << speedup << ",\n"
            << "  \"identical_output\": " << (ok ? "true" : "false") << ",\n"
            << "  \"headline_plan\": " << stats.json() << ",\n"
            << "  \"scale_cells\": " << scale_seq.cells.size() << ",\n"
            << "  \"scale_sequential_s\": " << scale_seq.wall_time_s << ",\n"
            << "  \"scale_parallel_s\": " << scale_par.wall_time_s << ",\n"
            << "  \"scale_plan\": " << scale_stats.json() << "\n"
            << "}\n";

  ok &= check(speedup >= 10.0, "plan >= 10x per-cell throughput");
  ok &= check(scale_seq.cells.size() >= 100000,
              "scaling grid >= 100k cells");
  // The parallel-speedup expectation only makes sense with real cores:
  // on a 1-core container thread-pool overhead dominates a sub-ms
  // workload, so such hosts pin only the byte-identity contract above.
  if (std::thread::hardware_concurrency() > 1)
    ok &= check(scale_par.wall_time_s < scale_seq.wall_time_s,
                "parallel 100k-cell run beats sequential on a multicore "
                "host");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  try {
    return smoke ? run_smoke() : run_full();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
