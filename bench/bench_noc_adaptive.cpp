// The paper's future-work experiment: application traffic on the MWSR
// ONoC with the Optical Link Energy/Performance Manager selecting the
// scheme per message.  Compares static (uncoded-only, H(7,4)-only,
// H(71,64)-only) against the adaptive manager on a mixed real-time +
// multimedia workload, with and without laser gating [ref 9].
#include <iostream>

#include "photecc/ecc/registry.hpp"
#include "photecc/math/table.hpp"
#include "photecc/math/units.hpp"
#include "photecc/noc/simulator.hpp"

namespace {

using namespace photecc;

noc::MixedTraffic make_workload() {
  std::vector<noc::StreamingTraffic::Stream> streams;
  for (std::size_t s = 0; s < 4; ++s) {
    noc::StreamingTraffic::Stream stream;
    stream.source = s;
    stream.destination = (s + 6) % 12;
    stream.period_s = 2e-6;
    stream.frame_bits = 8192;
    stream.deadline_fraction = 0.25;
    stream.cls = noc::TrafficClass::kRealTime;
    streams.push_back(stream);
  }
  auto rt = std::make_shared<noc::StreamingTraffic>(streams);
  auto mm = std::make_shared<noc::UniformRandomTraffic>(
      12, 5e6, 65536, noc::TrafficClass::kMultimedia);
  auto be = std::make_shared<noc::UniformRandomTraffic>(
      12, 2e6, 4096, noc::TrafficClass::kBestEffort);
  return noc::MixedTraffic({rt, mm, be});
}

noc::NocConfig adaptive_config() {
  noc::NocConfig config;
  config.scheme_menu = ecc::paper_schemes();
  config.class_requirements[noc::TrafficClass::kRealTime] =
      noc::ClassRequirements{1e-9, core::Policy::kMinTime, 1.0,
                             std::nullopt};
  config.class_requirements[noc::TrafficClass::kMultimedia] =
      noc::ClassRequirements{1e-9, core::Policy::kMinPower, std::nullopt,
                             std::nullopt};
  config.class_requirements[noc::TrafficClass::kBestEffort] =
      noc::ClassRequirements{1e-9, core::Policy::kMinEnergy, std::nullopt,
                             std::nullopt};
  return config;
}

noc::NocConfig static_config(const char* code) {
  noc::NocConfig config;
  config.scheme_menu = {ecc::make_code(code)};
  config.default_requirements.target_ber = 1e-9;
  config.class_requirements.clear();
  return config;
}

void report_row(math::TextTable& table, const std::string& label,
                const noc::NocRunResult& result) {
  const auto& s = result.stats;
  table.add_row({
      label,
      std::to_string(s.delivered),
      std::to_string(s.deadline_misses),
      math::format_fixed(s.mean_latency_s * 1e9, 1),
      math::format_fixed(s.p95_latency_s * 1e9, 1),
      math::format_fixed(
          math::as_pico(s.energy_per_bit_j(result.total_payload_bits)),
          2),
      math::format_fixed(s.laser_energy_j * 1e6, 2),
      math::format_fixed(s.idle_laser_energy_j * 1e6, 2),
  });
}

}  // namespace

int main() {
  const double horizon = 200e-6;
  const std::uint64_t seed = 2017;
  const auto workload = make_workload();

  std::cout << "=== NoC experiment: adaptive manager vs static schemes "
               "(12 ONIs, 16 lambdas, 200 us, mixed RT/MM/BE) ===\n\n";

  math::TextTable table({"configuration", "delivered", "deadline misses",
                         "mean lat [ns]", "p95 lat [ns]", "E/bit [pJ]",
                         "laser E [uJ]", "idle laser E [uJ]"});

  for (const bool gating : {true, false}) {
    for (const auto& [label, config] :
         std::vector<std::pair<std::string, noc::NocConfig>>{
             {"adaptive", adaptive_config()},
             {"static w/o ECC", static_config("w/o ECC")},
             {"static H(71,64)", static_config("H(71,64)")},
             {"static H(7,4)", static_config("H(7,4)")}}) {
      noc::NocConfig run_config = config;
      run_config.laser_gating = gating;
      const noc::NocSimulator sim(run_config);
      const auto result = sim.run(workload, horizon, seed);
      report_row(table,
                 label + (gating ? " (gated)" : " (always-on)"), result);
    }
  }
  table.render(std::cout);

  // Scheme usage of the adaptive run, to show the manager at work.
  const noc::NocSimulator sim(adaptive_config());
  const auto result = sim.run(workload, horizon, seed);
  std::cout << "\nAdaptive scheme usage: ";
  bool first = true;
  for (const auto& [scheme, count] : result.stats.scheme_usage) {
    if (!first) std::cout << ", ";
    std::cout << scheme << " x" << count;
    first = false;
  }
  std::cout << "\n\nReadings: the adaptive manager sends real-time frames "
               "uncoded (CT 1) and bulk traffic coded (half the laser "
               "power); laser gating removes the idle burn that "
               "dominates the always-on rows at this utilisation.\n";
  return 0;
}
