// Fig. 6a reproduction: power contributions in an MWSR channel per
// wavelength at BER = 1e-11 — P_ENC+DEC, P_MR and P_laser per scheme —
// plus the per-waveguide and whole-interconnect roll-ups of Section V-C.
#include <iostream>

#include "photecc/core/report.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/math/units.hpp"

int main() {
  using namespace photecc;
  const link::MwsrChannel channel{link::MwsrParams{}};
  const auto metrics =
      core::evaluate_schemes(channel, ecc::paper_schemes(), 1e-11);

  std::cout << "=== Fig. 6a: Pchannel breakdown per wavelength "
               "@ BER 1e-11 ===\n\n";
  core::print_table(std::cout, "Per-wavelength breakdown:",
                    core::breakdown_table(metrics));
  core::print_table(std::cout, "Full operating points:",
                    core::metrics_table(metrics));

  std::cout << "Section V-C roll-ups (16 wavelengths/waveguide, "
               "16 waveguides/channel, 12 ONIs):\n";
  math::TextTable rollup({"scheme", "per waveguide [mW]",
                          "interconnect [W]", "saving vs w/o ECC [W]"});
  const double base = metrics[0].p_interconnect_w;
  for (const auto& m : metrics) {
    rollup.add_row({m.scheme,
                    math::format_fixed(math::as_milli(m.p_waveguide_w), 1),
                    math::format_fixed(m.p_interconnect_w, 2),
                    math::format_fixed(base - m.p_interconnect_w, 2)});
  }
  rollup.render(std::cout);
  std::cout << "\nPaper: 251 mW -> 136 mW per waveguide with H(71,64); "
               "~22 W total interconnect saving.\n"
               "Paper Fig. 6a x-labels read 'H(63,57)' but the series is "
               "H(71,64) (typo in the paper).\n";
  return 0;
}
