// Ablation AB6: burst errors.  The paper's analysis assumes independent
// bit errors; real optical links also see error bursts (laser
// transients, thermal drift events).  This bench runs the bit-true
// H(7,4) stack over a Gilbert-Elliott channel and shows that block
// interleaving across the 16 parallel codewords restores the coding
// gain that bursts destroy.
#include <iostream>

#include "photecc/channel_sim/burst_channel.hpp"
#include "photecc/ecc/hamming.hpp"
#include "photecc/ecc/interleaver.hpp"
#include "photecc/math/rng.hpp"
#include "photecc/math/table.hpp"

namespace {

using namespace photecc;

ecc::BitVec random_word(std::size_t size, math::Xoshiro256& rng) {
  ecc::BitVec w(size);
  for (std::size_t i = 0; i < size; ++i) w.set(i, rng.bernoulli(0.5));
  return w;
}

struct RunResult {
  double payload_ber;
  double raw_ber;
};

RunResult run(const channel_sim::GilbertElliottParams& params,
              bool interleave, std::uint64_t frames, std::uint64_t seed) {
  const ecc::HammingCode h74(3);
  const ecc::BlockInterleaver il(16, 7);
  channel_sim::GilbertElliottChannel channel(params, seed);
  math::Xoshiro256 rng(seed ^ 0xF00D);
  std::uint64_t payload_errors = 0, payload_bits = 0;
  std::uint64_t raw_errors = 0, raw_bits = 0;
  for (std::uint64_t f = 0; f < frames; ++f) {
    std::vector<ecc::BitVec> messages;
    ecc::BitVec frame(0);
    for (int b = 0; b < 16; ++b) {
      messages.push_back(random_word(4, rng));
      frame = frame.concat(h74.encode(messages.back()));
    }
    const ecc::BitVec wire = interleave ? il.interleave(frame) : frame;
    const ecc::BitVec received_wire = channel.transmit(wire);
    raw_errors += wire.distance(received_wire);
    raw_bits += wire.size();
    const ecc::BitVec received =
        interleave ? il.deinterleave(received_wire) : received_wire;
    for (int b = 0; b < 16; ++b) {
      const auto decoded = h74.decode(received.slice(b * 7, 7));
      payload_errors += messages[b].distance(decoded.message);
      payload_bits += 4;
    }
  }
  return {static_cast<double>(payload_errors) /
              static_cast<double>(payload_bits),
          static_cast<double>(raw_errors) / static_cast<double>(raw_bits)};
}

}  // namespace

int main() {
  std::cout << "=== Ablation AB6: burst errors and interleaving "
               "(bit-true H(7,4) x16, Gilbert-Elliott channel) ===\n\n";
  math::TextTable table({"mean burst [bits]", "raw BER", "coded, plain",
                         "coded, interleaved", "interleaving gain"});
  const std::uint64_t frames = 30000;
  for (const double mean_burst : {2.0, 5.0, 10.0, 16.0}) {
    channel_sim::GilbertElliottParams params;
    params.p_bad_to_good = 1.0 / mean_burst;
    // Keep the long-run raw BER roughly constant (~1.5e-3) while the
    // burstiness varies.
    params.p_good_to_bad = 5e-3 / mean_burst;
    params.error_prob_good = 0.0;
    params.error_prob_bad = 0.3;
    const RunResult plain = run(params, false, frames, 0xAB6);
    const RunResult interleaved = run(params, true, frames, 0xAB6);
    table.add_row({
        math::format_fixed(mean_burst, 0),
        math::format_sci(plain.raw_ber, 2),
        math::format_sci(plain.payload_ber, 2),
        math::format_sci(interleaved.payload_ber, 2),
        interleaved.payload_ber > 0.0
            ? math::format_fixed(
                  plain.payload_ber / interleaved.payload_ber, 1) + "x"
            // append() avoids GCC 12's -Wrestrict false positive (PR105651).
            : std::string(">").append(math::format_fixed(
                  plain.payload_ber * static_cast<double>(frames) * 64.0,
                  0)) + "x",
    });
  }
  table.render(std::cout);
  std::cout << "\nReading: without interleaving, a burst longer than one "
               "codeword defeats single-error correction and the coded "
               "BER approaches the raw BER; spreading the 16 codewords "
               "column-wise makes bursts up to 16 bits look like single "
               "errors per codeword, restoring orders of magnitude.  "
               "The paper's independent-error assumption is therefore "
               "safe only with an interleaved mapping — a one-gate-cost "
               "wiring choice in the serializer.\n";
  return 0;
}
