// Ablation AB5: electrical-layer activity (chip temperature) sweep.
// The paper evaluates at 25 % activity; here the activity varies from
// idle to saturated, derating the laser (Li et al. [8] thermal
// methodology) — showing where each scheme stops reaching BER 1e-11 and
// how coding extends the thermal envelope.
#include <iostream>

#include "photecc/ecc/registry.hpp"
#include "photecc/link/snr_solver.hpp"
#include "photecc/math/table.hpp"
#include "photecc/math/units.hpp"

int main() {
  using namespace photecc;
  const double target_ber = 1e-11;
  const auto schemes = ecc::paper_schemes();

  std::cout << "=== Ablation AB5: chip activity (thermal) sweep @ BER "
            << math::format_sci(target_ber, 0) << " ===\n\n";
  math::TextTable table({"activity", "OPmax [uW]", "w/o ECC [mW]",
                         "H(71,64) [mW]", "H(7,4) [mW]"});
  for (const double activity :
       {0.0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0}) {
    link::MwsrParams params;
    params.chip_activity = activity;
    const link::MwsrChannel channel{params};
    std::vector<std::string> row{
        math::format_fixed(100.0 * activity, 0) + " %",
        math::format_fixed(
            math::as_micro(channel.laser().max_optical_power(activity)),
            0)};
    for (const auto& code : schemes) {
      const auto point =
          link::solve_operating_point(channel, *code, target_ber);
      row.push_back(
          point.feasible
              ? math::format_fixed(math::as_milli(point.p_laser_w), 2)
              : "infeasible");
    }
    table.add_row(std::move(row));
  }
  table.render(std::cout);

  // Find each scheme's thermal ceiling: the highest activity at which
  // the target is still reachable.
  std::cout << "\nThermal envelope (highest activity where BER "
            << math::format_sci(target_ber, 0) << " is reachable):\n";
  for (const auto& code : schemes) {
    double best = -1.0;
    for (double activity = 0.0; activity <= 1.0; activity += 0.01) {
      link::MwsrParams params;
      params.chip_activity = activity;
      const link::MwsrChannel channel{params};
      if (link::solve_operating_point(channel, *code, target_ber)
              .feasible) {
        best = activity;
      }
    }
    std::cout << "  " << code->name() << ": "
              << (best < 0.0 ? "never"
                             : math::format_fixed(100.0 * best, 0) + " %")
              << "\n";
  }
  std::cout << "\nReading: the uncoded scheme falls off the thermal "
               "cliff first (its operating point already sits near the "
               "700 uW ceiling at 25 % activity); the coded schemes keep "
               "the link usable deep into high-activity regimes — "
               "coding as thermal headroom, the paper's hot-spot "
               "argument quantified.\n";
  return 0;
}
