// Ablation AB4: forward error correction (the paper's approach) vs
// ARQ detect-and-retransmit on the same channel.
//
// ARQ can run the laser far below any FEC operating point because
// detection tolerates a high raw error rate — but its completion time
// is a random variable (resends) and its quality floor is the CRC
// aliasing probability, while FEC gives a deterministic CT and any
// target BER the SNR affords.
#include <iostream>

#include "photecc/core/arq.hpp"
#include "photecc/core/channel_power.hpp"
#include "photecc/core/harq.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/math/table.hpp"
#include "photecc/math/units.hpp"

int main() {
  using namespace photecc;
  const link::MwsrChannel channel{link::MwsrParams{}};

  std::cout << "=== Ablation AB4: FEC vs ARQ at iso-quality ===\n\n";
  math::TextTable table({"scheme", "target BER", "raw p", "Plaser [mW]",
                         "CT (expected)", "E/bit [pJ]", "1-pass success"});

  for (const double ber : {1e-9, 1e-11, 1e-13}) {
    for (const char* name : {"w/o ECC", "H(71,64)", "H(7,4)"}) {
      const auto m = core::evaluate_scheme(
          channel, *ecc::make_code(name), ber);
      table.add_row({
          name, math::format_sci(ber, 0),
          math::format_sci(m.operating_point.raw_ber, 1),
          m.feasible
              ? math::format_fixed(math::as_milli(m.p_laser_w), 2)
              : "infeasible",
          math::format_fixed(m.ct, 3) + " (fixed)",
          m.feasible
              ? math::format_fixed(math::as_pico(m.energy_per_bit_j), 2)
              : "-",
          "100 %",
      });
    }
    {
      // Type-I HARQ: SECDED corrects singles, retransmits on detected
      // doubles — the middle ground of the taxonomy.
      const core::HarqScheme harq;
      const auto point = harq.solve(channel, ber);
      const auto m = harq.evaluate(channel, ber);
      table.add_row({
          harq.name(), math::format_sci(ber, 0),
          point.raw_ber > 0.0 ? math::format_sci(point.raw_ber, 1) : "-",
          point.feasible
              ? math::format_fixed(math::as_milli(point.p_laser_w), 2)
              : "infeasible",
          point.feasible ? math::format_fixed(point.effective_ct, 3)
                         : "-",
          m.feasible
              ? math::format_fixed(math::as_pico(m.energy_per_bit_j), 2)
              : "-",
          point.feasible
              ? math::format_fixed(
                    100.0 * (1.0 - point.retransmission_rate), 1) + " %"
              : "-",
      });
    }
    for (const unsigned crc : {8u, 16u, 32u}) {
      core::ArqParams params;
      params.crc_width = crc;
      const core::ArqScheme scheme(params);
      const auto point = scheme.solve(channel, ber);
      const auto m = scheme.evaluate(channel, ber);
      table.add_row({
          scheme.name(), math::format_sci(ber, 0),
          point.raw_ber > 0.0 ? math::format_sci(point.raw_ber, 1) : "-",
          point.feasible
              ? math::format_fixed(math::as_milli(point.p_laser_w), 2)
              : "infeasible",
          point.feasible ? math::format_fixed(point.effective_ct, 3)
                         : "-",
          m.feasible
              ? math::format_fixed(math::as_pico(m.energy_per_bit_j), 2)
              : "-",
          point.feasible
              ? math::format_fixed(
                    100.0 * (1.0 - point.frame_error_rate), 1) + " %"
              : "-",
      });
    }
    table.add_separator();
  }
  table.render(std::cout);

  std::cout
      << "\nReadings: ARQ+CRC32 runs the laser at a fraction of every "
         "FEC point (raw p ~ 1e-2 is fine when errors only need "
         "*detecting*), and even its expected CT beats H(7,4) — but "
         "1 frame in ~12 needs a resend, so single-pass latency is not "
         "guaranteed (the paper's real-time case), and narrow CRCs hit "
         "their aliasing floor: CRC-8 must run nearly as hot as the "
         "uncoded link at deep targets.  Type-I HARQ (SECDED) sits in "
         "between: its p^3 quality floor undercuts the Hamming FEC "
         "points in laser power while keeping the resend rate orders of "
         "magnitude below pure ARQ's.\n";
  return 0;
}
