// Cooling-code trade-off benchmark: weight-bounded (cooling) codes on
// the (CT, Pchannel, thermal-ceiling) surface next to the FEC menu.
//
// A cooling code COOL(<inner>, w) guarantees every transmitted word has
// at most w + (n - m) hot wires, so the laser derating sees
// activity * duty_bound instead of the raw chip activity — a lever that
// attacks the heat source itself rather than the BER requirement.
//
// Part 1 (static window): on a long hot channel, each scheme's thermal
// ceiling — the highest activity where the target BER stays reachable.
// The headline: the best cooling-coded scheme sustains a strictly wider
// feasible activity window than the best FEC-only scheme, at a
// quantified rate cost.
//
// Part 2 (closed loop): a streaming workload through the PR 5
// ramp + self-heating environment.  The NoC simulator weights the
// self-heating feedback by the menu's duty bound, so the cooling-coded
// channel both heats less and keeps its operating point feasible
// longer — strictly fewer dropped_thermal at equal offered messages.
//
// Part 3 (export identity): the cooling axis of explore::ScenarioGrid
// through the lowered-plan hot path — CSV exports are byte-identical at
// 1 vs 4 threads and to the legacy evaluate_link_cell path.
//
// Usage: bench_cooling_tradeoff [--smoke]   (--smoke trims the sweeps;
// the dominance and byte-identity pins are asserted in both modes —
// exit code != 0 on any violation).
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "photecc/cooling/cooling_code.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/env/environment.hpp"
#include "photecc/explore/evaluators.hpp"
#include "photecc/explore/grid.hpp"
#include "photecc/explore/runner.hpp"
#include "photecc/link/snr_solver.hpp"
#include "photecc/math/table.hpp"
#include "photecc/noc/simulator.hpp"

namespace {

using namespace photecc;

constexpr double kTargetBer = 1e-11;

/// The hot channel every part runs on: the paper link stretched to a
/// 14 cm waveguide with 16 ONIs — enough loss that even the strongest
/// FEC scheme hits its thermal ceiling below full activity.
link::MwsrParams hot_channel_params() {
  link::MwsrParams params;
  params.waveguide_length_m = 0.14;
  params.oni_count = 16;
  return params;
}

/// Highest activity (within `step` resolution) at which `code` still
/// reaches the target BER — the scheme's thermal ceiling.  The solver
/// multiplies the activity the laser derating sees by the code's
/// transmit_duty_bound(), which is where cooling codes win.
double thermal_ceiling(const link::MwsrChannel& channel,
                       const ecc::BlockCode& code, double step) {
  double best = 0.0;
  for (double activity = 0.0; activity <= 1.0 + 1e-12; activity += step) {
    const env::EnvironmentSample sample{0.0, std::min(activity, 1.0)};
    if (link::solve_operating_point(channel, code, kTargetBer, sample)
            .feasible)
      best = sample.activity;
  }
  return best;
}

struct CeilingRow {
  std::string name;
  double rate = 0.0;
  double duty_bound = 1.0;
  double ceiling = 0.0;
};

/// Part 1: the static feasible-activity window per scheme.  Returns
/// false when the cooling side fails to strictly dominate.
bool static_window(bool smoke) {
  cooling::register_cooling_codes();
  const link::MwsrChannel channel{hot_channel_params()};
  const double step = smoke ? 0.02 : 0.005;

  std::cout << "=== Static window: thermal ceilings on the hot channel "
               "(14 cm, 16 ONIs) @ BER "
            << math::format_sci(kTargetBer, 0) << " ===\n\n";

  const std::vector<std::string> fec_menu = {
      "w/o ECC", "H(71,64)", "H(7,4)", "BCH(15,7,2)", "REP(3,1)"};
  const std::vector<std::string> cooling_menu = {
      "COOL(H(71,64),16)", "COOL(BCH(15,7,2),2)", "COOL(BCH(15,7,2),3)",
      "COOL(64,16)"};

  const auto evaluate = [&](const std::vector<std::string>& names) {
    std::vector<CeilingRow> rows;
    for (const std::string& name : names) {
      const auto code = ecc::make_code(name);
      CeilingRow row;
      row.name = name;
      row.rate = static_cast<double>(code->message_length()) /
                 static_cast<double>(code->block_length());
      row.duty_bound = code->transmit_duty_bound();
      row.ceiling = thermal_ceiling(channel, *code, step);
      rows.push_back(std::move(row));
    }
    return rows;
  };
  const std::vector<CeilingRow> fec_rows = evaluate(fec_menu);
  const std::vector<CeilingRow> cooling_rows = evaluate(cooling_menu);

  math::TextTable table(
      {"scheme", "rate", "duty bound", "ceiling [%]", "window [%]"});
  const auto add_rows = [&](const std::vector<CeilingRow>& rows) {
    for (const CeilingRow& row : rows)
      table.add_row({row.name, math::format_fixed(row.rate, 3),
                     math::format_fixed(row.duty_bound, 3),
                     math::format_fixed(100.0 * row.ceiling, 1),
                     math::format_fixed(100.0 * row.ceiling, 1)});
  };
  add_rows(fec_rows);
  add_rows(cooling_rows);
  table.render(std::cout);

  // Widest window first; ties go to the higher-rate scheme (the
  // cheaper assignment among equally feasible ones).
  const auto best = [](const std::vector<CeilingRow>& rows) {
    const CeilingRow* top = &rows.front();
    for (const CeilingRow& row : rows)
      if (row.ceiling > top->ceiling ||
          (row.ceiling == top->ceiling && row.rate > top->rate))
        top = &row;
    return *top;
  };
  const CeilingRow best_fec = best(fec_rows);
  const CeilingRow best_cooling = best(cooling_rows);

  std::cout << "\nHeadline: " << best_cooling.name
            << " sustains a feasible activity window of "
            << math::format_fixed(100.0 * best_cooling.ceiling, 1)
            << " % vs " << math::format_fixed(100.0 * best_fec.ceiling, 1)
            << " % for the best FEC-only scheme (" << best_fec.name
            << ") — "
            << math::format_fixed(
                   100.0 * (best_cooling.ceiling - best_fec.ceiling), 1)
            << " points wider, at a rate cost of "
            << math::format_fixed(best_fec.rate, 3) << " -> "
            << math::format_fixed(best_cooling.rate, 3) << ".\n";

  if (best_cooling.ceiling <= best_fec.ceiling) {
    std::cerr << "FAIL: cooling window is not strictly wider\n";
    return false;
  }
  return true;
}

/// Part 2: the closed NoC loop under ramp + self-heating.  Returns
/// false when the cooling menu fails the drop-dominance pin.
bool closed_loop(bool smoke) {
  const double horizon = smoke ? 3e-6 : 6e-6;
  const auto environment = env::EnvironmentTimeline::self_heating(
      0.25, 0.75, 4e-7);

  std::cout << "\n=== Closed loop: streaming through self-heating "
               "(baseline 25 %, gain 0.75, tau 0.4 us) ===\n\n";

  struct MenuResult {
    std::string name;
    std::uint64_t delivered = 0;
    std::uint64_t dropped_thermal = 0;
    std::uint64_t recalibrations = 0;
    double peak_activity = 0.0;
  };
  const auto run_menu = [&](const std::string& scheme) {
    noc::NocConfig config;
    config.oni_count = 16;
    config.link_params = hot_channel_params();
    config.link_params.environment = environment;
    config.scheme_menu = {ecc::make_code(scheme)};
    config.default_requirements.target_ber = kTargetBer;
    std::vector<noc::Message> schedule;
    const double period = smoke ? 50e-9 : 25e-9;
    for (std::uint64_t i = 0; static_cast<double>(i) * period < horizon;
         ++i) {
      noc::Message m;
      m.id = i;
      m.source = 1;
      m.destination = 0;
      m.payload_bits = 4096;
      m.creation_time_s = static_cast<double>(i) * period;
      schedule.push_back(m);
    }
    const auto result =
        noc::NocSimulator(config).run(std::move(schedule), horizon);
    MenuResult out;
    out.name = scheme;
    out.delivered = result.stats.delivered;
    out.dropped_thermal = result.stats.dropped_thermal;
    out.recalibrations = result.stats.recalibrations;
    out.peak_activity = result.stats.peak_activity;
    return out;
  };

  cooling::register_cooling_codes();
  const MenuResult fec = run_menu("BCH(15,7,2)");
  const MenuResult cool = run_menu("COOL(BCH(15,7,2),3)");

  math::TextTable table({"menu", "delivered", "dropped(thermal)",
                         "recalibrations", "peak activity [%]"});
  for (const MenuResult& r : {fec, cool})
    table.add_row({r.name, std::to_string(r.delivered),
                   std::to_string(r.dropped_thermal),
                   std::to_string(r.recalibrations),
                   math::format_fixed(100.0 * r.peak_activity, 1)});
  table.render(std::cout);

  std::cout << "\nHeadline: the cooling-coded channel drops "
            << fec.dropped_thermal - cool.dropped_thermal
            << " fewer messages to thermal infeasibility ("
            << cool.dropped_thermal << " vs " << fec.dropped_thermal
            << ") and delivers " << cool.delivered << " vs "
            << fec.delivered << " at equal offered load — the duty bound "
               "both lowers the self-heating feedback and keeps the "
               "operating point solvable.\n";

  if (cool.dropped_thermal >= fec.dropped_thermal ||
      cool.delivered < fec.delivered) {
    std::cerr << "FAIL: cooling menu does not dominate on thermal drops "
                 "at equal delivered messages\n";
    return false;
  }
  return true;
}

/// Part 3: the cooling axis through the explore engine — 1-vs-4-thread
/// and plan-vs-legacy export byte-identity.
bool export_identity() {
  std::cout << "\n=== Export identity: cooling axis through the lowered "
               "plan ===\n\n";
  explore::ScenarioGrid grid;
  grid.codes({"w/o ECC", "H(71,64)"})
      .cooling_weights({0, 16, 32})
      .ber_targets({1e-9, kTargetBer})
      .base_link(hot_channel_params());

  const auto sequential =
      explore::SweepRunner{{.threads = 1}}.run(grid);
  const auto parallel = explore::SweepRunner{{.threads = 4}}.run(grid);
  const auto legacy = explore::SweepRunner{{.threads = 1}}.run(
      grid, explore::evaluate_link_cell);

  const std::string csv1 = sequential.csv();
  const bool threads_identical = csv1 == parallel.csv();
  const bool legacy_identical = csv1 == legacy.csv();
  std::cout << grid.size() << " cells; 1-vs-4-thread CSV: "
            << (threads_identical ? "byte-identical" : "MISMATCH")
            << "; plan-vs-legacy CSV: "
            << (legacy_identical ? "byte-identical" : "MISMATCH") << "\n";
  if (!threads_identical || !legacy_identical) {
    std::cerr << "FAIL: cooling-axis exports are not byte-identical\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  bool ok = static_window(smoke);
  ok = closed_loop(smoke) && ok;
  ok = export_identity() && ok;
  return ok ? 0 : 1;
}
