// Optical-level Monte-Carlo validation: samples the actual MWSR
// detector photocurrent — ER-limited eye, Lorentzian crosstalk from
// random neighbour data, calibrated noise — and compares the measured
// BER against the analytic chain's two bounds: the no-crosstalk floor
// and the Eq. 4 worst case (all neighbours at '1').
#include <cstdlib>
#include <iostream>

#include "photecc/channel_sim/optical_mc.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/link/snr_solver.hpp"
#include "photecc/math/table.hpp"
#include "photecc/math/units.hpp"

int main() {
  using namespace photecc;
  std::uint64_t bits = 300000;
  if (const char* env = std::getenv("PHOTECC_MC_SAMPLES"))
    bits = std::strtoull(env, nullptr, 10);

  const link::MwsrChannel channel{link::MwsrParams{}};
  // Scan laser powers around the BER ~1e-2..1e-4 region where Monte
  // Carlo is conclusive.
  const auto uncoded = ecc::make_code("w/o ECC");
  const double op_ref =
      link::solve_operating_point(channel, *uncoded, 1e-3).op_laser_w;

  std::cout << "=== Optical-level Monte-Carlo vs the analytic chain ("
            << bits << " samples/point) ===\n\n";
  math::TextTable table({"OPlaser [uW]", "neighbours", "measured BER",
                         "no-xt floor", "worst case (Eq.4)",
                         "within bounds"});
  for (const double scale : {0.7, 0.85, 1.0, 1.15}) {
    for (const bool random_neighbours : {true, false}) {
      channel_sim::OpticalMcOptions options;
      options.bits = bits;
      options.random_neighbours = random_neighbours;
      const auto r = channel_sim::measure_optical_raw_ber(
          channel, op_ref * scale, options);
      const bool ok = r.interval.lower <= r.worst_case_ber &&
                      r.interval.upper >= r.no_crosstalk_ber * 0.5;
      table.add_row({
          math::format_fixed(math::as_micro(r.op_laser_w), 1),
          random_neighbours ? "random" : "all-'1'",
          math::format_sci(r.measured_ber, 2),
          math::format_sci(r.no_crosstalk_ber, 2),
          math::format_sci(r.worst_case_ber, 2),
          ok ? "yes" : "NO",
      });
    }
  }
  table.render(std::cout);
  std::cout << "\nReading: with random neighbour data the measured BER "
               "sits between the crosstalk-free floor and the paper's "
               "worst-case prediction — Eq. 4's all-'1' assumption is a "
               "true (and at this spacing, mild) upper bound, so laser "
               "powers sized by the analytic chain are safe.\n";
  return 0;
}
