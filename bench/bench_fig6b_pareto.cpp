// Fig. 6b reproduction: the (Pchannel, CT) power/performance plane for
// BER targets 1e-6 .. 1e-12.  The paper's claim: for every BER, all
// three schemes are Pareto-optimal (uncoded = fast & hungry, H(7,4) =
// slow & frugal, H(71,64) in between).
//
// Runs on the photecc::explore engine: the (code x BER) grid is declared
// once and evaluated by the parallel SweepRunner; per-BER fronts come
// from the engine's generic N-objective Pareto extraction with the
// paper's two objectives (CT, Pchannel), on the per-BER slices of the
// one evaluated grid.
#include <iostream>

#include "photecc/core/report.hpp"
#include "photecc/explore/evaluators.hpp"
#include "photecc/explore/runner.hpp"
#include "photecc/math/table.hpp"

int main() {
  using namespace photecc;
  const std::vector<double> bers{1e-6, 1e-8, 1e-10, 1e-12};

  explore::ScenarioGrid grid;
  grid.codes(explore::paper_scheme_names()).ber_targets(bers);
  const auto result = explore::SweepRunner{}.run(grid);

  std::cout << "=== Fig. 6b: power/performance trade-off wrt BER and "
               "ECC ===\n\n";
  core::print_table(std::cout,
                    "(CT, Pchannel) points; '*' = on the Pareto front:",
                    core::pareto_table(result.to_tradeoff_sweep()));

  std::cout << "Per-BER Pareto fronts:\n";
  for (const double ber : bers) {
    std::vector<explore::CellResult> slice;
    for (const auto& cell : result.cells)
      if (cell.label("target_ber") == math::format_sci(ber, 0))
        slice.push_back(cell);
    const auto front =
        explore::pareto_front_indices(slice, explore::fig6b_objectives());
    std::cout << "  BER " << math::format_sci(ber, 0) << ": ";
    for (std::size_t i = 0; i < front.size(); ++i) {
      if (i) std::cout << " -> ";
      std::cout << slice[front[i]].scheme->scheme;
    }
    std::cout << "  (" << front.size() << " of " << slice.size()
              << " schemes on the front)\n";
  }
  std::cout << "\nPaper: all coding techniques belong to the Pareto front "
               "for every BER; at 1e-12 the uncoded scheme drops out "
               "(infeasible).\n";
  return 0;
}
