// Fig. 6b reproduction: the (Pchannel, CT) power/performance plane for
// BER targets 1e-6 .. 1e-12.  The paper's claim: for every BER, all
// three schemes are Pareto-optimal (uncoded = fast & hungry, H(7,4) =
// slow & frugal, H(71,64) in between).
#include <iostream>

#include "photecc/core/report.hpp"
#include "photecc/ecc/registry.hpp"

int main() {
  using namespace photecc;
  const link::MwsrChannel channel{link::MwsrParams{}};
  const std::vector<double> bers{1e-6, 1e-8, 1e-10, 1e-12};
  const auto sweep =
      core::sweep_tradeoff(channel, ecc::paper_schemes(), bers);

  std::cout << "=== Fig. 6b: power/performance trade-off wrt BER and "
               "ECC ===\n\n";
  core::print_table(std::cout,
                    "(CT, Pchannel) points; '*' = on the Pareto front:",
                    core::pareto_table(sweep));

  std::cout << "Per-BER Pareto fronts:\n";
  for (const double ber : bers) {
    const auto one = core::sweep_tradeoff(channel, ecc::paper_schemes(),
                                          {ber});
    const auto front = one.pareto_front();
    std::cout << "  BER " << math::format_sci(ber, 0) << ": ";
    for (std::size_t i = 0; i < front.size(); ++i) {
      if (i) std::cout << " -> ";
      std::cout << one.points[front[i]].scheme;
    }
    std::cout << "  (" << front.size() << " of "
              << one.points.size() << " schemes on the front)\n";
  }
  std::cout << "\nPaper: all coding techniques belong to the Pareto front "
               "for every BER; at 1e-12 the uncoded scheme drops out "
               "(infeasible).\n";
  return 0;
}
