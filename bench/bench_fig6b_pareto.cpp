// Fig. 6b reproduction: the (Pchannel, CT) power/performance plane for
// BER targets 1e-6 .. 1e-12.  The paper's claim: for every BER, all
// three schemes are Pareto-optimal (uncoded = fast & hungry, H(7,4) =
// slow & frugal, H(71,64) in between).
//
// Runs on the declarative spec API: the whole experiment — code menu,
// BER targets and Pareto objectives — is the "fig6b" ExperimentSpec
// preset (the same spec examples/specs/fig6b.json serializes), lowered
// by spec::run onto the parallel SweepRunner; per-BER fronts come from
// the engine's generic N-objective Pareto extraction with the spec's
// two objectives (CT, Pchannel), on the per-BER slices of the one
// evaluated grid.
#include <iostream>

#include "photecc/core/report.hpp"
#include "photecc/explore/evaluators.hpp"
#include "photecc/math/table.hpp"
#include "photecc/spec/registries.hpp"
#include "photecc/spec/run.hpp"

int main() {
  using namespace photecc;

  const spec::ExperimentSpec experiment =
      spec::preset_registry().make("fig6b", "preset");
  const std::vector<double>& bers = experiment.ber_targets;
  const auto objectives = spec::lower_objectives(experiment);
  const auto result = spec::run(experiment);

  std::cout << "=== Fig. 6b: power/performance trade-off wrt BER and "
               "ECC ===\n\n";
  core::print_table(std::cout,
                    "(CT, Pchannel) points; '*' = on the Pareto front:",
                    core::pareto_table(result.to_tradeoff_sweep()));

  std::cout << "Per-BER Pareto fronts:\n";
  for (const double ber : bers) {
    std::vector<explore::CellResult> slice;
    for (const auto& cell : result.cells)
      if (cell.label("target_ber") == math::format_sci(ber, 0))
        slice.push_back(cell);
    const auto front = explore::pareto_front_indices(slice, objectives);
    std::cout << "  BER " << math::format_sci(ber, 0) << ": ";
    for (std::size_t i = 0; i < front.size(); ++i) {
      if (i) std::cout << " -> ";
      std::cout << slice[front[i]].scheme->scheme;
    }
    std::cout << "  (" << front.size() << " of " << slice.size()
              << " schemes on the front)\n";
  }
  std::cout << "\nPaper: all coding techniques belong to the Pareto front "
               "for every BER; at 1e-12 the uncoded scheme drops out "
               "(infeasible).\n";
  return 0;
}
