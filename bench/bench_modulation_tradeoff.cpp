// OOK-vs-PAM4 energy/performance trade-off on the explore engine: the
// paper's (code x BER) plane doubled by the modulation axis.  PAM4
// halves the communication time of every scheme (2 bits/symbol at the
// same Fmod) but pays (M-1)^2 = 9x the laser SNR budget for the same
// raw BER, so the combined Pareto front shows where multilevel
// signaling buys time the coding layer cannot — and where the laser
// ceiling pushes PAM4 out entirely (the Karempudi et al. trade-off on
// top of the paper's coding analysis).
//
// On the paper's default 6 cm / 12-ONI channel no PAM4 point fits
// under the 700 uW deliverable maximum: multilevel signaling there is
// infeasible at every coding strength, itself a result.  The sweep
// therefore adds a short-reach 2 cm / 4-ONI variant, where PAM4 +
// strong BCH coding reaches CT < 1 — faster than ANY OOK scheme can
// ever be — defining a whole new region of the front.
//
//   bench_modulation_tradeoff            full sweep + Pareto table
//   bench_modulation_tradeoff --smoke    small grid, 1-vs-4-thread
//                                        byte-identity self-check (CI)
//
// Both modes end with a JSON summary block (BENCH_modulation.json
// records the committed baseline).
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "photecc/core/report.hpp"
#include "photecc/explore/evaluators.hpp"
#include "photecc/math/table.hpp"
#include "photecc/math/units.hpp"
#include "photecc/spec/registries.hpp"
#include "photecc/spec/run.hpp"

namespace {

using namespace photecc;

/// The sweeps are the "modulation" / "modulation-smoke" ExperimentSpec
/// presets: full code menu on the paper channel plus the short-reach
/// link variant (full), paper schemes OOK-vs-PAM4 (smoke).
spec::ExperimentSpec make_spec(bool smoke) {
  return spec::preset_registry().make(
      smoke ? "modulation-smoke" : "modulation", "preset");
}

void print_json_summary(const explore::ExperimentResult& result,
                        const std::vector<std::size_t>& front,
                        bool identical) {
  std::size_t feasible = 0, pam4_cells = 0, pam4_on_front = 0;
  for (const auto& cell : result.cells) {
    if (cell.feasible) ++feasible;
    if (cell.label("modulation") == "pam4") ++pam4_cells;
  }
  for (const std::size_t i : front)
    if (result.cells[i].label("modulation") == "pam4") ++pam4_on_front;
  std::cout << "{\n"
            << "  \"benchmark\": \"modulation_tradeoff\",\n"
            << "  \"cells\": " << result.cells.size() << ",\n"
            << "  \"pam4_cells\": " << pam4_cells << ",\n"
            << "  \"feasible_cells\": " << feasible << ",\n"
            << "  \"pareto_front_size\": " << front.size() << ",\n"
            << "  \"pam4_on_front\": " << pam4_on_front << ",\n"
            << "  \"identical_output\": " << (identical ? "true" : "false")
            << "\n}\n";
}

int run_smoke() {
  spec::ExperimentSpec experiment = make_spec(true);
  experiment.threads = 1;
  const auto sequential = spec::run(experiment);
  experiment.threads = 4;
  const auto parallel = spec::run(experiment);
  const bool identical = sequential.csv() == parallel.csv() &&
                         sequential.json() == parallel.json();
  const auto front =
      sequential.pareto_front(spec::lower_objectives(experiment));
  if (!identical) {
    std::cerr << "smoke FAILED: sequential and parallel exports differ\n";
    return 1;
  }
  if (front.empty()) {
    std::cerr << "smoke FAILED: empty OOK-vs-PAM4 Pareto front\n";
    return 1;
  }
  std::cout << "smoke OK: " << sequential.cells.size()
            << "-cell OOK-vs-PAM4 grid byte-identical at 1 vs 4 "
               "threads\n";
  print_json_summary(sequential, front, identical);
  return 0;
}

int run_full() {
  spec::ExperimentSpec experiment = make_spec(false);
  experiment.threads = 1;
  const auto result = spec::run(experiment);
  // The baseline JSON records the same 1-vs-N byte-identity check the
  // smoke mode performs, so the field is backed by a real comparison.
  experiment.threads = 4;
  const auto parallel = spec::run(experiment);
  const bool identical = result.csv() == parallel.csv() &&
                         result.json() == parallel.json();

  std::cout << "=== OOK vs PAM4: modulation/coding trade-off ("
            << result.cells.size() << " cells) ===\n\n";

  math::TextTable table({"link", "modulation", "scheme", "target BER",
                         "CT", "Plaser [mW]", "E/bit [pJ]", "feasible"});
  for (const auto& cell : result.cells) {
    if (!cell.feasible &&
        cell.label("modulation") == std::string("ook"))
      continue;  // keep the table focused; infeasible OOK is the paper
    const auto& m = *cell.scheme;
    table.add_row({
        cell.label("link").value_or("paper"),
        cell.label("modulation").value_or("ook"),
        m.scheme,
        math::format_sci(m.target_ber, 0),
        math::format_fixed(m.ct, 3),
        m.feasible ? math::format_fixed(math::as_milli(m.p_laser_w), 2)
                   : "-",
        m.feasible
            ? math::format_fixed(math::as_pico(m.energy_per_bit_j), 2)
            : "-",
        m.feasible ? "yes" : "NO",
    });
  }
  core::print_table(std::cout, "Per-format operating points:", table);

  const auto front = result.pareto_front(spec::lower_objectives(experiment));
  std::cout << "Combined (CT, Pchannel) Pareto front:\n";
  std::size_t sub_unity_ct = 0;
  for (const std::size_t i : front) {
    const auto& cell = result.cells[i];
    if (cell.scheme->ct < 1.0) ++sub_unity_ct;
    std::cout << "  " << cell.label("link").value_or("paper") << " "
              << cell.label("modulation").value_or("ook") << " "
              << cell.scheme->scheme << " @ BER "
              << math::format_sci(cell.scheme->target_ber, 0) << " (CT "
              << math::format_fixed(cell.scheme->ct, 3) << ", "
              << math::format_fixed(
                     math::as_milli(cell.scheme->p_channel_w), 2)
              << " mW)\n";
  }
  std::cout << "\nPAM4 + strong coding opens the CT < 1 region ("
            << sub_unity_ct
            << " front points) that no OOK scheme reaches; on the "
               "paper's default channel PAM4 is infeasible at every "
               "coding strength.\n\n";
  print_json_summary(result, front, identical);
  return identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::cerr << "usage: bench_modulation_tradeoff [--smoke]\n";
      return 2;
    }
  }
  return smoke ? run_smoke() : run_full();
}
