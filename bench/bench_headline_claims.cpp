// Section V-B/V-C headline claims, paper value vs this reproduction,
// with a pass/fail shape check per claim.  This is the one-stop
// paper-vs-measured summary that EXPERIMENTS.md references.
#include <cmath>
#include <iostream>

#include "photecc/core/channel_power.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/link/snr_solver.hpp"
#include "photecc/math/table.hpp"
#include "photecc/math/units.hpp"

namespace {

struct Claim {
  std::string description;
  double paper;
  double measured;
  double tolerance;  // relative
  [[nodiscard]] bool holds() const {
    return std::abs(measured - paper) <= tolerance * std::abs(paper);
  }
};

}  // namespace

int main() {
  using namespace photecc;
  const link::MwsrChannel channel{link::MwsrParams{}};
  const auto uncoded = ecc::make_code("w/o ECC");
  const auto h7164 = ecc::make_code("H(71,64)");
  const auto h74 = ecc::make_code("H(7,4)");

  const auto mu = core::evaluate_scheme(channel, *uncoded, 1e-11);
  const auto m71 = core::evaluate_scheme(channel, *h7164, 1e-11);
  const auto m74 = core::evaluate_scheme(channel, *h74, 1e-11);

  std::vector<Claim> claims;
  claims.push_back({"Plaser w/o ECC @1e-11 [mW]", 14.35,
                    math::as_milli(mu.p_laser_w), 0.05});
  claims.push_back({"Plaser H(71,64) @1e-11 [mW]", 7.12,
                    math::as_milli(m71.p_laser_w), 0.10});
  claims.push_back({"Plaser H(7,4) @1e-11 [mW]", 6.64,
                    math::as_milli(m74.p_laser_w), 0.10});
  claims.push_back({"channel power saving H(71,64) [%]", 45.0,
                    100.0 * (1.0 - m71.p_channel_w / mu.p_channel_w),
                    0.10});
  claims.push_back({"channel power saving H(7,4) [%]", 49.0,
                    100.0 * (1.0 - m74.p_channel_w / mu.p_channel_w),
                    0.10});
  claims.push_back({"laser share of uncoded channel [%]", 92.0,
                    100.0 * mu.p_laser_w / mu.p_channel_w, 0.03});
  claims.push_back({"per-waveguide power w/o ECC [mW]", 251.0,
                    math::as_milli(mu.p_waveguide_w), 0.05});
  claims.push_back({"per-waveguide power H(71,64) [mW]", 136.0,
                    math::as_milli(m71.p_waveguide_w), 0.07});
  claims.push_back(
      {"interconnect saving H(71,64) [W]", 22.0,
       mu.p_interconnect_w - m71.p_interconnect_w, 0.12});
  claims.push_back({"CT H(71,64)", 1.109, m71.ct, 0.01});
  claims.push_back({"CT H(7,4)", 1.75, m74.ct, 0.001});

  const auto infeasible = link::solve_operating_point(channel, *uncoded,
                                                      1e-12);
  const auto f71 = link::solve_operating_point(channel, *h7164, 1e-12);
  const auto f74 = link::solve_operating_point(channel, *h74, 1e-12);

  std::cout << "=== Headline claims: paper vs this reproduction ===\n\n";
  math::TextTable table(
      {"claim", "paper", "measured", "rel. err [%]", "holds"});
  for (const auto& claim : claims) {
    const double err =
        100.0 * (claim.measured - claim.paper) / claim.paper;
    table.add_row({claim.description, math::format_fixed(claim.paper, 2),
                   math::format_fixed(claim.measured, 2),
                   math::format_fixed(err, 1),
                   claim.holds() ? "yes" : "NO"});
  }
  table.render(std::cout);

  std::cout << "\nFeasibility boundary @ BER 1e-12:\n";
  std::cout << "  w/o ECC : "
            << (infeasible.feasible ? "feasible (MISMATCH)" : "infeasible")
            << " (needs "
            << math::format_fixed(math::as_micro(infeasible.op_laser_w), 0)
            << " uW > 700 uW ceiling)   [paper: infeasible]\n";
  std::cout << "  H(71,64): "
            << (f71.feasible ? "feasible, Plaser = " +
                                   math::format_fixed(
                                       math::as_milli(f71.p_laser_w), 2) +
                                   " mW"
                             : "infeasible (MISMATCH)")
            << "   [paper: ~7.1 mW]\n";
  std::cout << "  H(7,4)  : "
            << (f74.feasible ? "feasible, Plaser = " +
                                   math::format_fixed(
                                       math::as_milli(f74.p_laser_w), 2) +
                                   " mW"
                             : "infeasible (MISMATCH)")
            << "   [paper: ~7.6 mW printed; physically should be below "
               "H(71,64)]\n";

  std::cout << "\nEnergy per payload bit (our definition "
               "Pchannel/(Fmod*Rc); see EXPERIMENTS.md):\n";
  for (const auto* m : {&mu, &m71, &m74}) {
    std::cout << "  " << m->scheme << ": "
              << math::format_fixed(math::as_pico(m->energy_per_bit_j), 2)
              << " pJ/bit\n";
  }
  std::cout << "  (paper prints 3.92 / 3.76 / 5.58 pJ/bit with an "
               "unstated payload rate; uncoded matches ours at "
               "4 Gb/s/lambda payload.)\n";
  return 0;
}
