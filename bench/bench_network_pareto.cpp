// Tiled-network Pareto benchmark: per-channel coding beats uniform.
//
// 8 tiles share 4 MWSR channels (interleaved mapping: tile t reads
// channel t % 4).  Channels 0-1 model a dense hot cluster — 16 rings
// loading the waveguide and a thermal ramp from the paper's 25 %
// activity to 90 % — while channels 2-3 are sparse cool edges (8
// rings, constant 25 %).  At a 1e-11 BER target the ring load
// compresses the thermal ceilings apart: on the dense channels the
// uncoded scheme is infeasible outright, H(71,64) falls off the ramp
// at ~83 % activity, and only H(7,4) holds to the top; on the sparse
// cool channels every scheme works and H(71,64) is the cheapest per
// bit (its coding gain cuts laser power at a tenth of H(7,4)'s bit
// overhead).
//
// No uniform assignment can have both: the sweep runs each code pinned
// on all four channels against the heterogeneous assignment the tiled
// refactor exists for — H(7,4) on the hot pair, H(71,64) on the cool
// pair.  Headline: the heterogeneous point delivers everything (like
// uniform H(7,4)) at strictly lower energy per bit, so it strictly
// Pareto-dominates the strongest uniform code on (delivered,
// energy/bit), and no uniform assignment dominates it.
//
// Usage: bench_network_pareto [--smoke]   (--smoke trims the horizon
// and additionally checks that the explore-layer network sweep exports
// byte-identical CSV/JSON at 1 and 4 threads; exit code != 0 if the
// heterogeneous assignment fails to dominate or exports diverge).
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "photecc/ecc/registry.hpp"
#include "photecc/env/environment.hpp"
#include "photecc/explore/evaluators.hpp"
#include "photecc/explore/runner.hpp"
#include "photecc/math/table.hpp"
#include "photecc/math/units.hpp"
#include "photecc/noc/network.hpp"
#include "photecc/noc/traffic.hpp"

namespace {

using namespace photecc;

constexpr double kTargetBer = 1e-11;
constexpr std::size_t kTiles = 8;
constexpr std::size_t kChannels = 4;
constexpr std::size_t kHotRings = 16;  ///< dense cluster ring load
constexpr std::size_t kCoolRings = 8;  ///< sparse edge ring load
constexpr std::uint64_t kSeed = 0x70617265746f3842ULL;

struct Assignment {
  std::string label;
  std::vector<std::string> codes;  // one name per channel
};

struct Point {
  std::string label;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_thermal = 0;
  double energy_per_bit_j = 0.0;
  noc::NetworkRunResult run;
};

/// (delivered max, energy/bit min) Pareto domination.
bool dominates(const Point& a, const Point& b) {
  const bool no_worse = a.delivered >= b.delivered &&
                        a.energy_per_bit_j <= b.energy_per_bit_j;
  const bool better = a.delivered > b.delivered ||
                      a.energy_per_bit_j < b.energy_per_bit_j;
  return no_worse && better;
}

noc::NetworkConfig make_config(const Assignment& assignment,
                               const env::EnvironmentTimeline& hot,
                               const env::EnvironmentTimeline& cool) {
  noc::NetworkConfig config;
  config.topology.tile_count = kTiles;
  config.topology.channel_count = kChannels;
  config.default_requirements.target_ber = kTargetBer;
  config.channels.resize(kChannels);
  for (std::size_t ch = 0; ch < kChannels; ++ch) {
    const bool is_hot = ch < 2;
    config.channels[ch].environment = is_hot ? hot : cool;
    config.channels[ch].oni_count = is_hot ? kHotRings : kCoolRings;
    config.channels[ch].scheme_menu = {ecc::make_code(assignment.codes[ch])};
  }
  return config;
}

Point run_assignment(const Assignment& assignment,
                     const env::EnvironmentTimeline& hot,
                     const env::EnvironmentTimeline& cool, double rate,
                     double horizon_s) {
  const noc::NetworkSimulator simulator{
      make_config(assignment, hot, cool)};
  const noc::UniformRandomTraffic traffic{kTiles, rate, 4096};
  Point point;
  point.label = assignment.label;
  point.run = simulator.run(traffic, horizon_s, kSeed);
  point.delivered = point.run.stats.aggregate.delivered;
  point.dropped_thermal = point.run.stats.aggregate.dropped_thermal;
  point.energy_per_bit_j =
      point.run.total_payload_bits == 0
          ? 0.0
          : point.run.stats.aggregate.total_energy_j /
                static_cast<double>(point.run.total_payload_bits);
  return point;
}

void per_channel_table(const Point& point) {
  math::TextTable table({"channel", "delivered", "dropped(thermal)",
                         "recalibrations", "energy/bit [pJ]"});
  for (std::size_t ch = 0; ch < kChannels; ++ch) {
    const noc::NocStats& stats = point.run.stats.channels[ch];
    const std::uint64_t bits = point.run.stats.channel_payload_bits[ch];
    table.add_row(
        {"ch" + std::to_string(ch), std::to_string(stats.delivered),
         std::to_string(stats.dropped) + " (" +
             std::to_string(stats.dropped_thermal) + ")",
         std::to_string(stats.recalibrations),
         bits == 0 ? "-"
                   : math::format_fixed(
                         1e12 * stats.total_energy_j /
                             static_cast<double>(bits),
                         2)});
  }
  table.render(std::cout);
}

/// --smoke extra: the explore-layer network sweep must export
/// byte-identical CSV/JSON at any thread count.
bool exports_thread_invariant(const env::EnvironmentTimeline& hot,
                              const env::EnvironmentTimeline& cool,
                              double rate, double horizon_s) {
  explore::NetworkSpec net;
  net.tile_count = kTiles;
  net.channel_count = kChannels;
  net.channel_codes = {"H(7,4)", "H(7,4)", "H(71,64)", "H(71,64)"};
  net.channel_environments = {{"hot", hot}, {"hot", hot},
                              {"cool", cool}, {"cool", cool}};
  explore::ScenarioGrid grid;
  grid.network(net)
      .traffic_patterns({explore::uniform_traffic(rate)})
      .ber_targets({kTargetBer})
      .codes({"H(71,64)", "H(7,4)"})
      .noc_horizon(horizon_s);
  const auto sequential = explore::SweepRunner{{1}}.run(grid);
  const auto threaded = explore::SweepRunner{{4}}.run(grid);
  if (sequential.csv() == threaded.csv() &&
      sequential.json() == threaded.json())
    return true;
  std::cerr << "FAILED: network sweep exports differ between 1 and 4 "
               "threads\n";
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const double horizon = smoke ? 3e-6 : 6e-6;
  const double ramp_start = smoke ? 0.5e-6 : 1e-6;
  const double ramp_end = smoke ? 2e-6 : 4e-6;
  const double rate = 8e8;  // aggregate injections over the whole NoC
  const auto hot =
      env::EnvironmentTimeline::ramp(ramp_start, ramp_end, 0.25, 0.9);
  const auto cool = env::EnvironmentTimeline::constant(0.25);

  std::cout << "=== Tiled network: " << kTiles << " tiles / " << kChannels
            << " channels (interleaved); channels 0-1 dense ("
            << kHotRings << " rings) ramping 25 % -> 90 % over ["
            << math::format_sci(ramp_start, 1) << ", "
            << math::format_sci(ramp_end, 1) << "] s; channels 2-3 sparse ("
            << kCoolRings << " rings) at a constant 25 %; BER target "
            << math::format_sci(kTargetBer, 0) << " ===\n\n";

  std::vector<Assignment> assignments;
  for (const auto& code : ecc::paper_schemes())
    assignments.push_back({"uniform " + code->name(),
                           std::vector<std::string>(kChannels,
                                                    code->name())});
  assignments.push_back(
      {"hot H(7,4) / cool H(71,64)",
       {"H(7,4)", "H(7,4)", "H(71,64)", "H(71,64)"}});

  std::vector<Point> points;
  math::TextTable table({"assignment", "delivered", "dropped(thermal)",
                         "energy/bit [pJ]", "recalibrations"});
  for (const Assignment& assignment : assignments) {
    points.push_back(run_assignment(assignment, hot, cool, rate, horizon));
    const Point& p = points.back();
    table.add_row({p.label, std::to_string(p.delivered),
                   std::to_string(p.run.stats.aggregate.dropped) + " (" +
                       std::to_string(p.dropped_thermal) + ")",
                   math::format_fixed(1e12 * p.energy_per_bit_j, 2),
                   std::to_string(p.run.stats.aggregate.recalibrations)});
  }
  table.render(std::cout);

  const Point& heterogeneous = points.back();
  std::cout << "\nPer-channel breakdown of the heterogeneous assignment:\n";
  per_channel_table(heterogeneous);

  // The headline claims, asserted.
  bool ok = true;
  const auto check = [&ok](bool condition, const std::string& what) {
    if (!condition) {
      std::cerr << "FAILED: " << what << "\n";
      ok = false;
    }
  };
  for (const Point& p : points) {
    if (p.label == "uniform w/o ECC")
      check(heterogeneous.delivered > p.delivered,
            "heterogeneous must out-deliver the uncoded assignment");
    if (p.label == "uniform H(71,64)") {
      check(p.dropped_thermal > 0,
            "uniform H(71,64) must fall off the ramp on the hot channels");
      check(heterogeneous.delivered > p.delivered,
            "heterogeneous must out-deliver uniform H(71,64)");
    }
    if (p.label == "uniform H(7,4)")
      check(dominates(heterogeneous, p),
            "heterogeneous must strictly dominate uniform H(7,4) on "
            "(delivered, energy/bit)");
    if (&p != &heterogeneous)
      check(!dominates(p, heterogeneous),
            "no uniform assignment may dominate the heterogeneous one (" +
                p.label + ")");
  }
  check(heterogeneous.dropped_thermal == 0,
        "the heterogeneous assignment must survive the ramp");

  if (ok)
    std::cout << "\nHeadline: per-channel coding holds the dense hot "
                 "cluster with H(7,4) while the cool edges run the "
                 "cheaper H(71,64) — the heterogeneous assignment "
                 "strictly Pareto-dominates the strongest uniform code "
                 "on (delivered, energy/bit), and no uniform assignment "
                 "dominates it.\n";

  if (smoke) {
    std::cout << "\n[smoke] explore-layer thread-invariance check... ";
    if (exports_thread_invariant(hot, cool, rate, horizon))
      std::cout << "OK\n";
    else
      ok = false;
  }
  return ok ? 0 : 1;
}
