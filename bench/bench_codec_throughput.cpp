// Software microbenchmarks (google-benchmark): codec and SER/DES
// throughput of the bit-true models.  These gauge the simulation
// infrastructure itself (how fast Monte-Carlo experiments run), not the
// hardware — hardware figures come from the synthesis model.
#include <benchmark/benchmark.h>

#include "photecc/channel_sim/ook_channel.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/interface/datapath.hpp"
#include "photecc/math/rng.hpp"

namespace {

using namespace photecc;

ecc::BitVec random_word(std::size_t size, math::Xoshiro256& rng) {
  ecc::BitVec word(size);
  for (std::size_t i = 0; i < size; ++i) word.set(i, rng.bernoulli(0.5));
  return word;
}

void BM_HammingEncode(benchmark::State& state, const char* name) {
  const auto code = ecc::make_code(name);
  math::Xoshiro256 rng(42);
  const ecc::BitVec message = random_word(code->message_length(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code->encode(message));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(code->message_length()) / 8);
}

void BM_HammingDecode(benchmark::State& state, const char* name) {
  const auto code = ecc::make_code(name);
  math::Xoshiro256 rng(43);
  ecc::BitVec received =
      code->encode(random_word(code->message_length(), rng));
  received.flip(rng.bounded(received.size()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(code->decode(received));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(code->message_length()) / 8);
}

void BM_DatapathRoundTrip(benchmark::State& state, const char* name) {
  const auto code = ecc::make_code(name);
  const interface::TransmitterDatapath tx(code, 64);
  const interface::ReceiverDatapath rx(code, 64);
  math::Xoshiro256 rng(44);
  const ecc::BitVec word = random_word(64, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rx.receive(tx.transmit(word)));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * 8);
}

void BM_OokChannel(benchmark::State& state) {
  channel_sim::OokChannel channel(11.0, 45);
  bool bit = false;
  for (auto _ : state) {
    bit = !bit;
    benchmark::DoNotOptimize(channel.transmit(bit));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

}  // namespace

BENCHMARK_CAPTURE(BM_HammingEncode, h74, "H(7,4)");
BENCHMARK_CAPTURE(BM_HammingEncode, h7164, "H(71,64)");
BENCHMARK_CAPTURE(BM_HammingEncode, h127120, "H(127,120)");
BENCHMARK_CAPTURE(BM_HammingDecode, h74, "H(7,4)");
BENCHMARK_CAPTURE(BM_HammingDecode, h7164, "H(71,64)");
BENCHMARK_CAPTURE(BM_HammingDecode, h127120, "H(127,120)");
BENCHMARK_CAPTURE(BM_DatapathRoundTrip, uncoded, "w/o ECC");
BENCHMARK_CAPTURE(BM_DatapathRoundTrip, h74, "H(7,4)");
BENCHMARK_CAPTURE(BM_DatapathRoundTrip, h7164, "H(71,64)");
BENCHMARK(BM_OokChannel);
