// Codec throughput benchmark: the bitsliced word-parallel batch kernels
// against the scalar per-word codec, over the full registry menu.
//
// These gauge the simulation infrastructure itself (how fast bit-true
// Monte-Carlo experiments run), not the hardware — hardware figures
// come from the synthesis model.  The batch kernels process 64
// codewords per BitSlab pass, one uint64_t per bit position, so the
// expected win is roughly the lane count minus bookkeeping.
//
// Usage: bench_codec_throughput [--smoke]
//   full:    per-code scalar vs batch encode/decode timing, JSON record
//            (BENCH_codec.json) on stdout; asserts >= 20x batch speedup
//            for every Hamming and extended-Hamming code, encode and
//            decode.  Run in Release — timings in Debug are meaningless.
//   --smoke: no timing.  Pins batch == scalar bit-identity (messages
//            and detected/corrected flags, lane for lane) for every
//            registry code plus cooling wraps, on clean and errored
//            words.  Exit code != 0 on any mismatch — CI runs this in
//            both Debug and Release.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "photecc/codec/batch_mc.hpp"
#include "photecc/codec/bitslab.hpp"
#include "photecc/cooling/cooling_code.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/math/parallel.hpp"
#include "photecc/math/rng.hpp"

namespace {

using namespace photecc;

// Keeps the optimizer from discarding the benchmarked calls.
volatile std::uint64_t g_sink = 0;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

ecc::BitVec random_word(std::size_t size, math::Xoshiro256& rng) {
  ecc::BitVec word(size);
  for (std::size_t i = 0; i < size; ++i) word.set(i, rng.bernoulli(0.5));
  return word;
}

/// Median-free steady-state timing: doubles the iteration count until
/// the run takes at least min_s, then reports seconds per call.
template <typename F>
double time_per_call(F&& f, double min_s = 0.05) {
  f();  // warm up caches and lazy tables
  std::size_t iters = 1;
  for (;;) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) f();
    const double s = seconds_since(start);
    if (s >= min_s) return s / static_cast<double>(iters);
    iters *= (s > 0.0 && s < min_s / 8.0) ? 8 : 2;
  }
}

std::vector<std::string> menu_names(bool with_cooling) {
  std::vector<std::string> names;
  for (const auto& code : ecc::all_known_codes())
    names.push_back(code->name());
  if (with_cooling) {
    cooling::register_cooling_codes();
    names.push_back("COOL(8,2)");
    names.push_back("COOL(H(7,4),1)");
    names.push_back("COOL(BCH(15,7,2),3)");
  }
  return names;
}

struct CodeTiming {
  std::string name;
  std::size_t n = 0;
  std::size_t k = 0;
  double encode_speedup = 0.0;
  double decode_speedup = 0.0;
  double batch_encode_mbps = 0.0;  // message bits per second, batch path
  double batch_decode_mbps = 0.0;  // wire bits per second, batch path
};

/// One benchmark unit: 64 codewords, pre-transposed on the batch side
/// (the batch datapath never transposes per word — channel_sim injects
/// errors directly into slab words).
CodeTiming bench_code(const std::string& name) {
  const auto code = ecc::make_code(name);
  math::Xoshiro256 rng(0xBE7C4);

  std::vector<ecc::BitVec> messages;
  std::vector<ecc::BitVec> received;
  for (std::size_t l = 0; l < codec::BitSlab::kLanes; ++l) {
    messages.push_back(random_word(code->message_length(), rng));
    ecc::BitVec word = code->encode(messages.back());
    for (std::size_t i = 0; i < word.size(); ++i)
      if (rng.bernoulli(0.01)) word.flip(i);
    received.push_back(word);
  }
  const codec::BitSlab message_slab = codec::BitSlab::transpose_in(messages);
  const codec::BitSlab received_slab = codec::BitSlab::transpose_in(received);

  const double scalar_encode = time_per_call([&] {
    for (const auto& m : messages) g_sink = g_sink ^ code->encode(m).words()[0];
  });
  const double batch_encode = time_per_call(
      [&] { g_sink = g_sink ^ code->encode_batch(message_slab).word(0); });
  const double scalar_decode = time_per_call([&] {
    for (const auto& r : received) g_sink = g_sink ^ code->decode(r).message.words()[0];
  });
  const double batch_decode = time_per_call(
      [&] { g_sink = g_sink ^ code->decode_batch(received_slab).messages.word(0); });

  CodeTiming t;
  t.name = name;
  t.n = code->block_length();
  t.k = code->message_length();
  t.encode_speedup = scalar_encode / batch_encode;
  t.decode_speedup = scalar_decode / batch_decode;
  const double batch_bits =
      static_cast<double>(codec::BitSlab::kLanes);
  t.batch_encode_mbps =
      batch_bits * static_cast<double>(t.k) / batch_encode / 1e6;
  t.batch_decode_mbps =
      batch_bits * static_cast<double>(t.n) / batch_decode / 1e6;
  return t;
}

bool check(bool condition, const std::string& what) {
  if (!condition) std::cerr << "FAILED: " << what << "\n";
  return condition;
}

bool is_hamming_family(const std::string& name) {
  return name.rfind("H(", 0) == 0 || name.rfind("eH(", 0) == 0;
}

int run_full() {
  bool ok = true;
  std::vector<CodeTiming> timings;
  for (const std::string& name : menu_names(/*with_cooling=*/true))
    timings.push_back(bench_code(name));

  std::cout << "{\n"
            << "  \"benchmark\": \"codec_throughput\",\n"
            << "  \"lanes\": " << codec::BitSlab::kLanes << ",\n"
            << "  \"host_core_count\": " << math::default_thread_count()
            << ",\n"
            << "  \"codes\": [\n";
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const CodeTiming& t = timings[i];
    std::cout << "    {\"name\": \"" << t.name << "\", \"n\": " << t.n
              << ", \"k\": " << t.k
              << ", \"encode_speedup\": " << t.encode_speedup
              << ", \"decode_speedup\": " << t.decode_speedup
              << ", \"batch_encode_mbps\": " << t.batch_encode_mbps
              << ", \"batch_decode_mbps\": " << t.batch_decode_mbps << "}"
              << (i + 1 < timings.size() ? "," : "") << "\n";
  }
  std::cout << "  ]\n}\n";

  for (const CodeTiming& t : timings) {
    if (!is_hamming_family(t.name)) continue;
    ok &= check(t.encode_speedup >= 20.0,
                t.name + " batch encode >= 20x scalar (got " +
                    std::to_string(t.encode_speedup) + "x)");
    ok &= check(t.decode_speedup >= 20.0,
                t.name + " batch decode >= 20x scalar (got " +
                    std::to_string(t.decode_speedup) + "x)");
  }
  return ok ? 0 : 1;
}

/// Identity-only mode: batch kernels bit-identical to the scalar codec
/// for every menu code, lane for lane, clean and at a 5% error rate.
int run_smoke() {
  bool ok = true;
  math::Xoshiro256 rng(0x57A0CE);
  for (const std::string& name : menu_names(/*with_cooling=*/true)) {
    const auto code = ecc::make_code(name);
    std::vector<ecc::BitVec> messages;
    std::vector<ecc::BitVec> received;
    for (std::size_t l = 0; l < codec::BitSlab::kLanes; ++l) {
      messages.push_back(random_word(code->message_length(), rng));
      ecc::BitVec word = code->encode(messages.back());
      if (l % 2 == 1)  // half clean, half errored
        for (std::size_t i = 0; i < word.size(); ++i)
          if (rng.bernoulli(0.05)) word.flip(i);
      received.push_back(word);
    }
    const codec::BitSlab encoded =
        code->encode_batch(codec::BitSlab::transpose_in(messages));
    for (std::size_t l = 0; l < messages.size(); ++l)
      ok &= check(encoded.transpose_out(l) == code->encode(messages[l]),
                  name + " encode lane " + std::to_string(l));
    const ecc::BatchDecodeResult decoded =
        code->decode_batch(codec::BitSlab::transpose_in(received));
    for (std::size_t l = 0; l < received.size(); ++l) {
      const ecc::DecodeResult scalar = code->decode(received[l]);
      ok &= check(decoded.messages.transpose_out(l) == scalar.message,
                  name + " decode lane " + std::to_string(l));
      ok &= check(((decoded.error_detected >> l) & 1u) ==
                      (scalar.error_detected ? 1u : 0u),
                  name + " detected flag lane " + std::to_string(l));
      ok &= check(((decoded.corrected >> l) & 1u) ==
                      (scalar.corrected ? 1u : 0u),
                  name + " corrected flag lane " + std::to_string(l));
    }
  }
  if (ok)
    std::cout << "smoke OK: batch kernels bit-identical to the scalar "
                 "codec over the full menu\n";
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  try {
    return smoke ? run_smoke() : run_full();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
