// Thermal-transient benchmark: the dynamic twin of ablation AB5.
//
// Part 1 (static limit): re-derives AB5's activity sweep through the
// photecc::env path — one constant EnvironmentTimeline per activity —
// and verifies in-process that the env-resolved operating points equal
// the direct chip_activity-alias solve bit for bit.  The static table
// is the t -> infinity limit of a constant timeline, so the dynamic
// machinery must reproduce it exactly.
//
// Part 2 (dynamic headline): a streaming workload runs through a linear
// activity ramp from the paper's 25 % toward saturation.  The solver
// gives each scheme's thermal ceiling (the highest activity where the
// target stays reachable) and therefore the wall-clock time at which it
// falls off the ramp; the NoC simulator then confirms the closed-loop
// picture — recalibrations, thermal drops and per-phase delivery.  The
// headline number: how much longer H(7,4) keeps the stream feasible
// than the uncoded scheme.
//
// Usage: bench_thermal_transient [--smoke]   (--smoke trims the sweep
// for CI; exit code != 0 on any static-limit mismatch).
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "photecc/ecc/registry.hpp"
#include "photecc/env/environment.hpp"
#include "photecc/link/snr_solver.hpp"
#include "photecc/math/table.hpp"
#include "photecc/math/units.hpp"
#include "photecc/noc/simulator.hpp"

namespace {

using namespace photecc;

constexpr double kTargetBer = 1e-11;

/// Highest activity (within `step` resolution) at which `code` still
/// reaches the target on the paper channel — AB5's thermal envelope,
/// computed through environment samples.
double thermal_ceiling(const link::MwsrChannel& channel,
                       const ecc::BlockCode& code, double step) {
  double best = -1.0;
  for (double activity = 0.0; activity <= 1.0 + 1e-12; activity += step) {
    const env::EnvironmentSample sample{0.0, std::min(activity, 1.0)};
    if (link::solve_operating_point(channel, code, kTargetBer, sample)
            .feasible)
      best = sample.activity;
  }
  return best;
}

/// Part 1: the AB5 table as the constant-timeline special case.
/// Returns false on any mismatch with the direct alias solve.
bool static_limit_table(bool smoke) {
  const auto schemes = ecc::paper_schemes();
  std::cout << "=== Static limit: AB5's activity sweep via "
               "env::EnvironmentTimeline::constant @ BER "
            << math::format_sci(kTargetBer, 0) << " ===\n\n";
  std::vector<double> activities;
  const int steps = smoke ? 4 : 8;
  for (int i = 0; i <= steps; ++i)
    activities.push_back(static_cast<double>(i) / steps);

  bool consistent = true;
  math::TextTable table({"activity", "OPmax [uW]", "w/o ECC [mW]",
                         "H(71,64) [mW]", "H(7,4) [mW]"});
  for (const double activity : activities) {
    // The env path: a constant timeline declared on the channel.
    link::MwsrParams timed;
    timed.environment = env::EnvironmentTimeline::constant(activity);
    const link::MwsrChannel channel{timed};
    // The historical path: the deprecated chip_activity alias.
    link::MwsrParams aliased;
    aliased.chip_activity = activity;
    const link::MwsrChannel alias_channel{aliased};

    std::vector<std::string> row{
        math::format_fixed(100.0 * activity, 0) + " %",
        math::format_fixed(
            math::as_micro(channel.laser().max_optical_power(
                channel.environment().activity)),
            0)};
    for (const auto& code : schemes) {
      const auto point =
          link::solve_operating_point(channel, *code, kTargetBer);
      const auto alias_point =
          link::solve_operating_point(alias_channel, *code, kTargetBer);
      if (point.feasible != alias_point.feasible ||
          point.p_laser_w != alias_point.p_laser_w) {
        std::cerr << "MISMATCH: env path != alias path at activity "
                  << activity << " for " << code->name() << "\n";
        consistent = false;
      }
      row.push_back(
          point.feasible
              ? math::format_fixed(math::as_milli(point.p_laser_w), 2)
              : "infeasible");
    }
    table.add_row(std::move(row));
  }
  table.render(std::cout);
  std::cout << (consistent
                    ? "\nstatic limit OK: env-resolved operating points "
                      "equal the alias solve bit for bit\n"
                    : "\nstatic limit FAILED\n");
  return consistent;
}

/// Part 2: the activity ramp.  Solver-level ceilings map to fall-off
/// times; the NoC closed loop confirms them.
void transient_ramp(bool smoke) {
  const double ramp_start = 0.5e-6;
  const double ramp_end = smoke ? 2.5e-6 : 4.5e-6;
  const double horizon = ramp_end + 0.5e-6;
  const double from = 0.25, to = 1.0;
  const auto ramp =
      env::EnvironmentTimeline::ramp(ramp_start, ramp_end, from, to);

  std::cout << "\n=== Transient: streaming through an activity ramp "
            << math::format_fixed(100 * from, 0) << " % -> "
            << math::format_fixed(100 * to, 0) << " % over ["
            << math::format_sci(ramp_start, 1) << ", "
            << math::format_sci(ramp_end, 1) << "] s @ BER "
            << math::format_sci(kTargetBer, 0) << " ===\n\n";

  const link::MwsrChannel channel{link::MwsrParams{}};
  const double step = smoke ? 0.02 : 0.005;
  const auto ceiling_time = [&](double ceiling) {
    if (ceiling >= to) return horizon;  // never falls off
    if (ceiling < from) return 0.0;
    return ramp_start +
           (ceiling - from) / (to - from) * (ramp_end - ramp_start);
  };

  math::TextTable table({"scheme", "ceiling [%]", "falls off at [us]",
                         "feasible window [%]"});
  double uncoded_falloff = 0.0, h74_falloff = 0.0;
  for (const auto& code : ecc::paper_schemes()) {
    const double ceiling = thermal_ceiling(channel, *code, step);
    const double falloff = ceiling_time(ceiling);
    if (code->name() == "w/o ECC") uncoded_falloff = falloff;
    if (code->name() == "H(7,4)") h74_falloff = falloff;
    table.add_row({code->name(),
                   math::format_fixed(100.0 * ceiling, 1),
                   math::format_fixed(falloff * 1e6, 2),
                   math::format_fixed(100.0 * falloff / horizon, 1)});
  }
  table.render(std::cout);
  std::cout << "\nHeadline: H(7,4) keeps the stream feasible "
            << math::format_fixed((h74_falloff - uncoded_falloff) * 1e6, 2)
            << " us longer than the uncoded scheme ("
            << math::format_fixed(
                   uncoded_falloff > 0.0 ? h74_falloff / uncoded_falloff
                                         : 0.0,
                   2)
            << "x the feasible window).\n";

  // Closed-loop confirmation: one streaming channel under the ramp.
  std::cout << "\nClosed-loop NoC confirmation (streaming frames, "
               "recalibrating manager):\n";
  math::TextTable noc_table({"menu", "delivered", "dropped(thermal)",
                             "recalibrations", "per-phase delivered"});
  for (const char* scheme : {"w/o ECC", "H(7,4)"}) {
    noc::NocConfig config;
    config.oni_count = 12;
    config.link_params.environment = ramp;
    config.scheme_menu = {ecc::make_code(scheme)};
    config.default_requirements.target_ber = kTargetBer;
    std::vector<noc::Message> schedule;
    const double period = smoke ? 100e-9 : 50e-9;
    for (std::uint64_t i = 0; static_cast<double>(i) * period < horizon;
         ++i) {
      noc::Message m;
      m.id = i;
      m.source = 1;
      m.destination = 0;
      m.payload_bits = 4096;
      m.creation_time_s = static_cast<double>(i) * period;
      schedule.push_back(m);
    }
    const auto result =
        noc::NocSimulator(config).run(std::move(schedule), horizon);
    std::string phases;
    for (const auto& phase : result.stats.phases) {
      if (!phases.empty()) phases += " / ";
      phases += phase.label + ":" + std::to_string(phase.delivered);
    }
    noc_table.add_row(
        {scheme, std::to_string(result.stats.delivered),
         std::to_string(result.stats.dropped) + " (" +
             std::to_string(result.stats.dropped_thermal) + ")",
         std::to_string(result.stats.recalibrations), phases});
  }
  noc_table.render(std::cout);
  std::cout << "\nReading: the static table freezes one operating "
               "point per activity; the ramp shows the same cliff as a "
               "time axis.  The uncoded scheme dies where AB5 said it "
               "would (~35 %), while H(7,4) streams through the whole "
               "ramp — coding as thermal headroom, measured in "
               "microseconds of survived workload.\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  if (!static_limit_table(smoke)) return 1;
  transient_ramp(smoke);
  return 0;
}
