// Table I reproduction: synthesis results of the transmitter/receiver
// interfaces for {w/o ECC, H(7,4), H(71,64)} at FIP = 1 GHz,
// Ndata = 64 bit, Fmod = 10 Gb/s on 28 nm FDSOI.
//
// Prints the paper's reference values (embedded dataset) next to the
// DSENT-style gate-level estimates derived from the actual generator
// matrices, so the substitution error is visible.
#include <iostream>

#include "photecc/interface/synthesis_model.hpp"
#include "photecc/math/table.hpp"

namespace {

using photecc::interface::InterfaceMode;
using photecc::interface::InterfaceSynthesis;
using photecc::math::format_fixed;

void print_side(const std::string& title,
                const InterfaceSynthesis& reference,
                const InterfaceSynthesis& estimate) {
  photecc::math::TextTable table(
      {"hardware block", "area [um2]", "crit. path [ps]", "static [nW]",
       "dynamic [uW]"});
  for (const auto& block : reference.blocks) {
    table.add_row({block.name + " (paper)",
                   format_fixed(block.area_um2, 0),
                   format_fixed(block.critical_path_ps, 0),
                   format_fixed(block.static_nw, 1),
                   format_fixed(block.dynamic_uw, 2)});
  }
  table.add_separator();
  for (const auto& block : estimate.blocks) {
    table.add_row({block.name + " (model)",
                   format_fixed(block.area_um2, 0),
                   format_fixed(block.critical_path_ps, 0),
                   format_fixed(block.static_nw, 1),
                   format_fixed(block.dynamic_uw, 2)});
  }
  std::cout << title << '\n';
  table.render(std::cout);

  photecc::math::TextTable totals(
      {"total (active path)", "paper [uW]", "model [uW]"});
  for (const auto mode :
       {InterfaceMode::kHamming74, InterfaceMode::kHamming7164,
        InterfaceMode::kUncoded}) {
    totals.add_row({photecc::interface::to_string(mode) + " com.",
                    format_fixed(reference.dynamic_uw(mode), 2),
                    format_fixed(estimate.dynamic_uw(mode), 2)});
  }
  totals.add_row({"area [um2]", format_fixed(reference.total_area_um2, 0),
                  format_fixed(estimate.total_area_um2, 0)});
  totals.render(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  std::cout << "=== Table I: synthesis results of the interfaces "
               "(28nm FDSOI, FIP=1GHz, Ndata=64, Fmod=10Gb/s) ===\n\n";
  const auto reference = photecc::interface::table1_reference();
  const photecc::interface::SynthesisEstimator estimator;
  const auto estimate = estimator.interface_pair();
  print_side("--- Transmitter ---", reference.transmitter,
             estimate.transmitter);
  print_side("--- Receiver ---", reference.receiver, estimate.receiver);
  std::cout << "Note: 'paper' rows are Table I as published; 'model' rows "
               "are the DSENT-style\ngate-level estimates this library "
               "derives from the generator matrices.\n";
  return 0;
}
