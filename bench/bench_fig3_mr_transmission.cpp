// Fig. 3 reproduction: optical transmission of the modulator micro-ring
// in ON (resonance aligned with the signal) and OFF (resonance shifted)
// states.  The extinction ratio at the signal wavelength is 6.9 dB
// [Rakowski et al.].
#include <iostream>

#include "photecc/link/mwsr_channel.hpp"
#include "photecc/math/interp.hpp"
#include "photecc/math/table.hpp"
#include "photecc/math/units.hpp"
#include "photecc/photonics/microring.hpp"

int main() {
  using namespace photecc;
  const photonics::MicroRing ring{photonics::MicroRingParams{}};
  const double signal = ring.params().resonance_wavelength_m;
  // ON state: resonance at the signal; OFF state: blue-shifted.
  const double res_on = signal;
  const double res_off = signal - ring.params().modulation_shift_m;

  std::cout << "=== Fig. 3: MR optical transmission, ON vs OFF state ===\n";
  std::cout << "FWHM = " << math::format_fixed(ring.fwhm() * 1e12, 2)
            << " pm, modulation shift = "
            << math::format_fixed(ring.params().modulation_shift_m * 1e12,
                                  2)
            << " pm\n\n";

  math::TextTable table({"detuning from signal [pm]", "ON [dB]",
                         "OFF [dB]"});
  const double span = 4.0 * ring.params().modulation_shift_m;
  for (const double delta : math::linspace(-span, span, 33)) {
    const double lambda = signal + delta;
    table.add_row({
        math::format_fixed(delta * 1e12, 1),
        math::format_fixed(math::to_db(ring.through(lambda, res_on)), 2),
        math::format_fixed(math::to_db(ring.through(lambda, res_off)), 2),
    });
  }
  table.render(std::cout);

  const double er_db = math::to_db(ring.extinction_ratio());
  std::cout << "\nExtinction ratio at the signal wavelength: "
            << math::format_fixed(er_db, 2)
            << " dB   (paper: 6.90 dB)\n";
  std::cout << "OFF-state ('1') insertion loss: "
            << math::format_fixed(-math::to_db(ring.through_off()), 2)
            << " dB, ON-state ('0') attenuation: "
            << math::format_fixed(-math::to_db(ring.through_on()), 2)
            << " dB\n";
  return 0;
}
