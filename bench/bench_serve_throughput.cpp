// Serve-daemon throughput benchmark: cold compute vs warm cache replay
// of the same sweep request, through the full NDJSON loop (parse,
// lower, execute, render, stream).
//
// Part 1 (headline): the 600-cell multi-axis grid requested twice from
// one service — the second response must be byte-identical and come
// from the PlanCache; the benchmark reports the cold/warm wall times
// and the replay speedup (the whole point of memoizing rendered
// responses: a warm request is pure byte copying).
//
// Part 2 (fan-out): 20 distinct single-change variants of the grid
// requested cold, then all 20 again warm — throughput with the cache
// populated vs not, plus occupancy counters.
//
// Usage: bench_serve_throughput [--smoke]
//   --smoke: the 12-cell fig6b grid, cold-vs-warm byte identity and
//   counter sanity only (no timing assertion — CI runs this in Debug).
//   Exit code != 0 on any identity or counter failure.
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "photecc/ecc/registry.hpp"
#include "photecc/serve/protocol.hpp"
#include "photecc/serve/service.hpp"
#include "photecc/spec/builder.hpp"
#include "photecc/spec/registries.hpp"

namespace {

using namespace photecc;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool check(bool condition, const std::string& what) {
  if (!condition) std::cerr << "FAILED: " << what << "\n";
  return condition;
}

std::string respond(serve::Service& service, const std::string& request) {
  std::ostringstream out;
  service.handle_line(request, out);
  return out.str();
}

spec::ExperimentSpec headline_spec() {
  std::vector<std::string> code_names;
  for (const auto& code : ecc::all_known_codes())
    code_names.push_back(code->name());
  return spec::SpecBuilder()
      .name("serve-headline")
      .codes(std::move(code_names))
      .ber_targets({1e-6, 1e-7, 1e-8, 1e-9, 1e-10, 1e-11})
      .links({"2 cm", "4 cm", "6 cm", "10 cm", "14 cm"})
      .build();
}

int run_smoke() {
  serve::Service service({.block_size = 5});
  const std::string request = serve::sweep_request_line(
      spec::preset_registry().make("fig6b", "--smoke"));
  const std::string cold = respond(service, request);
  const std::string warm = respond(service, request);

  bool ok = check(cold == warm, "cold vs warm byte identity");
  ok &= check(service.stats().cache_hits == 1, "one cache hit");
  ok &= check(service.stats().plans_lowered == 1, "one plan lowering");
  ok &= check(service.stats().cells_streamed == 24, "12 + 12 cells");
  ok &= check(service.stats().sweep.root_solves == 12,
              "replay added no root solves");
  if (!ok) return 1;
  std::cout << "smoke OK: fig6b replay byte-identical, "
            << service.cache().size_bytes() << "-byte cache entry, stats "
            << service.stats().json(service.cache()) << "\n";
  return 0;
}

int run_full() {
  // --- Part 1: one 600-cell request, cold then warm.
  serve::Service service({.threads = 0, .block_size = 64});
  const std::string request = serve::sweep_request_line(headline_spec());

  auto start = std::chrono::steady_clock::now();
  const std::string cold = respond(service, request);
  const double cold_s = seconds_since(start);

  // Best-of-5 warm replays: the warm path is pure byte copying of a
  // ~260 KB response, so single-shot timings are scheduler noise.
  std::string warm;
  double warm_s = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    start = std::chrono::steady_clock::now();
    warm = respond(service, request);
    const double s = seconds_since(start);
    if (rep == 0 || s < warm_s) warm_s = s;
  }

  bool ok = check(cold == warm, "600-cell cold vs warm byte identity");
  ok &= check(service.stats().cache_hits == 5, "headline cache hits");
  const double replay_speedup = warm_s > 0.0 ? cold_s / warm_s : 0.0;

  // --- Part 2: 20 distinct variants cold, then the same 20 warm.
  std::vector<std::string> requests;
  for (int i = 0; i < 20; ++i) {
    spec::ExperimentSpec variant = headline_spec();
    variant.name = "serve-variant-" + std::to_string(i);
    variant.ber_targets = {1e-6 / (i + 1), 1e-9 / (i + 1)};
    requests.push_back(serve::sweep_request_line(variant));
  }
  start = std::chrono::steady_clock::now();
  std::vector<std::string> cold_responses;
  for (const std::string& line : requests)
    cold_responses.push_back(respond(service, line));
  const double fanout_cold_s = seconds_since(start);

  start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < requests.size(); ++i)
    ok &= check(respond(service, requests[i]) == cold_responses[i],
                "variant " + std::to_string(i) + " replay identity");
  const double fanout_warm_s = seconds_since(start);

  ok &= check(service.stats().errors == 0, "no error records");
  ok &= check(service.stats().cache_hits == 25, "25 total cache hits");

  std::cout << "{\n"
            << "  \"benchmark\": \"serve_throughput\",\n"
            << "  \"headline_cells\": 600,\n"
            << "  \"cold_s\": " << cold_s << ",\n"
            << "  \"warm_s\": " << warm_s << ",\n"
            << "  \"replay_speedup\": " << replay_speedup << ",\n"
            << "  \"response_bytes\": " << cold.size() << ",\n"
            << "  \"fanout_requests\": " << requests.size() << ",\n"
            << "  \"fanout_cold_s\": " << fanout_cold_s << ",\n"
            << "  \"fanout_warm_s\": " << fanout_warm_s << ",\n"
            << "  \"identical_output\": " << (ok ? "true" : "false") << ",\n"
            << "  \"stats\": " << service.stats().json(service.cache())
            << "\n}\n";

  ok &= check(replay_speedup >= 5.0, "warm replay >= 5x cold compute");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  try {
    return smoke ? run_smoke() : run_full();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
