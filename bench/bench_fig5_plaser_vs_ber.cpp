// Fig. 5 reproduction: laser power Plaser needed to hit a target BER,
// per scheme, on the paper's MWSR channel (12 ONIs, 16 wavelengths,
// 6 cm waveguide at 0.274 dB/cm, ER = 6.9 dB).
//
// Expected shape: w/o ECC > H(71,64) > H(7,4) everywhere; w/o ECC
// infeasible at BER 1e-12 (exceeds the 700 uW optical ceiling); coded
// laser power roughly half of uncoded at 1e-11.
#include <iostream>

#include "photecc/ecc/registry.hpp"
#include "photecc/link/snr_solver.hpp"
#include "photecc/math/table.hpp"
#include "photecc/math/units.hpp"

int main() {
  using namespace photecc;
  const link::MwsrChannel channel{link::MwsrParams{}};
  const auto schemes = ecc::paper_schemes();

  std::cout << "=== Fig. 5: Plaser [mW] vs target BER and ECC scheme ===\n\n";
  math::TextTable table({"target BER", "w/o ECC", "H(71,64)", "H(7,4)"});
  for (int exponent = 12; exponent >= 3; --exponent) {
    const double ber = std::pow(10.0, -exponent);
    std::vector<std::string> row{"1e-" + std::to_string(exponent)};
    for (const auto& code : schemes) {
      const auto point = link::solve_operating_point(channel, *code, ber);
      row.push_back(point.feasible
                        ? math::format_fixed(
                              math::as_milli(point.p_laser_w), 2)
                        : "infeasible (" +
                              math::format_fixed(
                                  math::as_micro(point.op_laser_w), 0) +
                              " uW > 700 uW)");
    }
    table.add_row(std::move(row));
  }
  table.render(std::cout);

  std::cout << "\nPaper reference points @ BER 1e-11: w/o ECC 14.35 mW, "
               "H(71,64) 7.12 mW, H(7,4) 6.64 mW.\n";
  std::cout << "Paper @ 1e-12: w/o ECC infeasible; H(71,64)/H(7,4) "
               "feasible (~7.1/7.6 mW as printed; the two values appear\n"
               "swapped relative to the physical ordering - see "
               "EXPERIMENTS.md).\n";
  return 0;
}
