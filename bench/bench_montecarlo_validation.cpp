// Model validation (not a paper figure): bit-true Monte-Carlo BER of
// the OOK/AWGN channel and the Hamming codecs vs the analytic chain the
// paper builds on (Eq. 2 / Eq. 3).
//
// Sample counts are sized for ~1 s wall clock; raise
// PHOTECC_MC_SAMPLES for tighter confidence intervals.
#include <cstdlib>
#include <iostream>

#include "photecc/channel_sim/monte_carlo.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/math/table.hpp"

int main() {
  using namespace photecc;
  std::uint64_t samples = 200000;
  if (const char* env = std::getenv("PHOTECC_MC_SAMPLES"))
    samples = std::strtoull(env, nullptr, 10);

  std::cout << "=== Monte-Carlo validation of Eq. 2 / Eq. 3 ("
            << samples << " samples/point) ===\n\n";

  math::TextTable raw({"SNR", "analytic p (Eq.3)", "measured p",
                       "99% Wilson CI", "consistent"});
  for (const double snr : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    const auto m = channel_sim::measure_raw_ber(snr, samples);
    raw.add_row({math::format_fixed(snr, 1),
                 math::format_sci(m.analytic_ber, 3),
                 math::format_sci(m.measured_ber, 3),
                 // append() avoids GCC 12's -Wrestrict false positive
                 // (PR105651).
                 std::string("[").append(math::format_sci(m.interval.lower, 2))
                     + ", " + math::format_sci(m.interval.upper, 2) + "]",
                 m.consistent() ? "yes" : "NO"});
  }
  std::cout << "Raw channel (uncoded OOK over AWGN):\n";
  raw.render(std::cout);

  std::cout << "\nCoded transmission (bit-true encode -> channel -> "
               "syndrome decode):\n";
  math::TextTable coded({"code", "SNR", "Eq.2 BER", "measured BER",
                         "measured/Eq.2"});
  for (const char* name : {"H(7,4)", "H(15,11)", "H(71,64)", "REP(3,1)",
                           "eH(8,4)", "BCH(15,7,2)", "BCH(31,21,2)"}) {
    const auto code = ecc::make_code(name);
    for (const double snr : {2.0, 3.0}) {
      const auto m = channel_sim::measure_coded_ber(
          *code, snr, samples / code->block_length());
      coded.add_row(
          {name, math::format_fixed(snr, 1),
           math::format_sci(m.analytic_ber, 3),
           math::format_sci(m.measured_ber, 3),
           math::format_fixed(m.measured_ber / m.analytic_ber, 2)});
    }
  }
  coded.render(std::cout);
  std::cout << "\nEq. 2 (BER = p - p(1-p)^(n-1)) is itself an "
               "approximation: it counts a decode failure whenever the "
               "flipped bit has company, slightly over-counting "
               "miscorrections; ratios within ~2x are expected and "
               "observed.\n";

  std::cout << "\nEnd-to-end datapath (64-bit words through "
               "SER/DES + codec + channel):\n";
  math::TextTable e2e({"scheme", "SNR", "Eq.2 BER", "measured BER"});
  for (const char* name : {"w/o ECC", "H(7,4)", "H(71,64)"}) {
    const auto code = ecc::make_code(name);
    const double snr = 3.0;
    const auto m = channel_sim::measure_end_to_end_ber(
        code, snr, samples / 256, 64);
    e2e.add_row({name, math::format_fixed(snr, 1),
                 math::format_sci(m.analytic_ber, 3),
                 math::format_sci(m.measured_ber, 3)});
  }
  e2e.render(std::cout);
  return 0;
}
