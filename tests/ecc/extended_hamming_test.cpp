#include "photecc/ecc/extended_hamming.hpp"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "photecc/math/rng.hpp"

namespace photecc::ecc {
namespace {

BitVec random_message(std::size_t size, math::Xoshiro256& rng) {
  BitVec m(size);
  for (std::size_t i = 0; i < size; ++i) m.set(i, rng.bernoulli(0.5));
  return m;
}

TEST(ExtendedHamming, ParametersAddOneParityBit) {
  const ExtendedHammingCode code(3);
  EXPECT_EQ(code.name(), "eH(8,4)");
  EXPECT_EQ(code.block_length(), 8u);
  EXPECT_EQ(code.message_length(), 4u);
  EXPECT_EQ(code.min_distance(), 4u);
  EXPECT_EQ(code.correctable_errors(), 1u);
}

TEST(ExtendedHamming, CodewordsHaveEvenWeight) {
  const ExtendedHammingCode code(4);
  math::Xoshiro256 rng(0x5EC);
  for (int trial = 0; trial < 50; ++trial) {
    const BitVec cw = code.encode(random_message(11, rng));
    EXPECT_EQ(cw.popcount() % 2, 0u);
  }
}

TEST(ExtendedHamming, CleanRoundTrip) {
  const ExtendedHammingCode code(3);
  math::Xoshiro256 rng(0x5ECDED);
  for (int trial = 0; trial < 30; ++trial) {
    const BitVec message = random_message(4, rng);
    const DecodeResult result = code.decode(code.encode(message));
    EXPECT_EQ(result.message, message);
    EXPECT_FALSE(result.error_detected);
  }
}

class ExtendedHammingOrders : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(ExtendedHammingOrders, CorrectsEverySingleError) {
  const ExtendedHammingCode code(GetParam());
  math::Xoshiro256 rng(0xE0 + GetParam());
  const BitVec message = random_message(code.message_length(), rng);
  const BitVec codeword = code.encode(message);
  for (std::size_t pos = 0; pos < code.block_length(); ++pos) {
    BitVec corrupted = codeword;
    corrupted.flip(pos);
    const DecodeResult result = code.decode(corrupted);
    EXPECT_EQ(result.message, message) << "pos=" << pos;
    EXPECT_TRUE(result.corrected) << "pos=" << pos;
  }
}

TEST_P(ExtendedHammingOrders, DetectsEveryDoubleErrorWithoutMiscorrection) {
  // SECDED's defining property: any two flips are flagged as detected
  // and the decoder must NOT claim a correction (which would silently
  // corrupt a third position).
  const ExtendedHammingCode code(GetParam());
  math::Xoshiro256 rng(0xDD + GetParam());
  const BitVec message = random_message(code.message_length(), rng);
  const BitVec codeword = code.encode(message);
  for (std::size_t a = 0; a < code.block_length(); ++a) {
    for (std::size_t b = a + 1; b < code.block_length();
         b += (code.block_length() > 16 ? 7 : 1)) {  // sample large codes
      BitVec corrupted = codeword;
      corrupted.flip(a);
      corrupted.flip(b);
      const DecodeResult result = code.decode(corrupted);
      EXPECT_TRUE(result.error_detected) << "a=" << a << " b=" << b;
      EXPECT_FALSE(result.corrected) << "a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, ExtendedHammingOrders,
                         ::testing::Values(3, 4, 5, 6));

TEST(ExtendedHamming, BerModelMatchesPlainHammingForm) {
  const ExtendedHammingCode code(3);
  const double p = 1e-4;
  const double n = 8.0;
  EXPECT_NEAR(code.decoded_ber(p),
              p - p * std::pow(1.0 - p, n - 1.0), 1e-18);
  EXPECT_DOUBLE_EQ(code.decoded_ber(0.0), 0.0);
  EXPECT_THROW((void)code.decoded_ber(2.0), std::domain_error);
}

TEST(ExtendedHamming, SizeValidation) {
  const ExtendedHammingCode code(3);
  EXPECT_THROW((void)code.encode(BitVec(5)), std::invalid_argument);
  EXPECT_THROW((void)code.decode(BitVec(7)), std::invalid_argument);
}

}  // namespace
}  // namespace photecc::ecc
