#include "photecc/ecc/ber_model.hpp"

#include <cctype>
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "photecc/ecc/hamming.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/ecc/uncoded.hpp"
#include "photecc/math/special.hpp"

namespace photecc::ecc {
namespace {

TEST(BerModel, AchievedBerChainsEqThreeIntoEqTwo) {
  const HammingCode h74(3);
  const double snr = 11.0;
  const double p = math::raw_ber_from_snr(snr);
  EXPECT_DOUBLE_EQ(achieved_ber(h74, snr), h74.decoded_ber(p));
}

TEST(BerModel, RequiredSnrUncodedMatchesDirectInversion) {
  for (const double ber : {1e-3, 1e-9, 1e-11}) {
    EXPECT_DOUBLE_EQ(required_snr_uncoded(ber),
                     math::snr_from_raw_ber(ber));
  }
}

class RequiredSnrRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

TEST_P(RequiredSnrRoundTrip, AchievedBerAtRequiredSnrHitsTarget) {
  const auto [name, target] = GetParam();
  const BlockCodePtr code = make_code(name);
  const double snr = required_snr(*code, target);
  EXPECT_NEAR(achieved_ber(*code, snr) / target, 1.0, 1e-5)
      << name << " @ " << target;
}

INSTANTIATE_TEST_SUITE_P(
    CodesAndTargets, RequiredSnrRoundTrip,
    ::testing::Combine(::testing::Values("w/o ECC", "H(7,4)", "H(71,64)",
                                         "H(63,57)", "REP(3,1)"),
                       ::testing::Values(1e-6, 1e-9, 1e-11, 1e-12)),
    [](const auto& param_info) {
      std::string name = std::get<0>(param_info.param);
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      const double target = std::get<1>(param_info.param);
      return name + "_1em" + std::to_string(static_cast<int>(
                                 -std::log10(target) + 0.5));
    });

TEST(BerModel, PaperSnrValues) {
  // Section V-B operating points at BER 1e-11 (hand-derived from the
  // paper's equations): uncoded ~22.5, H(7,4) ~11.0, H(71,64) ~12.2.
  EXPECT_NEAR(required_snr_uncoded(1e-11), 22.5, 0.2);
  EXPECT_NEAR(required_snr(*make_code("H(7,4)"), 1e-11), 11.05, 0.1);
  EXPECT_NEAR(required_snr(*make_code("H(71,64)"), 1e-11), 12.23, 0.1);
}

TEST(BerModel, CodedSnrAlwaysBelowUncoded) {
  for (const auto& code : hamming_family()) {
    for (const double ber : {1e-6, 1e-9, 1e-12}) {
      EXPECT_LT(required_snr(*code, ber), required_snr_uncoded(ber))
          << code->name() << " @ " << ber;
    }
  }
}

TEST(BerModel, StrongerCodeNeedsLessSnr) {
  // H(7,4) corrects a larger fraction than H(71,64): lower SNR demand.
  for (const double ber : {1e-6, 1e-9, 1e-12}) {
    EXPECT_LT(required_snr(*make_code("H(7,4)"), ber),
              required_snr(*make_code("H(71,64)"), ber));
  }
}

TEST(BerModel, CodingGainPositiveAndOrdered) {
  const double ber = 1e-11;
  const double gain74 = coding_gain_db(*make_code("H(7,4)"), ber);
  const double gain7164 = coding_gain_db(*make_code("H(71,64)"), ber);
  EXPECT_GT(gain74, gain7164);
  EXPECT_GT(gain7164, 0.0);
  // Roughly 3 dB for H(7,4) at 1e-11 (22.5 / 11.05).
  EXPECT_NEAR(gain74, 3.09, 0.15);
}

TEST(BerModel, CodingGainGrowsTowardLowBer) {
  const auto h74 = make_code("H(7,4)");
  EXPECT_LT(coding_gain_db(*h74, 1e-6), coding_gain_db(*h74, 1e-12));
}

TEST(BerModel, RequiredSnrMonotoneInTarget) {
  const auto code = make_code("H(71,64)");
  double previous = required_snr(*code, 1e-3);
  for (const double ber : {1e-5, 1e-7, 1e-9, 1e-11, 1e-13}) {
    const double snr = required_snr(*code, ber);
    EXPECT_GT(snr, previous) << "ber=" << ber;
    previous = snr;
  }
}

TEST(BerModel, RequiredRawBerRejectsBadTargets) {
  const HammingCode h74(3);
  EXPECT_THROW((void)h74.required_raw_ber(0.0), std::domain_error);
  EXPECT_THROW((void)h74.required_raw_ber(0.5), std::domain_error);
  EXPECT_THROW((void)h74.required_raw_ber(-1e-9), std::domain_error);
}

TEST(BerModel, SaturationIsExplicitForUnrepresentableTargets) {
  const HammingCode h74(3);
  // A 1e-40 target would need p below the 1e-18 search floor (the true
  // inverse is sqrt(1e-40/6) ~ 4e-21); pre-fix the solve silently
  // returned a cancellation-noise root (~5e-17).  Now it saturates at
  // the bracket edge and says so.
  const auto saturated = h74.required_raw_ber_checked(1e-40);
  EXPECT_TRUE(saturated.saturated);
  EXPECT_DOUBLE_EQ(saturated.raw_ber, kMinSearchRawBer);
  EXPECT_DOUBLE_EQ(h74.required_raw_ber(1e-40), kMinSearchRawBer);
  // Representable targets are exact (non-saturated) inverses and are
  // bit-identical to the unchecked accessor.
  for (const double target : {1e-6, 1e-11, 1e-15}) {
    const auto exact = h74.required_raw_ber_checked(target);
    EXPECT_FALSE(exact.saturated) << target;
    EXPECT_NEAR(h74.decoded_ber(exact.raw_ber) / target, 1.0, 1e-6)
        << target;
    EXPECT_DOUBLE_EQ(exact.raw_ber, h74.required_raw_ber(target));
  }
  // A code whose decoded-BER model stays representable at the floor
  // (BCH sums positive terms) hits the explicit bracket-edge branch.
  const auto bch = make_code("BCH(15,7,2)");
  const auto edge = bch->required_raw_ber_checked(1e-60);
  EXPECT_TRUE(edge.saturated);
  EXPECT_DOUBLE_EQ(edge.raw_ber, kMinSearchRawBer);
}

TEST(BerModel, UncodedInverseNeverSaturates) {
  const UncodedScheme uncoded;
  const auto requirement = uncoded.required_raw_ber_checked(1e-15);
  EXPECT_FALSE(requirement.saturated);
  EXPECT_DOUBLE_EQ(requirement.raw_ber, 1e-15);
}

TEST(BerModel, ModulationAwareCompositionReducesToOok) {
  const HammingCode h74(3);
  for (const double snr : {10.0, 20.0, 36.0}) {
    EXPECT_DOUBLE_EQ(achieved_ber(h74, snr, math::Modulation::kOok),
                     achieved_ber(h74, snr));
  }
  for (const double target : {1e-6, 1e-9, 1e-12}) {
    EXPECT_DOUBLE_EQ(required_snr(h74, target, math::Modulation::kOok),
                     required_snr(h74, target));
    EXPECT_DOUBLE_EQ(
        coding_gain_db(h74, target, math::Modulation::kOok),
        coding_gain_db(h74, target));
  }
}

TEST(BerModel, Pam4NeedsMoreSnrButSameRawBer) {
  const HammingCode h74(3);
  for (const double target : {1e-6, 1e-9, 1e-12}) {
    const double ook = required_snr(h74, target, math::Modulation::kOok);
    const double pam4 =
        required_snr(h74, target, math::Modulation::kPam4);
    EXPECT_GT(pam4, 8.0 * ook) << target;
    EXPECT_LT(pam4, 9.0 * ook) << target;
    // Round-trip through the composed model.
    EXPECT_NEAR(
        achieved_ber(h74, pam4, math::Modulation::kPam4) / target, 1.0,
        1e-6);
  }
}

TEST(BerModel, CodingGainSimilarAcrossFormats) {
  // The code sees the raw BER, not the constellation: its SNR gain
  // ratio (in dB) carries over to PAM almost unchanged.
  const HammingCode h74(3);
  const double ook = coding_gain_db(h74, 1e-9, math::Modulation::kOok);
  const double pam4 =
      coding_gain_db(h74, 1e-9, math::Modulation::kPam4);
  EXPECT_NEAR(ook, pam4, 0.2);
}

// --- Warm-started requirement entry points (the sweep hot path).

TEST(RequiredRawBerWarm, BitEqualHintIsReusedWithZeroWork) {
  const HammingCode h74(3);
  const double target = 1e-9;
  RawBerSolveTrace cold_trace;
  const RawBerRequirement cold =
      h74.required_raw_ber_checked(target, &cold_trace);
  EXPECT_GT(cold_trace.iterations, 0);
  EXPECT_FALSE(cold_trace.warm);

  RawBerHint hint;
  hint.target_ber = target;
  hint.requirement = cold;
  RawBerSolveTrace warm_trace;
  const RawBerRequirement warm =
      h74.required_raw_ber_warm(target, &hint, &warm_trace);
  EXPECT_TRUE(warm_trace.warm);
  EXPECT_EQ(warm_trace.iterations, 0);
  EXPECT_EQ(warm.raw_ber, cold.raw_ber);  // bit-equal by construction
  EXPECT_EQ(warm.saturated, cold.saturated);
}

TEST(RequiredRawBerWarm, MismatchedHintRunsColdBitIdentically) {
  const HammingCode h74(3);
  RawBerHint hint;
  hint.target_ber = 1e-8;  // hint from a different BER target
  hint.requirement = h74.required_raw_ber_checked(1e-8);
  RawBerSolveTrace trace;
  const RawBerRequirement warm =
      h74.required_raw_ber_warm(1e-9, &hint, &trace);
  const RawBerRequirement cold = h74.required_raw_ber_checked(1e-9);
  EXPECT_FALSE(trace.warm);
  EXPECT_GT(trace.iterations, 0);
  EXPECT_EQ(warm.raw_ber, cold.raw_ber);
}

TEST(RequiredRawBerSeeded, NearGuessConvergesFastToTheColdRoot) {
  const HammingCode h74(3);
  const double target = 1e-9;
  RawBerSolveTrace cold_trace;
  const RawBerRequirement cold =
      h74.required_raw_ber_checked(target, &cold_trace);

  RawBerSolveTrace seeded_trace;
  const RawBerRequirement seeded =
      h74.required_raw_ber_seeded(target, cold.raw_ber, &seeded_trace);
  EXPECT_TRUE(seeded_trace.warm);
  EXPECT_LT(seeded_trace.iterations, cold_trace.iterations);
  // Tolerance-level agreement: the seeded solve is a diagnostic /
  // bench entry, not an export path, so bit-identity is not promised.
  EXPECT_NEAR(seeded.raw_ber / cold.raw_ber, 1.0, 1e-9);
}

TEST(RequiredRawBerSeeded, UselessGuessFallsBackCold) {
  const HammingCode h74(3);
  RawBerSolveTrace trace;
  const RawBerRequirement seeded =
      h74.required_raw_ber_seeded(1e-9, -1.0, &trace);
  const RawBerRequirement cold = h74.required_raw_ber_checked(1e-9);
  EXPECT_FALSE(trace.warm);
  EXPECT_EQ(seeded.raw_ber, cold.raw_ber);
}

TEST(RequiredRawBerTrace, UncodedClosedFormReportsZeroIterations) {
  const UncodedScheme uncoded{64};
  RawBerSolveTrace trace;
  const RawBerRequirement req =
      uncoded.required_raw_ber_checked(1e-9, &trace);
  EXPECT_EQ(trace.iterations, 0);
  EXPECT_FALSE(trace.warm);
  EXPECT_EQ(req.raw_ber, 1e-9);
}

}  // namespace
}  // namespace photecc::ecc
