#include "photecc/ecc/ber_model.hpp"

#include <cctype>
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "photecc/ecc/hamming.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/ecc/uncoded.hpp"
#include "photecc/math/special.hpp"

namespace photecc::ecc {
namespace {

TEST(BerModel, AchievedBerChainsEqThreeIntoEqTwo) {
  const HammingCode h74(3);
  const double snr = 11.0;
  const double p = math::raw_ber_from_snr(snr);
  EXPECT_DOUBLE_EQ(achieved_ber(h74, snr), h74.decoded_ber(p));
}

TEST(BerModel, RequiredSnrUncodedMatchesDirectInversion) {
  for (const double ber : {1e-3, 1e-9, 1e-11}) {
    EXPECT_DOUBLE_EQ(required_snr_uncoded(ber),
                     math::snr_from_raw_ber(ber));
  }
}

class RequiredSnrRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

TEST_P(RequiredSnrRoundTrip, AchievedBerAtRequiredSnrHitsTarget) {
  const auto [name, target] = GetParam();
  const BlockCodePtr code = make_code(name);
  const double snr = required_snr(*code, target);
  EXPECT_NEAR(achieved_ber(*code, snr) / target, 1.0, 1e-5)
      << name << " @ " << target;
}

INSTANTIATE_TEST_SUITE_P(
    CodesAndTargets, RequiredSnrRoundTrip,
    ::testing::Combine(::testing::Values("w/o ECC", "H(7,4)", "H(71,64)",
                                         "H(63,57)", "REP(3,1)"),
                       ::testing::Values(1e-6, 1e-9, 1e-11, 1e-12)),
    [](const auto& param_info) {
      std::string name = std::get<0>(param_info.param);
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      const double target = std::get<1>(param_info.param);
      return name + "_1em" + std::to_string(static_cast<int>(
                                 -std::log10(target) + 0.5));
    });

TEST(BerModel, PaperSnrValues) {
  // Section V-B operating points at BER 1e-11 (hand-derived from the
  // paper's equations): uncoded ~22.5, H(7,4) ~11.0, H(71,64) ~12.2.
  EXPECT_NEAR(required_snr_uncoded(1e-11), 22.5, 0.2);
  EXPECT_NEAR(required_snr(*make_code("H(7,4)"), 1e-11), 11.05, 0.1);
  EXPECT_NEAR(required_snr(*make_code("H(71,64)"), 1e-11), 12.23, 0.1);
}

TEST(BerModel, CodedSnrAlwaysBelowUncoded) {
  for (const auto& code : hamming_family()) {
    for (const double ber : {1e-6, 1e-9, 1e-12}) {
      EXPECT_LT(required_snr(*code, ber), required_snr_uncoded(ber))
          << code->name() << " @ " << ber;
    }
  }
}

TEST(BerModel, StrongerCodeNeedsLessSnr) {
  // H(7,4) corrects a larger fraction than H(71,64): lower SNR demand.
  for (const double ber : {1e-6, 1e-9, 1e-12}) {
    EXPECT_LT(required_snr(*make_code("H(7,4)"), ber),
              required_snr(*make_code("H(71,64)"), ber));
  }
}

TEST(BerModel, CodingGainPositiveAndOrdered) {
  const double ber = 1e-11;
  const double gain74 = coding_gain_db(*make_code("H(7,4)"), ber);
  const double gain7164 = coding_gain_db(*make_code("H(71,64)"), ber);
  EXPECT_GT(gain74, gain7164);
  EXPECT_GT(gain7164, 0.0);
  // Roughly 3 dB for H(7,4) at 1e-11 (22.5 / 11.05).
  EXPECT_NEAR(gain74, 3.09, 0.15);
}

TEST(BerModel, CodingGainGrowsTowardLowBer) {
  const auto h74 = make_code("H(7,4)");
  EXPECT_LT(coding_gain_db(*h74, 1e-6), coding_gain_db(*h74, 1e-12));
}

TEST(BerModel, RequiredSnrMonotoneInTarget) {
  const auto code = make_code("H(71,64)");
  double previous = required_snr(*code, 1e-3);
  for (const double ber : {1e-5, 1e-7, 1e-9, 1e-11, 1e-13}) {
    const double snr = required_snr(*code, ber);
    EXPECT_GT(snr, previous) << "ber=" << ber;
    previous = snr;
  }
}

TEST(BerModel, RequiredRawBerRejectsBadTargets) {
  const HammingCode h74(3);
  EXPECT_THROW((void)h74.required_raw_ber(0.0), std::domain_error);
  EXPECT_THROW((void)h74.required_raw_ber(0.5), std::domain_error);
  EXPECT_THROW((void)h74.required_raw_ber(-1e-9), std::domain_error);
}

}  // namespace
}  // namespace photecc::ecc
