#include "photecc/ecc/bch.hpp"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "photecc/ecc/hamming.hpp"
#include "photecc/math/rng.hpp"

namespace photecc::ecc {
namespace {

BitVec random_message(std::size_t size, math::Xoshiro256& rng) {
  BitVec m(size);
  for (std::size_t i = 0; i < size; ++i) m.set(i, rng.bernoulli(0.5));
  return m;
}

TEST(Bch, ClassicParameterSets) {
  EXPECT_EQ(BchCode(4, 2).name(), "BCH(15,7,2)");
  EXPECT_EQ(BchCode(4, 3).name(), "BCH(15,5,3)");
  EXPECT_EQ(BchCode(5, 2).name(), "BCH(31,21,2)");
  EXPECT_EQ(BchCode(6, 2).name(), "BCH(63,51,2)");
  EXPECT_EQ(BchCode(7, 2).name(), "BCH(127,113,2)");
  EXPECT_EQ(BchCode(4, 2).min_distance(), 5u);
  EXPECT_EQ(BchCode(4, 2).correctable_errors(), 2u);
}

TEST(Bch, SingleErrorBchMatchesHammingParameters) {
  // t = 1 BCH is the Hamming code of the same length.
  for (const unsigned m : {3u, 4u, 5u, 6u}) {
    const BchCode bch(m, 1);
    const HammingCode hamming(m);
    EXPECT_EQ(bch.block_length(), hamming.block_length());
    EXPECT_EQ(bch.message_length(), hamming.message_length());
  }
}

TEST(Bch, Bch157GeneratorIsTheTextbookPolynomial) {
  // g(x) = x^8 + x^7 + x^6 + x^4 + 1 = 0x1D1 for BCH(15,7,2) over
  // GF(16) with x^4 + x + 1.
  const BchCode code(4, 2);
  EXPECT_EQ(code.generator_polynomial(), 0x1D1u);
}

TEST(Bch, Validation) {
  EXPECT_THROW(BchCode(2, 1), std::invalid_argument);
  EXPECT_THROW(BchCode(4, 0), std::invalid_argument);
  EXPECT_THROW(BchCode(4, 8), std::invalid_argument);  // 2t >= n
  const BchCode code(4, 2);
  EXPECT_THROW((void)code.encode(BitVec(6)), std::invalid_argument);
  EXPECT_THROW((void)code.decode(BitVec(14)), std::invalid_argument);
}

struct BchCase {
  unsigned m;
  unsigned t;
};

class BchFamily : public ::testing::TestWithParam<BchCase> {};

TEST_P(BchFamily, CleanRoundTrip) {
  const BchCode code(GetParam().m, GetParam().t);
  math::Xoshiro256 rng(0xBC4 + GetParam().m * 16 + GetParam().t);
  for (int trial = 0; trial < 25; ++trial) {
    const BitVec message = random_message(code.message_length(), rng);
    const BitVec codeword = code.encode(message);
    EXPECT_EQ(codeword.size(), code.block_length());
    const DecodeResult result = code.decode(codeword);
    EXPECT_EQ(result.message, message);
    EXPECT_FALSE(result.error_detected);
  }
}

TEST_P(BchFamily, CodewordsAreMultiplesOfTheGenerator) {
  // Every systematic codeword evaluated as a GF(2) polynomial must have
  // zero remainder modulo g(x) — checked via the syndromes being zero,
  // and structurally via a fresh decode reporting no error.
  const BchCode code(GetParam().m, GetParam().t);
  math::Xoshiro256 rng(0x6E0 + GetParam().m);
  const BitVec cw = code.encode(random_message(code.message_length(), rng));
  EXPECT_FALSE(code.decode(cw).error_detected);
}

TEST_P(BchFamily, CorrectsEverySingleError) {
  const BchCode code(GetParam().m, GetParam().t);
  math::Xoshiro256 rng(0x51 + GetParam().m);
  const BitVec message = random_message(code.message_length(), rng);
  const BitVec codeword = code.encode(message);
  for (std::size_t pos = 0; pos < code.block_length(); ++pos) {
    BitVec corrupted = codeword;
    corrupted.flip(pos);
    const DecodeResult result = code.decode(corrupted);
    EXPECT_EQ(result.message, message) << "pos=" << pos;
    EXPECT_TRUE(result.corrected) << "pos=" << pos;
  }
}

TEST_P(BchFamily, CorrectsRandomPatternsUpToT) {
  const BchCode code(GetParam().m, GetParam().t);
  math::Xoshiro256 rng(0x77 + GetParam().m * 31 + GetParam().t);
  const BitVec message = random_message(code.message_length(), rng);
  const BitVec codeword = code.encode(message);
  for (unsigned weight = 2; weight <= GetParam().t; ++weight) {
    for (int trial = 0; trial < 40; ++trial) {
      BitVec corrupted = codeword;
      // Distinct random positions.
      std::vector<std::size_t> positions;
      while (positions.size() < weight) {
        const std::size_t pos = rng.bounded(code.block_length());
        bool seen = false;
        for (const std::size_t p : positions) seen |= (p == pos);
        if (!seen) positions.push_back(pos);
      }
      for (const std::size_t pos : positions) corrupted.flip(pos);
      const DecodeResult result = code.decode(corrupted);
      EXPECT_EQ(result.message, message)
          << "weight=" << weight << " trial=" << trial;
      EXPECT_TRUE(result.corrected);
    }
  }
}

TEST_P(BchFamily, BeyondTErrorsAreDetectedNotMiscorrectedSilently) {
  const BchCode code(GetParam().m, GetParam().t);
  math::Xoshiro256 rng(0x99 + GetParam().m);
  const BitVec message = random_message(code.message_length(), rng);
  const BitVec codeword = code.encode(message);
  // t+1 errors: the decoder may fail or (rarely, if within distance of
  // another codeword) miscorrect, but must always flag error_detected
  // and return a k-bit payload.
  for (int trial = 0; trial < 20; ++trial) {
    BitVec corrupted = codeword;
    std::vector<std::size_t> positions;
    while (positions.size() < GetParam().t + 1) {
      const std::size_t pos = rng.bounded(code.block_length());
      bool seen = false;
      for (const std::size_t p : positions) seen |= (p == pos);
      if (!seen) positions.push_back(pos);
    }
    for (const std::size_t pos : positions) corrupted.flip(pos);
    const DecodeResult result = code.decode(corrupted);
    EXPECT_TRUE(result.error_detected);
    EXPECT_EQ(result.message.size(), code.message_length());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Codes, BchFamily,
    ::testing::Values(BchCase{4, 1}, BchCase{4, 2}, BchCase{4, 3},
                      BchCase{5, 2}, BchCase{6, 2}, BchCase{7, 2},
                      BchCase{5, 3}),
    [](const ::testing::TestParamInfo<BchCase>& param_info) {
      return "m" + std::to_string(param_info.param.m) + "_t" +
             std::to_string(param_info.param.t);
    });

TEST(BchBerModel, ReducesToEquationTwoForTEqualsOne) {
  const BchCode bch(4, 1);
  const HammingCode hamming(4);
  for (const double p : {1e-8, 1e-5, 1e-3, 0.05}) {
    // The two are computed with different (mathematically equal)
    // expressions; Eq. 2's p - p(1-p)^(n-1) loses ~1e-9 relative to
    // cancellation at small p, so compare against that noise floor.
    EXPECT_NEAR(bch.decoded_ber(p) / hamming.decoded_ber(p), 1.0, 1e-7)
        << "p=" << p;
  }
}

TEST(BchBerModel, HigherTIsStrictlyStronger) {
  const BchCode t1(4, 1), t2(4, 2), t3(4, 3);
  for (const double p : {1e-6, 1e-4, 1e-2}) {
    EXPECT_LT(t2.decoded_ber(p), t1.decoded_ber(p)) << p;
    EXPECT_LT(t3.decoded_ber(p), t2.decoded_ber(p)) << p;
  }
}

TEST(BchBerModel, SmallPAsymptoticScalesAsPTotPlusOne) {
  // BER ~ C(n-1, t) p^(t+1) for p -> 0.
  const BchCode code(4, 2);
  const double p = 1e-7;
  const double expected = 91.0 * p * p * p;  // C(14,2) = 91
  EXPECT_NEAR(code.decoded_ber(p) / expected, 1.0, 1e-4);
}

TEST(BchBerModel, InversionRoundTrips) {
  const BchCode code(6, 2);
  for (const double target : {1e-6, 1e-9, 1e-12}) {
    const double p = code.required_raw_ber(target);
    EXPECT_NEAR(code.decoded_ber(p) / target, 1.0, 1e-5) << target;
  }
}

TEST(BchBerModel, NeedsLessSnrThanHammingAtSameLength) {
  // BCH(63,51,2) vs H(63,57): double correction buys SNR at a rate cost.
  const BchCode bch(6, 2);
  const HammingCode hamming(6);
  const double target = 1e-11;
  EXPECT_LT(bch.required_raw_ber(target), 0.5);
  EXPECT_GT(bch.required_raw_ber(target),
            hamming.required_raw_ber(target));
  // Higher tolerable raw p == lower SNR demand.
}

}  // namespace
}  // namespace photecc::ecc
