#include "photecc/ecc/interleaver.hpp"

#include <gtest/gtest.h>

#include "photecc/ecc/hamming.hpp"
#include "photecc/math/rng.hpp"

namespace photecc::ecc {
namespace {

BitVec random_word(std::size_t size, math::Xoshiro256& rng) {
  BitVec w(size);
  for (std::size_t i = 0; i < size; ++i) w.set(i, rng.bernoulli(0.5));
  return w;
}

TEST(Interleaver, Validation) {
  EXPECT_THROW(BlockInterleaver(0, 7), std::invalid_argument);
  EXPECT_THROW(BlockInterleaver(4, 0), std::invalid_argument);
  const BlockInterleaver il(4, 7);
  EXPECT_THROW((void)il.interleave(BitVec(27)), std::invalid_argument);
  EXPECT_THROW((void)il.deinterleave(BitVec(29)), std::invalid_argument);
}

TEST(Interleaver, Dimensions) {
  const BlockInterleaver il(16, 7);
  EXPECT_EQ(il.rows(), 16u);
  EXPECT_EQ(il.cols(), 7u);
  EXPECT_EQ(il.frame_bits(), 112u);
  EXPECT_EQ(il.burst_tolerance(), 16u);
}

TEST(Interleaver, KnownSmallPermutation) {
  // 2x3 frame [a b c / d e f] -> column order [a d b e c f].
  const BlockInterleaver il(2, 3);
  const BitVec frame = BitVec::from_string("101001");  // a..f
  EXPECT_EQ(il.interleave(frame).to_string(), "100011");
}

class InterleaverShapes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {
};

TEST_P(InterleaverShapes, RoundTripIsIdentity) {
  const auto [rows, cols] = GetParam();
  const BlockInterleaver il(rows, cols);
  math::Xoshiro256 rng(rows * 131 + cols);
  for (int trial = 0; trial < 10; ++trial) {
    const BitVec frame = random_word(il.frame_bits(), rng);
    EXPECT_EQ(il.deinterleave(il.interleave(frame)), frame);
    EXPECT_EQ(il.interleave(il.deinterleave(frame)), frame);
  }
}

TEST_P(InterleaverShapes, PreservesPopcount) {
  const auto [rows, cols] = GetParam();
  const BlockInterleaver il(rows, cols);
  math::Xoshiro256 rng(rows * 37 + cols);
  const BitVec frame = random_word(il.frame_bits(), rng);
  EXPECT_EQ(il.interleave(frame).popcount(), frame.popcount());
}

TEST_P(InterleaverShapes, BurstSpreadsToOneErrorPerRow) {
  // A contiguous burst of length <= rows lands on distinct rows after
  // deinterleaving.
  const auto [rows, cols] = GetParam();
  const BlockInterleaver il(rows, cols);
  const std::size_t total = il.frame_bits();
  for (std::size_t start = 0; start + rows <= total; start += 11) {
    BitVec burst(total);  // error mask
    for (std::size_t i = 0; i < rows; ++i) burst.set(start + i, true);
    const BitVec spread = il.deinterleave(burst);
    // Count errors per row of the deinterleaved frame (word-parallel
    // weight of each row slice).
    for (std::size_t r = 0; r < rows; ++r) {
      const std::size_t errors = spread.slice(r * cols, cols).popcount();
      EXPECT_LE(errors, 1u) << "rows=" << rows << " cols=" << cols
                            << " start=" << start << " row=" << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, InterleaverShapes,
    ::testing::Values(std::make_pair<std::size_t, std::size_t>(2, 3),
                      std::make_pair<std::size_t, std::size_t>(4, 7),
                      std::make_pair<std::size_t, std::size_t>(16, 7),
                      std::make_pair<std::size_t, std::size_t>(8, 71),
                      std::make_pair<std::size_t, std::size_t>(3, 64)));

TEST(Interleaver, HammingSurvivesABurstWithInterleaving) {
  // 16 H(7,4) codewords interleaved: a 16-bit burst corrupts one bit
  // per codeword — fully correctable.  Without interleaving the same
  // burst wipes out two codewords.
  const HammingCode h74(3);
  const BlockInterleaver il(16, 7);
  math::Xoshiro256 rng(0xB0057);

  BitVec frame(0);
  std::vector<BitVec> messages;
  for (int b = 0; b < 16; ++b) {
    messages.push_back(random_word(4, rng));
    frame = frame.concat(h74.encode(messages.back()));
  }

  const std::size_t burst_start = 23;
  const auto corrupt = [&](BitVec wire) {
    for (std::size_t i = 0; i < 16; ++i) wire.flip(burst_start + i);
    return wire;
  };

  // With interleaving: corrupt the interleaved wire, deinterleave,
  // decode.
  const BitVec received_il =
      il.deinterleave(corrupt(il.interleave(frame)));
  bool all_recovered = true;
  for (int b = 0; b < 16; ++b) {
    const DecodeResult r = h74.decode(received_il.slice(b * 7, 7));
    all_recovered &= (r.message == messages[b]);
  }
  EXPECT_TRUE(all_recovered);

  // Without interleaving: the burst clusters in adjacent codewords and
  // at least one payload is corrupted.
  const BitVec received_plain = corrupt(frame);
  bool any_corrupted = false;
  for (int b = 0; b < 16; ++b) {
    const DecodeResult r = h74.decode(received_plain.slice(b * 7, 7));
    any_corrupted |= (r.message != messages[b]);
  }
  EXPECT_TRUE(any_corrupted);
}

}  // namespace
}  // namespace photecc::ecc
