#include "photecc/ecc/bitvec.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace photecc::ecc {
namespace {

TEST(BitVec, DefaultIsEmpty) {
  const BitVec v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
}

TEST(BitVec, ConstructedZeroInitialised) {
  const BitVec v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.popcount(), 0u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_FALSE(v.get(i));
}

TEST(BitVec, SetGetFlipAcrossWordBoundary) {
  BitVec v(130);
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_EQ(v.popcount(), 4u);
  v.flip(64);
  EXPECT_FALSE(v.get(64));
  EXPECT_EQ(v.popcount(), 3u);
}

TEST(BitVec, IndexOutOfRangeThrows) {
  BitVec v(8);
  EXPECT_THROW((void)v.get(8), std::out_of_range);
  EXPECT_THROW(v.set(8, true), std::out_of_range);
  EXPECT_THROW(v.flip(100), std::out_of_range);
}

TEST(BitVec, FromUintUsesLittleEndianBitOrder) {
  const BitVec v = BitVec::from_uint(0b1011, 4);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(1));
  EXPECT_FALSE(v.get(2));
  EXPECT_TRUE(v.get(3));
  EXPECT_EQ(v.to_uint(), 0b1011u);
}

TEST(BitVec, FromUintMasksHighBits) {
  const BitVec v = BitVec::from_uint(0xFF, 4);
  EXPECT_EQ(v.to_uint(), 0xFu);
  EXPECT_THROW(BitVec::from_uint(1, 65), std::invalid_argument);
}

TEST(BitVec, FromStringRoundTrips) {
  const std::string bits = "1010011";
  const BitVec v = BitVec::from_string(bits);
  EXPECT_EQ(v.to_string(), bits);
  EXPECT_THROW(BitVec::from_string("10x"), std::invalid_argument);
}

TEST(BitVec, XorAndDistance) {
  const BitVec a = BitVec::from_string("110010");
  const BitVec b = BitVec::from_string("011010");
  EXPECT_EQ((a ^ b).to_string(), "101000");
  EXPECT_EQ(a.distance(b), 2u);
  EXPECT_EQ(a.distance(a), 0u);
  const BitVec c(5);
  EXPECT_THROW((void)a.distance(c), std::invalid_argument);
}

TEST(BitVec, SliceAndConcat) {
  const BitVec v = BitVec::from_string("11001010");
  EXPECT_EQ(v.slice(2, 4).to_string(), "0010");
  EXPECT_EQ(v.slice(0, 8).to_string(), "11001010");
  EXPECT_THROW((void)v.slice(5, 4), std::out_of_range);
  const BitVec joined = v.slice(0, 4).concat(v.slice(4, 4));
  EXPECT_EQ(joined, v);
}

TEST(BitVec, EqualityIncludesSize) {
  EXPECT_EQ(BitVec(4), BitVec(4));
  EXPECT_NE(BitVec(4), BitVec(5));
  BitVec a(4), b(4);
  a.set(2, true);
  EXPECT_NE(a, b);
  b.set(2, true);
  EXPECT_EQ(a, b);
}

TEST(BitVec, ToUintRejectsWideVectors) {
  const BitVec v(65);
  EXPECT_THROW((void)v.to_uint(), std::logic_error);
}

TEST(BitVec, PopcountOverMultipleWords) {
  BitVec v(200);
  for (std::size_t i = 0; i < 200; i += 3) v.set(i, true);
  EXPECT_EQ(v.popcount(), 67u);
}

TEST(BitVec, PopcountEmptyVectorIsZero) {
  EXPECT_EQ(BitVec{}.popcount(), 0u);
  EXPECT_EQ(BitVec(0).popcount(), 0u);
}

TEST(BitVec, WordsExposeLittleEndianBackingStore) {
  BitVec v(130);
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(129, true);
  const auto w = v.words();
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0], (std::uint64_t{1} << 63) | 1u);
  EXPECT_EQ(w[1], 1u);
  EXPECT_EQ(w[2], std::uint64_t{1} << 1);
  EXPECT_TRUE(BitVec{}.words().empty());
  // Bits past size() stay zero, so word-parallel consumers can trust
  // the tail.
  BitVec tail(70);
  for (std::size_t i = 0; i < 70; ++i) tail.set(i, true);
  EXPECT_EQ(tail.words()[1], 0x3Fu);
}

TEST(BitVec, CountErrorsMatchesPerBitComparison) {
  BitVec a(200), b(200);
  for (std::size_t i = 0; i < 200; i += 3) a.set(i, true);
  for (std::size_t i = 0; i < 200; i += 5) b.set(i, true);
  std::size_t reference = 0;
  for (std::size_t i = 0; i < 200; ++i)
    if (a.get(i) != b.get(i)) ++reference;
  EXPECT_EQ(a.count_errors(b), reference);
  EXPECT_EQ(b.count_errors(a), reference);
  EXPECT_EQ(a.count_errors(a), 0u);
  EXPECT_EQ(a.distance(b), reference) << "distance() must stay an alias";
  EXPECT_THROW((void)a.count_errors(BitVec(199)), std::invalid_argument);
}

TEST(BitVec, PopcountPartialTailWord) {
  // 70 bits: one full word plus a 6-bit tail.  Every set() keeps the
  // unused tail bits zero, so the word-parallel count must equal the
  // number of *valid* set bits exactly.
  BitVec v(70);
  for (std::size_t i = 64; i < 70; ++i) v.set(i, true);
  EXPECT_EQ(v.popcount(), 6u);
  for (std::size_t i = 0; i < 70; ++i) v.set(i, true);
  EXPECT_EQ(v.popcount(), 70u);
  v.flip(69);
  EXPECT_EQ(v.popcount(), 69u);
}

}  // namespace
}  // namespace photecc::ecc
