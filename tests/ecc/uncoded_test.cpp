#include "photecc/ecc/uncoded.hpp"

#include <gtest/gtest.h>

namespace photecc::ecc {
namespace {

TEST(Uncoded, IsIdentity) {
  const UncodedScheme scheme(8);
  const BitVec word = BitVec::from_string("10110001");
  EXPECT_EQ(scheme.encode(word), word);
  const DecodeResult r = scheme.decode(word);
  EXPECT_EQ(r.message, word);
  EXPECT_FALSE(r.error_detected);
  EXPECT_FALSE(r.corrected);
}

TEST(Uncoded, PaperFigures) {
  const UncodedScheme scheme(64);
  EXPECT_EQ(scheme.name(), "w/o ECC");
  EXPECT_DOUBLE_EQ(scheme.code_rate(), 1.0);
  EXPECT_DOUBLE_EQ(scheme.communication_time(), 1.0);  // CT = 1
  EXPECT_EQ(scheme.min_distance(), 1u);
  EXPECT_EQ(scheme.correctable_errors(), 0u);
}

TEST(Uncoded, BerModelIsIdentity) {
  const UncodedScheme scheme(64);
  for (const double p : {1e-12, 1e-6, 0.3}) {
    EXPECT_DOUBLE_EQ(scheme.decoded_ber(p), p);
    if (p <= 0.5) {
      EXPECT_DOUBLE_EQ(scheme.required_raw_ber(p), p);
    }
  }
  EXPECT_THROW((void)scheme.decoded_ber(-1.0), std::domain_error);
  EXPECT_THROW((void)scheme.required_raw_ber(0.0), std::domain_error);
  EXPECT_THROW((void)scheme.required_raw_ber(0.7), std::domain_error);
}

TEST(Uncoded, Validation) {
  EXPECT_THROW(UncodedScheme(0), std::invalid_argument);
  const UncodedScheme scheme(8);
  EXPECT_THROW((void)scheme.encode(BitVec(7)), std::invalid_argument);
  EXPECT_THROW((void)scheme.decode(BitVec(9)), std::invalid_argument);
}

}  // namespace
}  // namespace photecc::ecc
