#include "photecc/ecc/crc.hpp"

#include <gtest/gtest.h>

#include "photecc/math/rng.hpp"

namespace photecc::ecc {
namespace {

BitVec random_word(std::size_t size, math::Xoshiro256& rng) {
  BitVec w(size);
  for (std::size_t i = 0; i < size; ++i) w.set(i, rng.bernoulli(0.5));
  return w;
}

TEST(Crc, StandardVariantsConstruct) {
  EXPECT_EQ(Crc::crc8().width(), 8u);
  EXPECT_EQ(Crc::crc8().name(), "CRC-8");
  EXPECT_EQ(Crc::crc16_ccitt().width(), 16u);
  EXPECT_EQ(Crc::crc32().width(), 32u);
  EXPECT_THROW(Crc(0, 0x7, "bad"), std::invalid_argument);
  EXPECT_THROW(Crc(33, 0x7, "bad"), std::invalid_argument);
}

TEST(Crc, CleanFramesAlwaysPass) {
  math::Xoshiro256 rng(0xC2C);
  for (const Crc& crc : {Crc::crc8(), Crc::crc16_ccitt(), Crc::crc32()}) {
    for (int trial = 0; trial < 20; ++trial) {
      const BitVec data = random_word(64, rng);
      EXPECT_TRUE(crc.check(crc.append(data))) << crc.name();
    }
  }
}

TEST(Crc, AppendGrowsByWidth) {
  const Crc crc = Crc::crc16_ccitt();
  const BitVec data(40);
  EXPECT_EQ(crc.append(data).size(), 56u);
}

TEST(Crc, EverySingleBitErrorIsDetected) {
  // Any CRC with x+1 not dividing... actually every nonzero polynomial
  // CRC detects all single-bit errors.
  math::Xoshiro256 rng(0x1B17);
  for (const Crc& crc : {Crc::crc8(), Crc::crc16_ccitt(), Crc::crc32()}) {
    const BitVec framed = crc.append(random_word(48, rng));
    for (std::size_t pos = 0; pos < framed.size(); ++pos) {
      BitVec corrupted = framed;
      corrupted.flip(pos);
      EXPECT_FALSE(crc.check(corrupted))
          << crc.name() << " missed a flip at " << pos;
    }
  }
}

TEST(Crc, EveryDoubleBitErrorDetectedByCrc16OnShortFrames) {
  // CRC-16-CCITT has a large enough period to catch all double errors
  // on frames far below 2^15 bits.
  const Crc crc = Crc::crc16_ccitt();
  math::Xoshiro256 rng(0x2B17);
  const BitVec framed = crc.append(random_word(64, rng));
  for (std::size_t a = 0; a < framed.size(); ++a) {
    for (std::size_t b = a + 1; b < framed.size(); b += 5) {
      BitVec corrupted = framed;
      corrupted.flip(a);
      corrupted.flip(b);
      EXPECT_FALSE(crc.check(corrupted)) << a << "," << b;
    }
  }
}

TEST(Crc, BurstErrorsWithinWidthAreDetected) {
  // A CRC of width c detects every burst of length <= c.
  math::Xoshiro256 rng(0xB5E5);
  for (const Crc& crc : {Crc::crc8(), Crc::crc16_ccitt()}) {
    const BitVec framed = crc.append(random_word(64, rng));
    for (std::size_t start = 0; start + crc.width() <= framed.size();
         start += 3) {
      BitVec corrupted = framed;
      // Burst: flip first and last, random inside.
      corrupted.flip(start);
      corrupted.flip(start + crc.width() - 1);
      for (unsigned i = 1; i + 1 < crc.width(); ++i) {
        if (rng.bernoulli(0.5)) corrupted.flip(start + i);
      }
      EXPECT_FALSE(crc.check(corrupted)) << crc.name() << " @" << start;
    }
  }
}

TEST(Crc, ComputeIsDeterministicAndDataDependent) {
  const Crc crc = Crc::crc16_ccitt();
  const BitVec a = BitVec::from_string("1011001110001111");
  const BitVec b = BitVec::from_string("1011001110001110");
  EXPECT_EQ(crc.compute(a), crc.compute(a));
  EXPECT_NE(crc.compute(a), crc.compute(b));
}

TEST(Crc, CheckRejectsUndersizedFrames) {
  const Crc crc = Crc::crc16_ccitt();
  EXPECT_THROW((void)crc.check(BitVec(8)), std::invalid_argument);
}

}  // namespace
}  // namespace photecc::ecc
