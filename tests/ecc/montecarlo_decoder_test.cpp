// Bit-true encode -> flip -> decode Monte Carlo against the analytic
// decoded_ber model.  Errors are injected directly at an exact raw BER
// (no channel in between), so this cross-checks the code model itself:
// Eq. 2 is an approximation of the true post-decoding BER, hence the
// factor band rather than a tight confidence interval.
#include <cctype>
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "photecc/ecc/bitvec.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/math/rng.hpp"

namespace photecc::ecc {
namespace {

struct CrossCheckCase {
  const char* code;
  double raw_p;
  std::size_t words;
};

double measured_residual_ber(const BlockCode& code, double raw_p,
                             std::size_t words, math::Xoshiro256& rng) {
  const std::size_t k = code.message_length();
  const std::size_t n = code.block_length();
  std::uint64_t errors = 0;
  for (std::size_t w = 0; w < words; ++w) {
    BitVec message(k);
    for (std::size_t i = 0; i < k; ++i)
      message.set(i, rng.bernoulli(0.5));
    BitVec wire = code.encode(message);
    for (std::size_t i = 0; i < n; ++i)
      if (rng.bernoulli(raw_p)) wire.flip(i);
    errors += code.decode(wire).message.distance(message);
  }
  return static_cast<double>(errors) /
         static_cast<double>(words * k);
}

class DecoderCrossCheck
    : public ::testing::TestWithParam<CrossCheckCase> {};

TEST_P(DecoderCrossCheck, ResidualBerAgreesWithTheAnalyticModel) {
  const auto [name, raw_p, words] = GetParam();
  const auto code = make_code(name);
  const double analytic = code->decoded_ber(raw_p);
  math::Xoshiro256 rng(0xC001D00DULL ^
                       static_cast<std::uint64_t>(1e6 * raw_p));
  const double measured =
      measured_residual_ber(*code, raw_p, words, rng);
  // Enough statistics that zero observed errors would itself be a
  // failure, then the Eq. 2 factor band.
  EXPECT_GT(measured, 0.0) << name << " p=" << raw_p;
  EXPECT_GT(measured, analytic / 3.0)
      << name << " p=" << raw_p << " analytic=" << analytic;
  EXPECT_LT(measured, analytic * 3.0)
      << name << " p=" << raw_p << " analytic=" << analytic;
  // Decoding must not amplify beyond the raw channel at these rates.
  EXPECT_LT(measured, raw_p) << name << " p=" << raw_p;
}

INSTANTIATE_TEST_SUITE_P(
    TwoRawBerPoints, DecoderCrossCheck,
    ::testing::Values(CrossCheckCase{"H(7,4)", 1e-2, 60000},
                      CrossCheckCase{"H(7,4)", 3e-2, 20000},
                      CrossCheckCase{"BCH(15,7,2)", 1e-2, 120000},
                      CrossCheckCase{"BCH(15,7,2)", 3e-2, 30000}),
    [](const auto& info) {
      std::string tag = std::string(info.param.code) + "_p" +
                        std::to_string(static_cast<int>(
                            1000 * info.param.raw_p));
      for (char& c : tag)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return tag;
    });

}  // namespace
}  // namespace photecc::ecc
