// Bit-true encode -> flip -> decode Monte Carlo against the analytic
// decoded_ber model.  Errors are injected directly at an exact raw BER
// (no channel in between), so this cross-checks the code model itself:
// Eq. 2 is an approximation of the true post-decoding BER, hence the
// factor band rather than a tight confidence interval.
//
// The sweep runs through the batch codec kernels (codec::run_coded_trials,
// 64 codewords per slab pass) — the kernels' bit-identity to the scalar
// path is pinned separately in tests/codec/batch_equivalence_test.cpp,
// and the word counts here would be prohibitive per-bit: the menu spans
// every registry code family (Hamming ladder, shortened, SECDED,
// repetition, BCH t in {2,3}, cooling wraps).
#include <cctype>
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "photecc/codec/batch_mc.hpp"
#include "photecc/cooling/cooling_code.hpp"
#include "photecc/ecc/bitvec.hpp"
#include "photecc/ecc/interleaver.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/math/rng.hpp"

namespace photecc::ecc {
namespace {

struct CrossCheckCase {
  const char* code;
  double raw_p;
  std::size_t words;
};

double measured_residual_ber(const BlockCode& code, double raw_p,
                             std::size_t words, std::uint64_t seed) {
  const codec::BatchTrialResult trials =
      codec::run_coded_trials(code, raw_p, words, seed);
  return static_cast<double>(trials.bit_errors) /
         static_cast<double>(trials.bits);
}

class DecoderCrossCheck
    : public ::testing::TestWithParam<CrossCheckCase> {};

TEST_P(DecoderCrossCheck, ResidualBerAgreesWithTheAnalyticModel) {
  cooling::register_cooling_codes();
  const auto [name, raw_p, words] = GetParam();
  const auto code = make_code(name);
  const double analytic = code->decoded_ber(raw_p);
  const std::uint64_t seed =
      0xC001D00DULL ^ static_cast<std::uint64_t>(1e6 * raw_p);
  const double measured = measured_residual_ber(*code, raw_p, words, seed);
  // Enough statistics that zero observed errors would itself be a
  // failure, then the Eq. 2 factor band.
  EXPECT_GT(measured, 0.0) << name << " p=" << raw_p;
  EXPECT_GT(measured, analytic / 3.0)
      << name << " p=" << raw_p << " analytic=" << analytic;
  EXPECT_LT(measured, analytic * 3.0)
      << name << " p=" << raw_p << " analytic=" << analytic;
  // Decoding must not amplify beyond the raw channel at these rates.
  EXPECT_LT(measured, raw_p) << name << " p=" << raw_p;
}

INSTANTIATE_TEST_SUITE_P(
    FullMenu, DecoderCrossCheck,
    ::testing::Values(
        // The original two-code pin, at two raw BER points each.
        CrossCheckCase{"H(7,4)", 1e-2, 60000},
        CrossCheckCase{"H(7,4)", 3e-2, 20000},
        CrossCheckCase{"BCH(15,7,2)", 1e-2, 120000},
        CrossCheckCase{"BCH(15,7,2)", 3e-2, 30000},
        // The rest of the Hamming ladder plus the shortened forms.
        CrossCheckCase{"H(15,11)", 1e-2, 60000},
        CrossCheckCase{"H(31,26)", 1e-2, 40000},
        CrossCheckCase{"H(63,57)", 5e-3, 40000},
        CrossCheckCase{"H(127,120)", 2e-3, 60000},
        CrossCheckCase{"H(71,64)", 5e-3, 40000},
        CrossCheckCase{"H(12,8)", 1e-2, 60000},
        CrossCheckCase{"H(38,32)", 1e-2, 40000},
        // SECDED: Eq. 2 stays the (conservative) model; double-detect
        // only helps, so the band still holds at these rates.
        CrossCheckCase{"eH(8,4)", 1e-2, 60000},
        CrossCheckCase{"eH(16,11)", 1e-2, 60000},
        CrossCheckCase{"eH(64,57)", 5e-3, 40000},
        // Repetition majority vote (exact model, tight agreement).
        CrossCheckCase{"REP(3,1)", 3e-2, 400000},
        CrossCheckCase{"REP(5,1)", 5e-2, 300000},
        CrossCheckCase{"REP(7,1)", 5e-2, 400000},
        // The BCH family across t in {2, 3} and lengths 15..127.
        CrossCheckCase{"BCH(15,5,3)", 5e-2, 60000},
        CrossCheckCase{"BCH(31,21,2)", 2e-2, 40000},
        CrossCheckCase{"BCH(63,51,2)", 1e-2, 60000},
        CrossCheckCase{"BCH(127,113,2)", 5e-3, 60000},
        // Cooling wraps: pure (detection-only) and FEC-concatenated.
        CrossCheckCase{"COOL(H(7,4),1)", 1e-2, 60000},
        CrossCheckCase{"COOL(BCH(15,7,2),3)", 1e-2, 80000}),
    [](const auto& info) {
      std::string tag = std::string(info.param.code) + "_p" +
                        std::to_string(static_cast<int>(
                            1e5 * info.param.raw_p));
      for (char& c : tag)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return tag;
    });

TEST(InterleavedBurst, DepthCoversBurstThroughBatchKernels) {
  // Deterministic burst case: rows codewords interleaved column-wise; a
  // contiguous wire burst of length <= rows lands at most one error per
  // codeword, so H(7,4) repairs every lane of every frame.  Frames ride
  // the batch kernels and the batch interleaver (word permutation).
  const auto code = make_code("H(7,4)");
  const std::size_t rows = 4;
  const std::size_t n = code->block_length();
  const BlockInterleaver il(rows, n);
  math::Xoshiro256 rng(0xB1157);
  for (std::size_t burst_start = 0; burst_start + rows <= il.frame_bits();
       burst_start += 5) {
    // 64 frames of rows codewords each.
    codec::BitSlab messages(rows * code->message_length(), 64);
    for (std::size_t i = 0; i < messages.bits(); ++i)
      messages.word(i) = rng();
    codec::BitSlab frame(il.frame_bits(), 64);
    for (std::size_t r = 0; r < rows; ++r)
      frame.paste(r * n, code->encode_batch(messages.slice(
                             r * code->message_length(),
                             code->message_length())));
    codec::BitSlab wire = il.interleave_batch(frame);
    // The burst hits every lane of `rows` consecutive wire positions.
    for (std::size_t b = 0; b < rows; ++b)
      wire.word(burst_start + b) ^= wire.lane_mask();
    const codec::BitSlab back = il.deinterleave_batch(wire);
    for (std::size_t r = 0; r < rows; ++r) {
      const BatchDecodeResult decoded =
          code->decode_batch(back.slice(r * n, n));
      EXPECT_EQ(decoded.messages,
                messages.slice(r * code->message_length(),
                               code->message_length()))
          << "burst at " << burst_start << " row " << r;
    }
  }
}

}  // namespace
}  // namespace photecc::ecc
