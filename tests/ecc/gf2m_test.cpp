#include "photecc/ecc/gf2m.hpp"

#include <set>
#include <stdexcept>

#include <gtest/gtest.h>

namespace photecc::ecc {
namespace {

class GF2mOrders : public ::testing::TestWithParam<unsigned> {};

TEST_P(GF2mOrders, PowersOfAlphaEnumerateTheMultiplicativeGroup) {
  const GF2m field(GetParam());
  std::set<unsigned> seen;
  for (unsigned i = 0; i < field.order(); ++i) {
    const unsigned x = field.alpha_pow(static_cast<int>(i));
    EXPECT_NE(x, 0u);
    EXPECT_LT(x, field.size());
    EXPECT_TRUE(seen.insert(x).second) << "alpha^" << i << " repeats";
  }
  EXPECT_EQ(seen.size(), field.order());
}

TEST_P(GF2mOrders, LogIsInverseOfAlphaPow) {
  const GF2m field(GetParam());
  for (unsigned i = 0; i < field.order(); ++i) {
    EXPECT_EQ(field.log(field.alpha_pow(static_cast<int>(i))), i);
  }
}

TEST_P(GF2mOrders, MultiplicationAgreesWithLogs) {
  const GF2m field(GetParam());
  // Sample pairs; exhaustive for small fields.
  const unsigned stride = field.size() > 64 ? 7 : 1;
  for (unsigned a = 1; a < field.size(); a += stride) {
    for (unsigned b = 1; b < field.size(); b += stride) {
      const unsigned product = field.mul(a, b);
      EXPECT_EQ(field.log(product),
                (field.log(a) + field.log(b)) % field.order());
    }
  }
}

TEST_P(GF2mOrders, EveryNonZeroElementHasAWorkingInverse) {
  const GF2m field(GetParam());
  for (unsigned x = 1; x < field.size(); ++x) {
    EXPECT_EQ(field.mul(x, field.inv(x)), 1u) << "x=" << x;
  }
}

TEST_P(GF2mOrders, AlphaPowWrapsNegativeExponents) {
  const GF2m field(GetParam());
  EXPECT_EQ(field.alpha_pow(-1),
            field.inv(field.alpha_pow(1)));
  EXPECT_EQ(field.alpha_pow(static_cast<int>(field.order())), 1u);
  EXPECT_EQ(field.alpha_pow(0), 1u);
}

INSTANTIATE_TEST_SUITE_P(Fields, GF2mOrders,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 10));

TEST(GF2m, AdditionIsXor) {
  EXPECT_EQ(GF2m::add(0b101, 0b011), 0b110u);
  EXPECT_EQ(GF2m::add(7, 7), 0u);
}

TEST(GF2m, DivisionAndPow) {
  const GF2m field(4);
  for (unsigned a = 1; a < 16; ++a) {
    for (unsigned b = 1; b < 16; ++b) {
      EXPECT_EQ(field.mul(field.div(a, b), b), a);
    }
    EXPECT_EQ(field.pow(a, 3), field.mul(a, field.mul(a, a)));
    EXPECT_EQ(field.mul(field.pow(a, -2), field.pow(a, 2)), 1u);
  }
  EXPECT_EQ(field.pow(0, 0), 1u);
  EXPECT_EQ(field.pow(0, 5), 0u);
}

TEST(GF2m, DomainErrors) {
  const GF2m field(3);
  EXPECT_THROW((void)field.log(0), std::domain_error);
  EXPECT_THROW((void)field.inv(0), std::domain_error);
  EXPECT_THROW((void)field.div(1, 0), std::domain_error);
  EXPECT_THROW((void)field.pow(0, -1), std::domain_error);
  EXPECT_THROW(GF2m(1), std::invalid_argument);
  EXPECT_THROW(GF2m(15), std::invalid_argument);
}

TEST(GF2m, PolynomialEvaluation) {
  const GF2m field(4);
  // p(x) = 1 + x: p(alpha) = 1 ^ alpha.
  const unsigned alpha = field.alpha_pow(1);
  EXPECT_EQ(field.eval_poly({1, 1}, alpha), GF2m::add(1, alpha));
  // Constant polynomial.
  EXPECT_EQ(field.eval_poly({5}, 9), 5u);
  // Zero polynomial.
  EXPECT_EQ(field.eval_poly({}, 3), 0u);
}

TEST(GF2m, MinimalPolynomialOfAlphaIsThePrimitivePolynomial) {
  for (const unsigned m : {3u, 4u, 5u, 6u, 7u}) {
    const GF2m field(m);
    EXPECT_EQ(field.minimal_polynomial(1), field.primitive_polynomial())
        << "m=" << m;
  }
}

TEST(GF2m, MinimalPolynomialAnnihilatesItsElement) {
  const GF2m field(4);
  for (unsigned i = 1; i < field.order(); ++i) {
    const std::uint64_t mp = field.minimal_polynomial(i);
    // Evaluate the GF(2)-coefficient polynomial at beta = alpha^i.
    unsigned acc = 0;
    const unsigned beta = field.alpha_pow(static_cast<int>(i));
    for (unsigned d = 0; d < 64; ++d) {
      if ((mp >> d) & 1u)
        acc = GF2m::add(acc, field.pow(beta, static_cast<int>(d)));
    }
    EXPECT_EQ(acc, 0u) << "alpha^" << i;
  }
}

TEST(GF2m, KnownGf16MinimalPolynomials) {
  // Classic table for GF(16) with x^4 + x + 1: m1 = 0x13, m3 = x^4 +
  // x^3 + x^2 + x + 1 = 0x1F, m5 = x^2 + x + 1 = 0x7.
  const GF2m field(4);
  EXPECT_EQ(field.minimal_polynomial(1), 0x13u);
  EXPECT_EQ(field.minimal_polynomial(3), 0x1Fu);
  EXPECT_EQ(field.minimal_polynomial(5), 0x7u);
}

}  // namespace
}  // namespace photecc::ecc
