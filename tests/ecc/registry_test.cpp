#include "photecc/ecc/registry.hpp"

#include <set>

#include <gtest/gtest.h>

namespace photecc::ecc {
namespace {

TEST(Registry, MakesEveryAdvertisedCode) {
  for (const char* name :
       {"uncoded", "w/o ECC", "H(7,4)", "H(15,11)", "H(31,26)", "H(63,57)",
        "H(127,120)", "H(71,64)", "H(12,8)", "H(38,32)", "eH(8,4)",
        "eH(16,11)", "eH(64,57)", "REP(3,1)", "REP(5,1)", "REP(7,1)"}) {
    const BlockCodePtr code = make_code(name);
    ASSERT_NE(code, nullptr) << name;
    EXPECT_GT(code->block_length(), 0u) << name;
    EXPECT_LE(code->message_length(), code->block_length()) << name;
  }
}

TEST(Registry, NameRoundTripsThroughFactory) {
  for (const char* name :
       {"H(7,4)", "H(71,64)", "H(63,57)", "eH(8,4)", "REP(3,1)"}) {
    EXPECT_EQ(make_code(name)->name(), name);
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_code("H(8,4)"), std::invalid_argument);
  EXPECT_THROW(make_code(""), std::invalid_argument);
  EXPECT_THROW(make_code("turbo"), std::invalid_argument);
}

TEST(Registry, PaperSchemesInPresentationOrder) {
  const auto schemes = paper_schemes();
  ASSERT_EQ(schemes.size(), 3u);
  EXPECT_EQ(schemes[0]->name(), "w/o ECC");
  EXPECT_EQ(schemes[1]->name(), "H(71,64)");
  EXPECT_EQ(schemes[2]->name(), "H(7,4)");
}

TEST(Registry, HammingFamilyCoversLadder) {
  const auto family = hamming_family();
  ASSERT_EQ(family.size(), 6u);
  std::set<std::string> names;
  for (const auto& code : family) names.insert(code->name());
  EXPECT_TRUE(names.count("H(7,4)"));
  EXPECT_TRUE(names.count("H(127,120)"));
  EXPECT_TRUE(names.count("H(71,64)"));
}

TEST(Registry, AllKnownCodesAreDistinctAndValid) {
  const auto all = all_known_codes();
  EXPECT_GE(all.size(), 15u);
  std::set<std::string> names;
  for (const auto& code : all) {
    EXPECT_TRUE(names.insert(code->name()).second)
        << "duplicate " << code->name();
    // Every code must have an invertible BER model at a common target.
    const double p = code->required_raw_ber(1e-9);
    EXPECT_GT(p, 0.0) << code->name();
    EXPECT_LE(p, 0.5) << code->name();
  }
}

}  // namespace
}  // namespace photecc::ecc
