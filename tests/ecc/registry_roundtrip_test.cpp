// Guards the registry wiring the Table 1 sweep depends on: every code
// the registry can build must round-trip a clean random message and
// report a zero post-decoding BER on a perfect channel.
#include "photecc/ecc/registry.hpp"

#include <gtest/gtest.h>

#include "photecc/ecc/bitvec.hpp"
#include "photecc/math/rng.hpp"

namespace photecc::ecc {
namespace {

BitVec random_message(std::size_t k, math::Xoshiro256& rng) {
  BitVec message(k);
  for (std::size_t i = 0; i < k; ++i) message.set(i, rng.bernoulli(0.5));
  return message;
}

TEST(RegistryRoundtrip, EveryKnownCodeRoundTripsRandomMessages) {
  math::Xoshiro256 rng(0x1234abcdULL);
  for (const BlockCodePtr& code : all_known_codes()) {
    ASSERT_NE(code, nullptr);
    const std::size_t k = code->message_length();
    for (int trial = 0; trial < 16; ++trial) {
      const BitVec message = random_message(k, rng);
      const BitVec codeword = code->encode(message);
      ASSERT_EQ(codeword.size(), code->block_length()) << code->name();
      const DecodeResult result = code->decode(codeword);
      EXPECT_EQ(result.message, message)
          << code->name() << " trial " << trial;
      EXPECT_FALSE(result.error_detected)
          << code->name() << " flagged an error on a clean codeword";
    }
  }
}

TEST(RegistryRoundtrip, SingleErrorIsCorrectedWhenCodeCanCorrect) {
  math::Xoshiro256 rng(0x7f4a7c15ULL);
  for (const BlockCodePtr& code : all_known_codes()) {
    if (code->correctable_errors() < 1) continue;
    const BitVec message = random_message(code->message_length(), rng);
    BitVec received = code->encode(message);
    received.flip(rng.bounded(received.size()));
    const DecodeResult result = code->decode(received);
    EXPECT_EQ(result.message, message) << code->name();
  }
}

TEST(RegistryRoundtrip, DecodedBerIsZeroOnPerfectChannel) {
  for (const BlockCodePtr& code : all_known_codes()) {
    EXPECT_DOUBLE_EQ(code->decoded_ber(0.0), 0.0) << code->name();
  }
}

}  // namespace
}  // namespace photecc::ecc
