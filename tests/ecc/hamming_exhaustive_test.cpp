// Exhaustive verification of H(7,4): the syndrome decoder must agree
// with brute-force maximum-likelihood (minimum-distance) decoding over
// the *entire* 2^7 received-word space, and the code's weight
// distribution must match the textbook values.  Cheap at n = 7 and a
// strong guarantee against construction bugs.
#include <array>
#include <map>

#include <gtest/gtest.h>

#include "photecc/ecc/hamming.hpp"

namespace photecc::ecc {
namespace {

std::array<BitVec, 16> all_codewords(const HammingCode& code) {
  std::array<BitVec, 16> out;
  for (unsigned value = 0; value < 16; ++value) {
    out[value] = code.encode(BitVec::from_uint(value, 4));
  }
  return out;
}

TEST(HammingExhaustive, WeightDistributionIsTextbook) {
  // H(7,4) weight enumerator: 1 + 7 z^3 + 7 z^4 + z^7.
  const HammingCode code(3);
  std::map<std::size_t, int> histogram;
  for (const auto& codeword : all_codewords(code))
    ++histogram[codeword.popcount()];
  EXPECT_EQ(histogram[0], 1);
  EXPECT_EQ(histogram[3], 7);
  EXPECT_EQ(histogram[4], 7);
  EXPECT_EQ(histogram[7], 1);
  EXPECT_EQ(histogram.size(), 4u);
}

TEST(HammingExhaustive, CodewordsFormALinearCode) {
  // Closure under XOR: the sum of any two codewords is a codeword.
  const HammingCode code(3);
  const auto words = all_codewords(code);
  const auto is_codeword = [&](const BitVec& w) {
    for (const auto& c : words)
      if (c == w) return true;
    return false;
  };
  for (const auto& a : words) {
    for (const auto& b : words) {
      EXPECT_TRUE(is_codeword(a ^ b));
    }
  }
}

TEST(HammingExhaustive, SyndromeDecoderMatchesMinimumDistanceDecoding) {
  // For a perfect code every received word is within distance 1 of a
  // unique codeword; the syndrome decoder must find exactly it, for all
  // 128 possible received words.
  const HammingCode code(3);
  const auto words = all_codewords(code);
  for (unsigned received_bits = 0; received_bits < 128; ++received_bits) {
    const BitVec received = BitVec::from_uint(received_bits, 7);
    // Brute-force nearest codeword.
    std::size_t best_distance = 8;
    const BitVec* nearest = nullptr;
    for (const auto& c : words) {
      const std::size_t d = received.distance(c);
      if (d < best_distance) {
        best_distance = d;
        nearest = &c;
      }
    }
    ASSERT_NE(nearest, nullptr);
    ASSERT_LE(best_distance, 1u) << "not a perfect code?!";
    const DecodeResult result = code.decode(received);
    const BitVec reencoded = code.encode(result.message);
    EXPECT_EQ(reencoded, *nearest)
        << "received " << received.to_string() << " decoded to "
        << reencoded.to_string() << " but nearest is "
        << nearest->to_string();
    EXPECT_EQ(result.error_detected, best_distance > 0);
    EXPECT_EQ(result.corrected, best_distance > 0);
  }
}

TEST(HammingExhaustive, EveryMessageHasADistinctCodeword) {
  const HammingCode code(3);
  const auto words = all_codewords(code);
  for (std::size_t i = 0; i < words.size(); ++i) {
    for (std::size_t j = i + 1; j < words.size(); ++j) {
      EXPECT_NE(words[i], words[j]) << i << " vs " << j;
      EXPECT_GE(words[i].distance(words[j]), 3u);
    }
  }
}

TEST(HammingExhaustive, SpherePackingIsPerfect) {
  // The 16 codewords' radius-1 balls (size 8 each) tile the space:
  // 16 * 8 = 128 = 2^7 with no overlap — verified by decoding counts.
  const HammingCode code(3);
  const auto words = all_codewords(code);
  std::map<std::string, int> owner_count;
  for (unsigned received_bits = 0; received_bits < 128; ++received_bits) {
    const BitVec received = BitVec::from_uint(received_bits, 7);
    const DecodeResult result = code.decode(received);
    ++owner_count[code.encode(result.message).to_string()];
  }
  EXPECT_EQ(owner_count.size(), 16u);
  for (const auto& [codeword, count] : owner_count) {
    EXPECT_EQ(count, 8) << codeword;
  }
}

}  // namespace
}  // namespace photecc::ecc
