#include "photecc/ecc/hamming.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include <gtest/gtest.h>

#include "photecc/math/rng.hpp"

namespace photecc::ecc {
namespace {

BitVec random_message(std::size_t size, math::Xoshiro256& rng) {
  BitVec m(size);
  for (std::size_t i = 0; i < size; ++i) m.set(i, rng.bernoulli(0.5));
  return m;
}

// ---- construction ------------------------------------------------------

TEST(Hamming, ParametersMatchDefinition) {
  for (std::size_t m = 2; m <= 10; ++m) {
    const HammingCode code(m);
    EXPECT_EQ(code.block_length(), (1u << m) - 1);
    EXPECT_EQ(code.message_length(), (1u << m) - 1 - m);
    EXPECT_EQ(code.min_distance(), 3u);
    EXPECT_EQ(code.correctable_errors(), 1u);
    EXPECT_EQ(code.parity_bits(), m);
  }
}

TEST(Hamming, NamesFollowConvention) {
  EXPECT_EQ(HammingCode(3).name(), "H(7,4)");
  EXPECT_EQ(HammingCode(6).name(), "H(63,57)");
  EXPECT_EQ(HammingCode(7).name(), "H(127,120)");
}

TEST(Hamming, RejectsBadOrder) {
  EXPECT_THROW(HammingCode(1), std::invalid_argument);
  EXPECT_THROW(HammingCode(17), std::invalid_argument);
}

TEST(Hamming, CodeRateAndCommunicationTime) {
  const HammingCode h74(3);
  EXPECT_NEAR(h74.code_rate(), 4.0 / 7.0, 1e-15);
  EXPECT_NEAR(h74.communication_time(), 1.75, 1e-15);  // paper Section IV-D
  const HammingCode h6357(6);
  EXPECT_NEAR(h6357.communication_time(), 63.0 / 57.0, 1e-15);
}

TEST(Hamming, EncodeRejectsWrongSize) {
  const HammingCode code(3);
  EXPECT_THROW((void)code.encode(BitVec(5)), std::invalid_argument);
  EXPECT_THROW((void)code.decode(BitVec(6)), std::invalid_argument);
}

TEST(Hamming, KnownH74Codeword) {
  // Classic example: message 1011 -> codeword 0110011 with parity bits
  // at positions 1, 2, 4 (p1=0, p2=1, p4=0 for data d1..d4 = 1,0,1,1).
  const HammingCode code(3);
  const BitVec message = BitVec::from_string("1011");
  const BitVec codeword = code.encode(message);
  EXPECT_EQ(codeword.to_string(), "0110011");
}

// ---- round-trip and single-error-correction properties -----------------

struct CodeCase {
  std::size_t m;
  std::size_t shorten;
  [[nodiscard]] std::unique_ptr<BlockCode> make() const {
    if (shorten == 0) return std::make_unique<HammingCode>(m);
    return std::make_unique<ShortenedHammingCode>(m, shorten);
  }
};

class HammingFamily : public ::testing::TestWithParam<CodeCase> {};

TEST_P(HammingFamily, CleanRoundTripOnRandomPayloads) {
  const auto code = GetParam().make();
  math::Xoshiro256 rng(0xC0DE + GetParam().m);
  for (int trial = 0; trial < 50; ++trial) {
    const BitVec message = random_message(code->message_length(), rng);
    const BitVec codeword = code->encode(message);
    EXPECT_EQ(codeword.size(), code->block_length());
    const DecodeResult result = code->decode(codeword);
    EXPECT_EQ(result.message, message);
    EXPECT_FALSE(result.error_detected);
    EXPECT_FALSE(result.corrected);
  }
}

TEST_P(HammingFamily, EverySingleBitErrorIsCorrected) {
  const auto code = GetParam().make();
  math::Xoshiro256 rng(0xBEEF + GetParam().m);
  const BitVec message = random_message(code->message_length(), rng);
  const BitVec codeword = code->encode(message);
  for (std::size_t pos = 0; pos < code->block_length(); ++pos) {
    BitVec corrupted = codeword;
    corrupted.flip(pos);
    const DecodeResult result = code->decode(corrupted);
    EXPECT_EQ(result.message, message) << "error at position " << pos;
    EXPECT_TRUE(result.error_detected) << "error at position " << pos;
    EXPECT_TRUE(result.corrected) << "error at position " << pos;
  }
}

TEST_P(HammingFamily, SystematicMessageRecoverableFromCodeword) {
  // Every message bit appears unchanged somewhere in the codeword (the
  // construction is systematic up to position permutation): flipping
  // only parity positions must not change the decoded message.
  const auto code = GetParam().make();
  math::Xoshiro256 rng(0xFACE + GetParam().m);
  const BitVec message = random_message(code->message_length(), rng);
  const BitVec codeword = code->encode(message);
  const DecodeResult clean = code->decode(codeword);
  EXPECT_EQ(clean.message, message);
}

TEST_P(HammingFamily, DoubleErrorsNeverCrash) {
  const auto code = GetParam().make();
  math::Xoshiro256 rng(0xD0D0 + GetParam().m);
  const BitVec message = random_message(code->message_length(), rng);
  const BitVec codeword = code->encode(message);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t a = rng.bounded(code->block_length());
    std::size_t b = rng.bounded(code->block_length());
    if (a == b) b = (b + 1) % code->block_length();
    BitVec corrupted = codeword;
    corrupted.flip(a);
    corrupted.flip(b);
    const DecodeResult result = code->decode(corrupted);
    // A distance-3 code cannot correct 2 errors; the decoder must still
    // produce a k-bit output and flag the syndrome.
    EXPECT_EQ(result.message.size(), code->message_length());
    EXPECT_TRUE(result.error_detected);
  }
}

TEST_P(HammingFamily, CodewordsDifferInAtLeastMinDistance) {
  const auto code = GetParam().make();
  math::Xoshiro256 rng(0xD157);
  const BitVec m1 = random_message(code->message_length(), rng);
  for (int trial = 0; trial < 20; ++trial) {
    BitVec m2 = random_message(code->message_length(), rng);
    if (m2 == m1) continue;
    EXPECT_GE(code->encode(m1).distance(code->encode(m2)),
              code->min_distance());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Codes, HammingFamily,
    ::testing::Values(CodeCase{3, 0}, CodeCase{4, 0}, CodeCase{5, 0},
                      CodeCase{6, 0}, CodeCase{7, 0},
                      CodeCase{7, 56},  // H(71,64), the paper's code
                      CodeCase{4, 3},   // H(12,8)
                      CodeCase{6, 25}), // H(38,32)
    [](const ::testing::TestParamInfo<CodeCase>& param_info) {
      const auto code = param_info.param.make();
      std::string name = code->name();
      for (char& c : name)
        if (c == '(' || c == ')' || c == ',') c = '_';
      return name;
    });

// ---- shortened code specifics ------------------------------------------

TEST(ShortenedHamming, H7164HasPaperParameters) {
  const ShortenedHammingCode code = ShortenedHammingCode::h71_64();
  EXPECT_EQ(code.name(), "H(71,64)");
  EXPECT_EQ(code.block_length(), 71u);
  EXPECT_EQ(code.message_length(), 64u);
  EXPECT_EQ(code.parity_bits(), 7u);
  EXPECT_NEAR(code.communication_time(), 71.0 / 64.0, 1e-15);
  EXPECT_NEAR(code.code_rate(), 64.0 / 71.0, 1e-15);
}

TEST(ShortenedHamming, RejectsOverShortening) {
  EXPECT_THROW(ShortenedHammingCode(3, 4), std::invalid_argument);
  EXPECT_NO_THROW(ShortenedHammingCode(3, 3));  // (4,1) still valid
}

TEST(ShortenedHamming, AgreesWithBaseOnZeroPaddedMessages) {
  // Encoding a shortened message must equal encoding the zero-padded
  // message with the base code, restricted to the transmitted positions.
  const ShortenedHammingCode shortened(4, 3);  // H(12,8) from H(15,11)
  const HammingCode base(4);
  math::Xoshiro256 rng(0xAB);
  const BitVec message = random_message(8, rng);
  BitVec padded(11);
  for (std::size_t i = 0; i < 8; ++i) padded.set(i, message.get(i));
  const BitVec short_cw = shortened.encode(message);
  const BitVec base_cw = base.encode(padded);
  // The shortened codeword's parity content must make the base decoder
  // happy after re-insertion: decode must round-trip.
  EXPECT_EQ(shortened.decode(short_cw).message, message);
  // And the base codeword restricted to transmitted positions has the
  // same weight (removed positions were zeros).
  EXPECT_EQ(short_cw.popcount(), base_cw.popcount());
}

// ---- Eq. 2 BER model ----------------------------------------------------

TEST(HammingBerModel, MatchesEquationTwoClosedForm) {
  const HammingCode h74(3);
  for (const double p : {1e-8, 1e-6, 1e-4, 1e-2, 0.1}) {
    const double expected = p - p * std::pow(1.0 - p, 6.0);
    EXPECT_NEAR(h74.decoded_ber(p) / expected, 1.0, 1e-12) << "p=" << p;
  }
}

TEST(HammingBerModel, EdgeValues) {
  const HammingCode h74(3);
  EXPECT_DOUBLE_EQ(h74.decoded_ber(0.0), 0.0);
  EXPECT_THROW((void)h74.decoded_ber(-0.1), std::domain_error);
  EXPECT_THROW((void)h74.decoded_ber(1.1), std::domain_error);
}

TEST(HammingBerModel, ImprovesOnRawChannelForSmallP) {
  for (std::size_t m = 3; m <= 7; ++m) {
    const HammingCode code(m);
    for (const double p : {1e-9, 1e-6, 1e-4}) {
      EXPECT_LT(code.decoded_ber(p), p)
          << "m=" << m << " p=" << p;
    }
  }
}

TEST(HammingBerModel, ShorterBlocksWinAtSameRawBer) {
  // At identical raw p, a shorter Hamming block has fewer chances of a
  // second error: decoded BER must be lower for H(7,4) than H(71,64).
  const HammingCode h74(3);
  const ShortenedHammingCode h7164 = ShortenedHammingCode::h71_64();
  for (const double p : {1e-8, 1e-6, 1e-4}) {
    EXPECT_LT(h74.decoded_ber(p), h7164.decoded_ber(p)) << "p=" << p;
  }
}

TEST(HammingBerModel, SmallPAsymptoticIsQuadratic) {
  // BER ~ (n-1) p^2 for p -> 0.
  const HammingCode h74(3);
  const double p = 1e-9;
  EXPECT_NEAR(h74.decoded_ber(p) / (6.0 * p * p), 1.0, 1e-6);
}

class HammingInversion : public ::testing::TestWithParam<double> {};

TEST_P(HammingInversion, RequiredRawBerRoundTrips) {
  const double target = GetParam();
  for (std::size_t m : {3u, 6u, 7u}) {
    const HammingCode code(m);
    const double p = code.required_raw_ber(target);
    EXPECT_NEAR(code.decoded_ber(p) / target, 1.0, 1e-6)
        << "m=" << m << " target=" << target;
  }
}

INSTANTIATE_TEST_SUITE_P(Targets, HammingInversion,
                         ::testing::Values(1e-3, 1e-6, 1e-9, 1e-11, 1e-12,
                                           1e-15));

TEST(HammingInversion, PaperValueAtTenToMinusEleven) {
  // For H(7,4) at BER 1e-11: p ~ sqrt(1e-11 / 6) = 1.29e-6.
  const HammingCode h74(3);
  EXPECT_NEAR(h74.required_raw_ber(1e-11), 1.291e-6, 0.01e-6);
  const ShortenedHammingCode h7164 = ShortenedHammingCode::h71_64();
  EXPECT_NEAR(h7164.required_raw_ber(1e-11), 3.78e-7, 0.02e-7);
}

// ---- gate-count hooks ----------------------------------------------------

TEST(HammingGates, EncoderGateCountsArePlausible) {
  const HammingCode h74(3);
  // Each of the 3 parity bits XORs 3 data bits: 3 * (3-1) = 6 gates.
  EXPECT_EQ(h74.encoder_xor_gates(), 6u);
  // Decoder adds the parity positions and the k correction XORs.
  EXPECT_EQ(h74.decoder_xor_gates(), 3u * 3u + 4u);
}

TEST(HammingGates, ShortenedNeedsFewerGatesThanBase) {
  const HammingCode base(7);
  const ShortenedHammingCode shortened(7, 56);
  EXPECT_LT(shortened.encoder_xor_gates(), base.encoder_xor_gates());
  EXPECT_LT(shortened.decoder_xor_gates(), base.decoder_xor_gates());
}

}  // namespace
}  // namespace photecc::ecc
