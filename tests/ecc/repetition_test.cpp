#include "photecc/ecc/repetition.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace photecc::ecc {
namespace {

TEST(Repetition, ParametersAndValidation) {
  const RepetitionCode code(3);
  EXPECT_EQ(code.name(), "REP(3,1)");
  EXPECT_EQ(code.block_length(), 3u);
  EXPECT_EQ(code.message_length(), 1u);
  EXPECT_EQ(code.min_distance(), 3u);
  EXPECT_EQ(code.correctable_errors(), 1u);
  EXPECT_THROW(RepetitionCode(2), std::invalid_argument);
  EXPECT_THROW(RepetitionCode(4), std::invalid_argument);
  EXPECT_THROW(RepetitionCode(1), std::invalid_argument);
}

TEST(Repetition, EncodeReplicates) {
  const RepetitionCode code(5);
  EXPECT_EQ(code.encode(BitVec::from_string("1")).to_string(), "11111");
  EXPECT_EQ(code.encode(BitVec::from_string("0")).to_string(), "00000");
}

TEST(Repetition, MajorityVoteCorrectsMinorityFlips) {
  const RepetitionCode code(5);
  // Two of five flipped: majority still wins.
  const DecodeResult r = code.decode(BitVec::from_string("11010"));
  EXPECT_TRUE(r.message.get(0));
  EXPECT_TRUE(r.error_detected);
  EXPECT_TRUE(r.corrected);
}

TEST(Repetition, MajorityVoteFailsBeyondCapability) {
  const RepetitionCode code(3);
  // Two of three flipped: decoder picks the wrong bit (expected).
  const DecodeResult r = code.decode(BitVec::from_string("001"));
  EXPECT_FALSE(r.message.get(0) == true);
}

TEST(Repetition, CleanWordsDetectNothing) {
  const RepetitionCode code(3);
  EXPECT_FALSE(code.decode(BitVec::from_string("111")).error_detected);
  EXPECT_FALSE(code.decode(BitVec::from_string("000")).error_detected);
}

TEST(Repetition, BerModelMatchesBinomialTail) {
  const RepetitionCode code(3);
  for (const double p : {1e-6, 1e-3, 0.1}) {
    const double expected = 3.0 * p * p * (1.0 - p) + p * p * p;
    EXPECT_NEAR(code.decoded_ber(p) / expected, 1.0, 1e-12) << "p=" << p;
  }
}

TEST(Repetition, LongerCodesAreStronger) {
  const RepetitionCode r3(3), r5(5), r7(7);
  for (const double p : {1e-4, 1e-2}) {
    EXPECT_GT(r3.decoded_ber(p), r5.decoded_ber(p));
    EXPECT_GT(r5.decoded_ber(p), r7.decoded_ber(p));
  }
}

TEST(Repetition, TerribleRate) {
  EXPECT_NEAR(RepetitionCode(3).communication_time(), 3.0, 1e-15);
  EXPECT_NEAR(RepetitionCode(3).code_rate(), 1.0 / 3.0, 1e-15);
}

TEST(Repetition, SizeValidation) {
  const RepetitionCode code(3);
  EXPECT_THROW((void)code.encode(BitVec(2)), std::invalid_argument);
  EXPECT_THROW((void)code.decode(BitVec(4)), std::invalid_argument);
  EXPECT_THROW((void)code.decoded_ber(-0.5), std::domain_error);
}

}  // namespace
}  // namespace photecc::ecc
