#include "photecc/link/link_budget.hpp"

#include <gtest/gtest.h>

#include "photecc/math/units.hpp"

namespace photecc::link {
namespace {

TEST(LinkBudget, StagesMultiplyToTotalTransmission) {
  const MwsrChannel channel{MwsrParams{}};
  const LinkBudget budget = compute_link_budget(channel, 0);
  double product = 1.0;
  for (const auto& stage : budget.stages)
    product *= math::loss_db_to_transmission(stage.loss_db);
  EXPECT_NEAR(product / budget.total_transmission, 1.0, 1e-9);
}

TEST(LinkBudget, TotalMatchesChannelModelExactly) {
  const MwsrChannel channel{MwsrParams{}};
  for (const std::size_t ch : {std::size_t{0}, std::size_t{8}}) {
    const LinkBudget budget = compute_link_budget(channel, ch);
    EXPECT_NEAR(budget.total_transmission /
                    channel.signal_path_transmission(ch),
                1.0, 1e-12)
        << "ch=" << ch;
  }
}

TEST(LinkBudget, CumulativeColumnsAreConsistent) {
  const MwsrChannel channel{MwsrParams{}};
  const LinkBudget budget = compute_link_budget(channel, 0);
  double cumulative = 0.0;
  for (const auto& stage : budget.stages) {
    cumulative += stage.loss_db;
    EXPECT_NEAR(stage.cumulative_loss_db, cumulative, 1e-9);
    EXPECT_NEAR(stage.cumulative_transmission,
                math::loss_db_to_transmission(cumulative), 1e-9);
  }
  EXPECT_NEAR(budget.total_loss_db, cumulative, 1e-9);
}

TEST(LinkBudget, ContainsTheSevenPaperStages) {
  const MwsrChannel channel{MwsrParams{}};
  const LinkBudget budget = compute_link_budget(channel, 0);
  ASSERT_EQ(budget.stages.size(), 7u);
  EXPECT_NE(budget.stages[0].name.find("laser"), std::string::npos);
  EXPECT_NE(budget.stages[1].name.find("multiplexer"), std::string::npos);
  EXPECT_NE(budget.stages[2].name.find("waveguide"), std::string::npos);
  EXPECT_NE(budget.stages[3].name.find("parked"), std::string::npos);
  EXPECT_NE(budget.stages[4].name.find("modulator"), std::string::npos);
  EXPECT_NE(budget.stages[5].name.find("drop"), std::string::npos);
  EXPECT_NE(budget.stages[6].name.find("photodetector"), std::string::npos);
}

TEST(LinkBudget, WaveguideStageMatchesPaperNumbers) {
  const MwsrChannel channel{MwsrParams{}};
  const LinkBudget budget = compute_link_budget(channel, 0);
  EXPECT_NEAR(budget.stages[2].loss_db, 1.644, 1e-6);  // 0.274 x 6
}

TEST(LinkBudget, EyePenaltyReportedWhenEnabled) {
  MwsrParams params;
  params.include_eye_penalty = true;
  const LinkBudget with = compute_link_budget(MwsrChannel{params}, 0);
  EXPECT_GT(with.eye_penalty_db, 0.0);
  params.include_eye_penalty = false;
  const LinkBudget without = compute_link_budget(MwsrChannel{params}, 0);
  EXPECT_DOUBLE_EQ(without.eye_penalty_db, 0.0);
}

TEST(LinkBudget, CrosstalkTransmissionMirrorsChannel) {
  const MwsrChannel channel{MwsrParams{}};
  const std::size_t ch = channel.worst_channel();
  const LinkBudget budget = compute_link_budget(channel, ch);
  EXPECT_DOUBLE_EQ(budget.crosstalk_transmission,
                   channel.crosstalk_transmission(ch));
}

}  // namespace
}  // namespace photecc::link
