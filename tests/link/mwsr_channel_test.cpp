#include "photecc/link/mwsr_channel.hpp"

#include <gtest/gtest.h>

#include "photecc/math/units.hpp"

namespace photecc::link {
namespace {

TEST(MwsrChannel, DefaultsMatchPaperSetup) {
  const MwsrChannel channel{MwsrParams{}};
  EXPECT_EQ(channel.params().oni_count, 12u);
  EXPECT_EQ(channel.params().grid.channel_count, 16u);
  EXPECT_NEAR(channel.params().waveguide_length_m, 0.06, 1e-12);
  EXPECT_NEAR(channel.params().waveguide_loss_db_per_cm, 0.274, 1e-12);
  EXPECT_NEAR(math::to_db(channel.extinction_ratio()), 6.9, 1e-9);
  EXPECT_EQ(channel.writer_count(), 11u);
  EXPECT_EQ(channel.intermediate_writer_count(), 10u);
}

TEST(MwsrChannel, ConstructionValidation) {
  MwsrParams params;
  params.oni_count = 1;
  EXPECT_THROW(MwsrChannel{params}, std::invalid_argument);
  params = MwsrParams{};
  params.grid.channel_count = 0;
  EXPECT_THROW(MwsrChannel{params}, std::invalid_argument);
  params = MwsrParams{};
  params.chip_activity = 1.5;
  EXPECT_THROW(MwsrChannel{params}, std::invalid_argument);
}

TEST(MwsrChannel, SignalPathTransmissionIsAPowerRatio) {
  const MwsrChannel channel{MwsrParams{}};
  for (std::size_t ch = 0; ch < 16; ++ch) {
    const double t = channel.signal_path_transmission(ch);
    EXPECT_GT(t, 0.0) << ch;
    EXPECT_LT(t, 1.0) << ch;
  }
}

TEST(MwsrChannel, TotalLossInCalibratedRange) {
  // The calibrated default budget walks ~7.6 dB end to end (see
  // EXPERIMENTS.md); keep it pinned within a tolerance band so silent
  // model drift is caught.
  const MwsrChannel channel{MwsrParams{}};
  const double loss_db = math::transmission_to_loss_db(
      channel.signal_path_transmission(channel.worst_channel()));
  EXPECT_GT(loss_db, 6.5);
  EXPECT_LT(loss_db, 9.0);
}

TEST(MwsrChannel, BusTransmissionExcludesDropAndDetector) {
  const MwsrChannel channel{MwsrParams{}};
  const std::size_t ch = 0;
  const double expected =
      channel.bus_transmission(ch) * channel.ring().drop_aligned() *
      channel.detector().coupling_transmission();
  EXPECT_NEAR(channel.signal_path_transmission(ch), expected, 1e-15);
}

TEST(MwsrChannel, EyePenaltyShrinksSignal) {
  MwsrParams params;
  params.include_eye_penalty = true;
  const MwsrChannel with{params};
  params.include_eye_penalty = false;
  const MwsrChannel without{params};
  const std::size_t ch = 0;
  EXPECT_LT(with.eye_transmission(ch), without.eye_transmission(ch));
  // Factor equals 1 - 1/ER.
  const double er = with.extinction_ratio();
  EXPECT_NEAR(with.eye_transmission(ch) / without.eye_transmission(ch),
              1.0 - 1.0 / er, 1e-12);
}

TEST(MwsrChannel, CrosstalkPositiveAndSmallerThanSignal) {
  const MwsrChannel channel{MwsrParams{}};
  for (std::size_t ch = 0; ch < 16; ++ch) {
    const double xt = channel.crosstalk_transmission(ch);
    EXPECT_GT(xt, 0.0) << ch;
    EXPECT_LT(xt, channel.eye_transmission(ch)) << ch;
  }
}

TEST(MwsrChannel, CrosstalkFlagDisablesIt) {
  MwsrParams params;
  params.include_crosstalk = false;
  const MwsrChannel channel{params};
  EXPECT_DOUBLE_EQ(channel.crosstalk_transmission(0), 0.0);
}

TEST(MwsrChannel, EdgeChannelsSeeLessCrosstalkThanCentre) {
  const MwsrChannel channel{MwsrParams{}};
  const double edge = channel.crosstalk_transmission(0);
  const double centre = channel.crosstalk_transmission(8);
  EXPECT_LT(edge, centre);
}

TEST(MwsrChannel, WorstChannelIsACentreChannel) {
  const MwsrChannel channel{MwsrParams{}};
  const std::size_t worst = channel.worst_channel();
  EXPECT_GT(worst, 0u);
  EXPECT_LT(worst, 15u);
}

TEST(MwsrChannel, MoreOnisMeansMoreLoss) {
  MwsrParams params;
  params.oni_count = 4;
  const MwsrChannel small{params};
  params.oni_count = 24;
  const MwsrChannel large{params};
  EXPECT_GT(small.signal_path_transmission(0),
            large.signal_path_transmission(0));
}

TEST(MwsrChannel, LongerWaveguideMeansMoreLoss) {
  MwsrParams params;
  params.waveguide_length_m = 0.02;
  const MwsrChannel short_wg{params};
  params.waveguide_length_m = 0.10;
  const MwsrChannel long_wg{params};
  EXPECT_GT(short_wg.signal_path_transmission(0),
            long_wg.signal_path_transmission(0));
}

TEST(MwsrChannel, WiderChannelSpacingReducesCrosstalk) {
  MwsrParams params;
  params.grid.channel_spacing_m = 0.30e-9;
  const MwsrChannel dense{params};
  params.grid.channel_spacing_m = 0.60e-9;
  const MwsrChannel sparse{params};
  const std::size_t ch = 8;
  EXPECT_GT(dense.crosstalk_transmission(ch),
            sparse.crosstalk_transmission(ch));
}

TEST(MwsrChannel, CustomLaserModelIsUsed) {
  MwsrParams params;
  params.laser_model =
      std::make_shared<photonics::SelfHeatingVcselModel>();
  const MwsrChannel channel{params};
  EXPECT_EQ(channel.laser().name(), "self-heating-vcsel");
}

}  // namespace
}  // namespace photecc::link
