#include "photecc/link/snr_solver.hpp"

#include <gtest/gtest.h>

#include "photecc/ecc/ber_model.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/math/special.hpp"
#include "photecc/math/units.hpp"

namespace photecc::link {
namespace {

MwsrChannel paper_channel() { return MwsrChannel{MwsrParams{}}; }

TEST(SnrSolver, UncodedAtTenToMinusElevenMatchesPaper) {
  const auto channel = paper_channel();
  const auto code = ecc::make_code("w/o ECC");
  const auto point = solve_operating_point(channel, *code, 1e-11);
  ASSERT_TRUE(point.feasible);
  EXPECT_NEAR(point.snr, 22.5, 0.2);
  // Paper Section V-B: 14.35 mW per laser source.
  EXPECT_NEAR(math::as_milli(point.p_laser_w), 14.35, 0.75);
}

TEST(SnrSolver, UncodedAtTenToMinusTwelveIsInfeasible) {
  // The paper's headline feasibility result: BER 1e-12 exceeds the
  // 700 uW deliverable maximum without coding...
  const auto channel = paper_channel();
  const auto uncoded = ecc::make_code("w/o ECC");
  const auto point = solve_operating_point(channel, *uncoded, 1e-12);
  EXPECT_FALSE(point.feasible);
  EXPECT_GT(point.op_laser_w, 700e-6);
  // ...but both Hamming schemes reach it.
  for (const char* name : {"H(7,4)", "H(71,64)"}) {
    const auto coded = ecc::make_code(name);
    EXPECT_TRUE(solve_operating_point(channel, *coded, 1e-12).feasible)
        << name;
  }
}

TEST(SnrSolver, CodedLaserPowerRoughlyHalvesAtIsoQuality) {
  // Paper: 14.35 -> 7.12 (H(71,64)) and 6.64 (H(7,4)) mW at 1e-11.
  const auto channel = paper_channel();
  const auto uncoded =
      solve_operating_point(channel, *ecc::make_code("w/o ECC"), 1e-11);
  const auto h7164 =
      solve_operating_point(channel, *ecc::make_code("H(71,64)"), 1e-11);
  const auto h74 =
      solve_operating_point(channel, *ecc::make_code("H(7,4)"), 1e-11);
  ASSERT_TRUE(uncoded.feasible && h7164.feasible && h74.feasible);
  EXPECT_NEAR(uncoded.p_laser_w / h7164.p_laser_w, 2.0, 0.25);
  EXPECT_NEAR(uncoded.p_laser_w / h74.p_laser_w, 2.16, 0.3);
  // H(7,4) is the stronger code: lower SNR demand, lower laser power.
  EXPECT_LT(h74.p_laser_w, h7164.p_laser_w);
}

TEST(SnrSolver, OperatingPointFieldsAreConsistent) {
  const auto channel = paper_channel();
  const auto code = ecc::make_code("H(71,64)");
  const auto point = solve_operating_point(channel, *code, 1e-9);
  ASSERT_TRUE(point.feasible);
  // raw p reproduces the target through Eq. 2.
  EXPECT_NEAR(code->decoded_ber(point.raw_ber) / point.target_ber, 1.0,
              1e-6);
  // SNR reproduces raw p through Eq. 3.
  EXPECT_NEAR(math::raw_ber_from_snr(point.snr) / point.raw_ber, 1.0,
              1e-9);
  // Eq. 4 holds at the detector.
  const auto& det = channel.detector().params();
  const double snr_check =
      det.responsivity_a_per_w *
      (point.op_signal_w - point.op_crosstalk_w) / det.dark_current_a;
  EXPECT_NEAR(snr_check / point.snr, 1.0, 1e-9);
}

TEST(SnrSolver, LaserPowerMonotoneInBerTarget) {
  const auto channel = paper_channel();
  const auto code = ecc::make_code("H(7,4)");
  double previous = 0.0;
  for (const double ber : {1e-3, 1e-5, 1e-7, 1e-9, 1e-11}) {
    const auto point = solve_operating_point(channel, *code, ber);
    ASSERT_TRUE(point.feasible) << ber;
    EXPECT_GT(point.op_laser_w, previous) << ber;
    previous = point.op_laser_w;
  }
}

TEST(SnrSolver, ExplicitChannelIndexUsesThatChannel) {
  const auto channel = paper_channel();
  const auto code = ecc::make_code("w/o ECC");
  // Edge channel sees less crosstalk -> needs slightly less laser power
  // than the worst (centre) channel.
  const auto edge = solve_operating_point(channel, *code, 1e-9, 0);
  const auto worst = solve_operating_point(channel, *code, 1e-9);
  EXPECT_LT(edge.op_laser_w, worst.op_laser_w);
}

TEST(SnrSolver, RejectsNonsenseTargets) {
  const auto channel = paper_channel();
  const auto code = ecc::make_code("w/o ECC");
  EXPECT_THROW((void)solve_operating_point(channel, *code, 0.0),
               std::domain_error);
  EXPECT_THROW((void)solve_operating_point(channel, *code, 0.5),
               std::domain_error);
}

TEST(SnrSolver, CrosstalkDisabledLowersLaserPower) {
  MwsrParams params;
  params.include_crosstalk = true;
  const MwsrChannel with{params};
  params.include_crosstalk = false;
  const MwsrChannel without{params};
  const auto code = ecc::make_code("w/o ECC");
  EXPECT_GT(solve_operating_point(with, *code, 1e-9).op_laser_w,
            solve_operating_point(without, *code, 1e-9).op_laser_w);
}

TEST(SnrSolver, BestAchievableBerOrdersWithCodeStrength) {
  const auto channel = paper_channel();
  const double uncoded =
      best_achievable_ber(channel, *ecc::make_code("w/o ECC"));
  const double h7164 =
      best_achievable_ber(channel, *ecc::make_code("H(71,64)"));
  const double h74 =
      best_achievable_ber(channel, *ecc::make_code("H(7,4)"));
  EXPECT_LT(h74, h7164);
  EXPECT_LT(h7164, uncoded);
  // Paper: uncoded cannot reach 1e-12, coded can.
  EXPECT_GT(uncoded, 1e-12);
  EXPECT_LT(h74, 1e-12);
}

TEST(SnrSolver, Pam4NeedsNearNineTimesTheOokSnr) {
  MwsrParams params;
  params.modulation = math::Modulation::kPam4;
  const MwsrChannel pam4{params};
  const auto channel = paper_channel();
  const auto code = ecc::make_code("H(7,4)");
  const auto ook_point = solve_operating_point(channel, *code, 1e-9);
  const auto pam_point = solve_operating_point(pam4, *code, 1e-9);
  // Same code + target => identical required raw BER; the SNR (and so
  // the optical budget) scales with the (M-1)^2 sub-eye penalty.
  EXPECT_DOUBLE_EQ(pam_point.raw_ber, ook_point.raw_ber);
  EXPECT_GT(pam_point.snr, 8.0 * ook_point.snr);
  EXPECT_LT(pam_point.snr, 9.0 * ook_point.snr);
  EXPECT_GT(pam_point.op_laser_w, 8.0 * ook_point.op_laser_w);
}

TEST(SnrSolver, Pam4HitsTheLaserCeilingBeforeOok) {
  // The multilevel power penalty pushes deep-BER targets past the
  // 700 uW deliverable maximum that OOK still meets.
  MwsrParams params;
  params.modulation = math::Modulation::kPam4;
  const MwsrChannel pam4{params};
  const auto uncoded = ecc::make_code("w/o ECC");
  const auto ook_point =
      solve_operating_point(paper_channel(), *uncoded, 1e-9);
  const auto pam_point = solve_operating_point(pam4, *uncoded, 1e-9);
  EXPECT_TRUE(ook_point.feasible);
  EXPECT_FALSE(pam_point.feasible);
  // Consistently, the best achievable BER degrades with level count.
  EXPECT_GT(best_achievable_ber(pam4, *uncoded),
            best_achievable_ber(paper_channel(), *uncoded));
}

TEST(SnrSolver, EnvironmentSampleOverloadMatchesTheAliasAtTimeZero) {
  // The deprecated chip_activity alias and an explicit constant
  // timeline must produce byte-identical operating points, and the
  // sample-taking overload must agree with the default one.
  const auto code = ecc::make_code("H(7,4)");
  MwsrParams aliased;
  aliased.chip_activity = 0.4;
  MwsrParams timed;
  timed.environment = env::EnvironmentTimeline::constant(0.4);
  const MwsrChannel a{aliased};
  const MwsrChannel b{timed};
  const auto pa = solve_operating_point(a, *code, 1e-11);
  const auto pb = solve_operating_point(b, *code, 1e-11);
  EXPECT_EQ(pa.p_laser_w, pb.p_laser_w);
  EXPECT_EQ(pa.feasible, pb.feasible);
  const auto sampled =
      solve_operating_point(a, *code, 1e-11, a.environment());
  EXPECT_EQ(pa.p_laser_w, sampled.p_laser_w);
}

TEST(SnrSolver, HotterSampleNeedsMoreElectricalPower) {
  // Same optical requirement, hotter laser: the environment sample is
  // what carries the derating into the solve.
  MwsrParams params;
  params.environment = env::EnvironmentTimeline::ramp(0.0, 1e-6, 0.25, 1.0);
  const MwsrChannel channel{params};
  const auto code = ecc::make_code("H(7,4)");
  const auto cool = solve_operating_point(channel, *code, 1e-11,
                                          channel.environment_at(0.0));
  const auto hot = solve_operating_point(channel, *code, 1e-11,
                                         channel.environment_at(1e-6));
  ASSERT_TRUE(cool.feasible && hot.feasible);
  EXPECT_EQ(cool.op_laser_w, hot.op_laser_w);  // optics are unchanged
  EXPECT_GT(hot.p_laser_w, cool.p_laser_w);    // wall plug derates
  // And the uncoded scheme falls off the thermal cliff before 100 %.
  const auto uncoded_hot =
      solve_operating_point(channel, *ecc::make_code("w/o ECC"), 1e-11,
                            channel.environment_at(1e-6));
  EXPECT_FALSE(uncoded_hot.feasible);
}

TEST(SnrSolver, BestAchievableBerDegradesWithActivity) {
  const MwsrChannel channel{MwsrParams{}};
  const auto code = ecc::make_code("w/o ECC");
  const double cool =
      best_achievable_ber(channel, *code, {0.0, 0.25});
  const double hot = best_achievable_ber(channel, *code, {0.0, 0.9});
  EXPECT_LT(cool, hot);
}

TEST(SnrSolver, SelfHeatingLaserAblationKeepsTheOrdering) {
  MwsrParams params;
  params.laser_model = std::make_shared<photonics::SelfHeatingVcselModel>();
  const MwsrChannel channel{params};
  const auto uncoded =
      solve_operating_point(channel, *ecc::make_code("w/o ECC"), 1e-9);
  const auto h74 =
      solve_operating_point(channel, *ecc::make_code("H(7,4)"), 1e-9);
  ASSERT_TRUE(uncoded.feasible && h74.feasible);
  EXPECT_GT(uncoded.p_laser_w, h74.p_laser_w);
}

}  // namespace
}  // namespace photecc::link
