#include "photecc/env/environment.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace photecc::env {
namespace {

TEST(EnvironmentTimeline, DefaultIsThePaperOperatingPoint) {
  const EnvironmentTimeline timeline;
  EXPECT_TRUE(timeline.is_constant());
  EXPECT_DOUBLE_EQ(timeline.sample_at(0.0).activity, 0.25);
  EXPECT_DOUBLE_EQ(timeline.sample_at(1.0).activity, 0.25);
  EXPECT_DOUBLE_EQ(timeline.steady_state_activity(), 0.25);
}

TEST(EnvironmentTimeline, ConstantHoldsForever) {
  const auto timeline = EnvironmentTimeline::constant(0.6);
  for (const double t : {0.0, 1e-9, 1e-3, 1.0})
    EXPECT_DOUBLE_EQ(timeline.sample_at(t).activity, 0.6) << t;
  EXPECT_DOUBLE_EQ(timeline.steady_state_activity(), 0.6);
  EXPECT_EQ(timeline.label(), "constant@0.60");
}

TEST(EnvironmentTimeline, StepSwitchesAtTheStepTime) {
  const auto timeline = EnvironmentTimeline::step(1e-6, 0.2, 0.8);
  EXPECT_DOUBLE_EQ(timeline.sample_at(0.0).activity, 0.2);
  EXPECT_DOUBLE_EQ(timeline.sample_at(0.999e-6).activity, 0.2);
  // The step time itself belongs to the 'after' regime.
  EXPECT_DOUBLE_EQ(timeline.sample_at(1e-6).activity, 0.8);
  EXPECT_DOUBLE_EQ(timeline.sample_at(1.0).activity, 0.8);
  EXPECT_DOUBLE_EQ(timeline.steady_state_activity(), 0.8);
}

TEST(EnvironmentTimeline, RampInterpolatesLinearly) {
  const auto timeline = EnvironmentTimeline::ramp(1e-6, 3e-6, 0.2, 1.0);
  EXPECT_DOUBLE_EQ(timeline.sample_at(0.0).activity, 0.2);
  EXPECT_DOUBLE_EQ(timeline.sample_at(1e-6).activity, 0.2);
  EXPECT_DOUBLE_EQ(timeline.sample_at(2e-6).activity, 0.6);
  EXPECT_DOUBLE_EQ(timeline.sample_at(3e-6).activity, 1.0);
  EXPECT_DOUBLE_EQ(timeline.sample_at(9.0).activity, 1.0);
  EXPECT_DOUBLE_EQ(timeline.steady_state_activity(), 1.0);
}

TEST(EnvironmentTimeline, NegativeTimesSampleLikeZero) {
  const auto timeline = EnvironmentTimeline::ramp(0.0, 1e-6, 0.1, 0.9);
  const auto sample = timeline.sample_at(-5.0);
  EXPECT_DOUBLE_EQ(sample.activity, 0.1);
  EXPECT_DOUBLE_EQ(sample.time_s, 0.0);
}

TEST(EnvironmentTimeline, CyclicPhasesRepeat) {
  const auto timeline = EnvironmentTimeline::phases(
      {{1e-6, 0.2, "compute"}, {2e-6, 0.7, "burst"}}, true);
  EXPECT_DOUBLE_EQ(timeline.sample_at(0.5e-6).activity, 0.2);
  EXPECT_DOUBLE_EQ(timeline.sample_at(1.5e-6).activity, 0.7);
  // One full period later: same values.
  EXPECT_DOUBLE_EQ(timeline.sample_at(3.5e-6).activity, 0.2);
  EXPECT_DOUBLE_EQ(timeline.sample_at(4.5e-6).activity, 0.7);
  // Time-weighted mean: (1*0.2 + 2*0.7) / 3.
  EXPECT_NEAR(timeline.steady_state_activity(), 1.6 / 3.0, 1e-12);
}

TEST(EnvironmentTimeline, OneShotPhasesHoldTheLastActivity) {
  const auto timeline = EnvironmentTimeline::phases(
      {{1e-6, 0.2, ""}, {1e-6, 0.5, ""}}, false);
  EXPECT_DOUBLE_EQ(timeline.sample_at(10e-6).activity, 0.5);
  EXPECT_DOUBLE_EQ(timeline.steady_state_activity(), 0.5);
}

TEST(EnvironmentTimeline, SelfHeatingOpenLoopIsTheBaseline) {
  const auto timeline = EnvironmentTimeline::self_heating(0.3, 0.5, 1e-6);
  EXPECT_DOUBLE_EQ(timeline.sample_at(123.0).activity, 0.3);
  EXPECT_DOUBLE_EQ(timeline.steady_state_activity(), 0.3);
}

TEST(EnvironmentTimeline, FactoriesValidate) {
  EXPECT_THROW((void)EnvironmentTimeline::constant(-0.1),
               std::invalid_argument);
  EXPECT_THROW((void)EnvironmentTimeline::constant(1.1),
               std::invalid_argument);
  EXPECT_THROW((void)EnvironmentTimeline::step(-1.0, 0.2, 0.8),
               std::invalid_argument);
  EXPECT_THROW((void)EnvironmentTimeline::ramp(1e-6, 1e-6, 0.2, 0.8),
               std::invalid_argument);
  EXPECT_THROW((void)EnvironmentTimeline::phases({}, true),
               std::invalid_argument);
  EXPECT_THROW((void)EnvironmentTimeline::phases({{0.0, 0.5, ""}}, true),
               std::invalid_argument);
  EXPECT_THROW((void)EnvironmentTimeline::self_heating(0.2, 1.5, 1e-6),
               std::invalid_argument);
  EXPECT_THROW((void)EnvironmentTimeline::self_heating(0.2, 0.5, 0.0),
               std::invalid_argument);
}

TEST(EnvironmentTimeline, PhaseWindowsCoverTheHorizon) {
  const auto ramp = EnvironmentTimeline::ramp(1e-6, 2e-6, 0.2, 0.8);
  const auto windows = ramp.phase_windows(5e-6);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].label, "pre");
  EXPECT_EQ(windows[1].label, "ramp");
  EXPECT_EQ(windows[2].label, "post");
  EXPECT_DOUBLE_EQ(windows.front().start_s, 0.0);
  EXPECT_DOUBLE_EQ(windows.back().end_s, 5e-6);
  for (std::size_t i = 1; i < windows.size(); ++i)
    EXPECT_DOUBLE_EQ(windows[i].start_s, windows[i - 1].end_s) << i;

  // A horizon inside the ramp truncates the window list.
  const auto short_windows = ramp.phase_windows(1.5e-6);
  ASSERT_EQ(short_windows.size(), 2u);
  EXPECT_DOUBLE_EQ(short_windows.back().end_s, 1.5e-6);

  // Cyclic phases repeat with disambiguated labels.
  const auto cyclic = EnvironmentTimeline::phases(
      {{1e-6, 0.2, "a"}, {1e-6, 0.7, ""}}, true);
  const auto cyc_windows = cyclic.phase_windows(3.5e-6);
  ASSERT_EQ(cyc_windows.size(), 4u);
  EXPECT_EQ(cyc_windows[0].label, "a");
  EXPECT_EQ(cyc_windows[1].label, "phase1");
  EXPECT_EQ(cyc_windows[2].label, "a#1");
  EXPECT_DOUBLE_EQ(cyc_windows.back().end_s, 3.5e-6);
}

TEST(ThermalIntegrator, DeclarativeTimelinesJustSample) {
  ThermalIntegrator integrator{
      EnvironmentTimeline::ramp(0.0, 1e-6, 0.0, 1.0)};
  EXPECT_DOUBLE_EQ(integrator.advance_to(0.5e-6, 1.0).activity, 0.5);
  EXPECT_DOUBLE_EQ(integrator.advance_to(1e-6, 0.0).activity, 1.0);
  // Going backwards keeps the current sample.
  EXPECT_DOUBLE_EQ(integrator.advance_to(0.1e-6, 0.0).activity, 1.0);
}

TEST(ThermalIntegrator, SelfHeatingRelaxesTowardTheBusyTarget) {
  const double baseline = 0.2, gain = 0.6, tau = 1e-6;
  ThermalIntegrator integrator{
      EnvironmentTimeline::self_heating(baseline, gain, tau)};
  EXPECT_DOUBLE_EQ(integrator.current().activity, baseline);

  // Fully busy for one time constant: 1 - 1/e of the way to the target.
  const double target = baseline + gain;
  const auto after_tau = integrator.advance_to(tau, 1.0);
  EXPECT_NEAR(after_tau.activity,
              target + (baseline - target) * std::exp(-1.0), 1e-12);

  // Many time constants of full load: settles at baseline + gain.
  const auto settled = integrator.advance_to(30 * tau, 1.0);
  EXPECT_NEAR(settled.activity, target, 1e-9);

  // Idle again: cools back toward the baseline.
  const auto cooled = integrator.advance_to(60 * tau, 0.0);
  EXPECT_NEAR(cooled.activity, baseline, 1e-9);
}

TEST(ThermalIntegrator, DutyBoundScalesTheBusyFraction) {
  // The three-argument overload models a cooling code's wire-duty
  // guarantee: advance_to(t, busy, duty) == advance_to(t, busy * duty),
  // and duty == 1.0 is bit-identical to the two-argument form.
  const auto timeline = EnvironmentTimeline::self_heating(0.25, 0.75, 4e-7);
  ThermalIntegrator bounded{timeline};
  ThermalIntegrator scaled{timeline};
  ThermalIntegrator plain{timeline};
  const double duty = 11.0 / 15.0;
  double t = 0.0;
  for (const double busy : {1.0, 0.4, 0.0, 0.8}) {
    t += 2e-7;
    EXPECT_DOUBLE_EQ(bounded.advance_to(t, busy, duty).activity,
                     scaled.advance_to(t, busy * duty).activity)
        << t;
  }
  ThermalIntegrator unit{timeline};
  EXPECT_EQ(unit.advance_to(1e-6, 0.6, 1.0),
            plain.advance_to(1e-6, 0.6));
}

TEST(ThermalIntegrator, BusyFractionScalesTheTarget) {
  ThermalIntegrator integrator{
      EnvironmentTimeline::self_heating(0.2, 0.6, 1e-7)};
  const auto settled = integrator.advance_to(1e-5, 0.5);
  EXPECT_NEAR(settled.activity, 0.2 + 0.6 * 0.5, 1e-9);
}

TEST(SampleAt, FreeFunctionMatchesTheMethod) {
  const auto timeline = EnvironmentTimeline::step(1e-6, 0.1, 0.9);
  EXPECT_EQ(sample_at(timeline, 2e-6), timeline.sample_at(2e-6));
}

}  // namespace
}  // namespace photecc::env
