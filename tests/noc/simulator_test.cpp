#include "photecc/noc/simulator.hpp"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "photecc/ecc/registry.hpp"

namespace photecc::noc {
namespace {

NocConfig base_config() {
  NocConfig config;
  config.oni_count = 12;
  config.scheme_menu = ecc::paper_schemes();
  config.default_requirements.target_ber = 1e-9;
  config.default_requirements.policy = core::Policy::kMinEnergy;
  return config;
}

Message make_message(std::uint64_t id, std::size_t src, std::size_t dst,
                     std::uint64_t bits, double t,
                     TrafficClass cls = TrafficClass::kBestEffort) {
  Message m;
  m.id = id;
  m.source = src;
  m.destination = dst;
  m.payload_bits = bits;
  m.creation_time_s = t;
  m.traffic_class = cls;
  return m;
}

TEST(NocSimulator, DeliversEveryMessageExactlyOnce) {
  const NocSimulator sim(base_config());
  const UniformRandomTraffic traffic(12, 2e8, 4096);
  const double horizon = 20e-6;
  const auto schedule = traffic.generate(horizon, 5);
  const NocRunResult result = sim.run(schedule, horizon, true);
  EXPECT_EQ(result.stats.delivered + result.stats.dropped,
            schedule.size());
  EXPECT_EQ(result.stats.dropped, 0u);
  EXPECT_EQ(result.log.size(), result.stats.delivered);
  // Conservation of payload.
  std::uint64_t expected_bits = 0;
  for (const auto& m : schedule) expected_bits += m.payload_bits;
  EXPECT_EQ(result.total_payload_bits, expected_bits);
}

TEST(NocSimulator, LatencyIncludesSerializationFloor) {
  NocConfig config = base_config();
  config.laser_gating = false;
  const NocSimulator sim(config);
  // One lonely message: latency = arbitration + serialization + flight.
  const std::uint64_t bits = 16384;
  const auto result =
      sim.run({make_message(0, 1, 0, bits, 1e-6)}, 10e-6, true);
  ASSERT_EQ(result.stats.delivered, 1u);
  const double bits_per_lambda = std::ceil(bits / 16.0);
  const double ct = result.log[0].scheme == "w/o ECC" ? 1.0
                    : result.log[0].scheme == "H(71,64)"
                        ? 71.0 / 64.0
                        : 1.75;
  const double expected = config.arbitration_s +
                          bits_per_lambda * ct / 10e9 +
                          config.flight_time_s;
  EXPECT_NEAR(result.stats.mean_latency_s, expected, 1e-12);
}

TEST(NocSimulator, GatingAddsWakeLatencyForColdStart) {
  NocConfig gated = base_config();
  gated.laser_gating = true;
  NocConfig ungated = base_config();
  ungated.laser_gating = false;
  const auto schedule = {make_message(0, 1, 0, 4096, 1e-6)};
  const auto with = NocSimulator(gated).run(schedule, 10e-6);
  const auto without = NocSimulator(ungated).run(schedule, 10e-6);
  EXPECT_NEAR(with.stats.mean_latency_s - without.stats.mean_latency_s,
              gated.laser_wake_s, 1e-12);
}

TEST(NocSimulator, GatingSavesIdleEnergyOnSparseTraffic) {
  NocConfig gated = base_config();
  gated.laser_gating = true;
  NocConfig ungated = base_config();
  ungated.laser_gating = false;
  // Two distant messages leave a long idle window.
  const std::vector<Message> schedule{
      make_message(0, 1, 0, 4096, 1e-6),
      make_message(1, 2, 0, 4096, 80e-6)};
  const double horizon = 100e-6;
  const auto with = NocSimulator(gated).run(schedule, horizon);
  const auto without = NocSimulator(ungated).run(schedule, horizon);
  EXPECT_DOUBLE_EQ(with.stats.idle_laser_energy_j, 0.0);
  EXPECT_GT(without.stats.idle_laser_energy_j, 0.0);
  EXPECT_LT(with.stats.total_energy_j, without.stats.total_energy_j);
}

TEST(NocSimulator, EnergyMatchesAnalyticModelForOneTransfer) {
  NocConfig config = base_config();
  config.laser_gating = true;
  config.laser_wake_s = 0.0;
  const NocSimulator sim(config);
  const std::uint64_t bits = 65536;
  const auto result =
      sim.run({make_message(0, 3, 7, bits, 0.5e-6)}, 10e-6, true);
  ASSERT_EQ(result.log.size(), 1u);
  // Reconstruct from the manager's own metrics.
  core::CommunicationRequest request;
  request.target_ber = config.default_requirements.target_ber;
  request.policy = config.default_requirements.policy;
  const auto cfg = sim.manager().configure(request);
  ASSERT_TRUE(cfg.has_value());
  const double serialize_s =
      std::ceil(bits / 16.0) * cfg->metrics.ct / 10e9;
  const double expected =
      (cfg->metrics.p_laser_w + cfg->metrics.p_mr_w +
       cfg->metrics.p_enc_dec_w) *
      16.0 * serialize_s;
  EXPECT_NEAR(result.log[0].energy_j / expected, 1.0, 1e-9);
}

TEST(NocSimulator, RealTimeClassGetsFastScheme) {
  NocConfig config = base_config();
  config.class_requirements[TrafficClass::kRealTime] =
      ClassRequirements{1e-9, core::Policy::kMinTime, std::nullopt,
                        std::nullopt};
  config.class_requirements[TrafficClass::kMultimedia] =
      ClassRequirements{1e-9, core::Policy::kMinPower, std::nullopt,
                        std::nullopt};
  const NocSimulator sim(config);
  const std::vector<Message> schedule{
      make_message(0, 1, 0, 4096, 1e-6, TrafficClass::kRealTime),
      make_message(1, 2, 3, 4096, 1e-6, TrafficClass::kMultimedia)};
  const auto result = sim.run(schedule, 10e-6, true);
  ASSERT_EQ(result.log.size(), 2u);
  for (const auto& d : result.log) {
    if (d.message.traffic_class == TrafficClass::kRealTime)
      EXPECT_EQ(d.scheme, "w/o ECC");
    else
      EXPECT_EQ(d.scheme, "H(7,4)");
  }
  EXPECT_EQ(result.stats.scheme_usage.at("w/o ECC"), 1u);
  EXPECT_EQ(result.stats.scheme_usage.at("H(7,4)"), 1u);
}

TEST(NocSimulator, ContentionQueuesOnTheSameChannel) {
  NocConfig config = base_config();
  config.laser_gating = false;
  const NocSimulator sim(config);
  // Three writers hit reader 0 simultaneously: completions serialise.
  std::vector<Message> schedule;
  for (std::uint64_t i = 0; i < 3; ++i)
    schedule.push_back(make_message(i, i + 1, 0, 16384, 1e-6));
  const auto result = sim.run(schedule, 100e-6, true);
  ASSERT_EQ(result.log.size(), 3u);
  std::vector<double> ends;
  for (const auto& d : result.log) ends.push_back(d.completion_time_s);
  std::sort(ends.begin(), ends.end());
  const double tx = ends[0] - 1e-6;  // first transfer duration
  EXPECT_NEAR(ends[1] - ends[0], tx, tx * 0.2);
  EXPECT_NEAR(ends[2] - ends[1], tx, tx * 0.2);
  EXPECT_GT(result.stats.max_latency_s,
            2.5 * result.stats.mean_latency_s / 2.0);
}

TEST(NocSimulator, IndependentChannelsDoNotInterfere) {
  NocConfig config = base_config();
  const NocSimulator sim(config);
  // Same instant, different readers: identical latencies.
  const std::vector<Message> schedule{
      make_message(0, 1, 0, 8192, 1e-6),
      make_message(1, 2, 3, 8192, 1e-6)};
  const auto result = sim.run(schedule, 10e-6, true);
  ASSERT_EQ(result.log.size(), 2u);
  EXPECT_NEAR(result.log[0].latency_s, result.log[1].latency_s, 1e-15);
}

TEST(NocSimulator, DeadlineMissesAreCounted) {
  NocConfig config = base_config();
  const NocSimulator sim(config);
  Message tight = make_message(0, 1, 0, 1 << 20, 1e-6);
  tight.deadline_s = 1.1e-6;  // a megabit cannot fit in 100 ns
  Message loose = make_message(1, 2, 3, 4096, 1e-6);
  loose.deadline_s = 5e-6;
  const auto result = sim.run({tight, loose}, 1e-3, true);
  EXPECT_EQ(result.stats.deadline_misses, 1u);
}

TEST(NocSimulator, ImpossibleBerDropsMessages) {
  NocConfig config = base_config();
  config.scheme_menu = {ecc::make_code("w/o ECC")};
  config.default_requirements.target_ber = 1e-12;  // uncoded can't
  const NocSimulator sim(config);
  const auto result =
      sim.run({make_message(0, 1, 0, 4096, 1e-6)}, 10e-6);
  EXPECT_EQ(result.stats.delivered, 0u);
  EXPECT_EQ(result.stats.dropped, 1u);
}

TEST(NocSimulator, AdaptiveMenuBeatsUncodedOnlyOnEnergy) {
  // The paper's promise: scheme selection cuts energy without hurting
  // the BER guarantee.
  NocConfig adaptive = base_config();
  NocConfig uncoded_only = base_config();
  uncoded_only.scheme_menu = {ecc::make_code("w/o ECC")};
  const UniformRandomTraffic traffic(12, 2e8, 16384);
  const double horizon = 50e-6;
  const auto a =
      NocSimulator(adaptive).run(traffic, horizon, 77);
  const auto u =
      NocSimulator(uncoded_only).run(traffic, horizon, 77);
  EXPECT_EQ(a.stats.delivered, u.stats.delivered);
  EXPECT_LT(a.stats.total_energy_j, u.stats.total_energy_j);
}

TEST(NocSimulator, StatsPercentilesOrdered) {
  const NocSimulator sim(base_config());
  const UniformRandomTraffic traffic(12, 3e8, 8192);
  const auto result = sim.run(traffic, 30e-6, 13);
  ASSERT_GT(result.stats.delivered, 50u);
  EXPECT_LE(result.stats.mean_latency_s, result.stats.max_latency_s);
  EXPECT_LE(result.stats.p95_latency_s, result.stats.max_latency_s);
  EXPECT_GT(result.stats.p95_latency_s, 0.0);
  EXPECT_GT(result.stats.busy_time_s, 0.0);
  EXPECT_GT(result.stats.energy_per_bit_j(result.total_payload_bits),
            0.0);
}

TEST(NocSimulator, RoundRobinArbitrationIsFair) {
  // Three writers saturate one reader with equal demand; round-robin
  // must deliver equal counts (within one grant) from each source.
  NocConfig config = base_config();
  const NocSimulator sim(config);
  std::vector<Message> schedule;
  std::uint64_t id = 0;
  for (int round = 0; round < 30; ++round) {
    for (std::size_t src = 1; src <= 3; ++src) {
      // All created at t=0: contention is pure arbitration.
      schedule.push_back(make_message(id++, src, 0, 8192, 0.0));
    }
  }
  const auto result = sim.run(schedule, 1e-3, true);
  ASSERT_EQ(result.stats.delivered, 90u);
  // Check interleaving: among the first 9 completions, each source
  // appears exactly 3 times.
  std::vector<const DeliveredMessage*> log;
  for (const auto& d : result.log) log.push_back(&d);
  std::sort(log.begin(), log.end(),
            [](const DeliveredMessage* a, const DeliveredMessage* b) {
              return a->completion_time_s < b->completion_time_s;
            });
  std::map<std::size_t, int> first_nine;
  for (int i = 0; i < 9; ++i) ++first_nine[log[i]->message.source];
  for (const auto& [src, count] : first_nine) {
    EXPECT_EQ(count, 3) << "source " << src;
  }
}

TEST(NocSimulator, NoSecondWakeWhenArrivalCoincidesWithCompletion) {
  // Gating edge: a message arriving *exactly* when the previous
  // transfer completes finds the laser still on — it must not be
  // charged a second wake-up.
  NocConfig config = base_config();
  config.laser_gating = true;
  const NocSimulator sim(config);
  const auto first =
      sim.run({make_message(0, 1, 0, 4096, 1e-6)}, 1e-3, true);
  ASSERT_EQ(first.log.size(), 1u);
  const double completion = first.log[0].completion_time_s;

  const auto chained = sim.run({make_message(0, 1, 0, 4096, 1e-6),
                                make_message(1, 2, 0, 4096, completion)},
                               1e-3, true);
  ASSERT_EQ(chained.log.size(), 2u);
  // First message: cold start pays the wake; the coinciding arrival
  // pays only arbitration + serialization + flight.
  EXPECT_NEAR(chained.log[1].latency_s,
              chained.log[0].latency_s - config.laser_wake_s, 1e-15);

  // One tick later the channel has gone idle: the wake is back.
  const auto gapped = sim.run({make_message(0, 1, 0, 4096, 1e-6),
                               make_message(1, 2, 0, 4096, completion + 1e-9)},
                              1e-3, true);
  ASSERT_EQ(gapped.log.size(), 2u);
  EXPECT_NEAR(gapped.log[1].latency_s, gapped.log[0].latency_s, 1e-15);
}

TEST(NocSimulator, NoIdleBurnOverAnEmptyHorizonWithoutGating) {
  // Gating edge: with gating off but zero messages the simulator has
  // never configured a laser power, so there is nothing to burn — the
  // idle-laser energy over the whole horizon is exactly zero.
  NocConfig config = base_config();
  config.laser_gating = false;
  const NocSimulator sim(config);
  const auto result = sim.run(std::vector<Message>{}, 1e-3);
  EXPECT_EQ(result.stats.delivered, 0u);
  EXPECT_DOUBLE_EQ(result.stats.idle_laser_energy_j, 0.0);
  EXPECT_DOUBLE_EQ(result.stats.total_energy_j, 0.0);
  EXPECT_DOUBLE_EQ(result.stats.horizon_s, 1e-3);
}

TEST(NocSimulator, P95IsNearestRankOnAKnownTwentyMessageTrace) {
  // 20 lonely messages with strictly increasing payloads => 20 distinct
  // latencies with no queueing.  Nearest rank: ceil(0.95 * 20) = rank
  // 19, the 19th smallest (second largest) latency.
  NocConfig config = base_config();
  config.laser_gating = false;
  const NocSimulator sim(config);
  std::vector<Message> schedule;
  for (std::uint64_t i = 0; i < 20; ++i)
    schedule.push_back(make_message(i, 1, 0, 1024 * (i + 1),
                                    static_cast<double>(i + 1) * 50e-6));
  const auto result = sim.run(schedule, 2e-3, true);
  ASSERT_EQ(result.stats.delivered, 20u);
  std::vector<double> latencies;
  for (const auto& d : result.log) latencies.push_back(d.latency_s);
  std::sort(latencies.begin(), latencies.end());
  EXPECT_DOUBLE_EQ(result.stats.p95_latency_s, latencies[18]);
  EXPECT_LT(result.stats.p95_latency_s, result.stats.max_latency_s);

  // For 10 messages, rank ceil(9.5) = 10: nearest-rank p95 IS the
  // maximum (the old floor(0.95 * (N - 1)) definition picked index 8 —
  // this pins the documented definition).
  const auto ten = sim.run(
      std::vector<Message>(schedule.begin(), schedule.begin() + 10), 2e-3);
  ASSERT_EQ(ten.stats.delivered, 10u);
  EXPECT_DOUBLE_EQ(ten.stats.p95_latency_s, ten.stats.max_latency_s);
}

TEST(NocSimulator, InputValidation) {
  NocConfig too_small;
  too_small.oni_count = 1;
  EXPECT_THROW(NocSimulator{too_small}, std::invalid_argument);
  const NocSimulator sim(base_config());
  EXPECT_THROW((void)sim.run({make_message(0, 1, 1, 64, 0.0)}, 1e-6),
               std::invalid_argument);
  EXPECT_THROW((void)sim.run({make_message(0, 1, 99, 64, 0.0)}, 1e-6),
               std::invalid_argument);
  EXPECT_THROW((void)sim.run(std::vector<Message>{}, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace photecc::noc
