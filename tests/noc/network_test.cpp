// The tiled photonic network: topology mapping, bit-identical
// reduction to the single-channel simulator, per-channel statistics,
// and heterogeneous per-channel coding/environment behaviour.
#include "photecc/noc/network.hpp"

#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "photecc/ecc/registry.hpp"
#include "photecc/noc/simulator.hpp"
#include "photecc/noc/traffic.hpp"

namespace photecc::noc {
namespace {

Message make_message(std::uint64_t id, std::size_t src, std::size_t dst,
                     std::uint64_t bits, double t,
                     TrafficClass cls = TrafficClass::kBestEffort) {
  Message m;
  m.id = id;
  m.source = src;
  m.destination = dst;
  m.payload_bits = bits;
  m.creation_time_s = t;
  m.traffic_class = cls;
  return m;
}

TEST(NetworkTopology, InterleavedMappingSpreadsNeighbours) {
  NetworkTopology topo;
  topo.tile_count = 8;
  topo.channel_count = 4;
  topo.mapping = NetworkTopology::Mapping::kInterleaved;
  topo.validate();
  EXPECT_EQ(topo.channel_of_tile(0), 0u);
  EXPECT_EQ(topo.channel_of_tile(1), 1u);
  EXPECT_EQ(topo.channel_of_tile(5), 1u);
  EXPECT_EQ(topo.tiles_of_channel(2), (std::vector<std::size_t>{2, 6}));
}

TEST(NetworkTopology, BlockedMappingKeepsNeighboursTogether) {
  NetworkTopology topo;
  topo.tile_count = 8;
  topo.channel_count = 4;
  topo.mapping = NetworkTopology::Mapping::kBlocked;
  topo.validate();
  EXPECT_EQ(topo.channel_of_tile(0), 0u);
  EXPECT_EQ(topo.channel_of_tile(1), 0u);
  EXPECT_EQ(topo.channel_of_tile(7), 3u);
  EXPECT_EQ(topo.tiles_of_channel(1), (std::vector<std::size_t>{2, 3}));
}

TEST(NetworkTopology, EveryTileBelongsToExactlyOneChannel) {
  for (const auto mapping : {NetworkTopology::Mapping::kInterleaved,
                             NetworkTopology::Mapping::kBlocked}) {
    NetworkTopology topo;
    topo.tile_count = 13;  // deliberately not divisible by K
    topo.channel_count = 5;
    topo.mapping = mapping;
    topo.validate();
    std::size_t covered = 0;
    for (std::size_t ch = 0; ch < topo.channel_count; ++ch) {
      for (const std::size_t tile : topo.tiles_of_channel(ch)) {
        EXPECT_EQ(topo.channel_of_tile(tile), ch);
        ++covered;
      }
    }
    EXPECT_EQ(covered, topo.tile_count);
  }
}

TEST(NetworkTopology, RejectsUnusableGeometries) {
  NetworkTopology topo;
  topo.tile_count = 1;
  EXPECT_THROW(topo.validate(), std::invalid_argument);
  topo.tile_count = 4;
  topo.channel_count = 0;
  EXPECT_THROW(topo.validate(), std::invalid_argument);
  topo.channel_count = 5;
  EXPECT_THROW(topo.validate(), std::invalid_argument);
}

// The headline back-compat contract: a network with one channel per
// tile and a uniform configuration IS the single-channel simulator —
// same managers, same arbitration domains, same accumulation order —
// so every statistic matches bit for bit, not approximately.
TEST(NetworkSimulator, OneChannelPerTileReproducesNocSimulatorBitForBit) {
  constexpr std::size_t kOnis = 8;
  NocConfig noc_config;
  noc_config.oni_count = kOnis;
  const NocSimulator reference(noc_config);

  NetworkConfig net_config;
  net_config.topology.tile_count = kOnis;
  net_config.topology.channel_count = kOnis;
  const NetworkSimulator network(net_config);

  const UniformRandomTraffic traffic(kOnis, 4e8, 4096);
  const double horizon = 10e-6;
  const auto schedule = traffic.generate(horizon, 42);

  const NocRunResult expected = reference.run(schedule, horizon, true);
  const NetworkRunResult actual = network.run(schedule, horizon, true);

  EXPECT_TRUE(actual.stats.aggregate == expected.stats);
  EXPECT_EQ(actual.total_payload_bits, expected.total_payload_bits);
  ASSERT_EQ(actual.log.size(), expected.log.size());
  for (std::size_t i = 0; i < actual.log.size(); ++i) {
    EXPECT_EQ(actual.log[i].message.id, expected.log[i].message.id);
    EXPECT_EQ(actual.log[i].completion_time_s,
              expected.log[i].completion_time_s);
    EXPECT_EQ(actual.log[i].energy_j, expected.log[i].energy_j);
    // In the reduction a message's channel is its destination ONI.
    EXPECT_EQ(actual.log[i].channel, actual.log[i].message.destination);
  }
}

// Same reduction under a time-varying environment: recalibration,
// thermal drops and phase statistics all flow through the same engine.
TEST(NetworkSimulator, EnvironmentReductionIsBitForBitToo) {
  constexpr std::size_t kOnis = 6;
  const auto ramp = env::EnvironmentTimeline::ramp(2e-6, 4e-6, 0.25, 1.0);

  // Uncoded-only at BER 1e-11: the ramp opens a thermal window, so the
  // reduction also covers drops, thermal classification and
  // recalibration accounting.
  NocConfig noc_config;
  noc_config.oni_count = kOnis;
  noc_config.link_params.environment = ramp;
  noc_config.scheme_menu = {ecc::make_code("w/o ECC")};
  noc_config.default_requirements.target_ber = 1e-11;
  const NocSimulator reference(noc_config);

  NetworkConfig net_config;
  net_config.topology.tile_count = kOnis;
  net_config.topology.channel_count = kOnis;
  net_config.base_link.environment = ramp;
  net_config.scheme_menu = {ecc::make_code("w/o ECC")};
  net_config.default_requirements.target_ber = 1e-11;
  const NetworkSimulator network(net_config);

  const UniformRandomTraffic traffic(kOnis, 4e8, 4096);
  const double horizon = 6e-6;
  const auto schedule = traffic.generate(horizon, 7);

  const NocRunResult expected = reference.run(schedule, horizon);
  const NetworkRunResult actual = network.run(schedule, horizon);
  EXPECT_TRUE(actual.stats.aggregate == expected.stats);
  EXPECT_GT(actual.stats.aggregate.dropped, 0u);  // the ramp bites
  EXPECT_FALSE(actual.stats.aggregate.phases.empty());
}

TEST(NetworkSimulator, PerChannelStatsSumToTheAggregate) {
  NetworkConfig config;
  config.topology.tile_count = 8;
  config.topology.channel_count = 4;
  const NetworkSimulator network(config);

  const UniformRandomTraffic traffic(8, 4e8, 4096);
  const double horizon = 10e-6;
  const auto result = network.run(traffic, horizon, 3, true);

  ASSERT_EQ(result.stats.channels.size(), 4u);
  std::uint64_t delivered = 0;
  std::uint64_t payload = 0;
  double laser = 0.0;
  for (std::size_t ch = 0; ch < 4; ++ch) {
    delivered += result.stats.channels[ch].delivered;
    payload += result.stats.channel_payload_bits[ch];
    laser += result.stats.channels[ch].laser_energy_j;
    EXPECT_EQ(result.stats.channels[ch].horizon_s, horizon);
  }
  EXPECT_EQ(delivered, result.stats.aggregate.delivered);
  EXPECT_GT(delivered, 0u);
  EXPECT_EQ(payload, result.total_payload_bits);
  // Energies agree to rounding (the aggregate accumulates in message
  // order, the channel totals per channel — grouping may differ in the
  // last ulp, which is exactly why the aggregate has its own sink).
  EXPECT_NEAR(laser, result.stats.aggregate.laser_energy_j,
              1e-12 * laser + 1e-30);
  // Every logged delivery names the channel that carried it.
  for (const auto& d : result.log)
    EXPECT_EQ(d.channel,
              network.config().topology.channel_of_tile(d.message.destination));
}

TEST(NetworkSimulator, SharedChannelsSerialiseCrossTileTraffic) {
  // Two tiles per channel: inbound traffic for both tiles of a channel
  // contends on it, so latency is at least the one-reader-per-tile
  // latency under the same schedule.
  NetworkConfig shared;
  shared.topology.tile_count = 8;
  shared.topology.channel_count = 2;
  NetworkConfig private_channels;
  private_channels.topology.tile_count = 8;
  private_channels.topology.channel_count = 8;

  const UniformRandomTraffic traffic(8, 8e8, 4096);
  const double horizon = 10e-6;
  const auto schedule = traffic.generate(horizon, 11);
  const auto contended = NetworkSimulator(shared).run(schedule, horizon);
  const auto free = NetworkSimulator(private_channels).run(schedule, horizon);
  EXPECT_EQ(contended.stats.aggregate.delivered,
            free.stats.aggregate.delivered);
  EXPECT_GE(contended.stats.aggregate.mean_latency_s,
            free.stats.aggregate.mean_latency_s);
}

TEST(NetworkSimulator, HeterogeneousCodingSavesTheHotChannel) {
  // Channel 0 rides a ramp into saturation, channel 1 stays cool.  An
  // uncoded-only network drops on the hot channel at BER 1e-11; giving
  // just the hot channel H(7,4) clears every drop while the cool
  // channel still runs uncoded (visible in per-channel scheme usage).
  NetworkConfig config;
  config.topology.tile_count = 4;
  config.topology.channel_count = 2;
  config.default_requirements.target_ber = 1e-11;
  config.scheme_menu = {ecc::make_code("w/o ECC")};
  config.channels.resize(2);
  config.channels[0].environment =
      env::EnvironmentTimeline::ramp(2e-6, 4e-6, 0.25, 1.0);
  config.channels[1].environment = env::EnvironmentTimeline::constant(0.25);

  std::vector<Message> schedule;
  for (std::size_t i = 0; i < 60; ++i) {
    const double t = 100e-9 * static_cast<double>(i);
    schedule.push_back(make_message(2 * i, 1, 0, 4096, t));      // hot ch 0
    schedule.push_back(make_message(2 * i + 1, 0, 1, 4096, t));  // cool ch 1
  }
  const double horizon = 6e-6;

  const auto uniform = NetworkSimulator(config).run(schedule, horizon);
  EXPECT_GT(uniform.stats.channels[0].dropped, 0u);
  EXPECT_EQ(uniform.stats.channels[0].dropped_thermal,
            uniform.stats.channels[0].dropped);
  EXPECT_EQ(uniform.stats.channels[1].dropped, 0u);
  // Heterogeneous aggregate: phases stay empty (no single phase axis).
  EXPECT_TRUE(uniform.stats.aggregate.phases.empty());
  EXPECT_FALSE(uniform.stats.channels[0].phases.empty());

  config.channels[0].scheme_menu = {ecc::make_code("H(7,4)")};
  const auto hardened = NetworkSimulator(config).run(schedule, horizon);
  EXPECT_EQ(hardened.stats.aggregate.dropped, 0u);
  EXPECT_EQ(hardened.stats.channels[0].scheme_usage.count("H(7,4)"), 1u);
  EXPECT_EQ(hardened.stats.channels[1].scheme_usage.count("w/o ECC"), 1u);
}

TEST(NetworkSimulator, RejectsBadSchedulesAndGeometries) {
  NetworkConfig config;
  config.topology.tile_count = 4;
  config.topology.channel_count = 2;
  const NetworkSimulator network(config);
  EXPECT_THROW(network.run({make_message(0, 0, 4, 64, 0.0)}, 1e-6),
               std::invalid_argument);
  EXPECT_THROW(network.run({make_message(0, 2, 2, 64, 0.0)}, 1e-6),
               std::invalid_argument);
  EXPECT_THROW(network.run({}, 0.0), std::invalid_argument);

  NetworkConfig wrong_channels;
  wrong_channels.topology.tile_count = 4;
  wrong_channels.topology.channel_count = 2;
  wrong_channels.channels.resize(3);
  EXPECT_THROW(NetworkSimulator{wrong_channels}, std::invalid_argument);
}

}  // namespace
}  // namespace photecc::noc
