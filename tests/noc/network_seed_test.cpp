// Per-channel seed derivation: composite (grid cell, channel) indices
// must produce decorrelated, collision-free seeds, and a one-channel
// network must see the caller's seed unchanged so its RNG streams are
// bit-identical to a single-channel simulator run.
#include <cstdint>
#include <set>

#include <gtest/gtest.h>

#include "photecc/math/rng.hpp"
#include "photecc/noc/network.hpp"

namespace photecc::noc {
namespace {

constexpr std::uint64_t kBase = 0x9e3779b97f4a7c15ULL;

TEST(NetworkSeed, SingleChannelNetworkUsesTheBaseSeedVerbatim) {
  // The bit-identical reduction depends on this: with one channel the
  // seed must flow through untouched, not be re-derived.
  EXPECT_EQ(NetworkSimulator::channel_seed(kBase, 1, 0), kBase);
  EXPECT_EQ(NetworkSimulator::channel_seed(0, 1, 0), 0u);
}

TEST(NetworkSeed, MultiChannelSeedsFollowTheDeriveSeedContract) {
  for (std::size_t ch = 0; ch < 8; ++ch)
    EXPECT_EQ(NetworkSimulator::channel_seed(kBase, 8, ch),
              photecc::math::derive_seed(kBase, ch));
  // And they differ from the base: a channel must never replay the
  // grid cell's own stream.
  for (std::size_t ch = 0; ch < 8; ++ch)
    EXPECT_NE(NetworkSimulator::channel_seed(kBase, 8, ch), kBase);
}

TEST(NetworkSeed, CellTimesChannelGridHasNoCollisions) {
  // Regression over the composite (grid cell, channel) index space a
  // network sweep actually uses: cell seeds are derive_seed(base, cell)
  // (the ScenarioGrid contract), channel seeds derive from the cell
  // seed.  1600 composite seeds plus the 100 cell seeds must all be
  // distinct — a collision would silently correlate two workloads.
  std::set<std::uint64_t> seen;
  for (std::uint64_t cell = 0; cell < 100; ++cell) {
    const std::uint64_t cell_seed = photecc::math::derive_seed(kBase, cell);
    EXPECT_TRUE(seen.insert(cell_seed).second) << "cell " << cell;
    for (std::size_t ch = 0; ch < 16; ++ch) {
      const std::uint64_t composite =
          NetworkSimulator::channel_seed(cell_seed, 16, ch);
      EXPECT_TRUE(seen.insert(composite).second)
          << "cell " << cell << " channel " << ch;
    }
  }
  EXPECT_EQ(seen.size(), 100u + 100u * 16u);
}

TEST(NetworkSeed, ChannelSeedsAreOrderSensitive) {
  // (cell i, channel j) and (cell j, channel i) must not alias even
  // when i and j collide numerically.
  const std::uint64_t a = NetworkSimulator::channel_seed(
      photecc::math::derive_seed(kBase, 3), 8, 5);
  const std::uint64_t b = NetworkSimulator::channel_seed(
      photecc::math::derive_seed(kBase, 5), 8, 3);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace photecc::noc
