// The time-varying environment in the NoC loop: recalibration on
// drift, thermal infeasibility windows, per-phase statistics and the
// self-heating feedback between channel busy time and activity.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "photecc/ecc/registry.hpp"
#include "photecc/noc/simulator.hpp"

namespace photecc::noc {
namespace {

Message make_message(std::uint64_t id, std::size_t src, std::size_t dst,
                     std::uint64_t bits, double t) {
  Message m;
  m.id = id;
  m.source = src;
  m.destination = dst;
  m.payload_bits = bits;
  m.creation_time_s = t;
  return m;
}

/// One message every `period` from ONI 1 to ONI 0 — a streaming load.
std::vector<Message> stream(std::size_t count, double period,
                            std::uint64_t bits = 4096) {
  std::vector<Message> schedule;
  for (std::size_t i = 0; i < count; ++i)
    schedule.push_back(make_message(i, 1, 0, bits,
                                    static_cast<double>(i) * period));
  return schedule;
}

NocConfig config_with(env::EnvironmentTimeline timeline,
                      std::vector<ecc::BlockCodePtr> menu,
                      double target_ber = 1e-11) {
  NocConfig config;
  config.oni_count = 12;
  config.link_params.environment = std::move(timeline);
  config.scheme_menu = std::move(menu);
  config.default_requirements.target_ber = target_ber;
  return config;
}

TEST(NocThermalEnv, ConstantTimelineMatchesTheAliasRunExactly) {
  // A declared constant timeline at the alias activity must reproduce
  // the legacy run bit for bit, except for the recalibration accounting
  // that only the environment path reports.
  NocConfig legacy;
  legacy.oni_count = 12;
  const auto schedule = stream(40, 50e-9);
  const auto a = NocSimulator(legacy).run(schedule, 10e-6, true);

  NocConfig timed = legacy;
  timed.link_params.environment = env::EnvironmentTimeline::constant(0.25);
  const auto b = NocSimulator(timed).run(schedule, 10e-6, true);

  EXPECT_EQ(a.stats.delivered, b.stats.delivered);
  EXPECT_EQ(a.stats.dropped, b.stats.dropped);
  EXPECT_EQ(a.stats.mean_latency_s, b.stats.mean_latency_s);
  EXPECT_EQ(a.stats.p95_latency_s, b.stats.p95_latency_s);
  // Exact equality even with default recalibration costs: a constant
  // environment never drifts, so nothing is charged.
  EXPECT_EQ(a.stats.total_energy_j, b.stats.total_energy_j);
  EXPECT_EQ(a.stats.busy_time_s, b.stats.busy_time_s);
  // No drift => no recalibrations, and no thermal window.
  EXPECT_EQ(b.stats.recalibrations, 0u);
  EXPECT_DOUBLE_EQ(b.stats.recalibration_energy_j, 0.0);
  EXPECT_EQ(b.stats.dropped_thermal, 0u);
  EXPECT_DOUBLE_EQ(b.stats.peak_activity, 0.25);
  ASSERT_EQ(b.stats.phases.size(), 1u);
  EXPECT_EQ(b.stats.phases[0].delivered, b.stats.delivered);
  // The legacy run reports no environment machinery at all.
  EXPECT_EQ(a.stats.recalibrations, 0u);
  EXPECT_TRUE(a.stats.phases.empty());
}

TEST(NocThermalEnv, ActivityRampOpensAThermalWindowForUncoded) {
  // Uncoded-only menu at BER 1e-11: feasible at 25 % activity but not
  // past ~35 % (ablation AB5).  A ramp to saturation must start
  // dropping messages -- and classify them as thermal drops.
  const auto ramp = env::EnvironmentTimeline::ramp(2e-6, 4e-6, 0.25, 1.0);
  const auto schedule = stream(60, 100e-9);
  const double horizon = 6e-6;
  const auto uncoded =
      NocSimulator(config_with(ramp, {ecc::make_code("w/o ECC")}))
          .run(schedule, horizon, true);
  EXPECT_GT(uncoded.stats.delivered, 0u);
  EXPECT_GT(uncoded.stats.dropped, 0u);
  EXPECT_EQ(uncoded.stats.dropped_thermal, uncoded.stats.dropped);
  EXPECT_GE(uncoded.stats.recalibrations, 1u);
  EXPECT_GT(uncoded.stats.recalibration_energy_j, 0.0);
  EXPECT_DOUBLE_EQ(uncoded.stats.final_activity, 1.0);

  // H(7,4) rides the same ramp to the end (AB5: feasible to ~99 %).
  const auto coded =
      NocSimulator(config_with(ramp, {ecc::make_code("H(7,4)")}))
          .run(schedule, horizon, true);
  EXPECT_EQ(coded.stats.dropped, 0u);
  EXPECT_EQ(coded.stats.delivered, schedule.size());
  EXPECT_GT(coded.stats.delivered, uncoded.stats.delivered);

  // Per-phase stats: every uncoded drop happened in or after the ramp.
  ASSERT_EQ(uncoded.stats.phases.size(), 3u);
  EXPECT_EQ(uncoded.stats.phases[0].label, "pre");
  EXPECT_EQ(uncoded.stats.phases[0].dropped, 0u);
  EXPECT_EQ(uncoded.stats.phases[1].dropped +
                uncoded.stats.phases[2].dropped,
            uncoded.stats.dropped);
}

TEST(NocThermalEnv, RecalibrationLatencyIsChargedToTheTransfer) {
  const auto ramp = env::EnvironmentTimeline::ramp(0.0, 5e-6, 0.25, 0.6);
  NocConfig with_cost =
      config_with(ramp, {ecc::make_code("H(7,4)")}, 1e-9);
  with_cost.recalibration.activity_hysteresis = 0.01;
  with_cost.recalibration.recalibration_latency_s = 100e-9;
  NocConfig free = with_cost;
  free.recalibration.recalibration_latency_s = 0.0;
  const auto schedule = stream(20, 250e-9);
  const auto costly = NocSimulator(with_cost).run(schedule, 5e-6, true);
  const auto gratis = NocSimulator(free).run(schedule, 5e-6, true);
  ASSERT_GT(costly.stats.recalibrations, 1u);
  EXPECT_GT(costly.stats.recalibration_latency_s, 0.0);
  EXPECT_GT(costly.stats.mean_latency_s, gratis.stats.mean_latency_s);
  // The per-message log marks exactly the re-solved transfers.
  std::size_t recalibrated = 0;
  for (const auto& d : costly.log)
    if (d.recalibrated) ++recalibrated;
  EXPECT_EQ(recalibrated, costly.stats.recalibrations);
}

TEST(NocThermalEnv, SelfHeatingFeedsBusyTimeBackIntoActivity) {
  // A saturating stream on a self-heating timeline drags the activity
  // up from the baseline; an idle run does not.
  const auto timeline =
      env::EnvironmentTimeline::self_heating(0.25, 0.6, 5e-7);
  NocConfig config = config_with(timeline, ecc::paper_schemes(), 1e-9);
  config.recalibration.activity_hysteresis = 0.05;
  // Back-to-back large frames keep the channel essentially saturated.
  const auto busy = NocSimulator(config).run(stream(200, 30e-9, 16384),
                                             20e-6, false);
  EXPECT_GT(busy.stats.busy_time_s, 0.5 * busy.stats.horizon_s);
  EXPECT_GT(busy.stats.peak_activity, 0.6);
  EXPECT_GT(busy.stats.recalibrations, 1u);

  const auto idle =
      NocSimulator(config).run(stream(2, 8e-6), 20e-6, false);
  EXPECT_LT(idle.stats.peak_activity, 0.3);
}

TEST(NocThermalEnv, CyclicPhasesReportPerPhaseCounts) {
  const auto timeline = env::EnvironmentTimeline::phases(
      {{1e-6, 0.25, "cool"}, {1e-6, 0.5, "hot"}}, true);
  const auto result =
      NocSimulator(config_with(timeline, ecc::paper_schemes(), 1e-9))
          .run(stream(40, 100e-9), 4e-6, false);
  ASSERT_EQ(result.stats.phases.size(), 4u);
  EXPECT_EQ(result.stats.phases[0].label, "cool");
  EXPECT_EQ(result.stats.phases[1].label, "hot");
  EXPECT_EQ(result.stats.phases[2].label, "cool#1");
  std::uint64_t total = 0;
  for (const auto& phase : result.stats.phases) total += phase.delivered;
  EXPECT_EQ(total, result.stats.delivered);
}

}  // namespace
}  // namespace photecc::noc
