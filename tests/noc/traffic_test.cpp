#include "photecc/noc/traffic.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace photecc::noc {
namespace {

TEST(UniformTraffic, GeneratesSortedValidSchedule) {
  const UniformRandomTraffic traffic(12, 1e8, 4096);
  const auto schedule = traffic.generate(10e-6, 1);
  ASSERT_FALSE(schedule.empty());
  double previous = 0.0;
  for (const auto& m : schedule) {
    EXPECT_GE(m.creation_time_s, previous);
    EXPECT_LT(m.creation_time_s, 10e-6);
    EXPECT_LT(m.source, 12u);
    EXPECT_LT(m.destination, 12u);
    EXPECT_NE(m.source, m.destination);
    EXPECT_EQ(m.payload_bits, 4096u);
    previous = m.creation_time_s;
  }
}

TEST(UniformTraffic, RateControlsVolume) {
  const UniformRandomTraffic slow(12, 1e7, 4096);
  const UniformRandomTraffic fast(12, 1e8, 4096);
  const double horizon = 50e-6;
  const auto few = slow.generate(horizon, 3);
  const auto many = fast.generate(horizon, 3);
  // Poisson means ~500 vs ~5000.
  EXPECT_GT(many.size(), few.size() * 5);
  EXPECT_NEAR(static_cast<double>(few.size()), 500.0, 120.0);
}

TEST(UniformTraffic, SeedReproducibility) {
  const UniformRandomTraffic traffic(12, 1e8, 4096);
  const auto a = traffic.generate(5e-6, 7);
  const auto b = traffic.generate(5e-6, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].source, b[i].source);
    EXPECT_EQ(a[i].destination, b[i].destination);
    EXPECT_DOUBLE_EQ(a[i].creation_time_s, b[i].creation_time_s);
  }
}

TEST(UniformTraffic, Validation) {
  EXPECT_THROW(UniformRandomTraffic(1, 1e8, 64), std::invalid_argument);
  EXPECT_THROW(UniformRandomTraffic(12, 0.0, 64), std::invalid_argument);
  EXPECT_THROW(UniformRandomTraffic(12, 1e8, 0), std::invalid_argument);
}

TEST(HotspotTraffic, SkewsTowardTheHotspot) {
  const std::size_t hotspot = 3;
  const HotspotTraffic traffic(12, 1e8, 4096, hotspot, 0.7);
  const auto schedule = traffic.generate(100e-6, 11);
  ASSERT_GT(schedule.size(), 1000u);
  std::size_t to_hotspot = 0;
  for (const auto& m : schedule) {
    EXPECT_NE(m.source, m.destination);
    if (m.destination == hotspot) ++to_hotspot;
  }
  const double fraction =
      static_cast<double>(to_hotspot) / static_cast<double>(schedule.size());
  // 70 % directed + ~1/11 of the remaining uniform traffic.
  EXPECT_NEAR(fraction, 0.7 + 0.3 / 11.0, 0.05);
}

TEST(HotspotTraffic, Validation) {
  EXPECT_THROW(HotspotTraffic(12, 1e8, 64, 12, 0.5),
               std::invalid_argument);
  EXPECT_THROW(HotspotTraffic(12, 1e8, 64, 0, 1.5),
               std::invalid_argument);
}

TEST(StreamingTraffic, PeriodicFramesWithDeadlines) {
  StreamingTraffic::Stream stream;
  stream.source = 0;
  stream.destination = 5;
  stream.period_s = 1e-6;
  stream.frame_bits = 8192;
  stream.deadline_fraction = 0.5;
  const StreamingTraffic traffic({stream});
  const auto schedule = traffic.generate(10e-6, 0);
  ASSERT_EQ(schedule.size(), 10u);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_NEAR(schedule[i].creation_time_s, 1e-6 * i, 1e-12);
    ASSERT_TRUE(schedule[i].deadline_s.has_value());
    EXPECT_NEAR(*schedule[i].deadline_s, 1e-6 * i + 0.5e-6, 1e-12);
    EXPECT_EQ(schedule[i].traffic_class, TrafficClass::kMultimedia);
  }
}

TEST(StreamingTraffic, Validation) {
  EXPECT_THROW(StreamingTraffic({}), std::invalid_argument);
  StreamingTraffic::Stream bad;
  bad.source = bad.destination = 1;
  EXPECT_THROW(StreamingTraffic({bad}), std::invalid_argument);
}

TEST(PhaseTraceTraffic, CyclesThroughPhases) {
  auto quiet = std::make_shared<UniformRandomTraffic>(12, 1e7, 1024);
  auto burst = std::make_shared<UniformRandomTraffic>(12, 2e8, 8192);
  PhaseTraceTraffic trace({{5e-6, quiet}, {5e-6, burst}});
  const auto schedule = trace.generate(20e-6, 42);
  ASSERT_FALSE(schedule.empty());
  // Burst phases [5,10) and [15,20) us must contain most messages.
  std::size_t in_burst = 0;
  for (const auto& m : schedule) {
    const double t = m.creation_time_s;
    const bool burst_window =
        (t >= 5e-6 && t < 10e-6) || (t >= 15e-6 && t < 20e-6);
    if (burst_window) ++in_burst;
  }
  EXPECT_GT(static_cast<double>(in_burst) /
                static_cast<double>(schedule.size()),
            0.8);
  // Ids unique and times sorted.
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_GE(schedule[i].creation_time_s,
              schedule[i - 1].creation_time_s);
    EXPECT_EQ(schedule[i].id, i);
  }
}

TEST(PhaseTraceTraffic, Validation) {
  EXPECT_THROW(PhaseTraceTraffic({}), std::invalid_argument);
  EXPECT_THROW(PhaseTraceTraffic({{1e-6, nullptr}}),
               std::invalid_argument);
}

TEST(MixedTraffic, MergesAndRenumbers) {
  auto uniform = std::make_shared<UniformRandomTraffic>(12, 5e7, 1024);
  StreamingTraffic::Stream stream;
  stream.source = 1;
  stream.destination = 2;
  stream.period_s = 1e-6;
  stream.frame_bits = 2048;
  auto streaming = std::make_shared<StreamingTraffic>(
      std::vector<StreamingTraffic::Stream>{stream});
  const MixedTraffic mixed({uniform, streaming});
  const auto schedule = mixed.generate(10e-6, 9);
  ASSERT_GT(schedule.size(), 10u);
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_GE(schedule[i].creation_time_s,
              schedule[i - 1].creation_time_s);
    EXPECT_EQ(schedule[i].id, i);
  }
  EXPECT_THROW(MixedTraffic({}), std::invalid_argument);
  EXPECT_THROW(MixedTraffic({nullptr}), std::invalid_argument);
}

TEST(TrafficClassNames, Render) {
  EXPECT_EQ(to_string(TrafficClass::kRealTime), "real-time");
  EXPECT_EQ(to_string(TrafficClass::kMultimedia), "multimedia");
  EXPECT_EQ(to_string(TrafficClass::kBestEffort), "best-effort");
}

TEST(StreamingTraffic, LongHorizonFrameCountHasNoDrift) {
  // Regression for the accumulated t += period schedule: summing an
  // inexact period 100000 times drifts the frame times off the i*period
  // lattice and mis-counts frames at horizons near a period multiple.
  StreamingTraffic::Stream stream;
  stream.source = 0;
  stream.destination = 1;
  stream.period_s = 1e-6;  // not exactly representable in binary
  const StreamingTraffic traffic({stream});
  const auto schedule = traffic.generate(0.1, 0);
  ASSERT_EQ(schedule.size(), 100000u);
  // Every frame time must sit exactly on the i * period lattice — an
  // accumulated schedule matches only for small i.
  for (const std::size_t i : {0u, 1u, 999u, 50000u, 99999u}) {
    EXPECT_DOUBLE_EQ(schedule[i].creation_time_s,
                     static_cast<double>(i) * 1e-6)
        << "frame " << i;
  }
}

TEST(StreamingTraffic, HorizonAtExactMultipleExcludesBoundaryFrame) {
  // 10 us horizon / 1 us period = exactly 10 frames; the frame AT the
  // horizon is excluded even when i*period rounds to just under it.
  StreamingTraffic::Stream stream;
  stream.source = 0;
  stream.destination = 1;
  stream.period_s = 1e-6;
  const StreamingTraffic traffic({stream});
  EXPECT_EQ(traffic.generate(10e-6, 0).size(), 10u);
  EXPECT_EQ(traffic.generate(1e-3, 0).size(), 1000u);
}

// Creation-time sequence of a schedule, shifted so chunks generated at
// different phase offsets can be compared.
std::vector<double> shifted_times(const std::vector<Message>& schedule,
                                  double window_start,
                                  double window_end) {
  std::vector<double> times;
  for (const auto& m : schedule)
    if (m.creation_time_s >= window_start &&
        m.creation_time_s < window_end)
      times.push_back(m.creation_time_s - window_start);
  return times;
}

TEST(PhaseTraceTraffic, SiblingTracesWithAdjacentSeedsDecorrelate) {
  // Regression for seed+1, seed+2, ... sub-seeding: phase k of trace
  // seed s used to replay phase k-1 of trace seed s+1 (identical RNG
  // streams).  With the splitmix64 mixer every (seed, phase) pair is
  // distinct.
  auto uniform = std::make_shared<UniformRandomTraffic>(12, 5e8, 1024);
  const PhaseTraceTraffic trace({{1e-6, uniform}});
  const auto a = trace.generate(2e-6, 100);  // phases 0, 1 of seed 100
  const auto b = trace.generate(2e-6, 101);  // phases 0, 1 of seed 101
  const auto a_phase1 = shifted_times(a, 1e-6, 2e-6);
  const auto b_phase0 = shifted_times(b, 0.0, 1e-6);
  ASSERT_GT(a_phase1.size(), 100u);
  EXPECT_NE(a_phase1, b_phase0);
}

TEST(MixedTraffic, NestedCompositesDecorrelateFromSiblings) {
  // Part k of MixedTraffic(seed) used to share its stream with phase
  // k-1 of PhaseTraceTraffic(seed): both handed out seed+k
  // arithmetically.
  auto uniform = std::make_shared<UniformRandomTraffic>(12, 5e8, 1024);
  const MixedTraffic mixed({uniform, uniform});
  const PhaseTraceTraffic trace({{1e-6, uniform}});
  const auto from_mixed = mixed.generate(1e-6, 7);
  const auto from_trace = trace.generate(2e-6, 7);
  // Pre-fix both composites handed their children seeds 8 and 9, so
  // the mixed schedule was exactly the union of the trace's two phase
  // chunks (phase 1 shifted back by its phase offset).
  std::vector<double> trace_union = shifted_times(from_trace, 0.0, 1e-6);
  const auto phase1 = shifted_times(from_trace, 1e-6, 2e-6);
  trace_union.insert(trace_union.end(), phase1.begin(), phase1.end());
  std::sort(trace_union.begin(), trace_union.end());
  const std::vector<double> mixed_times =
      shifted_times(from_mixed, 0.0, 1e-6);
  ASSERT_GT(mixed_times.size(), 100u);
  EXPECT_NE(mixed_times, trace_union);
  // And the two identical parts inside one MixedTraffic must not
  // produce duplicate timestamps (they get distinct derived seeds).
  std::size_t duplicates = 0;
  for (std::size_t i = 1; i < from_mixed.size(); ++i)
    if (from_mixed[i].creation_time_s ==
        from_mixed[i - 1].creation_time_s)
      ++duplicates;
  EXPECT_EQ(duplicates, 0u);
}

TEST(TraceTraffic, ParsesSortsAndRenumbers) {
  std::istringstream in(
      "# header comment\n"
      "\n"
      "1.0e-6 2 3 512 rt 1.25e-6\n"
      "0.5e-6 1 0 16384 mm 1.5e-6   # trailing comment\n"
      "0.1e-6 4 5 4096\n");
  const auto trace = TraceTraffic::parse(in);
  ASSERT_EQ(trace.messages().size(), 3u);
  // Sorted by time, ids renumbered in time order.
  EXPECT_DOUBLE_EQ(trace.messages()[0].creation_time_s, 0.1e-6);
  EXPECT_EQ(trace.messages()[0].id, 0u);
  EXPECT_EQ(trace.messages()[0].traffic_class, TrafficClass::kBestEffort);
  EXPECT_FALSE(trace.messages()[0].deadline_s.has_value());
  EXPECT_EQ(trace.messages()[1].traffic_class, TrafficClass::kMultimedia);
  ASSERT_TRUE(trace.messages()[1].deadline_s.has_value());
  EXPECT_DOUBLE_EQ(*trace.messages()[1].deadline_s, 1.5e-6);
  EXPECT_EQ(trace.messages()[2].traffic_class, TrafficClass::kRealTime);
}

TEST(TraceTraffic, GenerateClipsToHorizonAndIgnoresSeed) {
  std::istringstream in(
      "0.1e-6 0 1 64\n"
      "0.9e-6 1 2 64\n"
      "2.0e-6 2 0 64\n");
  const auto trace = TraceTraffic::parse(in);
  const auto clipped = trace.generate(1e-6, 123);
  ASSERT_EQ(clipped.size(), 2u);
  EXPECT_EQ(trace.generate(1e-6, 0), clipped);  // seed-independent
  EXPECT_EQ(trace.generate(5e-6, 0).size(), 3u);
}

TEST(TraceTraffic, ShippedSampleDrivesBothSimulatorsCleanly) {
  const auto trace =
      TraceTraffic::from_file(PHOTECC_SOURCE_DIR "/examples/traces/sample.trace");
  ASSERT_FALSE(trace.messages().empty());
  for (const auto& m : trace.messages()) {
    EXPECT_LT(m.source, 8u);
    EXPECT_LT(m.destination, 8u);
    EXPECT_NE(m.source, m.destination);
  }
}

TEST(TraceTraffic, RejectsMalformedLines) {
  const auto parse_one = [](const std::string& text) {
    std::istringstream in(text);
    return TraceTraffic::parse(in, "test");
  };
  EXPECT_THROW(parse_one("0.1 0 1\n"), std::invalid_argument);      // short
  EXPECT_THROW(parse_one("-0.1 0 1 64\n"), std::invalid_argument);  // time
  EXPECT_THROW(parse_one("0.1 2 2 64\n"), std::invalid_argument);   // loop
  EXPECT_THROW(parse_one("0.1 0 1 0\n"), std::invalid_argument);    // payload
  EXPECT_THROW(parse_one("0.1 0 1 64 urgent\n"), std::invalid_argument);
  EXPECT_THROW(parse_one("0.1 0 1 64 rt 1e-6 extra\n"),
               std::invalid_argument);
  EXPECT_THROW(TraceTraffic::from_file("/nonexistent/path.trace"),
               std::runtime_error);
}

}  // namespace
}  // namespace photecc::noc
