// photecc::cooling — construction, naming, and the wire-weight
// guarantee.  The bound w + (n - m) is verified EXHAUSTIVELY for small
// cooling codes: every encodable message is encoded and its codeword
// weight checked against the bound the thermal stack relies on.
#include "photecc/cooling/cooling_code.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>

#include <gtest/gtest.h>

#include "photecc/ecc/registry.hpp"

namespace photecc::cooling {
namespace {

using ecc::BitVec;

TEST(CoolingName, FormatsAndClassifies) {
  EXPECT_EQ(cooling_name(std::size_t{64}, 16), "COOL(64,16)");
  EXPECT_EQ(cooling_name("H(7,4)", 2), "COOL(H(7,4),2)");
  EXPECT_TRUE(is_cooling_name("COOL(8,2)"));
  EXPECT_TRUE(is_cooling_name("COOL(BCH(15,7,2),3)"));
  EXPECT_FALSE(is_cooling_name("H(7,4)"));
  EXPECT_FALSE(is_cooling_name("cool(8,2)"));
}

TEST(CoolingName, ParsesPureAndConcatenatedForms) {
  EXPECT_FALSE(parse_cooling_name("H(7,4)").has_value());

  const CoolingName pure = *parse_cooling_name("COOL(64,16)");
  EXPECT_TRUE(pure.pure);
  EXPECT_EQ(pure.length, 64u);
  EXPECT_EQ(pure.weight, 16u);

  // The weight is everything after the LAST comma, so inner names with
  // commas survive.
  const CoolingName wrapped = *parse_cooling_name("COOL(BCH(15,7,2),3)");
  EXPECT_FALSE(wrapped.pure);
  EXPECT_EQ(wrapped.inner, "BCH(15,7,2)");
  EXPECT_EQ(wrapped.weight, 3u);
}

TEST(CoolingName, MalformedCoolShapedNamesThrow) {
  for (const char* bad :
       {"COOL(8,2", "COOL(8)", "COOL()", "COOL(,2)", "COOL(8,)",
        "COOL(8,x)", "COOL(COOL(8,2),1)"}) {
    EXPECT_THROW((void)parse_cooling_name(bad), std::invalid_argument)
        << bad;
  }
}

TEST(CoolingScheme, PureCodeGeometry) {
  // COOL(8,2): N(8,2) = 37 -> 5 message bits over 8 wires, duty 2/8.
  const CoolingScheme code(*parse_cooling_name("COOL(8,2)"));
  EXPECT_EQ(code.name(), "COOL(8,2)");
  EXPECT_EQ(code.block_length(), 8u);
  EXPECT_EQ(code.message_length(), 5u);
  EXPECT_EQ(code.weight_bound(), 2u);
  EXPECT_DOUBLE_EQ(code.transmit_duty_bound(), 0.25);
}

TEST(CoolingScheme, ConcatenatedCodeGeometry) {
  // COOL(H(7,4),1): N(4,1) = 5 -> 2 message bits; wire bound
  // w + (n - m) = 1 + 3 = 4, duty 4/7.
  const CoolingScheme code(*parse_cooling_name("COOL(H(7,4),1)"));
  EXPECT_EQ(code.block_length(), 7u);
  EXPECT_EQ(code.message_length(), 2u);
  EXPECT_EQ(code.weight_bound(), 1u);
  EXPECT_DOUBLE_EQ(code.transmit_duty_bound(), 4.0 / 7.0);
  EXPECT_EQ(code.min_distance(), 3u);  // inherited from the inner code
}

/// Exhaustive verification of the wire-weight bound: EVERY encodable
/// message of `name` must produce a codeword of weight
/// <= w + (n - m) — the guarantee the thermal stack's duty bound
/// rests on — and decode back to itself over a clean channel.
void verify_weight_bound_exhaustively(const std::string& name) {
  register_cooling_codes();
  const auto code = ecc::make_code(name);
  const auto* cooling = dynamic_cast<const CoolingScheme*>(code.get());
  ASSERT_NE(cooling, nullptr) << name;
  const std::size_t k = code->message_length();
  ASSERT_LE(k, 16u) << name << ": too large to exhaust";
  const std::size_t wire_bound =
      cooling->weight_bound() +
      (code->block_length() - cooling->inner().message_length());
  const double duty = code->transmit_duty_bound();
  for (std::uint64_t value = 0; value < (std::uint64_t{1} << k);
       ++value) {
    const BitVec message = BitVec::from_uint(value, k);
    const BitVec codeword = code->encode(message);
    EXPECT_LE(codeword.popcount(), wire_bound)
        << name << " message " << value;
    EXPECT_LE(static_cast<double>(codeword.popcount()),
              duty * static_cast<double>(code->block_length()) + 1e-12)
        << name << " message " << value;
    // The message-word bound itself: the inner systematic positions
    // carry the outer word, whose weight is <= w by construction.
    EXPECT_LE(
        cooling->inner().decode(codeword).message.popcount(),
        cooling->weight_bound())
        << name << " message " << value;
    const ecc::DecodeResult decoded = code->decode(codeword);
    EXPECT_EQ(decoded.message, message) << name << " message " << value;
    EXPECT_FALSE(decoded.error_detected) << name << " message " << value;
  }
}

TEST(CoolingScheme, WeightBoundHoldsExhaustivelyForPureCool8x2) {
  verify_weight_bound_exhaustively("COOL(8,2)");
}

TEST(CoolingScheme, WeightBoundHoldsExhaustivelyForHamming74Wrap) {
  verify_weight_bound_exhaustively("COOL(H(7,4),1)");
}

TEST(CoolingScheme, WeightBoundHoldsExhaustivelyForHamming1511Wrap) {
  // N(11, 2) = 67 -> 6 message bits; wire bound 2 + 4 = 6 of 15.
  verify_weight_bound_exhaustively("COOL(H(15,11),2)");
}

TEST(CoolingScheme, DecodeFlagsWordsOutsideTheBoundedWeightSet) {
  const CoolingScheme code(*parse_cooling_name("COOL(8,2)"));
  // Corrupt a valid codeword up to weight 3: the pure form has
  // distance 1, but leaving the bounded-weight set is detectable.
  BitVec received = code.encode(BitVec::from_uint(5, 5));
  ASSERT_LE(received.popcount(), 2u);
  for (std::size_t i = 0; i < 8 && received.popcount() < 3; ++i)
    received.set(i, true);
  const ecc::DecodeResult result = code.decode(received);
  EXPECT_TRUE(result.error_detected);
}

TEST(CoolingScheme, EncodeValidatesTheMessageSize) {
  const CoolingScheme code(*parse_cooling_name("COOL(8,2)"));
  EXPECT_THROW((void)code.encode(BitVec(4)), std::invalid_argument);
  EXPECT_THROW((void)code.encode(BitVec(6)), std::invalid_argument);
}

TEST(CoolingScheme, DecodedBerFollowsTheMessageScramblingModel) {
  // BER = 0.5 * (1 - (1 - q)^m) with q the inner residual BER.
  register_cooling_codes();
  const auto inner = ecc::make_code("H(7,4)");
  const auto wrapped = ecc::make_code("COOL(H(7,4),1)");
  // p large enough that the naive pow spelling is still exact in
  // doubles (the implementation uses expm1/log1p to go far lower).
  for (const double p : {1e-3, 1e-5}) {
    const double q = inner->decoded_ber(p);
    const double expected = 0.5 * (1.0 - std::pow(1.0 - q, 4.0));
    EXPECT_NEAR(wrapped->decoded_ber(p), expected, 1e-6 * expected)
        << p;
  }
  // Strictly increasing (required by the numeric raw-BER inversion).
  EXPECT_LT(wrapped->decoded_ber(1e-9), wrapped->decoded_ber(1e-8));
}

TEST(CoolingRegistry, MakeCodeResolvesCoolingNames) {
  register_cooling_codes();
  const auto code = ecc::make_code("COOL(BCH(15,7,2),3)");
  EXPECT_EQ(code->name(), "COOL(BCH(15,7,2),3)");
  EXPECT_EQ(code->block_length(), 15u);
  // N(7, 3) = 1 + 7 + 21 + 35 = 64 -> exactly 6 message bits.
  EXPECT_EQ(code->message_length(), 6u);
  // Registration is idempotent.
  EXPECT_NO_THROW(register_cooling_codes());
  EXPECT_NO_THROW(register_cooling_codes());
}

TEST(CoolingRegistry, TryMakeReturnsNullForForeignNames) {
  EXPECT_EQ(try_make_cooling_code("H(7,4)"), nullptr);
  EXPECT_THROW((void)make_cooling_code("H(7,4)"), std::invalid_argument);
  // COOL-shaped but malformed: loud, not null.
  EXPECT_THROW((void)try_make_cooling_code("COOL(8)"),
               std::invalid_argument);
}

TEST(CoolingRegistry, UnknownInnerCodesStillFailLoudly) {
  register_cooling_codes();
  EXPECT_THROW((void)ecc::make_code("COOL(X(9,9),2)"),
               std::invalid_argument);
}

}  // namespace
}  // namespace photecc::cooling
