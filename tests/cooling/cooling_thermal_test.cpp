// The cooling guarantee threaded through the thermal stack: the
// integrator's duty-bounded busy fraction, the link solver's derated
// activity, and the thermal-headroom metric.
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "photecc/cooling/cooling_code.hpp"
#include "photecc/core/channel_power.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/env/environment.hpp"
#include "photecc/link/snr_solver.hpp"

namespace photecc {
namespace {

/// The bench's hot channel: long enough that strong FEC alone runs out
/// of thermal headroom below full activity.
link::MwsrParams hot_channel_params() {
  link::MwsrParams params;
  params.waveguide_length_m = 0.14;
  params.oni_count = 16;
  return params;
}

TEST(ThermalIntegratorDuty, UnitDutyIsBitIdenticalToTheTwoArgOverload) {
  const auto timeline =
      env::EnvironmentTimeline::self_heating(0.2, 0.6, 1e-6);
  env::ThermalIntegrator plain{timeline};
  env::ThermalIntegrator bounded{timeline};
  double t = 0.0;
  for (const double busy : {1.0, 0.3, 0.0, 0.7}) {
    t += 3e-7;
    const auto a = plain.advance_to(t, busy);
    const auto b = bounded.advance_to(t, busy, 1.0);
    EXPECT_EQ(a, b) << "t=" << t;
  }
}

TEST(ThermalIntegratorDuty, DutyBoundScalesTheBusyFraction) {
  // advance_to(t, busy, duty) must equal advance_to(t, busy * duty):
  // a channel whose wires are lit at most a `duty` fraction of the
  // time heats the array like a proportionally less busy channel.
  const auto timeline =
      env::EnvironmentTimeline::self_heating(0.25, 0.75, 4e-7);
  const double duty = 2.0 / 3.0;
  env::ThermalIntegrator bounded{timeline};
  env::ThermalIntegrator reference{timeline};
  double t = 0.0;
  for (const double busy : {1.0, 0.5, 0.9, 0.2}) {
    t += 2e-7;
    const auto a = bounded.advance_to(t, busy, duty);
    const auto b = reference.advance_to(t, busy * duty);
    EXPECT_DOUBLE_EQ(a.activity, b.activity) << "t=" << t;
  }
  // Settled under full load: baseline + gain * duty.
  const auto settled = bounded.advance_to(1e-3, 1.0, duty);
  EXPECT_NEAR(settled.activity, 0.25 + 0.75 * duty, 1e-9);
}

TEST(CoolingThermal, DutyBoundWidensTheFeasibleActivityWindow) {
  cooling::register_cooling_codes();
  const link::MwsrChannel channel{hot_channel_params()};
  const double target_ber = 1e-11;
  const auto inner = ecc::make_code("BCH(15,7,2)");
  const auto cooled = ecc::make_code("COOL(BCH(15,7,2),3)");

  // At high activity the plain inner code runs out of laser headroom
  // while the duty-bounded wrap still solves.
  const env::EnvironmentSample hot{0.0, 0.9};
  EXPECT_FALSE(
      link::solve_operating_point(channel, *inner, target_ber, hot)
          .feasible);
  EXPECT_TRUE(
      link::solve_operating_point(channel, *cooled, target_ber, hot)
          .feasible);

  // At a mild activity both are feasible — the wrap widens the window
  // without shrinking it at the bottom of the covered range.
  const env::EnvironmentSample mild{0.0, 0.5};
  EXPECT_TRUE(
      link::solve_operating_point(channel, *inner, target_ber, mild)
          .feasible);
  EXPECT_TRUE(
      link::solve_operating_point(channel, *cooled, target_ber, mild)
          .feasible);
}

TEST(CoolingThermal, HeadroomIsPositiveIffFeasibleAndCoolingGainsIt) {
  cooling::register_cooling_codes();
  const link::MwsrChannel channel{hot_channel_params()};
  const double target_ber = 1e-11;
  const core::SystemConfig config;
  const env::EnvironmentSample hot{0.0, 0.9};

  const auto inner = ecc::make_code("BCH(15,7,2)");
  const auto cooled = ecc::make_code("COOL(BCH(15,7,2),3)");
  const core::SchemeMetrics fec =
      core::evaluate_scheme(channel, *inner, target_ber, config, hot);
  const core::SchemeMetrics cool =
      core::evaluate_scheme(channel, *cooled, target_ber, config, hot);

  EXPECT_DOUBLE_EQ(fec.duty_bound, 1.0);
  EXPECT_DOUBLE_EQ(cool.duty_bound, cooled->transmit_duty_bound());
  EXPECT_LT(cool.duty_bound, 1.0);

  const double fec_headroom =
      core::thermal_headroom_w(channel, fec, hot);
  const double cool_headroom =
      core::thermal_headroom_w(channel, cool, hot);
  EXPECT_FALSE(fec.feasible);
  EXPECT_LT(fec_headroom, 0.0);
  EXPECT_TRUE(cool.feasible);
  EXPECT_GT(cool_headroom, 0.0);
  EXPECT_GT(cool_headroom, fec_headroom);
}

TEST(CoolingThermal, HeadroomShrinksMonotonicallyWithActivity) {
  cooling::register_cooling_codes();
  const link::MwsrChannel channel{hot_channel_params()};
  const double target_ber = 1e-11;
  const core::SystemConfig config;
  const auto code = ecc::make_code("COOL(BCH(15,7,2),3)");

  double previous = std::numeric_limits<double>::infinity();
  for (const double activity : {0.2, 0.5, 0.8, 1.0}) {
    const env::EnvironmentSample sample{0.0, activity};
    const core::SchemeMetrics m =
        core::evaluate_scheme(channel, *code, target_ber, config, sample);
    const double headroom = core::thermal_headroom_w(channel, m, sample);
    EXPECT_LT(headroom, previous) << "activity=" << activity;
    previous = headroom;
  }
}

}  // namespace
}  // namespace photecc
