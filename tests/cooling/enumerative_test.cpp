#include "photecc/cooling/enumerative.hpp"

#include <cstdint>
#include <stdexcept>

#include <gtest/gtest.h>

namespace photecc::cooling {
namespace {

using ecc::BitVec;

TEST(BoundedWeightCoder, ConstructorValidates) {
  EXPECT_THROW(BoundedWeightCoder(1, 1), std::invalid_argument);
  EXPECT_THROW(BoundedWeightCoder(8, 0), std::invalid_argument);
  EXPECT_THROW(BoundedWeightCoder(8, 9), std::invalid_argument);
  EXPECT_NO_THROW(BoundedWeightCoder(2, 1));
  EXPECT_NO_THROW(BoundedWeightCoder(8, 8));
}

TEST(BoundedWeightCoder, CountsMatchTheBinomialSums) {
  // N(8, 2) = C(8,0) + C(8,1) + C(8,2) = 1 + 8 + 28 = 37 -> k = 5.
  const BoundedWeightCoder c82(8, 2);
  EXPECT_EQ(c82.length(), 8u);
  EXPECT_EQ(c82.max_weight(), 2u);
  EXPECT_EQ(c82.word_count(), 37u);
  EXPECT_EQ(c82.message_bits(), 5u);

  // N(4, 1) = 5 -> k = 2;  N(11, 2) = 1 + 11 + 55 = 67 -> k = 6.
  EXPECT_EQ(BoundedWeightCoder(4, 1).word_count(), 5u);
  EXPECT_EQ(BoundedWeightCoder(4, 1).message_bits(), 2u);
  EXPECT_EQ(BoundedWeightCoder(11, 2).word_count(), 67u);
  EXPECT_EQ(BoundedWeightCoder(11, 2).message_bits(), 6u);

  // w = length: the full space, k = length (exact power of two).
  EXPECT_EQ(BoundedWeightCoder(6, 6).word_count(), 64u);
  EXPECT_EQ(BoundedWeightCoder(6, 6).message_bits(), 6u);
}

TEST(BoundedWeightCoder, UnrankRankRoundTripsEveryMessage) {
  for (const auto& [length, weight] :
       {std::pair<std::size_t, std::size_t>{8, 2}, {4, 1}, {11, 2},
        {6, 6}, {16, 3}}) {
    const BoundedWeightCoder coder(length, weight);
    for (std::uint64_t value = 0;
         value < (std::uint64_t{1} << coder.message_bits()); ++value) {
      const BitVec word = coder.unrank(value);
      EXPECT_EQ(word.size(), length);
      EXPECT_LE(word.popcount(), weight);
      EXPECT_EQ(coder.rank(word), value)
          << "length=" << length << " weight=" << weight
          << " value=" << value;
    }
  }
}

TEST(BoundedWeightCoder, UnrankEnumeratesWordsInIncreasingIntegerOrder) {
  const BoundedWeightCoder coder(10, 3);
  std::uint64_t previous = coder.unrank(0).to_uint();
  for (std::uint64_t value = 1;
       value < (std::uint64_t{1} << coder.message_bits()); ++value) {
    const std::uint64_t current = coder.unrank(value).to_uint();
    EXPECT_GT(current, previous) << "value=" << value;
    previous = current;
  }
}

TEST(BoundedWeightCoder, RankIsExhaustivelyTheOrderingIndex) {
  // Walk ALL 2^8 words in integer order; the bounded-weight ones must
  // rank 0, 1, 2, ... consecutively, and the rest must throw.
  const BoundedWeightCoder coder(8, 2);
  std::uint64_t expected_rank = 0;
  for (std::uint64_t bits = 0; bits < 256; ++bits) {
    const BitVec word = BitVec::from_uint(bits, 8);
    if (word.popcount() <= 2) {
      EXPECT_EQ(coder.rank(word), expected_rank) << "bits=" << bits;
      ++expected_rank;
    } else {
      EXPECT_THROW((void)coder.rank(word), std::invalid_argument);
    }
  }
  EXPECT_EQ(expected_rank, coder.word_count());
}

TEST(BoundedWeightCoder, OutOfRangeInputsThrow) {
  const BoundedWeightCoder coder(8, 2);
  // 2^k = 32 messages; values 32.. are rejected even though ranks up
  // to 36 name valid words (the encoder only uses the power-of-two
  // prefix).
  EXPECT_NO_THROW((void)coder.unrank(31));
  EXPECT_THROW((void)coder.unrank(32), std::invalid_argument);
  EXPECT_THROW((void)coder.unrank(37), std::invalid_argument);
  EXPECT_THROW((void)coder.rank(BitVec(7)), std::invalid_argument);
  EXPECT_THROW((void)coder.rank(BitVec(9)), std::invalid_argument);
}

TEST(BoundedWeightCoder, SaturatingCountsStillRoundTripWideCoders) {
  // N(128, 64) overflows uint64; the message width caps at 63 and
  // rank/unrank stay exact on the representable range.
  const BoundedWeightCoder coder(128, 64);
  EXPECT_EQ(coder.message_bits(), 63u);
  for (const std::uint64_t value :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{12345},
        (std::uint64_t{1} << 62), (std::uint64_t{1} << 63) - 1}) {
    const BitVec word = coder.unrank(value);
    EXPECT_LE(word.popcount(), 64u);
    EXPECT_EQ(coder.rank(word), value) << value;
  }
}

}  // namespace
}  // namespace photecc::cooling
