#include "photecc/core/harq.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "photecc/core/arq.hpp"
#include "photecc/ecc/registry.hpp"

namespace photecc::core {
namespace {

link::MwsrChannel paper_channel() {
  return link::MwsrChannel{link::MwsrParams{}};
}

TEST(Harq, ParametersAndValidation) {
  const HarqScheme harq;  // m = 6
  EXPECT_EQ(harq.name(), "HARQ-eH(64,57)");
  EXPECT_EQ(harq.block_length(), 64u);
  EXPECT_EQ(harq.message_length(), 57u);
  HarqParams bad;
  bad.m = 2;
  EXPECT_THROW(HarqScheme{bad}, std::invalid_argument);
  bad = HarqParams{};
  bad.max_retransmission_rate = 0.0;
  EXPECT_THROW(HarqScheme{bad}, std::invalid_argument);
  EXPECT_THROW((void)harq.residual_ber(-0.1), std::domain_error);
  EXPECT_THROW((void)harq.required_raw_ber(0.6), std::domain_error);
}

TEST(Harq, ResidualScalesAsPCubed) {
  // Silent corruption needs >= 3 errors: residual ~ C(n,3) p^3 * 4/n.
  const HarqScheme harq;
  const double p = 1e-6;
  const double expected =
      41664.0 * p * p * p * 4.0 / 64.0;  // C(64,3) = 41664
  EXPECT_NEAR(harq.residual_ber(p) / expected, 1.0, 1e-3);
  EXPECT_DOUBLE_EQ(harq.residual_ber(0.0), 0.0);
}

TEST(Harq, RetransmissionRateScalesAsPSquared) {
  const HarqScheme harq;
  const double p = 1e-6;
  const double expected = 2016.0 * p * p;  // C(64,2)
  EXPECT_NEAR(harq.retransmission_rate(p) / expected, 1.0, 1e-3);
}

TEST(Harq, EffectiveCtApproachesRateOverheadAtLowP) {
  const HarqScheme harq;
  EXPECT_NEAR(harq.effective_ct(1e-9), 64.0 / 57.0, 1e-9);
  EXPECT_GT(harq.effective_ct(1e-2), harq.effective_ct(1e-6));
}

TEST(Harq, RequiredRawBerRoundTrips) {
  const HarqScheme harq;
  for (const double target : {1e-9, 1e-11, 1e-13}) {
    const auto p = harq.required_raw_ber(target);
    ASSERT_TRUE(p.has_value()) << target;
    const double residual = harq.residual_ber(*p);
    if (residual < target * 0.99) {
      EXPECT_NEAR(harq.retransmission_rate(*p),
                  harq.params().max_retransmission_rate, 1e-6);
    } else {
      EXPECT_NEAR(residual / target, 1.0, 1e-3);
    }
  }
}

TEST(Harq, SitsBetweenFecAndArqOnLaserPower) {
  // The taxonomy claim: at 1e-11, HARQ's p^3 quality floor admits a
  // higher raw p than H(7,4)'s effective p^2 (lower laser power), but
  // CRC-32 pure ARQ (p^1-ish detection budget) runs lower still.
  const auto channel = paper_channel();
  const HarqScheme harq;
  const auto harq_point = harq.solve(channel, 1e-11);
  const auto fec = evaluate_scheme(
      channel, *ecc::make_code("H(7,4)"), 1e-11);
  ArqParams arq_params;
  arq_params.crc_width = 32;
  const auto arq = ArqScheme(arq_params).solve(channel, 1e-11);
  ASSERT_TRUE(harq_point.feasible && fec.feasible && arq.feasible);
  EXPECT_LT(harq_point.p_laser_w, fec.p_laser_w);
  EXPECT_GT(harq_point.p_laser_w, arq.p_laser_w);
  // And a far better single-pass guarantee than pure ARQ.
  EXPECT_LT(harq_point.retransmission_rate, arq.frame_error_rate / 5.0);
}

TEST(Harq, EvaluateProducesConsistentMetrics) {
  const auto channel = paper_channel();
  const HarqScheme harq;
  const SchemeMetrics m = harq.evaluate(channel, 1e-11);
  ASSERT_TRUE(m.feasible);
  EXPECT_EQ(m.scheme, "HARQ-eH(64,57)");
  EXPECT_NEAR(m.p_channel_w, m.p_laser_w + m.p_mr_w + m.p_enc_dec_w,
              1e-15);
  EXPECT_GT(m.ct, 64.0 / 57.0 - 1e-9);
  EXPECT_GT(m.energy_per_bit_j, 0.0);
}

TEST(Harq, InfeasibleBeyondLaserCeiling) {
  // Crank the target until the required SNR exceeds the ceiling.
  const auto channel = paper_channel();
  HarqParams params;
  params.m = 3;  // eH(8,4): weak, needs high SNR for deep targets
  const HarqScheme harq(params);
  const auto point = harq.solve(channel, 1e-15);
  // Whether feasible or not, fields must be coherent.
  if (!point.feasible) {
    EXPECT_GT(point.op_laser_w, 0.0);
  } else {
    EXPECT_LE(point.op_laser_w, 700e-6 * 1.0001);
  }
}

TEST(Harq, ResidualBerStaysMeaningfulAtTinyP) {
  // Regression for the catastrophic cancellation in residual_ber: the
  // expm1 difference underflows to noise below p ~ 1e-9, where the
  // weight-3 series takes over.  The p^3 scaling must hold all the way
  // down to the shared search floor.
  const HarqScheme harq;  // eH(64,57)
  const double c_n_3 = 41664.0;  // C(64,3)
  for (const double p : {1e-8, 1e-10, 1e-12, 1e-15, 1e-18}) {
    const double expected = c_n_3 * p * p * p * 4.0 / 64.0;
    EXPECT_NEAR(harq.residual_ber(p) / expected, 1.0, 1e-3) << "p=" << p;
  }
  // Monotone through the series/difference switchover.
  double previous = harq.residual_ber(1e-18);
  for (const double p : {1e-14, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2}) {
    const double residual = harq.residual_ber(p);
    EXPECT_GT(residual, previous) << "p=" << p;
    previous = residual;
  }
}

TEST(Harq, ResidualBerIsFiniteOnTheWholeAdmittedDomain) {
  // The expm1/log1p forms need 1-2p > 0; the p > 0.5 half of the
  // admitted [0, 1] domain must not leak NaN (it used to be masked to
  // 0 by a std::max quirk).  For eH(64,57) at p = 0.6 the odd-weight
  // tail is ~1/2, so residual ~ 0.5 * 4/64.
  const HarqScheme harq;
  EXPECT_NEAR(harq.residual_ber(0.6), 0.5 * 4.0 / 64.0, 1e-6);
  EXPECT_DOUBLE_EQ(harq.residual_ber(1.0), 0.0);  // weight n is even
  for (const double p : {0.51, 0.75, 0.99}) {
    const double residual = harq.residual_ber(p);
    EXPECT_TRUE(std::isfinite(residual)) << p;
    EXPECT_GE(residual, 0.0) << p;
  }
  // Same NaN hazard in the even-weight tail: at p = 0.6 nearly every
  // block is detected-uncorrectable, so the retransmission rate is
  // ~1 - odd_total ~ 0.5, not the silent 0 the masked NaN produced.
  EXPECT_NEAR(harq.retransmission_rate(0.6), 0.5, 1e-6);
  for (const double p : {0.51, 0.75, 0.99, 1.0}) {
    const double rtx = harq.retransmission_rate(p);
    EXPECT_TRUE(std::isfinite(rtx)) << p;
    EXPECT_GE(rtx, 0.0) << p;
    EXPECT_LE(rtx, 1.0) << p;
  }
}

TEST(Harq, EdgeTargetsSaturateAtTheSearchFloor) {
  const HarqScheme harq;
  // residual_ber(1e-18) ~ 1e-50: a 1e-52 target is unrepresentable and
  // must come back as the explicit floor, not a noise-driven root or
  // nullopt.
  const auto saturated = harq.required_raw_ber(1e-52);
  ASSERT_TRUE(saturated.has_value());
  EXPECT_DOUBLE_EQ(*saturated, ecc::kMinSearchRawBer);
  // A deep-but-representable target still inverts exactly.
  const auto exact = harq.required_raw_ber(1e-30);
  ASSERT_TRUE(exact.has_value());
  EXPECT_GT(*exact, ecc::kMinSearchRawBer);
  EXPECT_NEAR(harq.residual_ber(*exact) / 1e-30, 1.0, 1e-3);
  // And solve() composes the saturated raw BER without blowing up.
  const auto point = harq.solve(paper_channel(), 1e-30);
  EXPECT_GT(point.snr, 0.0);
}

}  // namespace
}  // namespace photecc::core
