#include "photecc/core/arq.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "photecc/ecc/registry.hpp"
#include "photecc/math/units.hpp"

namespace photecc::core {
namespace {

link::MwsrChannel paper_channel() {
  return link::MwsrChannel{link::MwsrParams{}};
}

TEST(Arq, Validation) {
  ArqParams params;
  params.frame_payload_bits = 0;
  EXPECT_THROW(ArqScheme{params}, std::invalid_argument);
  params = ArqParams{};
  params.crc_width = 0;
  EXPECT_THROW(ArqScheme{params}, std::invalid_argument);
  params = ArqParams{};
  params.max_frame_error_rate = 1.0;
  EXPECT_THROW(ArqScheme{params}, std::invalid_argument);
  const ArqScheme scheme;
  EXPECT_THROW((void)scheme.frame_error_rate(-0.1), std::domain_error);
  EXPECT_THROW((void)scheme.required_raw_ber(0.0), std::domain_error);
}

TEST(Arq, FrameErrorRateMatchesClosedForm) {
  const ArqScheme scheme;  // 64 + 16 bits
  EXPECT_EQ(scheme.frame_bits(), 80u);
  for (const double p : {1e-6, 1e-3, 1e-2}) {
    // frame_error_rate uses the cancellation-free expm1/log1p form;
    // this pow reference is itself only accurate to ~1e-16 absolute,
    // which at small FER is a large relative error — hence the
    // relative tolerance.
    const double closed_form = 1.0 - std::pow(1.0 - p, 80.0);
    EXPECT_NEAR(scheme.frame_error_rate(p), closed_form,
                1e-10 * closed_form);
  }
  EXPECT_DOUBLE_EQ(scheme.frame_error_rate(0.0), 0.0);
  // Below p ~ 1e-17 the pow form collapses to zero; the expm1 form
  // keeps the leading term bits * p.
  EXPECT_NEAR(scheme.frame_error_rate(1e-18), 80e-18, 1e-21);
}

TEST(Arq, ResidualBerScalesWithCrcAliasing) {
  ArqParams p8;
  p8.crc_width = 8;
  ArqParams p32;
  p32.crc_width = 32;
  const ArqScheme crc8(p8), crc32(p32);
  const double p = 1e-3;
  // Same payload, wider CRC: the frame is a bit longer (higher FER) but
  // aliasing drops by 2^-24 — residual must be orders of magnitude
  // lower.
  EXPECT_LT(crc32.residual_ber(p), crc8.residual_ber(p) * 1e-6);
}

TEST(Arq, EffectiveCtGrowsWithErrorRate) {
  const ArqScheme scheme;
  const double clean = scheme.effective_ct(1e-9);
  EXPECT_NEAR(clean, 80.0 / 64.0, 1e-6);  // CRC overhead only
  EXPECT_GT(scheme.effective_ct(1e-2), clean);
  // At the FER cap (50 %), the expected sends double.
  const double p_half = 1.0 - std::pow(0.5, 1.0 / 80.0);
  EXPECT_NEAR(scheme.effective_ct(p_half), 2.0 * 80.0 / 64.0, 1e-9);
}

TEST(Arq, RequiredRawBerRoundTrips) {
  const ArqScheme scheme;
  for (const double target : {1e-9, 1e-11, 1e-13}) {
    const auto p = scheme.required_raw_ber(target);
    ASSERT_TRUE(p.has_value()) << target;
    // Either limited by the residual target...
    const double residual = scheme.residual_ber(*p);
    if (residual < target * 0.99) {
      // ...or by the FER cap.
      EXPECT_NEAR(scheme.frame_error_rate(*p), 0.5, 1e-9);
    } else {
      EXPECT_NEAR(residual / target, 1.0, 1e-3);
    }
  }
}

TEST(Arq, WideCrcSaturatesAtTheFerCap) {
  ArqParams params;
  params.crc_width = 32;
  const ArqScheme scheme(params);
  // CRC-32 aliasing (2^-33 per frame) is already below 1e-9; the
  // operating point is the throughput cap, not the quality target.
  const auto p = scheme.required_raw_ber(1e-9);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(scheme.frame_error_rate(*p), 0.5, 1e-9);
}

TEST(Arq, SolveOnPaperChannelIsFeasibleAndCheap) {
  const auto channel = paper_channel();
  ArqParams params;
  params.crc_width = 32;
  const ArqScheme scheme(params);
  const auto point = scheme.solve(channel, 1e-11);
  ASSERT_TRUE(point.feasible);
  // Detection-only lets the laser run far below the FEC operating
  // points (raw p ~ 1e-2 vs 1e-6).
  EXPECT_LT(point.p_laser_w, 4e-3);
  EXPECT_GT(point.effective_ct, 1.2);
  EXPECT_LE(point.residual_ber, 1e-11 * 1.01);
}

TEST(Arq, NarrowCrcCannotReachDeepTargetsCheaply) {
  // CRC-8 aliasing floor: residual <= target forces tiny raw p, so the
  // laser power approaches the uncoded scheme's.
  const auto channel = paper_channel();
  ArqParams p8;
  p8.crc_width = 8;
  ArqParams p32;
  p32.crc_width = 32;
  const auto weak = ArqScheme(p8).solve(channel, 1e-11);
  const auto strong = ArqScheme(p32).solve(channel, 1e-11);
  ASSERT_TRUE(weak.feasible && strong.feasible);
  EXPECT_GT(weak.p_laser_w, strong.p_laser_w * 2.0);
}

TEST(Arq, EvaluateProducesConsistentSchemeMetrics) {
  const auto channel = paper_channel();
  const ArqScheme scheme;
  const SchemeMetrics m = scheme.evaluate(channel, 1e-11);
  ASSERT_TRUE(m.feasible);
  EXPECT_EQ(m.scheme, "ARQ+CRC16");
  EXPECT_NEAR(m.p_channel_w, m.p_laser_w + m.p_mr_w + m.p_enc_dec_w,
              1e-15);
  EXPECT_NEAR(m.energy_per_bit_j,
              m.p_channel_w * m.ct / SystemConfig{}.f_mod_hz, 1e-20);
  EXPECT_GT(m.ct, 1.0);
}

TEST(Arq, ArqWinsOnExpectationButOffersNoSinglePassGuarantee) {
  // Under the random-error model a CRC-32 ARQ link at 1e-11 can run at
  // FER ~ 8.6 % — its *expected* CT (~1.64) even undercuts H(7,4)'s
  // fixed 1.75, at far lower laser power.  What FEC buys instead is
  // determinism: its CT is a constant, while ARQ completes in one pass
  // only with probability 1 - FER (unbounded tail) — the reason the
  // paper's real-time traffic wants FEC.
  const auto channel = paper_channel();
  ArqParams params;
  params.crc_width = 32;
  const ArqScheme scheme(params);
  const auto arq = scheme.solve(channel, 1e-11);
  const auto h74 = evaluate_scheme(
      channel, *ecc::make_code("H(7,4)"), 1e-11);
  ASSERT_TRUE(arq.feasible && h74.feasible);
  EXPECT_LT(arq.p_laser_w, h74.p_laser_w);
  EXPECT_LT(arq.effective_ct, h74.ct);         // expectation wins...
  EXPECT_GT(arq.frame_error_rate, 0.05);       // ...but 1 in 12 frames
  EXPECT_GT(arq.expected_transmissions, 1.05); // needs a resend
}

}  // namespace
}  // namespace photecc::core
