// core::policy_from_string is the exact inverse of to_string(Policy):
// round-trip over every enumerator, and precise rejection of anything
// that is not a canonical name.
#include <gtest/gtest.h>

#include "photecc/core/manager.hpp"

namespace core = photecc::core;

TEST(PolicyString, RoundTripsEveryEnumerator) {
  ASSERT_EQ(core::all_policies().size(), 3u);
  for (const core::Policy policy : core::all_policies()) {
    const auto parsed = core::policy_from_string(core::to_string(policy));
    ASSERT_TRUE(parsed.has_value()) << core::to_string(policy);
    EXPECT_EQ(*parsed, policy);
  }
}

TEST(PolicyString, KnownNamesMapToTheRightEnumerator) {
  EXPECT_EQ(core::policy_from_string("min-power"), core::Policy::kMinPower);
  EXPECT_EQ(core::policy_from_string("min-energy"), core::Policy::kMinEnergy);
  EXPECT_EQ(core::policy_from_string("min-time"), core::Policy::kMinTime);
}

TEST(PolicyString, RejectsNonCanonicalNames) {
  EXPECT_FALSE(core::policy_from_string(""));
  EXPECT_FALSE(core::policy_from_string("min_energy"));   // wrong separator
  EXPECT_FALSE(core::policy_from_string("MIN-ENERGY"));   // case-sensitive
  EXPECT_FALSE(core::policy_from_string("min-energy "));  // trailing space
  EXPECT_FALSE(core::policy_from_string("minenergy"));
  EXPECT_FALSE(core::policy_from_string("fastest"));
}
