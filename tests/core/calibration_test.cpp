#include "photecc/core/calibration.hpp"

#include <gtest/gtest.h>

#include "photecc/ecc/registry.hpp"
#include "photecc/link/snr_solver.hpp"

namespace photecc::core {
namespace {

link::MwsrChannel paper_channel() {
  return link::MwsrChannel{link::MwsrParams{}};
}

CalibrationConfig fast_config() {
  CalibrationConfig config;
  config.target_ber = 1e-3;  // measurable with small sample counts
  config.blocks_per_measurement = 2000;
  return config;
}

TEST(Calibration, ConvergesForCodedLink) {
  const auto channel = paper_channel();
  const auto code = ecc::make_code("H(7,4)");
  const auto result = calibrate_laser(channel, *code, fast_config());
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.op_laser_w, 0.0);
  EXPECT_LE(result.op_laser_w,
            channel.laser().max_optical_power(0.25) * 1.0001);
  EXPECT_GT(result.p_laser_w, 0.0);
  EXPECT_FALSE(result.history.empty());
}

TEST(Calibration, SettlesNearTheAnalyticOperatingPoint) {
  // The loop knows nothing about Eq. 2/3; landing within ~2 dB of the
  // analytic solve validates both the controller and the model.
  const auto channel = paper_channel();
  const auto code = ecc::make_code("H(7,4)");
  const auto config = fast_config();
  const auto result = calibrate_laser(channel, *code, config);
  ASSERT_TRUE(result.converged);
  const auto analytic =
      link::solve_operating_point(channel, *code, config.target_ber);
  ASSERT_TRUE(analytic.feasible);
  const double ratio = result.op_laser_w / analytic.op_laser_w;
  EXPECT_GT(ratio, 0.5) << "settled " << result.op_laser_w << " vs "
                        << analytic.op_laser_w;
  EXPECT_LT(ratio, 2.5);
}

TEST(Calibration, MeasuredBerMeetsTheTarget) {
  const auto channel = paper_channel();
  const auto code = ecc::make_code("H(71,64)");
  const auto config = fast_config();
  const auto result = calibrate_laser(channel, *code, config);
  ASSERT_TRUE(result.converged);
  // The final setting held the CI under target*margin during backoff;
  // the last *accepted* measurement satisfies the margin condition.
  bool some_step_met = false;
  for (const auto& step : result.history) some_step_met |= step.met_target;
  EXPECT_TRUE(some_step_met);
}

TEST(Calibration, HistoryRecordsMonotoneClimbThenBackoff) {
  const auto channel = paper_channel();
  const auto code = ecc::make_code("H(7,4)");
  const auto result = calibrate_laser(channel, *code, fast_config());
  ASSERT_GE(result.history.size(), 2u);
  // First phase steps must be non-decreasing in laser power.
  bool seen_drop = false;
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    if (result.history[i].op_laser_w <
        result.history[i - 1].op_laser_w * 0.999) {
      seen_drop = true;  // backoff phase began
    } else {
      EXPECT_FALSE(seen_drop && result.history[i].op_laser_w >
                                    result.history[i - 1].op_laser_w *
                                        1.001)
          << "climb after backoff at step " << i;
    }
  }
}

TEST(Calibration, UncodedNeedsMoreLaserThanCoded) {
  const auto channel = paper_channel();
  const auto config = fast_config();
  const auto uncoded =
      calibrate_laser(channel, *ecc::make_code("w/o ECC"), config);
  const auto coded =
      calibrate_laser(channel, *ecc::make_code("H(7,4)"), config);
  ASSERT_TRUE(uncoded.converged && coded.converged);
  EXPECT_GT(uncoded.op_laser_w, coded.op_laser_w);
}

TEST(Calibration, Validation) {
  const auto channel = paper_channel();
  const auto code = ecc::make_code("H(7,4)");
  CalibrationConfig bad;
  bad.target_ber = 0.0;
  EXPECT_THROW((void)calibrate_laser(channel, *code, bad),
               std::invalid_argument);
  bad = CalibrationConfig{};
  bad.step_db = 0.0;
  EXPECT_THROW((void)calibrate_laser(channel, *code, bad),
               std::invalid_argument);
  bad = CalibrationConfig{};
  bad.margin = 0.5;
  EXPECT_THROW((void)calibrate_laser(channel, *code, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace photecc::core
