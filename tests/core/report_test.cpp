#include "photecc/core/report.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "photecc/ecc/registry.hpp"

namespace photecc::core {
namespace {

link::MwsrChannel paper_channel() {
  return link::MwsrChannel{link::MwsrParams{}};
}

TEST(Report, MetricsTableHasOneRowPerScheme) {
  const auto metrics =
      evaluate_schemes(paper_channel(), ecc::paper_schemes(), 1e-11);
  const math::TextTable table = metrics_table(metrics);
  EXPECT_EQ(table.row_count(), 3u);
  std::ostringstream out;
  table.render(out);
  EXPECT_NE(out.str().find("w/o ECC"), std::string::npos);
  EXPECT_NE(out.str().find("H(71,64)"), std::string::npos);
  EXPECT_NE(out.str().find("H(7,4)"), std::string::npos);
}

TEST(Report, MetricsTableMarksInfeasibleRows) {
  const auto metrics =
      evaluate_schemes(paper_channel(), ecc::paper_schemes(), 1e-12);
  std::ostringstream out;
  metrics_table(metrics).render(out);
  EXPECT_NE(out.str().find("NO"), std::string::npos);
}

TEST(Report, BreakdownTableShowsLaserShare) {
  const auto metrics =
      evaluate_schemes(paper_channel(), ecc::paper_schemes(), 1e-11);
  std::ostringstream out;
  breakdown_table(metrics).render(out);
  EXPECT_NE(out.str().find("%"), std::string::npos);
  EXPECT_NE(out.str().find("Plaser"), std::string::npos);
}

TEST(Report, ParetoTableMarksFrontPoints) {
  const TradeoffSweep sweep = sweep_tradeoff(
      paper_channel(), ecc::paper_schemes(), {1e-10});
  std::ostringstream out;
  pareto_table(sweep).render(out);
  // All three schemes on the front -> three asterisks.
  std::size_t stars = 0;
  for (const char c : out.str())
    if (c == '*') ++stars;
  EXPECT_EQ(stars, 3u);
}

TEST(Report, PrintTablePrependsCaption) {
  const auto metrics =
      evaluate_schemes(paper_channel(), ecc::paper_schemes(), 1e-9);
  std::ostringstream out;
  print_table(out, "Figure 6a", metrics_table(metrics));
  EXPECT_EQ(out.str().rfind("Figure 6a", 0), 0u);
}

TEST(Report, CsvRenderingIsParseable) {
  const auto metrics =
      evaluate_schemes(paper_channel(), ecc::paper_schemes(), 1e-9);
  std::ostringstream out;
  metrics_table(metrics).render_csv(out);
  std::istringstream in(out.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 4u);  // header + 3 schemes
}

}  // namespace
}  // namespace photecc::core
