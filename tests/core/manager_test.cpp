#include "photecc/core/manager.hpp"

#include <gtest/gtest.h>

#include "photecc/ecc/registry.hpp"

namespace photecc::core {
namespace {

LinkManager paper_manager() {
  return LinkManager(link::MwsrChannel{link::MwsrParams{}},
                     ecc::paper_schemes());
}

TEST(LinkManager, ConstructionValidation) {
  EXPECT_THROW(LinkManager(link::MwsrChannel{link::MwsrParams{}}, {}),
               std::invalid_argument);
  EXPECT_THROW(LinkManager(link::MwsrChannel{link::MwsrParams{}},
                           {nullptr}),
               std::invalid_argument);
}

TEST(LinkManager, MinTimePolicyPicksUncodedWhenFeasible) {
  const LinkManager manager = paper_manager();
  CommunicationRequest request;
  request.target_ber = 1e-9;
  request.policy = Policy::kMinTime;
  const auto config = manager.configure(request);
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->code->name(), "w/o ECC");
  EXPECT_DOUBLE_EQ(config->metrics.ct, 1.0);
}

TEST(LinkManager, MinPowerPolicyPicksStrongestCode) {
  const LinkManager manager = paper_manager();
  CommunicationRequest request;
  request.target_ber = 1e-11;
  request.policy = Policy::kMinPower;
  const auto config = manager.configure(request);
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->code->name(), "H(7,4)");
}

TEST(LinkManager, MinEnergyPolicyPicksH7164AtPaperOperatingPoint) {
  // With E/bit = Pchannel / (Fmod * Rc), H(71,64) wins: large rate,
  // halved laser power (the paper's 'most energy efficient' scheme).
  const LinkManager manager = paper_manager();
  CommunicationRequest request;
  request.target_ber = 1e-11;
  request.policy = Policy::kMinEnergy;
  const auto config = manager.configure(request);
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->code->name(), "H(71,64)");
}

TEST(LinkManager, DeadlineConstraintForcesFasterScheme) {
  const LinkManager manager = paper_manager();
  CommunicationRequest request;
  request.target_ber = 1e-11;
  request.policy = Policy::kMinPower;
  request.max_ct = 1.05;  // excludes H(7,4) (1.75) and H(71,64) (1.11)
  const auto config = manager.configure(request);
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->code->name(), "w/o ECC");
}

TEST(LinkManager, DeadlineAdmitsEqualCt) {
  const LinkManager manager = paper_manager();
  CommunicationRequest request;
  request.target_ber = 1e-11;
  request.policy = Policy::kMinPower;
  request.max_ct = 71.0 / 64.0;  // exactly H(71,64)'s CT
  const auto config = manager.configure(request);
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->code->name(), "H(71,64)");
}

TEST(LinkManager, PowerCapExcludesUncoded) {
  const LinkManager manager = paper_manager();
  CommunicationRequest request;
  request.target_ber = 1e-11;
  request.policy = Policy::kMinTime;
  request.max_channel_power_w = 10e-3;  // uncoded needs ~15.7 mW
  const auto config = manager.configure(request);
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->code->name(), "H(71,64)");  // fastest under the cap
}

TEST(LinkManager, ImpossibleRequestReturnsNothing) {
  const LinkManager manager = paper_manager();
  CommunicationRequest request;
  request.target_ber = 1e-12;
  request.max_ct = 1.0;  // only uncoded, but uncoded can't reach 1e-12
  EXPECT_FALSE(manager.configure(request).has_value());

  request = CommunicationRequest{};
  request.target_ber = 1e-9;
  request.max_channel_power_w = 1e-6;  // nothing fits in a microwatt
  EXPECT_FALSE(manager.configure(request).has_value());
}

TEST(LinkManager, TenToMinusTwelveNeedsCoding) {
  // The paper's feasibility headline, expressed as manager behaviour.
  const LinkManager manager = paper_manager();
  CommunicationRequest request;
  request.target_ber = 1e-12;
  request.policy = Policy::kMinTime;
  const auto config = manager.configure(request);
  ASSERT_TRUE(config.has_value());
  EXPECT_NE(config->code->name(), "w/o ECC");
  EXPECT_EQ(config->code->name(), "H(71,64)");  // fastest feasible
}

TEST(LinkManager, LaserSettingMatchesTheOperatingPoint) {
  const LinkManager manager = paper_manager();
  CommunicationRequest request;
  request.target_ber = 1e-11;
  request.policy = Policy::kMinPower;
  const auto config = manager.configure(request);
  ASSERT_TRUE(config.has_value());
  EXPECT_DOUBLE_EQ(config->laser_output_w,
                   config->metrics.operating_point.op_laser_w);
  EXPECT_GT(config->laser_output_w, 0.0);
  EXPECT_LE(config->laser_output_w, 700e-6);
}

TEST(LinkManager, CandidatesExposeTheWholeMenu) {
  const LinkManager manager = paper_manager();
  const auto all = manager.candidates(1e-9);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].scheme, "w/o ECC");
  EXPECT_EQ(all[1].scheme, "H(71,64)");
  EXPECT_EQ(all[2].scheme, "H(7,4)");
}

TEST(LinkManager, BestReachableBerBeatsEveryMenuEntryAlone) {
  const LinkManager manager = paper_manager();
  const double best = manager.best_reachable_ber();
  EXPECT_LT(best, 1e-12);  // the coded schemes unlock 1e-12 and beyond
}

TEST(PolicyNames, Render) {
  EXPECT_EQ(to_string(Policy::kMinPower), "min-power");
  EXPECT_EQ(to_string(Policy::kMinEnergy), "min-energy");
  EXPECT_EQ(to_string(Policy::kMinTime), "min-time");
}

}  // namespace
}  // namespace photecc::core
