#include "photecc/core/tradeoff.hpp"

#include <gtest/gtest.h>

#include "photecc/ecc/registry.hpp"

namespace photecc::core {
namespace {

link::MwsrChannel paper_channel() {
  return link::MwsrChannel{link::MwsrParams{}};
}

TEST(Domination, BasicCases) {
  SchemeMetrics a, b;
  a.feasible = b.feasible = true;
  a.p_channel_w = 10e-3;
  a.ct = 1.0;
  b.p_channel_w = 8e-3;
  b.ct = 1.0;
  EXPECT_TRUE(is_dominated(a, b));   // b cheaper, same time
  EXPECT_FALSE(is_dominated(b, a));
  b.ct = 1.5;
  EXPECT_FALSE(is_dominated(a, b));  // trade-off: neither dominates
  EXPECT_FALSE(is_dominated(b, a));
}

TEST(Domination, InfeasibleAlwaysLoses) {
  SchemeMetrics feasible, infeasible;
  feasible.feasible = true;
  feasible.p_channel_w = 1.0;
  feasible.ct = 100.0;
  infeasible.feasible = false;
  EXPECT_TRUE(is_dominated(infeasible, feasible));
  EXPECT_FALSE(is_dominated(feasible, infeasible));
}

TEST(Domination, EqualPointsDoNotDominateEachOther) {
  SchemeMetrics a, b;
  a.feasible = b.feasible = true;
  a.p_channel_w = b.p_channel_w = 5e-3;
  a.ct = b.ct = 1.2;
  EXPECT_FALSE(is_dominated(a, b));
  EXPECT_FALSE(is_dominated(b, a));
}

TEST(ParetoFront, EmptyPointSetGivesEmptyFront) {
  EXPECT_TRUE(pareto_front_indices({}).empty());
}

TEST(ParetoFront, AllInfeasiblePointsGiveEmptyFront) {
  SchemeMetrics a, b;
  a.feasible = b.feasible = false;
  a.p_channel_w = 1.0;
  b.p_channel_w = 2.0;
  EXPECT_TRUE(pareto_front_indices({a, b}).empty());
}

TEST(ParetoFront, DuplicatePointsAllStayOnTheFront) {
  SchemeMetrics a;
  a.feasible = true;
  a.p_channel_w = 5e-3;
  a.ct = 1.2;
  const auto front = pareto_front_indices({a, a, a});
  EXPECT_EQ(front.size(), 3u);
}

TEST(ParetoFront, SingleFeasiblePointIsTheWholeFront) {
  SchemeMetrics feasible, infeasible;
  feasible.feasible = true;
  feasible.p_channel_w = 9.0;
  feasible.ct = 9.0;
  infeasible.feasible = false;
  infeasible.p_channel_w = 0.1;
  infeasible.ct = 0.1;
  const auto front = pareto_front_indices({infeasible, feasible});
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0], 1u);
}

TEST(ParetoFront, PaperClaimAllThreeSchemesAreOnTheFront) {
  // Paper Fig. 6b: "For a given BER, all the coding techniques belong
  // to the Pareto front".
  const auto channel = paper_channel();
  for (const double ber : {1e-6, 1e-8, 1e-10, 1e-11}) {
    const TradeoffSweep sweep =
        sweep_tradeoff(channel, ecc::paper_schemes(), {ber});
    const auto front = sweep.pareto_front();
    EXPECT_EQ(front.size(), 3u) << "ber=" << ber;
  }
}

TEST(ParetoFront, SortedByCommunicationTime) {
  const auto channel = paper_channel();
  const TradeoffSweep sweep =
      sweep_tradeoff(channel, ecc::paper_schemes(), {1e-10});
  const auto front = sweep.pareto_front();
  ASSERT_EQ(front.size(), 3u);
  EXPECT_EQ(sweep.points[front[0]].scheme, "w/o ECC");    // CT 1
  EXPECT_EQ(sweep.points[front[1]].scheme, "H(71,64)");   // CT 1.11
  EXPECT_EQ(sweep.points[front[2]].scheme, "H(7,4)");     // CT 1.75
}

TEST(ParetoFront, MutualNonDomination) {
  const auto channel = paper_channel();
  const TradeoffSweep sweep = sweep_tradeoff(
      channel, ecc::all_known_codes(), {1e-6, 1e-9, 1e-11});
  const auto front = sweep.pareto_front();
  ASSERT_GE(front.size(), 2u);
  for (const std::size_t i : front) {
    for (const std::size_t j : front) {
      if (i == j) continue;
      EXPECT_FALSE(is_dominated(sweep.points[i], sweep.points[j]))
          << sweep.points[i].scheme << " dominated by "
          << sweep.points[j].scheme;
    }
  }
}

TEST(ParetoFront, EveryOffFrontPointIsDominatedBySomeFrontPoint) {
  const auto channel = paper_channel();
  const TradeoffSweep sweep =
      sweep_tradeoff(channel, ecc::all_known_codes(), {1e-9});
  const auto front = sweep.pareto_front();
  for (std::size_t i = 0; i < sweep.points.size(); ++i) {
    if (!sweep.points[i].feasible) continue;
    const bool on_front =
        std::find(front.begin(), front.end(), i) != front.end();
    if (on_front) continue;
    bool dominated = false;
    for (const std::size_t j : front) {
      if (is_dominated(sweep.points[i], sweep.points[j])) {
        dominated = true;
        break;
      }
    }
    EXPECT_TRUE(dominated) << sweep.points[i].scheme;
  }
}

TEST(ParetoFront, RepetitionBuysPowerOnlyByWastingTimeAndEnergy) {
  // REP(3,1) occupies the min-power corner of the (P, CT) plane (its
  // post-decoding BER 3p^2 needs even less SNR than H(7,4)'s 6p^2) but
  // tripling the transmission time makes it the *least* energy
  // efficient scheme — the reason the paper studies Hamming instead.
  const auto channel = paper_channel();
  const TradeoffSweep sweep = sweep_tradeoff(
      channel,
      {ecc::make_code("H(7,4)"), ecc::make_code("H(71,64)"),
       ecc::make_code("REP(3,1)")},
      {1e-9});
  const SchemeMetrics* rep = nullptr;
  for (const auto& p : sweep.points)
    if (p.scheme == "REP(3,1)") rep = &p;
  ASSERT_NE(rep, nullptr);
  ASSERT_TRUE(rep->feasible);
  for (const auto& p : sweep.points) {
    if (p.scheme == "REP(3,1)") continue;
    EXPECT_GT(rep->energy_per_bit_j, p.energy_per_bit_j) << p.scheme;
    EXPECT_GT(rep->ct, p.ct) << p.scheme;
  }
}

TEST(Sweep, CoversTheFullGrid) {
  const auto channel = paper_channel();
  const std::vector<double> bers{1e-6, 1e-8, 1e-10, 1e-12};
  const TradeoffSweep sweep =
      sweep_tradeoff(channel, ecc::paper_schemes(), bers);
  EXPECT_EQ(sweep.points.size(), 3u * bers.size());
  // Infeasible uncoded point at 1e-12 must be present but excluded from
  // the front.
  std::size_t infeasible = 0;
  for (const auto& p : sweep.points)
    if (!p.feasible) ++infeasible;
  EXPECT_EQ(infeasible, 1u);
  for (const std::size_t i : sweep.pareto_front())
    EXPECT_TRUE(sweep.points[i].feasible);
}

TEST(Sweep, TighterBerCostsMorePowerForEveryScheme) {
  const auto channel = paper_channel();
  const TradeoffSweep sweep =
      sweep_tradeoff(channel, ecc::paper_schemes(), {1e-6, 1e-10});
  // points laid out BER-major: [1e-6 x 3, 1e-10 x 3]
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_LT(sweep.points[s].p_channel_w,
              sweep.points[3 + s].p_channel_w)
        << sweep.points[s].scheme;
  }
}

}  // namespace
}  // namespace photecc::core
