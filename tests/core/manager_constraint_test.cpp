// LinkManager::configure constraint edges: requests exactly at the
// max_ct / max_channel_power_w boundary must stay feasible (the caps
// are inclusive), a menu the request cannot satisfy must yield
// std::nullopt — never a half-filled LinkConfiguration — and an empty
// or null scheme menu is rejected at construction.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <optional>
#include <vector>

#include "photecc/core/manager.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/link/mwsr_channel.hpp"

namespace {

using namespace photecc;

constexpr double kTargetBer = 1e-9;

core::LinkManager paper_manager() {
  return core::LinkManager{link::MwsrChannel{link::MwsrParams{}},
                           ecc::paper_schemes()};
}

/// Feasible candidate metrics at the test BER, for boundary values.
std::vector<core::SchemeMetrics> feasible_candidates(
    const core::LinkManager& manager) {
  std::vector<core::SchemeMetrics> feasible;
  for (const auto& m : manager.candidates(kTargetBer))
    if (m.feasible) feasible.push_back(m);
  return feasible;
}

}  // namespace

TEST(LinkManagerConstraints, MaxCtExactlyAtBoundaryIsFeasible) {
  const auto manager = paper_manager();
  const auto feasible = feasible_candidates(manager);
  ASSERT_FALSE(feasible.empty());
  const double min_ct =
      std::min_element(feasible.begin(), feasible.end(),
                       [](const auto& a, const auto& b) {
                         return a.ct < b.ct;
                       })
          ->ct;

  core::CommunicationRequest request;
  request.target_ber = kTargetBer;
  request.policy = core::Policy::kMinTime;
  request.max_ct = min_ct;  // exactly at the tightest satisfiable cap
  const auto config = manager.configure(request);
  ASSERT_TRUE(config.has_value());
  EXPECT_DOUBLE_EQ(config->metrics.ct, min_ct);
  EXPECT_TRUE(config->metrics.feasible);
  EXPECT_GT(config->laser_output_w, 0.0);
}

TEST(LinkManagerConstraints, MaxCtJustBelowEveryCandidateIsNullopt) {
  const auto manager = paper_manager();
  const auto feasible = feasible_candidates(manager);
  ASSERT_FALSE(feasible.empty());
  const double min_ct =
      std::min_element(feasible.begin(), feasible.end(),
                       [](const auto& a, const auto& b) {
                         return a.ct < b.ct;
                       })
          ->ct;

  core::CommunicationRequest request;
  request.target_ber = kTargetBer;
  request.max_ct = min_ct * (1.0 - 1e-6);
  EXPECT_EQ(manager.configure(request), std::nullopt);
}

TEST(LinkManagerConstraints, MaxChannelPowerExactlyAtBoundaryIsFeasible) {
  const auto manager = paper_manager();
  const auto feasible = feasible_candidates(manager);
  ASSERT_FALSE(feasible.empty());
  const double min_power =
      std::min_element(feasible.begin(), feasible.end(),
                       [](const auto& a, const auto& b) {
                         return a.p_channel_w < b.p_channel_w;
                       })
          ->p_channel_w;

  core::CommunicationRequest request;
  request.target_ber = kTargetBer;
  request.policy = core::Policy::kMinPower;
  request.max_channel_power_w = min_power;  // inclusive cap
  const auto config = manager.configure(request);
  ASSERT_TRUE(config.has_value());
  EXPECT_DOUBLE_EQ(config->metrics.p_channel_w, min_power);

  request.max_channel_power_w = min_power * (1.0 - 1e-12);
  EXPECT_EQ(manager.configure(request), std::nullopt);
}

TEST(LinkManagerConstraints, UnsatisfiableRequestReturnsNullopt) {
  const auto manager = paper_manager();

  // No scheme transmits faster than uncoded: CT < 1 is unsatisfiable.
  core::CommunicationRequest impossible_ct;
  impossible_ct.target_ber = kTargetBer;
  impossible_ct.max_ct = 0.5;
  EXPECT_EQ(manager.configure(impossible_ct), std::nullopt);

  // A channel-power cap below any physical operating point.
  core::CommunicationRequest impossible_power;
  impossible_power.target_ber = kTargetBer;
  impossible_power.max_channel_power_w =
      std::numeric_limits<double>::denorm_min();
  EXPECT_EQ(manager.configure(impossible_power), std::nullopt);

  // A BER no scheme in the menu can reach on this channel.
  core::CommunicationRequest impossible_ber;
  impossible_ber.target_ber = manager.best_reachable_ber() * 1e-6;
  EXPECT_EQ(manager.configure(impossible_ber), std::nullopt);
}

TEST(LinkManagerConstraints, EmptyOrNullMenuIsRejectedAtConstruction) {
  const link::MwsrChannel channel{link::MwsrParams{}};
  EXPECT_THROW(core::LinkManager(channel, {}), std::invalid_argument);
  EXPECT_THROW(core::LinkManager(channel, {nullptr}), std::invalid_argument);
  std::vector<ecc::BlockCodePtr> with_hole = ecc::paper_schemes();
  with_hole.push_back(nullptr);
  EXPECT_THROW(core::LinkManager(channel, with_hole), std::invalid_argument);
}
