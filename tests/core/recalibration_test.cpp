// The closed recalibration loop: a RecalibratingManager re-solves only
// when the sampled environment drifts past the hysteresis band, and
// counts what every re-solve costs.
#include "photecc/core/manager.hpp"

#include <gtest/gtest.h>

#include "photecc/ecc/registry.hpp"

namespace photecc::core {
namespace {

std::shared_ptr<const LinkManager> paper_manager() {
  return std::make_shared<LinkManager>(link::MwsrChannel(link::MwsrParams{}),
                                       ecc::paper_schemes());
}

CommunicationRequest request_at(double ber) {
  CommunicationRequest request;
  request.target_ber = ber;
  request.policy = Policy::kMinEnergy;
  return request;
}

TEST(RecalibratingManager, ConstantEnvironmentSolvesOncePerRequest) {
  RecalibratingManager recal{paper_manager()};
  const auto request = request_at(1e-9);
  const env::EnvironmentSample sample{0.0, 0.25};
  const auto first = recal.configure(request, sample);
  ASSERT_TRUE(first.configuration.has_value());
  // The cold first solve is the ordinary manager round trip, not a
  // drift recalibration: no cost, not flagged.
  EXPECT_FALSE(first.recalibrated);
  for (int i = 0; i < 5; ++i) {
    const auto again = recal.configure(
        request, {static_cast<double>(i) * 1e-7, 0.25});
    EXPECT_FALSE(again.recalibrated);
    EXPECT_EQ(again.configuration->metrics.scheme,
              first.configuration->metrics.scheme);
  }
  EXPECT_EQ(recal.stats().solves, 1u);
  EXPECT_EQ(recal.stats().recalibrations, 0u);
  EXPECT_EQ(recal.stats().reuses, 5u);
  EXPECT_DOUBLE_EQ(recal.stats().energy_j, 0.0);
  EXPECT_DOUBLE_EQ(recal.stats().latency_s, 0.0);
}

TEST(RecalibratingManager, DriftPastHysteresisTriggersResolve) {
  RecalibrationConfig config;
  config.activity_hysteresis = 0.1;
  RecalibratingManager recal{paper_manager(), config};
  const auto request = request_at(1e-9);
  (void)recal.configure(request, {0.0, 0.25});
  // Inside the band: reuse.
  EXPECT_FALSE(recal.configure(request, {1e-7, 0.34}).recalibrated);
  // Past the band: re-solve, and the band re-centres at the new sample.
  EXPECT_TRUE(recal.configure(request, {2e-7, 0.40}).recalibrated);
  EXPECT_FALSE(recal.configure(request, {3e-7, 0.45}).recalibrated);
  EXPECT_EQ(recal.stats().solves, 2u);          // cold + 1 drift
  EXPECT_EQ(recal.stats().recalibrations, 1u);  // the drift re-solve
  EXPECT_EQ(recal.stats().reuses, 2u);
  EXPECT_DOUBLE_EQ(recal.stats().energy_j, config.recalibration_energy_j);
  EXPECT_DOUBLE_EQ(recal.stats().latency_s,
                   config.recalibration_latency_s);
}

TEST(RecalibratingManager, DistinctRequestsGetDistinctCacheEntries) {
  RecalibratingManager recal{paper_manager()};
  const env::EnvironmentSample sample{0.0, 0.25};
  (void)recal.configure(request_at(1e-6), sample);
  (void)recal.configure(request_at(1e-11), sample);
  EXPECT_EQ(recal.stats().solves, 2u);  // one cold solve each
  (void)recal.configure(request_at(1e-6), sample);
  (void)recal.configure(request_at(1e-11), sample);
  EXPECT_EQ(recal.stats().solves, 2u);  // both served from the cache
  EXPECT_EQ(recal.stats().reuses, 2u);
  EXPECT_EQ(recal.stats().recalibrations, 0u);
}

TEST(RecalibratingManager, HotEnvironmentFlipsTheDecision) {
  // At 25 % activity the manager's answer at BER 1e-11 differs from the
  // answer near saturation: the uncoded scheme leaves the feasible set
  // (the paper's thermal-envelope claim, now visible at runtime).
  auto manager = std::make_shared<LinkManager>(
      link::MwsrChannel(link::MwsrParams{}),
      std::vector<ecc::BlockCodePtr>{ecc::make_code("w/o ECC")});
  RecalibratingManager recal{manager};
  const auto request = request_at(1e-11);
  const auto cool = recal.configure(request, {0.0, 0.25});
  EXPECT_TRUE(cool.configuration.has_value());
  const auto hot = recal.configure(request, {1e-6, 0.9});
  EXPECT_TRUE(hot.recalibrated);
  EXPECT_FALSE(hot.configuration.has_value());
  // Nullopt configurations are cached too: no re-solve while hot.
  const auto still_hot = recal.configure(request, {1.1e-6, 0.9});
  EXPECT_FALSE(still_hot.recalibrated);
  EXPECT_FALSE(still_hot.configuration.has_value());
}

TEST(RecalibratingManager, EnvironmentAwareConfigureMatchesStaticAtBaseline) {
  const auto manager = paper_manager();
  const auto request = request_at(1e-9);
  const auto statically = manager->configure(request);
  const auto sampled = manager->configure(request, {0.0, 0.25});
  ASSERT_TRUE(statically && sampled);
  EXPECT_EQ(statically->metrics.p_laser_w, sampled->metrics.p_laser_w);
  EXPECT_EQ(statically->metrics.scheme, sampled->metrics.scheme);
}

TEST(RecalibratingManager, Validation) {
  EXPECT_THROW(RecalibratingManager(nullptr), std::invalid_argument);
  RecalibrationConfig negative;
  negative.activity_hysteresis = -0.1;
  EXPECT_THROW(RecalibratingManager(paper_manager(), negative),
               std::invalid_argument);
}

}  // namespace
}  // namespace photecc::core
