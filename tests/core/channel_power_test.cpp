#include "photecc/core/channel_power.hpp"

#include <gtest/gtest.h>

#include "photecc/ecc/registry.hpp"
#include "photecc/math/units.hpp"

namespace photecc::core {
namespace {

link::MwsrChannel paper_channel() {
  return link::MwsrChannel{link::MwsrParams{}};
}

TEST(ChannelPower, BreakdownSumsToTotal) {
  const auto channel = paper_channel();
  for (const auto& code : ecc::paper_schemes()) {
    const SchemeMetrics m = evaluate_scheme(channel, *code, 1e-11);
    ASSERT_TRUE(m.feasible) << code->name();
    EXPECT_NEAR(m.p_channel_w,
                m.p_laser_w + m.p_mr_w + m.p_enc_dec_w, 1e-15)
        << code->name();
  }
}

TEST(ChannelPower, LaserDominatesUncodedChannel) {
  // Paper Fig. 6a: lasers are ~92 % of the uncoded channel power.
  const auto channel = paper_channel();
  const SchemeMetrics m =
      evaluate_scheme(channel, *ecc::make_code("w/o ECC"), 1e-11);
  ASSERT_TRUE(m.feasible);
  EXPECT_GT(m.p_laser_w / m.p_channel_w, 0.88);
  EXPECT_LT(m.p_laser_w / m.p_channel_w, 0.95);
}

TEST(ChannelPower, ModulatorPowerIsThePaperConstant) {
  const auto channel = paper_channel();
  const SchemeMetrics m =
      evaluate_scheme(channel, *ecc::make_code("H(7,4)"), 1e-9);
  EXPECT_NEAR(math::as_milli(m.p_mr_w), 1.36, 1e-9);  // PMR from [15]
}

TEST(ChannelPower, CodedChannelsSaveRoughlyHalfThePower) {
  // Paper Section V-C: -45 % with H(71,64), -49 % with H(7,4).
  const auto channel = paper_channel();
  const auto uncoded =
      evaluate_scheme(channel, *ecc::make_code("w/o ECC"), 1e-11);
  const auto h7164 =
      evaluate_scheme(channel, *ecc::make_code("H(71,64)"), 1e-11);
  const auto h74 =
      evaluate_scheme(channel, *ecc::make_code("H(7,4)"), 1e-11);
  const double saving_7164 = 1.0 - h7164.p_channel_w / uncoded.p_channel_w;
  const double saving_74 = 1.0 - h74.p_channel_w / uncoded.p_channel_w;
  EXPECT_NEAR(saving_7164, 0.45, 0.06);
  EXPECT_NEAR(saving_74, 0.49, 0.06);
  EXPECT_GT(saving_74, saving_7164);
}

TEST(ChannelPower, PerWaveguideRollupMatchesPaperScale) {
  // Paper: 251 mW -> 136 mW per 16-wavelength waveguide.
  const auto channel = paper_channel();
  const auto uncoded =
      evaluate_scheme(channel, *ecc::make_code("w/o ECC"), 1e-11);
  const auto h7164 =
      evaluate_scheme(channel, *ecc::make_code("H(71,64)"), 1e-11);
  EXPECT_NEAR(math::as_milli(uncoded.p_waveguide_w), 251.0, 13.0);
  EXPECT_NEAR(math::as_milli(h7164.p_waveguide_w), 136.0, 10.0);
}

TEST(ChannelPower, InterconnectSavingsReachTensOfWatts) {
  // Paper: ~22 W saved over 16 waveguides x 12 ONIs.
  const auto channel = paper_channel();
  const auto uncoded =
      evaluate_scheme(channel, *ecc::make_code("w/o ECC"), 1e-11);
  const auto h7164 =
      evaluate_scheme(channel, *ecc::make_code("H(71,64)"), 1e-11);
  const double saving_w =
      uncoded.p_interconnect_w - h7164.p_interconnect_w;
  EXPECT_NEAR(saving_w, 22.0, 3.0);
}

TEST(ChannelPower, CommunicationTimesMatchPaper) {
  const auto channel = paper_channel();
  EXPECT_DOUBLE_EQ(
      evaluate_scheme(channel, *ecc::make_code("w/o ECC"), 1e-9).ct, 1.0);
  EXPECT_NEAR(
      evaluate_scheme(channel, *ecc::make_code("H(71,64)"), 1e-9).ct,
      71.0 / 64.0, 1e-12);
  EXPECT_DOUBLE_EQ(
      evaluate_scheme(channel, *ecc::make_code("H(7,4)"), 1e-9).ct, 1.75);
}

TEST(ChannelPower, EnergyPerBitUncodedMatchesPaper) {
  // 15.7 mW / 10 Gb/s = 1.57 pJ/bit at full channel utilisation; the
  // paper reports 3.92 pJ/bit using a 4 Gb/s payload stream per
  // wavelength (64 bits @ 1 GHz over 16 lambdas) — both are consistent
  // with Pchannel; we pin our definition here.
  const auto channel = paper_channel();
  const auto m =
      evaluate_scheme(channel, *ecc::make_code("w/o ECC"), 1e-11);
  EXPECT_NEAR(math::as_pico(m.energy_per_bit_j), 1.57, 0.1);
}

TEST(ChannelPower, EnergyPerBitAccountsForCodeRate) {
  const auto channel = paper_channel();
  const auto m =
      evaluate_scheme(channel, *ecc::make_code("H(7,4)"), 1e-11);
  ASSERT_TRUE(m.feasible);
  const SystemConfig config;
  EXPECT_NEAR(m.energy_per_bit_j,
              m.p_channel_w / (config.f_mod_hz * 4.0 / 7.0), 1e-18);
}

TEST(ChannelPower, InfeasiblePointHasNoPowerFigures) {
  const auto channel = paper_channel();
  const auto m =
      evaluate_scheme(channel, *ecc::make_code("w/o ECC"), 1e-12);
  EXPECT_FALSE(m.feasible);
  EXPECT_DOUBLE_EQ(m.p_channel_w, 0.0);
  EXPECT_DOUBLE_EQ(m.energy_per_bit_j, 0.0);
}

TEST(EncDecPower, PaperSchemesUseTableOne) {
  const SystemConfig config;
  const double h74 =
      enc_dec_power_per_wavelength_w(*ecc::make_code("H(7,4)"), config);
  EXPECT_NEAR(h74, (9.57 + 10.10) * 1e-6 / 16.0, 1e-12);
  const double uncoded =
      enc_dec_power_per_wavelength_w(*ecc::make_code("w/o ECC"), config);
  EXPECT_NEAR(uncoded, (3.16 + 4.29) * 1e-6 / 16.0, 1e-12);
}

TEST(EncDecPower, UnknownCodesFallBackToEstimator) {
  const SystemConfig config;
  const double h3126 =
      enc_dec_power_per_wavelength_w(*ecc::make_code("H(31,26)"), config);
  // Estimator should land in the same order of magnitude as Table I.
  EXPECT_GT(h3126, 0.1e-6 / 16.0);
  EXPECT_LT(h3126, 100e-6 / 16.0);
}

TEST(ChannelPower, Pam4HalvesCtAndScalesModulatorPower) {
  link::MwsrParams params;
  params.modulation = math::Modulation::kPam4;
  const link::MwsrChannel pam4{params};
  const auto channel = paper_channel();
  const auto code = ecc::make_code("H(7,4)");
  const SchemeMetrics ook = evaluate_scheme(channel, *code, 1e-9);
  const SchemeMetrics pam = evaluate_scheme(pam4, *code, 1e-9);
  EXPECT_EQ(ook.modulation, math::Modulation::kOok);
  EXPECT_EQ(pam.modulation, math::Modulation::kPam4);
  // 2 bits/symbol: half the serial transfer time...
  EXPECT_DOUBLE_EQ(pam.ct, ook.ct / 2.0);
  // ...twice the segmented-MRM driver power...
  EXPECT_DOUBLE_EQ(pam.p_mr_w, 2.0 * ook.p_mr_w);
  // ...and (when both are feasible) an energy/bit that reflects the
  // doubled payload rate against the inflated laser power.
  if (pam.feasible) {
    EXPECT_DOUBLE_EQ(
        pam.energy_per_bit_j,
        pam.p_channel_w / (2.0 * 10e9 * pam.code_rate));
  }
  // The code itself is modulation-blind: same rate, same raw BER.
  EXPECT_DOUBLE_EQ(pam.code_rate, ook.code_rate);
  EXPECT_DOUBLE_EQ(pam.operating_point.raw_ber,
                   ook.operating_point.raw_ber);
}

TEST(ChannelPower, SchemeDisplayNameTagsNonOokFormats) {
  SchemeMetrics m;
  m.scheme = "H(7,4)";
  EXPECT_EQ(scheme_display_name(m), "H(7,4)");
  m.modulation = math::Modulation::kPam4;
  EXPECT_EQ(scheme_display_name(m), "H(7,4) @pam4");
}

TEST(EvaluateSchemes, BatchesAndValidates) {
  const auto channel = paper_channel();
  const auto all = evaluate_schemes(channel, ecc::paper_schemes(), 1e-9);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].scheme, "w/o ECC");
  EXPECT_THROW(
      (void)evaluate_schemes(channel, {nullptr}, 1e-9),
      std::invalid_argument);
  SystemConfig bad;
  bad.wavelengths = 0;
  EXPECT_THROW((void)evaluate_scheme(channel, *ecc::make_code("H(7,4)"),
                                     1e-9, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace photecc::core
