#include "photecc/channel_sim/monte_carlo.hpp"

#include <gtest/gtest.h>

#include "photecc/ecc/registry.hpp"

namespace photecc::channel_sim {
namespace {

TEST(MonteCarlo, RawBerConsistentWithEquationThree) {
  // Pick SNRs where the BER is large enough to measure in ~2e5 bits.
  for (const double snr : {1.0, 2.0, 3.0}) {
    const BerMeasurement m = measure_raw_ber(snr, 200000);
    EXPECT_TRUE(m.consistent())
        << "snr=" << snr << " measured=" << m.measured_ber
        << " analytic=" << m.analytic_ber << " ci=[" << m.interval.lower
        << "," << m.interval.upper << "]";
  }
}

TEST(MonteCarlo, RawBerFieldsAreCoherent) {
  const BerMeasurement m = measure_raw_ber(2.0, 50000);
  EXPECT_EQ(m.bits, 50000u);
  EXPECT_NEAR(m.measured_ber,
              static_cast<double>(m.bit_errors) / 50000.0, 1e-15);
  EXPECT_LE(m.interval.lower, m.measured_ber);
  EXPECT_GE(m.interval.upper, m.measured_ber);
}

TEST(MonteCarlo, SeedsChangeTheDrawsNotTheStatistics) {
  MonteCarloOptions a, b;
  a.seed = 1;
  b.seed = 2;
  const BerMeasurement ma = measure_raw_ber(2.0, 100000, a);
  const BerMeasurement mb = measure_raw_ber(2.0, 100000, b);
  EXPECT_NE(ma.bit_errors, mb.bit_errors);  // different streams
  EXPECT_NEAR(ma.measured_ber / mb.measured_ber, 1.0, 0.2);
}

TEST(MonteCarlo, SameSeedReproducesExactly) {
  const BerMeasurement a = measure_raw_ber(2.0, 100000);
  const BerMeasurement b = measure_raw_ber(2.0, 100000);
  EXPECT_EQ(a.bit_errors, b.bit_errors);
}

class CodedBerValidation : public ::testing::TestWithParam<const char*> {};

TEST_P(CodedBerValidation, MeasuredBerNearEquationTwoPrediction) {
  // Eq. 2 is itself an approximation of the true post-decoding BER, so
  // we check agreement within a factor band rather than the Wilson CI:
  // the measured BER must sit within [x/3, 3x] of the prediction, and
  // always at or below the raw channel BER.
  const auto code = ecc::make_code(GetParam());
  const double snr = 2.5;  // raw p ~ 1.3e-2: plenty of correctable errors
  const BerMeasurement m = measure_coded_ber(*code, snr, 40000);
  EXPECT_GT(m.measured_ber, m.analytic_ber / 3.0)
      << "measured=" << m.measured_ber << " eq2=" << m.analytic_ber;
  EXPECT_LT(m.measured_ber, m.analytic_ber * 3.0)
      << "measured=" << m.measured_ber << " eq2=" << m.analytic_ber;
}

INSTANTIATE_TEST_SUITE_P(Codes, CodedBerValidation,
                         ::testing::Values("H(7,4)", "H(15,11)", "REP(3,1)"),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name)
                             if (!std::isalnum(
                                     static_cast<unsigned char>(c)))
                               c = '_';
                           return name;
                         });

TEST(MonteCarlo, CodingHelpsAtModerateSnr) {
  const auto h74 = ecc::make_code("H(7,4)");
  const double snr = 3.0;
  const BerMeasurement coded = measure_coded_ber(*h74, snr, 50000);
  const BerMeasurement raw = measure_raw_ber(snr, 200000);
  EXPECT_LT(coded.measured_ber, raw.measured_ber);
}

TEST(MonteCarlo, EndToEndMatchesBlockLevelModel) {
  const auto code = ecc::make_code("H(7,4)");
  const BerMeasurement m = measure_end_to_end_ber(code, 2.5, 3000, 64);
  EXPECT_EQ(m.bits, 3000u * 64u);
  EXPECT_GT(m.measured_ber, m.analytic_ber / 3.0);
  EXPECT_LT(m.measured_ber, m.analytic_ber * 3.0);
}

TEST(MonteCarlo, EndToEndUncodedMatchesRawChannel) {
  const auto code = ecc::make_code("w/o ECC");
  const double snr = 2.0;
  const BerMeasurement m = measure_end_to_end_ber(code, snr, 3000, 64);
  EXPECT_TRUE(m.consistent())
      << "measured=" << m.measured_ber << " analytic=" << m.analytic_ber;
}

TEST(MonteCarlo, InputValidation) {
  const auto code = ecc::make_code("H(7,4)");
  EXPECT_THROW((void)measure_raw_ber(2.0, 0), std::invalid_argument);
  EXPECT_THROW((void)measure_coded_ber(*code, 2.0, 0),
               std::invalid_argument);
  EXPECT_THROW((void)measure_end_to_end_ber(nullptr, 2.0, 10),
               std::invalid_argument);
  EXPECT_THROW((void)measure_end_to_end_ber(code, 2.0, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace photecc::channel_sim
