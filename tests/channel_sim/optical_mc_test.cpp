#include "photecc/channel_sim/optical_mc.hpp"

#include <gtest/gtest.h>

#include "photecc/ecc/registry.hpp"
#include "photecc/link/snr_solver.hpp"

namespace photecc::channel_sim {
namespace {

link::MwsrChannel paper_channel() {
  return link::MwsrChannel{link::MwsrParams{}};
}

// Pick a laser power whose BER is measurable (~1e-3) in modest samples.
double measurable_op(const link::MwsrChannel& channel) {
  const auto uncoded = ecc::make_code("w/o ECC");
  return link::solve_operating_point(channel, *uncoded, 1e-3)
      .op_laser_w;
}

TEST(OpticalMc, Validation) {
  const auto channel = paper_channel();
  EXPECT_THROW((void)measure_optical_raw_ber(channel, 0.0),
               std::invalid_argument);
  OpticalMcOptions options;
  options.bits = 0;
  EXPECT_THROW((void)measure_optical_raw_ber(channel, 1e-4, options),
               std::invalid_argument);
}

TEST(OpticalMc, MeasuredBerBoundedByWorstCasePrediction) {
  // Random neighbour data cannot be worse than the analytic all-'1'
  // worst case (allow CI slack).
  const auto channel = paper_channel();
  const double op = measurable_op(channel);
  const auto result = measure_optical_raw_ber(channel, op);
  EXPECT_LE(result.interval.lower, result.worst_case_ber)
      << "measured " << result.measured_ber << " worst case "
      << result.worst_case_ber;
}

TEST(OpticalMc, MeasuredBerAboveNoCrosstalkFloor) {
  const auto channel = paper_channel();
  const double op = measurable_op(channel);
  const auto result = measure_optical_raw_ber(channel, op);
  // Random crosstalk jitters the eye: at least the clean floor.
  EXPECT_GE(result.interval.upper, result.no_crosstalk_ber * 0.8);
}

TEST(OpticalMc, AllOnesNeighboursApproachTheWorstCase) {
  // Forcing every neighbour to '1' realises (almost exactly, modulo the
  // compensated threshold) the worst-case analysis.
  const auto channel = paper_channel();
  const double op = measurable_op(channel);
  OpticalMcOptions options;
  options.random_neighbours = false;
  options.bits = 300000;
  const auto result = measure_optical_raw_ber(channel, op, options);
  EXPECT_LT(result.measured_ber, result.worst_case_ber * 3.0);
  EXPECT_GT(result.measured_ber, result.no_crosstalk_ber * 0.3);
}

TEST(OpticalMc, MoreLaserPowerMeansFewerErrors) {
  const auto channel = paper_channel();
  const double op = measurable_op(channel);
  const auto low = measure_optical_raw_ber(channel, op * 0.8);
  const auto high = measure_optical_raw_ber(channel, op * 1.3);
  EXPECT_GT(low.measured_ber, high.measured_ber);
}

TEST(OpticalMc, DeterministicPerSeed) {
  const auto channel = paper_channel();
  const double op = measurable_op(channel);
  OpticalMcOptions options;
  options.bits = 20000;
  const auto a = measure_optical_raw_ber(channel, op, options);
  const auto b = measure_optical_raw_ber(channel, op, options);
  EXPECT_EQ(a.bit_errors, b.bit_errors);
}

TEST(OpticalMc, CrosstalkFreeChannelMatchesAnalyticFloorExactly) {
  // With crosstalk disabled in the link model the measurement reduces
  // to the calibrated AWGN construction: measured ~= no-crosstalk
  // prediction within the CI.
  link::MwsrParams params;
  params.include_crosstalk = false;
  const link::MwsrChannel channel{params};
  const double op = measurable_op(channel);
  OpticalMcOptions options;
  options.bits = 400000;
  const auto result = measure_optical_raw_ber(channel, op, options);
  EXPECT_TRUE(result.interval.contains(result.no_crosstalk_ber))
      << "measured " << result.measured_ber << " predicted "
      << result.no_crosstalk_ber;
}

}  // namespace
}  // namespace photecc::channel_sim
