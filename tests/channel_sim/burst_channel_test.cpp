#include "photecc/channel_sim/burst_channel.hpp"

#include <gtest/gtest.h>

namespace photecc::channel_sim {
namespace {

TEST(GilbertElliott, Validation) {
  GilbertElliottParams params;
  params.p_good_to_bad = -0.1;
  EXPECT_THROW(GilbertElliottChannel(params, 1), std::invalid_argument);
  params = GilbertElliottParams{};
  params.error_prob_bad = 1.5;
  EXPECT_THROW(GilbertElliottChannel(params, 1), std::invalid_argument);
  params = GilbertElliottParams{};
  params.p_good_to_bad = 0.0;
  params.p_bad_to_good = 0.0;
  EXPECT_THROW(GilbertElliottChannel(params, 1), std::invalid_argument);
}

TEST(GilbertElliott, StationaryStatistics) {
  GilbertElliottParams params;
  params.p_good_to_bad = 0.01;
  params.p_bad_to_good = 0.09;
  const GilbertElliottChannel channel(params, 1);
  EXPECT_NEAR(channel.bad_state_fraction(), 0.1, 1e-12);
  EXPECT_NEAR(channel.average_error_prob(),
              0.1 * params.error_prob_bad + 0.9 * params.error_prob_good,
              1e-12);
  EXPECT_NEAR(channel.mean_burst_length(), 1.0 / 0.09, 1e-9);
}

TEST(GilbertElliott, MeasuredErrorRateMatchesStationaryAverage) {
  GilbertElliottParams params;
  params.p_good_to_bad = 5e-3;
  params.p_bad_to_good = 0.05;
  params.error_prob_good = 1e-4;
  params.error_prob_bad = 0.25;
  GilbertElliottChannel channel(params, 7);
  const int n = 400000;
  int errors = 0;
  for (int i = 0; i < n; ++i) {
    const bool bit = (i & 1) != 0;
    if (channel.transmit(bit) != bit) ++errors;
  }
  const double measured = static_cast<double>(errors) / n;
  EXPECT_NEAR(measured / channel.average_error_prob(), 1.0, 0.15);
}

TEST(GilbertElliott, ErrorsActuallyCluster) {
  // Compare the distribution of gaps between errors against a
  // memoryless channel of the same average rate: the burst channel
  // must produce many more back-to-back errors.
  GilbertElliottParams params;
  params.p_good_to_bad = 2e-3;
  params.p_bad_to_good = 0.05;
  params.error_prob_good = 0.0;
  params.error_prob_bad = 0.4;
  GilbertElliottChannel channel(params, 11);
  const int n = 300000;
  int errors = 0, adjacent_pairs = 0;
  bool previous_error = false;
  for (int i = 0; i < n; ++i) {
    const bool error = channel.transmit(true) != true;
    if (error) {
      ++errors;
      if (previous_error) ++adjacent_pairs;
    }
    previous_error = error;
  }
  ASSERT_GT(errors, 100);
  const double p_avg = static_cast<double>(errors) / n;
  // Memoryless: P(error | previous error) = p_avg.  Bursty: should be
  // close to error_prob_bad (0.4), far above p_avg (~0.015).
  const double conditional =
      static_cast<double>(adjacent_pairs) / static_cast<double>(errors);
  EXPECT_GT(conditional, 10.0 * p_avg);
}

TEST(GilbertElliott, DeterministicPerSeed) {
  GilbertElliottParams params;
  GilbertElliottChannel a(params, 5), b(params, 5);
  for (int i = 0; i < 500; ++i) {
    const bool bit = (i % 3) == 0;
    EXPECT_EQ(a.transmit(bit), b.transmit(bit));
  }
}

TEST(GilbertElliott, WordOverloadPreservesSize) {
  GilbertElliottChannel channel(GilbertElliottParams{}, 3);
  const ecc::BitVec word(37);
  EXPECT_EQ(channel.transmit(word).size(), 37u);
  const std::vector<bool> wire(11, true);
  EXPECT_EQ(channel.transmit(wire).size(), 11u);
}

}  // namespace
}  // namespace photecc::channel_sim
