#include "photecc/channel_sim/ook_channel.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "photecc/math/special.hpp"

namespace photecc::channel_sim {
namespace {

TEST(OokChannel, SigmaCalibratedToEquationThree) {
  // sigma = 1 / (2 sqrt(2 snr)) makes Q(0.5/sigma) = 1/2 erfc(sqrt(snr)).
  const OokChannel channel(4.0, 1);
  EXPECT_NEAR(channel.noise_sigma(), 1.0 / (2.0 * std::sqrt(8.0)), 1e-15);
  EXPECT_NEAR(channel.analytic_raw_ber(),
              math::raw_ber_from_snr(4.0), 1e-15);
}

TEST(OokChannel, RejectsNonPositiveSnr) {
  EXPECT_THROW(OokChannel(0.0, 1), std::invalid_argument);
  EXPECT_THROW(OokChannel(-1.0, 1), std::invalid_argument);
}

TEST(OokChannel, DeterministicForSameSeed) {
  OokChannel a(2.0, 99), b(2.0, 99);
  for (int i = 0; i < 200; ++i) {
    const bool bit = (i % 3) == 0;
    EXPECT_EQ(a.transmit(bit), b.transmit(bit));
  }
}

TEST(OokChannel, HighSnrIsEssentiallyErrorFree) {
  OokChannel channel(50.0, 7);  // p ~ 7e-24
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(channel.transmit(true), true);
    EXPECT_EQ(channel.transmit(false), false);
  }
}

TEST(OokChannel, AnalogLevelsAreCentredOnSymbols) {
  OokChannel channel(10.0, 13);
  double sum1 = 0.0, sum0 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum1 += channel.transmit_analog(true);
    sum0 += channel.transmit_analog(false);
  }
  EXPECT_NEAR(sum1 / n, 1.0, 0.01);
  EXPECT_NEAR(sum0 / n, 0.0, 0.01);
}

TEST(OokChannel, MeasuredRawBerTracksAnalyticPrediction) {
  // At SNR = 2, p = 1/2 erfc(sqrt(2)) ~ 0.0228: 200k bits give a tight
  // estimate.
  const double snr = 2.0;
  OokChannel channel(snr, 21);
  const int n = 200000;
  int errors = 0;
  for (int i = 0; i < n; ++i) {
    const bool bit = (i & 1) != 0;
    if (channel.transmit(bit) != bit) ++errors;
  }
  const double measured = static_cast<double>(errors) / n;
  EXPECT_NEAR(measured / math::raw_ber_from_snr(snr), 1.0, 0.05);
}

TEST(OokChannel, WordAndWireOverloadsPreserveLength) {
  OokChannel channel(5.0, 31);
  const ecc::BitVec word = ecc::BitVec::from_string("10110");
  EXPECT_EQ(channel.transmit(word).size(), word.size());
  const std::vector<bool> wire{true, false, true};
  EXPECT_EQ(channel.transmit(wire).size(), wire.size());
}

}  // namespace
}  // namespace photecc::channel_sim
