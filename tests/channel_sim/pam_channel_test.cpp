#include "photecc/channel_sim/pam_channel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "photecc/math/special.hpp"

namespace photecc::channel_sim {
namespace {

TEST(PamChannel, Validation) {
  EXPECT_THROW(PamChannel(0.0, math::Modulation::kPam4, 1),
               std::invalid_argument);
  EXPECT_THROW(PamChannel(-1.0, math::Modulation::kOok, 1),
               std::invalid_argument);
}

TEST(PamChannel, AccessorsAndAnalyticBer) {
  PamChannel channel(9.0, math::Modulation::kPam4, 7);
  EXPECT_EQ(channel.levels(), 4u);
  EXPECT_EQ(channel.bits_per_symbol(), 2u);
  EXPECT_DOUBLE_EQ(channel.analytic_ber(),
                   math::pam_ber_from_snr(9.0, 4));
  PamChannel binary(9.0, math::Modulation::kOok, 7);
  EXPECT_DOUBLE_EQ(binary.analytic_ber(), math::raw_ber_from_snr(9.0));
}

TEST(PamChannel, NoiselessLimitIsTransparent) {
  // SNR so high the noise never crosses a boundary.
  PamChannel channel(1e6, math::Modulation::kPam8, 3);
  ecc::BitVec word(63 * 3);
  math::Xoshiro256 rng(17);
  for (std::size_t i = 0; i < word.size(); ++i)
    word.set(i, rng.bernoulli(0.5));
  EXPECT_EQ(channel.transmit(word), word);
}

TEST(PamChannel, TailBitsArePaddedNotDropped) {
  PamChannel channel(1e6, math::Modulation::kPam4, 3);
  ecc::BitVec word(7);  // not a multiple of 2 bits/symbol
  for (std::size_t i = 0; i < word.size(); ++i) word.set(i, true);
  const auto out = channel.transmit(word);
  EXPECT_EQ(out.size(), word.size());
  EXPECT_EQ(out, word);
  const std::vector<bool> wire{true, false, true};
  EXPECT_EQ(channel.transmit(wire), wire);
}

TEST(PamChannel, MeasuredBerMatchesAnalyticModel) {
  for (const math::Modulation modulation :
       {math::Modulation::kOok, math::Modulation::kPam4,
        math::Modulation::kPam8}) {
    // Pick the SNR so the BER is ~3e-3 for every format.
    const double target = 3e-3;
    const double snr =
        math::snr_from_ber(modulation, target);
    PamChannel channel(snr, modulation, 0xC0FFEE);
    const std::size_t bits_per_word = 6 * 64;
    const std::size_t words = 1500;
    math::Xoshiro256 data_rng(99);
    std::uint64_t errors = 0, total = 0;
    for (std::size_t w = 0; w < words; ++w) {
      ecc::BitVec word(bits_per_word);
      for (std::size_t i = 0; i < word.size(); ++i)
        word.set(i, data_rng.bernoulli(0.5));
      const ecc::BitVec received = channel.transmit(word);
      errors += received.distance(word);
      total += word.size();
    }
    const double measured =
        static_cast<double>(errors) / static_cast<double>(total);
    // ~576k bits at p ~ 3e-3: sigma ~ 7.2e-5; allow 5 sigma.
    const double sigma =
        std::sqrt(target * (1.0 - target) / static_cast<double>(total));
    EXPECT_NEAR(measured, target, 5.0 * sigma)
        << "modulation=" << math::to_string(modulation);
  }
}

TEST(PamChannel, GraySlipsCorruptOneBitPerSymbol) {
  // At moderate SNR nearly all symbol errors are one-level slips; with
  // Gray mapping the bit-error count should be close to the symbol
  // error count (ratio ~1), not bits_per_symbol x.
  PamChannel channel(math::snr_from_ber(math::Modulation::kPam4, 1e-2),
                     math::Modulation::kPam4, 0xBEEF);
  std::uint64_t symbol_errors = 0, bit_errors = 0;
  math::Xoshiro256 data_rng(5);
  for (std::size_t s = 0; s < 200000; ++s) {
    const std::size_t level = data_rng.bounded(4);
    ecc::BitVec word(2);
    // Build the 2-bit pattern for this level through the channel's own
    // transmit path: send the word and compare.
    word.set(0, (level & 1u) != 0);
    word.set(1, (level & 2u) != 0);
    const auto received = channel.transmit(word);
    const std::size_t flipped =
        (received.get(0) != word.get(0)) +
        (received.get(1) != word.get(1));
    if (flipped > 0) ++symbol_errors;
    bit_errors += flipped;
  }
  ASSERT_GT(symbol_errors, 100u);
  const double bits_per_symbol_error =
      static_cast<double>(bit_errors) /
      static_cast<double>(symbol_errors);
  EXPECT_LT(bits_per_symbol_error, 1.1);
}

}  // namespace
}  // namespace photecc::channel_sim
