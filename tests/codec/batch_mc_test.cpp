// The batch Monte-Carlo engine: run_coded_trials against the analytic
// decoded-BER models, the channel-level batch measurements against
// their scalar counterparts' contracts, and the regression pin that the
// measure_raw_ber rework (64-bit chunks + word-parallel counting)
// still consumes both RNG streams in the old per-bit order — counts
// must be bit-identical to the original loop.
#include <cstdint>

#include <gtest/gtest.h>

#include "photecc/channel_sim/monte_carlo.hpp"
#include "photecc/channel_sim/ook_channel.hpp"
#include "photecc/codec/batch_mc.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/math/rng.hpp"
#include "photecc/math/special.hpp"

namespace photecc::codec {
namespace {

TEST(RunCodedTrials, DeterministicPerSeed) {
  const auto code = ecc::make_code("H(7,4)");
  const BatchTrialResult a = run_coded_trials(*code, 0.02, 10000, 42);
  const BatchTrialResult b = run_coded_trials(*code, 0.02, 10000, 42);
  EXPECT_EQ(a.bit_errors, b.bit_errors);
  EXPECT_EQ(a.detected_blocks, b.detected_blocks);
  EXPECT_EQ(a.corrected_blocks, b.corrected_blocks);
  EXPECT_EQ(a.bits, 40000u);
  const BatchTrialResult c = run_coded_trials(*code, 0.02, 10000, 43);
  EXPECT_NE(a.bit_errors, c.bit_errors);
}

TEST(RunCodedTrials, ZeroErrorRateIsClean) {
  const auto code = ecc::make_code("BCH(15,7,2)");
  const BatchTrialResult r = run_coded_trials(*code, 0.0, 1000, 7);
  EXPECT_EQ(r.bit_errors, 0u);
  EXPECT_EQ(r.detected_blocks, 0u);
  EXPECT_EQ(r.corrected_blocks, 0u);
}

TEST(RunCodedTrials, ResidualBerTracksAnalyticModel) {
  // Same cross-check the scalar Monte-Carlo decoder test pins: the
  // measured residual BER lands within the Eq. 2 factor-3 band.
  struct Case {
    const char* name;
    double p;
    std::uint64_t words;
  };
  for (const Case& c : {Case{"H(7,4)", 3e-2, 40000},
                        Case{"H(15,11)", 2e-2, 40000},
                        Case{"BCH(15,7,2)", 3e-2, 60000}}) {
    const auto code = ecc::make_code(c.name);
    const BatchTrialResult r = run_coded_trials(*code, c.p, c.words, 0xAB5);
    const double measured = static_cast<double>(r.bit_errors) /
                            static_cast<double>(r.bits);
    const double analytic = code->decoded_ber(c.p);
    EXPECT_GT(measured, analytic / 3.0) << c.name;
    EXPECT_LT(measured, analytic * 3.0) << c.name;
    EXPECT_LT(measured, c.p) << c.name;
    EXPECT_GT(r.detected_blocks, 0u) << c.name;
  }
}

TEST(BatchMeasurements, CodedBerBatchConsistentWithAnalytic) {
  const auto code = ecc::make_code("H(7,4)");
  const double snr = 2.0;  // raw p ~ 2.3e-2: plenty of correction events
  const auto m = channel_sim::measure_coded_ber_batch(*code, snr, 60000);
  EXPECT_EQ(m.bits, 240000u);
  EXPECT_GT(m.bit_errors, 0u);
  EXPECT_GT(m.measured_ber, m.analytic_ber / 3.0);
  EXPECT_LT(m.measured_ber, m.analytic_ber * 3.0);
  // Deterministic in the seed.
  const auto again = channel_sim::measure_coded_ber_batch(*code, snr, 60000);
  EXPECT_EQ(m.bit_errors, again.bit_errors);
}

TEST(BatchMeasurements, EndToEndBerBatchConsistentWithAnalytic) {
  const auto code = ecc::make_code("H(7,4)");
  const auto m =
      channel_sim::measure_end_to_end_ber_batch(code, 2.0, 8000, 64);
  EXPECT_EQ(m.bits, 512000u);
  EXPECT_GT(m.bit_errors, 0u);
  EXPECT_GT(m.measured_ber, m.analytic_ber / 3.0);
  EXPECT_LT(m.measured_ber, m.analytic_ber * 3.0);
}

TEST(MeasureRawBer, CountsBitIdenticalToThePerBitReferenceLoop) {
  // Reference: the pre-rework implementation, reproduced verbatim.
  // Both it and the shipped chunked implementation must consume the
  // payload RNG and the channel RNG one draw per bit in the same order,
  // so the error COUNT (not just the rate) must match exactly.
  const double snr = 1.4;
  const channel_sim::MonteCarloOptions options{};
  for (const std::uint64_t bits : {std::uint64_t{1}, std::uint64_t{63},
                                   std::uint64_t{64}, std::uint64_t{65},
                                   std::uint64_t{100000}}) {
    channel_sim::OokChannel channel(snr, options.seed);
    math::Xoshiro256 rng(options.seed ^ 0xabcdef);
    std::uint64_t reference = 0;
    for (std::uint64_t i = 0; i < bits; ++i) {
      const bool sent = rng.bernoulli(0.5);
      if (channel.transmit(sent) != sent) ++reference;
    }
    const auto measured = channel_sim::measure_raw_ber(snr, bits, options);
    EXPECT_EQ(measured.bit_errors, reference) << "bits=" << bits;
    EXPECT_EQ(measured.bits, bits);
  }
}

TEST(MeasureRawBer, AgreesWithEqThree) {
  const double snr = 1.2;
  const auto m = channel_sim::measure_raw_ber(snr, 400000);
  EXPECT_DOUBLE_EQ(m.analytic_ber, math::raw_ber_from_snr(snr));
  EXPECT_TRUE(m.consistent()) << m.measured_ber << " vs " << m.analytic_ber;
}

}  // namespace
}  // namespace photecc::codec
