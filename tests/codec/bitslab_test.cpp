// BitSlab container contract: transpose round trips (the converters the
// batch-kernel bit-identity proofs rest on), slice/paste geometry, the
// lane-mask invariant, and the error-injection engine's distribution
// and determinism.
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "photecc/codec/batch_mc.hpp"
#include "photecc/codec/bitslab.hpp"
#include "photecc/math/rng.hpp"

namespace photecc::codec {
namespace {

std::vector<ecc::BitVec> random_batch(std::size_t bits, std::size_t lanes,
                                      math::Xoshiro256& rng) {
  std::vector<ecc::BitVec> batch;
  batch.reserve(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    ecc::BitVec v(bits);
    for (std::size_t i = 0; i < bits; ++i) v.set(i, rng.bernoulli(0.5));
    batch.push_back(v);
  }
  return batch;
}

TEST(BitSlab, ConstructionValidatesLaneCount) {
  EXPECT_THROW(BitSlab(8, 0), std::invalid_argument);
  EXPECT_THROW(BitSlab(8, 65), std::invalid_argument);
  const BitSlab slab(8, 64);
  EXPECT_EQ(slab.bits(), 8u);
  EXPECT_EQ(slab.lanes(), 64u);
  EXPECT_EQ(slab.lane_mask(), ~std::uint64_t{0});
  EXPECT_EQ(BitSlab(8, 3).lane_mask(), 0b111u);
}

TEST(BitSlab, TransposeRoundTripsForEveryLaneCount) {
  math::Xoshiro256 rng(0x51AB);
  for (std::size_t lanes = 1; lanes <= 64; ++lanes) {
    const auto batch = random_batch(71, lanes, rng);
    const BitSlab slab = BitSlab::transpose_in(batch);
    ASSERT_EQ(slab.bits(), 71u);
    ASSERT_EQ(slab.lanes(), lanes);
    for (std::size_t l = 0; l < lanes; ++l)
      EXPECT_EQ(slab.transpose_out(l), batch[l]) << "lane " << l;
    // Invariant: nothing outside the lane mask.
    for (std::size_t i = 0; i < slab.bits(); ++i)
      EXPECT_EQ(slab.word(i) & ~slab.lane_mask(), 0u);
  }
}

TEST(BitSlab, TransposeOutAllLanesMatchesPerLane) {
  math::Xoshiro256 rng(0x51AC);
  const auto batch = random_batch(15, 17, rng);
  const BitSlab slab = BitSlab::transpose_in(batch);
  const std::vector<ecc::BitVec> out = slab.transpose_out();
  ASSERT_EQ(out.size(), batch.size());
  for (std::size_t l = 0; l < batch.size(); ++l) EXPECT_EQ(out[l], batch[l]);
}

TEST(BitSlab, TransposeInValidatesShape) {
  EXPECT_THROW((void)BitSlab::transpose_in({}), std::invalid_argument);
  std::vector<ecc::BitVec> mixed{ecc::BitVec(4), ecc::BitVec(5)};
  EXPECT_THROW((void)BitSlab::transpose_in(mixed), std::invalid_argument);
  std::vector<ecc::BitVec> wide(65, ecc::BitVec(4));
  EXPECT_THROW((void)BitSlab::transpose_in(wide), std::invalid_argument);
}

TEST(BitSlab, TransposeOutRejectsInactiveLane) {
  const BitSlab slab(4, 3);
  EXPECT_THROW((void)slab.transpose_out(3), std::out_of_range);
}

TEST(BitSlab, SliceAndPasteRoundTrip) {
  math::Xoshiro256 rng(0x51AD);
  const auto batch = random_batch(21, 11, rng);
  const BitSlab slab = BitSlab::transpose_in(batch);
  const BitSlab mid = slab.slice(7, 7);
  ASSERT_EQ(mid.bits(), 7u);
  ASSERT_EQ(mid.lanes(), 11u);
  for (std::size_t l = 0; l < 11; ++l)
    EXPECT_EQ(mid.transpose_out(l), batch[l].slice(7, 7));
  BitSlab rebuilt(21, 11);
  rebuilt.paste(0, slab.slice(0, 7));
  rebuilt.paste(7, mid);
  rebuilt.paste(14, slab.slice(14, 7));
  EXPECT_EQ(rebuilt, slab);
  EXPECT_THROW((void)slab.slice(15, 7), std::out_of_range);
}

TEST(InjectErrors, ZeroAndOneProbabilityEdges) {
  BitSlab slab(13, 29);
  math::Xoshiro256 rng(1);
  inject_errors(slab, 0.0, rng);
  EXPECT_EQ(slab, BitSlab(13, 29));
  inject_errors(slab, 1.0, rng);
  for (std::size_t i = 0; i < slab.bits(); ++i)
    EXPECT_EQ(slab.word(i), slab.lane_mask());
  // p = 1 again flips everything back.
  inject_errors(slab, 1.0, rng);
  EXPECT_EQ(slab, BitSlab(13, 29));
}

TEST(InjectErrors, DeterministicPerSeedAndRespectsLaneMask) {
  BitSlab a(31, 23);
  BitSlab b(31, 23);
  math::Xoshiro256 ra(0xFEED);
  math::Xoshiro256 rb(0xFEED);
  inject_errors(a, 0.07, ra);
  inject_errors(b, 0.07, rb);
  EXPECT_EQ(a, b);
  EXPECT_GT(count_errors(a, BitSlab(31, 23)), 0u);
  for (std::size_t i = 0; i < a.bits(); ++i)
    EXPECT_EQ(a.word(i) & ~a.lane_mask(), 0u) << "inactive lane flipped";
  math::Xoshiro256 rc(0xF00D);
  BitSlab c(31, 23);
  inject_errors(c, 0.07, rc);
  EXPECT_NE(a, c) << "different seeds should give different flip sets";
}

TEST(InjectErrors, MatchesBernoulliRateStatistically) {
  // 64 lanes x 127 positions x 200 rounds at p = 0.02: ~32.5k expected
  // flips, sigma ~ 178.  A 5-sigma band will essentially never trip.
  const double p = 0.02;
  const std::size_t rounds = 200;
  math::Xoshiro256 rng(0xACC);
  std::uint64_t flips = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    BitSlab slab(127, 64);
    inject_errors(slab, p, rng);
    flips += count_errors(slab, BitSlab(127, 64));
  }
  const double cells = 127.0 * 64.0 * static_cast<double>(rounds);
  const double expect = cells * p;
  const double sigma = std::sqrt(cells * p * (1.0 - p));
  EXPECT_NEAR(static_cast<double>(flips), expect, 5.0 * sigma);
}

TEST(CountErrors, CountsWordParallelAndChecksShape) {
  BitSlab a(9, 40);
  BitSlab b(9, 40);
  a.word(3) ^= 0b1011u;
  b.word(8) ^= std::uint64_t{1} << 39;
  EXPECT_EQ(count_errors(a, b), 4u);
  EXPECT_THROW((void)count_errors(a, BitSlab(9, 39)), std::invalid_argument);
  EXPECT_THROW((void)count_errors(a, BitSlab(8, 40)), std::invalid_argument);
}

TEST(RandomMessageSlab, FillsActiveLanesOnly) {
  math::Xoshiro256 rng(0xBEEF);
  const BitSlab slab = random_message_slab(57, 19, rng);
  EXPECT_EQ(slab.bits(), 57u);
  EXPECT_EQ(slab.lanes(), 19u);
  std::uint64_t any = 0;
  for (std::size_t i = 0; i < slab.bits(); ++i) {
    EXPECT_EQ(slab.word(i) & ~slab.lane_mask(), 0u);
    any |= slab.word(i);
  }
  EXPECT_NE(any, 0u);
}

}  // namespace
}  // namespace photecc::codec
