// The batch contract: encode_batch / decode_batch are bit-identical to
// the scalar per-lane codec — messages, detected masks and corrected
// masks — for EVERY registry code (and cooling wraps on top of it).
// Exhaustive over all single- and double-error patterns for n <= 31
// (plus all weight-3 patterns for n <= 15 and every codeword of
// H(7,4)), randomized across error rates beyond that.
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "photecc/codec/batch_mc.hpp"
#include "photecc/codec/bitslab.hpp"
#include "photecc/cooling/cooling_code.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/math/rng.hpp"

namespace photecc::codec {
namespace {

std::vector<std::string> menu_names() {
  cooling::register_cooling_codes();
  std::vector<std::string> names;
  for (const auto& code : ecc::all_known_codes()) names.push_back(code->name());
  // Cooling wraps: pure, Hamming, shortened-Hamming and BCH inner codes.
  names.push_back("COOL(8,2)");
  names.push_back("COOL(H(7,4),1)");
  names.push_back("COOL(H(15,11),2)");
  names.push_back("COOL(BCH(15,7,2),3)");
  return names;
}

// Runs both paths over a batch of received words and compares
// everything lane by lane against the scalar decoder.
void expect_decode_identical(const ecc::BlockCode& code,
                             const std::vector<ecc::BitVec>& received,
                             const std::string& what) {
  const BitSlab slab = BitSlab::transpose_in(received);
  const ecc::BatchDecodeResult batch = code.decode_batch(slab);
  ASSERT_EQ(batch.messages.bits(), code.message_length());
  ASSERT_EQ(batch.messages.lanes(), received.size());
  EXPECT_EQ(batch.error_detected & ~slab.lane_mask(), 0u) << what;
  EXPECT_EQ(batch.corrected & ~slab.lane_mask(), 0u) << what;
  for (std::size_t l = 0; l < received.size(); ++l) {
    const ecc::DecodeResult scalar = code.decode(received[l]);
    EXPECT_EQ(batch.messages.transpose_out(l), scalar.message)
        << what << " lane " << l << " message";
    EXPECT_EQ(((batch.error_detected >> l) & 1u) != 0, scalar.error_detected)
        << what << " lane " << l << " detected flag";
    EXPECT_EQ(((batch.corrected >> l) & 1u) != 0, scalar.corrected)
        << what << " lane " << l << " corrected flag";
  }
}

void expect_encode_identical(const ecc::BlockCode& code,
                             const std::vector<ecc::BitVec>& messages,
                             const std::string& what) {
  const BitSlab slab = BitSlab::transpose_in(messages);
  const BitSlab batch = code.encode_batch(slab);
  ASSERT_EQ(batch.bits(), code.block_length());
  for (std::size_t l = 0; l < messages.size(); ++l)
    EXPECT_EQ(batch.transpose_out(l), code.encode(messages[l]))
        << what << " lane " << l;
}

void drain(const ecc::BlockCode& code, std::vector<ecc::BitVec>& pending,
           std::size_t& batch_no) {
  if (pending.empty()) return;
  expect_decode_identical(code, pending,
                          code.name() + " batch " + std::to_string(batch_no));
  pending.clear();
  ++batch_no;
}

ecc::BitVec random_word(std::size_t size, math::Xoshiro256& rng) {
  ecc::BitVec v(size);
  for (std::size_t i = 0; i < size; ++i) v.set(i, rng.bernoulli(0.5));
  return v;
}

class BatchEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(BatchEquivalence, EncodeMatchesScalarOnRandomMessages) {
  const auto code = ecc::make_code(GetParam());
  math::Xoshiro256 rng(0xE2C0DE);
  for (const std::size_t lanes : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}}) {
    std::vector<ecc::BitVec> messages;
    for (std::size_t l = 0; l < lanes; ++l)
      messages.push_back(random_word(code->message_length(), rng));
    expect_encode_identical(*code, messages,
                            GetParam() + " lanes=" + std::to_string(lanes));
  }
}

TEST_P(BatchEquivalence, DecodeMatchesScalarOnErrorPatterns) {
  const auto code = ecc::make_code(GetParam());
  const std::size_t n = code->block_length();
  math::Xoshiro256 rng(0xDEC0DE);
  const ecc::BitVec base = code->encode(random_word(code->message_length(),
                                                    rng));
  std::vector<ecc::BitVec> pending;
  std::size_t batch_no = 0;
  const auto push = [&](const ecc::BitVec& word) {
    pending.push_back(word);
    if (pending.size() == BitSlab::kLanes) drain(*code, pending, batch_no);
  };

  push(base);  // the clean codeword
  if (n <= 31) {
    // Exhaustive single and double errors on one codeword.
    for (std::size_t i = 0; i < n; ++i) {
      ecc::BitVec e1 = base;
      e1.flip(i);
      push(e1);
      for (std::size_t j = i + 1; j < n; ++j) {
        ecc::BitVec e2 = e1;
        e2.flip(j);
        push(e2);
      }
    }
    if (n <= 15) {
      // All weight-3 patterns too (exercises the beyond-capability
      // paths of BCH t=2 and the SECDED double-detect logic).
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j)
          for (std::size_t l = j + 1; l < n; ++l) {
            ecc::BitVec e3 = base;
            e3.flip(i);
            e3.flip(j);
            e3.flip(l);
            push(e3);
          }
    }
  } else {
    // Randomized: error rates from "mostly clean" to "garbage".
    for (const double p : {0.001, 0.01, 0.1, 0.5}) {
      for (std::size_t trial = 0; trial < 256; ++trial) {
        ecc::BitVec word =
            code->encode(random_word(code->message_length(), rng));
        for (std::size_t i = 0; i < n; ++i)
          if (rng.bernoulli(p)) word.flip(i);
        push(word);
      }
    }
  }
  drain(*code, pending, batch_no);
}

TEST_P(BatchEquivalence, PartialSlabsMatchScalar) {
  const auto code = ecc::make_code(GetParam());
  math::Xoshiro256 rng(0x9A27);
  for (const std::size_t lanes :
       {std::size_t{1}, std::size_t{2}, std::size_t{63}}) {
    std::vector<ecc::BitVec> received;
    for (std::size_t l = 0; l < lanes; ++l) {
      ecc::BitVec word = code->encode(random_word(code->message_length(),
                                                  rng));
      for (std::size_t i = 0; i < word.size(); ++i)
        if (rng.bernoulli(0.05)) word.flip(i);
      received.push_back(word);
    }
    expect_decode_identical(*code, received,
                            GetParam() + " lanes=" + std::to_string(lanes));
  }
}

TEST_P(BatchEquivalence, BatchRejectsMismatchedShapes) {
  const auto code = ecc::make_code(GetParam());
  EXPECT_THROW((void)code->encode_batch(
                   BitSlab(code->message_length() + 1, 4)),
               std::invalid_argument);
  EXPECT_THROW((void)code->decode_batch(BitSlab(code->block_length() + 1, 4)),
               std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(FullMenu, BatchEquivalence,
                         ::testing::ValuesIn(menu_names()),
                         [](const auto& info) {
                           std::string tag = info.param;
                           for (char& c : tag)
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return tag;
                         });

TEST(BatchEquivalenceExhaustive, HammingSevenFourAllCodewordsAllSingles) {
  // Every message, every single-error position: 16 * 8 received words
  // (clean + 7 flips), proving the kernels on the whole code book.
  const auto code = ecc::make_code("H(7,4)");
  std::vector<ecc::BitVec> received;
  for (std::uint64_t msg = 0; msg < 16; ++msg) {
    const ecc::BitVec codeword = code->encode(ecc::BitVec::from_uint(msg, 4));
    received.push_back(codeword);
    for (std::size_t i = 0; i < 7; ++i) {
      ecc::BitVec e = codeword;
      e.flip(i);
      received.push_back(e);
    }
  }
  for (std::size_t off = 0; off < received.size(); off += BitSlab::kLanes) {
    const std::size_t lanes =
        std::min<std::size_t>(BitSlab::kLanes, received.size() - off);
    const std::vector<ecc::BitVec> chunk(received.begin() + off,
                                         received.begin() + off + lanes);
    expect_decode_identical(*code, chunk, "H(7,4) full codebook");
  }
}

}  // namespace
}  // namespace photecc::codec
