#include "photecc/interface/synthesis_model.hpp"

#include <gtest/gtest.h>

#include "photecc/ecc/hamming.hpp"

namespace photecc::interface {
namespace {

// ---- Table I reference dataset -----------------------------------------

TEST(Table1, TransmitterTotalsMatchThePaper) {
  const InterfacePair pair = table1_reference();
  EXPECT_DOUBLE_EQ(pair.transmitter.total_area_um2, 2013.0);
  EXPECT_DOUBLE_EQ(pair.transmitter.dynamic_uw(InterfaceMode::kHamming74),
                   9.57);
  EXPECT_DOUBLE_EQ(
      pair.transmitter.dynamic_uw(InterfaceMode::kHamming7164), 5.99);
  EXPECT_DOUBLE_EQ(pair.transmitter.dynamic_uw(InterfaceMode::kUncoded),
                   3.16);
}

TEST(Table1, ReceiverTotalsMatchThePaper) {
  const InterfacePair pair = table1_reference();
  EXPECT_DOUBLE_EQ(pair.receiver.total_area_um2, 3050.0);
  EXPECT_DOUBLE_EQ(pair.receiver.dynamic_uw(InterfaceMode::kHamming74),
                   10.10);
  EXPECT_DOUBLE_EQ(pair.receiver.dynamic_uw(InterfaceMode::kHamming7164),
                   7.21);
  EXPECT_DOUBLE_EQ(pair.receiver.dynamic_uw(InterfaceMode::kUncoded),
                   4.29);
}

TEST(Table1, BlockAreasSumToTheTotals) {
  const InterfacePair pair = table1_reference();
  double tx_area = 0.0;
  for (const auto& b : pair.transmitter.blocks) tx_area += b.area_um2;
  EXPECT_NEAR(tx_area, pair.transmitter.total_area_um2, 0.5);
  double rx_area = 0.0;
  for (const auto& b : pair.receiver.blocks) rx_area += b.area_um2;
  EXPECT_NEAR(rx_area, pair.receiver.total_area_um2, 0.5);
}

TEST(Table1, ActivePathPowersAreBlockSums) {
  // H(7,4) TX path = 1-bit mux + H(7,4) coders + 112-bit SER.
  const InterfacePair pair = table1_reference();
  const auto& blocks = pair.transmitter.blocks;
  const double sum =
      blocks[0].dynamic_uw + blocks[1].dynamic_uw + blocks[3].dynamic_uw;
  EXPECT_NEAR(sum, pair.transmitter.dynamic_uw(InterfaceMode::kHamming74),
              0.01);
}

TEST(Table1, CodedPathsCostMoreThanUncoded) {
  const InterfacePair pair = table1_reference();
  for (const auto* side : {&pair.transmitter, &pair.receiver}) {
    EXPECT_GT(side->dynamic_uw(InterfaceMode::kHamming74),
              side->dynamic_uw(InterfaceMode::kHamming7164));
    EXPECT_GT(side->dynamic_uw(InterfaceMode::kHamming7164),
              side->dynamic_uw(InterfaceMode::kUncoded));
  }
}

TEST(Table1, PerWavelengthEncDecPowerIsMicrowattScale) {
  // Fig. 6a shows P_ENC+DEC as a negligible sliver: ~1.2 uW/lambda for
  // H(7,4) over 16 wavelengths.
  const InterfacePair pair = table1_reference();
  const double w = pair.enc_dec_power_per_wavelength_w(
      InterfaceMode::kHamming74, 16);
  EXPECT_NEAR(w, (9.57 + 10.10) * 1e-6 / 16.0, 1e-12);
  EXPECT_LT(w, 2e-6);
  EXPECT_THROW(
      (void)pair.enc_dec_power_per_wavelength_w(InterfaceMode::kUncoded, 0),
      std::invalid_argument);
}

TEST(Table1, CriticalPathsMeetTheClocks) {
  // Every block must close timing: FIP blocks under 1000 ps, SER/DES
  // blocks under 100 ps (Fmod = 10 GHz).
  const InterfacePair pair = table1_reference();
  for (const auto* side : {&pair.transmitter, &pair.receiver}) {
    for (const auto& block : side->blocks) {
      const bool serdes = block.name.find("SER") != std::string::npos;
      EXPECT_LE(block.critical_path_ps, serdes ? 100.0 : 1000.0)
          << block.name;
    }
  }
}

TEST(Table1, TotalPowerIncludesBothSides) {
  const InterfacePair pair = table1_reference();
  EXPECT_NEAR(pair.total_power_w(InterfaceMode::kHamming74),
              (9.57 + 10.10) * 1e-6, 1e-12);
}

TEST(InterfaceModeNames, RenderLikeThePaper) {
  EXPECT_EQ(to_string(InterfaceMode::kUncoded), "w/o ECC");
  EXPECT_EQ(to_string(InterfaceMode::kHamming74), "H(7,4)");
  EXPECT_EQ(to_string(InterfaceMode::kHamming7164), "H(71,64)");
}

// ---- DSENT-style estimator ----------------------------------------------

TEST(Estimator, TransmitterEstimateWithinTwoXOfTableOne) {
  const SynthesisEstimator estimator;
  const InterfaceSynthesis tx = estimator.transmitter();
  const InterfacePair ref = table1_reference();
  EXPECT_GT(tx.total_area_um2, ref.transmitter.total_area_um2 / 2.0);
  EXPECT_LT(tx.total_area_um2, ref.transmitter.total_area_um2 * 2.0);
  for (const auto mode :
       {InterfaceMode::kUncoded, InterfaceMode::kHamming74,
        InterfaceMode::kHamming7164}) {
    const double est = tx.dynamic_uw(mode);
    const double paper = ref.transmitter.dynamic_uw(mode);
    EXPECT_GT(est, paper / 3.0) << to_string(mode);
    EXPECT_LT(est, paper * 3.0) << to_string(mode);
  }
}

TEST(Estimator, PreservesTheModeOrdering) {
  const SynthesisEstimator estimator;
  for (const InterfaceSynthesis& side :
       {estimator.transmitter(), estimator.receiver()}) {
    EXPECT_GT(side.dynamic_uw(InterfaceMode::kHamming74),
              side.dynamic_uw(InterfaceMode::kHamming7164));
    EXPECT_GT(side.dynamic_uw(InterfaceMode::kHamming7164),
              side.dynamic_uw(InterfaceMode::kUncoded));
  }
}

TEST(Estimator, EncoderBankScalesWithCodeComplexity) {
  const SynthesisEstimator estimator;
  const ecc::HammingCode h74(3);
  const ecc::ShortenedHammingCode h7164(7, 56);
  const BlockSynthesis bank74 = estimator.encoder_bank(h74);
  const BlockSynthesis bank7164 = estimator.encoder_bank(h7164);
  // 16 x H(7,4) registers 16*7=112 output bits, 1 x H(71,64) only 71:
  // the H(7,4) bank is bigger, like in Table I (551 vs 490 um^2).
  EXPECT_GT(bank74.area_um2, bank7164.area_um2);
}

TEST(Estimator, DecoderCostsMoreThanEncoder) {
  const SynthesisEstimator estimator;
  const ecc::HammingCode h74(3);
  EXPECT_GT(estimator.decoder_bank(h74).area_um2,
            estimator.encoder_bank(h74).area_um2);
  EXPECT_GT(estimator.decoder_bank(h74).critical_path_ps,
            estimator.encoder_bank(h74).critical_path_ps);
}

TEST(Estimator, SerializerScalesWithFrameWidth) {
  const SynthesisEstimator estimator;
  const BlockSynthesis ser64 = estimator.serializer(64);
  const BlockSynthesis ser112 = estimator.serializer(112);
  EXPECT_GT(ser112.area_um2, ser64.area_um2);
  EXPECT_GT(ser112.dynamic_uw, ser64.dynamic_uw);
  EXPECT_GT(ser112.static_nw, ser64.static_nw);
}

TEST(Estimator, DeserializerIsSmallerThanSerializer) {
  // No input load muxes on the shift-in pipeline (Table I: 365 vs 433).
  const SynthesisEstimator estimator;
  EXPECT_LT(estimator.deserializer(112).area_um2,
            estimator.serializer(112).area_um2);
}

TEST(Estimator, StaticPowerStaysNanowattScale) {
  // "Static power is negligible thanks to the 28 nm low leakage
  // technology" — totals must stay well below a microwatt.
  const SynthesisEstimator estimator;
  for (const InterfaceSynthesis& side :
       {estimator.transmitter(), estimator.receiver()}) {
    double total_nw = 0.0;
    for (const auto& block : side.blocks) total_nw += block.static_nw;
    EXPECT_LT(total_nw, 1000.0);
  }
}

TEST(Estimator, RejectsBadClocks) {
  InterfaceClocks clocks;
  clocks.f_ip_hz = 0.0;
  EXPECT_THROW(SynthesisEstimator(fdsoi28(), clocks),
               std::invalid_argument);
  clocks = InterfaceClocks{};
  clocks.n_data = 0;
  EXPECT_THROW(SynthesisEstimator(fdsoi28(), clocks),
               std::invalid_argument);
}

TEST(BlockSynthesis, TotalAddsLeakage) {
  BlockSynthesis block;
  block.dynamic_uw = 3.13;
  block.static_nw = 1.7;
  EXPECT_NEAR(block.total_uw(), 3.1317, 1e-9);
}

}  // namespace
}  // namespace photecc::interface
