#include "photecc/interface/technology.hpp"

#include <gtest/gtest.h>

namespace photecc::interface {
namespace {

TEST(Technology, Fdsoi28Defaults) {
  const TechnologyParams tech = fdsoi28();
  EXPECT_EQ(tech.name, "28nm FDSOI");
  EXPECT_DOUBLE_EQ(tech.feature_nm, 28.0);
  EXPECT_GT(tech.gate_area_um2, 0.0);
  EXPECT_GT(tech.xor_energy_j, 0.0);
  EXPECT_GT(tech.flop_energy_j, 0.0);
  EXPECT_GT(tech.gate_delay_ps, 0.0);
}

TEST(Technology, ScalingShrinksEverythingAtSmallerNodes) {
  const TechnologyParams base = fdsoi28();
  const TechnologyParams small = scaled_node(14.0);
  EXPECT_LT(small.gate_area_um2, base.gate_area_um2);
  EXPECT_LT(small.xor_energy_j, base.xor_energy_j);
  EXPECT_LT(small.flop_energy_j, base.flop_energy_j);
  EXPECT_LT(small.gate_delay_ps, base.gate_delay_ps);
  EXPECT_LT(small.leakage_per_gate_w, base.leakage_per_gate_w);
}

TEST(Technology, AreaScalesQuadratically) {
  const TechnologyParams base = fdsoi28();
  const TechnologyParams half = scaled_node(14.0);
  EXPECT_NEAR(half.gate_area_um2 / base.gate_area_um2, 0.25, 1e-12);
}

TEST(Technology, IdentityScalingIsIdentity) {
  const TechnologyParams same = scaled_node(28.0);
  const TechnologyParams base = fdsoi28();
  EXPECT_DOUBLE_EQ(same.gate_area_um2, base.gate_area_um2);
  EXPECT_DOUBLE_EQ(same.gate_delay_ps, base.gate_delay_ps);
}

TEST(Technology, RejectsNonPositiveFeature) {
  EXPECT_THROW(scaled_node(0.0), std::invalid_argument);
  EXPECT_THROW(scaled_node(-28.0), std::invalid_argument);
}

}  // namespace
}  // namespace photecc::interface
