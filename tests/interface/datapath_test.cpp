#include "photecc/interface/datapath.hpp"

#include <gtest/gtest.h>

#include "photecc/ecc/registry.hpp"
#include "photecc/math/rng.hpp"

namespace photecc::interface {
namespace {

ecc::BitVec random_word(std::size_t size, math::Xoshiro256& rng) {
  ecc::BitVec word(size);
  for (std::size_t i = 0; i < size; ++i) word.set(i, rng.bernoulli(0.5));
  return word;
}

TEST(Datapath, FrameSizesMatchTableOne) {
  // Table I: 112-bit frames with H(7,4), 71-bit with H(71,64), 64-bit
  // uncoded, all for Ndata = 64.
  EXPECT_EQ(TransmitterDatapath(ecc::make_code("H(7,4)"), 64).frame_bits(),
            112u);
  EXPECT_EQ(
      TransmitterDatapath(ecc::make_code("H(71,64)"), 64).frame_bits(),
      71u);
  EXPECT_EQ(
      TransmitterDatapath(ecc::make_code("w/o ECC"), 64).frame_bits(),
      64u);
}

TEST(Datapath, BlockCountsMatchTableOne) {
  // 16 parallel H(7,4) coders vs a single H(71,64) codec.
  EXPECT_EQ(TransmitterDatapath(ecc::make_code("H(7,4)"), 64).block_count(),
            16u);
  EXPECT_EQ(
      TransmitterDatapath(ecc::make_code("H(71,64)"), 64).block_count(),
      1u);
}

TEST(Datapath, RejectsNonDividingCode) {
  // H(15,11): 11 does not divide 64.
  EXPECT_THROW(TransmitterDatapath(ecc::make_code("H(15,11)"), 64),
               std::invalid_argument);
  EXPECT_THROW(ReceiverDatapath(ecc::make_code("H(15,11)"), 64),
               std::invalid_argument);
  EXPECT_THROW(TransmitterDatapath(nullptr, 64), std::invalid_argument);
}

class DatapathRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(DatapathRoundTrip, CleanWireRoundTrips) {
  const auto code = ecc::make_code(GetParam());
  const TransmitterDatapath tx(code, 64);
  const ReceiverDatapath rx(code, 64);
  math::Xoshiro256 rng(0xDA7A);
  for (int trial = 0; trial < 25; ++trial) {
    const ecc::BitVec word = random_word(64, rng);
    const auto wire = tx.transmit(word);
    ASSERT_EQ(wire.size(), tx.frame_bits());
    const ReceiveResult result = rx.receive(wire);
    EXPECT_EQ(result.word, word);
    EXPECT_EQ(result.corrected_blocks, 0u);
    EXPECT_EQ(result.detected_blocks, 0u);
  }
}

TEST_P(DatapathRoundTrip, SingleWireErrorPerBlockIsTransparent) {
  const auto code = ecc::make_code(GetParam());
  if (code->correctable_errors() == 0) GTEST_SKIP() << "uncoded";
  const TransmitterDatapath tx(code, 64);
  const ReceiverDatapath rx(code, 64);
  math::Xoshiro256 rng(0xE44);
  const ecc::BitVec word = random_word(64, rng);
  auto wire = tx.transmit(word);
  // Flip exactly one bit in every code block on the wire.
  const std::size_t n = code->block_length();
  for (std::size_t block = 0; block * n < wire.size(); ++block) {
    const std::size_t pos = block * n + rng.bounded(n);
    wire[pos] = !wire[pos];
  }
  const ReceiveResult result = rx.receive(wire);
  EXPECT_EQ(result.word, word);
  EXPECT_EQ(result.corrected_blocks, tx.block_count());
  EXPECT_EQ(result.detected_blocks, tx.block_count());
}

INSTANTIATE_TEST_SUITE_P(Schemes, DatapathRoundTrip,
                         ::testing::Values("w/o ECC", "H(7,4)", "H(71,64)"),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name)
                             if (!std::isalnum(
                                     static_cast<unsigned char>(c)))
                               c = '_';
                           return name;
                         });

TEST(Datapath, UncodedPassesErrorsThrough) {
  const auto code = ecc::make_code("w/o ECC");
  const TransmitterDatapath tx(code, 64);
  const ReceiverDatapath rx(code, 64);
  math::Xoshiro256 rng(0xBAD);
  const ecc::BitVec word = random_word(64, rng);
  auto wire = tx.transmit(word);
  wire[10] = !wire[10];
  const ReceiveResult result = rx.receive(wire);
  EXPECT_EQ(result.word.distance(word), 1u);
  EXPECT_EQ(result.corrected_blocks, 0u);
}

TEST(Datapath, ReceiverRejectsWrongFrameSize) {
  const ReceiverDatapath rx(ecc::make_code("H(7,4)"), 64);
  EXPECT_THROW((void)rx.receive(std::vector<bool>(64)),
               std::invalid_argument);
}

TEST(Datapath, TransmitterRejectsWrongWordSize) {
  const TransmitterDatapath tx(ecc::make_code("H(7,4)"), 64);
  EXPECT_THROW((void)tx.transmit(ecc::BitVec(63)), std::invalid_argument);
}

TEST(Datapath, WorksWithNonDefaultBusWidths) {
  // 32-bit IP bus with H(7,4) does not divide (32/4 = 8 blocks: fine);
  // with H(71,64) it does not (64 > 32).
  EXPECT_NO_THROW(TransmitterDatapath(ecc::make_code("H(7,4)"), 32));
  EXPECT_THROW(TransmitterDatapath(ecc::make_code("H(71,64)"), 32),
               std::invalid_argument);
  const auto code = ecc::make_code("H(7,4)");
  const TransmitterDatapath tx(code, 32);
  const ReceiverDatapath rx(code, 32);
  math::Xoshiro256 rng(0x32);
  const ecc::BitVec word = random_word(32, rng);
  EXPECT_EQ(rx.receive(tx.transmit(word)).word, word);
}

}  // namespace
}  // namespace photecc::interface
