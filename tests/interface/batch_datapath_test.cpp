// Batch datapath contract: transmit_batch / receive_batch are
// bit-identical, lane for lane, to the scalar transmit / receive —
// including the aggregated detected/corrected block counters.
#include <cctype>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "photecc/codec/batch_mc.hpp"
#include "photecc/codec/bitslab.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/interface/datapath.hpp"
#include "photecc/math/rng.hpp"

namespace photecc::interface {
namespace {

ecc::BitVec random_word(std::size_t size, math::Xoshiro256& rng) {
  ecc::BitVec v(size);
  for (std::size_t i = 0; i < size; ++i) v.set(i, rng.bernoulli(0.5));
  return v;
}

/// Code plus an IP bus width its message length divides.
struct DatapathCase {
  const char* code;
  std::size_t n_data;
};

class BatchDatapath : public ::testing::TestWithParam<DatapathCase> {};

TEST_P(BatchDatapath, TransmitBatchMatchesScalarWireOrder) {
  const auto [name, n_data] = GetParam();
  const auto code = ecc::make_code(name);
  const TransmitterDatapath tx(code, n_data);
  math::Xoshiro256 rng(0x7A);
  std::vector<ecc::BitVec> words;
  for (std::size_t l = 0; l < 64; ++l)
    words.push_back(random_word(n_data, rng));
  const codec::BitSlab wire =
      tx.transmit_batch(codec::BitSlab::transpose_in(words));
  ASSERT_EQ(wire.bits(), tx.frame_bits());
  for (std::size_t l = 0; l < words.size(); ++l) {
    const std::vector<bool> scalar = tx.transmit(words[l]);
    const ecc::BitVec lane = wire.transpose_out(l);
    ASSERT_EQ(scalar.size(), lane.size());
    for (std::size_t i = 0; i < scalar.size(); ++i)
      ASSERT_EQ(lane.get(i), scalar[i])
          << name << " lane " << l << " wire bit " << i;
  }
}

TEST_P(BatchDatapath, ReceiveBatchMatchesScalarLaneByLane) {
  const auto [name, n_data] = GetParam();
  const auto code = ecc::make_code(name);
  const TransmitterDatapath tx(code, n_data);
  const ReceiverDatapath rx(code, n_data);
  math::Xoshiro256 rng(0x7B);
  std::vector<ecc::BitVec> words;
  for (std::size_t l = 0; l < 48; ++l)
    words.push_back(random_word(n_data, rng));
  codec::BitSlab wire = tx.transmit_batch(codec::BitSlab::transpose_in(words));
  codec::inject_errors(wire, 0.01, rng);
  const BatchReceiveResult batch = rx.receive_batch(wire);
  ASSERT_EQ(batch.words.bits(), n_data);
  std::uint64_t detected = 0;
  std::uint64_t corrected = 0;
  for (std::size_t l = 0; l < words.size(); ++l) {
    const ecc::BitVec lane_wire = wire.transpose_out(l);
    std::vector<bool> scalar_wire(lane_wire.size());
    for (std::size_t i = 0; i < lane_wire.size(); ++i)
      scalar_wire[i] = lane_wire.get(i);
    const ReceiveResult scalar = rx.receive(scalar_wire);
    EXPECT_EQ(batch.words.transpose_out(l), scalar.word)
        << name << " lane " << l;
    detected += scalar.detected_blocks;
    corrected += scalar.corrected_blocks;
  }
  EXPECT_EQ(batch.detected_blocks, detected) << name;
  EXPECT_EQ(batch.corrected_blocks, corrected) << name;
}

TEST_P(BatchDatapath, CleanRoundTripRecoversEveryLane) {
  const auto [name, n_data] = GetParam();
  const auto code = ecc::make_code(name);
  const TransmitterDatapath tx(code, n_data);
  const ReceiverDatapath rx(code, n_data);
  math::Xoshiro256 rng(0x7C);
  const codec::BitSlab words = codec::random_message_slab(n_data, 64, rng);
  const BatchReceiveResult result = rx.receive_batch(tx.transmit_batch(words));
  EXPECT_EQ(result.words, words) << name;
  EXPECT_EQ(result.detected_blocks, 0u);
  EXPECT_EQ(result.corrected_blocks, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, BatchDatapath,
    ::testing::Values(DatapathCase{"w/o ECC", 64}, DatapathCase{"H(7,4)", 64},
                      DatapathCase{"H(71,64)", 64},
                      DatapathCase{"H(12,8)", 64},
                      DatapathCase{"eH(8,4)", 64},
                      DatapathCase{"REP(3,1)", 16},
                      DatapathCase{"BCH(15,7,2)", 56}),
    [](const auto& info) {
      std::string tag = std::string(info.param.code) + "_n" +
                        std::to_string(info.param.n_data);
      for (char& c : tag)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return tag;
    });

}  // namespace
}  // namespace photecc::interface
