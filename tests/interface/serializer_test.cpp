#include "photecc/interface/serializer.hpp"

#include <gtest/gtest.h>

#include "photecc/math/rng.hpp"

namespace photecc::interface {
namespace {

TEST(Serializer, ShiftsBitZeroFirst) {
  Serializer ser(4);
  ser.load(ecc::BitVec::from_string("1011"));
  EXPECT_EQ(ser.shift_out(), true);
  EXPECT_EQ(ser.shift_out(), false);
  EXPECT_EQ(ser.shift_out(), true);
  EXPECT_EQ(ser.shift_out(), true);
  EXPECT_EQ(ser.shift_out(), std::nullopt);
  EXPECT_TRUE(ser.empty());
}

TEST(Serializer, LoadDiscardsPendingBits) {
  Serializer ser(3);
  ser.load(ecc::BitVec::from_string("111"));
  (void)ser.shift_out();
  ser.load(ecc::BitVec::from_string("000"));
  EXPECT_EQ(ser.shift_out(), false);
  EXPECT_EQ(ser.shift_out(), false);
  EXPECT_EQ(ser.shift_out(), false);
  EXPECT_TRUE(ser.empty());
}

TEST(Serializer, Validation) {
  EXPECT_THROW(Serializer(0), std::invalid_argument);
  Serializer ser(4);
  EXPECT_THROW(ser.load(ecc::BitVec(3)), std::invalid_argument);
}

TEST(Deserializer, EmitsFrameWhenFull) {
  Deserializer des(3);
  EXPECT_EQ(des.shift_in(true), std::nullopt);
  EXPECT_EQ(des.fill(), 1u);
  EXPECT_EQ(des.shift_in(false), std::nullopt);
  const auto frame = des.shift_in(true);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->to_string(), "101");
  EXPECT_EQ(des.fill(), 0u);  // reset for the next frame
}

TEST(Deserializer, Validation) {
  EXPECT_THROW(Deserializer(0), std::invalid_argument);
  EXPECT_THROW(Deserializer::deserialize({true, false, true}, 2),
               std::invalid_argument);
  EXPECT_THROW(Deserializer::deserialize({true}, 0),
               std::invalid_argument);
}

class SerdesRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SerdesRoundTrip, WireRoundTripIsBitExact) {
  const std::size_t width = GetParam();
  math::Xoshiro256 rng(width * 7919);
  for (int trial = 0; trial < 20; ++trial) {
    ecc::BitVec frame(width);
    for (std::size_t i = 0; i < width; ++i)
      frame.set(i, rng.bernoulli(0.5));
    const std::vector<bool> wire = Serializer::serialize(frame);
    ASSERT_EQ(wire.size(), width);
    const auto frames = Deserializer::deserialize(wire, width);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0], frame);
  }
}

// The paper's three frame sizes (64 / 71 / 112) plus corner widths.
INSTANTIATE_TEST_SUITE_P(Widths, SerdesRoundTrip,
                         ::testing::Values(1, 2, 7, 64, 71, 112, 127, 200));

TEST(Serdes, MultiFrameStreamKeepsFrameBoundaries) {
  math::Xoshiro256 rng(0x515);
  const std::size_t width = 7;
  std::vector<ecc::BitVec> sent;
  std::vector<bool> wire;
  for (int f = 0; f < 5; ++f) {
    ecc::BitVec frame(width);
    for (std::size_t i = 0; i < width; ++i)
      frame.set(i, rng.bernoulli(0.5));
    sent.push_back(frame);
    const auto bits = Serializer::serialize(frame);
    wire.insert(wire.end(), bits.begin(), bits.end());
  }
  const auto received = Deserializer::deserialize(wire, width);
  ASSERT_EQ(received.size(), sent.size());
  for (std::size_t f = 0; f < sent.size(); ++f)
    EXPECT_EQ(received[f], sent[f]) << "frame " << f;
}

}  // namespace
}  // namespace photecc::interface
