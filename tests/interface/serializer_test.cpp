#include "photecc/interface/serializer.hpp"

#include <gtest/gtest.h>

#include "photecc/math/rng.hpp"

namespace photecc::interface {
namespace {

TEST(Serializer, ShiftsBitZeroFirst) {
  Serializer ser(4);
  ser.load(ecc::BitVec::from_string("1011"));
  EXPECT_EQ(ser.shift_out(), true);
  EXPECT_EQ(ser.shift_out(), false);
  EXPECT_EQ(ser.shift_out(), true);
  EXPECT_EQ(ser.shift_out(), true);
  EXPECT_EQ(ser.shift_out(), std::nullopt);
  EXPECT_TRUE(ser.empty());
}

TEST(Serializer, LoadDiscardsPendingBits) {
  Serializer ser(3);
  ser.load(ecc::BitVec::from_string("111"));
  (void)ser.shift_out();
  ser.load(ecc::BitVec::from_string("000"));
  EXPECT_EQ(ser.shift_out(), false);
  EXPECT_EQ(ser.shift_out(), false);
  EXPECT_EQ(ser.shift_out(), false);
  EXPECT_TRUE(ser.empty());
}

TEST(Serializer, Validation) {
  EXPECT_THROW(Serializer(0), std::invalid_argument);
  Serializer ser(4);
  EXPECT_THROW(ser.load(ecc::BitVec(3)), std::invalid_argument);
}

TEST(Deserializer, EmitsFrameWhenFull) {
  Deserializer des(3);
  EXPECT_EQ(des.shift_in(true), std::nullopt);
  EXPECT_EQ(des.fill(), 1u);
  EXPECT_EQ(des.shift_in(false), std::nullopt);
  const auto frame = des.shift_in(true);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->to_string(), "101");
  EXPECT_EQ(des.fill(), 0u);  // reset for the next frame
}

TEST(Deserializer, Validation) {
  EXPECT_THROW(Deserializer(0), std::invalid_argument);
  EXPECT_THROW(Deserializer::deserialize({true, false, true}, 2),
               std::invalid_argument);
  EXPECT_THROW(Deserializer::deserialize({true}, 0),
               std::invalid_argument);
}

class SerdesRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SerdesRoundTrip, WireRoundTripIsBitExact) {
  const std::size_t width = GetParam();
  math::Xoshiro256 rng(width * 7919);
  for (int trial = 0; trial < 20; ++trial) {
    ecc::BitVec frame(width);
    for (std::size_t i = 0; i < width; ++i)
      frame.set(i, rng.bernoulli(0.5));
    const std::vector<bool> wire = Serializer::serialize(frame);
    ASSERT_EQ(wire.size(), width);
    const auto frames = Deserializer::deserialize(wire, width);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0], frame);
  }
}

// The paper's three frame sizes (64 / 71 / 112) plus corner widths.
INSTANTIATE_TEST_SUITE_P(Widths, SerdesRoundTrip,
                         ::testing::Values(1, 2, 7, 64, 71, 112, 127, 200));

TEST(Serdes, BitwiseRoundTripAcrossFrameBoundary) {
  // Drive the stateful shift_out/shift_in pair bit by bit across
  // several back-to-back frames: the deserializer must emit each frame
  // exactly when its last bit lands, and be empty again right after.
  const std::size_t width = 7;
  Serializer ser(width);
  Deserializer des(width);
  math::Xoshiro256 rng(0xF00D);
  for (int f = 0; f < 4; ++f) {
    ecc::BitVec frame(width);
    for (std::size_t i = 0; i < width; ++i)
      frame.set(i, rng.bernoulli(0.5));
    ser.load(frame);
    for (std::size_t i = 0; i < width; ++i) {
      const auto bit = ser.shift_out();
      ASSERT_TRUE(bit.has_value());
      const auto emitted = des.shift_in(*bit);
      if (i + 1 < width) {
        EXPECT_FALSE(emitted.has_value()) << "frame " << f << " bit " << i;
        EXPECT_EQ(des.fill(), i + 1);
      } else {
        ASSERT_TRUE(emitted.has_value()) << "frame " << f;
        EXPECT_EQ(*emitted, frame);
        EXPECT_EQ(des.fill(), 0u);
      }
    }
    EXPECT_TRUE(ser.empty());
  }
}

TEST(Serdes, ReloadAtExactFrameBoundaryDoesNotLeakBits) {
  // Loading the next frame the cycle after the previous one fully
  // drained must not duplicate or drop wire bits.
  const std::size_t width = 5;
  Serializer ser(width);
  Deserializer des(width);
  const auto a = ecc::BitVec::from_string("10110");
  const auto b = ecc::BitVec::from_string("01001");
  std::vector<ecc::BitVec> received;
  for (const auto& frame : {a, b}) {
    ser.load(frame);
    while (auto bit = ser.shift_out()) {
      if (auto emitted = des.shift_in(*bit))
        received.push_back(std::move(*emitted));
    }
  }
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0], a);
  EXPECT_EQ(received[1], b);
}

TEST(Serdes, MultiFrameStreamKeepsFrameBoundaries) {
  math::Xoshiro256 rng(0x515);
  const std::size_t width = 7;
  std::vector<ecc::BitVec> sent;
  std::vector<bool> wire;
  for (int f = 0; f < 5; ++f) {
    ecc::BitVec frame(width);
    for (std::size_t i = 0; i < width; ++i)
      frame.set(i, rng.bernoulli(0.5));
    sent.push_back(frame);
    const auto bits = Serializer::serialize(frame);
    wire.insert(wire.end(), bits.begin(), bits.end());
  }
  const auto received = Deserializer::deserialize(wire, width);
  ASSERT_EQ(received.size(), sent.size());
  for (std::size_t f = 0; f < sent.size(); ++f)
    EXPECT_EQ(received[f], sent[f]) << "frame " << f;
}

}  // namespace
}  // namespace photecc::interface
