#include "photecc/math/table.hpp"

#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

namespace photecc::math {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22222"});
  std::ostringstream out;
  table.render(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| alpha | 1     |"), std::string::npos) << text;
  EXPECT_NE(text.find("| b     | 22222 |"), std::string::npos) << text;
}

TEST(TextTable, RejectsEmptyHeaderAndArityMismatch) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), std::invalid_argument);
}

TEST(TextTable, SeparatorRendersAsRule) {
  TextTable table({"x"});
  table.add_row({"1"});
  table.add_separator();
  table.add_row({"2"});
  std::ostringstream out;
  table.render(out);
  // header rule + top + separator + bottom = 4 rules
  std::size_t rules = 0;
  std::istringstream in(out.str());
  std::string line;
  while (std::getline(in, line))
    if (!line.empty() && line[0] == '+') ++rules;
  EXPECT_EQ(rules, 4u);
}

TEST(TextTable, CsvEscapesCommas) {
  TextTable table({"a", "b"});
  table.add_row({"x,y", "2"});
  std::ostringstream out;
  table.render_csv(out);
  EXPECT_EQ(out.str(), "a,b\n\"x,y\",2\n");
}

TEST(TextTable, CsvSkipsSeparators) {
  TextTable table({"a"});
  table.add_row({"1"});
  table.add_separator();
  table.add_row({"2"});
  std::ostringstream out;
  table.render_csv(out);
  EXPECT_EQ(out.str(), "a\n1\n2\n");
}

TEST(Format, FixedAndScientific) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-1.0, 0), "-1");
  EXPECT_EQ(format_sci(1.3e-11, 2), "1.30e-11");
}

TEST(Format, PowerPicksSiPrefix) {
  EXPECT_EQ(format_power(14.35e-3), "14.35 mW");
  EXPECT_EQ(format_power(655e-6, 1), "655.0 uW");
  EXPECT_EQ(format_power(2.5), "2.50 W");
  EXPECT_EQ(format_power(3.2e-9, 1), "3.2 nW");
  EXPECT_EQ(format_power(0.0), "0 W");
}

}  // namespace
}  // namespace photecc::math
