#include "photecc/math/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace photecc::math {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 4u, 7u}) {
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    parallel_for(kN, threads, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kN; ++i)
      EXPECT_EQ(hits[i].load(), 1) << "i=" << i << " threads=" << threads;
  }
}

TEST(ParallelFor, SlotWritesAreIndependentOfThreadCount) {
  constexpr std::size_t kN = 257;
  const auto run = [](std::size_t threads) {
    std::vector<double> out(kN);
    parallel_for(kN, threads, [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5 + 1.0;
    });
    return out;
  };
  const auto sequential = run(1);
  EXPECT_EQ(sequential, run(3));
  EXPECT_EQ(sequential, run(8));
}

TEST(ParallelFor, EmptyRangeIsANoop) {
  bool called = false;
  parallel_for(0, 4, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, MoreThreadsThanWorkIsFine) {
  std::vector<int> out(3, 0);
  parallel_for(3, 16, [&](std::size_t i) { out[i] = 1; });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 3);
}

TEST(ParallelFor, ZeroThreadsMeansHardwareDefault) {
  std::vector<int> out(10, 0);
  parallel_for(10, 0, [&](std::size_t i) { out[i] = 1; });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 10);
  EXPECT_GE(default_thread_count(), 1u);
}

TEST(ParallelFor, ExceptionPropagatesToCaller) {
  for (const std::size_t threads : {1u, 4u}) {
    EXPECT_THROW(
        parallel_for(100, threads,
                     [](std::size_t i) {
                       if (i == 42) throw std::runtime_error("cell 42");
                     }),
        std::runtime_error)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace photecc::math
