#include "photecc/math/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace photecc::math {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 4u, 7u}) {
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    parallel_for(kN, threads, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kN; ++i)
      EXPECT_EQ(hits[i].load(), 1) << "i=" << i << " threads=" << threads;
  }
}

TEST(ParallelFor, SlotWritesAreIndependentOfThreadCount) {
  constexpr std::size_t kN = 257;
  const auto run = [](std::size_t threads) {
    std::vector<double> out(kN);
    parallel_for(kN, threads, [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5 + 1.0;
    });
    return out;
  };
  const auto sequential = run(1);
  EXPECT_EQ(sequential, run(3));
  EXPECT_EQ(sequential, run(8));
}

TEST(ParallelFor, EmptyRangeIsANoop) {
  bool called = false;
  parallel_for(0, 4, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, MoreThreadsThanWorkIsFine) {
  std::vector<int> out(3, 0);
  parallel_for(3, 16, [&](std::size_t i) { out[i] = 1; });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 3);
}

TEST(ParallelFor, ZeroThreadsMeansHardwareDefault) {
  std::vector<int> out(10, 0);
  parallel_for(10, 0, [&](std::size_t i) { out[i] = 1; });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 10);
  EXPECT_GE(default_thread_count(), 1u);
}

TEST(ParallelFor, ExceptionPropagatesToCaller) {
  for (const std::size_t threads : {1u, 4u}) {
    EXPECT_THROW(
        parallel_for(100, threads,
                     [](std::size_t i) {
                       if (i == 42) throw std::runtime_error("cell 42");
                     }),
        std::runtime_error)
        << "threads=" << threads;
  }
}

TEST(ParallelFor, FirstExceptionIsRethrownWithItsMessage) {
  // Several workers throw; exactly one exception must surface, carrying
  // the message of whichever cell threw first (not a mangled mixture).
  for (const std::size_t threads : {1u, 4u}) {
    std::string caught;
    try {
      parallel_for(64, threads, [](std::size_t i) {
        if (i % 8 == 0)
          throw std::runtime_error("cell " + std::to_string(i));
      });
      FAIL() << "no exception at threads=" << threads;
    } catch (const std::runtime_error& e) {
      caught = e.what();
    }
    EXPECT_EQ(caught.rfind("cell ", 0), 0u) << caught;
  }
}

TEST(ParallelFor, WorkersJoinAfterThrowAndPoolIsReusable) {
  // After a worker throws, the call must join every worker (no leaked
  // threads touching dead stack frames) and abandon remaining cells;
  // subsequent parallel_for calls on the same thread must still work.
  std::atomic<int> started{0}, finished{0};
  try {
    parallel_for(1000, 4, [&](std::size_t i) {
      ++started;
      if (i == 3) throw std::logic_error("abort sweep");
      ++finished;
    });
    FAIL() << "no exception";
  } catch (const std::logic_error&) {
  }
  // The counters are stable after the call returns: if a worker were
  // still running it could race these reads (TSan would flag it).
  const int started_now = started.load();
  const int finished_now = finished.load();
  EXPECT_EQ(started_now, started.load());
  EXPECT_LE(finished_now, started_now);
  EXPECT_LT(started_now, 1000);  // remaining indices were abandoned

  // The primitive is stateless across calls: a fresh run completes.
  std::vector<int> out(50, 0);
  parallel_for(50, 4, [&](std::size_t i) { out[i] = 1; });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 50);
}

TEST(ParallelFor, NonStandardExceptionDoesNotDeadlock) {
  for (const std::size_t threads : {1u, 4u}) {
    EXPECT_THROW(parallel_for(16, threads,
                              [](std::size_t i) {
                                if (i == 0) throw 42;  // not std::exception
                              }),
                 int)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace photecc::math
