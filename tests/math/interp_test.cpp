#include "photecc/math/interp.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace photecc::math {
namespace {

TEST(PiecewiseLinear, InterpolatesBetweenKnots) {
  const PiecewiseLinear curve({0.0, 1.0, 2.0}, {0.0, 10.0, 40.0});
  EXPECT_DOUBLE_EQ(curve.evaluate(0.5), 5.0);
  EXPECT_DOUBLE_EQ(curve.evaluate(1.5), 25.0);
  EXPECT_DOUBLE_EQ(curve.evaluate(1.0), 10.0);
}

TEST(PiecewiseLinear, ExtrapolatesLinearly) {
  const PiecewiseLinear curve({0.0, 1.0}, {0.0, 2.0});
  EXPECT_DOUBLE_EQ(curve.evaluate(2.0), 4.0);
  EXPECT_DOUBLE_EQ(curve.evaluate(-1.0), -2.0);
}

TEST(PiecewiseLinear, ClampedEvaluationPinsEnds) {
  const PiecewiseLinear curve({0.0, 1.0}, {3.0, 5.0});
  EXPECT_DOUBLE_EQ(curve.evaluate_clamped(-10.0), 3.0);
  EXPECT_DOUBLE_EQ(curve.evaluate_clamped(10.0), 5.0);
  EXPECT_DOUBLE_EQ(curve.evaluate_clamped(0.5), 4.0);
}

TEST(PiecewiseLinear, RejectsMalformedInput) {
  EXPECT_THROW(PiecewiseLinear({0.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(PiecewiseLinear({0.0, 1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(PiecewiseLinear({1.0, 0.0}, {0.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(PiecewiseLinear({0.0, 0.0}, {0.0, 1.0}),
               std::invalid_argument);
}

TEST(PiecewiseLinear, InverseRoundTripsOnMonotoneCurve) {
  const PiecewiseLinear curve({0.0, 1.0, 3.0}, {1.0, 2.0, 10.0});
  for (const double y : {1.0, 1.5, 2.0, 6.0, 10.0}) {
    EXPECT_NEAR(curve.evaluate(curve.inverse(y)), y, 1e-12) << "y=" << y;
  }
}

TEST(PiecewiseLinear, InverseWorksOnDecreasingCurve) {
  const PiecewiseLinear curve({0.0, 1.0, 2.0}, {10.0, 5.0, 0.0});
  EXPECT_NEAR(curve.inverse(7.5), 0.5, 1e-12);
  EXPECT_NEAR(curve.inverse(2.5), 1.5, 1e-12);
}

TEST(PiecewiseLinear, InverseRejectsNonMonotone) {
  const PiecewiseLinear curve({0.0, 1.0, 2.0}, {0.0, 5.0, 1.0});
  EXPECT_THROW((void)curve.inverse(2.0), std::logic_error);
}

TEST(PiecewiseLinear, MonotonicityDetection) {
  EXPECT_TRUE(PiecewiseLinear({0.0, 1.0}, {0.0, 1.0})
                  .is_strictly_monotone());
  EXPECT_TRUE(PiecewiseLinear({0.0, 1.0}, {1.0, 0.0})
                  .is_strictly_monotone());
  EXPECT_FALSE(PiecewiseLinear({0.0, 1.0, 2.0}, {0.0, 1.0, 1.0})
                   .is_strictly_monotone());
}

TEST(Linspace, CoversRangeInclusive) {
  const auto v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
}

TEST(Linspace, HandlesDegenerateCounts) {
  EXPECT_TRUE(linspace(0.0, 1.0, 0).empty());
  const auto one = linspace(3.0, 9.0, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 3.0);
}

TEST(Logspace, ProducesDecades) {
  const auto v = logspace(1e-12, 1e-3, 10);
  ASSERT_EQ(v.size(), 10u);
  EXPECT_DOUBLE_EQ(v.front(), 1e-12);
  EXPECT_DOUBLE_EQ(v.back(), 1e-3);
  EXPECT_NEAR(v[1] / v[0], 10.0, 1e-9);
}

TEST(Logspace, RejectsNonPositiveBounds) {
  EXPECT_THROW(logspace(0.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(logspace(-1.0, 1.0, 3), std::invalid_argument);
}

}  // namespace
}  // namespace photecc::math
