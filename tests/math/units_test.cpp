#include "photecc/math/units.hpp"

#include <gtest/gtest.h>

namespace photecc::math {
namespace {

TEST(Units, ScaleHelpers) {
  EXPECT_DOUBLE_EQ(milli_watts(14.35), 0.01435);
  EXPECT_DOUBLE_EQ(micro_watts(700.0), 700e-6);
  EXPECT_DOUBLE_EQ(centi_metres(6.0), 0.06);
  EXPECT_DOUBLE_EQ(nano_metres(1520.25), 1520.25e-9);
  EXPECT_DOUBLE_EQ(giga_hertz(10.0), 1e10);
  EXPECT_DOUBLE_EQ(micro_amps(4.0), 4e-6);
}

TEST(Units, ReportingHelpersInvertScaleHelpers) {
  EXPECT_DOUBLE_EQ(as_milli(milli_watts(14.35)), 14.35);
  EXPECT_DOUBLE_EQ(as_micro(micro_watts(655.0)), 655.0);
  EXPECT_NEAR(as_pico(3.92e-12), 3.92, 1e-12);
}

TEST(Decibels, RoundTrip) {
  for (const double db : {-30.0, -6.9, -1.644, 0.0, 3.0, 20.0}) {
    EXPECT_NEAR(to_db(from_db(db)), db, 1e-12) << "db=" << db;
  }
}

TEST(Decibels, KnownValues) {
  EXPECT_NEAR(to_db(2.0), 3.0103, 1e-4);
  EXPECT_NEAR(from_db(10.0), 10.0, 1e-12);
  EXPECT_NEAR(from_db(6.9), 4.898, 1e-3);  // the paper's ER
}

TEST(Decibels, LossTransmissionConversions) {
  EXPECT_NEAR(loss_db_to_transmission(3.0103), 0.5, 1e-4);
  EXPECT_NEAR(transmission_to_loss_db(0.5), 3.0103, 1e-4);
  EXPECT_DOUBLE_EQ(loss_db_to_transmission(0.0), 1.0);
  // Waveguide of the paper: 0.274 dB/cm x 6 cm = 1.644 dB.
  EXPECT_NEAR(loss_db_to_transmission(1.644), 0.6849, 1e-4);
}

TEST(Constants, PhysicalValues) {
  EXPECT_NEAR(speed_of_light, 2.99792458e8, 1.0);
  EXPECT_NEAR(elementary_charge, 1.602e-19, 1e-21);
  EXPECT_NEAR(boltzmann, 1.380649e-23, 1e-28);
}

}  // namespace
}  // namespace photecc::math
