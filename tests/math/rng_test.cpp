#include "photecc/math/rng.hpp"

#include <set>

#include <gtest/gtest.h>

namespace photecc::math {
namespace {

TEST(Xoshiro256, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256, Uniform01StaysInHalfOpenInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, Uniform01MeanIsCentred) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, BernoulliMatchesProbability) {
  Xoshiro256 rng(13);
  const double p = 0.3;
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(p)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01);
}

TEST(Xoshiro256, NormalHasUnitMoments) {
  Xoshiro256 rng(17);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Xoshiro256, BoundedStaysInRangeAndHitsAllValues) {
  Xoshiro256 rng(19);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.bounded(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro256, BoundedZeroReturnsZero) {
  Xoshiro256 rng(23);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Xoshiro256, JumpCreatesNonOverlappingStream) {
  Xoshiro256 a(29);
  Xoshiro256 b(29);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Splitmix64, AdvancesState) {
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  const std::uint64_t second = splitmix64(s);
  EXPECT_NE(first, second);
}

TEST(DeriveSeed, IsDeterministicAndPure) {
  EXPECT_EQ(derive_seed(42, 7), derive_seed(42, 7));
  // Stateless: deriving one stream does not disturb another.
  const std::uint64_t lone = derive_seed(42, 3);
  (void)derive_seed(42, 0);
  (void)derive_seed(42, 1);
  EXPECT_EQ(derive_seed(42, 3), lone);
}

TEST(DeriveSeed, DistinctStreamsAndBasesDoNotCollide) {
  // The collision pattern the mixer exists to break: base b stream k
  // must differ from base b+1 stream k-1 (seed+k handed out
  // arithmetically would make those identical).
  for (std::uint64_t base : {0ull, 42ull, 0x9e3779b97f4a7c15ull}) {
    for (std::uint64_t k = 1; k < 50; ++k) {
      EXPECT_NE(derive_seed(base, k), derive_seed(base + 1, k - 1))
          << "base=" << base << " k=" << k;
      EXPECT_NE(derive_seed(base, k), derive_seed(base, k - 1));
    }
  }
}

TEST(DeriveSeed, DerivedSeedsSpawnDecorrelatedGenerators) {
  Xoshiro256 a(derive_seed(1234, 0));
  Xoshiro256 b(derive_seed(1234, 1));
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace photecc::math
