#include "photecc/math/modulation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "photecc/math/special.hpp"

namespace photecc::math {
namespace {

TEST(Modulation, LevelAndBitAccessors) {
  EXPECT_EQ(levels(Modulation::kOok), 2u);
  EXPECT_EQ(levels(Modulation::kPam4), 4u);
  EXPECT_EQ(levels(Modulation::kPam8), 8u);
  EXPECT_EQ(bits_per_symbol(Modulation::kOok), 1u);
  EXPECT_EQ(bits_per_symbol(Modulation::kPam4), 2u);
  EXPECT_EQ(bits_per_symbol(Modulation::kPam8), 3u);
}

TEST(Modulation, StringRoundTrip) {
  for (const Modulation m : all_modulations()) {
    const auto parsed = modulation_from_string(to_string(m));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(modulation_from_string("qam16").has_value());
  EXPECT_FALSE(modulation_from_string("PAM4").has_value());
  EXPECT_FALSE(modulation_from_string("").has_value());
}

TEST(Modulation, OokReducesToEq3) {
  for (const double snr : {0.5, 4.0, 10.0, 36.0}) {
    EXPECT_DOUBLE_EQ(pam_ber_from_snr(snr, 2), raw_ber_from_snr(snr));
    EXPECT_DOUBLE_EQ(ber_from_snr(Modulation::kOok, snr),
                     raw_ber_from_snr(snr));
  }
  for (const double ber : {1e-3, 1e-6, 1e-9, 1e-12}) {
    EXPECT_DOUBLE_EQ(snr_from_pam_ber(ber, 2), snr_from_raw_ber(ber));
  }
}

TEST(Modulation, MaxBerAtZeroSnr) {
  EXPECT_DOUBLE_EQ(max_pam_ber(2), 0.5);
  EXPECT_DOUBLE_EQ(max_pam_ber(4), 3.0 / (4.0 * 2.0));
  EXPECT_DOUBLE_EQ(max_pam_ber(8), 7.0 / (8.0 * 3.0));
  for (const std::size_t m : {std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    EXPECT_DOUBLE_EQ(pam_ber_from_snr(0.0, m), max_pam_ber(m));
  }
}

TEST(Modulation, DenserConstellationsErrMoreAtEqualSnr) {
  for (const double snr : {1.0, 9.0, 25.0}) {
    EXPECT_LT(pam_ber_from_snr(snr, 2), pam_ber_from_snr(snr, 4));
    EXPECT_LT(pam_ber_from_snr(snr, 4), pam_ber_from_snr(snr, 8));
  }
}

TEST(Modulation, Pam4NeedsNineTimesTheOokSnrPerBoundary) {
  // Same per-boundary erfc argument <=> 9x the full-eye SNR; the
  // symbol-rate prefactors differ so compare through the SER mapping.
  const double snr_ook = 16.0;
  EXPECT_NEAR(pam_ser_from_snr(9.0 * snr_ook, 4) /
                  pam_ser_from_snr(snr_ook, 2),
              2.0 * (3.0 / 4.0) / (2.0 * 0.5), 1e-9);
}

TEST(Modulation, InverseRoundTripsAcrossFormats) {
  for (const std::size_t m : {std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    for (const double ber : {1e-2, 1e-5, 1e-9, 1e-12, 1e-15}) {
      const double snr = snr_from_pam_ber(ber, m);
      EXPECT_NEAR(pam_ber_from_snr(snr, m) / ber, 1.0, 1e-10)
          << "levels=" << m << " ber=" << ber;
    }
  }
}

TEST(Modulation, GrayPam4RequiresMoreSnrThanOokAtEqualBer) {
  for (const double ber : {1e-6, 1e-9, 1e-12}) {
    const double ook = snr_from_pam_ber(ber, 2);
    const double pam4 = snr_from_pam_ber(ber, 4);
    // Slightly below 9x: the Gray BER prefactor (M-1)/(M log2 M) gives
    // PAM4 a small statistical discount per boundary.
    EXPECT_GT(pam4, 8.0 * ook);
    EXPECT_LT(pam4, 9.0 * ook);
  }
}

TEST(Modulation, SnrFromBerClampedReturnsZeroAboveMax) {
  EXPECT_DOUBLE_EQ(snr_from_ber_clamped(Modulation::kPam4, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(
      snr_from_ber_clamped(Modulation::kPam4, max_pam_ber(4)), 0.0);
  EXPECT_GT(snr_from_ber_clamped(Modulation::kPam4, 1e-9), 0.0);
  EXPECT_DOUBLE_EQ(snr_from_ber_clamped(Modulation::kOok, 1e-9),
                   snr_from_raw_ber(1e-9));
}

TEST(Modulation, PamBitsPerSymbolValidatesAndCounts) {
  EXPECT_EQ(pam_bits_per_symbol(2), 1u);
  EXPECT_EQ(pam_bits_per_symbol(4), 2u);
  EXPECT_EQ(pam_bits_per_symbol(8), 3u);
  EXPECT_EQ(pam_bits_per_symbol(16), 4u);
  EXPECT_THROW((void)pam_bits_per_symbol(0), std::invalid_argument);
  EXPECT_THROW((void)pam_bits_per_symbol(1), std::invalid_argument);
  EXPECT_THROW((void)pam_bits_per_symbol(6), std::invalid_argument);
}

TEST(Modulation, DomainErrors) {
  EXPECT_THROW((void)pam_ber_from_snr(-1.0, 4), std::domain_error);
  EXPECT_THROW((void)pam_ber_from_snr(1.0, 3), std::invalid_argument);
  EXPECT_THROW((void)pam_ber_from_snr(1.0, 1), std::invalid_argument);
  EXPECT_THROW((void)snr_from_pam_ber(0.0, 4), std::domain_error);
  EXPECT_THROW((void)snr_from_pam_ber(0.4, 4), std::domain_error);
  EXPECT_THROW((void)max_pam_ber(6), std::invalid_argument);
}

}  // namespace
}  // namespace photecc::math
