#include "photecc/math/stats.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace photecc::math {
namespace {

TEST(RunningStats, ComputesMeanVarianceExtrema) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyAndSingleSample) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequentialAccumulation) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.1 * i * i - 3.0 * i;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsNoOp) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
}

TEST(WilsonInterval, ContainsTrueProportionForTypicalCase) {
  const auto ci = wilson_interval(50, 1000, 0.99);
  EXPECT_LT(ci.lower, 0.05);
  EXPECT_GT(ci.upper, 0.05);
  EXPECT_GT(ci.lower, 0.0);
  EXPECT_LT(ci.upper, 1.0);
}

TEST(WilsonInterval, ZeroSuccessesStillGivesPositiveUpperBound) {
  const auto ci = wilson_interval(0, 1000, 0.99);
  EXPECT_DOUBLE_EQ(ci.lower, 0.0);
  EXPECT_GT(ci.upper, 0.0);
  EXPECT_LT(ci.upper, 0.02);
}

TEST(WilsonInterval, AllSuccessesGivesUpperBoundOne) {
  const auto ci = wilson_interval(1000, 1000, 0.99);
  EXPECT_DOUBLE_EQ(ci.upper, 1.0);
  EXPECT_GT(ci.lower, 0.98);
}

TEST(WilsonInterval, TightensWithMoreTrials) {
  const auto narrow = wilson_interval(100, 10000, 0.99);
  const auto wide = wilson_interval(1, 100, 0.99);
  EXPECT_LT(narrow.upper - narrow.lower, wide.upper - wide.lower);
}

TEST(WilsonInterval, HigherConfidenceIsWider) {
  const auto c90 = wilson_interval(10, 1000, 0.90);
  const auto c99 = wilson_interval(10, 1000, 0.99);
  EXPECT_LT(c90.upper - c90.lower, c99.upper - c99.lower);
}

TEST(WilsonInterval, RejectsBadArguments) {
  EXPECT_THROW(wilson_interval(0, 0), std::invalid_argument);
  EXPECT_THROW(wilson_interval(5, 4), std::invalid_argument);
  EXPECT_THROW(wilson_interval(1, 10, 0.0), std::invalid_argument);
  EXPECT_THROW(wilson_interval(1, 10, 1.0), std::invalid_argument);
}

TEST(NearestRankIndex, MatchesTheClassicDefinition) {
  // rank = ceil(p * N), zero-based index = rank - 1.
  EXPECT_EQ(nearest_rank_index(20, 0.95), 18u);   // ceil(19.0)  = 19
  EXPECT_EQ(nearest_rank_index(10, 0.95), 9u);    // ceil(9.5)   = 10
  EXPECT_EQ(nearest_rank_index(89, 0.95), 84u);   // ceil(84.55) = 85
  EXPECT_EQ(nearest_rank_index(100, 0.95), 94u);  // ceil(95.0)  = 95
  EXPECT_EQ(nearest_rank_index(1, 0.95), 0u);
  EXPECT_EQ(nearest_rank_index(5, 1.0), 4u);
  EXPECT_EQ(nearest_rank_index(5, 0.01), 0u);     // clamps to rank 1
}

TEST(NearestRankIndex, RejectsBadArguments) {
  EXPECT_THROW((void)nearest_rank_index(0, 0.95), std::invalid_argument);
  EXPECT_THROW((void)nearest_rank_index(5, 0.0), std::invalid_argument);
  EXPECT_THROW((void)nearest_rank_index(5, 1.1), std::invalid_argument);
}

TEST(ProportionInterval, ContainsWorks) {
  const ProportionInterval ci{0.1, 0.3};
  EXPECT_TRUE(ci.contains(0.2));
  EXPECT_TRUE(ci.contains(0.1));
  EXPECT_FALSE(ci.contains(0.05));
  EXPECT_FALSE(ci.contains(0.35));
}

}  // namespace
}  // namespace photecc::math
