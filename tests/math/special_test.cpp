#include "photecc/math/special.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace photecc::math {
namespace {

TEST(ErfcInv, RoundTripsAtMidRangeValues) {
  for (const double y : {0.5, 0.8, 1.0, 1.2, 1.5}) {
    EXPECT_NEAR(std::erfc(erfc_inv(y)), y, 1e-14) << "y=" << y;
  }
}

TEST(ErfcInv, CenterIsZero) { EXPECT_DOUBLE_EQ(erfc_inv(1.0), 0.0); }

TEST(ErfcInv, EdgeValuesGiveInfinities) {
  EXPECT_TRUE(std::isinf(erfc_inv(0.0)));
  EXPECT_GT(erfc_inv(0.0), 0.0);
  EXPECT_TRUE(std::isinf(erfc_inv(2.0)));
  EXPECT_LT(erfc_inv(2.0), 0.0);
}

TEST(ErfcInv, ThrowsOutsideDomain) {
  EXPECT_THROW(erfc_inv(-0.1), std::domain_error);
  EXPECT_THROW(erfc_inv(2.1), std::domain_error);
}

TEST(ErfcInv, SymmetryAroundOne) {
  for (const double y : {1e-3, 0.1, 0.4, 0.9}) {
    EXPECT_NEAR(erfc_inv(y), -erfc_inv(2.0 - y), 1e-12) << "y=" << y;
  }
}

TEST(ErfInv, RoundTripsThroughErf) {
  for (const double x : {-0.99, -0.5, -0.1, 0.0, 0.1, 0.5, 0.99}) {
    EXPECT_NEAR(std::erf(erf_inv(x)), x, 1e-14) << "x=" << x;
  }
}

TEST(ErfInv, ThrowsOutsideOpenInterval) {
  EXPECT_THROW(erf_inv(-1.5), std::domain_error);
  EXPECT_THROW(erf_inv(1.5), std::domain_error);
}

// The BER model relies on tail accuracy down to ~1e-15: the round trip
// erfc(erfc_inv(y)) must hold to a tight relative tolerance.
class ErfcInvTailSweep : public ::testing::TestWithParam<double> {};

TEST_P(ErfcInvTailSweep, RelativeRoundTripInTail) {
  const double y = GetParam();
  const double z = erfc_inv(y);
  const double back = std::erfc(z);
  EXPECT_NEAR(back / y, 1.0, 1e-10) << "y=" << y << " z=" << z;
}

INSTANTIATE_TEST_SUITE_P(Tails, ErfcInvTailSweep,
                         ::testing::Values(1e-1, 1e-2, 1e-3, 1e-4, 1e-5,
                                           1e-6, 1e-7, 1e-8, 1e-9, 1e-10,
                                           1e-11, 1e-12, 1e-13, 1e-14,
                                           1e-15, 3e-16, 2e-1, 4e-1));

TEST(QFunction, MatchesKnownValues) {
  EXPECT_NEAR(q_function(0.0), 0.5, 1e-15);
  EXPECT_NEAR(q_function(1.0), 0.158655253931457, 1e-12);
  EXPECT_NEAR(q_function(3.0), 1.349898031630095e-3, 1e-12);
}

TEST(QFunction, InverseRoundTrips) {
  for (const double p : {0.4, 0.1, 1e-3, 1e-6, 1e-9, 1e-12}) {
    EXPECT_NEAR(q_function(q_inv(p)) / p, 1.0, 1e-9) << "p=" << p;
  }
}

TEST(QInv, ThrowsOutsideDomain) {
  EXPECT_THROW(q_inv(0.0), std::domain_error);
  EXPECT_THROW(q_inv(1.0), std::domain_error);
}

TEST(RawBer, MatchesPaperEquationThree) {
  // p = 1/2 erfc(sqrt(SNR)): spot values.
  EXPECT_NEAR(raw_ber_from_snr(0.0), 0.5, 1e-15);
  EXPECT_NEAR(raw_ber_from_snr(1.0), 0.5 * std::erfc(1.0), 1e-15);
  EXPECT_NEAR(raw_ber_from_snr(4.0), 0.5 * std::erfc(2.0), 1e-15);
}

TEST(RawBer, MonotoneDecreasingInSnr) {
  double previous = raw_ber_from_snr(0.0);
  for (double snr = 0.5; snr < 30.0; snr += 0.5) {
    const double ber = raw_ber_from_snr(snr);
    EXPECT_LT(ber, previous) << "snr=" << snr;
    previous = ber;
  }
}

TEST(RawBer, ThrowsOnNegativeSnr) {
  EXPECT_THROW(raw_ber_from_snr(-1.0), std::domain_error);
  EXPECT_THROW(snr_from_raw_ber(0.0), std::domain_error);
  EXPECT_THROW(snr_from_raw_ber(0.6), std::domain_error);
}

class SnrBerRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(SnrBerRoundTrip, InversionIsConsistent) {
  const double ber = GetParam();
  const double snr = snr_from_raw_ber(ber);
  EXPECT_NEAR(raw_ber_from_snr(snr) / ber, 1.0, 1e-9) << "ber=" << ber;
}

INSTANTIATE_TEST_SUITE_P(BerRange, SnrBerRoundTrip,
                         ::testing::Values(0.5, 0.3, 0.1, 1e-2, 1e-3, 1e-4,
                                           1e-6, 1e-8, 1e-9, 1e-10, 1e-11,
                                           1e-12, 1e-13, 1e-15));

TEST(SnrFromRawBer, PaperOperatingPoints) {
  // Values used throughout the evaluation (Section V-B):
  // BER 1e-11 needs SNR ~22.5 linear; 1e-12 needs ~24.7.
  EXPECT_NEAR(snr_from_raw_ber(1e-11), 22.5, 0.2);
  EXPECT_NEAR(snr_from_raw_ber(1e-12), 24.7, 0.2);
}

TEST(Log10RawBer, MatchesDirectComputationWhereRepresentable) {
  for (const double snr : {1.0, 5.0, 10.0, 20.0, 30.0}) {
    EXPECT_NEAR(log10_raw_ber_from_snr(snr),
                std::log10(raw_ber_from_snr(snr)), 1e-9)
        << "snr=" << snr;
  }
}

TEST(Log10RawBer, StaysFiniteWhereDirectUnderflows) {
  const double log_ber = log10_raw_ber_from_snr(800.0);
  EXPECT_TRUE(std::isfinite(log_ber));
  EXPECT_LT(log_ber, -300.0);
}

}  // namespace
}  // namespace photecc::math
