#include "photecc/math/roots.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace photecc::math {
namespace {

TEST(Bisect, FindsSimpleRoot) {
  const auto result = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->converged);
  EXPECT_NEAR(result->root, std::sqrt(2.0), 1e-12);
}

TEST(Bisect, ReturnsNulloptWithoutSignChange) {
  EXPECT_FALSE(bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0));
}

TEST(Bisect, AcceptsRootAtBracketEdge) {
  const auto result = bisect([](double x) { return x; }, 0.0, 1.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->root, 0.0);
}

TEST(Bisect, RejectsInvertedBracket) {
  EXPECT_FALSE(bisect([](double x) { return x; }, 1.0, -1.0));
}

TEST(Brent, FindsSimpleRoot) {
  const auto result = brent([](double x) { return x * x * x - 8.0; },
                            0.0, 5.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->converged);
  EXPECT_NEAR(result->root, 2.0, 1e-12);
}

TEST(Brent, ConvergesFasterThanBisectionOnSmoothFunction) {
  RootOptions opts;
  opts.x_tolerance = 1e-13;
  const auto f = [](double x) { return std::exp(x) - 5.0; };
  const auto brent_result = brent(f, 0.0, 4.0, opts);
  const auto bisect_result = bisect(f, 0.0, 4.0, opts);
  ASSERT_TRUE(brent_result && bisect_result);
  EXPECT_LT(brent_result->iterations, bisect_result->iterations);
  EXPECT_NEAR(brent_result->root, std::log(5.0), 1e-11);
}

TEST(Brent, HandlesSteepTransition) {
  // Near-step function: f = tanh(1000 (x - 0.3)).
  const auto result = brent(
      [](double x) { return std::tanh(1000.0 * (x - 0.3)); }, 0.0, 1.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->root, 0.3, 1e-9);
}

TEST(Newton, ConvergesQuadratically) {
  RootOptions opts;
  opts.f_tolerance = 1e-14;
  const auto result = newton([](double x) { return x * x - 2.0; },
                             [](double x) { return 2.0 * x; }, 1.0, 0.0,
                             2.0, opts);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->converged);
  EXPECT_NEAR(result->root, std::sqrt(2.0), 1e-10);
  EXPECT_LT(result->iterations, 10);
}

TEST(Newton, FallsBackToBisectionWhenStepLeavesBracket) {
  // Derivative nearly zero at the start point would throw Newton far
  // outside; the safeguarded version must still converge.
  const auto result = newton(
      [](double x) { return std::atan(x - 1.5); },
      [](double x) {
        const double u = x - 1.5;
        return 1.0 / (1.0 + u * u);
      },
      100.0, -200.0, 200.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->root, 1.5, 1e-7);
}

TEST(Newton, RejectsStartOutsideBracket) {
  EXPECT_FALSE(newton([](double x) { return x; },
                      [](double) { return 1.0; }, 5.0, 0.0, 1.0));
}

TEST(ExpandBracket, GrowsUntilSignChange) {
  const auto bracket =
      expand_bracket([](double x) { return x - 100.0; }, 0.0, 1.0);
  ASSERT_TRUE(bracket.has_value());
  EXPECT_LE(bracket->first, 100.0);
  EXPECT_GE(bracket->second, 100.0);
}

TEST(ExpandBracket, GivesUpOnConstantSign) {
  EXPECT_FALSE(expand_bracket([](double) { return 1.0; }, 0.0, 1.0, 8));
}

// --- brent_warm: the warm-start contract.  Everything that cannot use
// the warm bracket must fall back to the cold brent BIT-identically —
// same root, same iteration count, warm == false.

namespace {

double cubic(double x) { return x * x * x - 8.0; }

}  // namespace

TEST(BrentWarm, StaleGuessOutsideRangeFallsBackBitIdentically) {
  const auto cold = brent(cubic, 0.0, 5.0);
  ASSERT_TRUE(cold.has_value());
  WarmStart warm;
  warm.guess = 42.0;  // outside [0, 5]: a guess from some other regime
  warm.window = 0.5;
  const auto result = brent_warm(cubic, 0.0, 5.0, warm);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->warm);
  EXPECT_EQ(result->root, cold->root);  // bit-equal, not just near
  EXPECT_EQ(result->iterations, cold->iterations);
  EXPECT_EQ(result->residual, cold->residual);
}

TEST(BrentWarm, NonFiniteGuessFallsBackBitIdentically) {
  const auto cold = brent(cubic, 0.0, 5.0);
  ASSERT_TRUE(cold.has_value());
  WarmStart warm;
  warm.guess = std::numeric_limits<double>::quiet_NaN();
  warm.window = 0.5;
  const auto result = brent_warm(cubic, 0.0, 5.0, warm);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->warm);
  EXPECT_EQ(result->root, cold->root);
  EXPECT_EQ(result->iterations, cold->iterations);
}

TEST(BrentWarm, StaleWindowWithoutSignChangeFallsBackBitIdentically) {
  const auto cold = brent(cubic, 0.0, 5.0);
  ASSERT_TRUE(cold.has_value());
  WarmStart warm;
  warm.guess = 4.0;   // inside the range but far from the root at 2
  warm.window = 0.5;  // [3.5, 4.5]: f > 0 throughout, no bracket
  const auto result = brent_warm(cubic, 0.0, 5.0, warm);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->warm);
  EXPECT_EQ(result->root, cold->root);
  EXPECT_EQ(result->iterations, cold->iterations);
}

TEST(BrentWarm, GuessExactlyAtRootReturnsZeroIterationsWarm) {
  WarmStart warm;
  warm.guess = 2.0;  // cubic(2) == 0 exactly
  warm.window = 0.5;
  const auto result = brent_warm(cubic, 0.0, 5.0, warm);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->warm);
  EXPECT_TRUE(result->converged);
  EXPECT_EQ(result->root, 2.0);
  EXPECT_EQ(result->iterations, 0);
  EXPECT_EQ(result->residual, 0.0);
}

TEST(BrentWarm, MonotonicityViolatingGuessIsRejectedBitIdentically) {
  // A local dip: the function crosses zero near 3, but around the guess
  // at 0 it dips negative while both warm-window endpoints stay on the
  // same side of zero once widened — the warm bracket has no sign
  // change, so the guess must be rejected for the cold search.
  const auto dip = [](double x) {
    return (x - 3.0) + 2.0 * std::exp(-(x * x) * 4.0);
  };
  const auto cold = brent(dip, -1.0, 5.0);
  ASSERT_TRUE(cold.has_value());
  WarmStart warm;
  warm.guess = 0.1;    // dip(0.1) < 0 locally...
  warm.window = 0.05;  // ...and dip < 0 at both 0.05 and 0.15
  const auto result = brent_warm(dip, -1.0, 5.0, warm);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->warm);
  EXPECT_EQ(result->root, cold->root);
  EXPECT_EQ(result->iterations, cold->iterations);
}

TEST(BrentWarm, TightWarmBracketConvergesInFewerIterations) {
  const auto cold = brent(cubic, 0.0, 5.0);
  ASSERT_TRUE(cold.has_value());
  WarmStart warm;
  warm.guess = 2.0 + 1e-4;  // near-root guess from a neighbouring cell
  warm.window = 0.01;
  const auto result = brent_warm(cubic, 0.0, 5.0, warm);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->warm);
  EXPECT_TRUE(result->converged);
  EXPECT_NEAR(result->root, 2.0, 1e-10);
  EXPECT_LT(result->iterations, cold->iterations);
}

}  // namespace
}  // namespace photecc::math
