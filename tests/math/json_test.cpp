// math::json strict-reader tests: the full happy-path grammar, exact
// number semantics (uint64 seeds beyond 2^53), and a fuzz-ish battery
// of malformed documents — every one must fail with a precise
// ParseError, never UB, never a partial value.
#include "photecc/math/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace json = photecc::math::json;

TEST(JsonParse, ScalarValues) {
  EXPECT_TRUE(json::parse("null").is_null());
  EXPECT_TRUE(json::parse("true").as_bool());
  EXPECT_FALSE(json::parse("false").as_bool());
  EXPECT_EQ(json::parse("\"hi\"").as_string(), "hi");
  EXPECT_DOUBLE_EQ(json::parse("-1.5e3").as_double(), -1500.0);
  EXPECT_EQ(json::parse("42").as_uint64(), 42u);
}

TEST(JsonParse, SurroundingWhitespaceIsAccepted) {
  EXPECT_EQ(json::parse(" \t\r\n 7 \n").as_uint64(), 7u);
}

TEST(JsonParse, ObjectPreservesInsertionOrder) {
  const auto v = json::parse(R"({"b":1,"a":2,"z":3})");
  const auto& members = v.as_object();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "b");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "z");
  ASSERT_NE(v.find("z"), nullptr);
  EXPECT_EQ(v.find("z")->as_uint64(), 3u);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, NestedDocument) {
  const auto v = json::parse(
      R"js({"axes":{"codes":["H(7,4)","w/o ECC"],"ber":[1e-06,1e-08]},)js"
      R"js("ok":true,"n":null})js");
  EXPECT_EQ(v.find("axes")->find("codes")->as_array()[1].as_string(),
            "w/o ECC");
  EXPECT_DOUBLE_EQ(v.find("axes")->find("ber")->as_array()[0].as_double(),
                   1e-6);
  EXPECT_TRUE(v.find("n")->is_null());
}

TEST(JsonParse, Uint64SurvivesBeyondDoublePrecision) {
  // The grid's default seed does not fit a double exactly.
  const std::uint64_t seed = 0x9e3779b97f4a7c15ULL;  // 11400714819323198485
  const auto v = json::parse("11400714819323198485");
  EXPECT_EQ(v.as_uint64(), seed);
  EXPECT_EQ(v.number_token(), "11400714819323198485");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(json::parse(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
  EXPECT_EQ(json::parse(R"("\u0041\u00e9")").as_string(), "A\xc3\xa9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(json::parse(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonParse, AccessorTypeMismatchesThrow) {
  const auto v = json::parse(R"({"s":"x","n":1.5,"neg":-3})");
  EXPECT_THROW((void)v.find("s")->as_double(), json::TypeError);
  EXPECT_THROW((void)v.find("n")->as_string(), json::TypeError);
  EXPECT_THROW((void)v.find("n")->as_uint64(), json::TypeError);  // fractional
  EXPECT_THROW((void)v.find("neg")->as_uint64(), json::TypeError);
  EXPECT_THROW((void)v.as_array(), json::TypeError);
  EXPECT_THROW((void)json::parse("3").as_object(), json::TypeError);
}

TEST(JsonParse, DuplicateKeysAreRejected) {
  try {
    (void)json::parse(R"({"codes":[1],"codes":[2]})");
    FAIL() << "duplicate key accepted";
  } catch (const json::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate object key \"codes\""),
              std::string::npos);
  }
}

TEST(JsonParse, ErrorsCarryLineAndColumn) {
  try {
    (void)json::parse("{\"a\": 1,\n\"b\": }");
    FAIL() << "malformed document accepted";
  } catch (const json::ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_GT(e.column(), 1u);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(JsonParse, MalformedDocumentsAllFailCleanly) {
  // Fuzz-ish battery: truncations, bad literals, bad numbers, bad
  // escapes, structural garbage.  Each must throw ParseError (never
  // crash, never return a value).
  const std::vector<std::string> bad = {
      "",                          // empty input
      "   ",                       // whitespace only
      "{",                         // truncated object
      "[1, 2",                     // truncated array
      "{\"a\": 1",                 // truncated after value
      "{\"a\"}",                   // missing colon
      "{\"a\":}",                  // missing value
      "{a: 1}",                    // unquoted key
      "{\"a\":1,}",                // trailing comma (object)
      "[1,]",                      // trailing comma (array)
      "[1 2]",                     // missing comma
      "\"abc",                     // unterminated string
      "\"a\\x\"",                  // invalid escape
      "\"a\\u12\"",                // truncated \u escape
      "\"\\ud800\"",               // lone high surrogate
      "\"\\udc00\"",               // lone low surrogate
      "\"\\ud800\\u0041\"",        // high surrogate + non-surrogate
      "\"a\tb\"",                  // raw control character
      "tru",                       // truncated literal
      "True",                      // wrong-case literal
      "nul",                       // truncated null
      "01",                        // leading zero
      "-",                         // lone minus
      "1.",                        // missing fraction digits
      ".5",                        // missing integer part
      "1e",                        // missing exponent digits
      "1e+",                       // missing exponent digits
      "+1",                        // leading plus
      "NaN",                       // not JSON
      "Infinity",                  // not JSON
      "1 2",                       // trailing content
      "{} {}",                     // two documents
      "[1]]",                      // trailing bracket
      "\x01",                      // control garbage
      std::string(200, '['),       // nesting bomb
  };
  for (const std::string& doc : bad) {
    EXPECT_THROW((void)json::parse(doc), json::ParseError)
        << "accepted malformed input: " << doc.substr(0, 40);
  }
}

TEST(JsonParse, DeepButLegalNestingParses) {
  std::string doc(100, '[');
  doc += "1";
  doc += std::string(100, ']');
  const auto v = json::parse(doc);
  const json::Value* inner = &v;
  for (int i = 0; i < 100; ++i) inner = &inner->as_array()[0];
  EXPECT_EQ(inner->as_uint64(), 1u);
}
