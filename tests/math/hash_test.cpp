// FNV-1a 64 and the hex renderer.  The reference vectors pin the
// algorithm's constants: canonical_hash values (and the serve cache's
// bucket layout) depend on fnv1a64 never changing.
#include "photecc/math/hash.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

using photecc::math::fnv1a64;
using photecc::math::hex64;
using photecc::math::kFnv1a64OffsetBasis;

TEST(Fnv1a64, EmptyInputIsTheOffsetBasis) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64(""), kFnv1a64OffsetBasis);
}

TEST(Fnv1a64, ReferenceVectors) {
  // Published FNV-1a test vectors (Noll's reference implementation).
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a64, IsConstexpr) {
  static_assert(fnv1a64("foobar") == 0x85944171f73967e8ULL);
  SUCCEED();
}

TEST(Fnv1a64, ChainingEqualsConcatenation) {
  const std::string text = "the quick brown fox";
  for (std::size_t split = 0; split <= text.size(); ++split) {
    const std::string head = text.substr(0, split);
    const std::string tail = text.substr(split);
    EXPECT_EQ(fnv1a64(tail, fnv1a64(head)), fnv1a64(text)) << split;
  }
}

TEST(Fnv1a64, SensitiveToEveryByte) {
  EXPECT_NE(fnv1a64("abc"), fnv1a64("abd"));
  EXPECT_NE(fnv1a64("abc"), fnv1a64("abc "));
  // Order matters (unlike an additive checksum).
  EXPECT_NE(fnv1a64("ab"), fnv1a64("ba"));
  // Embedded NUL bytes are hashed, not terminators.
  EXPECT_NE(fnv1a64(std::string("a\0b", 3)), fnv1a64("ab"));
}

TEST(Hex64, FixedWidthLowerCase) {
  EXPECT_EQ(hex64(0), "0000000000000000");
  EXPECT_EQ(hex64(0xcbf29ce484222325ULL), "cbf29ce484222325");
  EXPECT_EQ(hex64(0xffffffffffffffffULL), "ffffffffffffffff");
  EXPECT_EQ(hex64(0x1), "0000000000000001");
}

}  // namespace
