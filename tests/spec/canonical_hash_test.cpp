// spec::canonical_hash — the content fingerprint the serve cache keys
// on.  The fig6b hash is PINNED: it changes only if the canonical
// to_json() dump of the fig6b experiment changes, which would silently
// invalidate every stored fingerprint, so a drift must fail a test
// instead of passing unnoticed.
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "photecc/math/hash.hpp"
#include "photecc/spec/registries.hpp"
#include "photecc/spec/spec.hpp"

namespace {

namespace spec = photecc::spec;

/// The canonical-form fingerprint of the fig6b experiment, computed
/// once from examples/specs/fig6b.json.  Do not update casually: a new
/// value here means every previously stored fingerprint (serve cache
/// keys, logged spec_hash values) silently stopped matching.
constexpr std::uint64_t kFig6bHash = 0xdb2aee8aa4cae8cbULL;

std::string read_file(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << path;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

TEST(CanonicalHash, Fig6bSpecFileHashIsPinned) {
  const spec::ExperimentSpec from_file =
      spec::from_json(read_file(PHOTECC_SOURCE_DIR "/examples/specs/fig6b.json"));
  EXPECT_EQ(spec::canonical_hash(from_file), kFig6bHash);
}

TEST(CanonicalHash, PresetAndFileAgree) {
  const spec::ExperimentSpec preset =
      spec::preset_registry().make("fig6b", "preset");
  EXPECT_EQ(spec::canonical_hash(preset), kFig6bHash);
}

TEST(CanonicalHash, IsTheFnv1aOfTheCanonicalDump) {
  const spec::ExperimentSpec preset =
      spec::preset_registry().make("fig6b", "preset");
  EXPECT_EQ(spec::canonical_hash(preset),
            photecc::math::fnv1a64(preset.to_json()));
}

TEST(CanonicalHash, InsensitiveToInputFormatting) {
  // Reformatting the document (reparse of the canonical dump, which
  // has different whitespace from the shipped file) keeps the hash.
  const spec::ExperimentSpec from_file =
      spec::from_json(read_file(PHOTECC_SOURCE_DIR "/examples/specs/fig6b.json"));
  const spec::ExperimentSpec reparsed =
      spec::from_json(from_file.to_json());
  EXPECT_EQ(spec::canonical_hash(reparsed), kFig6bHash);
}

TEST(CanonicalHash, SensitiveToEveryField) {
  spec::ExperimentSpec preset =
      spec::preset_registry().make("fig6b", "preset");
  preset.ber_targets.push_back(1e-14);
  EXPECT_NE(spec::canonical_hash(preset), kFig6bHash);
}

TEST(CanonicalHash, ThreadCountIsPartOfTheSpec) {
  // threads IS serialized, so two specs differing only in threads hash
  // differently — the serve layer's thread override is operational
  // (ServiceOptions), never spec-level, precisely for this reason.
  spec::ExperimentSpec preset =
      spec::preset_registry().make("fig6b", "preset");
  preset.threads = 7;
  EXPECT_NE(spec::canonical_hash(preset), kFig6bHash);
}

}  // namespace
