// Schema v4: cooling codes in spec documents — the object form
// {"kind": "cooling", ...}, the COOL(...) string form, minimal-version
// emission (v2/v3 documents stay byte-identical), and version gating.
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "photecc/spec/builder.hpp"
#include "photecc/spec/registries.hpp"
#include "photecc/spec/spec.hpp"

namespace spec = photecc::spec;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << path;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

std::string field_of(const std::string& document) {
  try {
    (void)spec::from_json(document);
  } catch (const spec::SpecError& e) {
    return e.field();
  }
  return "(no error)";
}

}  // namespace

TEST(CoolingSpec, BuilderSpecIsByteStableAtVersion4) {
  const spec::ExperimentSpec original = spec::SpecBuilder()
                                            .name("cooling-mix")
                                            .codes({"H(71,64)"})
                                            .cooling("H(71,64)", 16)
                                            .cooling(std::size_t{64}, 16)
                                            .ber_targets({1e-11})
                                            .build();
  EXPECT_EQ(original.codes,
            (std::vector<std::string>{"H(71,64)", "COOL(H(71,64),16)",
                                      "COOL(64,16)"}));
  const std::string json = original.to_json();
  EXPECT_NE(json.find("\"photecc_spec\": 4"), std::string::npos);
  EXPECT_NE(json.find("{\"kind\": \"cooling\", \"inner\": \"H(71,64)\", "
                      "\"weight\": 16}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"kind\": \"cooling\", \"n\": 64, \"weight\": 16}"),
            std::string::npos);
  const spec::ExperimentSpec reparsed = spec::from_json(json);
  EXPECT_EQ(reparsed, original);
  EXPECT_EQ(reparsed.to_json(), json);
}

TEST(CoolingSpec, StringFormParsesAndCanonicalizesToTheObjectForm) {
  const std::string document = R"js({
    "photecc_spec": 4,
    "axes": {"codes": ["H(7,4)", "COOL(H(7,4),2)"], "ber_targets": [1e-9]}
  })js";
  const spec::ExperimentSpec parsed = spec::from_json(document);
  EXPECT_EQ(parsed.codes,
            (std::vector<std::string>{"H(7,4)", "COOL(H(7,4),2)"}));
  const std::string canonical = parsed.to_json();
  EXPECT_NE(canonical.find("\"kind\": \"cooling\""), std::string::npos);
  EXPECT_EQ(spec::from_json(canonical).to_json(), canonical);
}

TEST(CoolingSpec, CoolingFreeSpecsKeepWritingOlderVersions) {
  // No cooling feature -> the writer stays at v2 (or v3 for network
  // specs), so every pre-v4 document and canonical hash is unchanged.
  const std::string plain = spec::ExperimentSpec{}.to_json();
  EXPECT_NE(plain.find("\"photecc_spec\": 2"), std::string::npos);

  const std::string fig6b = spec::preset_registry()
                                .make("fig6b", "preset")
                                .to_json();
  EXPECT_NE(fig6b.find("\"photecc_spec\": 2"), std::string::npos);

  const std::string network = spec::preset_registry()
                                  .make("network", "preset")
                                  .to_json();
  EXPECT_NE(network.find("\"photecc_spec\": 3"), std::string::npos);
  EXPECT_EQ(network.find("\"photecc_spec\": 4"), std::string::npos);
}

TEST(CoolingSpec, ExistingExampleDocumentsStayByteStable) {
  for (const char* name : {"fig6b", "thermal", "network"}) {
    const std::string path = std::string(PHOTECC_SOURCE_DIR) +
                             "/examples/specs/" + name + ".json";
    const spec::ExperimentSpec parsed = spec::from_json(read_file(path));
    const std::string canonical = parsed.to_json();
    EXPECT_EQ(canonical.find("cooling"), std::string::npos) << name;
    EXPECT_EQ(spec::from_json(canonical).to_json(), canonical) << name;
  }
}

TEST(CoolingSpec, CoolingExampleMatchesThePresetAndRoundTrips) {
  const std::string content =
      read_file(PHOTECC_SOURCE_DIR "/examples/specs/cooling.json");
  const spec::ExperimentSpec from_file = spec::from_json(content);
  const spec::ExperimentSpec preset =
      spec::preset_registry().make("cooling", "preset");
  EXPECT_EQ(from_file, preset);
  EXPECT_NE(content.find("\"photecc_spec\": 4"), std::string::npos);
  EXPECT_EQ(spec::from_json(from_file.to_json()).to_json(),
            from_file.to_json());
}

TEST(CoolingSpec, CoolingEntriesAreRejectedBelowVersion4) {
  // Both spellings are v4 features; the error points at the version
  // field, not the entry.
  EXPECT_EQ(field_of(R"js({
    "photecc_spec": 2,
    "axes": {"codes": ["COOL(8,2)"]}
  })js"),
            "photecc_spec");
  EXPECT_EQ(field_of(R"js({
    "photecc_spec": 3,
    "axes": {"codes": [{"kind": "cooling", "n": 8, "weight": 2}]}
  })js"),
            "photecc_spec");
}

TEST(CoolingSpec, ObjectFormValidatesItsFields) {
  const auto doc = [](const std::string& entry) {
    return std::string(R"js({"photecc_spec": 4, "axes": {"codes": [)js") +
           entry + "]}}";
  };
  // Exactly one of inner | n.
  EXPECT_EQ(field_of(doc(R"js({"kind": "cooling", "inner": "H(7,4)",
                               "n": 8, "weight": 2})js")),
            "axes.codes[0]");
  EXPECT_EQ(field_of(doc(R"js({"kind": "cooling", "weight": 2})js")),
            "axes.codes[0]");
  // Weight is required; unknown kinds and keys are loud.
  EXPECT_EQ(field_of(doc(R"js({"kind": "cooling", "n": 8})js")),
            "axes.codes[0].weight");
  EXPECT_EQ(field_of(doc(R"js({"kind": "fec", "n": 8, "weight": 2})js")),
            "axes.codes[0].kind");
  EXPECT_EQ(field_of(doc(R"js({"kind": "cooling", "n": 8, "weight": 2,
                               "extra": 1})js")),
            "axes.codes[0].extra");
}

TEST(CoolingSpec, UnknownCoolingInnerFailsValidationLikeAnyCode) {
  const std::string document = R"js({
    "photecc_spec": 4,
    "axes": {"codes": [{"kind": "cooling", "inner": "X(9,9)", "weight": 2}]}
  })js";
  EXPECT_EQ(field_of(document), "axes.codes[0]");
}

TEST(CoolingSpec, NetworkChannelCodesAcceptCoolingAtVersion4) {
  spec::NetworkEntry net;
  net.tile_count = 4;
  net.channel_count = 2;
  net.channel_codes = {"H(7,4)", "COOL(H(7,4),2)"};
  const spec::ExperimentSpec original = spec::SpecBuilder()
                                            .network(net)
                                            .uniform_traffic(2e8)
                                            .codes({"H(7,4)"})
                                            .build();
  const std::string json = original.to_json();
  EXPECT_NE(json.find("\"photecc_spec\": 4"), std::string::npos);
  const spec::ExperimentSpec reparsed = spec::from_json(json);
  EXPECT_EQ(reparsed, original);
  EXPECT_EQ(reparsed.to_json(), json);
}

TEST(CoolingSpec, SchemaConstantIsVersion4) {
  EXPECT_EQ(spec::kSchemaVersion, 4u);
}
