// Byte-level pin of the dynamic NoC sweep exports.  The tiled-network
// engine replaced the original single-channel event loop, and the
// refactor's contract is that every pre-existing export is
// byte-identical: same CSV, same JSON, bit-for-bit, because the
// one-channel path is now a special case of the network engine.  These
// fingerprints were captured from the single-channel implementation
// immediately before the refactor; any drift here means the contract
// broke — floating-point accumulation order, event ordering, or stat
// finalisation changed — and must be treated as a bug, not re-pinned.
#include <cstdint>

#include <gtest/gtest.h>

#include "photecc/math/hash.hpp"
#include "photecc/spec/registries.hpp"
#include "photecc/spec/run.hpp"

namespace {

namespace spec = photecc::spec;

/// fnv1a64 of ExperimentResult::csv() / ::json() for the "noc" preset
/// (24 dynamic-simulation cells) run by the pre-network simulator.
constexpr std::uint64_t kNocPresetCsvHash = 0x21bd70f3cb6fe90dULL;
constexpr std::uint64_t kNocPresetJsonHash = 0x1d5592537dc35f7aULL;

/// Same pin for the "thermal" preset — covers the time-varying
/// environment path (recalibration, thermal drops, phase stats)
/// through the event loop.
constexpr std::uint64_t kThermalPresetCsvHash = 0x014fed17197d3677ULL;
constexpr std::uint64_t kThermalPresetJsonHash = 0xcb985094fd49192fULL;

TEST(NocExportPin, NocPresetExportsAreByteIdenticalToPreNetworkEngine) {
  spec::ExperimentSpec preset = spec::preset_registry().make("noc", "preset");
  preset.threads = 1;
  const auto result = spec::run(preset);
  EXPECT_EQ(photecc::math::fnv1a64(result.csv()), kNocPresetCsvHash)
      << "csv hash 0x" << std::hex << photecc::math::fnv1a64(result.csv());
  EXPECT_EQ(photecc::math::fnv1a64(result.json()), kNocPresetJsonHash)
      << "json hash 0x" << std::hex << photecc::math::fnv1a64(result.json());
}

TEST(NocExportPin, ThermalPresetExportsAreByteIdenticalToPreNetworkEngine) {
  spec::ExperimentSpec preset =
      spec::preset_registry().make("thermal", "preset");
  preset.threads = 1;
  const auto result = spec::run(preset);
  EXPECT_EQ(photecc::math::fnv1a64(result.csv()), kThermalPresetCsvHash)
      << "csv hash 0x" << std::hex << photecc::math::fnv1a64(result.csv());
  EXPECT_EQ(photecc::math::fnv1a64(result.json()), kThermalPresetJsonHash)
      << "json hash 0x" << std::hex << photecc::math::fnv1a64(result.json());
}

}  // namespace
