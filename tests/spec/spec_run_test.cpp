// spec::run lowering equivalence: a spec-driven sweep must be
// byte-identical (CSV and JSON exports) to the hand-assembled
// ScenarioGrid it replaces, for link grids, NoC grids and modulation
// grids, at any thread count.
#include <gtest/gtest.h>

#include "photecc/explore/evaluators.hpp"
#include "photecc/explore/runner.hpp"
#include "photecc/spec/builder.hpp"
#include "photecc/spec/registries.hpp"
#include "photecc/spec/run.hpp"

namespace spec = photecc::spec;
namespace explore = photecc::explore;
using photecc::core::Policy;
using photecc::math::Modulation;

TEST(SpecRun, Fig6bSpecMatchesHandAssembledGrid) {
  const std::vector<double> bers{1e-6, 1e-8, 1e-10, 1e-12};
  explore::ScenarioGrid grid;
  grid.codes(explore::paper_scheme_names()).ber_targets(bers);
  const auto by_hand = explore::SweepRunner{{1}}.run(grid);

  const auto by_spec = spec::run(spec::SpecBuilder()
                                     .codes(explore::paper_scheme_names())
                                     .ber_targets(bers)
                                     .threads(1)
                                     .build());
  EXPECT_EQ(by_spec.csv(), by_hand.csv());
  EXPECT_EQ(by_spec.json(), by_hand.json());
}

TEST(SpecRun, Fig6bPresetIsThreadCountInvariant) {
  spec::ExperimentSpec preset =
      spec::preset_registry().make("fig6b", "preset");
  preset.threads = 1;
  const auto sequential = spec::run(preset);
  preset.threads = 4;
  const auto parallel = spec::run(preset);
  EXPECT_EQ(sequential.csv(), parallel.csv());
  EXPECT_EQ(sequential.json(), parallel.json());
}

TEST(SpecRun, NocSpecMatchesHandAssembledGrid) {
  explore::ScenarioGrid grid;
  grid.traffic_patterns({explore::uniform_traffic(2e8),
                         explore::hotspot_traffic(1e8, 0, 0.5)})
      .laser_gating({true, false})
      .policies({Policy::kMinEnergy, Policy::kMinTime})
      .oni_counts({4, 8})
      .noc_horizon(5e-7);
  const auto by_hand = explore::SweepRunner{{1}}.run(grid);

  const auto by_spec = spec::run(spec::SpecBuilder()
                                     .uniform_traffic(2e8)
                                     .hotspot_traffic(1e8, 0, 0.5)
                                     .laser_gating({true, false})
                                     .policies({"min-energy", "min-time"})
                                     .oni_counts({4, 8})
                                     .noc_horizon(5e-7)
                                     .threads(1)
                                     .build());
  EXPECT_EQ(by_spec.csv(), by_hand.csv());
  EXPECT_EQ(by_spec.json(), by_hand.json());
}

TEST(SpecRun, ModulationAndLinkVariantAxesMatchHandAssembledGrid) {
  explore::ScenarioGrid grid;
  grid.codes(explore::paper_scheme_names())
      .ber_targets({1e-8})
      .link_variants(
          {{"paper-6cm-12oni", photecc::link::MwsrParams{}},
           {"short-2cm-4oni",
            spec::link_registry().make("short-2cm-4oni", "test")}})
      .modulations({Modulation::kOok, Modulation::kPam4});
  const auto by_hand = explore::SweepRunner{{1}}.run(grid);

  const auto by_spec =
      spec::run(spec::SpecBuilder()
                    .codes(explore::paper_scheme_names())
                    .ber_targets({1e-8})
                    .links({"paper-6cm-12oni", "short-2cm-4oni"})
                    .modulations({"ook", "pam4"})
                    .threads(1)
                    .build());
  EXPECT_EQ(by_spec.csv(), by_hand.csv());
  EXPECT_EQ(by_spec.json(), by_hand.json());
}

TEST(SpecRun, JsonConfigAndBuilderProduceIdenticalResults) {
  // The three entry points promise equivalence: a spec assembled with
  // the builder and the same spec round-tripped through its JSON
  // document must run to byte-identical exports.
  const spec::ExperimentSpec built = spec::SpecBuilder()
                                         .codes({"w/o ECC", "H(7,4)"})
                                         .ber_targets({1e-8, 1e-10})
                                         .modulation("pam4")
                                         .threads(1)
                                         .build();
  const spec::ExperimentSpec parsed = spec::from_json(built.to_json());
  const auto from_builder = spec::run(built);
  const auto from_json_doc = spec::run(parsed);
  EXPECT_EQ(from_builder.csv(), from_json_doc.csv());
  EXPECT_EQ(from_builder.json(), from_json_doc.json());
}

TEST(SpecRun, ExplicitEvaluatorOverridesAutoChoice) {
  // A code/BER grid normally runs the link evaluator; forcing "noc"
  // must produce NoC metrics instead.
  const auto result = spec::run(spec::SpecBuilder()
                                    .codes({"w/o ECC"})
                                    .ber_targets({1e-8})
                                    .evaluator("noc")
                                    .noc_horizon(2e-7)
                                    .threads(1)
                                    .build());
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_TRUE(result.cells[0].metric("delivered").has_value());
  EXPECT_FALSE(result.cells[0].metric("p_channel_w").has_value());
}

TEST(SpecRun, LowerObjectivesMatchesFig6bObjectives) {
  const spec::ExperimentSpec preset =
      spec::preset_registry().make("fig6b", "preset");
  const auto objectives = spec::lower_objectives(preset);
  const auto& reference = explore::fig6b_objectives();
  ASSERT_EQ(objectives.size(), reference.size());
  for (std::size_t i = 0; i < objectives.size(); ++i) {
    EXPECT_EQ(objectives[i].metric, reference[i].metric);
    EXPECT_EQ(objectives[i].minimize, reference[i].minimize);
  }
}

TEST(SpecRun, InvalidSpecIsRejectedBeforeExecution) {
  spec::ExperimentSpec bad;
  bad.ber_targets = {2.0};
  EXPECT_THROW((void)spec::run(bad), spec::SpecError);
  EXPECT_THROW((void)spec::lower(bad), spec::SpecError);
}

TEST(SpecRun, HotspotIndexOutOfRangeIsRejectedAtValidation) {
  // The paper's base link has 12 ONIs: hotspot 20 can never exist, and
  // must die in validate() with a field path, not abort inside the
  // traffic generator mid-sweep.
  try {
    (void)spec::SpecBuilder().hotspot_traffic(1e8, 20, 0.5).build();
    FAIL() << "out-of-range hotspot accepted";
  } catch (const spec::SpecError& e) {
    EXPECT_EQ(e.field(), "axes.traffic[0].hotspot");
  }
  // The same index is fine on a grid whose smallest ONI count admits it.
  EXPECT_NO_THROW((void)spec::SpecBuilder()
                      .hotspot_traffic(1e8, 20, 0.5)
                      .oni_counts({24, 32})
                      .build());
  // ...and rejected again when any ONI-count axis value is too small.
  EXPECT_THROW((void)spec::SpecBuilder()
                   .hotspot_traffic(1e8, 20, 0.5)
                   .oni_counts({8, 32})
                   .build(),
               spec::SpecError);
  // The link-variant axis also bounds it (short-2cm-4oni has 4 ONIs).
  EXPECT_THROW((void)spec::SpecBuilder()
                   .hotspot_traffic(1e8, 6, 0.5)
                   .links({"paper-6cm-12oni", "short-2cm-4oni"})
                   .build(),
               spec::SpecError);
}

TEST(SpecRun, UnknownObjectiveMetricIsRejectedAtValidation) {
  // Typo'd metric names must fail with the known list, not produce an
  // empty/meaningless Pareto front downstream.
  try {
    (void)spec::SpecBuilder()
        .codes({"w/o ECC"})
        .objective("latency")  // link evaluator has no such metric
        .build();
    FAIL() << "unknown objective metric accepted";
  } catch (const spec::SpecError& e) {
    EXPECT_EQ(e.field(), "objectives[0].metric");
    EXPECT_NE(std::string(e.what()).find("p_channel_w"), std::string::npos);
  }
  // The same name is valid NoC-side vocabulary when spelled right.
  EXPECT_NO_THROW((void)spec::SpecBuilder()
                      .uniform_traffic(1e8)
                      .objective("mean_latency_s")
                      .build());
  // "auto" resolves the evaluator like the runner: a NoC axis makes
  // link-only metrics invalid.
  EXPECT_THROW((void)spec::SpecBuilder()
                   .uniform_traffic(1e8)
                   .objective("p_channel_w")
                   .build(),
               spec::SpecError);
}

TEST(SpecRun, DeclaredMetricNamesMatchTheEvaluatorsExactly) {
  // Locks link_cell_metric_names()/noc_cell_metric_names() to what the
  // evaluators actually publish, so a metric rename cannot silently
  // drift apart from the spec-layer objective validation.
  explore::ScenarioGrid link_grid;
  link_grid.codes({"w/o ECC"}).ber_targets({1e-8});
  const auto link_cell = explore::evaluate_link_cell(link_grid.at(0));
  std::vector<std::string> link_names;
  for (const auto& [name, value] : link_cell.metrics) {
    (void)value;
    link_names.push_back(name);
  }
  EXPECT_EQ(link_names, explore::link_cell_metric_names());

  explore::ScenarioGrid noc_grid;
  noc_grid.traffic_patterns({explore::uniform_traffic(2e8)})
      .noc_horizon(2e-7);
  const auto noc_cell = explore::evaluate_noc_cell(noc_grid.at(0));
  std::vector<std::string> noc_names;
  for (const auto& [name, value] : noc_cell.metrics) {
    (void)value;
    noc_names.push_back(name);
  }
  EXPECT_EQ(noc_names, explore::noc_cell_metric_names());

  // With an environment axis the NoC evaluator appends exactly the
  // declared env metric names, in order.
  explore::ScenarioGrid env_grid;
  env_grid.traffic_patterns({explore::uniform_traffic(2e8)})
      .environments({{"static",
                      photecc::env::EnvironmentTimeline::constant(0.25)}})
      .noc_horizon(2e-7);
  const auto env_cell = explore::evaluate_noc_cell(env_grid.at(0));
  std::vector<std::string> env_names;
  for (const auto& [name, value] : env_cell.metrics) {
    (void)value;
    env_names.push_back(name);
  }
  std::vector<std::string> expected = explore::noc_cell_metric_names();
  for (const auto& name : explore::noc_env_metric_names())
    expected.push_back(name);
  EXPECT_EQ(env_names, expected);
}

TEST(SpecRun, EnvironmentSpecMatchesHandAssembledGrid) {
  spec::EnvironmentEntry ramp;
  ramp.kind = "ramp";
  ramp.start_s = 1e-7;
  ramp.end_s = 4e-7;
  ramp.from_activity = 0.25;
  ramp.to_activity = 1.0;
  const auto by_spec = spec::run(spec::SpecBuilder()
                                     .uniform_traffic(2e8)
                                     .environment(ramp)
                                     .noc_horizon(5e-7)
                                     .threads(1)
                                     .build());

  const auto timeline =
      photecc::env::EnvironmentTimeline::ramp(1e-7, 4e-7, 0.25, 1.0);
  explore::ScenarioGrid grid;
  grid.traffic_patterns({explore::uniform_traffic(2e8)})
      .environments({{timeline.label(), timeline}})
      .noc_horizon(5e-7);
  const auto by_hand = explore::SweepRunner{{1}}.run(grid);
  EXPECT_EQ(by_spec.csv(), by_hand.csv());
  EXPECT_EQ(by_spec.json(), by_hand.json());
}

TEST(SpecRun, TimeVaryingEnvironmentNeedsTheNocEvaluator) {
  // Without a NoC axis, "auto" resolves to the static link evaluator,
  // which would silently collapse a ramp to its t = 0 sample — the
  // validator rejects that; constant entries are fine (AB5-style
  // static sweeps), as is an explicit "noc" evaluator.
  spec::EnvironmentEntry ramp;
  ramp.kind = "ramp";
  ramp.start_s = 0.0;
  ramp.end_s = 1e-6;
  ramp.from_activity = 0.25;
  ramp.to_activity = 1.0;
  try {
    (void)spec::SpecBuilder().environment(ramp).build();
    FAIL() << "accepted a ramp under the link evaluator";
  } catch (const spec::SpecError& e) {
    EXPECT_EQ(e.field(), "axes.environments[0].kind");
    EXPECT_NE(std::string(e.what()).find("t = 0 sample"),
              std::string::npos);
  }
  spec::EnvironmentEntry constant;
  constant.activity = 0.75;
  EXPECT_NO_THROW((void)spec::SpecBuilder().environment(constant).build());
  EXPECT_NO_THROW(
      (void)spec::SpecBuilder().evaluator("noc").environment(ramp).build());
  EXPECT_NO_THROW(
      (void)spec::SpecBuilder().uniform_traffic(1e8).environment(ramp)
          .build());
}

TEST(SpecRun, EnvironmentLabelsDistinguishDifferentTimelines) {
  // Grid labels come from EnvironmentTimeline::label(); two ramps with
  // different windows (and two phase schedules with different
  // durations) must not collide to the same label column value.
  namespace env = photecc::env;
  EXPECT_NE(env::EnvironmentTimeline::ramp(0.0, 1e-6, 0.25, 1.0).label(),
            env::EnvironmentTimeline::ramp(0.0, 2e-6, 0.25, 1.0).label());
  EXPECT_NE(
      env::EnvironmentTimeline::phases({{1e-6, 0.2, ""}, {1e-6, 0.8, ""}})
          .label(),
      env::EnvironmentTimeline::phases({{2e-6, 0.2, ""}, {2e-6, 0.8, ""}})
          .label());
  EXPECT_NE(
      env::EnvironmentTimeline::phases({{1e-6, 0.2, ""}, {1e-6, 0.8, ""}})
          .label(),
      env::EnvironmentTimeline::phases({{1e-6, 0.3, ""}, {1e-6, 0.7, ""}})
          .label());
}

TEST(SpecRun, EnvMetricObjectivesNeedAnEnvironmentAxis) {
  // dropped_thermal is NoC vocabulary only when an environment axis is
  // declared.
  spec::EnvironmentEntry constant;
  EXPECT_NO_THROW((void)spec::SpecBuilder()
                      .uniform_traffic(1e8)
                      .environment(constant)
                      .objective("dropped_thermal")
                      .build());
  EXPECT_THROW((void)spec::SpecBuilder()
                   .uniform_traffic(1e8)
                   .objective("dropped_thermal")
                   .build(),
               spec::SpecError);
}

TEST(SpecRun, NetworkSpecMatchesHandAssembledGrid) {
  spec::NetworkEntry entry;
  entry.tile_count = 8;
  entry.channel_count = 2;
  entry.channel_codes = {"H(7,4)", "w/o ECC"};
  const auto by_spec = spec::run(spec::SpecBuilder()
                                     .network(entry)
                                     .uniform_traffic(4e8)
                                     .noc_horizon(5e-7)
                                     .threads(1)
                                     .build());

  explore::NetworkSpec net;
  net.tile_count = 8;
  net.channel_count = 2;
  net.channel_codes = {"H(7,4)", "w/o ECC"};
  explore::ScenarioGrid grid;
  grid.network(net)
      .traffic_patterns({explore::uniform_traffic(4e8)})
      .noc_horizon(5e-7);
  const auto by_hand = explore::SweepRunner{{1}}.run(grid);
  EXPECT_EQ(by_spec.csv(), by_hand.csv());
  EXPECT_EQ(by_spec.json(), by_hand.json());
  // The network evaluator publishes per-channel columns.
  ASSERT_FALSE(by_spec.cells.empty());
  EXPECT_TRUE(by_spec.cells[0].metric("ch0_delivered").has_value());
  EXPECT_TRUE(by_spec.cells[0].metric("ch1_delivered").has_value());
}

TEST(SpecRun, PerChannelMetricsAreObjectiveVocabulary) {
  // ch<k>_ objective names validate up to the declared channel count
  // and no further.
  spec::NetworkEntry entry;
  entry.tile_count = 8;
  entry.channel_count = 2;
  EXPECT_NO_THROW((void)spec::SpecBuilder()
                      .network(entry)
                      .uniform_traffic(1e8)
                      .objective("ch1_mean_latency_s")
                      .build());
  EXPECT_THROW((void)spec::SpecBuilder()
                   .network(entry)
                   .uniform_traffic(1e8)
                   .objective("ch2_delivered")
                   .build(),
               spec::SpecError);
}

TEST(SpecRun, TraceTrafficSpecMatchesHandAssembledGrid) {
  const std::string path =
      std::string(PHOTECC_SOURCE_DIR) + "/examples/traces/sample.trace";
  const auto by_spec = spec::run(spec::SpecBuilder()
                                     .trace_traffic(path)
                                     .oni_counts({8})
                                     .noc_horizon(5e-7)
                                     .threads(1)
                                     .build());

  explore::ScenarioGrid grid;
  grid.traffic_patterns({explore::trace_traffic(path)})
      .oni_counts({8})
      .noc_horizon(5e-7);
  const auto by_hand = explore::SweepRunner{{1}}.run(grid);
  EXPECT_EQ(by_spec.csv(), by_hand.csv());
  EXPECT_EQ(by_spec.json(), by_hand.json());
  ASSERT_FALSE(by_spec.cells.empty());
  EXPECT_EQ(by_spec.cells[0].label("traffic").value_or("").rfind("trace@", 0),
            0u);
}

TEST(SpecRun, ThermalPresetRunsAndSeparatesTheSchemes) {
  spec::ExperimentSpec preset =
      spec::preset_registry().make("thermal", "preset");
  preset.threads = 1;
  preset.noc_horizon_s = 1e-6;  // trim for test time
  const auto result = spec::run(preset);
  EXPECT_EQ(result.cells.size(), 9u);  // 3 codes x 3 environments
  // Under the ramp environment, the uncoded scheme suffers thermal
  // drops that H(7,4) does not.
  double uncoded_thermal = -1.0, h74_thermal = -1.0;
  for (const auto& cell : result.cells) {
    if (cell.label("environment").value_or("").rfind("ramp", 0) != 0)
      continue;
    if (cell.label("code") == std::make_optional<std::string>("w/o ECC"))
      uncoded_thermal = cell.metric("dropped_thermal").value_or(-1.0);
    if (cell.label("code") == std::make_optional<std::string>("H(7,4)"))
      h74_thermal = cell.metric("dropped_thermal").value_or(-1.0);
  }
  EXPECT_GT(uncoded_thermal, 0.0);
  EXPECT_EQ(h74_thermal, 0.0);
}
