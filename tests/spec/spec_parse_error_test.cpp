// Fuzz-ish negative tests for spec::from_json: truncated input,
// duplicate keys, wrong-typed fields, unknown keys and unsupported
// schema versions must each fail with a precise error — never UB,
// never a partially-filled spec.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "photecc/math/json.hpp"
#include "photecc/spec/spec.hpp"

namespace spec = photecc::spec;

namespace {

/// The SpecError message for a document, or "(accepted)".
std::string spec_error_of(const std::string& document) {
  try {
    (void)spec::from_json(document);
  } catch (const spec::SpecError& e) {
    return e.what();
  }
  return "(accepted)";
}

}  // namespace

TEST(SpecParseErrors, TruncatedDocumentsThrowParseError) {
  const std::string canonical = spec::ExperimentSpec{}.to_json();
  // Every strict prefix must fail cleanly with ParseError or SpecError
  // (short prefixes can be valid JSON — "{" is not, but a prefix ending
  // after a full value is impossible here since the document is an
  // object that only closes at the end).
  for (std::size_t length = 0; length + 1 < canonical.size(); ++length) {
    const std::string prefix = canonical.substr(0, length);
    EXPECT_THROW((void)spec::from_json(prefix),
                 photecc::math::json::ParseError)
        << "prefix length " << length;
  }
}

TEST(SpecParseErrors, MissingVersionIsRejected) {
  const std::string message = spec_error_of("{}");
  EXPECT_NE(message.find("photecc_spec"), std::string::npos);
  EXPECT_NE(message.find("required"), std::string::npos);
}

TEST(SpecParseErrors, UnknownSchemaVersionIsRejected) {
  const std::string message = spec_error_of(R"js({"photecc_spec": 5})js");
  EXPECT_NE(message.find("unsupported schema version 5"), std::string::npos);
  EXPECT_NE(message.find("supported: 1..4"), std::string::npos);
}

TEST(SpecParseErrors, FutureSchemaFailsOnVersionNotOnUnknownKeys) {
  // A version-5 document with version-5-only keys must report the
  // version mismatch, not whichever unknown key comes first.
  const std::string message = spec_error_of(
      R"js({"future_field": true, "photecc_spec": 5})js");
  EXPECT_NE(message.find("unsupported schema version"), std::string::npos);
}

TEST(SpecParseErrors, EveryAcceptedSchemaVersionParses) {
  // v1 (no environments), v2 (no network/trace), v3 (no cooling) and
  // v4 documents all parse; the writer emits the smallest version
  // expressing the spec.
  for (const char* version : {"1", "2", "3", "4"}) {
    const auto parsed = spec::from_json(
        std::string(R"js({"photecc_spec": )js") + version + "}");
    EXPECT_EQ(parsed, spec::ExperimentSpec{}) << version;
  }
}

TEST(SpecParseErrors, V3FeaturesInsideOlderDocumentsPointAtTheVersion) {
  // The network section and the trace traffic kind both need v3.
  const std::string network_message = spec_error_of(
      R"js({"photecc_spec": 2, "network": {"kind": "tiled"}})js");
  EXPECT_NE(network_message.find("photecc_spec"), std::string::npos);
  EXPECT_NE(network_message.find("schema version >= 3"), std::string::npos);

  const std::string trace_message = spec_error_of(
      R"js({"photecc_spec": 2, "axes": {"traffic": [)js"
      R"js({"kind": "trace", "path": "a.trace"}]}})js");
  EXPECT_NE(trace_message.find("photecc_spec"), std::string::npos);
  EXPECT_NE(trace_message.find("schema version >= 3"), std::string::npos);
}

TEST(SpecParseErrors, TraceTrafficRejectsGeneratorFields) {
  const std::string message = spec_error_of(
      R"js({"photecc_spec": 3, "axes": {"traffic": [)js"
      R"js({"kind": "trace", "path": "a.trace", "rate_msgs_per_s": 1e8}]}})js");
  EXPECT_NE(message.find("not valid for kind 'trace'"), std::string::npos);

  const std::string path_message = spec_error_of(
      R"js({"photecc_spec": 3, "axes": {"traffic": [)js"
      R"js({"kind": "uniform", "path": "a.trace"}]}})js");
  EXPECT_NE(path_message.find("only valid for kind 'trace'"),
            std::string::npos);
}

TEST(SpecParseErrors, NetworkSectionIsValidated) {
  const std::string kind_message = spec_error_of(
      R"js({"photecc_spec": 3, "network": {"kind": "mesh"}})js");
  EXPECT_NE(kind_message.find("unknown network kind 'mesh'"),
            std::string::npos);

  const std::string mapping_message = spec_error_of(
      R"js({"photecc_spec": 3, "network": {"kind": "tiled",)js"
      R"js( "mapping": "torus"}})js");
  EXPECT_NE(mapping_message.find("network.mapping"), std::string::npos);

  const std::string codes_message = spec_error_of(
      R"js({"photecc_spec": 3, "network": {"kind": "tiled",)js"
      R"js( "channel_count": 2, "channel_codes": ["H(7,4)"]}})js");
  EXPECT_NE(codes_message.find("one code per channel"), std::string::npos);

  const std::string unknown_code_message = spec_error_of(
      R"js({"photecc_spec": 3, "network": {"kind": "tiled",)js"
      R"js( "channel_count": 2, "channel_codes": ["H(7,4)", "X(1,1)"]}})js");
  EXPECT_NE(unknown_code_message.find("network.channel_codes[1]"),
            std::string::npos);

  const std::string missing_kind_message =
      spec_error_of(R"js({"photecc_spec": 3, "network": {}})js");
  EXPECT_NE(missing_kind_message.find("network.kind"), std::string::npos);
}

TEST(SpecParseErrors, EnvironmentsInsideV1DocumentPointAtTheVersion) {
  const std::string message = spec_error_of(
      R"js({"photecc_spec": 1, "axes": {"environments": [)js"
      R"js({"kind": "constant", "activity": 0.5}]}})js");
  EXPECT_NE(message.find("photecc_spec"), std::string::npos);
  EXPECT_NE(message.find("schema version >= 2"), std::string::npos);
}

TEST(SpecParseErrors, EnvironmentEntryErrorsCarryTheFieldPath) {
  // Keys of another kind are rejected (the round-trip rule).
  EXPECT_NE(
      spec_error_of(
          R"js({"photecc_spec": 2, "axes": {"environments": [)js"
          R"js({"kind": "constant", "tau_s": 1e-6}]}})js")
          .find("axes.environments[0].tau_s"),
      std::string::npos);
  // Missing kind.
  EXPECT_NE(spec_error_of(R"js({"photecc_spec": 2, "axes": )js"
                          R"js({"environments": [{"activity": 0.5}]}})js")
                .find("axes.environments[0].kind"),
            std::string::npos);
  // Unknown kind lists the known ones.
  EXPECT_NE(spec_error_of(R"js({"photecc_spec": 2, "axes": )js"
                          R"js({"environments": [{"kind": "diurnal"}]}})js")
                .find("self-heating"),
            std::string::npos);
  // Out-of-range values surface with the entry path (the env factory's
  // message, rewrapped).
  EXPECT_NE(
      spec_error_of(
          R"js({"photecc_spec": 2, "axes": {"environments": [)js"
          R"js({"kind": "constant", "activity": 1.5}]}})js")
          .find("axes.environments[0]"),
      std::string::npos);
  // Ramp endpoints must be ordered.
  EXPECT_NE(
      spec_error_of(
          R"js({"photecc_spec": 2, "axes": {"environments": [)js"
          R"js({"kind": "ramp", "start_s": 1e-6, "end_s": 1e-7,)js"
          R"js( "from_activity": 0.2, "to_activity": 0.8}]}})js")
          .find("ramp end <= start"),
      std::string::npos);
}

TEST(SpecParseErrors, NonIntegerVersionIsRejected) {
  EXPECT_NE(spec_error_of(R"js({"photecc_spec": "1"})js").find("photecc_spec"),
            std::string::npos);
  EXPECT_NE(spec_error_of(R"js({"photecc_spec": 1.5})js").find("photecc_spec"),
            std::string::npos);
}

TEST(SpecParseErrors, DuplicateKeysAreRejectedByTheReader) {
  EXPECT_THROW(
      (void)spec::from_json(
          R"js({"photecc_spec": 1, "threads": 1, "threads": 2})js"),
      photecc::math::json::ParseError);
  EXPECT_THROW(
      (void)spec::from_json(
          R"js({"photecc_spec": 1, "axes": {"codes": ["H(7,4)"], )js"
          R"js("codes": ["w/o ECC"]}})js"),
      photecc::math::json::ParseError);
}

TEST(SpecParseErrors, WrongTypedFieldsNameTheField) {
  const std::vector<std::pair<std::string, std::string>> cases = {
      {R"js({"photecc_spec": 1, "name": 3})js", "name"},
      {R"js({"photecc_spec": 1, "evaluator": []})js", "evaluator"},
      {R"js({"photecc_spec": 1, "threads": "many"})js", "threads"},
      {R"js({"photecc_spec": 1, "threads": -1})js", "threads"},
      {R"js({"photecc_spec": 1, "base": []})js", "base"},
      {R"js({"photecc_spec": 1, "base": {"seed": 1.5}})js", "base.seed"},
      {R"js({"photecc_spec": 1, "base": {"link": 6}})js", "base.link"},
      {R"js({"photecc_spec": 1, "base": {"noc_horizon_s": "fast"}})js",
       "base.noc_horizon_s"},
      {R"js({"photecc_spec": 1, "axes": 5})js", "axes"},
      {R"js({"photecc_spec": 1, "axes": {"codes": "H(7,4)"}})js", "axes.codes"},
      {R"js({"photecc_spec": 1, "axes": {"codes": [7]}})js", "axes.codes[0]"},
      {R"js({"photecc_spec": 1, "axes": {"ber_targets": [1e-9, "x"]}})js",
       "axes.ber_targets[1]"},
      {R"js({"photecc_spec": 1, "axes": {"oni_counts": [8, 8.5]}})js",
       "axes.oni_counts[1]"},
      {R"js({"photecc_spec": 1, "axes": {"laser_gating": [true, 1]}})js",
       "axes.laser_gating[1]"},
      {R"js({"photecc_spec": 1, "axes": {"traffic": [{"kind": 4}]}})js",
       "axes.traffic[0].kind"},
      {R"js({"photecc_spec": 1, "objectives": [{"metric": true}]})js",
       "objectives[0].metric"},
  };
  for (const auto& [document, field] : cases) {
    const std::string message = spec_error_of(document);
    EXPECT_NE(message.find(field), std::string::npos)
        << "document " << document << " reported: " << message;
  }
}

TEST(SpecParseErrors, UnknownKeysNameThePathAndTheAlternatives) {
  const std::string top = spec_error_of(R"js({"photecc_spec": 1, "bers": []})js");
  EXPECT_NE(top.find("bers"), std::string::npos);
  EXPECT_NE(top.find("unknown key"), std::string::npos);
  EXPECT_NE(top.find("axes"), std::string::npos);  // suggests valid keys

  const std::string nested = spec_error_of(
      R"js({"photecc_spec": 1, "axes": {"code": ["H(7,4)"]}})js");
  EXPECT_NE(nested.find("axes.code"), std::string::npos);
  EXPECT_NE(nested.find("codes"), std::string::npos);

  const std::string base = spec_error_of(
      R"js({"photecc_spec": 1, "base": {"sed": 1}})js");
  EXPECT_NE(base.find("base.sed"), std::string::npos);
}

TEST(SpecParseErrors, EmptyAxisArraysAreRejected) {
  const std::string message = spec_error_of(
      R"js({"photecc_spec": 1, "axes": {"codes": []}})js");
  EXPECT_NE(message.find("axes.codes"), std::string::npos);
  EXPECT_NE(message.find("must not be empty"), std::string::npos);
}

TEST(SpecParseErrors, SemanticValidationRunsAfterParse) {
  EXPECT_NE(spec_error_of(
                R"js({"photecc_spec": 1, "axes": {"codes": ["X(9,9)"]}})js")
                .find("axes.codes[0]"),
            std::string::npos);
  EXPECT_NE(spec_error_of(
                R"js({"photecc_spec": 1, "axes": {"ber_targets": [0.6]}})js")
                .find("outside the BER range"),
            std::string::npos);
  EXPECT_NE(spec_error_of(
                R"js({"photecc_spec": 1, "base": {"link": "nope"}})js")
                .find("unknown link variant"),
            std::string::npos);
  EXPECT_NE(spec_error_of(
                R"js({"photecc_spec": 1, "axes": {"modulations": ["qam"]}})js")
                .find("unknown modulation"),
            std::string::npos);
}

TEST(SpecParseErrors, HotspotFieldsOnUniformTrafficAreRejected) {
  const std::string message = spec_error_of(
      R"js({"photecc_spec": 1, "axes": {"traffic": [)js"
      R"js({"kind": "uniform", "hotspot": 3}]}})js");
  EXPECT_NE(message.find("axes.traffic[0]"), std::string::npos);
  EXPECT_NE(message.find("hotspot"), std::string::npos);
}

TEST(SpecParseErrors, MissingTrafficKindIsRejected) {
  const std::string message = spec_error_of(
      R"js({"photecc_spec": 1, "axes": {"traffic": [)js"
      R"js({"rate_msgs_per_s": 1e8}]}})js");
  EXPECT_NE(message.find("axes.traffic[0].kind"), std::string::npos);
  EXPECT_NE(message.find("required"), std::string::npos);
}
