// The serialization contract: ExperimentSpec -> to_json -> from_json is
// the identity, and to_json(from_json(to_json(s))) is byte-identical to
// to_json(s) — for default specs, every preset, and a spec exercising
// every field.
#include <gtest/gtest.h>

#include "photecc/spec/builder.hpp"
#include "photecc/spec/registries.hpp"
#include "photecc/spec/spec.hpp"

namespace spec = photecc::spec;

namespace {

spec::ExperimentSpec full_spec() {
  return spec::SpecBuilder()
      .name("everything")
      .evaluator("noc")
      .threads(4)
      .link("short-2cm-4oni")
      .seed(0x9e3779b97f4a7c15ULL)  // > 2^53: must survive exactly
      .noc_horizon(5e-7)
      .codes({"w/o ECC", "H(71,64)", "BCH(15,7,2)"})
      .ber_targets({1e-6, 1e-10})
      .links({"paper-6cm-12oni", "short-2cm-4oni"})
      .oni_counts({4, 8})
      .uniform_traffic(2e8)
      .hotspot_traffic(1e8, 0, 0.5)
      .laser_gating({true, false})
      .policies({"min-energy", "min-time"})
      .modulations({"ook", "pam4"})
      .objective("mean_latency_s")
      .objective("energy_per_bit_j", true)
      .objective("delivered", false)
      .build();
}

}  // namespace

TEST(SpecRoundTrip, DefaultSpecIsByteStable) {
  const spec::ExperimentSpec original;
  const std::string json = original.to_json();
  const spec::ExperimentSpec reparsed = spec::from_json(json);
  EXPECT_EQ(reparsed, original);
  EXPECT_EQ(reparsed.to_json(), json);
}

TEST(SpecRoundTrip, FullSpecIsByteStable) {
  const spec::ExperimentSpec original = full_spec();
  const std::string json = original.to_json();
  const spec::ExperimentSpec reparsed = spec::from_json(json);
  EXPECT_EQ(reparsed, original);
  EXPECT_EQ(reparsed.to_json(), json);
}

TEST(SpecRoundTrip, SeedBeyondDoublePrecisionSurvives) {
  spec::ExperimentSpec original;
  original.seed = 0xFFFFFFFFFFFFFFFFULL;
  const spec::ExperimentSpec reparsed = spec::from_json(original.to_json());
  EXPECT_EQ(reparsed.seed, 0xFFFFFFFFFFFFFFFFULL);
}

TEST(SpecRoundTrip, EveryPresetIsByteStable) {
  for (const std::string& name : spec::preset_registry().names()) {
    const spec::ExperimentSpec preset =
        spec::preset_registry().make(name, "preset");
    const std::string json = preset.to_json();
    const spec::ExperimentSpec reparsed = spec::from_json(json);
    EXPECT_EQ(reparsed, preset) << "preset " << name;
    EXPECT_EQ(reparsed.to_json(), json) << "preset " << name;
  }
}

TEST(SpecRoundTrip, HandWrittenDocumentNormalizesStably) {
  // A non-canonical document (reordered keys, extra whitespace, number
  // spellings the writer would not emit) parses to the same spec, and
  // one rewrite reaches the canonical fixed point.
  const std::string handwritten = R"js({
    "axes": {"ber_targets": [1.0e-6, 0.00000001], "codes": ["H(7,4)"]},
    "photecc_spec": 1,
    "base": {"noc_horizon_s": 0.000002, "link": "paper"},
    "threads": 2
  })js";
  const spec::ExperimentSpec parsed = spec::from_json(handwritten);
  EXPECT_EQ(parsed.codes, std::vector<std::string>{"H(7,4)"});
  EXPECT_EQ(parsed.ber_targets, (std::vector<double>{1e-6, 1e-8}));
  EXPECT_EQ(parsed.threads, 2u);
  const std::string canonical = parsed.to_json();
  EXPECT_EQ(spec::from_json(canonical).to_json(), canonical);
}

TEST(SpecRoundTrip, EnvironmentAxisOfEveryKindIsByteStable) {
  spec::ExperimentSpec original;
  original.codes = {"H(7,4)"};
  // Time-varying kinds need the dynamic evaluator to validate.
  original.evaluator = "noc";
  spec::EnvironmentEntry constant;
  constant.activity = 0.4;
  spec::EnvironmentEntry step;
  step.kind = "step";
  step.at_s = 1e-6;
  step.from_activity = 0.2;
  step.to_activity = 0.8;
  spec::EnvironmentEntry ramp;
  ramp.kind = "ramp";
  ramp.start_s = 1e-7;
  ramp.end_s = 2e-6;
  ramp.from_activity = 0.25;
  ramp.to_activity = 1.0;
  spec::EnvironmentEntry phases;
  phases.kind = "phases";
  phases.cyclic = false;
  phases.phases = {{1e-6, 0.25, "compute"}, {5e-7, 0.7, ""}};
  spec::EnvironmentEntry self_heating;
  self_heating.kind = "self-heating";
  self_heating.baseline_activity = 0.3;
  self_heating.busy_gain = 0.5;
  self_heating.tau_s = 4e-7;
  original.environments = {constant, step, ramp, phases, self_heating};

  const std::string json = original.to_json();
  // The writer stamps the current schema version.
  EXPECT_NE(json.find("\"photecc_spec\": 2"), std::string::npos);
  const spec::ExperimentSpec reparsed = spec::from_json(json);
  EXPECT_EQ(reparsed, original);
  EXPECT_EQ(reparsed.to_json(), json);
}

TEST(SpecRoundTrip, V1DocumentsWithoutEnvironmentsStillParse) {
  const std::string v1 = R"js({
    "photecc_spec": 1,
    "axes": {"codes": ["H(7,4)"], "ber_targets": [1e-9]}
  })js";
  const spec::ExperimentSpec parsed = spec::from_json(v1);
  EXPECT_EQ(parsed.codes, std::vector<std::string>{"H(7,4)"});
  EXPECT_TRUE(parsed.environments.empty());
  // Rewriting normalizes to the current version, stably.
  const std::string canonical = parsed.to_json();
  EXPECT_NE(canonical.find("\"photecc_spec\": 2"), std::string::npos);
  EXPECT_EQ(spec::from_json(canonical).to_json(), canonical);
}

TEST(SpecRoundTrip, NetworkAndTraceSpecIsByteStableAtVersion3) {
  spec::NetworkEntry net;
  net.tile_count = 8;
  net.channel_count = 2;
  net.mapping = "blocked";
  net.channel_codes = {"H(7,4)", "w/o ECC"};
  spec::EnvironmentEntry hot;
  hot.kind = "ramp";
  hot.start_s = 1e-6;
  hot.end_s = 4e-6;
  hot.from_activity = 0.25;
  hot.to_activity = 1.0;
  spec::EnvironmentEntry cool;
  cool.activity = 0.25;
  net.channel_environments = {hot, cool};

  const spec::ExperimentSpec original =
      spec::SpecBuilder()
          .name("tiled")
          .network(net)
          .trace_traffic("examples/traces/sample.trace")
          .uniform_traffic(2e8)
          .codes({"H(7,4)"})
          .build();
  const std::string json = original.to_json();
  // v3 features force the writer up to schema version 3.
  EXPECT_NE(json.find("\"photecc_spec\": 3"), std::string::npos);
  const spec::ExperimentSpec reparsed = spec::from_json(json);
  EXPECT_EQ(reparsed, original);
  EXPECT_EQ(reparsed.to_json(), json);
}

TEST(SpecRoundTrip, WriterEmitsTheSmallestExpressingVersion) {
  // A spec using no v3 feature keeps writing version 2, so pre-v3
  // documents (and their canonical hashes) stay byte-identical.
  const std::string plain = spec::ExperimentSpec{}.to_json();
  EXPECT_NE(plain.find("\"photecc_spec\": 2"), std::string::npos);
  EXPECT_EQ(plain.find("\"photecc_spec\": 3"), std::string::npos);
}

TEST(SpecRoundTrip, NameIsEscapedCorrectly) {
  spec::ExperimentSpec original;
  original.name = "odd \"name\"\twith\nescapes\\";
  const spec::ExperimentSpec reparsed = spec::from_json(original.to_json());
  EXPECT_EQ(reparsed.name, original.name);
  EXPECT_EQ(reparsed.to_json(), original.to_json());
}

TEST(SpecBuilderValidation, BuildRejectsBadFieldsWithPaths) {
  const auto field_of = [](auto&& fn) -> std::string {
    try {
      fn();
    } catch (const spec::SpecError& e) {
      return e.field();
    }
    return "(no error)";
  };

  EXPECT_EQ(field_of([] {
              (void)spec::SpecBuilder().link("no-such-link").build();
            }),
            "base.link");
  EXPECT_EQ(field_of([] {
              (void)spec::SpecBuilder().codes({"H(7,4)", "X(1,2)"}).build();
            }),
            "axes.codes[1]");
  EXPECT_EQ(field_of([] {
              (void)spec::SpecBuilder().ber_targets({1e-9, 0.7}).build();
            }),
            "axes.ber_targets[1]");
  EXPECT_EQ(field_of([] {
              (void)spec::SpecBuilder().oni_counts({8, 1}).build();
            }),
            "axes.oni_counts[1]");
  EXPECT_EQ(field_of([] {
              (void)spec::SpecBuilder().policies({"fastest"}).build();
            }),
            "axes.policies[0]");
  EXPECT_EQ(field_of([] {
              (void)spec::SpecBuilder().modulation("qam64").build();
            }),
            "axes.modulations[0]");
  EXPECT_EQ(field_of([] {
              (void)spec::SpecBuilder().evaluator("magic").build();
            }),
            "evaluator");
  EXPECT_EQ(field_of([] {
              (void)spec::SpecBuilder().noc_horizon(-1.0).build();
            }),
            "base.noc_horizon_s");
  EXPECT_EQ(field_of([] {
              (void)spec::SpecBuilder().objective("").build();
            }),
            "objectives[0].metric");
  EXPECT_EQ(field_of([] {
              (void)spec::SpecBuilder()
                  .hotspot_traffic(1e8, 0, 1.5)
                  .build();
            }),
            "axes.traffic[0].hotspot_fraction");
  // Hotspot fields on a non-hotspot kind are rejected builder-side too
  // (to_json would drop them, silently breaking the round trip).
  EXPECT_EQ(field_of([] {
              (void)spec::SpecBuilder()
                  .traffic({{"uniform", 2e8, 4096, 3, 0.9, ""}})
                  .build();
            }),
            "axes.traffic[0]");
}

TEST(SpecRegistries, UnknownNamesListTheKnownOnes) {
  try {
    (void)spec::link_registry().make("warp-core", "base.link");
    FAIL() << "unknown link variant accepted";
  } catch (const spec::SpecError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("base.link"), std::string::npos);
    EXPECT_NE(message.find("warp-core"), std::string::npos);
    EXPECT_NE(message.find("paper"), std::string::npos);       // known list
    EXPECT_NE(message.find("short-2cm-4oni"), std::string::npos);
  }
}

TEST(SpecRegistries, DuplicateRegistrationIsRejected) {
  spec::Registry<int> registry{"test"};
  registry.add("one", [] { return 1; });
  EXPECT_THROW(registry.add("one", [] { return 2; }),
               std::invalid_argument);
  EXPECT_THROW(registry.add("", [] { return 0; }), std::invalid_argument);
  EXPECT_TRUE(registry.contains("one"));
  EXPECT_FALSE(registry.contains("two"));
  EXPECT_EQ(registry.make("one", "f"), 1);
}
