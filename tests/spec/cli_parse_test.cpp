// The shared CLI token-parsing layer: uniform "<field>: <reason>
// '<token>'" errors for sizes, BERs and comma-separated lists — the
// deduplicated home of explore_cli's old hand-rolled helpers.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "photecc/spec/cli.hpp"
#include "photecc/spec/registries.hpp"

namespace spec = photecc::spec;

TEST(CliParse, SizesParseAndReject) {
  EXPECT_EQ(spec::parse_size("--threads", "0"), 0u);
  EXPECT_EQ(spec::parse_size("--threads", "12"), 12u);
  for (const char* bad : {"", "-1", "+1", "1x", "x1", "1.5", " 1",
                          "99999999999999999999999999"}) {
    try {
      (void)spec::parse_size("--threads", bad);
      FAIL() << "accepted '" << bad << "'";
    } catch (const spec::SpecError& e) {
      EXPECT_EQ(e.field(), "--threads");
      EXPECT_NE(std::string(e.what()).find(std::string("'") + bad + "'"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(CliParse, BersParseAndReject) {
  EXPECT_DOUBLE_EQ(spec::parse_ber("--ber", "1e-9"), 1e-9);
  EXPECT_DOUBLE_EQ(spec::parse_ber("--ber", "0.25"), 0.25);
  for (const char* bad : {"", "x", "0", "0.5", "1", "-1e-9", "1e-9z"}) {
    try {
      (void)spec::parse_ber("--ber", bad);
      FAIL() << "accepted '" << bad << "'";
    } catch (const spec::SpecError& e) {
      EXPECT_EQ(e.field(), "--ber");
    }
  }
}

TEST(CliParse, ListsSplitAndRejectEmptyItems) {
  EXPECT_EQ(spec::split_list("f", "a"), std::vector<std::string>{"a"});
  EXPECT_EQ(spec::split_list("f", "a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  for (const char* bad : {"", ",", "a,", ",a", "a,,b"}) {
    EXPECT_THROW((void)spec::split_list("f", bad), spec::SpecError)
        << "accepted '" << bad << "'";
  }
}

TEST(CliParse, ModulationListsValidateAgainstTheRegistry) {
  EXPECT_EQ(spec::parse_modulation_names("--modulation", "ook,pam4"),
            (std::vector<std::string>{"ook", "pam4"}));
  try {
    (void)spec::parse_modulation_names("--modulation", "ook,qam64");
    FAIL() << "accepted unknown modulation";
  } catch (const spec::SpecError& e) {
    EXPECT_EQ(e.field(), "--modulation");
    EXPECT_NE(std::string(e.what()).find("qam64"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("pam8"), std::string::npos);
  }
}

TEST(CliList, RenderedListingsNameEveryBuiltIn) {
  // The --list-* subcommands print exactly these renderings; pin the
  // format ("<title> (<count>):" + indented names) and the built-ins.
  const std::string presets = spec::render_name_list(
      "presets", spec::preset_registry().names());
  EXPECT_NE(presets.find("presets ("), std::string::npos);
  for (const char* name :
       {"fig6b", "noc", "modulation", "modulation-smoke", "thermal",
        "network"})
    EXPECT_NE(presets.find(std::string("\n  ") + name + "\n"),
              std::string::npos)
        << name;

  const std::string links = spec::render_name_list(
      "link variants", spec::link_registry().names());
  for (const char* name : {"paper", "short-2cm-4oni", "6 cm"})
    EXPECT_NE(links.find(std::string("  ") + name + "\n"),
              std::string::npos)
        << name;

  const std::string evaluators = spec::render_name_list(
      "evaluators", spec::evaluator_registry().names());
  EXPECT_NE(evaluators.find("  link\n"), std::string::npos);
  EXPECT_NE(evaluators.find("  noc\n"), std::string::npos);
  EXPECT_NE(evaluators.find("  network\n"), std::string::npos);

  const std::string traffic = spec::render_name_list(
      "traffic kinds", spec::traffic_registry().names());
  for (const char* name : {"uniform", "hotspot", "trace"})
    EXPECT_NE(traffic.find(std::string("  ") + name + "\n"),
              std::string::npos)
        << name;

  // Exact shape for a tiny input.
  EXPECT_EQ(spec::render_name_list("things", {"a", "b"}),
            "things (2):\n  a\n  b\n");
}

TEST(CliList, EnvironmentListingIsFormatPinned) {
  // Exactly what explore_cli --list-environments prints.
  EXPECT_EQ(spec::render_name_list("environment kinds",
                                   spec::environment_registry().names()),
            "environment kinds (5):\n"
            "  constant\n"
            "  step\n"
            "  ramp\n"
            "  phases\n"
            "  self-heating\n");
}

TEST(CliList, EnvironmentRegistryListsEveryKind) {
  const auto names = spec::environment_registry().names();
  const std::vector<std::string> expected{
      "constant", "step", "ramp", "phases", "self-heating"};
  EXPECT_EQ(names, expected);
}
