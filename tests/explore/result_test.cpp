#include "photecc/explore/result.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "photecc/core/tradeoff.hpp"

namespace photecc::explore {
namespace {

const std::vector<Objective> kMinBoth{{"x", true}, {"y", true}};

CellResult cell(std::size_t index, bool feasible, double x, double y) {
  CellResult c;
  c.index = index;
  c.feasible = feasible;
  c.set_metric("x", x);
  c.set_metric("y", y);
  return c;
}

TEST(CellResult, SetMetricOverwritesInPlace) {
  CellResult c;
  c.set_metric("a", 1.0);
  c.set_metric("b", 2.0);
  c.set_metric("a", 3.0);
  ASSERT_EQ(c.metrics.size(), 2u);
  EXPECT_DOUBLE_EQ(*c.metric("a"), 3.0);
  EXPECT_FALSE(c.metric("missing").has_value());
}

TEST(GenericPareto, MatchesTheTwoObjectiveCoreSemantics) {
  const auto a = cell(0, true, 1.0, 10.0);
  const auto b = cell(1, true, 1.0, 8.0);
  EXPECT_TRUE(is_dominated(a, b, kMinBoth));   // b no worse, strictly better y
  EXPECT_FALSE(is_dominated(b, a, kMinBoth));
  const auto c = cell(2, true, 1.5, 8.0);
  EXPECT_FALSE(is_dominated(a, c, kMinBoth));  // trade-off: neither wins
  EXPECT_FALSE(is_dominated(c, a, kMinBoth));
}

TEST(GenericPareto, EmptyCellSetGivesEmptyFront) {
  EXPECT_TRUE(pareto_front_indices({}, kMinBoth).empty());
}

TEST(GenericPareto, AllInfeasibleGivesEmptyFront) {
  const std::vector<CellResult> cells{cell(0, false, 1.0, 1.0),
                                      cell(1, false, 2.0, 2.0)};
  EXPECT_TRUE(pareto_front_indices(cells, kMinBoth).empty());
}

TEST(GenericPareto, DuplicatePointsAllStayOnTheFront) {
  const std::vector<CellResult> cells{cell(0, true, 1.0, 1.0),
                                      cell(1, true, 1.0, 1.0)};
  EXPECT_EQ(pareto_front_indices(cells, kMinBoth).size(), 2u);
}

TEST(GenericPareto, SingleFeasiblePointIsTheFront) {
  const std::vector<CellResult> cells{cell(0, false, 0.0, 0.0),
                                      cell(1, true, 5.0, 5.0)};
  const auto front = pareto_front_indices(cells, kMinBoth);
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0], 1u);
}

TEST(GenericPareto, MissingObjectiveMetricCountsAsInfeasible) {
  CellResult incomplete;
  incomplete.index = 0;
  incomplete.feasible = true;
  incomplete.set_metric("x", 1.0);  // no "y"
  const std::vector<CellResult> cells{incomplete, cell(1, true, 9.0, 9.0)};
  const auto front = pareto_front_indices(cells, kMinBoth);
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0], 1u);
}

TEST(GenericPareto, MaximizeObjectiveFlipsTheComparison) {
  // Higher y is better: (1, 10) now dominates (1, 8).
  const std::vector<Objective> min_x_max_y{{"x", true}, {"y", false}};
  const auto low = cell(0, true, 1.0, 8.0);
  const auto high = cell(1, true, 1.0, 10.0);
  EXPECT_TRUE(is_dominated(low, high, min_x_max_y));
  EXPECT_FALSE(is_dominated(high, low, min_x_max_y));
}

TEST(GenericPareto, ThreeObjectivesKeepIncomparableTradeoffs) {
  const std::vector<Objective> objectives{
      {"x", true}, {"y", true}, {"z", true}};
  auto with_z = [](CellResult c, double z) {
    c.set_metric("z", z);
    return c;
  };
  // Each point is best in one dimension: all three on the front.
  const std::vector<CellResult> cells{
      with_z(cell(0, true, 1.0, 5.0), 5.0),
      with_z(cell(1, true, 5.0, 1.0), 5.0),
      with_z(cell(2, true, 5.0, 5.0), 1.0)};
  EXPECT_EQ(pareto_front_indices(cells, objectives).size(), 3u);
}

TEST(GenericPareto, FrontIsSortedByTheFirstObjective) {
  const std::vector<CellResult> cells{cell(0, true, 3.0, 1.0),
                                      cell(1, true, 1.0, 3.0),
                                      cell(2, true, 2.0, 2.0)};
  const auto front = pareto_front_indices(cells, kMinBoth);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_EQ(front[0], 1u);
  EXPECT_EQ(front[1], 2u);
  EXPECT_EQ(front[2], 0u);
}

TEST(Export, CsvQuotesLabelsWithCommas) {
  ExperimentResult result;
  CellResult c = cell(0, true, 1.5, 2.5);
  c.labels.emplace_back("code", "BCH(15,7,2)");
  result.cells.push_back(c);
  const std::string csv = result.csv();
  EXPECT_NE(csv.find("\"BCH(15,7,2)\""), std::string::npos);
  EXPECT_NE(csv.find("index,code,feasible,x,y"), std::string::npos);
  EXPECT_NE(csv.find("0,\"BCH(15,7,2)\",1,1.5,2.5"), std::string::npos);
}

TEST(Export, JsonSerialisesLabelsAndMetrics) {
  ExperimentResult result;
  CellResult c = cell(7, true, 1.5, 2.5);
  c.labels.emplace_back("policy", "min-energy");
  result.cells.push_back(c);
  const std::string json = result.json();
  EXPECT_NE(json.find("\"index\":7"), std::string::npos);
  EXPECT_NE(json.find("\"policy\":\"min-energy\""), std::string::npos);
  EXPECT_NE(json.find("\"x\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"feasible\":true"), std::string::npos);
}

TEST(Export, NonFiniteMetricsBecomeJsonNull) {
  ExperimentResult result;
  CellResult c;
  c.feasible = false;
  c.set_metric("x", std::numeric_limits<double>::infinity());
  result.cells.push_back(c);
  EXPECT_NE(result.json().find("\"x\":null"), std::string::npos);
}

TEST(Export, MissingMetricIsAnEmptyCsvField) {
  ExperimentResult result;
  CellResult a = cell(0, true, 1.0, 2.0);
  CellResult b;
  b.index = 1;
  b.feasible = true;
  b.set_metric("x", 3.0);  // no "y"
  result.cells = {a, b};
  EXPECT_NE(result.csv().find("1,1,3,\n"), std::string::npos);
}

TEST(Bridge, ToTradeoffSweepKeepsSchemeMetricsOrder) {
  ExperimentResult result;
  for (int i = 0; i < 3; ++i) {
    CellResult c;
    c.index = static_cast<std::size_t>(i);
    core::SchemeMetrics m;
    // append() avoids GCC 12's -Wrestrict false positive (PR105651).
    m.scheme = std::string("s").append(std::to_string(i));
    m.feasible = true;
    m.ct = 1.0 + i;
    m.p_channel_w = 3.0 - i;
    c.scheme = m;
    result.cells.push_back(c);
  }
  const auto sweep = result.to_tradeoff_sweep();
  ASSERT_EQ(sweep.points.size(), 3u);
  EXPECT_EQ(sweep.points[0].scheme, "s0");
  EXPECT_EQ(sweep.points[2].scheme, "s2");
  // And the 2-objective front agrees with the generic extraction.
  EXPECT_EQ(sweep.pareto_front().size(), 3u);
}

}  // namespace
}  // namespace photecc::explore
