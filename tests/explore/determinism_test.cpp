// The engine's central promise: results are a pure function of the grid
// and the base seed — independent of thread count and evaluation order —
// and the NoC simulator underneath is a pure function of its seed.
#include <gtest/gtest.h>

#include "photecc/core/tradeoff.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/explore/evaluators.hpp"
#include "photecc/explore/runner.hpp"
#include "photecc/noc/simulator.hpp"
#include "photecc/noc/traffic.hpp"

namespace photecc::explore {
namespace {

TEST(NocDeterminism, SameSeedSameStats) {
  noc::NocConfig config;
  config.scheme_menu = ecc::paper_schemes();
  const noc::NocSimulator simulator{config};
  const noc::UniformRandomTraffic traffic{config.oni_count, 2e8, 4096};

  const auto a = simulator.run(traffic, 1e-6, 1234);
  const auto b = simulator.run(traffic, 1e-6, 1234);
  EXPECT_EQ(a.stats.delivered, b.stats.delivered);
  EXPECT_EQ(a.stats.dropped, b.stats.dropped);
  EXPECT_EQ(a.stats.deadline_misses, b.stats.deadline_misses);
  EXPECT_EQ(a.stats.mean_latency_s, b.stats.mean_latency_s);
  EXPECT_EQ(a.stats.max_latency_s, b.stats.max_latency_s);
  EXPECT_EQ(a.stats.p95_latency_s, b.stats.p95_latency_s);
  EXPECT_EQ(a.stats.total_energy_j, b.stats.total_energy_j);
  EXPECT_EQ(a.stats.laser_energy_j, b.stats.laser_energy_j);
  EXPECT_EQ(a.stats.mr_energy_j, b.stats.mr_energy_j);
  EXPECT_EQ(a.stats.codec_energy_j, b.stats.codec_energy_j);
  EXPECT_EQ(a.stats.idle_laser_energy_j, b.stats.idle_laser_energy_j);
  EXPECT_EQ(a.stats.busy_time_s, b.stats.busy_time_s);
  EXPECT_EQ(a.stats.scheme_usage, b.stats.scheme_usage);
  EXPECT_EQ(a.stats.class_mean_latency_s, b.stats.class_mean_latency_s);
  EXPECT_EQ(a.total_payload_bits, b.total_payload_bits);
}

TEST(NocDeterminism, DifferentSeedsProduceDifferentSchedules) {
  noc::NocConfig config;
  config.scheme_menu = ecc::paper_schemes();
  const noc::NocSimulator simulator{config};
  const noc::UniformRandomTraffic traffic{config.oni_count, 2e8, 4096};
  const auto a = simulator.run(traffic, 1e-6, 1);
  const auto b = simulator.run(traffic, 1e-6, 2);
  EXPECT_NE(a.stats.mean_latency_s, b.stats.mean_latency_s);
}

TEST(SweepDeterminism, LinkGridExportsAreThreadCountInvariant) {
  ScenarioGrid grid;
  grid.codes({"w/o ECC", "H(71,64)", "H(7,4)", "H(15,11)", "REP(3,1)"})
      .ber_targets({1e-6, 1e-8, 1e-10, 1e-12})
      .oni_counts({8, 12, 16});
  const auto sequential = SweepRunner{{1}}.run(grid);
  for (const std::size_t threads : {2u, 4u, 7u}) {
    const auto parallel = SweepRunner{{threads}}.run(grid);
    EXPECT_EQ(sequential.csv(), parallel.csv()) << "threads=" << threads;
    EXPECT_EQ(sequential.json(), parallel.json()) << "threads=" << threads;
  }
}

TEST(SweepDeterminism, NocGridExportsAreThreadCountInvariant) {
  ScenarioGrid grid;
  grid.traffic_patterns({uniform_traffic(1e8), hotspot_traffic(2e8, 0, 0.5)})
      .laser_gating({true, false})
      .policies({core::Policy::kMinEnergy, core::Policy::kMinTime})
      .noc_horizon(5e-7);
  const auto sequential = SweepRunner{{1}}.run(grid);
  const auto parallel = SweepRunner{{4}}.run(grid);
  EXPECT_EQ(sequential.csv(), parallel.csv());
  EXPECT_EQ(sequential.json(), parallel.json());
}

TEST(SweepDeterminism, ModulationGridExportsAreThreadCountInvariant) {
  ScenarioGrid grid;
  grid.codes({"w/o ECC", "H(71,64)", "H(7,4)"})
      .ber_targets({1e-8, 1e-10})
      .modulations({math::Modulation::kOok, math::Modulation::kPam4});
  const auto sequential = SweepRunner{{1}}.run(grid);
  for (const std::size_t threads : {2u, 4u}) {
    const auto parallel = SweepRunner{{threads}}.run(grid);
    EXPECT_EQ(sequential.csv(), parallel.csv()) << "threads=" << threads;
    EXPECT_EQ(sequential.json(), parallel.json()) << "threads=" << threads;
  }
  // The combined OOK-vs-PAM4 front is non-empty and mixes both formats
  // whenever any PAM4 cell is feasible.
  const auto front =
      sequential.pareto_front({{"ct", true}, {"p_channel_w", true}});
  EXPECT_FALSE(front.empty());
}

TEST(SweepDeterminism, OokCellsAreUnchangedByTheModulationAxis) {
  // Declaring the axis with the OOK value only must reproduce the
  // axis-free grid cell for cell (same metrics, one extra label).
  ScenarioGrid plain, with_axis;
  plain.codes({"w/o ECC", "H(7,4)"}).ber_targets({1e-8, 1e-10});
  with_axis.codes({"w/o ECC", "H(7,4)"})
      .ber_targets({1e-8, 1e-10})
      .modulations({math::Modulation::kOok});
  const auto a = SweepRunner{{1}}.run(plain);
  const auto b = SweepRunner{{1}}.run(with_axis);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].metrics, b.cells[i].metrics) << "cell " << i;
    EXPECT_EQ(a.cells[i].feasible, b.cells[i].feasible);
  }
}

TEST(SweepDeterminism, RepeatedRunsAreIdentical) {
  ScenarioGrid grid;
  grid.traffic_patterns({uniform_traffic(2e8)})
      .laser_gating({true, false})
      .noc_horizon(5e-7);
  const SweepRunner runner{{2}};
  EXPECT_EQ(runner.run(grid).csv(), runner.run(grid).csv());
}

TEST(EngineBridge, Fig6bFrontMatchesCoreSweepTradeoff) {
  // The refactored Fig. 6b bench must reproduce the pre-refactor front:
  // engine grid vs the historical core::sweep_tradeoff loop.
  const link::MwsrChannel channel{link::MwsrParams{}};
  const std::vector<double> bers{1e-6, 1e-8, 1e-10, 1e-12};

  ScenarioGrid grid;
  grid.codes({"w/o ECC", "H(71,64)", "H(7,4)"}).ber_targets(bers);
  const auto engine = SweepRunner{{2}}.run(grid);

  const auto reference =
      core::sweep_tradeoff(channel, ecc::paper_schemes(), bers);
  ASSERT_EQ(engine.cells.size(), reference.points.size());
  for (std::size_t i = 0; i < reference.points.size(); ++i) {
    ASSERT_TRUE(engine.cells[i].scheme.has_value());
    EXPECT_EQ(engine.cells[i].scheme->scheme, reference.points[i].scheme);
    EXPECT_EQ(engine.cells[i].scheme->p_channel_w,
              reference.points[i].p_channel_w);
    EXPECT_EQ(engine.cells[i].scheme->ct, reference.points[i].ct);
  }

  const auto engine_front =
      engine.pareto_front({{"ct", true}, {"p_channel_w", true}});
  const auto reference_front = reference.pareto_front();
  ASSERT_EQ(engine_front.size(), reference_front.size());
  for (std::size_t i = 0; i < engine_front.size(); ++i) {
    EXPECT_EQ(engine.cells[engine_front[i]].scheme->scheme,
              reference.points[reference_front[i]].scheme);
  }
}

TEST(CoreSweep, ParallelThreadsMatchSequential) {
  const link::MwsrChannel channel{link::MwsrParams{}};
  const std::vector<double> bers{1e-6, 1e-9, 1e-12};
  const auto sequential =
      core::sweep_tradeoff(channel, ecc::paper_schemes(), bers, {}, 1);
  const auto parallel =
      core::sweep_tradeoff(channel, ecc::paper_schemes(), bers, {}, 4);
  ASSERT_EQ(sequential.points.size(), parallel.points.size());
  for (std::size_t i = 0; i < sequential.points.size(); ++i) {
    EXPECT_EQ(sequential.points[i].scheme, parallel.points[i].scheme);
    EXPECT_EQ(sequential.points[i].p_channel_w,
              parallel.points[i].p_channel_w);
    EXPECT_EQ(sequential.points[i].energy_per_bit_j,
              parallel.points[i].energy_per_bit_j);
  }
}

}  // namespace
}  // namespace photecc::explore
