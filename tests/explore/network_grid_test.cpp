// The tiled-network evaluator: grids with a NetworkSpec route through
// NetworkSimulator, publish per-channel columns on top of the aggregate
// set, stay thread-count invariant, and leave non-network grids
// untouched.
#include <gtest/gtest.h>

#include "photecc/env/environment.hpp"
#include "photecc/explore/evaluators.hpp"
#include "photecc/explore/runner.hpp"

namespace photecc::explore {
namespace {

NetworkSpec small_network() {
  NetworkSpec net;
  net.tile_count = 8;
  net.channel_count = 2;
  return net;
}

TEST(NetworkGrid, PublishesAggregateAndPerChannelColumns) {
  ScenarioGrid grid;
  grid.network(small_network())
      .traffic_patterns({uniform_traffic(4e8)})
      .noc_horizon(2e-6);
  const auto result = SweepRunner{{1}}.run(grid);
  ASSERT_EQ(result.cells.size(), 1u);
  const CellResult& cell = result.cells[0];
  EXPECT_TRUE(cell.feasible);
  for (const auto& name : noc_cell_metric_names())
    EXPECT_TRUE(cell.metric(name).has_value()) << name;
  double delivered_sum = 0.0;
  for (std::size_t ch = 0; ch < 2; ++ch) {
    const std::string prefix = "ch" + std::to_string(ch) + "_";
    for (const auto& name : network_channel_metric_names())
      EXPECT_TRUE(cell.metric(prefix + name).has_value()) << prefix + name;
    delivered_sum += *cell.metric(prefix + "delivered");
  }
  EXPECT_EQ(delivered_sum, *cell.metric("delivered"));
}

TEST(NetworkGrid, PerChannelEnvironmentsAndCodesFeedTheSimulator) {
  NetworkSpec net;
  net.tile_count = 4;
  net.channel_count = 2;
  net.channel_codes = {"H(7,4)", "w/o ECC"};
  net.channel_environments = {
      {"hot", env::EnvironmentTimeline::ramp(2e-6, 4e-6, 0.25, 1.0)},
      {"cool", env::EnvironmentTimeline::constant(0.25)}};
  ScenarioGrid grid;
  grid.network(net)
      .traffic_patterns({uniform_traffic(4e8)})
      .ber_targets({1e-11})
      .noc_horizon(6e-6);
  const auto result = SweepRunner{{1}}.run(grid);
  ASSERT_EQ(result.cells.size(), 1u);
  const CellResult& cell = result.cells[0];
  // Environment columns appear because channels declare timelines.
  for (const auto& name : noc_env_metric_names())
    EXPECT_TRUE(cell.metric(name).has_value()) << name;
  // The hot channel is pinned to H(7,4), which survives the ramp.
  EXPECT_GT(*cell.metric("ch0_delivered"), 0.0);
}

TEST(NetworkGrid, ExportsAreThreadCountInvariant) {
  ScenarioGrid grid;
  grid.network(small_network())
      .traffic_patterns({uniform_traffic(2e8), hotspot_traffic(4e8, 1, 0.5)})
      .laser_gating({true, false})
      .noc_horizon(1e-6);
  const auto sequential = SweepRunner{{1}}.run(grid);
  const auto parallel = SweepRunner{{4}}.run(grid);
  EXPECT_EQ(sequential.csv(), parallel.csv());
  EXPECT_EQ(sequential.json(), parallel.json());
}

TEST(NetworkGrid, EvaluatorFallsBackWithoutANetworkSpec) {
  // Without a NetworkSpec the network evaluator must be
  // evaluate_noc_cell exactly, cell for cell.
  ScenarioGrid grid;
  grid.traffic_patterns({uniform_traffic(2e8)})
      .laser_gating({true, false})
      .noc_horizon(1e-6);
  for (const Scenario& scenario : grid) {
    const CellResult via_network = evaluate_network_cell(scenario);
    const CellResult via_noc = evaluate_noc_cell(scenario);
    EXPECT_EQ(via_network.metrics, via_noc.metrics);
    EXPECT_EQ(via_network.feasible, via_noc.feasible);
  }
}

TEST(NetworkGrid, TraceTrafficDrivesNetworkCells) {
  ScenarioGrid grid;
  grid.network(small_network())
      .traffic_patterns({trace_traffic(PHOTECC_SOURCE_DIR
                                       "/examples/traces/sample.trace")})
      .noc_horizon(5e-6);
  const auto result = SweepRunner{{1}}.run(grid);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_TRUE(result.cells[0].feasible);
  EXPECT_GT(*result.cells[0].metric("delivered"), 0.0);
  const auto label = result.cells[0].label("traffic");
  ASSERT_TRUE(label.has_value());
  EXPECT_EQ(label->rfind("trace@", 0), 0u);
}

TEST(NetworkGrid, RejectsMalformedNetworkSpecs) {
  {
    NetworkSpec net = small_network();
    net.mapping = "torus";
    ScenarioGrid grid;
    grid.network(net).traffic_patterns({uniform_traffic(2e8)});
    EXPECT_THROW((void)SweepRunner{{1}}.run(grid), std::invalid_argument);
  }
  {
    NetworkSpec net = small_network();
    net.channel_codes = {"H(7,4)"};  // one entry for two channels
    ScenarioGrid grid;
    grid.network(net).traffic_patterns({uniform_traffic(2e8)});
    EXPECT_THROW((void)SweepRunner{{1}}.run(grid), std::invalid_argument);
  }
}

}  // namespace
}  // namespace photecc::explore
