// LoweredPlan regression tests: the plan hot path must serialise
// byte-identically to the legacy per-cell evaluator for every axis
// shape, at any thread count and any block size.
#include "photecc/explore/plan.hpp"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "photecc/env/environment.hpp"
#include "photecc/explore/evaluators.hpp"
#include "photecc/explore/runner.hpp"

namespace photecc::explore {
namespace {

/// Legacy reference: per-cell evaluate_link_cell, sequential.
ExperimentResult legacy(const ScenarioGrid& grid) {
  const SweepRunner runner{{1}};
  return runner.run(grid,
                    SweepRunner::Evaluator{evaluate_link_cell});
}

void expect_plan_matches_legacy(const ScenarioGrid& grid,
                                const std::string& what) {
  const ExperimentResult cold = legacy(grid);
  const LoweredPlan plan{grid};
  const ExperimentResult sequential = plan.execute(1);
  const ExperimentResult parallel = plan.execute(4);
  EXPECT_EQ(cold.csv(), sequential.csv()) << what << ": csv at 1 thread";
  EXPECT_EQ(cold.json(), sequential.json()) << what << ": json at 1 thread";
  EXPECT_EQ(cold.csv(), parallel.csv()) << what << ": csv at 4 threads";
  EXPECT_EQ(cold.json(), parallel.json()) << what << ": json at 4 threads";
}

link::MwsrParams short_link() {
  link::MwsrParams params;
  params.waveguide_length_m = 0.02;
  return params;
}

// Four grids, each with a different axis as the fastest-varying
// declared axis (the canonical axis order is fixed, so the innermost
// DECLARED axis changes per grid).

TEST(LoweredPlan, CodeInnermostGridMatchesLegacyByteForByte) {
  ScenarioGrid grid;
  grid.codes(paper_scheme_names())
      .ber_targets({1e-8, 1e-10})
      .link_variants({{"6 cm", link::MwsrParams{}}, {"2 cm", short_link()}});
  expect_plan_matches_legacy(grid, "code-innermost");
}

TEST(LoweredPlan, BerInnermostGridMatchesLegacyByteForByte) {
  ScenarioGrid grid;
  grid.ber_targets({1e-7, 1e-9, 1e-11}).oni_counts({4, 12});
  expect_plan_matches_legacy(grid, "ber-innermost");
}

TEST(LoweredPlan, LinkInnermostGridMatchesLegacyByteForByte) {
  ScenarioGrid grid;
  grid.link_variants({{"6 cm", link::MwsrParams{}}, {"2 cm", short_link()}})
      .modulations({math::Modulation::kOok, math::Modulation::kPam4});
  expect_plan_matches_legacy(grid, "link-innermost");
}

TEST(LoweredPlan, OniInnermostGridMatchesLegacyByteForByte) {
  ScenarioGrid grid;
  grid.oni_counts({4, 8, 16})
      .modulations({math::Modulation::kPam4})
      .environments(
          {{"static", env::EnvironmentTimeline::constant(0.25)},
           {"hot", env::EnvironmentTimeline::constant(0.6)}});
  expect_plan_matches_legacy(grid, "oni-innermost");
}

TEST(LoweredPlan, AxislessGridEvaluatesTheSingleBaseCell) {
  const ScenarioGrid grid;
  expect_plan_matches_legacy(grid, "axisless");
  const LoweredPlan plan{grid};
  const auto result = plan.execute(1);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_TRUE(result.cells[0].labels.empty());
}

TEST(LoweredPlan, BlockSizeNeverChangesTheBytes) {
  ScenarioGrid grid;
  grid.codes(paper_scheme_names()).ber_targets({1e-8, 1e-9, 1e-10});
  const ExperimentResult reference = LoweredPlan{grid}.execute(1);
  for (const std::size_t block_size : {1u, 2u, 7u, 1024u}) {
    PlanOptions options;
    options.block_size = block_size;
    const ExperimentResult result =
        LoweredPlan{grid, options}.execute(4);
    EXPECT_EQ(reference.csv(), result.csv()) << "block " << block_size;
    EXPECT_EQ(reference.json(), result.json()) << "block " << block_size;
  }
}

TEST(LoweredPlan, RejectsNocGrids) {
  ScenarioGrid grid;
  grid.laser_gating({true, false});
  EXPECT_THROW(LoweredPlan{grid}, std::invalid_argument);
}

TEST(LoweredPlan, StatsCountHoistingAndReuse) {
  ScenarioGrid grid;
  grid.codes(paper_scheme_names())
      .ber_targets({1e-8, 1e-10})
      .oni_counts({4, 12});
  const auto result = LoweredPlan{grid}.execute(1);
  ASSERT_TRUE(result.stats.has_value());
  const SweepStats& stats = *result.stats;
  EXPECT_EQ(stats.cells, 12u);
  EXPECT_EQ(stats.channels_lowered, 2u);   // one per ONI count
  EXPECT_EQ(stats.root_solves, 6u);        // codes x BERs, shared
  EXPECT_EQ(stats.warm_reuses, 6u);
  EXPECT_DOUBLE_EQ(stats.warm_hit_rate(), 0.5);
  EXPECT_GT(stats.solver_iterations, 0u);  // H(7,4)/H(71,64) Brent work
}

TEST(SweepRunner, AutoRouteUsesThePlanForLinkGrids) {
  ScenarioGrid grid;
  grid.codes(paper_scheme_names()).ber_targets({1e-8});
  const SweepRunner runner{{1}};
  const auto result = runner.run(grid);
  EXPECT_TRUE(result.stats.has_value());
  EXPECT_EQ(result.csv(), legacy(grid).csv());
}

TEST(SweepRunner, NocGridsStillRunTheSimulatorEvaluator) {
  ScenarioGrid grid;
  grid.laser_gating({true});
  grid.noc_horizon(2e-7);
  const SweepRunner runner{{1}};
  const auto result = runner.run(grid);
  EXPECT_FALSE(result.stats.has_value());
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_TRUE(result.cells[0].metric("delivered").has_value());
}

}  // namespace
}  // namespace photecc::explore
