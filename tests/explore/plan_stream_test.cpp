// Block-streaming LoweredPlan::execute: blocks are delivered in
// ascending order at every thread count, each block's cells are final
// when its callback runs, and the assembled result is byte-identical to
// the one-shot execute.
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "photecc/explore/plan.hpp"
#include "photecc/explore/result.hpp"
#include "photecc/spec/registries.hpp"
#include "photecc/spec/run.hpp"

namespace {

using photecc::explore::CellResult;
using photecc::explore::ExperimentResult;
using photecc::explore::LoweredPlan;
using photecc::explore::write_cell_json;

/// A link-only grid with enough cells (3 codes x 4 BERs x 2 ONI counts
/// = 24) to span several small blocks.
photecc::explore::ScenarioGrid streaming_grid() {
  auto spec = photecc::spec::preset_registry().make("fig6b", "preset");
  spec.oni_counts = {8, 12};
  return photecc::spec::lower(spec);
}

std::string cell_json(const CellResult& cell) {
  std::ostringstream os;
  write_cell_json(os, cell);
  return os.str();
}

TEST(PlanStream, BlocksArriveInOrderAndComplete) {
  const LoweredPlan plan(streaming_grid(), {.block_size = 5});
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    std::vector<std::pair<std::size_t, std::size_t>> blocks;
    std::vector<std::string> streamed;
    const ExperimentResult result = plan.execute(
        threads, [&](std::size_t begin, std::size_t end,
                     const std::vector<CellResult>& cells) {
          blocks.emplace_back(begin, end);
          for (std::size_t i = begin; i < end; ++i)
            streamed.push_back(cell_json(cells[i]));
        });

    // The fixed partition of parallel_for_blocks: [0,5), [5,10), ...
    ASSERT_EQ(blocks.size(), (plan.size() + 4) / 5) << threads;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      EXPECT_EQ(blocks[b].first, b * 5) << threads;
      EXPECT_EQ(blocks[b].second, std::min(plan.size(), b * 5 + 5))
          << threads;
    }

    // Every cell was final at delivery time: the streamed serialisation
    // matches the assembled result's, cell for cell.
    ASSERT_EQ(streamed.size(), result.cells.size()) << threads;
    for (std::size_t i = 0; i < streamed.size(); ++i)
      EXPECT_EQ(streamed[i], cell_json(result.cells[i])) << threads;
  }
}

TEST(PlanStream, AssembledResultMatchesOneShotByteForByte) {
  const LoweredPlan plan(streaming_grid(), {.block_size = 7});
  const std::string reference = plan.execute(1).json();
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    std::size_t calls = 0;
    const ExperimentResult streamed = plan.execute(
        threads,
        [&](std::size_t, std::size_t, const std::vector<CellResult>&) {
          ++calls;
        });
    EXPECT_EQ(streamed.json(), reference) << threads;
    EXPECT_EQ(streamed.csv(), plan.execute(1).csv()) << threads;
    EXPECT_EQ(calls, (plan.size() + 6) / 7) << threads;
  }
}

TEST(PlanStream, EmptyCallbackMatchesPlainExecute) {
  const LoweredPlan plan(streaming_grid(), {.block_size = 64});
  EXPECT_EQ(plan.execute(2, {}).json(), plan.execute(2).json());
}

TEST(SweepStats, MergeAddsEveryCounter) {
  photecc::explore::SweepStats a;
  a.cells = 10;
  a.channels_lowered = 2;
  a.root_solves = 4;
  a.solver_iterations = 100;
  a.warm_reuses = 6;
  a.lower_time_s = 0.5;
  a.execute_time_s = 1.5;
  photecc::explore::SweepStats b = a;
  b.cells = 3;
  a.merge(b);
  EXPECT_EQ(a.cells, 13u);
  EXPECT_EQ(a.channels_lowered, 4u);
  EXPECT_EQ(a.root_solves, 8u);
  EXPECT_EQ(a.solver_iterations, 200u);
  EXPECT_EQ(a.warm_reuses, 12u);
  EXPECT_DOUBLE_EQ(a.lower_time_s, 1.0);
  EXPECT_DOUBLE_EQ(a.execute_time_s, 3.0);
}

TEST(SweepStats, AsReplayKeepsCellsAndZeroesWork) {
  photecc::explore::SweepStats run;
  run.cells = 24;
  run.channels_lowered = 2;
  run.root_solves = 12;
  run.solver_iterations = 500;
  run.warm_reuses = 12;
  run.lower_time_s = 0.25;
  run.execute_time_s = 0.75;
  const photecc::explore::SweepStats replay = run.as_replay();
  EXPECT_EQ(replay.cells, 24u);
  EXPECT_EQ(replay.channels_lowered, 0u);
  EXPECT_EQ(replay.root_solves, 0u);
  EXPECT_EQ(replay.solver_iterations, 0u);
  EXPECT_EQ(replay.warm_reuses, 0u);
  EXPECT_EQ(replay.lower_time_s, 0.0);
  EXPECT_EQ(replay.execute_time_s, 0.0);

  // The serve accounting pattern: a compute run merged in full plus a
  // cached replay counts every cell but only the first run's work.
  photecc::explore::SweepStats lifetime;
  lifetime.merge(run);
  lifetime.merge(run.as_replay());
  EXPECT_EQ(lifetime.cells, 48u);
  EXPECT_EQ(lifetime.root_solves, 12u);
  EXPECT_DOUBLE_EQ(lifetime.execute_time_s, 0.75);
}

}  // namespace
