#include "photecc/explore/grid.hpp"

#include <gtest/gtest.h>

#include <set>

namespace photecc::explore {
namespace {

TEST(ScenarioGrid, EmptyGridHoldsTheSingleBaseCell) {
  const ScenarioGrid grid;
  EXPECT_EQ(grid.size(), 1u);
  const Scenario s = grid.at(0);
  EXPECT_EQ(s.index, 0u);
  EXPECT_FALSE(s.code.has_value());
  EXPECT_TRUE(s.labels.empty());
  EXPECT_FALSE(s.traffic.has_value());
}

TEST(ScenarioGrid, SizeIsTheProductOfDeclaredAxes) {
  ScenarioGrid grid;
  grid.codes({"w/o ECC", "H(7,4)"})
      .ber_targets({1e-6, 1e-9, 1e-12})
      .oni_counts({8, 12})
      .laser_gating({true, false});
  EXPECT_EQ(grid.size(), 2u * 3u * 2u * 2u);
}

TEST(ScenarioGrid, CodeAxisVariesFastestThenBer) {
  // The historical core::sweep_tradeoff order: BER-major, code-minor.
  ScenarioGrid grid;
  grid.codes({"a", "b", "c"}).ber_targets({1e-6, 1e-9});
  ASSERT_EQ(grid.size(), 6u);
  EXPECT_EQ(*grid.at(0).code, "a");
  EXPECT_EQ(*grid.at(1).code, "b");
  EXPECT_EQ(*grid.at(2).code, "c");
  EXPECT_EQ(*grid.at(3).code, "a");
  EXPECT_DOUBLE_EQ(grid.at(0).target_ber, 1e-6);
  EXPECT_DOUBLE_EQ(grid.at(2).target_ber, 1e-6);
  EXPECT_DOUBLE_EQ(grid.at(3).target_ber, 1e-9);
  EXPECT_DOUBLE_EQ(grid.at(5).target_ber, 1e-9);
}

TEST(ScenarioGrid, AtThrowsPastTheEnd) {
  ScenarioGrid grid;
  grid.codes({"a"});
  EXPECT_THROW((void)grid.at(1), std::out_of_range);
}

TEST(ScenarioGrid, LabelsNameEveryDeclaredAxis) {
  ScenarioGrid grid;
  grid.codes({"H(7,4)"})
      .ber_targets({1e-9})
      .oni_counts({16})
      .policies({core::Policy::kMinTime});
  const Scenario s = grid.at(0);
  ASSERT_EQ(s.labels.size(), 4u);
  EXPECT_EQ(s.labels[0].first, "code");
  EXPECT_EQ(s.labels[0].second, "H(7,4)");
  EXPECT_EQ(s.labels[1].first, "target_ber");
  EXPECT_EQ(s.labels[2].first, "oni_count");
  EXPECT_EQ(s.labels[2].second, "16");
  EXPECT_EQ(s.labels[3].first, "policy");
}

TEST(ScenarioGrid, OniAxisOverridesBothLinkAndSystemConfig) {
  ScenarioGrid grid;
  grid.oni_counts({24});
  const Scenario s = grid.at(0);
  EXPECT_EQ(s.link.oni_count, 24u);
  EXPECT_EQ(s.system.oni_count, 24u);
}

TEST(ScenarioGrid, OniAxisAppliesOnTopOfLinkVariants) {
  link::MwsrParams shorter;
  shorter.waveguide_length_m = 0.02;
  ScenarioGrid grid;
  grid.link_variants({{"2 cm", shorter}}).oni_counts({4});
  const Scenario s = grid.at(0);
  EXPECT_DOUBLE_EQ(s.link.waveguide_length_m, 0.02);
  EXPECT_EQ(s.link.oni_count, 4u);
}

TEST(ScenarioGrid, NocAxesAreDetected) {
  ScenarioGrid link_only;
  link_only.codes({"H(7,4)"}).ber_targets({1e-9});
  EXPECT_FALSE(link_only.has_noc_axes());

  ScenarioGrid noc;
  noc.traffic_patterns({uniform_traffic(1e8)});
  EXPECT_TRUE(noc.has_noc_axes());

  ScenarioGrid gating_only;
  gating_only.laser_gating({true, false});
  EXPECT_TRUE(gating_only.has_noc_axes());
}

TEST(ScenarioGrid, PerCellSeedsAreStableAndDistinct) {
  ScenarioGrid grid;
  grid.codes({"a", "b"}).ber_targets({1e-6, 1e-9, 1e-12});
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(grid.at(i).seed, grid.at(i).seed);  // stable re-materialise
    seeds.insert(grid.at(i).seed);
  }
  EXPECT_EQ(seeds.size(), grid.size());  // no collisions on this grid
}

TEST(ScenarioGrid, BaseSeedShiftsEveryCellSeed) {
  ScenarioGrid a, b;
  a.codes({"x"}).base_seed(1);
  b.codes({"x"}).base_seed(2);
  EXPECT_NE(a.at(0).seed, b.at(0).seed);
}

TEST(ScenarioGrid, IteratorEnumeratesAllCellsInOrder) {
  ScenarioGrid grid;
  grid.codes({"a", "b"}).ber_targets({1e-6, 1e-9});
  std::size_t expected = 0;
  for (const Scenario& s : grid) {
    EXPECT_EQ(s.index, expected);
    ++expected;
  }
  EXPECT_EQ(expected, grid.size());
}

TEST(ScenarioGrid, ModulationAxisIsOutermostAndLabelled) {
  ScenarioGrid grid;
  grid.codes({"a", "b"})
      .ber_targets({1e-6, 1e-9})
      .modulations({math::Modulation::kOok, math::Modulation::kPam4});
  ASSERT_EQ(grid.size(), 8u);
  // Outermost: the first half of the enumeration is the full OOK grid,
  // in exactly the order the grid enumerates without the axis.
  ScenarioGrid ook_only;
  ook_only.codes({"a", "b"}).ber_targets({1e-6, 1e-9});
  for (std::size_t i = 0; i < 4; ++i) {
    const Scenario with_axis = grid.at(i);
    const Scenario without_axis = ook_only.at(i);
    EXPECT_EQ(with_axis.link.modulation, math::Modulation::kOok);
    EXPECT_EQ(with_axis.code, without_axis.code);
    EXPECT_EQ(with_axis.target_ber, without_axis.target_ber);
    EXPECT_EQ(with_axis.label("modulation"),
              std::make_optional<std::string>("ook"));
  }
  for (std::size_t i = 4; i < 8; ++i) {
    const Scenario s = grid.at(i);
    EXPECT_EQ(s.link.modulation, math::Modulation::kPam4);
    EXPECT_EQ(s.label("modulation"),
              std::make_optional<std::string>("pam4"));
  }
}

TEST(ScenarioGrid, UndeclaredModulationAxisLeavesOokDefault) {
  ScenarioGrid grid;
  grid.codes({"a"});
  const Scenario s = grid.at(0);
  EXPECT_EQ(s.link.modulation, math::Modulation::kOok);
  EXPECT_FALSE(s.label("modulation").has_value());
  // A modulation-only grid still evaluates through the link evaluator.
  ScenarioGrid modulation_only;
  modulation_only.modulations({math::Modulation::kPam4});
  EXPECT_FALSE(modulation_only.has_noc_axes());
  EXPECT_EQ(modulation_only.at(0).link.modulation,
            math::Modulation::kPam4);
}

TEST(ScenarioGrid, EnvironmentAxisIsOutermost) {
  ScenarioGrid grid;
  grid.codes({"a", "b"}).environments(
      {{"static", env::EnvironmentTimeline::constant(0.25)},
       {"hot", env::EnvironmentTimeline::constant(0.75)}});
  ASSERT_EQ(grid.size(), 4u);
  // First half: the base grid, with the first environment applied.
  for (std::size_t i = 0; i < 2; ++i) {
    const Scenario s = grid.at(i);
    ASSERT_TRUE(s.link.environment.has_value());
    EXPECT_DOUBLE_EQ(s.link.environment->sample_at(0.0).activity, 0.25);
    EXPECT_EQ(s.label("environment"),
              std::make_optional<std::string>("static"));
  }
  for (std::size_t i = 2; i < 4; ++i) {
    const Scenario s = grid.at(i);
    EXPECT_DOUBLE_EQ(s.link.environment->sample_at(0.0).activity, 0.75);
    EXPECT_EQ(s.label("environment"),
              std::make_optional<std::string>("hot"));
  }
  // Undeclared: no label, no override — the alias's static default.
  ScenarioGrid plain;
  plain.codes({"a"});
  EXPECT_FALSE(plain.at(0).link.environment.has_value());
  EXPECT_FALSE(plain.at(0).label("environment").has_value());
  // The environment axis alone does not force the NoC evaluator.
  ScenarioGrid env_only;
  env_only.environments(
      {{"ramp", env::EnvironmentTimeline::ramp(0.0, 1e-6, 0.2, 0.8)}});
  EXPECT_FALSE(env_only.has_noc_axes());
}

}  // namespace
}  // namespace photecc::explore
