// The cooling axis of ScenarioGrid: placement between code and BER,
// off/wN labelling, the gated metric columns, and byte-identity of the
// lowered plan against the legacy per-cell evaluator.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "photecc/explore/evaluators.hpp"
#include "photecc/explore/grid.hpp"
#include "photecc/explore/plan.hpp"
#include "photecc/explore/runner.hpp"

namespace photecc::explore {
namespace {

link::MwsrParams hot_link() {
  link::MwsrParams params;
  params.waveguide_length_m = 0.14;
  params.oni_count = 16;
  return params;
}

TEST(CoolingAxis, SitsBetweenCodeAndBerAndWrapsTheCode) {
  ScenarioGrid grid;
  grid.codes({"H(71,64)", "BCH(15,7,2)"})
      .cooling_weights({0, 3})
      .ber_targets({1e-9, 1e-11});
  ASSERT_EQ(grid.size(), 8u);

  // Code varies fastest, then cooling weight, then BER.
  EXPECT_EQ(*grid.at(0).code, "H(71,64)");
  EXPECT_EQ(*grid.at(1).code, "BCH(15,7,2)");
  EXPECT_EQ(*grid.at(2).code, "COOL(H(71,64),3)");
  EXPECT_EQ(*grid.at(3).code, "COOL(BCH(15,7,2),3)");
  EXPECT_DOUBLE_EQ(grid.at(3).target_ber, 1e-9);
  EXPECT_DOUBLE_EQ(grid.at(4).target_ber, 1e-11);
  EXPECT_EQ(*grid.at(6).code, "COOL(H(71,64),3)");

  // Labels: the code label keeps the base name; the wrap lives in the
  // cooling label ("off" for weight 0, "w<N>" otherwise).
  const Scenario off = grid.at(0);
  ASSERT_EQ(off.labels.size(), 3u);
  EXPECT_EQ(off.labels[0], (std::pair<std::string, std::string>{
                               "code", "H(71,64)"}));
  EXPECT_EQ(off.labels[1], (std::pair<std::string, std::string>{
                               "cooling", "off"}));
  EXPECT_EQ(off.labels[2].first, "target_ber");
  EXPECT_EQ(off.cooling_weight, std::make_optional<std::size_t>(0));

  const Scenario on = grid.at(2);
  EXPECT_EQ(on.label("code"), std::make_optional<std::string>("H(71,64)"));
  EXPECT_EQ(on.label("cooling"), std::make_optional<std::string>("w3"));
  EXPECT_EQ(on.cooling_weight, std::make_optional<std::size_t>(3));
}

TEST(CoolingAxis, UndeclaredAxisLeavesScenariosUntouched) {
  ScenarioGrid grid;
  grid.codes({"H(7,4)"});
  const Scenario s = grid.at(0);
  EXPECT_FALSE(s.cooling_weight.has_value());
  EXPECT_FALSE(s.label("cooling").has_value());
}

TEST(CoolingAxis, WeightWithoutACodeAxisWrapsTheUncodedBase) {
  ScenarioGrid grid;
  grid.cooling_weights({16});
  EXPECT_EQ(*grid.at(0).code, "COOL(w/o ECC,16)");
}

TEST(CoolingAxis, MetricColumnsAppearOnlyWithTheAxis) {
  ASSERT_EQ(cooling_metric_names(),
            (std::vector<std::string>{"duty_bound", "thermal_headroom_w"}));

  ScenarioGrid with_axis;
  with_axis.codes({"BCH(15,7,2)"})
      .cooling_weights({0, 3})
      .ber_targets({1e-11})
      .base_link(hot_link());
  const CellResult off = evaluate_link_cell(with_axis.at(0));
  const CellResult on = evaluate_link_cell(with_axis.at(1));
  ASSERT_TRUE(off.metric("duty_bound").has_value());
  ASSERT_TRUE(on.metric("duty_bound").has_value());
  EXPECT_DOUBLE_EQ(*off.metric("duty_bound"), 1.0);
  EXPECT_LT(*on.metric("duty_bound"), 1.0);
  EXPECT_TRUE(on.metric("thermal_headroom_w").has_value());

  ScenarioGrid without_axis;
  without_axis.codes({"BCH(15,7,2)"}).ber_targets({1e-11});
  const CellResult plain = evaluate_link_cell(without_axis.at(0));
  EXPECT_FALSE(plain.metric("duty_bound").has_value());
  EXPECT_FALSE(plain.metric("thermal_headroom_w").has_value());
}

TEST(CoolingAxis, PlanMatchesLegacyByteForByte) {
  ScenarioGrid grid;
  grid.codes({"w/o ECC", "H(71,64)"})
      .cooling_weights({0, 16, 32})
      .ber_targets({1e-9, 1e-11})
      .base_link(hot_link());

  const SweepRunner sequential{{1}};
  const ExperimentResult legacy =
      sequential.run(grid, SweepRunner::Evaluator{evaluate_link_cell});
  const ExperimentResult plan1 = LoweredPlan{grid}.execute(1);
  const ExperimentResult plan4 = LoweredPlan{grid}.execute(4);
  EXPECT_EQ(legacy.csv(), plan1.csv());
  EXPECT_EQ(legacy.json(), plan1.json());
  EXPECT_EQ(legacy.csv(), plan4.csv());
  EXPECT_EQ(legacy.json(), plan4.json());

  // The auto-routed runner takes the plan path for this grid and lands
  // on the same bytes.
  const ExperimentResult routed = sequential.run(grid);
  EXPECT_TRUE(routed.stats.has_value());
  EXPECT_EQ(routed.csv(), legacy.csv());
}

}  // namespace
}  // namespace photecc::explore
