#include "photecc/photonics/photodetector.hpp"

#include <gtest/gtest.h>

#include "photecc/math/units.hpp"

namespace photecc::photonics {
namespace {

TEST(Photodetector, PaperEquationFour) {
  // SNR = R (OPsignal - OPxt) / i_n with R = 1 A/W, i_n = 4 uA:
  // 90 uW signal, 2 uW crosstalk -> SNR = 22.
  const Photodetector pd;
  EXPECT_NEAR(pd.snr(90e-6, 2e-6), 22.0, 1e-12);
}

TEST(Photodetector, SnrClampsToZeroWhenCrosstalkDominates) {
  const Photodetector pd;
  EXPECT_DOUBLE_EQ(pd.snr(1e-6, 2e-6), 0.0);
}

TEST(Photodetector, RequiredSignalPowerInvertsSnr) {
  const Photodetector pd;
  for (const double snr : {5.0, 11.05, 22.5}) {
    for (const double xt : {0.0, 1e-6, 5e-6}) {
      const double signal = pd.required_signal_power(snr, xt);
      EXPECT_NEAR(pd.snr(signal, xt), snr, 1e-9)
          << "snr=" << snr << " xt=" << xt;
    }
  }
}

TEST(Photodetector, PhotocurrentFollowsResponsivity) {
  PhotodetectorParams params;
  params.responsivity_a_per_w = 0.8;
  const Photodetector pd(params);
  EXPECT_NEAR(pd.photocurrent(100e-6), 80e-6, 1e-15);
}

TEST(Photodetector, CouplingTransmissionFromLossDb) {
  PhotodetectorParams params;
  params.coupling_loss_db = 3.0103;
  const Photodetector pd(params);
  EXPECT_NEAR(pd.coupling_transmission(), 0.5, 1e-4);
}

TEST(Photodetector, Validation) {
  PhotodetectorParams params;
  params.responsivity_a_per_w = 0.0;
  EXPECT_THROW(Photodetector{params}, std::invalid_argument);
  params = PhotodetectorParams{};
  params.dark_current_a = -1e-6;
  EXPECT_THROW(Photodetector{params}, std::invalid_argument);
  params = PhotodetectorParams{};
  params.coupling_loss_db = -0.1;
  EXPECT_THROW(Photodetector{params}, std::invalid_argument);

  const Photodetector pd;
  EXPECT_THROW((void)pd.snr(-1e-6, 0.0), std::invalid_argument);
  EXPECT_THROW((void)pd.snr(1e-6, -1e-6), std::invalid_argument);
  EXPECT_THROW((void)pd.required_signal_power(-1.0, 0.0),
               std::invalid_argument);
}

TEST(Photodetector, HigherDarkCurrentNeedsMoreSignal) {
  PhotodetectorParams noisy;
  noisy.dark_current_a = 8e-6;
  const Photodetector quiet_pd;  // 4 uA default
  const Photodetector noisy_pd(noisy);
  EXPECT_GT(noisy_pd.required_signal_power(22.5, 0.0),
            quiet_pd.required_signal_power(22.5, 0.0));
}

TEST(Photodetector, PamBoundarySnrSplitsTheEye) {
  const Photodetector pd;
  const double op = 500e-6;
  const double full = pd.snr(op, 0.0);
  EXPECT_DOUBLE_EQ(pd.pam_boundary_snr(op, 0.0, 2), full);
  EXPECT_DOUBLE_EQ(pd.pam_boundary_snr(op, 0.0, 4), full / 9.0);
  EXPECT_DOUBLE_EQ(pd.pam_boundary_snr(op, 0.0, 8), full / 49.0);
  EXPECT_THROW((void)pd.pam_boundary_snr(op, 0.0, 1),
               std::invalid_argument);
}

TEST(Photodetector, PamRequiredSignalPowerInvertsBoundarySnr) {
  const Photodetector pd;
  const double crosstalk = 5e-6;
  for (const std::size_t levels :
       {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    const double op = pd.required_signal_power(22.5, crosstalk, levels);
    EXPECT_NEAR(pd.pam_boundary_snr(op, crosstalk, levels), 22.5, 1e-9)
        << levels;
  }
  // The OOK overloads are the levels == 2 special case.
  EXPECT_DOUBLE_EQ(pd.required_signal_power(22.5, crosstalk, 2),
                   pd.required_signal_power(22.5, crosstalk));
  EXPECT_THROW((void)pd.required_signal_power(22.5, crosstalk, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace photecc::photonics
