#include "photecc/photonics/laser.hpp"

#include <gtest/gtest.h>

#include "photecc/math/units.hpp"

namespace photecc::photonics {
namespace {

constexpr double kActivity = 0.25;  // the paper's evaluation activity

TEST(CalibratedVcsel, LinearRegionHasConstantEfficiency) {
  const CalibratedVcselModel laser;
  for (const double op_uw : {50.0, 100.0, 250.0, 500.0}) {
    const auto eta = laser.efficiency(math::micro_watts(op_uw), kActivity);
    ASSERT_TRUE(eta.has_value());
    EXPECT_NEAR(*eta, 0.052, 1e-12) << op_uw << " uW";
  }
}

TEST(CalibratedVcsel, ExponentialRegionDegradesEfficiency) {
  const CalibratedVcselModel laser;
  const auto eta500 = laser.efficiency(500e-6, kActivity);
  const auto eta650 = laser.efficiency(650e-6, kActivity);
  ASSERT_TRUE(eta500 && eta650);
  EXPECT_LT(*eta650, *eta500);
}

TEST(CalibratedVcsel, Figure4CalibrationPoint) {
  // The paper's uncoded operating point at BER 1e-11: ~655 uW out,
  // 14.35 mW electrical.
  const CalibratedVcselModel laser;
  const auto p = laser.electrical_power(655e-6, kActivity);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(math::as_milli(*p), 14.35, 0.2);
}

TEST(CalibratedVcsel, CurveIsContinuousAtTheKnee) {
  const CalibratedVcselModel laser;
  const auto below = laser.electrical_power(500e-6 - 1e-12, kActivity);
  const auto above = laser.electrical_power(500e-6 + 1e-12, kActivity);
  ASSERT_TRUE(below && above);
  EXPECT_NEAR(*below, *above, 1e-9);
}

TEST(CalibratedVcsel, MonotoneIncreasing) {
  const CalibratedVcselModel laser;
  double previous = 0.0;
  for (double op = 10e-6; op <= 700e-6; op += 10e-6) {
    const auto p = laser.electrical_power(op, kActivity);
    ASSERT_TRUE(p.has_value()) << op;
    EXPECT_GT(*p, previous);
    previous = *p;
  }
}

TEST(CalibratedVcsel, SevenHundredMicrowattCeiling) {
  const CalibratedVcselModel laser;
  EXPECT_NEAR(laser.max_optical_power(kActivity), 700e-6, 1e-12);
  EXPECT_TRUE(laser.electrical_power(700e-6, kActivity).has_value());
  EXPECT_FALSE(laser.electrical_power(701e-6, kActivity).has_value());
}

TEST(CalibratedVcsel, HigherActivityMeansWorseLaser) {
  const CalibratedVcselModel laser;
  const auto cool = laser.electrical_power(400e-6, 0.25);
  const auto hot = laser.electrical_power(400e-6, 0.75);
  ASSERT_TRUE(cool && hot);
  EXPECT_GT(*hot, *cool);
  EXPECT_LT(laser.max_optical_power(0.75),
            laser.max_optical_power(0.25));
}

TEST(CalibratedVcsel, InputValidation) {
  const CalibratedVcselModel laser;
  EXPECT_THROW((void)laser.electrical_power(-1e-6, kActivity),
               std::invalid_argument);
  EXPECT_THROW((void)laser.electrical_power(1e-6, -0.1),
               std::invalid_argument);
  EXPECT_THROW((void)laser.electrical_power(1e-6, 1.1),
               std::invalid_argument);
  CalibratedVcselParams bad;
  bad.base_efficiency = 0.0;
  EXPECT_THROW(CalibratedVcselModel{bad}, std::invalid_argument);
  bad = CalibratedVcselParams{};
  bad.max_optical_w = bad.knee_optical_w / 2.0;
  EXPECT_THROW(CalibratedVcselModel{bad}, std::invalid_argument);
}

TEST(CalibratedVcsel, ZeroOpticalPowerIsFree) {
  const CalibratedVcselModel laser;
  const auto p = laser.electrical_power(0.0, kActivity);
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(*p, 0.0);
}

// ---------------------------------------------------------------------
// Self-heating model
// ---------------------------------------------------------------------

TEST(SelfHeatingVcsel, NearColdEfficiencyAtLowPower) {
  const SelfHeatingVcselModel laser;
  const auto eta = laser.efficiency(10e-6, kActivity);
  ASSERT_TRUE(eta.has_value());
  EXPECT_NEAR(*eta, laser.params().cold_efficiency, 0.01);
}

TEST(SelfHeatingVcsel, EfficiencyDropsWithOutputPower) {
  const SelfHeatingVcselModel laser;
  const auto low = laser.efficiency(50e-6, kActivity);
  const auto high = laser.efficiency(
      0.9 * laser.max_optical_power(kActivity), kActivity);
  ASSERT_TRUE(low && high);
  EXPECT_LT(*high, *low);
}

TEST(SelfHeatingVcsel, FoldYieldsFiniteMaximum) {
  const SelfHeatingVcselModel laser;
  const double op_max = laser.max_optical_power(kActivity);
  EXPECT_GT(op_max, 100e-6);
  EXPECT_LT(op_max, 5e-3);
  EXPECT_TRUE(laser.electrical_power(op_max * 0.999, kActivity));
  EXPECT_FALSE(laser.electrical_power(op_max * 1.01, kActivity));
}

TEST(SelfHeatingVcsel, JunctionHeatsWithActivityAndPower) {
  const SelfHeatingVcselModel laser;
  const auto t_low = laser.junction_temperature(50e-6, 0.1);
  const auto t_high_power = laser.junction_temperature(300e-6, 0.1);
  const auto t_high_activity = laser.junction_temperature(50e-6, 0.9);
  ASSERT_TRUE(t_low && t_high_power && t_high_activity);
  EXPECT_GT(*t_high_power, *t_low);
  EXPECT_GT(*t_high_activity, *t_low);
}

TEST(SelfHeatingVcsel, StableRootIsReturned) {
  // P should be close to OP/eta_cold for small OP (the unstable root is
  // much larger).
  const SelfHeatingVcselModel laser;
  const auto p = laser.electrical_power(50e-6, kActivity);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(*p, 50e-6 / laser.params().cold_efficiency, 0.15e-3);
}

TEST(DefaultLaserModel, IsTheCalibratedCurve) {
  const auto model = default_laser_model();
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->name(), "calibrated-vcsel");
  // Shared singleton.
  EXPECT_EQ(model.get(), default_laser_model().get());
}

}  // namespace
}  // namespace photecc::photonics
