#include "photecc/photonics/waveguide.hpp"

#include <gtest/gtest.h>

#include "photecc/math/units.hpp"

namespace photecc::photonics {
namespace {

TEST(Waveguide, PaperLossOverSixCentimetres) {
  const Waveguide wg(0.274, 0.06);  // paper: 0.274 dB/cm, 6 cm
  EXPECT_NEAR(wg.total_loss_db(), 1.644, 1e-12);
  EXPECT_NEAR(wg.transmission(), math::from_db(-1.644), 1e-12);
}

TEST(Waveguide, ZeroLossAndZeroLength) {
  EXPECT_DOUBLE_EQ(Waveguide(0.0, 0.06).transmission(), 1.0);
  EXPECT_DOUBLE_EQ(Waveguide(0.274, 0.0).transmission(), 1.0);
}

TEST(Waveguide, TransmissionComposesMultiplicatively) {
  const Waveguide wg(0.274, 0.06);
  const double half = wg.transmission_over(0.03);
  EXPECT_NEAR(half * half, wg.transmission(), 1e-12);
}

TEST(Waveguide, PartialDistanceValidation) {
  const Waveguide wg(0.274, 0.06);
  EXPECT_THROW((void)wg.transmission_over(-0.01), std::out_of_range);
  EXPECT_THROW((void)wg.transmission_over(0.07), std::out_of_range);
  EXPECT_NO_THROW((void)wg.transmission_over(0.06));
}

TEST(Waveguide, ConstructionValidation) {
  EXPECT_THROW(Waveguide(-0.1, 0.06), std::invalid_argument);
  EXPECT_THROW(Waveguide(0.274, -1.0), std::invalid_argument);
}

TEST(Waveguide, LongerGuideLosesMore) {
  const Waveguide short_wg(0.274, 0.03);
  const Waveguide long_wg(0.274, 0.12);
  EXPECT_GT(short_wg.transmission(), long_wg.transmission());
}

}  // namespace
}  // namespace photecc::photonics
