#include "photecc/photonics/microring.hpp"

#include <gtest/gtest.h>

#include "photecc/math/units.hpp"

namespace photecc::photonics {
namespace {

TEST(MicroRing, DefaultsReproducePaperExtinctionRatio) {
  const MicroRing ring{MicroRingParams{}};
  EXPECT_NEAR(math::to_db(ring.extinction_ratio()), 6.9, 1e-9);
}

TEST(MicroRing, FwhmFollowsQualityFactor) {
  MicroRingParams params;
  params.resonance_wavelength_m = 1520.25e-9;
  params.quality_factor = 65000.0;
  const MicroRing ring(params);
  EXPECT_NEAR(ring.fwhm(), 1520.25e-9 / 65000.0, 1e-18);
  EXPECT_NEAR(ring.hwhm(), ring.fwhm() / 2.0, 1e-20);
}

TEST(MicroRing, ThroughIsLorentzianNotchAroundResonance) {
  const MicroRing ring{MicroRingParams{}};
  const double res = 1520.25e-9;
  // Deepest at resonance, symmetric, approaching the baseline far away.
  const double at_res = ring.through(res, res);
  const double at_hwhm_left = ring.through(res - ring.hwhm(), res);
  const double at_hwhm_right = ring.through(res + ring.hwhm(), res);
  const double far = ring.through(res + 100.0 * ring.hwhm(), res);
  EXPECT_LT(at_res, at_hwhm_left);
  EXPECT_NEAR(at_hwhm_left, at_hwhm_right, 1e-12);
  EXPECT_GT(far, 0.99);
  EXPECT_NEAR(far, ring.params().base_transmission, 1e-3);
}

TEST(MicroRing, ThroughAtHwhmIsHalfDepth) {
  // (t_min + 1) / 2 by the Lorentzian definition at u = 1.
  const MicroRing ring{MicroRingParams{}};
  const double res = 1520.25e-9;
  const double expected = ring.params().base_transmission *
                          (ring.t_min() + 1.0) / 2.0;
  // res + hwhm() rounds at the 1e-23 m level on a 1.5e-6 m carrier;
  // allow for that representation error.
  EXPECT_NEAR(ring.through(res + ring.hwhm(), res), expected, 1e-9);
}

TEST(MicroRing, DropPeaksAtResonanceWithConfiguredMax) {
  const MicroRing ring{MicroRingParams{}};
  const double res = 1520.25e-9;
  EXPECT_DOUBLE_EQ(ring.drop(res, res), ring.params().drop_max);
  EXPECT_DOUBLE_EQ(ring.drop_aligned(), ring.params().drop_max);
  // Half the peak at one HWHM detuning.
  EXPECT_NEAR(ring.drop(res + ring.hwhm(), res),
              ring.params().drop_max / 2.0, 1e-9);
}

TEST(MicroRing, DropTailDecaysQuadratically) {
  const MicroRing ring{MicroRingParams{}};
  const double d1 = ring.drop_detuned(10.0 * ring.hwhm());
  const double d2 = ring.drop_detuned(20.0 * ring.hwhm());
  EXPECT_NEAR(d1 / d2, 4.0, 0.05);  // 1/u^2 tail
}

TEST(MicroRing, OnStateAttenuatesMoreThanOffState) {
  const MicroRing ring{MicroRingParams{}};
  EXPECT_LT(ring.through_on(), ring.through_off());
  // '1' (OFF) passes with < 1 dB loss; '0' (ON) is suppressed by ER.
  EXPECT_GT(math::to_db(ring.through_off()), -1.0);
  EXPECT_NEAR(ring.through_off() / ring.through_on(),
              math::from_db(6.9), 1e-9);
}

TEST(MicroRing, ErShiftConsistencyValidation) {
  MicroRingParams params;
  params.modulation_shift_m = 0.0;  // no shift cannot produce any ER
  EXPECT_THROW(MicroRing{params}, std::invalid_argument);

  params = MicroRingParams{};
  params.extinction_ratio_db = -1.0;
  EXPECT_THROW(MicroRing{params}, std::invalid_argument);

  params = MicroRingParams{};
  params.quality_factor = 0.0;
  EXPECT_THROW(MicroRing{params}, std::invalid_argument);

  params = MicroRingParams{};
  params.drop_max = 1.5;
  EXPECT_THROW(MicroRing{params}, std::invalid_argument);

  params = MicroRingParams{};
  params.base_transmission = 0.0;
  EXPECT_THROW(MicroRing{params}, std::invalid_argument);
}

TEST(MicroRing, HigherErNeedsDeeperNotch) {
  MicroRingParams params;
  params.extinction_ratio_db = 6.9;
  const double tmin_69 = MicroRing(params).t_min();
  params.extinction_ratio_db = 9.2;  // the [10] transmitter's ER
  const double tmin_92 = MicroRing(params).t_min();
  EXPECT_LT(tmin_92, tmin_69);
}

TEST(MicroRing, LargerShiftLowersOffStateLoss) {
  MicroRingParams params;
  params.modulation_shift_m = 2.0 * 1520.25e-9 / 65000.0;
  const double t_small = MicroRing(params).through_off();
  params.modulation_shift_m = 4.0 * 1520.25e-9 / 65000.0;
  const double t_large = MicroRing(params).through_off();
  EXPECT_GT(t_large, t_small);
}

TEST(MicroRing, MultilevelDriverPowerScalesWithBitsPerSymbol) {
  const double ook = 1.36e-3;
  EXPECT_DOUBLE_EQ(multilevel_modulation_power_w(ook, 2), ook);
  EXPECT_DOUBLE_EQ(multilevel_modulation_power_w(ook, 4), 2.0 * ook);
  EXPECT_DOUBLE_EQ(multilevel_modulation_power_w(ook, 8), 3.0 * ook);
  EXPECT_DOUBLE_EQ(multilevel_modulation_power_w(0.0, 4), 0.0);
  EXPECT_THROW((void)multilevel_modulation_power_w(ook, 3),
               std::invalid_argument);
  EXPECT_THROW((void)multilevel_modulation_power_w(ook, 0),
               std::invalid_argument);
  EXPECT_THROW((void)multilevel_modulation_power_w(-1.0, 4),
               std::invalid_argument);
}

}  // namespace
}  // namespace photecc::photonics
