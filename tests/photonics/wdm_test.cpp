#include "photecc/photonics/wdm.hpp"

#include <gtest/gtest.h>

#include "photecc/math/units.hpp"

namespace photecc::photonics {
namespace {

TEST(WdmGrid, DefaultIsSixteenChannels) {
  const WdmGrid grid;
  EXPECT_EQ(grid.channel_count, 16u);  // the paper's NW
  EXPECT_EQ(grid.wavelengths().size(), 16u);
}

TEST(WdmGrid, WavelengthsAreEquallySpacedAscending) {
  const WdmGrid grid;
  const auto all = grid.wavelengths();
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_NEAR(all[i] - all[i - 1], grid.channel_spacing_m, 1e-18);
  }
  EXPECT_DOUBLE_EQ(all.front(), grid.start_wavelength_m);
}

TEST(WdmGrid, DetuningIsSymmetricAndLinear) {
  const WdmGrid grid;
  EXPECT_DOUBLE_EQ(grid.detuning(3, 3), 0.0);
  EXPECT_DOUBLE_EQ(grid.detuning(2, 5), grid.detuning(5, 2));
  EXPECT_NEAR(grid.detuning(0, 4), 4.0 * grid.channel_spacing_m, 1e-18);
}

TEST(WdmGrid, IndexValidation) {
  const WdmGrid grid;
  EXPECT_THROW((void)grid.wavelength(16), std::out_of_range);
  EXPECT_THROW((void)grid.detuning(0, 16), std::out_of_range);
}

TEST(Multiplexer, TransmissionMatchesInsertionLoss) {
  const Multiplexer mux{1.0};
  EXPECT_NEAR(mux.transmission(), math::from_db(-1.0), 1e-12);
  const Multiplexer lossless{0.0};
  EXPECT_DOUBLE_EQ(lossless.transmission(), 1.0);
}

}  // namespace
}  // namespace photecc::photonics
