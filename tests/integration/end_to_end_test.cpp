// Cross-module integration: the analytic solver chain feeding the
// bit-true Monte-Carlo stack, and the manager feeding the NoC
// simulator.  These tests exercise every library together.
#include <gtest/gtest.h>

#include "photecc/channel_sim/monte_carlo.hpp"
#include "photecc/core/manager.hpp"
#include "photecc/core/tradeoff.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/link/snr_solver.hpp"
#include "photecc/noc/simulator.hpp"

namespace photecc {
namespace {

TEST(EndToEnd, SolvedOperatingPointDeliversTheTargetBerInSimulation) {
  // Solve for a loose target (1e-3, measurable with modest samples) and
  // verify the bit-true stack at the solved SNR stays at or below it.
  const link::MwsrChannel channel{link::MwsrParams{}};
  for (const char* name : {"H(7,4)", "H(71,64)"}) {
    const auto code = ecc::make_code(name);
    const double target = 1e-3;
    const auto point = link::solve_operating_point(channel, *code, target);
    ASSERT_TRUE(point.feasible) << name;
    const auto m = channel_sim::measure_end_to_end_ber(
        code, point.snr, 20000, 64);
    // Eq. 2 under-counts multi-error block failures slightly; allow the
    // measurement to exceed the target by its model error band but not
    // more.
    EXPECT_LT(m.measured_ber, 3.0 * target) << name;
    EXPECT_GT(m.measured_ber, target / 20.0) << name;
  }
}

TEST(EndToEnd, CodedLinkBeatsUncodedAtEqualLaserPower) {
  // Fix the laser at the *coded* operating point and compare the two
  // stacks: coding must deliver a materially lower payload BER.
  const link::MwsrChannel channel{link::MwsrParams{}};
  const auto h74 = ecc::make_code("H(7,4)");
  const auto uncoded = ecc::make_code("w/o ECC");
  const auto point = link::solve_operating_point(channel, *h74, 1e-3);
  ASSERT_TRUE(point.feasible);
  const auto coded =
      channel_sim::measure_end_to_end_ber(h74, point.snr, 20000, 64);
  const auto raw =
      channel_sim::measure_end_to_end_ber(uncoded, point.snr, 20000, 64);
  EXPECT_LT(coded.measured_ber, raw.measured_ber / 3.0);
}

TEST(EndToEnd, ManagerConfigurationIsConsistentWithSolver) {
  const link::MwsrChannel channel{link::MwsrParams{}};
  const core::LinkManager manager(channel, ecc::paper_schemes());
  core::CommunicationRequest request;
  request.target_ber = 1e-11;
  request.policy = core::Policy::kMinPower;
  const auto config = manager.configure(request);
  ASSERT_TRUE(config.has_value());
  const auto direct = link::solve_operating_point(
      channel, *config->code, request.target_ber);
  EXPECT_DOUBLE_EQ(config->laser_output_w, direct.op_laser_w);
  EXPECT_DOUBLE_EQ(config->metrics.p_laser_w, direct.p_laser_w);
}

TEST(EndToEnd, NocEnergyScalesWithSchemeChoice) {
  // Forcing the strongest code on all traffic must reduce laser energy
  // per bit relative to forcing uncoded, at identical traffic.
  const noc::UniformRandomTraffic traffic(12, 2e8, 16384);
  const double horizon = 40e-6;

  noc::NocConfig uncoded_cfg;
  uncoded_cfg.scheme_menu = {ecc::make_code("w/o ECC")};
  uncoded_cfg.default_requirements.target_ber = 1e-9;
  noc::NocConfig coded_cfg = uncoded_cfg;
  coded_cfg.scheme_menu = {ecc::make_code("H(7,4)")};

  const auto uncoded_run =
      noc::NocSimulator(uncoded_cfg).run(traffic, horizon, 123);
  const auto coded_run =
      noc::NocSimulator(coded_cfg).run(traffic, horizon, 123);
  ASSERT_EQ(uncoded_run.stats.delivered, coded_run.stats.delivered);
  EXPECT_LT(coded_run.stats.laser_energy_j,
            uncoded_run.stats.laser_energy_j);
  // But coding costs time: mean latency grows with CT.
  EXPECT_GT(coded_run.stats.mean_latency_s,
            uncoded_run.stats.mean_latency_s);
}

TEST(EndToEnd, DeadlineAwareClassesMeetDeadlinesAdaptiveStillSaves) {
  // Mixed workload: real-time streams with deadlines + background
  // multimedia.  The adaptive manager must (a) miss no deadline that a
  // static-uncoded system also meets and (b) spend less energy.
  noc::StreamingTraffic::Stream stream;
  stream.source = 0;
  stream.destination = 5;
  stream.period_s = 2e-6;
  stream.frame_bits = 4096;
  stream.deadline_fraction = 0.5;
  stream.cls = noc::TrafficClass::kRealTime;
  auto rt = std::make_shared<noc::StreamingTraffic>(
      std::vector<noc::StreamingTraffic::Stream>{stream});
  // Keep the background light enough that channel contention (coded
  // multimedia transfers occupying shared channels longer) does not
  // dominate the real-time stream's latency: ~120 messages of ~360 ns
  // over 12 channels in 60 us leaves the channels mostly idle.
  auto mm = std::make_shared<noc::UniformRandomTraffic>(
      12, 2e6, 32768, noc::TrafficClass::kMultimedia);
  const noc::MixedTraffic traffic({rt, mm});
  const double horizon = 60e-6;

  noc::NocConfig adaptive;
  adaptive.class_requirements[noc::TrafficClass::kRealTime] =
      noc::ClassRequirements{1e-9, core::Policy::kMinTime, 1.0,
                             std::nullopt};
  adaptive.class_requirements[noc::TrafficClass::kMultimedia] =
      noc::ClassRequirements{1e-9, core::Policy::kMinPower, std::nullopt,
                             std::nullopt};
  noc::NocConfig static_uncoded;
  static_uncoded.scheme_menu = {ecc::make_code("w/o ECC")};
  static_uncoded.default_requirements.target_ber = 1e-9;

  const auto a = noc::NocSimulator(adaptive).run(traffic, horizon, 321);
  const auto s =
      noc::NocSimulator(static_uncoded).run(traffic, horizon, 321);
  EXPECT_LE(a.stats.deadline_misses, s.stats.deadline_misses);
  EXPECT_LT(a.stats.laser_energy_j, s.stats.laser_energy_j);
}

TEST(EndToEnd, SweepAndManagerAgreeOnTheBestScheme) {
  const link::MwsrChannel channel{link::MwsrParams{}};
  const core::LinkManager manager(channel, ecc::paper_schemes());
  const auto sweep =
      core::sweep_tradeoff(channel, ecc::paper_schemes(), {1e-10});
  // Min-power pick == lowest Pchannel point of the sweep.
  core::CommunicationRequest request;
  request.target_ber = 1e-10;
  request.policy = core::Policy::kMinPower;
  const auto config = manager.configure(request);
  ASSERT_TRUE(config.has_value());
  double best_power = 1e9;
  std::string best_scheme;
  for (const auto& p : sweep.points) {
    if (p.feasible && p.p_channel_w < best_power) {
      best_power = p.p_channel_w;
      best_scheme = p.scheme;
    }
  }
  EXPECT_EQ(config->code->name(), best_scheme);
}

}  // namespace
}  // namespace photecc
