// Regression suite pinning every headline number of the paper's
// evaluation (Section V) to the model's output within explicit
// tolerance bands.  If a model change silently shifts the reproduction,
// these tests name the artefact that moved.
#include <gtest/gtest.h>

#include "photecc/core/channel_power.hpp"
#include "photecc/core/tradeoff.hpp"
#include "photecc/ecc/ber_model.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/link/snr_solver.hpp"
#include "photecc/math/units.hpp"

namespace photecc {
namespace {

link::MwsrChannel paper_channel() {
  return link::MwsrChannel{link::MwsrParams{}};
}

// ---- Figure 5 ------------------------------------------------------------

TEST(PaperFig5, UncodedLaserPowerAt1em11Is14mW) {
  const auto point = link::solve_operating_point(
      paper_channel(), *ecc::make_code("w/o ECC"), 1e-11);
  ASSERT_TRUE(point.feasible);
  EXPECT_NEAR(math::as_milli(point.p_laser_w), 14.35, 0.7);
}

TEST(PaperFig5, H7164LaserPowerAt1em11Is7mW) {
  const auto point = link::solve_operating_point(
      paper_channel(), *ecc::make_code("H(71,64)"), 1e-11);
  ASSERT_TRUE(point.feasible);
  EXPECT_NEAR(math::as_milli(point.p_laser_w), 7.12, 0.7);
}

TEST(PaperFig5, H74LaserPowerAt1em11Is6point6mW) {
  const auto point = link::solve_operating_point(
      paper_channel(), *ecc::make_code("H(7,4)"), 1e-11);
  ASSERT_TRUE(point.feasible);
  EXPECT_NEAR(math::as_milli(point.p_laser_w), 6.64, 0.7);
}

TEST(PaperFig5, OrderingHoldsAcrossTheWholeBerRange) {
  const auto channel = paper_channel();
  const auto uncoded = ecc::make_code("w/o ECC");
  const auto h7164 = ecc::make_code("H(71,64)");
  const auto h74 = ecc::make_code("H(7,4)");
  for (double ber = 1e-11; ber <= 1.0001e-3; ber *= 10.0) {
    const auto pu = link::solve_operating_point(channel, *uncoded, ber);
    const auto p71 = link::solve_operating_point(channel, *h7164, ber);
    const auto p74 = link::solve_operating_point(channel, *h74, ber);
    EXPECT_GT(pu.op_laser_w, p71.op_laser_w) << "ber=" << ber;
    EXPECT_GT(p71.op_laser_w, p74.op_laser_w) << "ber=" << ber;
  }
}

TEST(PaperFig5, TenToMinusTwelveFeasibilityBoundary) {
  const auto channel = paper_channel();
  EXPECT_FALSE(link::solve_operating_point(
                   channel, *ecc::make_code("w/o ECC"), 1e-12)
                   .feasible);
  const auto h7164 = link::solve_operating_point(
      channel, *ecc::make_code("H(71,64)"), 1e-12);
  const auto h74 = link::solve_operating_point(
      channel, *ecc::make_code("H(7,4)"), 1e-12);
  ASSERT_TRUE(h7164.feasible);
  ASSERT_TRUE(h74.feasible);
  // Paper: ~7.1 / 7.6 mW (the printed values are swapped relative to
  // the physical ordering; see EXPERIMENTS.md).
  EXPECT_NEAR(math::as_milli(h7164.p_laser_w), 7.4, 0.8);
  EXPECT_NEAR(math::as_milli(h74.p_laser_w), 6.9, 0.8);
}

// ---- Figure 6a -------------------------------------------------------------

TEST(PaperFig6a, PowerReductionPercentages) {
  const auto channel = paper_channel();
  const auto metrics =
      core::evaluate_schemes(channel, ecc::paper_schemes(), 1e-11);
  const double base = metrics[0].p_channel_w;
  EXPECT_NEAR(1.0 - metrics[1].p_channel_w / base, 0.45, 0.05);
  EXPECT_NEAR(1.0 - metrics[2].p_channel_w / base, 0.49, 0.05);
}

TEST(PaperFig6a, LaserShareIs92PercentUncoded) {
  const auto channel = paper_channel();
  const auto m = core::evaluate_scheme(
      channel, *ecc::make_code("w/o ECC"), 1e-11);
  EXPECT_NEAR(m.p_laser_w / m.p_channel_w, 0.92, 0.03);
}

TEST(PaperFig6a, ChannelPowersMatchReportedValues) {
  // Fig. 6a bar heights: ~15.7 / 8.5 / 8.0 mW per wavelength.
  const auto channel = paper_channel();
  const auto metrics =
      core::evaluate_schemes(channel, ecc::paper_schemes(), 1e-11);
  EXPECT_NEAR(math::as_milli(metrics[0].p_channel_w), 15.7, 0.8);
  EXPECT_NEAR(math::as_milli(metrics[1].p_channel_w), 8.5, 0.8);
  EXPECT_NEAR(math::as_milli(metrics[2].p_channel_w), 8.0, 0.8);
}

// ---- Figure 6b -------------------------------------------------------------

TEST(PaperFig6b, AllSchemesOnTheParetoFrontPerBer) {
  const auto channel = paper_channel();
  for (const double ber : {1e-6, 1e-8, 1e-10}) {
    const auto sweep =
        core::sweep_tradeoff(channel, ecc::paper_schemes(), {ber});
    EXPECT_EQ(sweep.pareto_front().size(), 3u) << "ber=" << ber;
  }
}

TEST(PaperFig6b, At1em12TheFrontLosesUncoded) {
  const auto channel = paper_channel();
  const auto sweep =
      core::sweep_tradeoff(channel, ecc::paper_schemes(), {1e-12});
  const auto front = sweep.pareto_front();
  ASSERT_EQ(front.size(), 2u);
  EXPECT_EQ(sweep.points[front[0]].scheme, "H(71,64)");
  EXPECT_EQ(sweep.points[front[1]].scheme, "H(7,4)");
}

TEST(PaperFig6b, CommunicationTimeAxis) {
  const auto channel = paper_channel();
  const auto metrics =
      core::evaluate_schemes(channel, ecc::paper_schemes(), 1e-10);
  EXPECT_DOUBLE_EQ(metrics[0].ct, 1.0);
  EXPECT_NEAR(metrics[1].ct, 1.109, 0.001);
  EXPECT_DOUBLE_EQ(metrics[2].ct, 1.75);
}

// ---- Section V-B SNR chain -------------------------------------------------

TEST(PaperSectionVB, RawBerRequirementsAtTargets) {
  EXPECT_NEAR(ecc::make_code("H(7,4)")->required_raw_ber(1e-11) / 1.291e-6,
              1.0, 0.01);
  EXPECT_NEAR(
      ecc::make_code("H(71,64)")->required_raw_ber(1e-11) / 3.780e-7, 1.0,
      0.01);
}

TEST(PaperSectionVB, LaserOutputPowersAreSubMilliwatt) {
  // OPlaser values behind Fig. 5 sit in the hundreds of microwatts,
  // bounded by the 700 uW Fig. 4 ceiling.
  const auto channel = paper_channel();
  for (const auto& code : ecc::paper_schemes()) {
    const auto point =
        link::solve_operating_point(channel, *code, 1e-11);
    ASSERT_TRUE(point.feasible) << code->name();
    EXPECT_GT(math::as_micro(point.op_laser_w), 100.0) << code->name();
    EXPECT_LT(math::as_micro(point.op_laser_w), 700.0) << code->name();
  }
}

// ---- Whole-interconnect numbers (Section V-C) ------------------------------

TEST(PaperSectionVC, PerWaveguideAndInterconnectSavings) {
  const auto channel = paper_channel();
  const auto uncoded = core::evaluate_scheme(
      channel, *ecc::make_code("w/o ECC"), 1e-11);
  const auto h7164 = core::evaluate_scheme(
      channel, *ecc::make_code("H(71,64)"), 1e-11);
  // 251 -> 136 mW per waveguide; ~22 W for the interconnect.
  EXPECT_NEAR(math::as_milli(uncoded.p_waveguide_w), 251.0, 13.0);
  EXPECT_NEAR(math::as_milli(h7164.p_waveguide_w), 136.0, 10.0);
  EXPECT_NEAR(uncoded.p_interconnect_w - h7164.p_interconnect_w, 22.0,
              3.0);
}

}  // namespace
}  // namespace photecc
