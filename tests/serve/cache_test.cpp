// PlanCache: exact-byte keying, LRU ordering under a byte budget,
// collision-chain correctness.
#include "photecc/serve/cache.hpp"

#include <gtest/gtest.h>

#include <string>

#include "photecc/math/hash.hpp"

namespace {

using photecc::math::fnv1a64;
using photecc::serve::CachedSweep;
using photecc::serve::PlanCache;

CachedSweep sweep_of(const std::string& body, std::size_t cells = 1) {
  CachedSweep sweep;
  sweep.records.emplace_back("cells", body);
  sweep.cells = cells;
  return sweep;
}

/// Entry bytes = key size + record kind ("cells", 5 bytes) + body size.
std::size_t entry_bytes(const std::string& key, const std::string& body) {
  return key.size() + 5 + body.size();
}

TEST(PlanCache, MissThenHit) {
  PlanCache cache(1 << 20);
  const std::string key = "spec-a";
  EXPECT_EQ(cache.find(fnv1a64(key), key), nullptr);
  cache.insert(fnv1a64(key), key, sweep_of(",body-a", 3));
  const CachedSweep* hit = cache.find(fnv1a64(key), key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cells, 3u);
  ASSERT_EQ(hit->records.size(), 1u);
  EXPECT_EQ(hit->records[0].first, "cells");
  EXPECT_EQ(hit->records[0].second, ",body-a");
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.size_bytes(), entry_bytes(key, ",body-a"));
}

TEST(PlanCache, HashCollisionIsNotAHit) {
  // Two different canonical strings forced into the same bucket: the
  // byte comparison must keep them apart.
  PlanCache cache(1 << 20);
  cache.insert(42, "canonical-a", sweep_of(",a"));
  EXPECT_EQ(cache.find(42, "canonical-b"), nullptr);
  cache.insert(42, "canonical-b", sweep_of(",b"));
  ASSERT_NE(cache.find(42, "canonical-a"), nullptr);
  ASSERT_NE(cache.find(42, "canonical-b"), nullptr);
  EXPECT_EQ(cache.find(42, "canonical-a")->records[0].second, ",a");
  EXPECT_EQ(cache.find(42, "canonical-b")->records[0].second, ",b");
  EXPECT_EQ(cache.entries(), 2u);
}

TEST(PlanCache, DuplicateInsertIsANoOp) {
  PlanCache cache(1 << 20);
  cache.insert(1, "key", sweep_of(",first"));
  cache.insert(1, "key", sweep_of(",second"));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.find(1, "key")->records[0].second, ",first");
}

TEST(PlanCache, EvictsLeastRecentlyUsed) {
  // Three entries of entry_bytes("k?", ",xxxx") = 2 + 5 + 5 = 12 bytes
  // each in a 30-byte budget: the third insert must evict one.
  PlanCache cache(30);
  cache.insert(1, "k1", sweep_of(",xxxx"));
  cache.insert(2, "k2", sweep_of(",xxxx"));
  EXPECT_EQ(cache.size_bytes(), 24u);
  // Touch k1 so k2 becomes the LRU victim.
  ASSERT_NE(cache.find(1, "k1"), nullptr);
  cache.insert(3, "k3", sweep_of(",xxxx"));
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_NE(cache.find(1, "k1"), nullptr);
  EXPECT_EQ(cache.find(2, "k2"), nullptr);
  EXPECT_NE(cache.find(3, "k3"), nullptr);
  EXPECT_LE(cache.size_bytes(), cache.budget_bytes());
}

TEST(PlanCache, OversizedEntryIsNotCached) {
  PlanCache cache(16);
  cache.insert(1, "small", sweep_of(",a"));
  EXPECT_EQ(cache.entries(), 1u);
  // 5 + 5 + 100 bytes > 16: refused outright, existing entry survives.
  cache.insert(2, "large", sweep_of("," + std::string(99, 'x')));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_NE(cache.find(1, "small"), nullptr);
}

TEST(PlanCache, PayloadBytesSumsKindsAndBodies) {
  CachedSweep sweep;
  sweep.records.emplace_back("header", ",h");  // 6 + 2
  sweep.records.emplace_back("done", ",d");    // 4 + 2
  EXPECT_EQ(sweep.payload_bytes(), 14u);
}

}  // namespace
