// serve::Service happy paths: streamed sweep response shape, the
// cache's byte-identity guarantee (the acceptance criterion: a cached
// replay of the fig6b sweep is byte-identical to a fresh recompute, at
// 1 and at 4 threads), replay accounting and the control requests.
#include "photecc/serve/service.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "photecc/explore/evaluators.hpp"
#include "photecc/math/hash.hpp"
#include "photecc/serve/protocol.hpp"
#include "photecc/spec/registries.hpp"
#include "photecc/spec/spec.hpp"

namespace {

namespace serve = photecc::serve;
namespace spec = photecc::spec;

spec::ExperimentSpec fig6b() {
  return spec::preset_registry().make("fig6b", "preset");
}

std::string respond(serve::Service& service, const std::string& line) {
  std::ostringstream out;
  service.handle_line(line, out);
  return out.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

bool starts_with(const std::string& line, const std::string& prefix) {
  return line.compare(0, prefix.size(), prefix) == 0;
}

TEST(ServeService, SweepResponseShape) {
  serve::Service service({.threads = 1, .block_size = 5});
  const auto experiment = fig6b();  // 3 codes x 4 BERs = 12 cells
  const auto lines =
      lines_of(respond(service, serve::sweep_request_line(experiment)));

  // header, ceil(12 / 5) = 3 cells records, done.
  ASSERT_EQ(lines.size(), 5u);
  const std::string hash_hex =
      photecc::math::hex64(spec::canonical_hash(experiment));
  std::string metrics;
  for (const auto& name : photecc::explore::link_cell_metric_names()) {
    if (!metrics.empty()) metrics += ',';
    metrics += '"' + name + '"';
  }
  EXPECT_EQ(lines[0],
            "{\"kind\":\"header\",\"spec_hash\":\"" + hash_hex +
                "\",\"name\":\"fig6b\",\"cells\":12,\"block_size\":5,"
                "\"axes\":[\"code\",\"target_ber\"],\"metrics\":[" +
                metrics + "]}");
  EXPECT_TRUE(starts_with(lines[1], "{\"kind\":\"cells\",\"begin\":0,"
                                    "\"end\":5,"));
  EXPECT_TRUE(starts_with(lines[2], "{\"kind\":\"cells\",\"begin\":5,"
                                    "\"end\":10,"));
  EXPECT_TRUE(starts_with(lines[3], "{\"kind\":\"cells\",\"begin\":10,"
                                    "\"end\":12,"));
  EXPECT_TRUE(starts_with(lines[4], "{\"kind\":\"done\",\"cells\":12,"));
  EXPECT_NE(lines[4].find("\"lowered\":{\"channels_lowered\":1,"
                          "\"root_solves\":12,"),
            std::string::npos);

  EXPECT_EQ(service.stats().sweeps, 1u);
  EXPECT_EQ(service.stats().cache_misses, 1u);
  EXPECT_EQ(service.stats().plans_lowered, 1u);
  EXPECT_EQ(service.stats().cells_streamed, 12u);
}

TEST(ServeService, DuplicateRequestIsByteIdenticalAndHitsTheCache) {
  serve::Service service({.threads = 1, .block_size = 5});
  const std::string request = serve::sweep_request_line(fig6b());
  const std::string first = respond(service, request);
  const std::string second = respond(service, request);

  EXPECT_EQ(first, second);  // byte-identical replay
  EXPECT_EQ(service.stats().sweeps, 2u);
  EXPECT_EQ(service.stats().cache_hits, 1u);
  EXPECT_EQ(service.stats().cache_misses, 1u);
  EXPECT_EQ(service.stats().plans_lowered, 1u);  // exactly one lowering
  EXPECT_EQ(service.cache().entries(), 1u);

  // Replay accounting: cells double, solver work does not.
  EXPECT_EQ(service.stats().cells_streamed, 24u);
  EXPECT_EQ(service.stats().sweep.cells, 24u);
  EXPECT_EQ(service.stats().sweep.root_solves, 12u);
}

TEST(ServeService, CachedReplayMatchesFreshComputeAtOneAndFourThreads) {
  // The acceptance criterion: the cached fig6b response must be
  // byte-identical to a recomputed one, and thread count must not
  // leak into the bytes.
  const std::string request = serve::sweep_request_line(fig6b());

  serve::Service one({.threads = 1, .block_size = 5});
  const std::string computed_1t = respond(one, request);
  const std::string replayed_1t = respond(one, request);

  serve::Service four({.threads = 4, .block_size = 5});
  const std::string computed_4t = respond(four, request);
  const std::string replayed_4t = respond(four, request);

  EXPECT_EQ(computed_1t, replayed_1t);
  EXPECT_EQ(computed_4t, replayed_4t);
  EXPECT_EQ(computed_1t, computed_4t);
  EXPECT_EQ(one.stats().cache_hits, 1u);
  EXPECT_EQ(four.stats().cache_hits, 1u);
}

TEST(ServeService, IdIsEchoedButDoesNotDefeatTheCache) {
  serve::Service service({.threads = 1, .block_size = 64});
  const auto first =
      lines_of(respond(service, serve::sweep_request_line(fig6b(), "a")));
  const auto second =
      lines_of(respond(service, serve::sweep_request_line(fig6b(), "b")));

  EXPECT_EQ(service.stats().cache_hits, 1u);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    // Every record echoes its request's id right after the kind...
    EXPECT_NE(first[i].find("\"id\":\"a\""), std::string::npos) << i;
    EXPECT_NE(second[i].find("\"id\":\"b\""), std::string::npos) << i;
    // ...and is otherwise byte-identical between compute and replay.
    std::string relabeled = second[i];
    relabeled.replace(relabeled.find("\"id\":\"b\""), 8, "\"id\":\"a\"");
    EXPECT_EQ(first[i], relabeled) << i;
  }
}

TEST(ServeService, NocGridTakesTheRunnerPathAndStillCaches) {
  serve::Service service({.threads = 1, .block_size = 64});
  spec::ExperimentSpec experiment;
  experiment.name = "noc-smoke";
  experiment.traffic.push_back({});  // uniform default => NoC axis
  experiment.noc_horizon_s = 2e-7;

  const std::string request = serve::sweep_request_line(experiment);
  const auto lines = lines_of(respond(service, request));
  ASSERT_EQ(lines.size(), 3u);  // header, one cells block, done
  EXPECT_NE(lines[0].find("\"axes\":[\"traffic\"]"), std::string::npos);
  // NoC metrics come from the cells, not the link evaluator's list.
  EXPECT_NE(lines[0].find("\"delivered\""), std::string::npos);
  EXPECT_TRUE(starts_with(lines[2], "{\"kind\":\"done\",\"cells\":1,"));
  // No plan on this path, and a replay is still byte-identical.
  EXPECT_EQ(service.stats().plans_lowered, 0u);
  EXPECT_EQ(respond(service, request),
            lines[0] + "\n" + lines[1] + "\n" + lines[2] + "\n");
  EXPECT_EQ(service.stats().cache_hits, 1u);
}

TEST(ServeService, StatsRecordReportsCounters) {
  serve::Service service({.threads = 1, .block_size = 5});
  (void)respond(service, serve::sweep_request_line(fig6b()));
  const auto lines =
      lines_of(respond(service, serve::request_line("stats", "s1")));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(starts_with(lines[0],
                          "{\"kind\":\"stats\",\"id\":\"s1\",\"serve\":{"
                          "\"requests\":2,\"sweeps\":1,\"errors\":0,"
                          "\"cache_hits\":0,\"cache_misses\":1,"
                          "\"plans_lowered\":1,\"cells_streamed\":12,"));
  EXPECT_NE(lines[0].find("\"cache\":{\"entries\":1,"), std::string::npos);
  EXPECT_NE(lines[0].find("\"sweep\":{\"cells\":12,"), std::string::npos);
}

TEST(ServeService, ShutdownSaysByeAndStopsTheLoop) {
  serve::Service service;
  std::ostringstream out;
  EXPECT_FALSE(service.handle_line(serve::request_line("shutdown"), out));
  EXPECT_EQ(out.str(), "{\"kind\":\"bye\"}\n");

  // run(): clean shutdown returns true, EOF returns false.
  std::istringstream session("\n" + serve::request_line("stats") + "\n" +
                             serve::request_line("shutdown") + "\n");
  std::ostringstream session_out;
  EXPECT_TRUE(service.run(session, session_out));
  std::istringstream eof_only("");
  EXPECT_FALSE(service.run(eof_only, session_out));
}

TEST(ServeService, BlankLinesAreIgnored) {
  serve::Service service;
  std::ostringstream out;
  EXPECT_TRUE(service.handle_line("", out));
  EXPECT_TRUE(service.handle_line("   \t", out));
  EXPECT_EQ(out.str(), "");
  EXPECT_EQ(service.stats().requests, 0u);
}

}  // namespace
