// serve::Service rejection paths: every malformed input yields one
// structured "error" record — with the right stage — and the daemon
// keeps serving afterwards.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "photecc/serve/protocol.hpp"
#include "photecc/serve/service.hpp"

namespace {

namespace serve = photecc::serve;

std::string respond(serve::Service& service, const std::string& line) {
  std::ostringstream out;
  EXPECT_TRUE(service.handle_line(line, out));  // errors never stop the loop
  return out.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// The daemon must still answer after an error: a stats request gets a
/// stats record, not silence or another error.
void expect_alive(serve::Service& service) {
  const auto lines = lines_of(respond(service, serve::request_line("stats")));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind("{\"kind\":\"stats\",", 0), 0u);
}

TEST(ServeErrors, TruncatedLineIsAParseError) {
  serve::Service service;
  const auto lines =
      lines_of(respond(service, R"({"kind":"sweep","spec":{)"));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind("{\"kind\":\"error\",\"stage\":\"parse\",", 0),
            0u);
  EXPECT_EQ(service.stats().errors, 1u);
  expect_alive(service);
}

TEST(ServeErrors, OversizedRequestIsRejectedUnparsed) {
  serve::Service service({.max_request_bytes = 64});
  const std::string huge =
      "{\"kind\":\"sweep\",\"spec\":{\"pad\":\"" + std::string(100, 'x') +
      "\"}}";
  const auto lines = lines_of(respond(service, huge));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind("{\"kind\":\"error\",\"stage\":\"limit\",", 0),
            0u);
  EXPECT_NE(lines[0].find("max_request_bytes"), std::string::npos);
  expect_alive(service);
}

TEST(ServeErrors, UnknownRequestKind) {
  serve::Service service;
  const auto lines =
      lines_of(respond(service, R"({"kind":"frobnicate"})"));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind("{\"kind\":\"error\",\"stage\":\"request\","
                           "\"field\":\"kind\",",
                           0),
            0u);
  EXPECT_NE(lines[0].find("frobnicate"), std::string::npos);
  expect_alive(service);
}

TEST(ServeErrors, EnvelopeViolations) {
  serve::Service service;
  // Missing spec on a sweep; stray spec on stats; unknown key; non-
  // object line; empty id — all stage "request".
  for (const std::string& line : {
           std::string(R"({"kind":"sweep"})"),
           std::string(R"({"kind":"stats","spec":{}})"),
           std::string(R"({"kind":"stats","surprise":1})"),
           std::string(R"(["kind","sweep"])"),
           std::string(R"({"kind":"stats","id":""})"),
       }) {
    const auto lines = lines_of(respond(service, line));
    ASSERT_EQ(lines.size(), 1u) << line;
    EXPECT_EQ(
        lines[0].rfind("{\"kind\":\"error\",\"stage\":\"request\",", 0), 0u)
        << line;
  }
  EXPECT_EQ(service.stats().errors, 5u);
  expect_alive(service);
}

TEST(ServeErrors, SchemaVersionMixIsASpecError) {
  // A v1 document carrying the v2-only environments axis: rejected at
  // the spec stage (the envelope itself is fine), id still echoed.
  serve::Service service;
  const std::string line =
      R"({"kind":"sweep","id":"mix","spec":{"photecc_spec":1,)"
      R"("axes":{"environments":[{"kind":"constant"}]}}})";
  const auto lines = lines_of(respond(service, line));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind("{\"kind\":\"error\",\"id\":\"mix\","
                           "\"stage\":\"spec\",\"field\":\"photecc_spec\",",
                           0),
            0u);
  EXPECT_NE(lines[0].find("schema version"), std::string::npos);
  expect_alive(service);
}

TEST(ServeErrors, UnknownSpecFieldIsASpecErrorWithItsPath) {
  serve::Service service;
  const auto lines = lines_of(respond(
      service,
      R"({"kind":"sweep","spec":{"photecc_spec":2,"warp_factor":9}})"));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind("{\"kind\":\"error\",\"stage\":\"spec\","
                           "\"field\":\"warp_factor\",",
                           0),
            0u);
  expect_alive(service);
}

TEST(ServeErrors, ErrorsDoNotPoisonTheCacheOrCounters) {
  serve::Service service;
  (void)respond(service, R"({"kind":"sweep"})");
  (void)respond(service, "not json at all");
  EXPECT_EQ(service.stats().errors, 2u);
  EXPECT_EQ(service.stats().sweeps, 0u);
  EXPECT_EQ(service.stats().cache_misses, 0u);
  EXPECT_EQ(service.cache().entries(), 0u);
  EXPECT_EQ(service.stats().requests, 2u);
}

}  // namespace
