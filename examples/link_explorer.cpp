// Design-space explorer: sweeps (code x BER target) over a configurable
// MWSR channel and emits the trade-off plane as CSV plus the Pareto
// front as text.
//
//   $ ./link_explorer [--onis N] [--lambdas N] [--length-cm L]
//                     [--all-codes] [--csv]
//
// With --csv the full sweep goes to stdout as CSV (plot it directly);
// otherwise aligned tables are printed.
#include <cstring>
#include <iostream>
#include <string>

#include "photecc/core/report.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/math/interp.hpp"
#include "photecc/math/units.hpp"

int main(int argc, char** argv) {
  using namespace photecc;

  link::MwsrParams params;
  bool all_codes = false;
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> double {
      if (i + 1 >= argc) {
        std::cerr << "missing value after " << arg << '\n';
        std::exit(1);
      }
      return std::strtod(argv[++i], nullptr);
    };
    if (arg == "--onis") {
      params.oni_count = static_cast<std::size_t>(next());
    } else if (arg == "--lambdas") {
      params.grid.channel_count = static_cast<std::size_t>(next());
    } else if (arg == "--length-cm") {
      params.waveguide_length_m = next() * 1e-2;
    } else if (arg == "--all-codes") {
      all_codes = true;
    } else if (arg == "--csv") {
      csv = true;
    } else {
      std::cerr << "usage: link_explorer [--onis N] [--lambdas N] "
                   "[--length-cm L] [--all-codes] [--csv]\n";
      return 1;
    }
  }

  const link::MwsrChannel channel{params};
  core::SystemConfig system;
  system.wavelengths = params.grid.channel_count;
  system.oni_count = params.oni_count;

  const auto codes =
      all_codes ? ecc::all_known_codes() : ecc::paper_schemes();
  std::vector<double> bers;
  for (int e = 12; e >= 4; --e) bers.push_back(std::pow(10.0, -e));

  const auto sweep = core::sweep_tradeoff(channel, codes, bers, system);

  if (csv) {
    core::pareto_table(sweep).render_csv(std::cout);
    return 0;
  }

  std::cout << "MWSR channel: " << params.oni_count << " ONIs, "
            << params.grid.channel_count << " wavelengths, "
            << math::format_fixed(params.waveguide_length_m * 100.0, 1)
            << " cm waveguide\n\n";
  core::print_table(std::cout, "Trade-off sweep ('*' = Pareto-optimal):",
                    core::pareto_table(sweep));

  const auto front = sweep.pareto_front();
  std::cout << "Pareto front, cheapest-time first:\n";
  for (const std::size_t i : front) {
    const auto& p = sweep.points[i];
    std::cout << "  " << p.scheme << " @ BER "
              << math::format_sci(p.target_ber, 0) << ": "
              << math::format_fixed(math::as_milli(p.p_channel_w), 2)
              << " mW, CT " << math::format_fixed(p.ct, 3) << ", "
              << math::format_fixed(math::as_pico(p.energy_per_bit_j), 2)
              << " pJ/bit\n";
  }
  return 0;
}
