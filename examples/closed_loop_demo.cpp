// Closed-loop laser power self-calibration demo (ref [6] direction):
// the controller knows nothing about the analytic BER model — it steps
// the laser while measuring the live (bit-true, Monte-Carlo) channel,
// and settles at the cheapest power meeting the target with margin.
// The demo prints the whole trajectory and compares the settled point
// against the open-loop analytic solve.
//
//   $ ./closed_loop_demo [target_ber] [scheme]
#include <cstdlib>
#include <iostream>

#include "photecc/core/calibration.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/link/snr_solver.hpp"
#include "photecc/math/table.hpp"
#include "photecc/math/units.hpp"

int main(int argc, char** argv) {
  using namespace photecc;

  double target_ber = 1e-4;
  std::string scheme = "H(7,4)";
  if (argc > 1) target_ber = std::strtod(argv[1], nullptr);
  if (argc > 2) scheme = argv[2];
  if (target_ber < 1e-7) {
    std::cerr << "note: targets below ~1e-7 need billions of Monte-Carlo "
                 "bits; use a looser target for the demo\n";
    return 1;
  }

  const link::MwsrChannel channel{link::MwsrParams{}};
  const auto code = ecc::make_code(scheme);

  core::CalibrationConfig config;
  config.target_ber = target_ber;
  config.blocks_per_measurement = 20000;

  std::cout << "Closed-loop calibration of " << code->name()
            << " to BER " << math::format_sci(target_ber, 0) << ":\n\n";
  const auto result = core::calibrate_laser(channel, *code, config);

  math::TextTable table({"step", "OPlaser [uW]", "SNR", "measured BER",
                         "99% CI upper", "meets target"});
  for (std::size_t i = 0; i < result.history.size(); ++i) {
    const auto& step = result.history[i];
    table.add_row({
        std::to_string(i),
        math::format_fixed(math::as_micro(step.op_laser_w), 1),
        math::format_fixed(step.snr, 2),
        math::format_sci(step.measured_ber, 2),
        math::format_sci(step.ci_upper, 2),
        step.ci_upper <= target_ber ? "yes" : "no",
    });
  }
  table.render(std::cout);

  const auto analytic =
      link::solve_operating_point(channel, *code, target_ber);
  std::cout << "\nSettled:   OPlaser = "
            << math::format_fixed(math::as_micro(result.op_laser_w), 1)
            << " uW, Plaser = "
            << math::format_fixed(math::as_milli(result.p_laser_w), 2)
            << " mW (" << (result.converged ? "converged" : "NOT converged")
            << ", " << result.history.size() << " measurements)\n";
  if (analytic.feasible) {
    std::cout << "Open loop: OPlaser = "
              << math::format_fixed(math::as_micro(analytic.op_laser_w), 1)
              << " uW, Plaser = "
              << math::format_fixed(math::as_milli(analytic.p_laser_w), 2)
              << " mW (analytic Eq. 2/3/4 chain)\n";
    std::cout << "Closed/open ratio: "
              << math::format_fixed(
                     result.op_laser_w / analytic.op_laser_w, 2)
              << " — the loop lands near the model without knowing it, "
                 "and would track drift the model cannot see.\n";
  }
  return 0;
}
