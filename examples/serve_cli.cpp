// Sweep-service daemon CLI — the stdin/stdout (or unix-socket)
// frontend of photecc::serve.
//
//   serve_cli                      NDJSON loop on stdin/stdout until a
//                                  {"kind":"shutdown"} request or EOF
//   serve_cli --socket PATH        same loop over a unix-domain socket,
//                                  one client at a time, shared cache
//   serve_cli --smoke              CI self-check: two identical fig6b
//                                  requests + one distinct spec piped
//                                  through a fresh service — duplicate
//                                  responses byte-identical, exactly
//                                  one cache hit and two plan
//                                  lowerings, cold-service recompute
//                                  byte-identical to the cached replay
//
// Operational flags (never affect sweep-response bytes except
// --block-size, which sets the cells-record framing):
//   --threads N             worker threads per sweep (0 = each spec's own)
//   --block-size N          cells per streamed "cells" record
//   --cache-bytes N         PlanCache byte budget
//   --max-request-bytes N   reject longer request lines
//
// Try it (one pipeline; the spec document must stay on one line):
//   explore_cli --preset fig6b --dump-spec | tr -d '\n' |
//     sed 's/.*/{"kind":"sweep","spec":&}/' | serve_cli
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "photecc/serve/protocol.hpp"
#include "photecc/serve/service.hpp"
#include "photecc/serve/socket.hpp"
#include "photecc/spec/cli.hpp"
#include "photecc/spec/registries.hpp"

namespace {

using namespace photecc;

int usage(std::ostream& os, int code) {
  os << "usage: serve_cli [--socket PATH] [--smoke]\n"
        "                 [--threads N] [--block-size N]\n"
        "                 [--cache-bytes N] [--max-request-bytes N]\n";
  return code;
}

bool check(bool condition, const std::string& what) {
  if (!condition) std::cerr << "smoke FAILED: " << what << "\n";
  return condition;
}

/// The duplicate-request smoke CI runs in Debug and Release: the whole
/// request->response loop through Service::run, twice the same spec
/// and once a different one, asserting the cache (not a recompute)
/// produced the second response.
int run_smoke(const serve::ServiceOptions& options) {
  const spec::ExperimentSpec fig6b =
      spec::preset_registry().make("fig6b", "--smoke");
  spec::ExperimentSpec variant = fig6b;
  variant.name = "fig6b-variant";
  variant.ber_targets = {1e-6, 1e-8};

  std::istringstream session(serve::sweep_request_line(fig6b) + "\n" +
                             serve::sweep_request_line(fig6b) + "\n" +
                             serve::sweep_request_line(variant) + "\n" +
                             serve::request_line("shutdown") + "\n");
  serve::Service service(options);
  std::ostringstream out;
  bool ok = check(service.run(session, out), "clean shutdown");

  // Split the session transcript back into the three sweep responses:
  // each ends with its "done" record, the transcript with "bye".
  const std::string transcript = out.str();
  std::vector<std::string> responses(1);
  std::istringstream lines(transcript);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("{\"kind\":\"bye\"", 0) == 0) break;
    responses.back() += line + "\n";
    if (line.rfind("{\"kind\":\"done\"", 0) == 0) responses.emplace_back();
  }
  responses.pop_back();

  ok &= check(responses.size() == 3, "three sweep responses");
  ok &= check(service.stats().errors == 0, "no error records");
  if (!ok) return 1;
  ok &= check(responses[0] == responses[1],
              "duplicate responses byte-identical");
  ok &= check(responses[0] != responses[2],
              "distinct spec answered differently");
  ok &= check(service.stats().cache_hits == 1, "exactly one cache hit");
  ok &= check(service.stats().plans_lowered == 2,
              "exactly one plan lowering per distinct spec");

  // A cold service must recompute byte-for-byte what the warm one
  // replayed from its cache.
  serve::Service cold(options);
  std::ostringstream recomputed;
  cold.handle_line(serve::sweep_request_line(fig6b), recomputed);
  ok &= check(recomputed.str() == responses[1],
              "cold recompute byte-identical to cached replay");

  if (!ok) return 1;
  std::cout << "smoke OK: dup fig6b request served from cache ("
            << service.stats().cache_hits << " hit, "
            << service.stats().plans_lowered
            << " lowerings for 3 requests), replay byte-identical to "
               "cold recompute\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServiceOptions options;
  bool smoke = false;
  std::string socket_path;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--smoke") {
        smoke = true;
      } else if (arg == "--socket" && i + 1 < argc) {
        socket_path = argv[++i];
      } else if (arg == "--threads" && i + 1 < argc) {
        options.threads = spec::parse_size("--threads", argv[++i]);
      } else if (arg == "--block-size" && i + 1 < argc) {
        options.block_size = spec::parse_size("--block-size", argv[++i]);
      } else if (arg == "--cache-bytes" && i + 1 < argc) {
        options.cache_budget_bytes =
            spec::parse_size("--cache-bytes", argv[++i]);
      } else if (arg == "--max-request-bytes" && i + 1 < argc) {
        options.max_request_bytes =
            spec::parse_size("--max-request-bytes", argv[++i]);
      } else if (arg == "--help" || arg == "-h") {
        return usage(std::cout, 0);
      } else {
        std::cerr << "unknown argument: " << arg << "\n";
        return usage(std::cerr, 2);
      }
    }
    if (smoke) return run_smoke(options);

    serve::Service service(options);
    if (!socket_path.empty()) {
      std::string error;
      if (!serve::serve_unix_socket(service, {socket_path, 0}, error)) {
        std::cerr << "error: " << error << "\n";
        return 1;
      }
      return 0;
    }
    service.run(std::cin, std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
