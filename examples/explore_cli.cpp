// Command-line driver of the photecc::explore design-space engine.
//
//   explore_cli --fig6b            reproduce the paper's Fig. 6b sweep
//   explore_cli --noc              multi-axis NoC sweep (traffic x load x
//                                  gating x policy x ONI count)
//   explore_cli --smoke            fast end-to-end self-check (CI): runs a
//                                  small grid sequentially and in parallel
//                                  and verifies byte-identical exports
//   explore_cli --bench            sequential-vs-parallel wall time on a
//                                  600-cell grid, JSON to stdout
//
// Common flags: --threads N (0 = hardware), --csv FILE, --json FILE,
// --modulation LIST (comma-separated signaling formats, e.g.
// "ook,pam4"; adds a modulation axis to the --fig6b/--noc/--bench
// grids).
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "photecc/core/report.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/explore/evaluators.hpp"
#include "photecc/explore/runner.hpp"
#include "photecc/math/modulation.hpp"
#include "photecc/math/parallel.hpp"
#include "photecc/math/table.hpp"
#include "photecc/math/units.hpp"

namespace {

using namespace photecc;

struct Options {
  std::string mode;
  std::size_t threads = 0;
  std::string csv_path;
  std::string json_path;
  /// Modulation axis values; empty = no axis (OOK-only, the pre-PAM
  /// grids, byte-identical to historical outputs).
  std::vector<math::Modulation> modulations;
};

int usage(std::ostream& os, int code) {
  os << "usage: explore_cli --fig6b | --noc | --smoke | --bench\n"
        "                   [--threads N] [--csv FILE] [--json FILE]\n"
        "                   [--modulation ook,pam4,pam8]\n";
  return code;
}

/// Comma-separated modulation list, e.g. "ook,pam4".
bool parse_modulations(const std::string& raw,
                       std::vector<math::Modulation>& out) {
  out.clear();
  std::size_t start = 0;
  while (start <= raw.size()) {
    const std::size_t comma = raw.find(',', start);
    const std::size_t end = comma == std::string::npos ? raw.size() : comma;
    const auto parsed =
        math::modulation_from_string(raw.substr(start, end - start));
    if (!parsed) return false;
    out.push_back(*parsed);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return !out.empty();
}

/// Applies the --modulation axis to a grid when the flag was given.
void apply_modulation_axis(explore::ScenarioGrid& grid,
                           const Options& options) {
  if (!options.modulations.empty()) grid.modulations(options.modulations);
}

/// Non-negative integer parse that reports bad input as a usage error
/// instead of an uncaught std::stoul exception.
bool parse_size(const std::string& raw, std::size_t& out) {
  if (raw.empty() || raw[0] == '-') return false;  // stoul wraps negatives
  try {
    std::size_t consumed = 0;
    const unsigned long value = std::stoul(raw, &consumed);
    if (consumed != raw.size()) return false;
    out = static_cast<std::size_t>(value);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

void export_result(const explore::ExperimentResult& result,
                   const Options& options) {
  if (!options.csv_path.empty()) {
    std::ofstream os(options.csv_path);
    result.write_csv(os);
    std::cout << "wrote " << options.csv_path << "\n";
  }
  if (!options.json_path.empty()) {
    std::ofstream os(options.json_path);
    result.write_json(os);
    std::cout << "wrote " << options.json_path << "\n";
  }
}

// --- --fig6b -----------------------------------------------------------

int run_fig6b(const Options& options) {
  const std::vector<double> bers{1e-6, 1e-8, 1e-10, 1e-12};
  explore::ScenarioGrid grid;
  grid.codes(explore::paper_scheme_names()).ber_targets(bers);
  apply_modulation_axis(grid, options);
  const explore::SweepRunner runner{{options.threads}};
  const auto result = runner.run(grid);

  std::cout << "=== Fig. 6b on the explore engine (" << result.cells.size()
            << " cells, " << result.threads_used << " threads, "
            << math::format_fixed(result.wall_time_s * 1e3, 1) << " ms) ===\n\n";
  core::print_table(std::cout,
                    "(CT, Pchannel) points; '*' = on the Pareto front:",
                    core::pareto_table(result.to_tradeoff_sweep()));

  std::cout << "Per-BER Pareto fronts:\n";
  for (const double ber : bers) {
    std::vector<explore::CellResult> slice;
    for (const auto& cell : result.cells)
      if (cell.label("target_ber") == math::format_sci(ber, 0))
        slice.push_back(cell);
    const auto front =
        explore::pareto_front_indices(slice, explore::fig6b_objectives());
    std::cout << "  BER " << math::format_sci(ber, 0) << ": ";
    for (std::size_t i = 0; i < front.size(); ++i) {
      if (i) std::cout << " -> ";
      // Tags non-OOK formats ("H(7,4) @pam4") so mixed-modulation
      // fronts stay unambiguous; plain scheme names for OOK.
      std::cout << core::scheme_display_name(*slice[front[i]].scheme);
    }
    std::cout << "\n";
  }
  export_result(result, options);
  return 0;
}

// --- --noc -------------------------------------------------------------

int run_noc(const Options& options) {
  explore::ScenarioGrid grid;
  grid.traffic_patterns({explore::uniform_traffic(1e8),
                         explore::uniform_traffic(4e8),
                         explore::hotspot_traffic(2e8, 0, 0.5)})
      .laser_gating({true, false})
      .policies({core::Policy::kMinEnergy, core::Policy::kMinTime})
      .oni_counts({8, 12})
      .noc_horizon(1e-6);
  apply_modulation_axis(grid, options);
  const explore::SweepRunner runner{{options.threads}};
  const auto result = runner.run(grid);

  std::cout << "=== Multi-axis NoC sweep (" << result.cells.size()
            << " cells, " << result.threads_used << " threads, "
            << math::format_fixed(result.wall_time_s * 1e3, 1)
            << " ms) ===\n\n";
  // The modulation column appears only when --modulation declared the
  // axis; without it the historical column set (and output) stays
  // unchanged.
  const bool with_modulation = !options.modulations.empty();
  std::vector<std::string> headers{"oni", "traffic", "gating", "policy"};
  if (with_modulation) headers.push_back("modulation");
  for (const char* metric_header :
       {"delivered", "mean lat [ns]", "E/bit [pJ]", "idle laser [nJ]"})
    headers.push_back(metric_header);
  math::TextTable table(headers);
  for (const auto& cell : result.cells) {
    const auto label = [&](const std::string& axis) {
      return cell.label(axis).value_or("-");
    };
    std::vector<std::string> row{
        label("oni_count"),
        label("traffic"),
        label("laser_gating"),
        label("policy"),
    };
    if (with_modulation) row.push_back(label("modulation"));
    row.push_back(math::format_fixed(*cell.metric("delivered"), 0));
    row.push_back(
        math::format_fixed(*cell.metric("mean_latency_s") * 1e9, 1));
    row.push_back(math::format_fixed(
        math::as_pico(*cell.metric("energy_per_bit_j")), 2));
    row.push_back(
        math::format_fixed(*cell.metric("idle_laser_energy_j") * 1e9, 2));
    table.add_row(row);
  }
  table.render(std::cout);

  const auto front = result.pareto_front(
      {{"mean_latency_s", true}, {"energy_per_bit_j", true}});
  std::cout << "\nPareto front in (mean latency, energy/bit): "
            << front.size() << " of " << result.cells.size()
            << " cells.\n";
  export_result(result, options);
  return 0;
}

// --- --smoke -----------------------------------------------------------

int run_smoke(const Options& options) {
  // Link grid: every evaluator metric exercised, sequential vs parallel.
  explore::ScenarioGrid link_grid;
  link_grid.codes(explore::paper_scheme_names())
      .ber_targets({1e-8, 1e-10});
  // NoC grid: seeded simulation, gating on/off.
  explore::ScenarioGrid noc_grid;
  noc_grid.traffic_patterns({explore::uniform_traffic(2e8)})
      .laser_gating({true, false})
      .noc_horizon(5e-7);
  // Modulation grid: the OOK-vs-PAM4 sweep of the multilevel layer.
  explore::ScenarioGrid modulation_grid;
  modulation_grid.codes(explore::paper_scheme_names())
      .ber_targets({1e-8, 1e-10})
      .modulations({math::Modulation::kOok, math::Modulation::kPam4});

  const std::size_t parallel_threads = options.threads ? options.threads : 4;
  const explore::SweepRunner sequential{{1}};
  const explore::SweepRunner parallel{{parallel_threads}};
  explore::ExperimentResult link_result;
  for (const auto* grid : {&link_grid, &noc_grid, &modulation_grid}) {
    auto a = sequential.run(*grid);
    const auto b = parallel.run(*grid);
    if (a.csv() != b.csv() || a.json() != b.json()) {
      std::cerr << "smoke FAILED: sequential and parallel exports differ\n";
      return 1;
    }
    if (grid == &link_grid) link_result = std::move(a);
  }
  const auto front = link_result.pareto_front(explore::fig6b_objectives());
  if (front.empty()) {
    std::cerr << "smoke FAILED: empty Fig. 6b Pareto front\n";
    return 1;
  }
  std::cout << "smoke OK: " << link_grid.size() << "-cell link grid, "
            << noc_grid.size() << "-cell NoC grid and "
            << modulation_grid.size()
            << "-cell modulation grid byte-identical at 1 vs "
            << parallel_threads << " threads; front size " << front.size()
            << "\n";
  export_result(link_result, options);
  return 0;
}

// --- --bench -----------------------------------------------------------

int run_bench(const Options& options) {
  // >= 500 cells: full code family x 6 BER targets x 5 waveguide lengths.
  std::vector<std::string> code_names;
  for (const auto& code : ecc::all_known_codes())
    code_names.push_back(code->name());
  std::vector<explore::LinkVariant> lengths;
  for (const double cm : {2.0, 4.0, 6.0, 10.0, 14.0}) {
    link::MwsrParams p;
    p.waveguide_length_m = cm * 1e-2;
    lengths.emplace_back(math::format_fixed(cm, 0) + " cm", p);
  }
  explore::ScenarioGrid grid;
  grid.codes(code_names)
      .ber_targets({1e-6, 1e-7, 1e-8, 1e-9, 1e-10, 1e-11})
      .link_variants(lengths);
  apply_modulation_axis(grid, options);

  const std::size_t threads =
      options.threads ? options.threads : math::default_thread_count();
  const auto sequential = explore::SweepRunner{{1}}.run(grid);
  const auto parallel = explore::SweepRunner{{threads}}.run(grid);
  const bool identical = sequential.csv() == parallel.csv() &&
                         sequential.json() == parallel.json();
  const double speedup = parallel.wall_time_s > 0.0
                             ? sequential.wall_time_s / parallel.wall_time_s
                             : 0.0;

  std::cout << "{\n"
            << "  \"benchmark\": \"explore_fig6b_multiaxis_sweep\",\n"
            << "  \"cells\": " << grid.size() << ",\n"
            << "  \"hardware_concurrency\": "
            << std::thread::hardware_concurrency() << ",\n"
            << "  \"sequential_s\": " << sequential.wall_time_s << ",\n"
            << "  \"parallel_threads\": " << threads << ",\n"
            << "  \"parallel_s\": " << parallel.wall_time_s << ",\n"
            << "  \"speedup\": " << speedup << ",\n"
            << "  \"identical_output\": " << (identical ? "true" : "false")
            << "\n}\n";
  export_result(parallel, options);
  return identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fig6b" || arg == "--noc" || arg == "--smoke" ||
        arg == "--bench") {
      options.mode = arg;
    } else if (arg == "--threads" && i + 1 < argc) {
      if (!parse_size(argv[++i], options.threads)) {
        std::cerr << "bad --threads value: " << argv[i] << "\n";
        return usage(std::cerr, 2);
      }
    } else if (arg == "--csv" && i + 1 < argc) {
      options.csv_path = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      options.json_path = argv[++i];
    } else if (arg == "--modulation" && i + 1 < argc) {
      if (!parse_modulations(argv[++i], options.modulations)) {
        std::cerr << "bad --modulation value: " << argv[i] << "\n";
        return usage(std::cerr, 2);
      }
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return usage(std::cerr, 2);
    }
  }
  if (options.mode == "--fig6b") return run_fig6b(options);
  if (options.mode == "--noc") return run_noc(options);
  if (options.mode == "--smoke") return run_smoke(options);
  if (options.mode == "--bench") return run_bench(options);
  return usage(std::cerr, 2);
}
