// Command-line driver of the photecc experiment stack — a thin shim
// over photecc::spec: every mode and flag is parsed *into* an
// ExperimentSpec, which is then validated, optionally printed
// (--dump-spec) and executed by spec::run on the explore engine.  The
// same experiment can therefore be launched from C++ (SpecBuilder), a
// JSON document (--config) or these flags, interchangeably.
//
//   explore_cli --fig6b            reproduce the paper's Fig. 6b sweep
//   explore_cli --noc              multi-axis NoC sweep (traffic x load x
//                                  gating x policy x ONI count)
//   explore_cli --config FILE     run an ExperimentSpec JSON document
//   explore_cli --preset NAME     run a registered spec preset (fig6b,
//                                  noc, modulation, modulation-smoke)
//   explore_cli --smoke            fast end-to-end self-check (CI): runs a
//                                  small grid sequentially and in parallel
//                                  and verifies byte-identical exports;
//                                  with --config, checks that config's grid
//   explore_cli --bench            sequential-vs-parallel wall time on a
//                                  600-cell grid, JSON to stdout
//   explore_cli --serve            sweep-service loop on stdin/stdout:
//                                  NDJSON ExperimentSpec requests in,
//                                  streamed result records out (see
//                                  photecc::serve; serve_cli is the
//                                  full-featured frontend)
//   explore_cli --list-presets     registered preset names
//   explore_cli --list-link-variants  registered link variants
//   explore_cli --list-evaluators  registered cell evaluators
//   explore_cli --list-traffic     registered traffic kinds
//   explore_cli --list-environments  registered environment kinds
//
// Common flags: --threads N (0 = hardware), --csv FILE, --json FILE,
// --modulation LIST (comma-separated signaling formats, e.g.
// "ook,pam4"; adds a modulation axis to the grid), --dump-spec (print
// the effective spec as canonical JSON and exit).
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "photecc/core/report.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/explore/evaluators.hpp"
#include "photecc/explore/runner.hpp"
#include "photecc/math/json.hpp"
#include "photecc/math/parallel.hpp"
#include "photecc/math/table.hpp"
#include "photecc/math/units.hpp"
#include "photecc/serve/service.hpp"
#include "photecc/spec/builder.hpp"
#include "photecc/spec/cli.hpp"
#include "photecc/spec/registries.hpp"
#include "photecc/spec/run.hpp"

namespace {

using namespace photecc;

struct Options {
  std::string mode;           ///< --fig6b / --noc / --smoke / --bench
  std::string config_path;    ///< --config FILE
  std::string preset;         ///< --preset NAME
  bool dump_spec = false;
  std::optional<std::size_t> threads;
  std::string csv_path;
  std::string json_path;
  /// Modulation axis names; empty = no axis (OOK-only, the pre-PAM
  /// grids, byte-identical to historical outputs).
  std::vector<std::string> modulations;
};

int usage(std::ostream& os, int code) {
  os << "usage: explore_cli --fig6b | --noc | --smoke | --bench | --serve\n"
        "                   | --config FILE [--smoke]\n"
        "                   | --preset NAME [--smoke]\n"
        "                   | --list-presets | --list-link-variants\n"
        "                   | --list-evaluators | --list-traffic\n"
        "                   | --list-environments\n"
        "                   [--threads N] [--csv FILE] [--json FILE]\n"
        "                   [--modulation ook,pam4,pam8] [--dump-spec]\n";
  return code;
}

/// The --list-* subcommands: print one registry's contents and exit.
int run_list(const std::string& flag) {
  if (flag == "--list-presets")
    std::cout << spec::render_name_list("presets",
                                        spec::preset_registry().names());
  else if (flag == "--list-link-variants")
    std::cout << spec::render_name_list("link variants",
                                        spec::link_registry().names());
  else if (flag == "--list-traffic")
    std::cout << spec::render_name_list("traffic kinds",
                                        spec::traffic_registry().names());
  else if (flag == "--list-environments")
    std::cout << spec::render_name_list("environment kinds",
                                        spec::environment_registry().names());
  else
    std::cout << spec::render_name_list("evaluators",
                                        spec::evaluator_registry().names());
  return 0;
}

/// The --bench grid: full code family x 6 BER targets x 5 waveguide
/// lengths (>= 500 cells).
spec::ExperimentSpec bench_spec() {
  std::vector<std::string> code_names;
  for (const auto& code : ecc::all_known_codes())
    code_names.push_back(code->name());
  return spec::SpecBuilder()
      .name("bench-multiaxis")
      .codes(std::move(code_names))
      .ber_targets({1e-6, 1e-7, 1e-8, 1e-9, 1e-10, 1e-11})
      .links({"2 cm", "4 cm", "6 cm", "10 cm", "14 cm"})
      .build();
}

/// The effective spec of a single-grid mode: preset / config document /
/// bench grid, with the flag overrides applied.
spec::ExperimentSpec effective_spec(const Options& options) {
  spec::ExperimentSpec spec;
  if (!options.config_path.empty()) {
    std::ifstream is(options.config_path);
    if (!is)
      throw spec::SpecError("--config",
                            "cannot open '" + options.config_path + "'");
    std::ostringstream text;
    text << is.rdbuf();
    spec = spec::from_json(text.str());
  } else if (!options.preset.empty()) {
    spec = spec::preset_registry().make(options.preset, "--preset");
  } else if (options.mode == "--fig6b") {
    spec = spec::preset_registry().make("fig6b", "--fig6b");
  } else if (options.mode == "--noc") {
    spec = spec::preset_registry().make("noc", "--noc");
  } else {  // --bench
    spec = bench_spec();
  }
  if (options.threads) spec.threads = *options.threads;
  if (!options.modulations.empty()) spec.modulations = options.modulations;
  spec::validate(spec);
  return spec;
}

void export_result(const explore::ExperimentResult& result,
                   const Options& options) {
  if (!options.csv_path.empty()) {
    std::ofstream os(options.csv_path);
    result.write_csv(os);
    std::cout << "wrote " << options.csv_path << "\n";
  }
  if (!options.json_path.empty()) {
    std::ofstream os(options.json_path);
    result.write_json(os);
    std::cout << "wrote " << options.json_path << "\n";
  }
}

// --- --fig6b -----------------------------------------------------------

int run_fig6b(const spec::ExperimentSpec& experiment,
              const Options& options) {
  const auto result = spec::run(experiment);

  std::cout << "=== Fig. 6b on the explore engine (" << result.cells.size()
            << " cells, " << result.threads_used << " threads, "
            << math::format_fixed(result.wall_time_s * 1e3, 1) << " ms) ===\n\n";
  core::print_table(std::cout,
                    "(CT, Pchannel) points; '*' = on the Pareto front:",
                    core::pareto_table(result.to_tradeoff_sweep()));

  const auto objectives = spec::lower_objectives(experiment);
  std::cout << "Per-BER Pareto fronts:\n";
  for (const double ber : experiment.ber_targets) {
    std::vector<explore::CellResult> slice;
    for (const auto& cell : result.cells)
      if (cell.label("target_ber") == math::format_sci(ber, 0))
        slice.push_back(cell);
    const auto front = explore::pareto_front_indices(slice, objectives);
    std::cout << "  BER " << math::format_sci(ber, 0) << ": ";
    for (std::size_t i = 0; i < front.size(); ++i) {
      if (i) std::cout << " -> ";
      // Tags non-OOK formats ("H(7,4) @pam4") so mixed-modulation
      // fronts stay unambiguous; plain scheme names for OOK.
      std::cout << core::scheme_display_name(*slice[front[i]].scheme);
    }
    std::cout << "\n";
  }
  export_result(result, options);
  return 0;
}

// --- --noc -------------------------------------------------------------

int run_noc(const spec::ExperimentSpec& experiment, const Options& options) {
  const auto result = spec::run(experiment);

  std::cout << "=== Multi-axis NoC sweep (" << result.cells.size()
            << " cells, " << result.threads_used << " threads, "
            << math::format_fixed(result.wall_time_s * 1e3, 1)
            << " ms) ===\n\n";
  // The modulation column appears only when the spec declares the
  // axis; without it the historical column set (and output) stays
  // unchanged.
  const bool with_modulation = !experiment.modulations.empty();
  std::vector<std::string> headers{"oni", "traffic", "gating", "policy"};
  if (with_modulation) headers.push_back("modulation");
  for (const char* metric_header :
       {"delivered", "mean lat [ns]", "E/bit [pJ]", "idle laser [nJ]"})
    headers.push_back(metric_header);
  math::TextTable table(headers);
  for (const auto& cell : result.cells) {
    const auto label = [&](const std::string& axis) {
      return cell.label(axis).value_or("-");
    };
    std::vector<std::string> row{
        label("oni_count"),
        label("traffic"),
        label("laser_gating"),
        label("policy"),
    };
    if (with_modulation) row.push_back(label("modulation"));
    row.push_back(math::format_fixed(*cell.metric("delivered"), 0));
    row.push_back(
        math::format_fixed(*cell.metric("mean_latency_s") * 1e9, 1));
    row.push_back(math::format_fixed(
        math::as_pico(*cell.metric("energy_per_bit_j")), 2));
    row.push_back(
        math::format_fixed(*cell.metric("idle_laser_energy_j") * 1e9, 2));
    table.add_row(row);
  }
  table.render(std::cout);

  const auto front = result.pareto_front(spec::lower_objectives(experiment));
  std::cout << "\nPareto front in (mean latency, energy/bit): "
            << front.size() << " of " << result.cells.size()
            << " cells.\n";
  export_result(result, options);
  return 0;
}

// --- --config (generic spec-driven run) --------------------------------

int run_config(const spec::ExperimentSpec& experiment,
               const Options& options) {
  const auto result = spec::run(experiment);
  std::cout << "=== "
            << (experiment.name.empty() ? std::string("experiment")
                                        : experiment.name)
            << " (" << result.cells.size() << " cells, "
            << result.threads_used << " threads, "
            << math::format_fixed(result.wall_time_s * 1e3, 1)
            << " ms) ===\n";
  std::size_t feasible = 0;
  for (const auto& cell : result.cells)
    if (cell.feasible) ++feasible;
  std::cout << "feasible: " << feasible << " of " << result.cells.size()
            << "\n";
  if (!experiment.objectives.empty()) {
    const auto front =
        result.pareto_front(spec::lower_objectives(experiment));
    std::cout << "Pareto front (";
    for (std::size_t i = 0; i < experiment.objectives.size(); ++i) {
      if (i) std::cout << ", ";
      std::cout << (experiment.objectives[i].minimize ? "min " : "max ")
                << experiment.objectives[i].metric;
    }
    std::cout << "): " << front.size() << " cells\n";
    for (const std::size_t i : front) {
      const auto& cell = result.cells[i];
      std::cout << "  #" << cell.index;
      for (const auto& [axis, value] : cell.labels)
        std::cout << " " << axis << "=" << value;
      for (const auto& objective : experiment.objectives)
        std::cout << " " << objective.metric << "="
                  << math::json::number(
                         cell.metric(objective.metric).value_or(0.0));
      std::cout << "\n";
    }
  }
  export_result(result, options);
  return 0;
}

/// 1-vs-N byte-identity self-check of one spec (the --config --smoke
/// path CI runs on examples/specs/*.json).
int run_config_smoke(const spec::ExperimentSpec& experiment) {
  spec::ExperimentSpec sequential_spec = experiment;
  sequential_spec.threads = 1;
  spec::ExperimentSpec parallel_spec = experiment;
  if (parallel_spec.threads <= 1) parallel_spec.threads = 4;
  const auto sequential = spec::run(sequential_spec);
  const auto parallel = spec::run(parallel_spec);
  if (sequential.csv() != parallel.csv() ||
      sequential.json() != parallel.json()) {
    std::cerr << "smoke FAILED: sequential and parallel exports differ\n";
    return 1;
  }
  std::cout << "smoke OK: " << sequential.cells.size()
            << "-cell spec grid byte-identical at 1 vs "
            << parallel_spec.threads << " threads\n";
  return 0;
}

// --- --smoke -----------------------------------------------------------

int run_smoke(const Options& options) {
  // Link grid: every evaluator metric exercised, sequential vs parallel.
  const spec::ExperimentSpec link_spec =
      spec::SpecBuilder()
          .codes(explore::paper_scheme_names())
          .ber_targets({1e-8, 1e-10})
          .build();
  // NoC grid: seeded simulation, gating on/off.
  const spec::ExperimentSpec noc_spec = spec::SpecBuilder()
                                            .uniform_traffic(2e8)
                                            .laser_gating({true, false})
                                            .noc_horizon(5e-7)
                                            .build();
  // Modulation grid: the OOK-vs-PAM4 sweep of the multilevel layer.
  const spec::ExperimentSpec modulation_spec =
      spec::SpecBuilder()
          .codes(explore::paper_scheme_names())
          .ber_targets({1e-8, 1e-10})
          .modulations({"ook", "pam4"})
          .build();

  const std::size_t parallel_threads =
      options.threads.value_or(0) ? *options.threads : 4;
  explore::ExperimentResult link_result;
  for (const auto* experiment : {&link_spec, &noc_spec, &modulation_spec}) {
    spec::ExperimentSpec sequential_spec = *experiment;
    sequential_spec.threads = 1;
    spec::ExperimentSpec parallel_spec = *experiment;
    parallel_spec.threads = parallel_threads;
    auto a = spec::run(sequential_spec);
    const auto b = spec::run(parallel_spec);
    if (a.csv() != b.csv() || a.json() != b.json()) {
      std::cerr << "smoke FAILED: sequential and parallel exports differ\n";
      return 1;
    }
    if (experiment == &link_spec) link_result = std::move(a);
  }
  const auto front = link_result.pareto_front(explore::fig6b_objectives());
  if (front.empty()) {
    std::cerr << "smoke FAILED: empty Fig. 6b Pareto front\n";
    return 1;
  }
  std::cout << "smoke OK: " << spec::lower(link_spec).size()
            << "-cell link grid, " << spec::lower(noc_spec).size()
            << "-cell NoC grid and " << spec::lower(modulation_spec).size()
            << "-cell modulation grid byte-identical at 1 vs "
            << parallel_threads << " threads; front size " << front.size()
            << "\n";
  export_result(link_result, options);
  return 0;
}

// --- --bench -----------------------------------------------------------

int run_bench(const spec::ExperimentSpec& experiment,
              const Options& options) {
  spec::ExperimentSpec sequential_spec = experiment;
  sequential_spec.threads = 1;
  spec::ExperimentSpec parallel_spec = experiment;
  if (parallel_spec.threads == 0)
    parallel_spec.threads = math::default_thread_count();

  const auto sequential = spec::run(sequential_spec);
  const auto parallel = spec::run(parallel_spec);
  const bool identical = sequential.csv() == parallel.csv() &&
                         sequential.json() == parallel.json();
  const double speedup = parallel.wall_time_s > 0.0
                             ? sequential.wall_time_s / parallel.wall_time_s
                             : 0.0;

  std::cout << "{\n"
            << "  \"benchmark\": \"explore_fig6b_multiaxis_sweep\",\n"
            << "  \"cells\": " << sequential.cells.size() << ",\n"
            << "  \"hardware_concurrency\": "
            << std::thread::hardware_concurrency() << ",\n"
            << "  \"sequential_s\": " << sequential.wall_time_s << ",\n"
            << "  \"parallel_threads\": " << parallel_spec.threads << ",\n"
            << "  \"parallel_s\": " << parallel.wall_time_s << ",\n"
            << "  \"speedup\": " << speedup << ",\n"
            << "  \"identical_output\": " << (identical ? "true" : "false");
  // Lowered-plan observability counters (set whenever the sweep took
  // the plan hot path): root solves vs warm reuses, solver iterations,
  // lower/execute split and per-cell throughput.
  if (sequential.stats)
    std::cout << ",\n  \"sequential_plan\": " << sequential.stats->json();
  if (parallel.stats)
    std::cout << ",\n  \"parallel_plan\": " << parallel.stats->json();
  std::cout << "\n}\n";
  export_result(parallel, options);
  return identical ? 0 : 1;
}

int dispatch(const Options& options) {
  if (!options.config_path.empty() || !options.preset.empty()) {
    const spec::ExperimentSpec experiment = effective_spec(options);
    if (options.dump_spec) {
      std::cout << experiment.to_json();
      return 0;
    }
    if (options.mode == "--smoke") return run_config_smoke(experiment);
    return run_config(experiment, options);
  }
  if (options.mode == "--smoke") return run_smoke(options);
  if (options.mode == "--serve") {
    // The daemon mode: specs arrive as requests, not flags, so the
    // only flag honoured is the thread override (operational — it can
    // never change a sweep response's bytes).
    serve::Service service({.threads = options.threads.value_or(0)});
    service.run(std::cin, std::cout);
    return 0;
  }
  if (options.mode.empty()) return usage(std::cerr, 2);

  const spec::ExperimentSpec experiment = effective_spec(options);
  if (options.dump_spec) {
    std::cout << experiment.to_json();
    return 0;
  }
  if (options.mode == "--fig6b") return run_fig6b(experiment, options);
  if (options.mode == "--noc") return run_noc(experiment, options);
  return run_bench(experiment, options);
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--fig6b" || arg == "--noc" || arg == "--smoke" ||
          arg == "--bench" || arg == "--serve") {
        options.mode = arg;
      } else if (arg == "--list-presets" || arg == "--list-link-variants" ||
                 arg == "--list-evaluators" || arg == "--list-traffic" ||
                 arg == "--list-environments") {
        return run_list(arg);
      } else if (arg == "--config" && i + 1 < argc) {
        options.config_path = argv[++i];
      } else if (arg == "--preset" && i + 1 < argc) {
        options.preset = argv[++i];
      } else if (arg == "--dump-spec") {
        options.dump_spec = true;
      } else if (arg == "--threads" && i + 1 < argc) {
        options.threads = spec::parse_size("--threads", argv[++i]);
      } else if (arg == "--csv" && i + 1 < argc) {
        options.csv_path = argv[++i];
      } else if (arg == "--json" && i + 1 < argc) {
        options.json_path = argv[++i];
      } else if (arg == "--modulation" && i + 1 < argc) {
        options.modulations =
            spec::parse_modulation_names("--modulation", argv[++i]);
      } else if (arg == "--help" || arg == "-h") {
        return usage(std::cout, 0);
      } else {
        std::cerr << "unknown argument: " << arg << "\n";
        return usage(std::cerr, 2);
      }
    }
    if (!options.config_path.empty() && !options.preset.empty()) {
      std::cerr << "--config cannot be combined with --preset\n";
      return usage(std::cerr, 2);
    }
    if ((!options.config_path.empty() || !options.preset.empty()) &&
        !options.mode.empty() && options.mode != "--smoke") {
      std::cerr << "--config/--preset cannot be combined with "
                << options.mode << "\n";
      return usage(std::cerr, 2);
    }
    if (options.dump_spec && options.config_path.empty() &&
        options.preset.empty() &&
        (options.mode.empty() || options.mode == "--smoke" ||
         options.mode == "--serve")) {
      std::cerr << "--dump-spec needs a single-grid mode (--fig6b, --noc, "
                   "--bench or --config)\n";
      return usage(std::cerr, 2);
    }
    return dispatch(options);
  } catch (const spec::SpecError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const math::json::ParseError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    // Backstop for anything validation did not anticipate: still a
    // diagnostic and a clean exit, never std::terminate.
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
