// Adaptive ONoC demo: runs a mixed real-time / multimedia / best-effort
// workload through the MWSR NoC simulator twice — once with the
// energy/performance manager choosing the scheme per message, once
// pinned to uncoded — and reports what adaptivity bought.
//
//   $ ./adaptive_noc [--horizon-us T] [--seed S] [--no-gating]
#include <cstring>
#include <iostream>

#include "photecc/ecc/registry.hpp"
#include "photecc/math/table.hpp"
#include "photecc/math/units.hpp"
#include "photecc/noc/simulator.hpp"

int main(int argc, char** argv) {
  using namespace photecc;

  double horizon = 100e-6;
  std::uint64_t seed = 7;
  bool gating = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--horizon-us" && i + 1 < argc) {
      horizon = std::strtod(argv[++i], nullptr) * 1e-6;
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--no-gating") {
      gating = false;
    } else {
      std::cerr << "usage: adaptive_noc [--horizon-us T] [--seed S] "
                   "[--no-gating]\n";
      return 1;
    }
  }

  // Workload: four real-time streams with tight deadlines, plus bulk
  // multimedia frames and light best-effort noise.
  std::vector<noc::StreamingTraffic::Stream> streams;
  for (std::size_t s = 0; s < 4; ++s) {
    noc::StreamingTraffic::Stream stream;
    stream.source = s;
    stream.destination = 11 - s;
    stream.period_s = 2e-6;
    stream.frame_bits = 8192;
    stream.deadline_fraction = 0.3;
    stream.cls = noc::TrafficClass::kRealTime;
    streams.push_back(stream);
  }
  const noc::MixedTraffic workload(
      {std::make_shared<noc::StreamingTraffic>(streams),
       std::make_shared<noc::UniformRandomTraffic>(
           12, 5e6, 65536, noc::TrafficClass::kMultimedia),
       std::make_shared<noc::UniformRandomTraffic>(
           12, 2e6, 4096, noc::TrafficClass::kBestEffort)});

  noc::NocConfig adaptive;
  adaptive.laser_gating = gating;
  adaptive.scheme_menu = ecc::paper_schemes();
  adaptive.class_requirements[noc::TrafficClass::kRealTime] =
      noc::ClassRequirements{1e-9, core::Policy::kMinTime, 1.0,
                             std::nullopt};
  adaptive.class_requirements[noc::TrafficClass::kMultimedia] =
      noc::ClassRequirements{1e-9, core::Policy::kMinPower, std::nullopt,
                             std::nullopt};
  adaptive.class_requirements[noc::TrafficClass::kBestEffort] =
      noc::ClassRequirements{1e-9, core::Policy::kMinEnergy, std::nullopt,
                             std::nullopt};

  noc::NocConfig pinned = adaptive;
  pinned.scheme_menu = {ecc::make_code("w/o ECC")};
  pinned.class_requirements.clear();
  pinned.default_requirements.target_ber = 1e-9;

  const auto run_adaptive =
      noc::NocSimulator(adaptive).run(workload, horizon, seed);
  const auto run_pinned =
      noc::NocSimulator(pinned).run(workload, horizon, seed);

  math::TextTable table({"metric", "adaptive manager", "pinned w/o ECC"});
  const auto& a = run_adaptive.stats;
  const auto& p = run_pinned.stats;
  table.add_row({"messages delivered", std::to_string(a.delivered),
                 std::to_string(p.delivered)});
  table.add_row({"deadline misses", std::to_string(a.deadline_misses),
                 std::to_string(p.deadline_misses)});
  table.add_row({"mean latency [ns]",
                 math::format_fixed(a.mean_latency_s * 1e9, 1),
                 math::format_fixed(p.mean_latency_s * 1e9, 1)});
  table.add_row({"real-time mean latency [ns]",
                 math::format_fixed(
                     a.class_mean_latency_s.count(
                         noc::TrafficClass::kRealTime)
                         ? a.class_mean_latency_s.at(
                               noc::TrafficClass::kRealTime) * 1e9
                         : 0.0,
                     1),
                 math::format_fixed(
                     p.class_mean_latency_s.count(
                         noc::TrafficClass::kRealTime)
                         ? p.class_mean_latency_s.at(
                               noc::TrafficClass::kRealTime) * 1e9
                         : 0.0,
                     1)});
  table.add_row(
      {"energy / payload bit [pJ]",
       math::format_fixed(
           math::as_pico(
               a.energy_per_bit_j(run_adaptive.total_payload_bits)),
           2),
       math::format_fixed(
           math::as_pico(
               p.energy_per_bit_j(run_pinned.total_payload_bits)),
           2)});
  table.add_row({"laser energy [uJ]",
                 math::format_fixed(a.laser_energy_j * 1e6, 2),
                 math::format_fixed(p.laser_energy_j * 1e6, 2)});

  std::cout << "Adaptive MWSR ONoC, " << math::format_fixed(horizon * 1e6, 0)
            << " us horizon, laser gating "
            << (gating ? "on" : "off") << ":\n\n";
  table.render(std::cout);

  std::cout << "\nAdaptive scheme usage:";
  for (const auto& [scheme, count] : a.scheme_usage)
    std::cout << "  " << scheme << " x" << count;
  std::cout << "\n";
  return 0;
}
