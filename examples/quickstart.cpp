// Quickstart: size the laser of one MWSR optical channel for a target
// BER, with and without ECC.
//
//   $ ./quickstart [target_ber]
//
// Walks the public API end to end: build the paper's default channel,
// inspect its link budget, solve the operating point per scheme, and
// print the resulting power/performance table.
#include <cstdlib>
#include <iostream>

#include "photecc/core/report.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/link/link_budget.hpp"
#include "photecc/math/units.hpp"

int main(int argc, char** argv) {
  using namespace photecc;

  double target_ber = 1e-11;
  if (argc > 1) target_ber = std::strtod(argv[1], nullptr);
  if (target_ber <= 0.0 || target_ber >= 0.5) {
    std::cerr << "usage: quickstart [target_ber in (0, 0.5)]\n";
    return 1;
  }

  // 1. The optical channel: the paper's MWSR setup (12 ONIs,
  //    16 wavelengths, 6 cm waveguide) with every parameter overridable
  //    through link::MwsrParams.
  const link::MwsrChannel channel{link::MwsrParams{}};

  // 2. Where does the light go?  The stage-by-stage insertion-loss walk.
  std::cout << "Link budget (worst wavelength):\n";
  const auto budget =
      link::compute_link_budget(channel, channel.worst_channel());
  for (const auto& stage : budget.stages) {
    std::cout << "  " << stage.name << ": "
              << math::format_fixed(stage.loss_db, 3) << " dB\n";
  }
  std::cout << "  total: " << math::format_fixed(budget.total_loss_db, 2)
            << " dB + eye penalty "
            << math::format_fixed(budget.eye_penalty_db, 2) << " dB\n\n";

  // 3. Solve the operating point for each transmission scheme and print
  //    the paper's power/performance table.
  const auto metrics =
      core::evaluate_schemes(channel, ecc::paper_schemes(), target_ber);
  core::print_table(std::cout,
                    "Operating points @ target BER " +
                        math::format_sci(target_ber, 0) + ":",
                    core::metrics_table(metrics));

  // 4. One-line conclusion, like the paper's abstract.
  if (metrics[0].feasible && metrics[2].feasible) {
    const double saving =
        100.0 * (1.0 - metrics[2].p_laser_w / metrics[0].p_laser_w);
    std::cout << "Using H(7,4) cuts the laser power by "
              << math::format_fixed(saving, 1)
              << " % at the same BER, for a communication-time ratio of "
              << math::format_fixed(metrics[2].ct, 2) << ".\n";
  } else if (!metrics[0].feasible) {
    std::cout << "The uncoded scheme cannot reach this BER at all "
                 "(laser ceiling); the coded schemes can.\n";
  }
  return 0;
}
