// Quickstart: size the laser of one MWSR optical channel for a target
// BER, with and without ECC.
//
//   $ ./quickstart [target_ber]
//
// Walks the public API end to end on the declarative spec layer: the
// experiment — the paper's "paper" link variant, its three-scheme code
// menu and the BER target — is one ExperimentSpec built fluently, and
// spec::run evaluates it on the explore engine.  The same spec could
// equally come from a JSON document (spec::from_json) or explore_cli
// flags; see README "Three ways to describe an experiment".
#include <cstdlib>
#include <iostream>

#include "photecc/core/report.hpp"
#include "photecc/explore/evaluators.hpp"
#include "photecc/link/link_budget.hpp"
#include "photecc/math/units.hpp"
#include "photecc/spec/builder.hpp"
#include "photecc/spec/registries.hpp"
#include "photecc/spec/run.hpp"

int main(int argc, char** argv) {
  using namespace photecc;

  double target_ber = 1e-11;
  if (argc > 1) target_ber = std::strtod(argv[1], nullptr);
  if (target_ber <= 0.0 || target_ber >= 0.5) {
    std::cerr << "usage: quickstart [target_ber in (0, 0.5)]\n";
    return 1;
  }

  // 1. The experiment, declaratively: the paper's MWSR channel (12
  //    ONIs, 16 wavelengths, 6 cm waveguide — the "paper" link-registry
  //    variant) with the paper's three transmission schemes.
  const spec::ExperimentSpec experiment =
      spec::SpecBuilder()
          .name("quickstart")
          .link("paper")
          .codes(explore::paper_scheme_names())
          .ber_targets({target_ber})
          .build();

  // 2. Where does the light go?  The stage-by-stage insertion-loss walk
  //    on the channel the spec's link variant describes.
  const link::MwsrChannel channel{
      spec::link_registry().make(experiment.base_link, "base.link")};
  std::cout << "Link budget (worst wavelength):\n";
  const auto budget =
      link::compute_link_budget(channel, channel.worst_channel());
  for (const auto& stage : budget.stages) {
    std::cout << "  " << stage.name << ": "
              << math::format_fixed(stage.loss_db, 3) << " dB\n";
  }
  std::cout << "  total: " << math::format_fixed(budget.total_loss_db, 2)
            << " dB + eye penalty "
            << math::format_fixed(budget.eye_penalty_db, 2) << " dB\n\n";

  // 3. Run the spec and print the paper's power/performance table.
  const auto result = spec::run(experiment);
  std::vector<core::SchemeMetrics> metrics;
  for (const auto& cell : result.cells) metrics.push_back(*cell.scheme);
  core::print_table(std::cout,
                    "Operating points @ target BER " +
                        math::format_sci(target_ber, 0) + ":",
                    core::metrics_table(metrics));

  // 4. One-line conclusion, like the paper's abstract.
  if (metrics[0].feasible && metrics[2].feasible) {
    const double saving =
        100.0 * (1.0 - metrics[2].p_laser_w / metrics[0].p_laser_w);
    std::cout << "Using H(7,4) cuts the laser power by "
              << math::format_fixed(saving, 1)
              << " % at the same BER, for a communication-time ratio of "
              << math::format_fixed(metrics[2].ct, 2) << ".\n";
  } else if (!metrics[0].feasible) {
    std::cout << "The uncoded scheme cannot reach this BER at all "
                 "(laser ceiling); the coded schemes can.\n";
  }
  return 0;
}
