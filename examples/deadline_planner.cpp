// Deadline planner: the manager's request/response protocol from the
// application's point of view (paper Section III-C).  Given a payload
// size, a deadline and a BER requirement, it asks the Optical Link
// Energy/Performance Manager for the cheapest configuration that meets
// them, and shows how the answer changes as the deadline tightens.
//
//   $ ./deadline_planner [payload_bits] [target_ber]
#include <cstdlib>
#include <iostream>
#include <optional>

#include "photecc/core/manager.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/math/table.hpp"
#include "photecc/math/units.hpp"

int main(int argc, char** argv) {
  using namespace photecc;

  std::uint64_t payload_bits = 64 * 1024;
  double target_ber = 1e-11;
  if (argc > 1) payload_bits = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) target_ber = std::strtod(argv[2], nullptr);

  const core::SystemConfig system;
  const core::LinkManager manager(link::MwsrChannel{link::MwsrParams{}},
                                  ecc::paper_schemes(), system);

  // Uncoded reference transfer time: payload striped over NW
  // wavelengths at Fmod.
  const double base_time_s =
      std::ceil(static_cast<double>(payload_bits) /
                static_cast<double>(system.wavelengths)) /
      system.f_mod_hz;

  std::cout << "Transfer: " << payload_bits << " bits over "
            << system.wavelengths << " wavelengths @ "
            << math::format_fixed(system.f_mod_hz / 1e9, 0)
            << " Gb/s, target BER " << math::format_sci(target_ber, 0)
            << "\nUncoded transfer time: "
            << math::format_fixed(base_time_s * 1e9, 1) << " ns\n\n";

  math::TextTable table({"deadline [ns]", "scheme", "transfer [ns]",
                         "Plaser [mW]", "Pchannel [mW]", "E/bit [pJ]"});
  for (const double slack : {3.0, 2.0, 1.75, 1.3, 1.11, 1.05, 1.0}) {
    core::CommunicationRequest request;
    request.target_ber = target_ber;
    request.policy = core::Policy::kMinPower;
    request.max_ct = slack;
    const auto config = manager.configure(request);
    const double deadline_ns = slack * base_time_s * 1e9;
    if (!config) {
      table.add_row({math::format_fixed(deadline_ns, 1),
                     "-- none feasible --", "-", "-", "-", "-"});
      continue;
    }
    const auto& m = config->metrics;
    table.add_row({
        math::format_fixed(deadline_ns, 1),
        m.scheme,
        math::format_fixed(m.ct * base_time_s * 1e9, 1),
        math::format_fixed(math::as_milli(m.p_laser_w), 2),
        math::format_fixed(math::as_milli(m.p_channel_w), 2),
        math::format_fixed(math::as_pico(m.energy_per_bit_j), 2),
    });
  }
  table.render(std::cout);

  std::cout << "\nReading: with slack, the manager picks the strongest "
               "code (minimum laser power); as the deadline approaches "
               "the uncoded transfer time, it falls back to weaker/no "
               "coding — the paper's run-time trade-off in action.\n";

  // Show the BER floor story too.
  std::cout << "\nLowest reachable BER on this channel (any scheme): "
            << math::format_sci(manager.best_reachable_ber(), 2)
            << " — uncoded alone cannot go below "
            << math::format_sci(
                   link::best_achievable_ber(
                       manager.channel(), *ecc::make_code("w/o ECC")),
                   2)
            << " (laser ceiling).\n";
  return 0;
}
