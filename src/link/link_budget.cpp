#include "photecc/link/link_budget.hpp"

#include <cmath>

#include "photecc/math/table.hpp"
#include "photecc/math/units.hpp"

namespace photecc::link {

LinkBudget compute_link_budget(const MwsrChannel& channel, std::size_t ch) {
  const MwsrParams& p = channel.params();
  LinkBudget budget;
  double transmission = 1.0;

  const auto push = [&](std::string name, double stage_transmission) {
    transmission *= stage_transmission;
    BudgetStage stage;
    stage.name = std::move(name);
    stage.loss_db = math::transmission_to_loss_db(stage_transmission);
    stage.cumulative_transmission = transmission;
    stage.cumulative_loss_db = math::transmission_to_loss_db(transmission);
    budget.stages.push_back(std::move(stage));
  };

  push("laser-waveguide coupling",
       math::loss_db_to_transmission(p.laser_coupling_loss_db));
  push("MMI multiplexer",
       math::loss_db_to_transmission(p.mux_insertion_loss_db));
  push("waveguide propagation (" +
           math::format_fixed(p.waveguide_length_m * 100.0, 1) + " cm)",
       channel.waveguide().transmission());

  // Reconstruct the parked-ring contribution from the channel model so
  // the walk matches signal_path_transmission exactly.
  const double bus = channel.bus_transmission(ch);
  const double known =
      math::loss_db_to_transmission(p.laser_coupling_loss_db) *
      math::loss_db_to_transmission(p.mux_insertion_loss_db) *
      channel.waveguide().transmission() * channel.ring().through_off();
  const double parked_total = bus / known;
  push("parked writer rings (" +
           std::to_string(channel.intermediate_writer_count()) +
           " writers x " + std::to_string(p.grid.channel_count) + " rings)",
       parked_total);
  push("active modulator ('1' state)", channel.ring().through_off());
  push("reader drop filter", channel.ring().drop_aligned());
  push("photodetector coupling",
       channel.detector().coupling_transmission());

  budget.total_transmission = transmission;
  budget.total_loss_db = math::transmission_to_loss_db(transmission);
  if (p.include_eye_penalty) {
    const double eye = 1.0 - 1.0 / channel.extinction_ratio();
    budget.eye_penalty_db = math::transmission_to_loss_db(eye);
  }
  budget.crosstalk_transmission = channel.crosstalk_transmission(ch);
  return budget;
}

}  // namespace photecc::link
