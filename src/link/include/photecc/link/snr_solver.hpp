// End-to-end solver chain of the paper (Sections IV-D/IV-E):
//
//   target BER --(code model, Eq. 2/3)--> required raw p and SNR
//             --(Eq. 4)--> required OPsignal at the detector
//             --(MWSR link budget)--> required laser output OPlaser
//             --(VCSEL wall-plug model, Fig. 4)--> electrical Plaser
//
// plus feasibility against the laser's deliverable maximum (the paper's
// "BER 1e-12 is not reachable without ECC" result).
#ifndef PHOTECC_LINK_SNR_SOLVER_HPP
#define PHOTECC_LINK_SNR_SOLVER_HPP

#include <optional>

#include "photecc/ecc/block_code.hpp"
#include "photecc/env/environment.hpp"
#include "photecc/link/mwsr_channel.hpp"

namespace photecc::link {

/// Operating point solved for one (code, target BER) pair.
struct LinkOperatingPoint {
  double target_ber = 0.0;
  double raw_ber = 0.0;        ///< required channel error prob. p
  double snr = 0.0;            ///< required linear SNR (Eq. 3 inverse)
  double op_signal_w = 0.0;    ///< required eye power at the detector
  double op_crosstalk_w = 0.0; ///< worst-case crosstalk at the detector
  double op_laser_w = 0.0;     ///< required laser output power
  bool feasible = false;       ///< within the laser's deliverable range
  /// Electrical laser power [W]; meaningful only when feasible.
  double p_laser_w = 0.0;
};

/// Hoists the per-channel invariants of the operating-point chain —
/// the O(NW^2) worst-channel scan, the eye/crosstalk transmissions and
/// the detector constants — so a sweep pays them once per channel
/// instead of once per (code, BER) cell.  solve() is bit-identical to
/// the free solve_operating_point on the same channel/wavelength: the
/// hoisted subexpressions keep the exact evaluation order of the
/// one-shot path.
class OperatingPointSolver {
 public:
  /// Hoists for the channel's worst wavelength (the default of every
  /// static analysis).
  explicit OperatingPointSolver(const MwsrChannel& channel);
  /// Hoists for an explicit wavelength channel index.
  OperatingPointSolver(const MwsrChannel& channel, std::size_t ch);

  /// Bit-identical to
  /// solve_operating_point(channel, code, target_ber, ch, environment).
  /// The code's transmit_duty_bound() is applied to the activity the
  /// laser derating sees (1.0 for non-cooling codes — no change).
  [[nodiscard]] LinkOperatingPoint solve(
      const ecc::BlockCode& code, double target_ber,
      const env::EnvironmentSample& environment,
      ecc::RawBerSolveTrace* trace = nullptr) const;

  /// Same, reusing `previous` when it solved the identical (code,
  /// target) pair on this channel: the raw-BER/SNR head of the chain is
  /// taken from the previous solution (bit-equal by construction)
  /// instead of re-running the code-model inversion.  `previous` must
  /// come from the same code and channel; a null or target-mismatched
  /// previous degrades to the cold solve bit-identically.
  [[nodiscard]] LinkOperatingPoint solve(
      const ecc::BlockCode& code, double target_ber,
      const env::EnvironmentSample& environment,
      const LinkOperatingPoint* previous,
      ecc::RawBerSolveTrace* trace = nullptr) const;

  /// Tail of the chain from a precomputed raw-BER requirement — the
  /// lowered-plan entry point, where (code, target) inversions are
  /// hoisted into a shared table.  `raw_ber` must equal
  /// code.required_raw_ber(target_ber) for bit-identity with solve().
  /// `duty_bound` is the code's transmit_duty_bound(): values < 1 scale
  /// the activity the laser derating sees (fewer simultaneously-hot
  /// wires heat the array less); 1.0 (the default) is bit-identical to
  /// the pre-duty solver.
  [[nodiscard]] LinkOperatingPoint solve_from_raw_ber(
      double raw_ber, double target_ber,
      const env::EnvironmentSample& environment,
      double duty_bound = 1.0) const;

  /// Tail from a precomputed (raw BER, SNR) pair — the batched entry:
  /// the explore plan computes SNR for a whole struct-of-arrays cell
  /// block in one pass, then assembles operating points here.  `snr`
  /// must equal snr_from_ber_clamped(modulation, raw_ber) for
  /// bit-identity (solve_from_raw_ber is exactly that composition).
  [[nodiscard]] LinkOperatingPoint solve_from_snr(
      double raw_ber, double snr, double target_ber,
      const env::EnvironmentSample& environment,
      double duty_bound = 1.0) const;

  [[nodiscard]] std::size_t channel_index() const noexcept { return ch_; }
  [[nodiscard]] double eye_transmission() const noexcept { return t_eye_; }
  [[nodiscard]] double crosstalk_transmission() const noexcept {
    return t_xt_;
  }
  /// T_eye - T_xt; <= 0 means no laser power can reach any target.
  [[nodiscard]] double margin() const noexcept { return margin_; }

 private:
  const MwsrChannel* channel_;
  std::size_t ch_;
  double t_eye_;
  double t_xt_;
  double margin_;
  /// R * (T_eye - T_xt): the denominator of the OP_laser expression,
  /// precomputed with the same association as the one-shot path.
  double op_denominator_;
  double dark_current_a_;
};

/// Solves the full chain for `code` at `target_ber` on `channel`,
/// using the channel's worst wavelength and the environment at t = 0
/// (`channel.environment()` — the static operating point).
/// Throws std::domain_error for target_ber outside (0, 0.5).
LinkOperatingPoint solve_operating_point(const MwsrChannel& channel,
                                         const ecc::BlockCode& code,
                                         double target_ber);

/// Same, for an explicit wavelength channel index.
LinkOperatingPoint solve_operating_point(const MwsrChannel& channel,
                                         const ecc::BlockCode& code,
                                         double target_ber, std::size_t ch);

/// Same, at an explicit environment sample — the entry point of every
/// time-varying analysis: the manager's recalibration loop and the NoC
/// simulator resolve the timeline to a sample and solve here.
LinkOperatingPoint solve_operating_point(
    const MwsrChannel& channel, const ecc::BlockCode& code,
    double target_ber, const env::EnvironmentSample& environment);

LinkOperatingPoint solve_operating_point(
    const MwsrChannel& channel, const ecc::BlockCode& code,
    double target_ber, std::size_t ch,
    const env::EnvironmentSample& environment);

/// Warm-start overload: `previous` is an optional previous-cell
/// solution for the SAME code on the same channel (nullptr = cold).
/// When previous->target_ber bit-equals target_ber the code-model
/// inversion is skipped and its raw-BER/SNR head reused; otherwise the
/// result is bit-identical to the cold overload.
LinkOperatingPoint solve_operating_point(
    const MwsrChannel& channel, const ecc::BlockCode& code,
    double target_ber, const env::EnvironmentSample& environment,
    const LinkOperatingPoint* previous);

/// Best post-decoding BER achievable on `channel` with `code` when the
/// laser runs at its deliverable maximum; the floor of Fig. 5's curves.
/// Evaluated at the t = 0 environment sample.
double best_achievable_ber(const MwsrChannel& channel,
                           const ecc::BlockCode& code);

/// Same, at an explicit environment sample.
double best_achievable_ber(const MwsrChannel& channel,
                           const ecc::BlockCode& code,
                           const env::EnvironmentSample& environment);

}  // namespace photecc::link

#endif  // PHOTECC_LINK_SNR_SOLVER_HPP
