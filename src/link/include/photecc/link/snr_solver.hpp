// End-to-end solver chain of the paper (Sections IV-D/IV-E):
//
//   target BER --(code model, Eq. 2/3)--> required raw p and SNR
//             --(Eq. 4)--> required OPsignal at the detector
//             --(MWSR link budget)--> required laser output OPlaser
//             --(VCSEL wall-plug model, Fig. 4)--> electrical Plaser
//
// plus feasibility against the laser's deliverable maximum (the paper's
// "BER 1e-12 is not reachable without ECC" result).
#ifndef PHOTECC_LINK_SNR_SOLVER_HPP
#define PHOTECC_LINK_SNR_SOLVER_HPP

#include <optional>

#include "photecc/ecc/block_code.hpp"
#include "photecc/env/environment.hpp"
#include "photecc/link/mwsr_channel.hpp"

namespace photecc::link {

/// Operating point solved for one (code, target BER) pair.
struct LinkOperatingPoint {
  double target_ber = 0.0;
  double raw_ber = 0.0;        ///< required channel error prob. p
  double snr = 0.0;            ///< required linear SNR (Eq. 3 inverse)
  double op_signal_w = 0.0;    ///< required eye power at the detector
  double op_crosstalk_w = 0.0; ///< worst-case crosstalk at the detector
  double op_laser_w = 0.0;     ///< required laser output power
  bool feasible = false;       ///< within the laser's deliverable range
  /// Electrical laser power [W]; meaningful only when feasible.
  double p_laser_w = 0.0;
};

/// Solves the full chain for `code` at `target_ber` on `channel`,
/// using the channel's worst wavelength and the environment at t = 0
/// (`channel.environment()` — the static operating point).
/// Throws std::domain_error for target_ber outside (0, 0.5).
LinkOperatingPoint solve_operating_point(const MwsrChannel& channel,
                                         const ecc::BlockCode& code,
                                         double target_ber);

/// Same, for an explicit wavelength channel index.
LinkOperatingPoint solve_operating_point(const MwsrChannel& channel,
                                         const ecc::BlockCode& code,
                                         double target_ber, std::size_t ch);

/// Same, at an explicit environment sample — the entry point of every
/// time-varying analysis: the manager's recalibration loop and the NoC
/// simulator resolve the timeline to a sample and solve here.
LinkOperatingPoint solve_operating_point(
    const MwsrChannel& channel, const ecc::BlockCode& code,
    double target_ber, const env::EnvironmentSample& environment);

LinkOperatingPoint solve_operating_point(
    const MwsrChannel& channel, const ecc::BlockCode& code,
    double target_ber, std::size_t ch,
    const env::EnvironmentSample& environment);

/// Best post-decoding BER achievable on `channel` with `code` when the
/// laser runs at its deliverable maximum; the floor of Fig. 5's curves.
/// Evaluated at the t = 0 environment sample.
double best_achievable_ber(const MwsrChannel& channel,
                           const ecc::BlockCode& code);

/// Same, at an explicit environment sample.
double best_achievable_ber(const MwsrChannel& channel,
                           const ecc::BlockCode& code,
                           const env::EnvironmentSample& environment);

}  // namespace photecc::link

#endif  // PHOTECC_LINK_SNR_SOLVER_HPP
