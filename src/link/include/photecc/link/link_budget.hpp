// Stage-by-stage insertion-loss walk of the MWSR signal path, for
// reporting and for validating the channel model against hand
// calculations.
#ifndef PHOTECC_LINK_LINK_BUDGET_HPP
#define PHOTECC_LINK_LINK_BUDGET_HPP

#include <string>
#include <vector>

#include "photecc/link/mwsr_channel.hpp"

namespace photecc::link {

/// One stage of the link budget.
struct BudgetStage {
  std::string name;
  double loss_db = 0.0;           ///< loss contributed by this stage
  double cumulative_loss_db = 0.0;
  double cumulative_transmission = 1.0;
};

/// Full loss walk for the worst-case path of channel `ch`.
struct LinkBudget {
  std::vector<BudgetStage> stages;
  double total_loss_db = 0.0;
  double total_transmission = 1.0;
  double eye_penalty_db = 0.0;       ///< (1 - 1/ER) expressed as loss
  double crosstalk_transmission = 0.0;
};

/// Computes the budget for channel `ch` of `channel`.
LinkBudget compute_link_budget(const MwsrChannel& channel, std::size_t ch);

}  // namespace photecc::link

#endif  // PHOTECC_LINK_LINK_BUDGET_HPP
