// MWSR (Multiple Writer Single Reader) optical channel model — the
// paper's evaluation substrate (Section IV, after the transmission model
// of Li et al. [8]).
//
// Physical layout along one waveguide:
//
//   lasers -> MUX -> writer_1 -> writer_2 -> ... -> writer_{N-1} -> reader
//
// Each writer carries NW modulator MRs (one per wavelength); the reader
// carries NW drop-filter/photodetector pairs.  The worst-case signal
// path is the writer adjacent to the MUX: its modulated signal crosses
// every other writer's parked (OFF state) rings before reaching the
// reader.  Worst-case crosstalk at detector i assumes every other
// wavelength carries a '1' at full power and leaks through detector i's
// Lorentzian drop tail.
#ifndef PHOTECC_LINK_MWSR_CHANNEL_HPP
#define PHOTECC_LINK_MWSR_CHANNEL_HPP

#include <cstddef>
#include <memory>
#include <optional>

#include "photecc/env/environment.hpp"
#include "photecc/math/modulation.hpp"
#include "photecc/photonics/laser.hpp"
#include "photecc/photonics/microring.hpp"
#include "photecc/photonics/photodetector.hpp"
#include "photecc/photonics/waveguide.hpp"
#include "photecc/photonics/wdm.hpp"

namespace photecc::link {

/// Complete parameter set of one MWSR channel.  Defaults reproduce the
/// paper's evaluation setup: 12 ONIs, 16 wavelengths, 6 cm waveguide at
/// 0.274 dB/cm, ER = 6.9 dB, R = 1 A/W, i_n = 4 uA, 25 % chip activity.
struct MwsrParams {
  std::size_t oni_count = 12;       ///< ONIs on the channel (1 reader)
  photonics::WdmGrid grid{};        ///< 16 carriers
  photonics::MicroRingParams ring{};
  photonics::PhotodetectorParams detector{};
  double waveguide_loss_db_per_cm = 0.274;  ///< [17]
  double waveguide_length_m = 0.06;         ///< 6 cm
  double laser_coupling_loss_db = 1.3;      ///< VCSEL -> waveguide
  double mux_insertion_loss_db = 1.3;       ///< MMI combiner [12]
  /// DEPRECATED alias: the electrical-layer activity as a frozen
  /// scalar, kept for source compatibility.  When `environment` is
  /// unset this value seeds a constant env::EnvironmentTimeline (the
  /// paper's static 25 % operating point); when `environment` is set
  /// this field is ignored.  MwsrChannel::environment_timeline() is the
  /// only reader — no other layer may touch this field directly.
  double chip_activity = 0.25;
  /// Time-varying operating environment of the channel.  Unset =
  /// constant timeline seeded from the `chip_activity` alias above.
  std::optional<env::EnvironmentTimeline> environment{};
  /// Subtract the residual '0'-level power from the eye amplitude
  /// (OPsignal refers to the usable eye, not the raw '1' level).
  bool include_eye_penalty = true;
  /// Include worst-case inter-channel crosstalk (Eq. 4's OPcrosstalk).
  bool include_crosstalk = true;
  /// Signaling format of every wavelength on the channel.  Multilevel
  /// formats carry bits_per_symbol(modulation) bits per Fmod cycle but
  /// need (levels-1)^2 times the OOK SNR — and laser power — for the
  /// same raw BER (see math/modulation.hpp).
  math::Modulation modulation = math::Modulation::kOok;
  /// Wall-plug model; null selects photonics::default_laser_model().
  std::shared_ptr<const photonics::LaserPowerModel> laser_model{};
};

/// Static transmission analysis of one MWSR channel.
class MwsrChannel {
 public:
  explicit MwsrChannel(const MwsrParams& params);

  [[nodiscard]] const MwsrParams& params() const noexcept { return params_; }

  /// Number of writers on the channel (oni_count - 1).
  [[nodiscard]] std::size_t writer_count() const noexcept {
    return params_.oni_count - 1;
  }

  /// Parked rings crossed by the worst-case writer's signal.
  [[nodiscard]] std::size_t intermediate_writer_count() const noexcept {
    return writer_count() - 1;
  }

  /// End-to-end power transmission of the worst-case signal path for
  /// channel `ch`, from laser output to detector input, for a '1'
  /// (modulator OFF).  Includes laser coupling, MUX, waveguide,
  /// parked-ring crossings, the active modulator, the reader drop and
  /// the detector coupling.
  [[nodiscard]] double signal_path_transmission(std::size_t ch) const;

  /// Same path without the final aligned drop + detector coupling
  /// (power arriving at the reader on the bus), used by the crosstalk
  /// computation.
  [[nodiscard]] double bus_transmission(std::size_t ch) const;

  /// Worst-case crosstalk transmission into detector `ch`: the summed
  /// leakage of every other carrier (all at '1') through this
  /// detector's drop tail, normalised to the per-carrier laser output
  /// power.  Zero when include_crosstalk is false.
  [[nodiscard]] double crosstalk_transmission(std::size_t ch) const;

  /// Usable eye transmission: signal path scaled by (1 - 1/ER) when
  /// include_eye_penalty is set.
  [[nodiscard]] double eye_transmission(std::size_t ch) const;

  /// Worst channel index (largest required laser power: smallest
  /// eye-minus-crosstalk margin).  With a uniform grid this is a
  /// mid-grid channel that sees both crosstalk neighbours.
  [[nodiscard]] std::size_t worst_channel() const;

  /// Extinction ratio of the modulator rings (linear).
  [[nodiscard]] double extinction_ratio() const noexcept;

  /// The channel's resolved environment timeline: params().environment
  /// when set, else a constant timeline seeded from the deprecated
  /// chip_activity alias.  This resolution is the alias shim — the one
  /// place in the library that reads MwsrParams::chip_activity.
  [[nodiscard]] const env::EnvironmentTimeline& environment_timeline()
      const noexcept {
    return environment_;
  }

  /// Environment sample at time `t` on the resolved timeline.
  [[nodiscard]] env::EnvironmentSample environment_at(double t) const {
    return env::sample_at(environment_, t);
  }

  /// The t = 0 sample — what every static (single-operating-point)
  /// analysis consumes.  For constant timelines this is the whole
  /// story, reproducing the pre-environment behaviour exactly.
  [[nodiscard]] env::EnvironmentSample environment() const {
    return environment_at(0.0);
  }

  [[nodiscard]] const photonics::MicroRing& ring() const noexcept {
    return ring_;
  }
  [[nodiscard]] const photonics::Photodetector& detector() const noexcept {
    return detector_;
  }
  [[nodiscard]] const photonics::Waveguide& waveguide() const noexcept {
    return waveguide_;
  }
  [[nodiscard]] const photonics::LaserPowerModel& laser() const noexcept {
    return *laser_;
  }

 private:
  /// Through transmission of one parked writer's full ring group for a
  /// signal on channel `ch` (same-wavelength ring in OFF state + the
  /// NW-1 neighbouring rings at their grid detunings).
  [[nodiscard]] double parked_writer_transmission(std::size_t ch) const;

  MwsrParams params_;
  env::EnvironmentTimeline environment_;
  photonics::MicroRing ring_;
  photonics::Photodetector detector_;
  photonics::Waveguide waveguide_;
  std::shared_ptr<const photonics::LaserPowerModel> laser_;
};

}  // namespace photecc::link

#endif  // PHOTECC_LINK_MWSR_CHANNEL_HPP
