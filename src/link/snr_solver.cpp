#include "photecc/link/snr_solver.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "photecc/ecc/ber_model.hpp"
#include "photecc/math/modulation.hpp"
#include "photecc/math/special.hpp"

namespace photecc::link {

LinkOperatingPoint solve_operating_point(
    const MwsrChannel& channel, const ecc::BlockCode& code,
    double target_ber, std::size_t ch,
    const env::EnvironmentSample& environment) {
  if (target_ber <= 0.0 || target_ber >= 0.5)
    throw std::domain_error(
        "solve_operating_point: target BER outside (0, 0.5)");

  LinkOperatingPoint point;
  point.target_ber = target_ber;
  point.raw_ber = code.required_raw_ber(target_ber);
  // Full-eye SNR: for multilevel formats the per-boundary requirement
  // scales by (levels-1)^2, which snr_from_ber_clamped folds in.
  point.snr = math::snr_from_ber_clamped(channel.params().modulation,
                                         point.raw_ber);

  // Both the eye power and the crosstalk scale linearly with the common
  // per-carrier laser output power OP:
  //   OP_eye = OP * T_eye,   OP_xt = OP * T_xt
  //   SNR = R (OP_eye - OP_xt) / i_n
  // => OP = SNR i_n / (R (T_eye - T_xt)).
  const double t_eye = channel.eye_transmission(ch);
  const double t_xt = channel.crosstalk_transmission(ch);
  const auto& det = channel.detector().params();
  const double margin = t_eye - t_xt;
  if (margin <= 0.0) {
    // Crosstalk exceeds the eye: no laser power can reach the target.
    point.feasible = false;
    point.op_laser_w = std::numeric_limits<double>::infinity();
    return point;
  }
  point.op_laser_w =
      point.snr * det.dark_current_a / (det.responsivity_a_per_w * margin);
  point.op_signal_w = point.op_laser_w * t_eye;
  point.op_crosstalk_w = point.op_laser_w * t_xt;

  const auto& laser = channel.laser();
  const auto electrical =
      laser.electrical_power(point.op_laser_w, environment.activity);
  if (electrical) {
    point.feasible = true;
    point.p_laser_w = *electrical;
  }
  return point;
}

LinkOperatingPoint solve_operating_point(
    const MwsrChannel& channel, const ecc::BlockCode& code,
    double target_ber, const env::EnvironmentSample& environment) {
  return solve_operating_point(channel, code, target_ber,
                               channel.worst_channel(), environment);
}

LinkOperatingPoint solve_operating_point(const MwsrChannel& channel,
                                         const ecc::BlockCode& code,
                                         double target_ber, std::size_t ch) {
  return solve_operating_point(channel, code, target_ber, ch,
                               channel.environment());
}

LinkOperatingPoint solve_operating_point(const MwsrChannel& channel,
                                         const ecc::BlockCode& code,
                                         double target_ber) {
  return solve_operating_point(channel, code, target_ber,
                               channel.worst_channel(),
                               channel.environment());
}

double best_achievable_ber(const MwsrChannel& channel,
                           const ecc::BlockCode& code,
                           const env::EnvironmentSample& environment) {
  const std::size_t ch = channel.worst_channel();
  const double t_eye = channel.eye_transmission(ch);
  const double t_xt = channel.crosstalk_transmission(ch);
  const double margin = t_eye - t_xt;
  if (margin <= 0.0) return 0.5;
  const auto& det = channel.detector().params();
  const double op_max =
      channel.laser().max_optical_power(environment.activity);
  const double snr_max =
      det.responsivity_a_per_w * op_max * margin / det.dark_current_a;
  return ecc::achieved_ber(code, snr_max, channel.params().modulation);
}

double best_achievable_ber(const MwsrChannel& channel,
                           const ecc::BlockCode& code) {
  return best_achievable_ber(channel, code, channel.environment());
}

}  // namespace photecc::link
