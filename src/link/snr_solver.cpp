#include "photecc/link/snr_solver.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "photecc/ecc/ber_model.hpp"
#include "photecc/math/modulation.hpp"
#include "photecc/math/special.hpp"

namespace photecc::link {

OperatingPointSolver::OperatingPointSolver(const MwsrChannel& channel,
                                           std::size_t ch)
    : channel_(&channel), ch_(ch) {
  // Both the eye power and the crosstalk scale linearly with the common
  // per-carrier laser output power OP:
  //   OP_eye = OP * T_eye,   OP_xt = OP * T_xt
  //   SNR = R (OP_eye - OP_xt) / i_n
  // => OP = SNR i_n / (R (T_eye - T_xt)).
  t_eye_ = channel.eye_transmission(ch);
  t_xt_ = channel.crosstalk_transmission(ch);
  margin_ = t_eye_ - t_xt_;
  const auto& det = channel.detector().params();
  op_denominator_ = det.responsivity_a_per_w * margin_;
  dark_current_a_ = det.dark_current_a;
}

OperatingPointSolver::OperatingPointSolver(const MwsrChannel& channel)
    : OperatingPointSolver(channel, channel.worst_channel()) {}

namespace {

/// Activity the laser thermally sees under a guaranteed wire-duty
/// bound.  The branch (rather than an unconditional multiply) keeps the
/// duty_bound == 1.0 path bit-identical to the pre-duty solver even for
/// activities where `activity * 1.0` could round.
[[nodiscard]] double effective_activity(double activity,
                                        double duty_bound) noexcept {
  return duty_bound < 1.0 ? activity * duty_bound : activity;
}

}  // namespace

LinkOperatingPoint OperatingPointSolver::solve_from_raw_ber(
    double raw_ber, double target_ber,
    const env::EnvironmentSample& environment, double duty_bound) const {
  // Full-eye SNR: for multilevel formats the per-boundary requirement
  // scales by (levels-1)^2, which snr_from_ber_clamped folds in.
  return solve_from_snr(
      raw_ber,
      math::snr_from_ber_clamped(channel_->params().modulation, raw_ber),
      target_ber, environment, duty_bound);
}

LinkOperatingPoint OperatingPointSolver::solve_from_snr(
    double raw_ber, double snr, double target_ber,
    const env::EnvironmentSample& environment, double duty_bound) const {
  LinkOperatingPoint point;
  point.target_ber = target_ber;
  point.raw_ber = raw_ber;
  point.snr = snr;
  if (margin_ <= 0.0) {
    // Crosstalk exceeds the eye: no laser power can reach the target.
    point.feasible = false;
    point.op_laser_w = std::numeric_limits<double>::infinity();
    return point;
  }
  point.op_laser_w = point.snr * dark_current_a_ / op_denominator_;
  point.op_signal_w = point.op_laser_w * t_eye_;
  point.op_crosstalk_w = point.op_laser_w * t_xt_;

  const auto electrical = channel_->laser().electrical_power(
      point.op_laser_w,
      effective_activity(environment.activity, duty_bound));
  if (electrical) {
    point.feasible = true;
    point.p_laser_w = *electrical;
  }
  return point;
}

LinkOperatingPoint OperatingPointSolver::solve(
    const ecc::BlockCode& code, double target_ber,
    const env::EnvironmentSample& environment,
    const LinkOperatingPoint* previous, ecc::RawBerSolveTrace* trace) const {
  if (target_ber <= 0.0 || target_ber >= 0.5)
    throw std::domain_error(
        "solve_operating_point: target BER outside (0, 0.5)");
  // The raw-BER head depends only on (code, target): a previous-cell
  // solution for the bit-equal target is reused verbatim, anything else
  // re-runs the inversion — bit-identical either way.
  if (previous && previous->target_ber == target_ber) {
    if (trace) *trace = {0, true};
    return solve_from_raw_ber(previous->raw_ber, target_ber, environment,
                              code.transmit_duty_bound());
  }
  return solve_from_raw_ber(
      code.required_raw_ber_checked(target_ber, trace).raw_ber, target_ber,
      environment, code.transmit_duty_bound());
}

LinkOperatingPoint OperatingPointSolver::solve(
    const ecc::BlockCode& code, double target_ber,
    const env::EnvironmentSample& environment,
    ecc::RawBerSolveTrace* trace) const {
  return solve(code, target_ber, environment, nullptr, trace);
}

LinkOperatingPoint solve_operating_point(
    const MwsrChannel& channel, const ecc::BlockCode& code,
    double target_ber, std::size_t ch,
    const env::EnvironmentSample& environment) {
  return OperatingPointSolver{channel, ch}.solve(code, target_ber,
                                                 environment);
}

LinkOperatingPoint solve_operating_point(
    const MwsrChannel& channel, const ecc::BlockCode& code,
    double target_ber, const env::EnvironmentSample& environment) {
  return solve_operating_point(channel, code, target_ber,
                               channel.worst_channel(), environment);
}

LinkOperatingPoint solve_operating_point(
    const MwsrChannel& channel, const ecc::BlockCode& code,
    double target_ber, const env::EnvironmentSample& environment,
    const LinkOperatingPoint* previous) {
  return OperatingPointSolver{channel}.solve(code, target_ber, environment,
                                             previous);
}

LinkOperatingPoint solve_operating_point(const MwsrChannel& channel,
                                         const ecc::BlockCode& code,
                                         double target_ber, std::size_t ch) {
  return solve_operating_point(channel, code, target_ber, ch,
                               channel.environment());
}

LinkOperatingPoint solve_operating_point(const MwsrChannel& channel,
                                         const ecc::BlockCode& code,
                                         double target_ber) {
  return solve_operating_point(channel, code, target_ber,
                               channel.worst_channel(),
                               channel.environment());
}

double best_achievable_ber(const MwsrChannel& channel,
                           const ecc::BlockCode& code,
                           const env::EnvironmentSample& environment) {
  const std::size_t ch = channel.worst_channel();
  const double t_eye = channel.eye_transmission(ch);
  const double t_xt = channel.crosstalk_transmission(ch);
  const double margin = t_eye - t_xt;
  if (margin <= 0.0) return 0.5;
  const auto& det = channel.detector().params();
  const double op_max = channel.laser().max_optical_power(
      code.transmit_duty_bound() < 1.0
          ? environment.activity * code.transmit_duty_bound()
          : environment.activity);
  const double snr_max =
      det.responsivity_a_per_w * op_max * margin / det.dark_current_a;
  return ecc::achieved_ber(code, snr_max, channel.params().modulation);
}

double best_achievable_ber(const MwsrChannel& channel,
                           const ecc::BlockCode& code) {
  return best_achievable_ber(channel, code, channel.environment());
}

}  // namespace photecc::link
