#include "photecc/link/mwsr_channel.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "photecc/math/units.hpp"

namespace photecc::link {

MwsrChannel::MwsrChannel(const MwsrParams& params)
    : params_(params),
      // Alias shim: the deprecated chip_activity scalar becomes a
      // constant timeline unless an explicit environment is declared.
      environment_(params.environment
                       ? *params.environment
                       : env::EnvironmentTimeline::constant(
                             params.chip_activity)),
      ring_(params.ring),
      detector_(params.detector),
      waveguide_(params.waveguide_loss_db_per_cm, params.waveguide_length_m),
      laser_(params.laser_model ? params.laser_model
                                : photonics::default_laser_model()) {
  if (params.oni_count < 2)
    throw std::invalid_argument("MwsrChannel: need at least 2 ONIs");
  if (params.grid.channel_count == 0)
    throw std::invalid_argument("MwsrChannel: zero wavelengths");
  // Activity range checking happens when the alias shim above builds
  // the constant timeline; explicit timelines validate on construction.
}

double MwsrChannel::parked_writer_transmission(std::size_t ch) const {
  const double lambda = params_.grid.wavelength(ch);
  double transmission = 1.0;
  for (std::size_t other = 0; other < params_.grid.channel_count; ++other) {
    // A parked modulator sits in the OFF state: resonance blue-shifted
    // by the modulation shift away from its own carrier.
    const double resonance = params_.grid.wavelength(other) -
                             params_.ring.modulation_shift_m;
    transmission *= ring_.through(lambda, resonance);
  }
  return transmission;
}

double MwsrChannel::bus_transmission(std::size_t ch) const {
  double t = math::loss_db_to_transmission(params_.laser_coupling_loss_db);
  t *= math::loss_db_to_transmission(params_.mux_insertion_loss_db);
  t *= waveguide_.transmission();
  // The worst-case writer is adjacent to the MUX: its signal crosses
  // every other writer's parked ring group.
  const std::size_t crossings = intermediate_writer_count();
  const double parked = parked_writer_transmission(ch);
  t *= std::pow(parked, static_cast<double>(crossings));
  // Active writer: the '1' level passes its own modulator in OFF state;
  // its other rings are parked like an intermediate writer's, which the
  // parked term for the own group approximates with the same-wavelength
  // ring replaced by the modulator itself.
  t *= ring_.through_off();
  return t;
}

double MwsrChannel::signal_path_transmission(std::size_t ch) const {
  return bus_transmission(ch) * ring_.drop_aligned() *
         detector_.coupling_transmission();
}

double MwsrChannel::crosstalk_transmission(std::size_t ch) const {
  if (!params_.include_crosstalk) return 0.0;
  double x = 0.0;
  for (std::size_t other = 0; other < params_.grid.channel_count; ++other) {
    if (other == ch) continue;
    const double detuning = params_.grid.detuning(ch, other);
    // Worst case: carrier `other` holds a '1' at full bus power and
    // leaks through detector ch's drop tail.
    x += bus_transmission(other) * ring_.drop_detuned(detuning) *
         detector_.coupling_transmission();
  }
  return x;
}

double MwsrChannel::eye_transmission(std::size_t ch) const {
  double t = signal_path_transmission(ch);
  if (params_.include_eye_penalty) {
    // The '0' level is the '1' level divided by ER; the detector decides
    // on the eye opening P1 - P0 = P1 (1 - 1/ER).
    t *= 1.0 - 1.0 / extinction_ratio();
  }
  return t;
}

std::size_t MwsrChannel::worst_channel() const {
  std::size_t worst = 0;
  double worst_margin = std::numeric_limits<double>::infinity();
  for (std::size_t ch = 0; ch < params_.grid.channel_count; ++ch) {
    const double margin = eye_transmission(ch) - crosstalk_transmission(ch);
    if (margin < worst_margin) {
      worst_margin = margin;
      worst = ch;
    }
  }
  return worst;
}

double MwsrChannel::extinction_ratio() const noexcept {
  return ring_.extinction_ratio();
}

}  // namespace photecc::link
