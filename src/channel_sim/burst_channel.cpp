#include "photecc/channel_sim/burst_channel.hpp"

#include <stdexcept>

namespace photecc::channel_sim {

GilbertElliottChannel::GilbertElliottChannel(
    const GilbertElliottParams& params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  const auto check_prob = [](double p, const char* what) {
    if (p < 0.0 || p > 1.0)
      throw std::invalid_argument(std::string("GilbertElliottChannel: ") +
                                  what + " outside [0, 1]");
  };
  check_prob(params.p_good_to_bad, "p_good_to_bad");
  check_prob(params.p_bad_to_good, "p_bad_to_good");
  check_prob(params.error_prob_good, "error_prob_good");
  check_prob(params.error_prob_bad, "error_prob_bad");
  if (params.p_good_to_bad + params.p_bad_to_good <= 0.0)
    throw std::invalid_argument(
        "GilbertElliottChannel: degenerate chain (no transitions)");
}

double GilbertElliottChannel::bad_state_fraction() const noexcept {
  return params_.p_good_to_bad /
         (params_.p_good_to_bad + params_.p_bad_to_good);
}

double GilbertElliottChannel::average_error_prob() const noexcept {
  const double pi_bad = bad_state_fraction();
  return pi_bad * params_.error_prob_bad +
         (1.0 - pi_bad) * params_.error_prob_good;
}

double GilbertElliottChannel::mean_burst_length() const noexcept {
  return params_.p_bad_to_good > 0.0 ? 1.0 / params_.p_bad_to_good
                                     : 0.0;
}

bool GilbertElliottChannel::transmit(bool bit) noexcept {
  const double p_error =
      bad_ ? params_.error_prob_bad : params_.error_prob_good;
  const bool out = rng_.bernoulli(p_error) ? !bit : bit;
  // Advance the state chain after using the current state.
  if (bad_) {
    if (rng_.bernoulli(params_.p_bad_to_good)) bad_ = false;
  } else {
    if (rng_.bernoulli(params_.p_good_to_bad)) bad_ = true;
  }
  return out;
}

ecc::BitVec GilbertElliottChannel::transmit(const ecc::BitVec& word)
    noexcept {
  ecc::BitVec out(word.size());
  for (std::size_t i = 0; i < word.size(); ++i)
    out.set(i, transmit(word.get(i)));
  return out;
}

std::vector<bool> GilbertElliottChannel::transmit(
    const std::vector<bool>& wire) noexcept {
  std::vector<bool> out;
  out.reserve(wire.size());
  for (const bool bit : wire) out.push_back(transmit(bit));
  return out;
}

}  // namespace photecc::channel_sim
