#include "photecc/channel_sim/ook_channel.hpp"

#include <cmath>
#include <stdexcept>

#include "photecc/math/special.hpp"

namespace photecc::channel_sim {

OokChannel::OokChannel(double snr, std::uint64_t seed)
    : snr_(snr), rng_(seed) {
  if (snr <= 0.0)
    throw std::invalid_argument("OokChannel: SNR must be positive");
  sigma_ = 1.0 / (2.0 * std::sqrt(2.0 * snr));
}

double OokChannel::analytic_raw_ber() const noexcept {
  return math::raw_ber_from_snr(snr_);
}

double OokChannel::transmit_analog(bool bit) noexcept {
  const double level = bit ? 1.0 : 0.0;
  return level + sigma_ * rng_.normal();
}

bool OokChannel::transmit(bool bit) noexcept {
  return transmit_analog(bit) > 0.5;
}

ecc::BitVec OokChannel::transmit(const ecc::BitVec& word) noexcept {
  ecc::BitVec out(word.size());
  for (std::size_t i = 0; i < word.size(); ++i)
    out.set(i, transmit(word.get(i)));
  return out;
}

std::vector<bool> OokChannel::transmit(const std::vector<bool>& wire) noexcept {
  std::vector<bool> out;
  out.reserve(wire.size());
  for (const bool bit : wire) out.push_back(transmit(bit));
  return out;
}

}  // namespace photecc::channel_sim
