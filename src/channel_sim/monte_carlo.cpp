#include "photecc/channel_sim/monte_carlo.hpp"

#include <stdexcept>

#include "photecc/channel_sim/ook_channel.hpp"
#include "photecc/codec/batch_mc.hpp"
#include "photecc/interface/datapath.hpp"
#include "photecc/math/special.hpp"

namespace photecc::channel_sim {
namespace {

ecc::BitVec random_word(std::size_t size, math::Xoshiro256& rng) {
  ecc::BitVec word(size);
  for (std::size_t i = 0; i < size; ++i) word.set(i, rng.bernoulli(0.5));
  return word;
}

BerMeasurement finalize(std::uint64_t errors, std::uint64_t bits,
                        double analytic, double confidence) {
  BerMeasurement m;
  m.bit_errors = errors;
  m.bits = bits;
  m.measured_ber =
      bits ? static_cast<double>(errors) / static_cast<double>(bits) : 0.0;
  m.interval = math::wilson_interval(errors, bits, confidence);
  m.analytic_ber = analytic;
  return m;
}

}  // namespace

BerMeasurement measure_raw_ber(double snr, std::uint64_t bits,
                               const MonteCarloOptions& options) {
  if (bits == 0) throw std::invalid_argument("measure_raw_ber: zero bits");
  OokChannel channel(snr, options.seed);
  math::Xoshiro256 rng(options.seed ^ 0xabcdef);
  std::uint64_t errors = 0;
  // 64-bit chunks, counted word-parallel (BitVec::count_errors).  Both
  // RNG streams are consumed one draw per bit in the same order as the
  // old per-bit loop, so the measured counts are bit-identical to it.
  for (std::uint64_t done = 0; done < bits;) {
    const std::size_t chunk =
        static_cast<std::size_t>(bits - done < 64 ? bits - done : 64);
    ecc::BitVec sent(chunk);
    for (std::size_t i = 0; i < chunk; ++i) sent.set(i, rng.bernoulli(0.5));
    errors += sent.count_errors(channel.transmit(sent));
    done += chunk;
  }
  return finalize(errors, bits, math::raw_ber_from_snr(snr),
                  options.confidence);
}

BerMeasurement measure_coded_ber(const ecc::BlockCode& code, double snr,
                                 std::uint64_t blocks,
                                 const MonteCarloOptions& options) {
  if (blocks == 0)
    throw std::invalid_argument("measure_coded_ber: zero blocks");
  OokChannel channel(snr, options.seed);
  math::Xoshiro256 rng(options.seed ^ 0xfeedface);
  const std::size_t k = code.message_length();
  std::uint64_t errors = 0;
  for (std::uint64_t b = 0; b < blocks; ++b) {
    const ecc::BitVec message = random_word(k, rng);
    const ecc::BitVec sent = code.encode(message);
    const ecc::BitVec received = channel.transmit(sent);
    const ecc::DecodeResult decoded = code.decode(received);
    errors += message.distance(decoded.message);
  }
  const double p = math::raw_ber_from_snr(snr);
  return finalize(errors, blocks * k, code.decoded_ber(p),
                  options.confidence);
}

BerMeasurement measure_end_to_end_ber(const ecc::BlockCodePtr& code,
                                      double snr, std::uint64_t words,
                                      std::size_t n_data,
                                      const MonteCarloOptions& options) {
  if (!code) throw std::invalid_argument("measure_end_to_end_ber: null code");
  if (words == 0)
    throw std::invalid_argument("measure_end_to_end_ber: zero words");
  const interface::TransmitterDatapath tx(code, n_data);
  const interface::ReceiverDatapath rx(code, n_data);
  OokChannel channel(snr, options.seed);
  math::Xoshiro256 rng(options.seed ^ 0xdecade);
  std::uint64_t errors = 0;
  for (std::uint64_t w = 0; w < words; ++w) {
    const ecc::BitVec word = random_word(n_data, rng);
    const std::vector<bool> wire = tx.transmit(word);
    const std::vector<bool> received = channel.transmit(wire);
    const interface::ReceiveResult result = rx.receive(received);
    errors += word.distance(result.word);
  }
  const double p = math::raw_ber_from_snr(snr);
  return finalize(errors, words * n_data, code->decoded_ber(p),
                  options.confidence);
}

BerMeasurement measure_coded_ber_batch(const ecc::BlockCode& code, double snr,
                                       std::uint64_t blocks,
                                       const MonteCarloOptions& options) {
  if (blocks == 0)
    throw std::invalid_argument("measure_coded_ber_batch: zero blocks");
  const double p = math::raw_ber_from_snr(snr);
  const codec::BatchTrialResult trials =
      codec::run_coded_trials(code, p, blocks, options.seed ^ 0xfeedface);
  return finalize(trials.bit_errors, trials.bits, code.decoded_ber(p),
                  options.confidence);
}

BerMeasurement measure_end_to_end_ber_batch(const ecc::BlockCodePtr& code,
                                            double snr, std::uint64_t words,
                                            std::size_t n_data,
                                            const MonteCarloOptions& options) {
  if (!code)
    throw std::invalid_argument("measure_end_to_end_ber_batch: null code");
  if (words == 0)
    throw std::invalid_argument("measure_end_to_end_ber_batch: zero words");
  const interface::TransmitterDatapath tx(code, n_data);
  const interface::ReceiverDatapath rx(code, n_data);
  const double p = math::raw_ber_from_snr(snr);
  math::Xoshiro256 rng(options.seed ^ 0xdecade);
  std::uint64_t errors = 0;
  for (std::uint64_t done = 0; done < words;) {
    const std::size_t lanes = static_cast<std::size_t>(
        words - done < codec::BitSlab::kLanes ? words - done
                                              : codec::BitSlab::kLanes);
    const codec::BitSlab sent = codec::random_message_slab(n_data, lanes, rng);
    codec::BitSlab wire = tx.transmit_batch(sent);
    codec::inject_errors(wire, p, rng);
    const interface::BatchReceiveResult received = rx.receive_batch(wire);
    errors += codec::count_errors(sent, received.words);
    done += lanes;
  }
  return finalize(errors, words * n_data, code->decoded_ber(p),
                  options.confidence);
}

}  // namespace photecc::channel_sim
