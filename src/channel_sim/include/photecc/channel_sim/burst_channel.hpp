// Gilbert-Elliott two-state burst channel: a Markov chain alternating
// between a good state (low error probability) and a bad state (high
// error probability, e.g. a laser transient or a thermal drift event).
// Used to study how interleaving restores the Hamming schemes'
// performance when errors cluster.
#ifndef PHOTECC_CHANNEL_SIM_BURST_CHANNEL_HPP
#define PHOTECC_CHANNEL_SIM_BURST_CHANNEL_HPP

#include <vector>

#include "photecc/ecc/bitvec.hpp"
#include "photecc/math/rng.hpp"

namespace photecc::channel_sim {

/// Gilbert-Elliott parameters.
struct GilbertElliottParams {
  double p_good_to_bad = 1e-3;  ///< per-bit transition probability
  double p_bad_to_good = 0.1;
  double error_prob_good = 1e-6;
  double error_prob_bad = 0.3;
};

/// The burst channel.
class GilbertElliottChannel {
 public:
  GilbertElliottChannel(const GilbertElliottParams& params,
                        std::uint64_t seed);

  [[nodiscard]] const GilbertElliottParams& params() const noexcept {
    return params_;
  }

  /// Stationary probability of being in the bad state.
  [[nodiscard]] double bad_state_fraction() const noexcept;

  /// Long-run average bit error probability.
  [[nodiscard]] double average_error_prob() const noexcept;

  /// Mean burst (bad-state dwell) length in bits.
  [[nodiscard]] double mean_burst_length() const noexcept;

  /// Transmits one bit through the current state, then advances the
  /// chain.
  bool transmit(bool bit) noexcept;

  /// Word/wire overloads.
  [[nodiscard]] ecc::BitVec transmit(const ecc::BitVec& word) noexcept;
  [[nodiscard]] std::vector<bool> transmit(
      const std::vector<bool>& wire) noexcept;

  /// True when the chain currently sits in the bad state.
  [[nodiscard]] bool in_bad_state() const noexcept { return bad_; }

 private:
  GilbertElliottParams params_;
  math::Xoshiro256 rng_;
  bool bad_ = false;
};

}  // namespace photecc::channel_sim

#endif  // PHOTECC_CHANNEL_SIM_BURST_CHANNEL_HPP
