// Monte-Carlo BER measurement harness: validates the analytic models
// (Eq. 2/3) against bit-true simulation of the codecs over the AWGN OOK
// channel, including full transmitter -> channel -> receiver runs
// through the serializer datapaths.
#ifndef PHOTECC_CHANNEL_SIM_MONTE_CARLO_HPP
#define PHOTECC_CHANNEL_SIM_MONTE_CARLO_HPP

#include <cstdint>

#include "photecc/ecc/block_code.hpp"
#include "photecc/math/stats.hpp"

namespace photecc::channel_sim {

/// Outcome of one BER measurement.
struct BerMeasurement {
  std::uint64_t bit_errors = 0;
  std::uint64_t bits = 0;
  double measured_ber = 0.0;
  math::ProportionInterval interval{};  ///< Wilson CI at the requested level
  double analytic_ber = 0.0;            ///< model prediction for comparison

  /// True when the analytic prediction falls inside the interval.
  [[nodiscard]] bool consistent() const noexcept {
    return interval.contains(analytic_ber);
  }
};

/// Options shared by the measurements.
struct MonteCarloOptions {
  std::uint64_t seed = 0x5eed;
  double confidence = 0.99;
};

/// Measures the raw (uncoded) channel BER at `snr` over `bits` bits and
/// compares against Eq. 3.
BerMeasurement measure_raw_ber(double snr, std::uint64_t bits,
                               const MonteCarloOptions& options = {});

/// Measures the post-decoding BER of `code` at channel SNR `snr` over
/// `blocks` codewords of random payloads and compares against the
/// code's analytic decoded_ber (Eq. 2 for Hamming codes).
BerMeasurement measure_coded_ber(const ecc::BlockCode& code, double snr,
                                 std::uint64_t blocks,
                                 const MonteCarloOptions& options = {});

/// End-to-end run: random Ndata-bit IP words through the transmitter
/// datapath (encode + serialize), the AWGN channel, and the receiver
/// datapath (deserialize + decode).  Measures payload BER.
BerMeasurement measure_end_to_end_ber(const ecc::BlockCodePtr& code,
                                      double snr, std::uint64_t words,
                                      std::size_t n_data = 64,
                                      const MonteCarloOptions& options = {});

/// Batch (word-parallel) form of measure_coded_ber, 64 codewords per
/// slab pass through the bitsliced kernels.  The hard-decision AWGN OOK
/// channel is exactly a BSC with p = raw_ber_from_snr(snr), so the
/// batch path injects iid flips at p straight into the slab words
/// (codec::inject_errors): the same error law as the scalar channel,
/// sampled by a different deterministic stream — reproducible per seed,
/// but not draw-for-draw equal to measure_coded_ber.
BerMeasurement measure_coded_ber_batch(const ecc::BlockCode& code, double snr,
                                       std::uint64_t blocks,
                                       const MonteCarloOptions& options = {});

/// Batch form of measure_end_to_end_ber: 64 IP words per slab through
/// the batch datapaths (transmit_batch -> BSC injection ->
/// receive_batch).  Same channel-law note as measure_coded_ber_batch.
BerMeasurement measure_end_to_end_ber_batch(
    const ecc::BlockCodePtr& code, double snr, std::uint64_t words,
    std::size_t n_data = 64, const MonteCarloOptions& options = {});

}  // namespace photecc::channel_sim

#endif  // PHOTECC_CHANNEL_SIM_MONTE_CARLO_HPP
