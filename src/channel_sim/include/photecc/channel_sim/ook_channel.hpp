// On-Off-Keying channel with additive white Gaussian noise, calibrated
// to the paper's SNR definition: a channel constructed with linear SNR
// `snr` has raw bit error probability exactly
//
//     p = 1/2 erfc(sqrt(snr))            (paper Eq. 3)
//
// Construction: '1' is sent as analog level 1.0, '0' as level 0.0, the
// receiver thresholds at 0.5, and the noise deviation is
// sigma = 1 / (2 sqrt(2 snr)), so that Q(0.5/sigma) = 1/2 erfc(sqrt(snr)).
#ifndef PHOTECC_CHANNEL_SIM_OOK_CHANNEL_HPP
#define PHOTECC_CHANNEL_SIM_OOK_CHANNEL_HPP

#include <vector>

#include "photecc/ecc/bitvec.hpp"
#include "photecc/math/rng.hpp"

namespace photecc::channel_sim {

/// AWGN OOK channel.
class OokChannel {
 public:
  /// `snr` must be positive.
  OokChannel(double snr, std::uint64_t seed);

  [[nodiscard]] double snr() const noexcept { return snr_; }
  [[nodiscard]] double noise_sigma() const noexcept { return sigma_; }

  /// Analytic raw error probability of this channel (Eq. 3).
  [[nodiscard]] double analytic_raw_ber() const noexcept;

  /// Transmits one bit; returns the detected bit.
  bool transmit(bool bit) noexcept;

  /// Analog sample for one bit before thresholding (for eye diagrams).
  double transmit_analog(bool bit) noexcept;

  /// Transmits a whole word; returns the detected word.
  [[nodiscard]] ecc::BitVec transmit(const ecc::BitVec& word) noexcept;

  /// Transmits a wire sequence (serializer output).
  [[nodiscard]] std::vector<bool> transmit(
      const std::vector<bool>& wire) noexcept;

 private:
  double snr_;
  double sigma_;
  math::Xoshiro256 rng_;
};

}  // namespace photecc::channel_sim

#endif  // PHOTECC_CHANNEL_SIM_OOK_CHANNEL_HPP
