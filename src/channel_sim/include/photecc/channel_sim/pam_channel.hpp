// Gray-coded M-ary PAM channel with additive white Gaussian noise,
// calibrated to the same convention as OokChannel: a channel built with
// full-eye linear SNR `snr` places its M levels at k/(M-1) for
// k = 0..M-1 with noise deviation sigma = 1/(2 sqrt(2 snr)), so each
// sub-eye boundary errs with probability exactly
// 1/2 erfc(sqrt(snr)/(M-1)).
//
// Bits map to levels through a Gray code (adjacent levels differ in one
// bit), so a one-level slip corrupts exactly one of the log2(M) bits of
// the symbol and the bit error rate matches
// math::pam_ber_from_snr(snr, M) up to the (exponentially rarer)
// multi-level slips, which flip up to 2 Gray bits at once.  M = 2 is
// statistically identical to OokChannel.
#ifndef PHOTECC_CHANNEL_SIM_PAM_CHANNEL_HPP
#define PHOTECC_CHANNEL_SIM_PAM_CHANNEL_HPP

#include <cstdint>
#include <vector>

#include "photecc/ecc/bitvec.hpp"
#include "photecc/math/modulation.hpp"
#include "photecc/math/rng.hpp"

namespace photecc::channel_sim {

/// AWGN M-PAM channel with Gray-coded level mapping.
class PamChannel {
 public:
  /// `snr` must be positive; `modulation` selects M.
  PamChannel(double snr, math::Modulation modulation, std::uint64_t seed);

  [[nodiscard]] double snr() const noexcept { return snr_; }
  [[nodiscard]] double noise_sigma() const noexcept { return sigma_; }
  [[nodiscard]] math::Modulation modulation() const noexcept {
    return modulation_;
  }
  [[nodiscard]] std::size_t levels() const noexcept { return levels_; }
  [[nodiscard]] std::size_t bits_per_symbol() const noexcept {
    return bits_per_symbol_;
  }

  /// Analytic bit error rate of this channel
  /// (math::pam_ber_from_snr; adjacent-slip Gray approximation).
  [[nodiscard]] double analytic_ber() const noexcept;

  /// Transmits one symbol (level index in [0, M)); returns the detected
  /// level index.
  [[nodiscard]] std::size_t transmit_symbol(std::size_t level) noexcept;

  /// Analog sample for one symbol before slicing (for eye diagrams).
  [[nodiscard]] double transmit_analog(std::size_t level) noexcept;

  /// Transmits a whole word, bits_per_symbol() bits per symbol in wire
  /// order (bit i*b+j is bit j of symbol i, LSB first).  A trailing
  /// partial symbol is padded with zero bits on the wire; the pad is
  /// stripped from the returned word, which has word.size() bits.
  [[nodiscard]] ecc::BitVec transmit(const ecc::BitVec& word) noexcept;

  /// Transmits a wire sequence (serializer output), same grouping and
  /// tail-padding rules as the BitVec overload.
  [[nodiscard]] std::vector<bool> transmit(
      const std::vector<bool>& wire) noexcept;

 private:
  double snr_;
  double sigma_;
  math::Modulation modulation_;
  std::size_t levels_;
  std::size_t bits_per_symbol_;
  /// Shared symbol-grouping loop of the two transmit overloads:
  /// packs bits [base, base+b) with `get`, runs the symbol through the
  /// channel, unpacks with `set`; tail bits are zero-padded on the
  /// wire and the pad stripped on return.
  template <typename Get, typename Set>
  void transmit_bits(std::size_t size, Get get, Set set) noexcept;

  /// level_of_code_[c] = Gray rank of bit pattern c; code_of_level_ is
  /// its inverse (the pattern transmitted at a given amplitude level).
  std::vector<std::size_t> level_of_code_;
  std::vector<std::size_t> code_of_level_;
  math::Xoshiro256 rng_;
};

}  // namespace photecc::channel_sim

#endif  // PHOTECC_CHANNEL_SIM_PAM_CHANNEL_HPP
