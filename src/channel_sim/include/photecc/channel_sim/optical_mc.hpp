// Optical-level Monte-Carlo of the MWSR channel: instead of the
// abstract SNR channel, this samples the actual detector photocurrent —
// ER-limited '1'/'0' power levels through the Lorentzian link, plus
// crosstalk from *random* data on the other 15 carriers — and
// thresholds it.  Validates the paper's worst-case crosstalk analysis
// (Eq. 4) from below: the measured BER must not exceed the analytic
// worst-case prediction, and must approach the no-crosstalk floor when
// the neighbours are quiet.
#ifndef PHOTECC_CHANNEL_SIM_OPTICAL_MC_HPP
#define PHOTECC_CHANNEL_SIM_OPTICAL_MC_HPP

#include <cstdint>

#include "photecc/link/mwsr_channel.hpp"
#include "photecc/math/stats.hpp"

namespace photecc::channel_sim {

/// Options for the optical-level measurement.
struct OpticalMcOptions {
  std::uint64_t bits = 200000;
  std::uint64_t seed = 0x0971CA1;
  /// Neighbour carriers transmit random data when true; all-'1'
  /// (the analytic worst case) when false.
  bool random_neighbours = true;
};

/// Result of one optical-level BER measurement.
struct OpticalMcResult {
  double op_laser_w = 0.0;
  double measured_ber = 0.0;
  math::ProportionInterval interval{};
  /// Analytic predictions at this laser power:
  double worst_case_ber = 0.0;    ///< Eq. 4 chain, all-'1' crosstalk
  double no_crosstalk_ber = 0.0;  ///< crosstalk-free floor
  std::uint64_t bit_errors = 0;
  std::uint64_t bits = 0;
};

/// Measures the raw BER of channel `ch` (worst channel by default) of
/// the MWSR link at laser output `op_laser_w`, with full per-sample
/// crosstalk from the other carriers.
OpticalMcResult measure_optical_raw_ber(const link::MwsrChannel& channel,
                                        double op_laser_w,
                                        const OpticalMcOptions& options = {});

}  // namespace photecc::channel_sim

#endif  // PHOTECC_CHANNEL_SIM_OPTICAL_MC_HPP
