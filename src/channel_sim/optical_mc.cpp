#include "photecc/channel_sim/optical_mc.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "photecc/math/rng.hpp"
#include "photecc/math/special.hpp"

namespace photecc::channel_sim {

OpticalMcResult measure_optical_raw_ber(const link::MwsrChannel& channel,
                                        double op_laser_w,
                                        const OpticalMcOptions& options) {
  if (op_laser_w <= 0.0)
    throw std::invalid_argument(
        "measure_optical_raw_ber: non-positive laser power");
  if (options.bits == 0)
    throw std::invalid_argument("measure_optical_raw_ber: zero bits");

  const auto& params = channel.params();
  const std::size_t ch = channel.worst_channel();
  const double responsivity = params.detector.responsivity_a_per_w;
  const double dark = params.detector.dark_current_a;
  const double er = channel.extinction_ratio();

  // Received power levels of the own signal.
  const double p1 = op_laser_w * channel.signal_path_transmission(ch);
  const double p0 = p1 / er;

  // Per-neighbour crosstalk power for a '1' on carrier j.
  std::vector<double> xt_one;
  const double pd = channel.detector().coupling_transmission();
  for (std::size_t other = 0; other < params.grid.channel_count;
       ++other) {
    if (other == ch) continue;
    const double detuning = params.grid.detuning(ch, other);
    xt_one.push_back(op_laser_w * channel.bus_transmission(other) *
                     channel.ring().drop_detuned(detuning) * pd);
  }
  double xt_total_one = 0.0;
  for (const double x : xt_one) xt_total_one += x;

  // Decision threshold: mid-eye plus the *mean* crosstalk level (a
  // DC-compensated receiver).
  const double mean_xt = options.random_neighbours
                             ? xt_total_one * 0.5 * (1.0 + 1.0 / er)
                             : xt_total_one;
  const double threshold =
      responsivity * (0.5 * (p1 + p0) + mean_xt);

  // Noise sigma chosen so that the zero-crosstalk measurement
  // reproduces the paper's mapping p = 1/2 erfc(sqrt(SNR)) with
  // SNR = R (P1 - P0) / i_n:  Q(d/sigma) = 1/2 erfc(sqrt(SNR)) with
  // d = R (P1 - P0) / 2  =>  sigma = d / sqrt(2 SNR).
  const double snr0 = responsivity * (p1 - p0) / dark;
  const double d_half = responsivity * (p1 - p0) / 2.0;
  const double sigma = d_half / std::sqrt(2.0 * snr0);

  math::Xoshiro256 rng(options.seed);
  std::uint64_t errors = 0;
  for (std::uint64_t i = 0; i < options.bits; ++i) {
    const bool bit = rng.bernoulli(0.5);
    double power = bit ? p1 : p0;
    if (options.random_neighbours) {
      for (const double x : xt_one)
        power += rng.bernoulli(0.5) ? x : x / er;
    } else {
      power += xt_total_one;  // all-'1' worst case
    }
    const double current =
        responsivity * power + sigma * rng.normal();
    const bool detected = current > threshold;
    if (detected != bit) ++errors;
  }

  OpticalMcResult result;
  result.op_laser_w = op_laser_w;
  result.bit_errors = errors;
  result.bits = options.bits;
  result.measured_ber =
      static_cast<double>(errors) / static_cast<double>(options.bits);
  result.interval = math::wilson_interval(errors, options.bits, 0.99);
  // Analytic predictions through the paper's chain.
  const double t_eye = channel.eye_transmission(ch);
  const double t_xt = channel.crosstalk_transmission(ch);
  const double snr_wc =
      responsivity * op_laser_w * (t_eye - t_xt) / dark;
  result.worst_case_ber =
      snr_wc > 0.0 ? math::raw_ber_from_snr(snr_wc) : 0.5;
  result.no_crosstalk_ber =
      math::raw_ber_from_snr(responsivity * op_laser_w * t_eye / dark);
  return result;
}

}  // namespace photecc::channel_sim
