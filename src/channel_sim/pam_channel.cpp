#include "photecc/channel_sim/pam_channel.hpp"

#include <cmath>
#include <stdexcept>

namespace photecc::channel_sim {

PamChannel::PamChannel(double snr, math::Modulation modulation,
                       std::uint64_t seed)
    : snr_(snr),
      modulation_(modulation),
      levels_(math::levels(modulation)),
      bits_per_symbol_(math::bits_per_symbol(modulation)),
      rng_(seed) {
  if (snr <= 0.0)
    throw std::invalid_argument("PamChannel: SNR must be positive");
  sigma_ = 1.0 / (2.0 * std::sqrt(2.0 * snr));
  code_of_level_.resize(levels_);
  level_of_code_.resize(levels_);
  for (std::size_t k = 0; k < levels_; ++k) {
    const std::size_t gray = k ^ (k >> 1);
    code_of_level_[k] = gray;
    level_of_code_[gray] = k;
  }
}

double PamChannel::analytic_ber() const noexcept {
  return math::pam_ber_from_snr(snr_, levels_);
}

double PamChannel::transmit_analog(std::size_t level) noexcept {
  const double amplitude =
      static_cast<double>(level) / static_cast<double>(levels_ - 1);
  return amplitude + sigma_ * rng_.normal();
}

std::size_t PamChannel::transmit_symbol(std::size_t level) noexcept {
  const double sample = transmit_analog(level);
  const double scaled =
      sample * static_cast<double>(levels_ - 1);
  const double nearest = std::round(scaled);
  if (nearest <= 0.0) return 0;
  if (nearest >= static_cast<double>(levels_ - 1)) return levels_ - 1;
  return static_cast<std::size_t>(nearest);
}

template <typename Get, typename Set>
void PamChannel::transmit_bits(std::size_t size, Get get,
                               Set set) noexcept {
  for (std::size_t base = 0; base < size; base += bits_per_symbol_) {
    std::size_t code = 0;
    for (std::size_t j = 0; j < bits_per_symbol_; ++j) {
      const std::size_t i = base + j;
      if (i < size && get(i)) code |= std::size_t{1} << j;
    }
    const std::size_t detected =
        code_of_level_[transmit_symbol(level_of_code_[code])];
    for (std::size_t j = 0; j < bits_per_symbol_; ++j) {
      const std::size_t i = base + j;
      if (i < size) set(i, ((detected >> j) & 1u) != 0);
    }
  }
}

ecc::BitVec PamChannel::transmit(const ecc::BitVec& word) noexcept {
  ecc::BitVec out(word.size());
  transmit_bits(
      word.size(), [&](std::size_t i) { return word.get(i); },
      [&](std::size_t i, bool bit) { out.set(i, bit); });
  return out;
}

std::vector<bool> PamChannel::transmit(
    const std::vector<bool>& wire) noexcept {
  std::vector<bool> out(wire.size());
  transmit_bits(
      wire.size(), [&](std::size_t i) { return wire[i]; },
      [&](std::size_t i, bool bit) { out[i] = bit; });
  return out;
}

}  // namespace photecc::channel_sim
