// Cyclic redundancy checks: pure error *detection*, the building block
// of the ARQ (retransmission) alternative to the paper's FEC schemes.
#ifndef PHOTECC_ECC_CRC_HPP
#define PHOTECC_ECC_CRC_HPP

#include <cstdint>
#include <string>

#include "photecc/ecc/bitvec.hpp"

namespace photecc::ecc {

/// CRC over GF(2) with a configurable generator polynomial.
/// The polynomial is given without the leading x^width term
/// (e.g. CRC-8 0x07, CRC-16-CCITT 0x1021, CRC-32 0x04C11DB7).
class Crc {
 public:
  /// `width` in [1, 32]; bit i of `polynomial` = coefficient of x^i.
  Crc(unsigned width, std::uint32_t polynomial, std::string name);

  static Crc crc8() { return {8, 0x07, "CRC-8"}; }
  static Crc crc16_ccitt() { return {16, 0x1021, "CRC-16-CCITT"}; }
  static Crc crc32() { return {32, 0x04C11DB7, "CRC-32"}; }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] unsigned width() const noexcept { return width_; }

  /// CRC value of a bit sequence (bit 0 processed first, zero initial
  /// register, no reflection/final-xor — the plain polynomial CRC).
  [[nodiscard]] std::uint32_t compute(const BitVec& data) const;

  /// data with the CRC appended (width extra bits).
  [[nodiscard]] BitVec append(const BitVec& data) const;

  /// True when a framed sequence (output of append, possibly corrupted)
  /// passes the check.
  [[nodiscard]] bool check(const BitVec& framed) const;

 private:
  unsigned width_;
  std::uint32_t polynomial_;
  std::uint32_t top_bit_;
  std::uint32_t mask_;
  std::string name_;
};

}  // namespace photecc::ecc

#endif  // PHOTECC_ECC_CRC_HPP
