// Analytic BER/SNR chain of the paper (Section IV-D):
//
//   raw channel error probability  p   = 1/2 erfc(sqrt(SNR))     (Eq. 3)
//   Hamming post-decoding BER      BER = p - p (1-p)^(n-1)       (Eq. 2)
//   required SNR for a target BER: numeric inversion of the two.
//
// Note on Eq. 1: as printed in the paper, SNR = [erfc^-1(1 - 2 BER)]^2
// is inconsistent with Eq. 3 (it would give vanishing SNR for small
// BER).  Eq. 3 is the self-consistent definition; we invert that one and
// document the discrepancy in EXPERIMENTS.md.
#ifndef PHOTECC_ECC_BER_MODEL_HPP
#define PHOTECC_ECC_BER_MODEL_HPP

#include "photecc/ecc/block_code.hpp"
#include "photecc/math/modulation.hpp"

namespace photecc::ecc {

/// Post-decoding BER achieved by `code` over a channel with the given
/// linear SNR.
double achieved_ber(const BlockCode& code, double snr);

/// Linear SNR required so that `code` reaches `target_ber` after
/// decoding.  Throws std::domain_error for targets outside (0, 0.5).
double required_snr(const BlockCode& code, double target_ber);

/// SNR required by an uncoded transmission for `target_ber` (Eq. 3
/// inverted); equals required_snr(UncodedScheme{}, target_ber).
double required_snr_uncoded(double target_ber);

/// Coding gain of `code` at `target_ber` in dB:
/// 10 log10(SNR_uncoded / SNR_coded).
double coding_gain_db(const BlockCode& code, double target_ber);

// --- Modulation-aware composition ------------------------------------
//
// The raw channel error probability of a multilevel format at full-eye
// SNR `snr` is math::ber_from_snr(modulation, snr); the code's Eq. 2
// model then composes on top exactly as for OOK.  The OOK overloads
// above are the modulation == kOok special case.

/// Post-decoding BER of `code` over a `modulation` channel at full-eye
/// linear SNR `snr`.
double achieved_ber(const BlockCode& code, double snr,
                    math::Modulation modulation);

/// Full-eye SNR required so that `code` over `modulation` reaches
/// `target_ber` after decoding.
double required_snr(const BlockCode& code, double target_ber,
                    math::Modulation modulation);

/// Coding gain at `target_ber` over `modulation`, in dB.
double coding_gain_db(const BlockCode& code, double target_ber,
                      math::Modulation modulation);

}  // namespace photecc::ecc

#endif  // PHOTECC_ECC_BER_MODEL_HPP
