// Pass-through "code": direct modulation without ECC, the paper's
// baseline transmission scheme ("w/o ECC").
#ifndef PHOTECC_ECC_UNCODED_HPP
#define PHOTECC_ECC_UNCODED_HPP

#include "photecc/ecc/block_code.hpp"

namespace photecc::ecc {

/// (w, w) identity code over a w-bit block.  decoded_ber(p) == p and
/// CT == 1, matching the paper's uncoded scheme.
class UncodedScheme : public BlockCode {
 public:
  explicit UncodedScheme(std::size_t width = 64);

  [[nodiscard]] std::string name() const override { return "w/o ECC"; }
  [[nodiscard]] std::size_t block_length() const noexcept override {
    return width_;
  }
  [[nodiscard]] std::size_t message_length() const noexcept override {
    return width_;
  }
  [[nodiscard]] std::size_t min_distance() const noexcept override {
    return 1;
  }
  [[nodiscard]] BitVec encode(const BitVec& message) const override;
  [[nodiscard]] DecodeResult decode(const BitVec& received) const override;
  /// Identity batch kernels: straight word copies, no flags.
  [[nodiscard]] codec::BitSlab encode_batch(
      const codec::BitSlab& messages) const override;
  [[nodiscard]] BatchDecodeResult decode_batch(
      const codec::BitSlab& received) const override;
  [[nodiscard]] double decoded_ber(double raw_p) const override;
  /// Identity inverse: the target itself, never saturated; the trace
  /// (when given) reports zero iterations.
  [[nodiscard]] RawBerRequirement required_raw_ber_checked(
      double target_ber, RawBerSolveTrace* trace = nullptr) const override;

 private:
  std::size_t width_;
};

}  // namespace photecc::ecc

#endif  // PHOTECC_ECC_UNCODED_HPP
