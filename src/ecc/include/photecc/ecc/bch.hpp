// Binary narrow-sense BCH codes: t-error-correcting block codes over
// GF(2^m), the natural upgrade path from the paper's Hamming schemes
// ("other coding techniques can be used", Section IV-B).
//
// Construction: generator polynomial g(x) = lcm of the minimal
// polynomials of alpha, alpha^2, ..., alpha^(2t); systematic encoding
// by polynomial division; decoding via syndrome computation,
// Berlekamp-Massey and Chien search.  t = 1 coincides with the Hamming
// code of the same length.
#ifndef PHOTECC_ECC_BCH_HPP
#define PHOTECC_ECC_BCH_HPP

#include <cstdint>
#include <vector>

#include "photecc/ecc/block_code.hpp"
#include "photecc/ecc/gf2m.hpp"

namespace photecc::ecc {

/// BCH code of length n = 2^m - 1 correcting up to t errors.
class BchCode : public BlockCode {
 public:
  /// Throws std::invalid_argument when the designed distance cannot be
  /// met (t too large for the length) or m outside [3, 14].
  BchCode(unsigned m, unsigned t);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t block_length() const noexcept override {
    return n_;
  }
  [[nodiscard]] std::size_t message_length() const noexcept override {
    return k_;
  }
  /// Designed distance 2t + 1 (the true distance may be larger; the
  /// guaranteed correction radius is what the BER model uses).
  [[nodiscard]] std::size_t min_distance() const noexcept override {
    return 2 * t_ + 1;
  }
  [[nodiscard]] BitVec encode(const BitVec& message) const override;
  [[nodiscard]] DecodeResult decode(const BitVec& received) const override;

  /// Bitsliced kernels.  Encode runs the systematic LFSR division with
  /// 64-lane-wide feedback words (one XOR per generator tap per message
  /// position).  Decode computes the odd syndrome bit-planes
  /// word-parallel (S_2j = S_j^2 over GF(2^m), so the odd ones carry
  /// all the information and the dirty-lane screen is exact); clean
  /// lanes finish with zero per-lane work.  Dirty lanes use the
  /// closed-form t<=2 decoder (single error: S3 == S1^3, flip log S1;
  /// double: sigma2 = (S3 + S1^3)/S1 + Chien over the quadratic) which
  /// provably lands on the same outcome set as the scalar
  /// Berlekamp-Massey + Chien + verify pipeline; t >= 3 falls back to
  /// the scalar decoder per dirty lane.  Bit-identical to the scalar
  /// path for every input.
  [[nodiscard]] codec::BitSlab encode_batch(
      const codec::BitSlab& messages) const override;
  [[nodiscard]] BatchDecodeResult decode_batch(
      const codec::BitSlab& received) const override;

  /// Generalisation of the paper's Eq. 2 to t-error correction:
  ///   BER = p * P(>= t errors among the other n-1 bits)
  /// which reduces exactly to Eq. 2 for t = 1.
  [[nodiscard]] double decoded_ber(double raw_p) const override;

  [[nodiscard]] unsigned t() const noexcept { return t_; }

  /// Generator polynomial coefficients over GF(2), bit i = coeff of x^i.
  [[nodiscard]] std::uint64_t generator_polynomial() const noexcept {
    return generator_mask_;
  }

 private:
  /// Syndromes S_1..S_2t of a received word; true if all zero.
  [[nodiscard]] bool syndromes(const BitVec& received,
                               std::vector<unsigned>& out) const;

  GF2m field_;
  unsigned t_;
  std::size_t n_;
  std::size_t k_;
  std::vector<unsigned> generator_;  // GF(2) coeffs, degree n-k
  std::uint64_t generator_mask_ = 0;
};

}  // namespace photecc::ecc

#endif  // PHOTECC_ECC_BCH_HPP
