// Bitsliced codeword slab: the container of the batch codec datapath.
//
// A BitSlab holds up to 64 codewords *transposed*: one uint64_t word per
// bit position, one codeword per bit lane, so word(i) bit l is bit i of
// the codeword in lane l.  In this layout encode/decode become
// straight-line XOR/AND/popcount word operations over whole 64-lane
// batches — no virtual dispatch and no per-bit addressing in the inner
// loop (see ecc::BlockCode::encode_batch / decode_batch).
//
// The class lives in the ecc include tree so the code classes can
// implement batch kernels against it without a dependency cycle, but it
// belongs to the photecc::codec namespace — the batch datapath module
// (src/codec) re-exports it via photecc/codec/bitslab.hpp and builds
// the error-injection / Monte-Carlo engine on top.
//
// Invariant: lanes() <= 64 and every word is zero outside lane_mask().
// The transpose converters and all shipped kernels preserve it; callers
// mutating words() directly must too (codec::inject_errors relies on it
// to leave inactive lanes untouched).
#ifndef PHOTECC_ECC_BITSLAB_HPP
#define PHOTECC_ECC_BITSLAB_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "photecc/ecc/bitvec.hpp"

namespace photecc::codec {

/// Transposed batch of up to 64 equal-length bit words.
class BitSlab {
 public:
  /// Maximum number of codeword lanes (the word width).
  static constexpr std::size_t kLanes = 64;

  BitSlab() = default;

  /// Zero-filled slab of `bits` positions and `lanes` active lanes.
  /// Throws std::invalid_argument when lanes == 0 or lanes > 64.
  BitSlab(std::size_t bits, std::size_t lanes);

  /// Number of bit positions (the codeword length n).
  [[nodiscard]] std::size_t bits() const noexcept { return words_.size(); }
  /// Number of active codeword lanes, in [1, 64] (0 only when default-
  /// constructed empty).
  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_; }
  /// Mask with the low lanes() bits set.
  [[nodiscard]] std::uint64_t lane_mask() const noexcept {
    return lanes_ == kLanes ? ~std::uint64_t{0}
                            : (std::uint64_t{1} << lanes_) - 1;
  }

  /// Word at bit position i (bit l = bit i of the lane-l codeword).
  [[nodiscard]] std::uint64_t word(std::size_t i) const {
    return words_[i];
  }
  [[nodiscard]] std::uint64_t& word(std::size_t i) { return words_[i]; }

  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }
  [[nodiscard]] std::span<std::uint64_t> words() noexcept { return words_; }

  /// Transposes up to 64 equal-sized BitVecs into a slab (vec j becomes
  /// lane j).  Throws std::invalid_argument on an empty batch, more than
  /// 64 vectors, or mismatched sizes.
  [[nodiscard]] static BitSlab transpose_in(
      std::span<const ecc::BitVec> batch);

  /// Transposes lane l back out to a BitVec (the exact inverse of
  /// transpose_in for that lane).  Throws std::out_of_range when l >=
  /// lanes().
  [[nodiscard]] ecc::BitVec transpose_out(std::size_t lane) const;

  /// All lanes, in lane order.
  [[nodiscard]] std::vector<ecc::BitVec> transpose_out() const;

  /// Copies bit positions [offset, offset + count) into a new slab with
  /// the same lane count.  Throws std::out_of_range on overflow.
  [[nodiscard]] BitSlab slice(std::size_t offset, std::size_t count) const;

  /// Overwrites bit positions [offset, offset + other.bits()) with
  /// `other` (lane counts must match).
  void paste(std::size_t offset, const BitSlab& other);

  bool operator==(const BitSlab& other) const noexcept {
    return lanes_ == other.lanes_ && words_ == other.words_;
  }
  bool operator!=(const BitSlab& other) const noexcept {
    return !(*this == other);
  }

 private:
  std::size_t lanes_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace photecc::codec

#endif  // PHOTECC_ECC_BITSLAB_HPP
