// Hamming code family.
//
// HammingCode(m) is the perfect single-error-correcting code with
// n = 2^m - 1 and k = n - m (H(7,4) for m=3, H(63,57) for m=6, ...).
// ShortenedHamming deletes leading data positions of a base Hamming
// code, which is how the paper's H(71,64) is obtained from H(127,120).
//
// The codeword layout follows the classic construction: positions are
// numbered 1..n, parity bits sit at the power-of-two positions, and the
// syndrome directly names the erroneous position.
#ifndef PHOTECC_ECC_HAMMING_HPP
#define PHOTECC_ECC_HAMMING_HPP

#include <cstddef>
#include <vector>

#include "photecc/ecc/block_code.hpp"

namespace photecc::ecc {

/// Perfect Hamming code with m parity bits: (2^m - 1, 2^m - 1 - m).
class HammingCode : public BlockCode {
 public:
  /// Throws std::invalid_argument unless 2 <= m <= 16.
  explicit HammingCode(std::size_t m);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t block_length() const noexcept override {
    return n_;
  }
  [[nodiscard]] std::size_t message_length() const noexcept override {
    return k_;
  }
  [[nodiscard]] std::size_t min_distance() const noexcept override {
    return 3;
  }
  [[nodiscard]] BitVec encode(const BitVec& message) const override;
  [[nodiscard]] DecodeResult decode(const BitVec& received) const override;

  /// Bitsliced kernels (see codec::BitSlab): encode is a parity-mask
  /// XOR network (m word-XOR reductions over the coverage sets), decode
  /// computes the m syndrome bit-planes word-parallel and flips the
  /// addressed position per non-clean lane.  Bit-identical to the
  /// scalar path for every input.
  [[nodiscard]] codec::BitSlab encode_batch(
      const codec::BitSlab& messages) const override;
  [[nodiscard]] BatchDecodeResult decode_batch(
      const codec::BitSlab& received) const override;

  /// Paper Eq. 2: BER = p - p (1-p)^(n-1).
  [[nodiscard]] double decoded_ber(double raw_p) const override;

  [[nodiscard]] std::size_t parity_bits() const noexcept { return m_; }

  /// Number of two-input XOR gates in a tree-structured combinational
  /// encoder (one tree per parity bit); feeds the synthesis estimator.
  [[nodiscard]] std::size_t encoder_xor_gates() const noexcept;

  /// Two-input XOR gates for the syndrome computation of the decoder.
  [[nodiscard]] std::size_t decoder_xor_gates() const noexcept;

 private:
  friend class ShortenedHammingCode;
  friend class ExtendedHammingCode;

  /// Codeword position (1-based) of message bit i (0-based).
  [[nodiscard]] std::size_t data_position(std::size_t i) const noexcept {
    return data_positions_[i];
  }

  std::size_t m_;
  std::size_t n_;
  std::size_t k_;
  std::vector<std::size_t> data_positions_;    // 1-based, size k
  std::vector<std::size_t> parity_positions_;  // 1-based, size m
};

/// Shortened Hamming code: an (n - s, k - s) code obtained by fixing the
/// first s data bits of a base (n, k) Hamming code to zero and not
/// transmitting them.  Still single-error-correcting (d_min >= 3); a
/// syndrome pointing at a deleted position is reported as a detected,
/// uncorrectable error.
class ShortenedHammingCode : public BlockCode {
 public:
  /// Base code has parameters (2^m - 1, 2^m - 1 - m); `shorten_by` data
  /// positions are removed.  Throws std::invalid_argument if shorten_by
  /// >= k_base.
  ShortenedHammingCode(std::size_t m, std::size_t shorten_by);

  /// Convenience: the paper's H(71,64) = H(127,120) shortened by 56.
  static ShortenedHammingCode h71_64() { return {7, 56}; }

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t block_length() const noexcept override {
    return n_;
  }
  [[nodiscard]] std::size_t message_length() const noexcept override {
    return k_;
  }
  [[nodiscard]] std::size_t min_distance() const noexcept override {
    return 3;
  }
  [[nodiscard]] BitVec encode(const BitVec& message) const override;
  [[nodiscard]] DecodeResult decode(const BitVec& received) const override;

  /// Bitsliced kernels: pad/compact are pure word moves between the
  /// shortened and base layouts; the syndrome network is the base
  /// code's, with a syndrome naming a removed position reported as
  /// detected-uncorrectable (matching the scalar path bit for bit).
  [[nodiscard]] codec::BitSlab encode_batch(
      const codec::BitSlab& messages) const override;
  [[nodiscard]] BatchDecodeResult decode_batch(
      const codec::BitSlab& received) const override;

  [[nodiscard]] double decoded_ber(double raw_p) const override;

  [[nodiscard]] std::size_t parity_bits() const noexcept {
    return base_.parity_bits();
  }
  [[nodiscard]] std::size_t encoder_xor_gates() const noexcept;
  [[nodiscard]] std::size_t decoder_xor_gates() const noexcept;

 private:
  [[nodiscard]] BitVec pad_message(const BitVec& message) const;

  HammingCode base_;
  std::size_t shorten_by_;
  std::size_t n_;
  std::size_t k_;
  /// removed_[pos] (0-based base position): shortened away, fixed zero.
  std::vector<bool> removed_;
  /// Transmitted base positions (0-based), in wire order; size n_.
  std::vector<std::size_t> wire_positions_;
};

}  // namespace photecc::ecc

#endif  // PHOTECC_ECC_HAMMING_HPP
