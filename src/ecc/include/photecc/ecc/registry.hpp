// Factory / registry of the codes used across examples, benches and the
// runtime manager.
#ifndef PHOTECC_ECC_REGISTRY_HPP
#define PHOTECC_ECC_REGISTRY_HPP

#include <functional>
#include <string>
#include <vector>

#include "photecc/ecc/block_code.hpp"

namespace photecc::ecc {

/// Extension hook for code families living in modules that depend on
/// photecc::ecc (and therefore cannot be hard-wired into make_code):
/// a factory receives the requested name and returns a code, or nullptr
/// when the name is not its own.  Factories are consulted, in
/// registration order, after the built-in names fail to match.
/// Registration is idempotent per `key`: re-registering an existing key
/// is a no-op, so module initialisers can call this unconditionally.
/// Thread-safe.
using CodeFactory = std::function<BlockCodePtr(const std::string& name)>;
void register_code_factory(const std::string& key, CodeFactory factory);

/// Builds a code by name.  Recognised names:
///   "uncoded" / "w/o ECC"        -> UncodedScheme(64)
///   "H(7,4)", "H(15,11)", "H(31,26)", "H(63,57)", "H(127,120)"
///   "H(71,64)", "H(12,8)", "H(38,32)" -> shortened Hamming
///   "eH(8,4)", "eH(64,57)", ...  -> extended Hamming (SECDED)
///   "REP(3,1)", "REP(5,1)", ...  -> repetition
///   "BCH(15,7,2)", "BCH(15,5,3)", "BCH(31,21,2)", "BCH(63,51,2)",
///   "BCH(127,113,2)"             -> t-error-correcting BCH
/// Throws std::invalid_argument for unknown names.
BlockCodePtr make_code(const std::string& name);

/// The paper's three transmission schemes in presentation order:
/// { w/o ECC, H(71,64), H(7,4) }.
std::vector<BlockCodePtr> paper_schemes();

/// The full Hamming ladder H(7,4) .. H(127,120) plus H(71,64).
std::vector<BlockCodePtr> hamming_family();

/// Everything the registry knows, for exhaustive sweeps.
std::vector<BlockCodePtr> all_known_codes();

}  // namespace photecc::ecc

#endif  // PHOTECC_ECC_REGISTRY_HPP
