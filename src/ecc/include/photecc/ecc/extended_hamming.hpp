// Extended Hamming (SECDED) code: a Hamming code plus one overall parity
// bit, giving d_min = 4 — single-error correction, double-error
// detection.  Not used by the paper's headline results; provided as the
// natural extension for the ablation study (bench_ablation_code_family)
// and for memory-style 72/64 interfaces.
#ifndef PHOTECC_ECC_EXTENDED_HAMMING_HPP
#define PHOTECC_ECC_EXTENDED_HAMMING_HPP

#include "photecc/ecc/hamming.hpp"

namespace photecc::ecc {

/// SECDED code (2^m, 2^m - 1 - m): HammingCode(m) + overall parity.
class ExtendedHammingCode : public BlockCode {
 public:
  explicit ExtendedHammingCode(std::size_t m);

  /// The classic memory-interface SECDED(72,64) built on H(127,120) is
  /// not a plain extension; this helper builds the shortened+extended
  /// (72,64) variant instead.
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t block_length() const noexcept override {
    return n_;
  }
  [[nodiscard]] std::size_t message_length() const noexcept override {
    return k_;
  }
  [[nodiscard]] std::size_t min_distance() const noexcept override {
    return 4;
  }
  [[nodiscard]] BitVec encode(const BitVec& message) const override;
  [[nodiscard]] DecodeResult decode(const BitVec& received) const override;

  /// Bitsliced kernels: the overall-parity plane is one XOR reduction
  /// over all n words; the SECDED case split (clean / correct single /
  /// detect double) becomes three lane masks combined from that plane
  /// and the inner syndrome planes.  Bit-identical to the scalar path.
  [[nodiscard]] codec::BitSlab encode_batch(
      const codec::BitSlab& messages) const override;
  [[nodiscard]] BatchDecodeResult decode_batch(
      const codec::BitSlab& received) const override;

  /// Post-decoding BER model: same structural form as Eq. 2 with the
  /// double-error-detection benefit folded in — a detected double error
  /// is *not* miscorrected, so only odd-weight >=3 patterns corrupt a
  /// bit.  We keep the paper's conservative form BER = p - p(1-p)^(n-1)
  /// so comparisons with plain Hamming stay apples-to-apples; detection
  /// benefits show up in the bit-true Monte-Carlo experiments instead.
  [[nodiscard]] double decoded_ber(double raw_p) const override;

 private:
  HammingCode base_;
  std::size_t n_;
  std::size_t k_;
};

}  // namespace photecc::ecc

#endif  // PHOTECC_ECC_EXTENDED_HAMMING_HPP
