// Compact dynamic bit vector used by the bit-true codecs and the
// serializer/deserializer models.
#ifndef PHOTECC_ECC_BITVEC_HPP
#define PHOTECC_ECC_BITVEC_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace photecc::ecc {

/// Fixed-size-after-construction vector of bits stored in 64-bit words.
/// Bit 0 is the least significant bit of word 0 (little-endian bit
/// order), matching the serializer's "bit 0 first on the wire" rule.
class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t size) : size_(size), words_(word_count(size)) {}

  /// Builds from the low `size` bits of `value`.
  static BitVec from_uint(std::uint64_t value, std::size_t size);

  /// Builds from a string of '0'/'1' characters, index 0 first.
  static BitVec from_string(const std::string& bits);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] bool get(std::size_t i) const;
  void set(std::size_t i, bool value);
  void flip(std::size_t i);

  /// Read-only view of the backing 64-bit words (bit i lives at bit
  /// i % 64 of word i / 64; bits past size() are zero).  The word-
  /// parallel entry point for bitsliced consumers (codec::BitSlab
  /// transposes through it) and word-at-a-time error counting.
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t popcount() const noexcept;

  /// Word-parallel error count against another vector of the same size:
  /// one XOR + popcount per 64 bits, no per-bit addressing.  This is
  /// the primitive the Monte-Carlo harnesses count with; distance() is
  /// an alias.  Throws std::invalid_argument on size mismatch.
  [[nodiscard]] std::size_t count_errors(const BitVec& other) const;

  /// Hamming distance to another vector of the same size.
  [[nodiscard]] std::size_t distance(const BitVec& other) const {
    return count_errors(other);
  }

  /// XOR-assign with a vector of the same size.
  BitVec& operator^=(const BitVec& other);
  friend BitVec operator^(BitVec lhs, const BitVec& rhs) {
    lhs ^= rhs;
    return lhs;
  }

  /// Low 64 bits as an integer (size must be <= 64).
  [[nodiscard]] std::uint64_t to_uint() const;

  /// '0'/'1' rendering, index 0 first.
  [[nodiscard]] std::string to_string() const;

  /// Copies bits [offset, offset+count) into a new vector.
  [[nodiscard]] BitVec slice(std::size_t offset, std::size_t count) const;

  /// Concatenation.
  [[nodiscard]] BitVec concat(const BitVec& other) const;

  bool operator==(const BitVec& other) const noexcept;
  bool operator!=(const BitVec& other) const noexcept {
    return !(*this == other);
  }

 private:
  static std::size_t word_count(std::size_t bits) noexcept {
    return (bits + 63) / 64;
  }
  void check_index(std::size_t i) const;

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace photecc::ecc

#endif  // PHOTECC_ECC_BITVEC_HPP
