// Galois field GF(2^m) arithmetic over log/antilog tables — the
// substrate for the BCH codes (the paper's "other coding techniques").
#ifndef PHOTECC_ECC_GF2M_HPP
#define PHOTECC_ECC_GF2M_HPP

#include <cstdint>
#include <vector>

namespace photecc::ecc {

/// GF(2^m) for 2 <= m <= 14, built on the standard primitive
/// polynomials.  Elements are represented as integers in [0, 2^m).
class GF2m {
 public:
  /// Throws std::invalid_argument outside the supported range.
  explicit GF2m(unsigned m);

  [[nodiscard]] unsigned m() const noexcept { return m_; }
  /// Field size q = 2^m.
  [[nodiscard]] unsigned size() const noexcept { return q_; }
  /// Multiplicative group order q - 1.
  [[nodiscard]] unsigned order() const noexcept { return q_ - 1; }
  /// The primitive polynomial used (bit i = coefficient of x^i).
  [[nodiscard]] unsigned primitive_polynomial() const noexcept {
    return poly_;
  }

  /// alpha^power for the primitive element alpha (power taken modulo
  /// the group order).
  [[nodiscard]] unsigned alpha_pow(int power) const noexcept;

  /// Discrete log base alpha; throws std::domain_error for 0.
  [[nodiscard]] unsigned log(unsigned x) const;

  /// Field addition (= subtraction) is XOR.
  [[nodiscard]] static unsigned add(unsigned a, unsigned b) noexcept {
    return a ^ b;
  }

  [[nodiscard]] unsigned mul(unsigned a, unsigned b) const noexcept;

  /// Multiplicative inverse; throws std::domain_error for 0.
  [[nodiscard]] unsigned inv(unsigned x) const;

  /// a / b; throws std::domain_error when b == 0.
  [[nodiscard]] unsigned div(unsigned a, unsigned b) const;

  /// x^e with e possibly negative (x != 0 for negative e).
  [[nodiscard]] unsigned pow(unsigned x, int e) const;

  /// Evaluates a polynomial (coeffs[i] = coefficient of x^i) at x.
  [[nodiscard]] unsigned eval_poly(const std::vector<unsigned>& coeffs,
                                   unsigned x) const noexcept;

  /// Minimal polynomial of alpha^i over GF(2), as a GF(2) coefficient
  /// bit mask (bit j = coefficient of x^j).
  [[nodiscard]] std::uint64_t minimal_polynomial(unsigned i) const;

 private:
  unsigned m_;
  unsigned q_;
  unsigned poly_;
  std::vector<unsigned> exp_;  // exp_[i] = alpha^i, doubled for wrap
  std::vector<unsigned> log_;  // log_[x] = i with alpha^i = x
};

}  // namespace photecc::ecc

#endif  // PHOTECC_ECC_GF2M_HPP
