// Repetition code baseline: each bit sent r times, majority vote at the
// receiver.  The weakest-possible ECC — included as the sanity baseline
// the Hamming family must beat on the trade-off plane.
#ifndef PHOTECC_ECC_REPETITION_HPP
#define PHOTECC_ECC_REPETITION_HPP

#include "photecc/ecc/block_code.hpp"

namespace photecc::ecc {

/// (r, 1) repetition code with odd r >= 3.
class RepetitionCode : public BlockCode {
 public:
  /// Throws std::invalid_argument unless r is odd and >= 3.
  explicit RepetitionCode(std::size_t r);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t block_length() const noexcept override {
    return r_;
  }
  [[nodiscard]] std::size_t message_length() const noexcept override {
    return 1;
  }
  [[nodiscard]] std::size_t min_distance() const noexcept override {
    return r_;
  }
  [[nodiscard]] BitVec encode(const BitVec& message) const override;
  [[nodiscard]] DecodeResult decode(const BitVec& received) const override;

  /// Bitsliced kernels: encode broadcasts the message word to all r
  /// positions; decode runs a carry-save popcount over the r words plus
  /// a bitsliced MSB-first comparator for the 64 majority votes at
  /// once.  Bit-identical to the scalar path.
  [[nodiscard]] codec::BitSlab encode_batch(
      const codec::BitSlab& messages) const override;
  [[nodiscard]] BatchDecodeResult decode_batch(
      const codec::BitSlab& received) const override;

  /// Exact majority-vote error probability:
  /// BER = sum_{j > r/2} C(r, j) p^j (1-p)^(r-j).
  [[nodiscard]] double decoded_ber(double raw_p) const override;

 private:
  std::size_t r_;
};

}  // namespace photecc::ecc

#endif  // PHOTECC_ECC_REPETITION_HPP
