// Abstract interface for the (n, k) block codes studied in the paper,
// combining the bit-true codec with the analytic post-decoding BER model
// (Eq. 2) used by the link-power solver.
#ifndef PHOTECC_ECC_BLOCK_CODE_HPP
#define PHOTECC_ECC_BLOCK_CODE_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "photecc/ecc/bitslab.hpp"
#include "photecc/ecc/bitvec.hpp"

namespace photecc::ecc {

/// Smallest raw channel error probability the analytic BER inversions
/// search over (the 10^-18 bracket edge).  Targets whose inversion
/// falls below it saturate to this value — see
/// BlockCode::required_raw_ber_checked.
inline constexpr double kMinSearchRawBer = 1e-18;

/// log10(kMinSearchRawBer); the shared lower bracket of every
/// log-domain BER solve (BlockCode, core::ArqScheme, core::HarqScheme).
inline constexpr double kMinSearchLog10RawBer = -18.0;

/// Result of inverting a post-decoding BER model: the required raw
/// channel error probability, plus an explicit flag when the target was
/// below the representable range and the result is the saturated
/// bracket edge kMinSearchRawBer (i.e. "any channel at least this
/// clean"), not an exact inverse.
struct RawBerRequirement {
  double raw_ber = 0.0;
  bool saturated = false;
};

/// Observability record of one BER inversion (sweep-plan counters):
/// how many root-finder iterations it cost and whether a warm shortcut
/// (exact hint reuse or warm bracket) served it.  Closed-form
/// inversions (UncodedScheme) and saturation shortcuts report zero
/// iterations.
struct RawBerSolveTrace {
  int iterations = 0;
  bool warm = false;
};

/// A previously solved (target, requirement) pair offered back to
/// required_raw_ber_warm.  Reused only when the stored target bit-equals
/// the requested one, so the warm path is bit-identical by construction.
struct RawBerHint {
  double target_ber = 0.0;
  RawBerRequirement requirement{};
};

/// Outcome of decoding one 64-lane slab of received blocks.  The masks
/// carry one bit per lane (bit l = lane l), restricted to the slab's
/// lane_mask(); lane semantics match the scalar DecodeResult flags
/// exactly — the batch contract is bit identity with per-lane decode().
/// (corrected_position has no batch counterpart: no shipped consumer
/// reads it in bulk, and carrying it would serialise the kernels.)
struct BatchDecodeResult {
  codec::BitSlab messages;              ///< k-position slab of messages
  std::uint64_t error_detected = 0;     ///< lanes with a non-zero syndrome
  std::uint64_t corrected = 0;          ///< lanes where a correction applied
};

/// Outcome of decoding one received block.
struct DecodeResult {
  BitVec message;                ///< recovered k message bits
  bool error_detected = false;   ///< syndrome was non-zero
  bool corrected = false;        ///< a correction was applied
  /// Codeword bit index that was flipped, when corrected is true.
  std::optional<std::size_t> corrected_position;
};

/// An (n, k) block code: bit-true encode/decode plus the analytic BER
/// model the paper builds its laser-power trade-off on.
class BlockCode {
 public:
  virtual ~BlockCode() = default;

  /// Human-readable name, e.g. "H(7,4)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Codeword length n in bits.
  [[nodiscard]] virtual std::size_t block_length() const noexcept = 0;

  /// Message length k in bits.
  [[nodiscard]] virtual std::size_t message_length() const noexcept = 0;

  /// Minimum Hamming distance of the code.
  [[nodiscard]] virtual std::size_t min_distance() const noexcept = 0;

  /// Encodes k message bits into an n-bit codeword.
  /// Throws std::invalid_argument on size mismatch.
  [[nodiscard]] virtual BitVec encode(const BitVec& message) const = 0;

  /// Decodes an n-bit received word, correcting up to the guaranteed
  /// correction capability.  Throws std::invalid_argument on size
  /// mismatch.
  [[nodiscard]] virtual DecodeResult decode(const BitVec& received) const = 0;

  /// Batch encode: a k-position message slab (one message per lane) to
  /// an n-position codeword slab with the same lane count.  The base
  /// implementation is a scalar fallback — transpose out, encode() each
  /// lane, transpose back in — so overrides are bit-identical to it by
  /// construction; the menu codes override it with straight-line
  /// word-parallel kernels (parity-mask XOR networks for Hamming,
  /// word-wide LFSR division for BCH, ...).  Throws std::invalid_argument
  /// when messages.bits() != message_length().
  [[nodiscard]] virtual codec::BitSlab encode_batch(
      const codec::BitSlab& messages) const;

  /// Batch decode: an n-position received slab to per-lane messages and
  /// detected/corrected lane masks.  Same contract as encode_batch:
  /// the scalar fallback decodes lane by lane, and every override must
  /// be bit-identical to it (messages and masks) for all inputs.
  /// Throws std::invalid_argument when received.bits() != block_length().
  [[nodiscard]] virtual BatchDecodeResult decode_batch(
      const codec::BitSlab& received) const;

  /// Post-decoding bit error rate as a function of the raw channel bit
  /// error probability p.  For Hamming codes this is the paper's Eq. 2:
  /// BER = p - p (1-p)^(n-1).
  [[nodiscard]] virtual double decoded_ber(double raw_p) const = 0;

  /// Inverse of decoded_ber with explicit saturation: the raw channel
  /// error probability that yields `target_ber` after decoding.  When
  /// the target is below what p = kMinSearchRawBer produces, the result
  /// is {kMinSearchRawBer, saturated == true}.  The default
  /// implementation inverts decoded_ber numerically (decoded_ber must be
  /// strictly increasing on (0, 0.5], which holds for every code here).
  /// `trace`, when non-null, receives the solve's iteration count (the
  /// sweep plans aggregate it); passing nullptr changes nothing.
  [[nodiscard]] virtual RawBerRequirement required_raw_ber_checked(
      double target_ber, RawBerSolveTrace* trace = nullptr) const;

  /// Warm entry point of the sweep hot path: when `hint` is present and
  /// hint->target_ber bit-equals `target_ber`, returns
  /// hint->requirement with zero work (trace: 0 iterations, warm);
  /// otherwise a cold required_raw_ber_checked — bit-identical to
  /// calling it directly.
  [[nodiscard]] RawBerRequirement required_raw_ber_warm(
      double target_ber, const RawBerHint* hint,
      RawBerSolveTrace* trace = nullptr) const;

  /// Tolerance-level neighbor seeding (bench/diagnostic only — NOT used
  /// on export paths, whose byte-identity contract requires bit-equal
  /// reuse): runs the numeric inversion through math::brent_warm with a
  /// log-domain bracket around `guess_raw_ber`, converging in 1-3
  /// iterations for a near-miss guess and falling back to the cold
  /// bracket (bit-identically) when the guess is stale.  Codes with a
  /// closed-form required_raw_ber_checked override may differ from
  /// their override at the solver tolerance (~1e-13 relative).
  [[nodiscard]] RawBerRequirement required_raw_ber_seeded(
      double target_ber, double guess_raw_ber,
      RawBerSolveTrace* trace = nullptr) const;

  /// Convenience wrapper discarding the saturation flag.  Callers that
  /// must distinguish an exact inverse from the clamped bracket edge
  /// use required_raw_ber_checked.
  [[nodiscard]] double required_raw_ber(double target_ber) const {
    return required_raw_ber_checked(target_ber).raw_ber;
  }

  /// Guaranteed number of correctable errors: floor((d_min - 1) / 2).
  [[nodiscard]] std::size_t correctable_errors() const noexcept {
    return (min_distance() - 1) / 2;
  }

  /// Code rate Rc = k / n.
  [[nodiscard]] double code_rate() const noexcept {
    return static_cast<double>(message_length()) /
           static_cast<double>(block_length());
  }

  /// Relative communication time CT = n / k, normalised to the uncoded
  /// transmission of the same payload (paper Section IV-D: H(7,4) has
  /// CT = 1.75).
  [[nodiscard]] double communication_time() const noexcept {
    return static_cast<double>(block_length()) /
           static_cast<double>(message_length());
  }

  /// Guaranteed upper bound on the fraction of codeword bits that are 1
  /// in ANY transmitted word, in (0, 1].  1.0 (the default) means no
  /// guarantee — an adversarial payload can light every wire.  Cooling
  /// codes (photecc::cooling) override this with w_max / n; the thermal
  /// stack multiplies the channel activity by it (laser derating and
  /// self-heating both scale with the number of simultaneously-hot
  /// wires), so a bound < 1 widens the feasible activity window.
  [[nodiscard]] virtual double transmit_duty_bound() const noexcept {
    return 1.0;
  }
};

using BlockCodePtr = std::shared_ptr<const BlockCode>;

}  // namespace photecc::ecc

#endif  // PHOTECC_ECC_BLOCK_CODE_HPP
