// Block interleaver: spreads burst errors across codewords so that a
// single-error-correcting code survives bursts up to the interleaving
// depth.  Write row-wise, transmit column-wise.
#ifndef PHOTECC_ECC_INTERLEAVER_HPP
#define PHOTECC_ECC_INTERLEAVER_HPP

#include <cstddef>

#include "photecc/ecc/bitslab.hpp"
#include "photecc/ecc/bitvec.hpp"

namespace photecc::ecc {

/// rows x cols block interleaver.  `rows` is the interleaving depth
/// (codewords per frame), `cols` the codeword length.
class BlockInterleaver {
 public:
  /// Throws std::invalid_argument when either dimension is zero.
  BlockInterleaver(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t frame_bits() const noexcept {
    return rows_ * cols_;
  }

  /// Burst length guaranteed to leave <= 1 error per deinterleaved row.
  [[nodiscard]] std::size_t burst_tolerance() const noexcept {
    return rows_;
  }

  /// Row-major frame -> column-major wire order.
  [[nodiscard]] BitVec interleave(const BitVec& frame) const;

  /// Inverse permutation.
  [[nodiscard]] BitVec deinterleave(const BitVec& frame) const;

  /// Bitsliced forms: the interleave permutation acts on bit positions
  /// only, so on a slab it is a pure word shuffle — 64 frames permuted
  /// per word move.  Bit-identical to the scalar permutations per lane.
  [[nodiscard]] codec::BitSlab interleave_batch(
      const codec::BitSlab& frames) const;
  [[nodiscard]] codec::BitSlab deinterleave_batch(
      const codec::BitSlab& frames) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
};

}  // namespace photecc::ecc

#endif  // PHOTECC_ECC_INTERLEAVER_HPP
