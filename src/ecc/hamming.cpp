#include "photecc/ecc/hamming.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace photecc::ecc {
namespace {

bool is_power_of_two(std::size_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

// Eq. 2 of the paper.  Guard the domain; p = 0 maps to BER = 0.
// NOTE: the 1 - (1-p)^(n-1) difference cancels below p ~ 1e-14 and the
// result degrades to 0; required_raw_ber_checked's saturation guard
// (ber_model.cpp) keeps the numeric inversion out of that zone.
double hamming_eq2(double p, std::size_t n) {
  if (p < 0.0 || p > 1.0)
    throw std::domain_error("decoded_ber: raw p outside [0, 1]");
  if (p == 0.0) return 0.0;
  return p - p * std::pow(1.0 - p, static_cast<double>(n - 1));
}

}  // namespace

HammingCode::HammingCode(std::size_t m) : m_(m) {
  if (m < 2 || m > 16)
    throw std::invalid_argument("HammingCode: m must be in [2, 16]");
  n_ = (std::size_t{1} << m) - 1;
  k_ = n_ - m;
  data_positions_.reserve(k_);
  parity_positions_.reserve(m_);
  for (std::size_t pos = 1; pos <= n_; ++pos) {
    if (is_power_of_two(pos))
      parity_positions_.push_back(pos);
    else
      data_positions_.push_back(pos);
  }
}

std::string HammingCode::name() const {
  return "H(" + std::to_string(n_) + "," + std::to_string(k_) + ")";
}

BitVec HammingCode::encode(const BitVec& message) const {
  if (message.size() != k_)
    throw std::invalid_argument(name() + "::encode: message size mismatch");
  BitVec code(n_);
  // Place data bits at non-power-of-two positions.
  for (std::size_t i = 0; i < k_; ++i)
    code.set(data_positions_[i] - 1, message.get(i));
  // Parity bit at position 2^j covers every position with bit j set.
  for (std::size_t j = 0; j < m_; ++j) {
    const std::size_t pbit = std::size_t{1} << j;
    bool parity = false;
    for (std::size_t pos = 1; pos <= n_; ++pos) {
      if ((pos & pbit) && pos != pbit) parity ^= code.get(pos - 1);
    }
    code.set(pbit - 1, parity);
  }
  return code;
}

DecodeResult HammingCode::decode(const BitVec& received) const {
  if (received.size() != n_)
    throw std::invalid_argument(name() + "::decode: block size mismatch");
  std::size_t syndrome = 0;
  for (std::size_t pos = 1; pos <= n_; ++pos) {
    if (received.get(pos - 1)) syndrome ^= pos;
  }
  DecodeResult result;
  BitVec corrected = received;
  if (syndrome != 0) {
    result.error_detected = true;
    // For a perfect Hamming code every non-zero syndrome names a valid
    // position, so correction always applies.
    corrected.flip(syndrome - 1);
    result.corrected = true;
    result.corrected_position = syndrome - 1;
  }
  result.message = BitVec(k_);
  for (std::size_t i = 0; i < k_; ++i)
    result.message.set(i, corrected.get(data_positions_[i] - 1));
  return result;
}

codec::BitSlab HammingCode::encode_batch(const codec::BitSlab& messages) const {
  if (messages.bits() != k_)
    throw std::invalid_argument(name() +
                                "::encode_batch: message size mismatch");
  codec::BitSlab code(n_, messages.lanes());
  // Data words move straight to their codeword positions; each parity
  // word is a single XOR reduction over its coverage set — the
  // word-parallel image of the scalar per-bit loops above.
  for (std::size_t i = 0; i < k_; ++i)
    code.word(data_positions_[i] - 1) = messages.word(i);
  for (std::size_t j = 0; j < m_; ++j) {
    const std::size_t pbit = std::size_t{1} << j;
    std::uint64_t parity = 0;
    for (std::size_t pos = 1; pos <= n_; ++pos) {
      if ((pos & pbit) && pos != pbit) parity ^= code.word(pos - 1);
    }
    code.word(pbit - 1) = parity;
  }
  return code;
}

BatchDecodeResult HammingCode::decode_batch(
    const codec::BitSlab& received) const {
  if (received.bits() != n_)
    throw std::invalid_argument(name() + "::decode_batch: block size mismatch");
  // Syndrome bit-planes: syn[j] bit l = bit j of lane l's syndrome.
  std::uint64_t syn[16] = {};
  for (std::size_t pos = 1; pos <= n_; ++pos) {
    const std::uint64_t w = received.word(pos - 1);
    for (std::size_t j = 0; j < m_; ++j)
      if (pos & (std::size_t{1} << j)) syn[j] ^= w;
  }
  std::uint64_t any = 0;
  for (std::size_t j = 0; j < m_; ++j) any |= syn[j];

  codec::BitSlab corrected = received;
  // Every non-zero syndrome names a valid position (perfect code), so
  // the only lane-serial work is gathering the syndrome of each dirty
  // lane and flipping its addressed word bit.
  for (std::uint64_t dirty = any; dirty != 0; dirty &= dirty - 1) {
    const unsigned l = static_cast<unsigned>(std::countr_zero(dirty));
    std::size_t s = 0;
    for (std::size_t j = 0; j < m_; ++j)
      s |= static_cast<std::size_t>((syn[j] >> l) & 1u) << j;
    corrected.word(s - 1) ^= std::uint64_t{1} << l;
  }

  BatchDecodeResult result;
  result.messages = codec::BitSlab(k_, received.lanes());
  for (std::size_t i = 0; i < k_; ++i)
    result.messages.word(i) = corrected.word(data_positions_[i] - 1);
  result.error_detected = any;
  result.corrected = any;
  return result;
}

double HammingCode::decoded_ber(double raw_p) const {
  return hamming_eq2(raw_p, n_);
}

std::size_t HammingCode::encoder_xor_gates() const noexcept {
  // Each parity bit is the XOR of (covered positions - 1) inputs, which
  // takes (inputs - 1) two-input XOR gates in a balanced tree.
  std::size_t gates = 0;
  for (std::size_t j = 0; j < m_; ++j) {
    const std::size_t pbit = std::size_t{1} << j;
    std::size_t inputs = 0;
    for (std::size_t pos = 1; pos <= n_; ++pos)
      if ((pos & pbit) && pos != pbit) ++inputs;
    if (inputs > 0) gates += inputs - 1;
  }
  return gates;
}

std::size_t HammingCode::decoder_xor_gates() const noexcept {
  // Syndrome bit j XORs every received position with bit j set
  // (including the parity position itself).
  std::size_t gates = 0;
  for (std::size_t j = 0; j < m_; ++j) {
    const std::size_t pbit = std::size_t{1} << j;
    std::size_t inputs = 0;
    for (std::size_t pos = 1; pos <= n_; ++pos)
      if (pos & pbit) ++inputs;
    if (inputs > 0) gates += inputs - 1;
  }
  // Correction stage: k XORs flip the addressed data bit.
  return gates + k_;
}

// ---------------------------------------------------------------------
// ShortenedHammingCode
// ---------------------------------------------------------------------

ShortenedHammingCode::ShortenedHammingCode(std::size_t m,
                                           std::size_t shorten_by)
    : base_(m), shorten_by_(shorten_by) {
  if (shorten_by >= base_.message_length())
    throw std::invalid_argument(
        "ShortenedHammingCode: shortening removes the whole message");
  n_ = base_.block_length() - shorten_by;
  k_ = base_.message_length() - shorten_by;
  // Precompute the shortening layout once: which base positions are
  // removed (the *last* shorten_by data positions), and the base
  // position of each transmitted wire, in wire order.
  removed_.assign(base_.block_length(), false);
  for (std::size_t i = k_; i < base_.message_length(); ++i)
    removed_[base_.data_position(i) - 1] = true;
  wire_positions_.reserve(n_);
  for (std::size_t pos = 0; pos < base_.block_length(); ++pos)
    if (!removed_[pos]) wire_positions_.push_back(pos);
}

std::string ShortenedHammingCode::name() const {
  return "H(" + std::to_string(n_) + "," + std::to_string(k_) + ")";
}

BitVec ShortenedHammingCode::pad_message(const BitVec& message) const {
  // The removed data positions are the *last* shorten_by data bits of
  // the base code, fixed at zero.
  BitVec padded(base_.message_length());
  for (std::size_t i = 0; i < k_; ++i) padded.set(i, message.get(i));
  return padded;
}

BitVec ShortenedHammingCode::encode(const BitVec& message) const {
  if (message.size() != k_)
    throw std::invalid_argument(name() + "::encode: message size mismatch");
  const BitVec full = base_.encode(pad_message(message));
  // Transmit every base-codeword position except the removed (zero)
  // data positions.
  BitVec out(n_);
  for (std::size_t o = 0; o < n_; ++o) out.set(o, full.get(wire_positions_[o]));
  return out;
}

DecodeResult ShortenedHammingCode::decode(const BitVec& received) const {
  if (received.size() != n_)
    throw std::invalid_argument(name() + "::decode: block size mismatch");
  // Re-insert the removed (zero) positions, then run the base decoder.
  BitVec full(base_.block_length());
  for (std::size_t o = 0; o < n_; ++o)
    full.set(wire_positions_[o], received.get(o));
  DecodeResult base_result = base_.decode(full);
  DecodeResult result;
  result.error_detected = base_result.error_detected;
  // A syndrome addressing a removed position cannot be a single error:
  // report detection without correction.
  if (base_result.corrected) {
    const std::size_t pos = *base_result.corrected_position;
    if (removed_[pos]) {
      result.corrected = false;
    } else {
      result.corrected = true;
      // Translate base position to shortened codeword index.
      std::size_t shortened_index = 0;
      for (std::size_t p = 0; p < pos; ++p)
        if (!removed_[p]) ++shortened_index;
      result.corrected_position = shortened_index;
    }
  }
  result.message = BitVec(k_);
  for (std::size_t i = 0; i < k_; ++i)
    result.message.set(i, base_result.message.get(i));
  return result;
}

codec::BitSlab ShortenedHammingCode::encode_batch(
    const codec::BitSlab& messages) const {
  if (messages.bits() != k_)
    throw std::invalid_argument(name() +
                                "::encode_batch: message size mismatch");
  // Pad with zero words at the removed data positions (word moves only),
  // run the base parity network, compact to wire order.
  codec::BitSlab padded(base_.message_length(), messages.lanes());
  for (std::size_t i = 0; i < k_; ++i) padded.word(i) = messages.word(i);
  const codec::BitSlab full = base_.encode_batch(padded);
  codec::BitSlab out(n_, messages.lanes());
  for (std::size_t o = 0; o < n_; ++o)
    out.word(o) = full.word(wire_positions_[o]);
  return out;
}

BatchDecodeResult ShortenedHammingCode::decode_batch(
    const codec::BitSlab& received) const {
  if (received.bits() != n_)
    throw std::invalid_argument(name() + "::decode_batch: block size mismatch");
  // Expand to the base layout (removed positions stay zero words) and
  // compute the base syndrome bit-planes word-parallel.
  codec::BitSlab full(base_.block_length(), received.lanes());
  for (std::size_t o = 0; o < n_; ++o)
    full.word(wire_positions_[o]) = received.word(o);
  const std::size_t m = base_.parity_bits();
  std::uint64_t syn[16] = {};
  for (std::size_t pos = 1; pos <= base_.block_length(); ++pos) {
    const std::uint64_t w = full.word(pos - 1);
    for (std::size_t j = 0; j < m; ++j)
      if (pos & (std::size_t{1} << j)) syn[j] ^= w;
  }
  std::uint64_t any = 0;
  for (std::size_t j = 0; j < m; ++j) any |= syn[j];

  std::uint64_t corrected_mask = 0;
  for (std::uint64_t dirty = any; dirty != 0; dirty &= dirty - 1) {
    const unsigned l = static_cast<unsigned>(std::countr_zero(dirty));
    std::size_t s = 0;
    for (std::size_t j = 0; j < m; ++j)
      s |= static_cast<std::size_t>((syn[j] >> l) & 1u) << j;
    // A syndrome addressing a removed position cannot be a single
    // error: detected, not corrected.  Removed positions are data
    // positions past k_, so skipping the flip cannot change the first
    // k_ extracted message words either (matching the scalar path).
    if (removed_[s - 1]) continue;
    full.word(s - 1) ^= std::uint64_t{1} << l;
    corrected_mask |= std::uint64_t{1} << l;
  }

  BatchDecodeResult result;
  result.messages = codec::BitSlab(k_, received.lanes());
  for (std::size_t i = 0; i < k_; ++i)
    result.messages.word(i) = full.word(base_.data_position(i) - 1);
  result.error_detected = any;
  result.corrected = corrected_mask;
  return result;
}

double ShortenedHammingCode::decoded_ber(double raw_p) const {
  return hamming_eq2(raw_p, n_);
}

std::size_t ShortenedHammingCode::encoder_xor_gates() const noexcept {
  // Parity trees lose the inputs that were shortened away.  Count the
  // remaining coverage per parity bit.
  std::size_t gates = 0;
  std::vector<bool> removed(base_.block_length() + 1, false);
  for (std::size_t i = k_; i < base_.message_length(); ++i)
    removed[base_.data_position(i)] = true;
  for (std::size_t j = 0; j < base_.parity_bits(); ++j) {
    const std::size_t pbit = std::size_t{1} << j;
    std::size_t inputs = 0;
    for (std::size_t pos = 1; pos <= base_.block_length(); ++pos)
      if ((pos & pbit) && pos != pbit && !removed[pos]) ++inputs;
    if (inputs > 0) gates += inputs - 1;
  }
  return gates;
}

std::size_t ShortenedHammingCode::decoder_xor_gates() const noexcept {
  std::size_t gates = 0;
  std::vector<bool> removed(base_.block_length() + 1, false);
  for (std::size_t i = k_; i < base_.message_length(); ++i)
    removed[base_.data_position(i)] = true;
  for (std::size_t j = 0; j < base_.parity_bits(); ++j) {
    const std::size_t pbit = std::size_t{1} << j;
    std::size_t inputs = 0;
    for (std::size_t pos = 1; pos <= base_.block_length(); ++pos)
      if ((pos & pbit) && !removed[pos]) ++inputs;
    if (inputs > 0) gates += inputs - 1;
  }
  return gates + k_;
}

}  // namespace photecc::ecc
