#include "photecc/ecc/bitslab.hpp"

#include <stdexcept>

namespace photecc::codec {

BitSlab::BitSlab(std::size_t bits, std::size_t lanes)
    : lanes_(lanes), words_(bits, 0) {
  if (lanes == 0 || lanes > kLanes)
    throw std::invalid_argument("BitSlab: lanes must be in [1, 64]");
}

BitSlab BitSlab::transpose_in(std::span<const ecc::BitVec> batch) {
  if (batch.empty())
    throw std::invalid_argument("BitSlab::transpose_in: empty batch");
  if (batch.size() > kLanes)
    throw std::invalid_argument("BitSlab::transpose_in: more than 64 lanes");
  const std::size_t bits = batch[0].size();
  for (const auto& vec : batch) {
    if (vec.size() != bits)
      throw std::invalid_argument(
          "BitSlab::transpose_in: mismatched word sizes");
  }
  BitSlab slab(bits, batch.size());
  // Word-at-a-time gather: lane l contributes bit i of its word to bit
  // l of slab word i.
  for (std::size_t l = 0; l < batch.size(); ++l) {
    const std::span<const std::uint64_t> lane_words = batch[l].words();
    for (std::size_t i = 0; i < bits; ++i) {
      const std::uint64_t bit = (lane_words[i / 64] >> (i % 64)) & 1u;
      slab.words_[i] |= bit << l;
    }
  }
  return slab;
}

ecc::BitVec BitSlab::transpose_out(std::size_t lane) const {
  if (lane >= lanes_)
    throw std::out_of_range("BitSlab::transpose_out: lane out of range");
  ecc::BitVec out(bits());
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] >> lane) & 1u) out.set(i, true);
  }
  return out;
}

std::vector<ecc::BitVec> BitSlab::transpose_out() const {
  std::vector<ecc::BitVec> out;
  out.reserve(lanes_);
  for (std::size_t l = 0; l < lanes_; ++l) out.push_back(transpose_out(l));
  return out;
}

BitSlab BitSlab::slice(std::size_t offset, std::size_t count) const {
  if (offset + count > bits())
    throw std::out_of_range("BitSlab::slice: range out of bounds");
  BitSlab out(count, lanes_);
  for (std::size_t i = 0; i < count; ++i)
    out.words_[i] = words_[offset + i];
  return out;
}

void BitSlab::paste(std::size_t offset, const BitSlab& other) {
  if (other.lanes_ != lanes_)
    throw std::invalid_argument("BitSlab::paste: lane count mismatch");
  if (offset + other.bits() > bits())
    throw std::out_of_range("BitSlab::paste: range out of bounds");
  for (std::size_t i = 0; i < other.bits(); ++i)
    words_[offset + i] = other.words_[i];
}

}  // namespace photecc::codec
