// Scalar fallbacks of the batch codec API: transpose out, run the
// per-word codec lane by lane, transpose back in.  Bit-identical to the
// scalar path by construction — this is the reference every kernel
// override is pinned against (tests/codec/batch_equivalence_test.cpp).
#include "photecc/ecc/block_code.hpp"

#include <stdexcept>

namespace photecc::ecc {

codec::BitSlab BlockCode::encode_batch(const codec::BitSlab& messages) const {
  if (messages.bits() != message_length())
    throw std::invalid_argument(name() +
                                "::encode_batch: message size mismatch");
  codec::BitSlab out(block_length(), messages.lanes());
  for (std::size_t l = 0; l < messages.lanes(); ++l) {
    const BitVec codeword = encode(messages.transpose_out(l));
    const std::span<const std::uint64_t> words = codeword.words();
    for (std::size_t i = 0; i < codeword.size(); ++i) {
      const std::uint64_t bit = (words[i / 64] >> (i % 64)) & 1u;
      out.word(i) |= bit << l;
    }
  }
  return out;
}

BatchDecodeResult BlockCode::decode_batch(
    const codec::BitSlab& received) const {
  if (received.bits() != block_length())
    throw std::invalid_argument(name() +
                                "::decode_batch: block size mismatch");
  BatchDecodeResult result;
  result.messages = codec::BitSlab(message_length(), received.lanes());
  for (std::size_t l = 0; l < received.lanes(); ++l) {
    const DecodeResult lane = decode(received.transpose_out(l));
    const std::span<const std::uint64_t> words = lane.message.words();
    for (std::size_t i = 0; i < lane.message.size(); ++i) {
      const std::uint64_t bit = (words[i / 64] >> (i % 64)) & 1u;
      result.messages.word(i) |= bit << l;
    }
    if (lane.error_detected) result.error_detected |= std::uint64_t{1} << l;
    if (lane.corrected) result.corrected |= std::uint64_t{1} << l;
  }
  return result;
}

}  // namespace photecc::ecc
