#include "photecc/ecc/bitvec.hpp"

#include <bit>
#include <stdexcept>

namespace photecc::ecc {

BitVec BitVec::from_uint(std::uint64_t value, std::size_t size) {
  if (size > 64)
    throw std::invalid_argument("BitVec::from_uint: size > 64");
  BitVec v(size);
  if (size > 0) {
    const std::uint64_t mask =
        size == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << size) - 1);
    v.words_[0] = value & mask;
  }
  return v;
}

BitVec BitVec::from_string(const std::string& bits) {
  BitVec v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] == '1')
      v.set(i, true);
    else if (bits[i] != '0')
      throw std::invalid_argument("BitVec::from_string: bad character");
  }
  return v;
}

void BitVec::check_index(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("BitVec: index out of range");
}

bool BitVec::get(std::size_t i) const {
  check_index(i);
  return (words_[i / 64] >> (i % 64)) & 1u;
}

void BitVec::set(std::size_t i, bool value) {
  check_index(i);
  const std::uint64_t mask = std::uint64_t{1} << (i % 64);
  if (value)
    words_[i / 64] |= mask;
  else
    words_[i / 64] &= ~mask;
}

void BitVec::flip(std::size_t i) {
  check_index(i);
  words_[i / 64] ^= std::uint64_t{1} << (i % 64);
}

std::size_t BitVec::popcount() const noexcept {
  std::size_t total = 0;
  for (const std::uint64_t w : words_) total += std::popcount(w);
  return total;
}

std::size_t BitVec::count_errors(const BitVec& other) const {
  if (size_ != other.size_)
    throw std::invalid_argument("BitVec::count_errors: size mismatch");
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i)
    total += std::popcount(words_[i] ^ other.words_[i]);
  return total;
}

BitVec& BitVec::operator^=(const BitVec& other) {
  if (size_ != other.size_)
    throw std::invalid_argument("BitVec::operator^=: size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

std::uint64_t BitVec::to_uint() const {
  if (size_ > 64) throw std::logic_error("BitVec::to_uint: size > 64");
  return words_.empty() ? 0 : words_[0];
}

std::string BitVec::to_string() const {
  std::string s(size_, '0');
  for (std::size_t i = 0; i < size_; ++i)
    if (get(i)) s[i] = '1';
  return s;
}

BitVec BitVec::slice(std::size_t offset, std::size_t count) const {
  if (offset + count > size_)
    throw std::out_of_range("BitVec::slice: range out of bounds");
  BitVec out(count);
  for (std::size_t i = 0; i < count; ++i) out.set(i, get(offset + i));
  return out;
}

BitVec BitVec::concat(const BitVec& other) const {
  BitVec out(size_ + other.size_);
  for (std::size_t i = 0; i < size_; ++i) out.set(i, get(i));
  for (std::size_t i = 0; i < other.size_; ++i)
    out.set(size_ + i, other.get(i));
  return out;
}

bool BitVec::operator==(const BitVec& other) const noexcept {
  return size_ == other.size_ && words_ == other.words_;
}

}  // namespace photecc::ecc
