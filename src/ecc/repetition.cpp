#include "photecc/ecc/repetition.hpp"

#include <cmath>
#include <stdexcept>

namespace photecc::ecc {

RepetitionCode::RepetitionCode(std::size_t r) : r_(r) {
  if (r < 3 || r % 2 == 0)
    throw std::invalid_argument("RepetitionCode: r must be odd and >= 3");
}

std::string RepetitionCode::name() const {
  return "REP(" + std::to_string(r_) + ",1)";
}

BitVec RepetitionCode::encode(const BitVec& message) const {
  if (message.size() != 1)
    throw std::invalid_argument(name() + "::encode: message size mismatch");
  BitVec out(r_);
  if (message.get(0)) {
    for (std::size_t i = 0; i < r_; ++i) out.set(i, true);
  }
  return out;
}

DecodeResult RepetitionCode::decode(const BitVec& received) const {
  if (received.size() != r_)
    throw std::invalid_argument(name() + "::decode: block size mismatch");
  const std::size_t ones = received.popcount();
  DecodeResult result;
  result.message = BitVec(1);
  result.message.set(0, ones > r_ / 2);
  // Any mixed pattern means at least one bit differs from the majority.
  result.error_detected = (ones != 0 && ones != r_);
  result.corrected = result.error_detected;
  return result;
}

codec::BitSlab RepetitionCode::encode_batch(
    const codec::BitSlab& messages) const {
  if (messages.bits() != 1)
    throw std::invalid_argument(name() +
                                "::encode_batch: message size mismatch");
  codec::BitSlab out(r_, messages.lanes());
  for (std::size_t i = 0; i < r_; ++i) out.word(i) = messages.word(0);
  return out;
}

BatchDecodeResult RepetitionCode::decode_batch(
    const codec::BitSlab& received) const {
  if (received.bits() != r_)
    throw std::invalid_argument(name() + "::decode_batch: block size mismatch");
  // Carry-save popcount: cnt[b] is bit b of the per-lane ones count.
  std::size_t count_bits = 0;
  while ((std::size_t{1} << count_bits) <= r_) ++count_bits;
  std::vector<std::uint64_t> cnt(count_bits, 0);
  std::uint64_t or_all = 0;
  std::uint64_t and_all = ~std::uint64_t{0};
  for (std::size_t i = 0; i < r_; ++i) {
    const std::uint64_t w = received.word(i);
    or_all |= w;
    and_all &= w;
    std::uint64_t carry = w;
    for (std::size_t b = 0; b < count_bits && carry != 0; ++b) {
      const std::uint64_t tmp = cnt[b] & carry;
      cnt[b] ^= carry;
      carry = tmp;
    }
  }
  // Bitsliced MSB-first comparator: majority lane mask = (count >= T)
  // with T = r/2 + 1 (ones > r/2 for odd r).
  const std::size_t threshold = r_ / 2 + 1;
  std::uint64_t gt = 0;
  std::uint64_t eq = ~std::uint64_t{0};
  for (std::size_t b = count_bits; b-- > 0;) {
    const std::uint64_t tb =
        (threshold >> b) & 1u ? ~std::uint64_t{0} : std::uint64_t{0};
    gt |= eq & cnt[b] & ~tb;
    eq &= ~(cnt[b] ^ tb);
  }

  BatchDecodeResult result;
  result.messages = codec::BitSlab(1, received.lanes());
  result.messages.word(0) = (gt | eq) & received.lane_mask();
  // Any mixed pattern means at least one bit differs from the majority.
  result.error_detected = or_all & ~(and_all & received.lane_mask());
  result.corrected = result.error_detected;
  return result;
}

double RepetitionCode::decoded_ber(double raw_p) const {
  if (raw_p < 0.0 || raw_p > 1.0)
    throw std::domain_error("decoded_ber: raw p outside [0, 1]");
  double ber = 0.0;
  const double q = 1.0 - raw_p;
  // Majority fails when more than r/2 repetitions flip.
  for (std::size_t j = r_ / 2 + 1; j <= r_; ++j) {
    // C(r, j) computed incrementally in log space would be overkill for
    // r <= ~31; straightforward product is exact enough.
    double comb = 1.0;
    for (std::size_t i = 0; i < j; ++i)
      comb = comb * static_cast<double>(r_ - i) / static_cast<double>(i + 1);
    ber += comb * std::pow(raw_p, static_cast<double>(j)) *
           std::pow(q, static_cast<double>(r_ - j));
  }
  return ber;
}

}  // namespace photecc::ecc
