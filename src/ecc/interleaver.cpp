#include "photecc/ecc/interleaver.hpp"

#include <stdexcept>

namespace photecc::ecc {

BlockInterleaver::BlockInterleaver(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols) {
  if (rows == 0 || cols == 0)
    throw std::invalid_argument("BlockInterleaver: zero dimension");
}

BitVec BlockInterleaver::interleave(const BitVec& frame) const {
  if (frame.size() != frame_bits())
    throw std::invalid_argument("BlockInterleaver: frame size mismatch");
  BitVec out(frame_bits());
  // Input index r*cols + c maps to output index c*rows + r.
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out.set(c * rows_ + r, frame.get(r * cols_ + c));
    }
  }
  return out;
}

BitVec BlockInterleaver::deinterleave(const BitVec& frame) const {
  if (frame.size() != frame_bits())
    throw std::invalid_argument("BlockInterleaver: frame size mismatch");
  BitVec out(frame_bits());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out.set(r * cols_ + c, frame.get(c * rows_ + r));
    }
  }
  return out;
}

codec::BitSlab BlockInterleaver::interleave_batch(
    const codec::BitSlab& frames) const {
  if (frames.bits() != frame_bits())
    throw std::invalid_argument("BlockInterleaver: frame size mismatch");
  codec::BitSlab out(frame_bits(), frames.lanes());
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c)
      out.word(c * rows_ + r) = frames.word(r * cols_ + c);
  return out;
}

codec::BitSlab BlockInterleaver::deinterleave_batch(
    const codec::BitSlab& frames) const {
  if (frames.bits() != frame_bits())
    throw std::invalid_argument("BlockInterleaver: frame size mismatch");
  codec::BitSlab out(frame_bits(), frames.lanes());
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c)
      out.word(r * cols_ + c) = frames.word(c * rows_ + r);
  return out;
}

}  // namespace photecc::ecc
