#include "photecc/ecc/bch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace photecc::ecc {
namespace {

// Multiplies two GF(2) polynomials given as bit masks.
std::uint64_t poly_mul_gf2(std::uint64_t a, std::uint64_t b) {
  std::uint64_t out = 0;
  for (unsigned i = 0; b >> i; ++i) {
    if ((b >> i) & 1u) out ^= a << i;
  }
  return out;
}

unsigned poly_degree(std::uint64_t p) {
  unsigned d = 0;
  while (p >> (d + 1)) ++d;
  return d;
}

}  // namespace

BchCode::BchCode(unsigned m, unsigned t) : field_(m), t_(t) {
  if (m < 3) throw std::invalid_argument("BchCode: m must be >= 3");
  if (t == 0) throw std::invalid_argument("BchCode: t must be >= 1");
  n_ = field_.order();
  if (2 * t >= n_)
    throw std::invalid_argument("BchCode: t too large for the length");

  // g(x) = lcm of minimal polynomials of alpha^1 .. alpha^(2t); since
  // each minimal polynomial is irreducible, the lcm is the product of
  // the distinct ones.
  std::vector<std::uint64_t> minimals;
  for (unsigned i = 1; i <= 2 * t; ++i) {
    const std::uint64_t mp = field_.minimal_polynomial(i);
    if (std::find(minimals.begin(), minimals.end(), mp) == minimals.end())
      minimals.push_back(mp);
  }
  std::uint64_t g = 1;
  for (const std::uint64_t mp : minimals) g = poly_mul_gf2(g, mp);
  generator_mask_ = g;
  const unsigned deg = poly_degree(g);
  if (deg >= n_)
    throw std::invalid_argument("BchCode: generator consumes the block");
  k_ = n_ - deg;
  generator_.resize(deg + 1);
  for (unsigned i = 0; i <= deg; ++i)
    generator_[i] = static_cast<unsigned>((g >> i) & 1u);
}

std::string BchCode::name() const {
  return "BCH(" + std::to_string(n_) + "," + std::to_string(k_) + "," +
         std::to_string(t_) + ")";
}

BitVec BchCode::encode(const BitVec& message) const {
  if (message.size() != k_)
    throw std::invalid_argument(name() + "::encode: message size mismatch");
  // Systematic encoding: codeword = [parity | message], i.e.
  // c(x) = x^(n-k) u(x) + (x^(n-k) u(x) mod g(x)).
  const std::size_t parity_len = n_ - k_;
  // Long division of x^(n-k) u(x) by g(x) over GF(2), bit by bit
  // (message degree can exceed 64, so no mask shortcut here).
  std::vector<unsigned> remainder(parity_len, 0);
  for (std::size_t i = k_; i-- > 0;) {
    const unsigned feedback =
        (message.get(i) ? 1u : 0u) ^ remainder[parity_len - 1];
    for (std::size_t j = parity_len; j-- > 1;) {
      remainder[j] = remainder[j - 1] ^ (feedback & generator_[j]);
    }
    remainder[0] = feedback & generator_[0];
  }
  BitVec code(n_);
  for (std::size_t i = 0; i < parity_len; ++i)
    code.set(i, remainder[i] != 0);
  for (std::size_t i = 0; i < k_; ++i)
    code.set(parity_len + i, message.get(i));
  return code;
}

bool BchCode::syndromes(const BitVec& received,
                        std::vector<unsigned>& out) const {
  out.assign(2 * t_, 0);
  bool all_zero = true;
  for (unsigned j = 1; j <= 2 * t_; ++j) {
    unsigned s = 0;
    for (std::size_t pos = 0; pos < n_; ++pos) {
      if (received.get(pos))
        s = GF2m::add(s, field_.alpha_pow(static_cast<int>(pos * j)));
    }
    out[j - 1] = s;
    if (s != 0) all_zero = false;
  }
  return all_zero;
}

DecodeResult BchCode::decode(const BitVec& received) const {
  if (received.size() != n_)
    throw std::invalid_argument(name() + "::decode: block size mismatch");
  const std::size_t parity_len = n_ - k_;
  const auto extract = [&](const BitVec& word) {
    BitVec msg(k_);
    for (std::size_t i = 0; i < k_; ++i)
      msg.set(i, word.get(parity_len + i));
    return msg;
  };

  DecodeResult result;
  std::vector<unsigned> syn;
  if (syndromes(received, syn)) {
    result.message = extract(received);
    return result;
  }
  result.error_detected = true;

  // Berlekamp-Massey: find the error-locator polynomial sigma(x).
  std::vector<unsigned> sigma{1};     // current locator
  std::vector<unsigned> prev{1};      // locator before last length change
  unsigned prev_discrepancy = 1;
  unsigned lfsr_len = 0;
  int shift = 1;
  for (unsigned step = 0; step < 2 * t_; ++step) {
    // Discrepancy d = S_{step+1} + sum sigma_i S_{step+1-i}.
    unsigned d = syn[step];
    for (unsigned i = 1; i <= lfsr_len && i < sigma.size(); ++i) {
      if (step >= i)
        d = GF2m::add(d, field_.mul(sigma[i], syn[step - i]));
    }
    if (d == 0) {
      ++shift;
      continue;
    }
    // sigma' = sigma - (d / prev_d) x^shift prev
    std::vector<unsigned> candidate = sigma;
    const unsigned scale = field_.div(d, prev_discrepancy);
    if (candidate.size() < prev.size() + shift)
      candidate.resize(prev.size() + shift, 0);
    for (std::size_t i = 0; i < prev.size(); ++i) {
      candidate[i + shift] =
          GF2m::add(candidate[i + shift], field_.mul(scale, prev[i]));
    }
    if (2 * lfsr_len <= step) {
      prev = sigma;
      prev_discrepancy = d;
      lfsr_len = step + 1 - lfsr_len;
      shift = 1;
    } else {
      ++shift;
    }
    sigma = std::move(candidate);
  }

  // Degree check: more errors than t => uncorrectable (detected only).
  unsigned degree = 0;
  for (std::size_t i = sigma.size(); i-- > 0;) {
    if (sigma[i] != 0) {
      degree = static_cast<unsigned>(i);
      break;
    }
  }
  if (degree > t_ || degree == 0) {
    result.message = extract(received);
    return result;
  }

  // Chien search: roots of sigma(x) at x = alpha^{-pos} name the error
  // positions.
  BitVec corrected = received;
  unsigned roots = 0;
  std::size_t last_fix = 0;
  for (std::size_t pos = 0; pos < n_; ++pos) {
    const unsigned x = field_.alpha_pow(-static_cast<int>(pos));
    if (field_.eval_poly(sigma, x) == 0) {
      corrected.flip(pos);
      last_fix = pos;
      ++roots;
    }
  }
  if (roots != degree) {
    // Locator does not factor into distinct roots: > t errors.
    result.message = extract(received);
    return result;
  }
  // Verify: corrected word must have zero syndromes.
  std::vector<unsigned> check;
  if (!syndromes(corrected, check)) {
    result.message = extract(received);
    return result;
  }
  result.corrected = true;
  if (roots == 1) result.corrected_position = last_fix;
  result.message = extract(corrected);
  return result;
}

double BchCode::decoded_ber(double raw_p) const {
  if (raw_p < 0.0 || raw_p > 1.0)
    throw std::domain_error("decoded_ber: raw p outside [0, 1]");
  if (raw_p == 0.0) return 0.0;
  // BER = p * P(at least t errors among the remaining n-1 bits): the
  // observed bit is wrong and the decoder's correction budget is spent
  // elsewhere.  Reduces to the paper's Eq. 2 for t = 1.  The tail is
  // summed directly (all-positive terms) so small-p values do not lose
  // precision to cancellation.
  const double q = 1.0 - raw_p;
  const double nm1 = static_cast<double>(n_ - 1);
  double tail = 0.0;  // P(>= t errors among n-1)
  double comb = 1.0;
  for (unsigned j = 1; j <= t_; ++j)
    comb = comb * (nm1 - static_cast<double>(j - 1)) /
           static_cast<double>(j);
  for (unsigned j = t_; j <= n_ - 1; ++j) {
    tail += comb * std::pow(raw_p, static_cast<double>(j)) *
            std::pow(q, nm1 - static_cast<double>(j));
    comb = comb * (nm1 - static_cast<double>(j)) /
           static_cast<double>(j + 1);
  }
  return raw_p * std::min(1.0, tail);
}

}  // namespace photecc::ecc
