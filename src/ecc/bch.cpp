#include "photecc/ecc/bch.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace photecc::ecc {
namespace {

// Multiplies two GF(2) polynomials given as bit masks.
std::uint64_t poly_mul_gf2(std::uint64_t a, std::uint64_t b) {
  std::uint64_t out = 0;
  for (unsigned i = 0; b >> i; ++i) {
    if ((b >> i) & 1u) out ^= a << i;
  }
  return out;
}

unsigned poly_degree(std::uint64_t p) {
  unsigned d = 0;
  while (p >> (d + 1)) ++d;
  return d;
}

}  // namespace

BchCode::BchCode(unsigned m, unsigned t) : field_(m), t_(t) {
  if (m < 3) throw std::invalid_argument("BchCode: m must be >= 3");
  if (t == 0) throw std::invalid_argument("BchCode: t must be >= 1");
  n_ = field_.order();
  if (2 * t >= n_)
    throw std::invalid_argument("BchCode: t too large for the length");

  // g(x) = lcm of minimal polynomials of alpha^1 .. alpha^(2t); since
  // each minimal polynomial is irreducible, the lcm is the product of
  // the distinct ones.
  std::vector<std::uint64_t> minimals;
  for (unsigned i = 1; i <= 2 * t; ++i) {
    const std::uint64_t mp = field_.minimal_polynomial(i);
    if (std::find(minimals.begin(), minimals.end(), mp) == minimals.end())
      minimals.push_back(mp);
  }
  std::uint64_t g = 1;
  for (const std::uint64_t mp : minimals) g = poly_mul_gf2(g, mp);
  generator_mask_ = g;
  const unsigned deg = poly_degree(g);
  if (deg >= n_)
    throw std::invalid_argument("BchCode: generator consumes the block");
  k_ = n_ - deg;
  generator_.resize(deg + 1);
  for (unsigned i = 0; i <= deg; ++i)
    generator_[i] = static_cast<unsigned>((g >> i) & 1u);
}

std::string BchCode::name() const {
  return "BCH(" + std::to_string(n_) + "," + std::to_string(k_) + "," +
         std::to_string(t_) + ")";
}

BitVec BchCode::encode(const BitVec& message) const {
  if (message.size() != k_)
    throw std::invalid_argument(name() + "::encode: message size mismatch");
  // Systematic encoding: codeword = [parity | message], i.e.
  // c(x) = x^(n-k) u(x) + (x^(n-k) u(x) mod g(x)).
  const std::size_t parity_len = n_ - k_;
  // Long division of x^(n-k) u(x) by g(x) over GF(2), bit by bit
  // (message degree can exceed 64, so no mask shortcut here).
  std::vector<unsigned> remainder(parity_len, 0);
  for (std::size_t i = k_; i-- > 0;) {
    const unsigned feedback =
        (message.get(i) ? 1u : 0u) ^ remainder[parity_len - 1];
    for (std::size_t j = parity_len; j-- > 1;) {
      remainder[j] = remainder[j - 1] ^ (feedback & generator_[j]);
    }
    remainder[0] = feedback & generator_[0];
  }
  BitVec code(n_);
  for (std::size_t i = 0; i < parity_len; ++i)
    code.set(i, remainder[i] != 0);
  for (std::size_t i = 0; i < k_; ++i)
    code.set(parity_len + i, message.get(i));
  return code;
}

bool BchCode::syndromes(const BitVec& received,
                        std::vector<unsigned>& out) const {
  out.assign(2 * t_, 0);
  bool all_zero = true;
  for (unsigned j = 1; j <= 2 * t_; ++j) {
    unsigned s = 0;
    for (std::size_t pos = 0; pos < n_; ++pos) {
      if (received.get(pos))
        s = GF2m::add(s, field_.alpha_pow(static_cast<int>(pos * j)));
    }
    out[j - 1] = s;
    if (s != 0) all_zero = false;
  }
  return all_zero;
}

DecodeResult BchCode::decode(const BitVec& received) const {
  if (received.size() != n_)
    throw std::invalid_argument(name() + "::decode: block size mismatch");
  const std::size_t parity_len = n_ - k_;
  const auto extract = [&](const BitVec& word) {
    BitVec msg(k_);
    for (std::size_t i = 0; i < k_; ++i)
      msg.set(i, word.get(parity_len + i));
    return msg;
  };

  DecodeResult result;
  std::vector<unsigned> syn;
  if (syndromes(received, syn)) {
    result.message = extract(received);
    return result;
  }
  result.error_detected = true;

  // Berlekamp-Massey: find the error-locator polynomial sigma(x).
  std::vector<unsigned> sigma{1};     // current locator
  std::vector<unsigned> prev{1};      // locator before last length change
  unsigned prev_discrepancy = 1;
  unsigned lfsr_len = 0;
  int shift = 1;
  for (unsigned step = 0; step < 2 * t_; ++step) {
    // Discrepancy d = S_{step+1} + sum sigma_i S_{step+1-i}.
    unsigned d = syn[step];
    for (unsigned i = 1; i <= lfsr_len && i < sigma.size(); ++i) {
      if (step >= i)
        d = GF2m::add(d, field_.mul(sigma[i], syn[step - i]));
    }
    if (d == 0) {
      ++shift;
      continue;
    }
    // sigma' = sigma - (d / prev_d) x^shift prev
    std::vector<unsigned> candidate = sigma;
    const unsigned scale = field_.div(d, prev_discrepancy);
    if (candidate.size() < prev.size() + shift)
      candidate.resize(prev.size() + shift, 0);
    for (std::size_t i = 0; i < prev.size(); ++i) {
      candidate[i + shift] =
          GF2m::add(candidate[i + shift], field_.mul(scale, prev[i]));
    }
    if (2 * lfsr_len <= step) {
      prev = sigma;
      prev_discrepancy = d;
      lfsr_len = step + 1 - lfsr_len;
      shift = 1;
    } else {
      ++shift;
    }
    sigma = std::move(candidate);
  }

  // Degree check: more errors than t => uncorrectable (detected only).
  unsigned degree = 0;
  for (std::size_t i = sigma.size(); i-- > 0;) {
    if (sigma[i] != 0) {
      degree = static_cast<unsigned>(i);
      break;
    }
  }
  if (degree > t_ || degree == 0) {
    result.message = extract(received);
    return result;
  }

  // Chien search: roots of sigma(x) at x = alpha^{-pos} name the error
  // positions.
  BitVec corrected = received;
  unsigned roots = 0;
  std::size_t last_fix = 0;
  for (std::size_t pos = 0; pos < n_; ++pos) {
    const unsigned x = field_.alpha_pow(-static_cast<int>(pos));
    if (field_.eval_poly(sigma, x) == 0) {
      corrected.flip(pos);
      last_fix = pos;
      ++roots;
    }
  }
  if (roots != degree) {
    // Locator does not factor into distinct roots: > t errors.
    result.message = extract(received);
    return result;
  }
  // Verify: corrected word must have zero syndromes.
  std::vector<unsigned> check;
  if (!syndromes(corrected, check)) {
    result.message = extract(received);
    return result;
  }
  result.corrected = true;
  if (roots == 1) result.corrected_position = last_fix;
  result.message = extract(corrected);
  return result;
}

codec::BitSlab BchCode::encode_batch(const codec::BitSlab& messages) const {
  if (messages.bits() != k_)
    throw std::invalid_argument(name() +
                                "::encode_batch: message size mismatch");
  const std::size_t parity_len = n_ - k_;
  // Word-parallel LFSR division: the scalar bit-serial recurrence with
  // every scalar replaced by a 64-lane word (feedback bit -> feedback
  // word), so each lane runs the exact scalar recurrence.
  std::vector<std::uint64_t> rem(parity_len, 0);
  for (std::size_t i = k_; i-- > 0;) {
    const std::uint64_t feedback = messages.word(i) ^ rem[parity_len - 1];
    for (std::size_t j = parity_len; j-- > 1;)
      rem[j] = rem[j - 1] ^ (generator_[j] ? feedback : 0);
    rem[0] = generator_[0] ? feedback : 0;
  }
  codec::BitSlab code(n_, messages.lanes());
  for (std::size_t i = 0; i < parity_len; ++i) code.word(i) = rem[i];
  for (std::size_t i = 0; i < k_; ++i)
    code.word(parity_len + i) = messages.word(i);
  return code;
}

BatchDecodeResult BchCode::decode_batch(const codec::BitSlab& received) const {
  if (received.bits() != n_)
    throw std::invalid_argument(name() + "::decode_batch: block size mismatch");
  const std::size_t parity_len = n_ - k_;
  const unsigned m = field_.m();

  // Odd syndrome bit-planes: planes[idx * m + b] bit l = bit b of
  // S_{2 idx + 1} in lane l.  Even syndromes are Frobenius squares of
  // earlier ones (S_2j = S_j^2), so "any odd syndrome non-zero" is
  // exactly the scalar dirty condition over all 2t syndromes.
  std::vector<std::uint64_t> planes(static_cast<std::size_t>(t_) * m, 0);
  for (std::size_t pos = 0; pos < n_; ++pos) {
    const std::uint64_t w = received.word(pos);
    if (w == 0) continue;
    for (unsigned idx = 0; idx < t_; ++idx) {
      unsigned a = field_.alpha_pow(static_cast<int>(pos * (2 * idx + 1)));
      std::uint64_t* plane = &planes[static_cast<std::size_t>(idx) * m];
      for (; a != 0; a &= a - 1) plane[std::countr_zero(a)] ^= w;
    }
  }
  std::uint64_t dirty = 0;
  for (const std::uint64_t p : planes) dirty |= p;

  const auto gather = [&](unsigned idx, unsigned l) {
    unsigned v = 0;
    for (unsigned b = 0; b < m; ++b)
      v |= static_cast<unsigned>(
               (planes[static_cast<std::size_t>(idx) * m + b] >> l) & 1u)
           << b;
    return v;
  };

  codec::BitSlab corrected = received;
  std::uint64_t corrected_mask = 0;
  for (std::uint64_t rest = dirty; rest != 0; rest &= rest - 1) {
    const unsigned l = static_cast<unsigned>(std::countr_zero(rest));
    const std::uint64_t lbit = std::uint64_t{1} << l;
    if (t_ == 1) {
      // Hamming-equivalent: the single odd syndrome names the error and
      // the scalar verify step always passes (S2' = S1'^2 = 0).
      corrected.word(field_.log(gather(0, l))) ^= lbit;
      corrected_mask |= lbit;
    } else if (t_ == 2) {
      const unsigned s1 = gather(0, l);
      const unsigned s3 = gather(1, l);
      if (s1 == 0) continue;  // locator degree 3 in scalar BM: detect only
      const unsigned s1_cubed = field_.mul(s1, field_.mul(s1, s1));
      if (s3 == s1_cubed) {
        // Scalar BM yields sigma = 1 + S1 x with its verify passing
        // (S3' = S3 + S1^3 = 0): single correction at log S1.
        corrected.word(field_.log(s1)) ^= lbit;
        corrected_mask |= lbit;
        continue;
      }
      // Double error: sigma = 1 + S1 x + sigma2 x^2 with
      // sigma2 = (S3 + S1^3) / S1 — the exact BM output for this
      // syndrome pattern.  A degree-2 locator has 0 or 2 distinct
      // roots; with 2 the scalar verify step provably passes
      // (S1' = S1 + Y1 + Y2 = 0, S3' = S3 + Y1^3 + Y2^3 = 0).
      const unsigned sigma2 = field_.div(GF2m::add(s3, s1_cubed), s1);
      std::size_t roots[2] = {0, 0};
      unsigned n_roots = 0;
      for (std::size_t pos = 0; pos < n_ && n_roots < 2; ++pos) {
        const unsigned x = field_.alpha_pow(-static_cast<int>(pos));
        const unsigned val = GF2m::add(
            GF2m::add(1u, field_.mul(s1, x)),
            field_.mul(sigma2, field_.mul(x, x)));
        if (val == 0) roots[n_roots++] = pos;
      }
      if (n_roots == 2) {
        corrected.word(roots[0]) ^= lbit;
        corrected.word(roots[1]) ^= lbit;
        corrected_mask |= lbit;
      }
    } else {
      // t >= 3: scalar fallback for the (screened, rare) dirty lane.
      // Systematic layout: overwriting the message region of this lane
      // with the scalar result covers both corrected and detected-only
      // outcomes.
      const DecodeResult lane = decode(received.transpose_out(l));
      const std::span<const std::uint64_t> mw = lane.message.words();
      for (std::size_t i = 0; i < k_; ++i) {
        const std::uint64_t bit = (mw[i / 64] >> (i % 64)) & 1u;
        std::uint64_t& word = corrected.word(parity_len + i);
        word = (word & ~lbit) | (bit << l);
      }
      if (lane.corrected) corrected_mask |= lbit;
    }
  }

  BatchDecodeResult result;
  result.messages = codec::BitSlab(k_, received.lanes());
  for (std::size_t i = 0; i < k_; ++i)
    result.messages.word(i) = corrected.word(parity_len + i);
  result.error_detected = dirty;
  result.corrected = corrected_mask;
  return result;
}

double BchCode::decoded_ber(double raw_p) const {
  if (raw_p < 0.0 || raw_p > 1.0)
    throw std::domain_error("decoded_ber: raw p outside [0, 1]");
  if (raw_p == 0.0) return 0.0;
  // BER = p * P(at least t errors among the remaining n-1 bits): the
  // observed bit is wrong and the decoder's correction budget is spent
  // elsewhere.  Reduces to the paper's Eq. 2 for t = 1.  The tail is
  // summed directly (all-positive terms) so small-p values do not lose
  // precision to cancellation.
  const double q = 1.0 - raw_p;
  const double nm1 = static_cast<double>(n_ - 1);
  double tail = 0.0;  // P(>= t errors among n-1)
  double comb = 1.0;
  for (unsigned j = 1; j <= t_; ++j)
    comb = comb * (nm1 - static_cast<double>(j - 1)) /
           static_cast<double>(j);
  for (unsigned j = t_; j <= n_ - 1; ++j) {
    tail += comb * std::pow(raw_p, static_cast<double>(j)) *
            std::pow(q, nm1 - static_cast<double>(j));
    comb = comb * (nm1 - static_cast<double>(j)) /
           static_cast<double>(j + 1);
  }
  return raw_p * std::min(1.0, tail);
}

}  // namespace photecc::ecc
