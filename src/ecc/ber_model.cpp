#include "photecc/ecc/ber_model.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "photecc/math/roots.hpp"
#include "photecc/math/special.hpp"
#include "photecc/math/units.hpp"

namespace photecc::ecc {

double achieved_ber(const BlockCode& code, double snr) {
  return code.decoded_ber(math::raw_ber_from_snr(snr));
}

double required_snr(const BlockCode& code, double target_ber) {
  const double p = code.required_raw_ber(target_ber);
  return math::snr_from_raw_ber(p);
}

double required_snr_uncoded(double target_ber) {
  return math::snr_from_raw_ber(target_ber);
}

double coding_gain_db(const BlockCode& code, double target_ber) {
  const double coded = required_snr(code, target_ber);
  const double uncoded = required_snr_uncoded(target_ber);
  return math::to_db(uncoded / coded);
}

double achieved_ber(const BlockCode& code, double snr,
                    math::Modulation modulation) {
  return code.decoded_ber(math::ber_from_snr(modulation, snr));
}

double required_snr(const BlockCode& code, double target_ber,
                    math::Modulation modulation) {
  return math::snr_from_ber_clamped(modulation,
                                    code.required_raw_ber(target_ber));
}

double coding_gain_db(const BlockCode& code, double target_ber,
                      math::Modulation modulation) {
  const double coded = required_snr(code, target_ber, modulation);
  const double uncoded =
      math::snr_from_ber(modulation, target_ber);
  return math::to_db(uncoded / coded);
}

// Default numeric inversion for every BlockCode: decoded_ber is strictly
// increasing in p on (0, 0.5] for all codes in this library, so a
// log-space Brent solve is robust.
RawBerRequirement BlockCode::required_raw_ber_checked(
    double target_ber, RawBerSolveTrace* trace) const {
  if (trace) *trace = {};
  if (target_ber <= 0.0 || target_ber >= 0.5)
    throw std::domain_error("required_raw_ber: target outside (0, 0.5)");
  if (decoded_ber(0.5) < target_ber)
    // The code cannot be this bad below p = 0.5; caller asked for a BER
    // the model cannot represent (never happens for targets < ~0.25).
    return {0.5, false};
  // Solve decoded_ber(10^x) = target_ber for x in
  // [kMinSearchLog10RawBer, log10(0.5)].
  const auto f = [&](double x) {
    return std::log10(decoded_ber(std::pow(10.0, x))) -
           std::log10(target_ber);
  };
  const double lo = kMinSearchLog10RawBer;
  const double hi = std::log10(0.5);
  if (f(lo) > 0.0) {
    // Target is below what p = kMinSearchRawBer produces — numerically
    // zero channel errors; saturate (explicitly) at the bracket edge.
    return {kMinSearchRawBer, true};
  }
  math::RootOptions opts;
  opts.x_tolerance = 1e-13;
  const auto result = math::brent(f, lo, hi, opts);
  if (!result || !result->converged)
    throw std::runtime_error("required_raw_ber: inversion failed for " +
                             name());
  if (trace) trace->iterations = result->iterations;
  // Roots below p ~ 1e-15 sit where 1-vs-(1-p)^(n-1) style decoded-BER
  // models have cancelled to rounding noise (the bracket was "crossed"
  // by noise, not by the model): the target is below the representable
  // range, so saturate explicitly instead of returning a noise root.
  constexpr double kNoiseFloorLog10 = -15.0;
  if (result->root <= kNoiseFloorLog10) return {kMinSearchRawBer, true};
  return {std::pow(10.0, result->root), false};
}

RawBerRequirement BlockCode::required_raw_ber_warm(
    double target_ber, const RawBerHint* hint,
    RawBerSolveTrace* trace) const {
  if (hint && hint->target_ber == target_ber) {
    if (trace) *trace = {0, true};
    return hint->requirement;
  }
  return required_raw_ber_checked(target_ber, trace);
}

// Same guards and saturation rules as required_raw_ber_checked, with
// the Brent solve routed through math::brent_warm around the seed.
RawBerRequirement BlockCode::required_raw_ber_seeded(
    double target_ber, double guess_raw_ber, RawBerSolveTrace* trace) const {
  if (trace) *trace = {};
  if (target_ber <= 0.0 || target_ber >= 0.5)
    throw std::domain_error("required_raw_ber: target outside (0, 0.5)");
  if (decoded_ber(0.5) < target_ber) return {0.5, false};
  const auto f = [&](double x) {
    return std::log10(decoded_ber(std::pow(10.0, x))) -
           std::log10(target_ber);
  };
  const double lo = kMinSearchLog10RawBer;
  const double hi = std::log10(0.5);
  if (f(lo) > 0.0) return {kMinSearchRawBer, true};
  math::RootOptions opts;
  opts.x_tolerance = 1e-13;
  math::WarmStart warm;
  warm.guess = (guess_raw_ber > 0.0 && std::isfinite(guess_raw_ber))
                   ? std::log10(guess_raw_ber)
                   : std::numeric_limits<double>::quiet_NaN();
  warm.window = 0.5;  // half a decade either side of the seed
  const auto result = math::brent_warm(f, lo, hi, warm, opts);
  if (!result || !result->converged)
    throw std::runtime_error("required_raw_ber: inversion failed for " +
                             name());
  if (trace) {
    trace->iterations = result->iterations;
    trace->warm = result->warm;
  }
  constexpr double kNoiseFloorLog10 = -15.0;
  if (result->root <= kNoiseFloorLog10) return {kMinSearchRawBer, true};
  return {std::pow(10.0, result->root), false};
}

}  // namespace photecc::ecc
