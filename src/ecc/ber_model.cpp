#include "photecc/ecc/ber_model.hpp"

#include <cmath>
#include <stdexcept>

#include "photecc/math/roots.hpp"
#include "photecc/math/special.hpp"
#include "photecc/math/units.hpp"

namespace photecc::ecc {

double achieved_ber(const BlockCode& code, double snr) {
  return code.decoded_ber(math::raw_ber_from_snr(snr));
}

double required_snr(const BlockCode& code, double target_ber) {
  const double p = code.required_raw_ber(target_ber);
  return math::snr_from_raw_ber(p);
}

double required_snr_uncoded(double target_ber) {
  return math::snr_from_raw_ber(target_ber);
}

double coding_gain_db(const BlockCode& code, double target_ber) {
  const double coded = required_snr(code, target_ber);
  const double uncoded = required_snr_uncoded(target_ber);
  return math::to_db(uncoded / coded);
}

// Default numeric inversion for every BlockCode: decoded_ber is strictly
// increasing in p on (0, 0.5] for all codes in this library, so a
// log-space Brent solve is robust.
double BlockCode::required_raw_ber(double target_ber) const {
  if (target_ber <= 0.0 || target_ber >= 0.5)
    throw std::domain_error("required_raw_ber: target outside (0, 0.5)");
  if (decoded_ber(0.5) < target_ber)
    // The code cannot be this bad below p = 0.5; caller asked for a BER
    // the model cannot represent (never happens for targets < ~0.25).
    return 0.5;
  // Solve decoded_ber(10^x) = target_ber for x in [-18, log10(0.5)].
  const auto f = [&](double x) {
    return std::log10(decoded_ber(std::pow(10.0, x))) -
           std::log10(target_ber);
  };
  const double lo = -18.0;
  const double hi = std::log10(0.5);
  if (f(lo) > 0.0) {
    // Target is below what p = 1e-18 produces — numerically zero
    // channel errors; report the bracket edge.
    return std::pow(10.0, lo);
  }
  math::RootOptions opts;
  opts.x_tolerance = 1e-13;
  const auto result = math::brent(f, lo, hi, opts);
  if (!result || !result->converged)
    throw std::runtime_error("required_raw_ber: inversion failed for " +
                             name());
  return std::pow(10.0, result->root);
}

}  // namespace photecc::ecc
