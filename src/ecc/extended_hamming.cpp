#include "photecc/ecc/extended_hamming.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace photecc::ecc {
namespace {

// Data bits of an inner Hamming word, taken as received (no correction).
BitVec extract_raw_data(const BitVec& inner, std::size_t k) {
  BitVec data(k);
  std::size_t idx = 0;
  for (std::size_t pos = 1; idx < k; ++pos) {
    const bool is_parity = (pos & (pos - 1)) == 0;
    if (!is_parity) data.set(idx++, inner.get(pos - 1));
  }
  return data;
}

}  // namespace

ExtendedHammingCode::ExtendedHammingCode(std::size_t m) : base_(m) {
  n_ = base_.block_length() + 1;
  k_ = base_.message_length();
}

std::string ExtendedHammingCode::name() const {
  return "eH(" + std::to_string(n_) + "," + std::to_string(k_) + ")";
}

BitVec ExtendedHammingCode::encode(const BitVec& message) const {
  if (message.size() != k_)
    throw std::invalid_argument(name() + "::encode: message size mismatch");
  const BitVec inner = base_.encode(message);
  const bool overall = (inner.popcount() % 2) != 0;
  BitVec out = inner.concat(BitVec(1));
  out.set(n_ - 1, overall);  // even overall parity across the codeword
  return out;
}

DecodeResult ExtendedHammingCode::decode(const BitVec& received) const {
  if (received.size() != n_)
    throw std::invalid_argument(name() + "::decode: block size mismatch");
  const BitVec inner = received.slice(0, n_ - 1);
  const bool parity_ok = (received.popcount() % 2) == 0;
  DecodeResult inner_result = base_.decode(inner);

  DecodeResult result;
  if (!inner_result.error_detected && parity_ok) {
    result.message = inner_result.message;
    return result;  // clean word
  }
  result.error_detected = true;
  if (!parity_ok) {
    // Odd overall parity => single error somewhere (inner position or
    // the overall parity bit itself); the inner decoder's correction is
    // trustworthy.
    result.message = inner_result.message;
    result.corrected = true;
    result.corrected_position = inner_result.corrected_position;
    return result;
  }
  // Non-zero inner syndrome with even overall parity => double error.
  // Detected but not correctable: suppress the inner miscorrection and
  // hand back the raw data bits.
  result.message = extract_raw_data(inner, k_);
  result.corrected = false;
  return result;
}

codec::BitSlab ExtendedHammingCode::encode_batch(
    const codec::BitSlab& messages) const {
  if (messages.bits() != k_)
    throw std::invalid_argument(name() +
                                "::encode_batch: message size mismatch");
  const codec::BitSlab inner = base_.encode_batch(messages);
  codec::BitSlab out(n_, messages.lanes());
  std::uint64_t overall = 0;
  for (std::size_t i = 0; i + 1 < n_; ++i) {
    out.word(i) = inner.word(i);
    overall ^= inner.word(i);
  }
  out.word(n_ - 1) = overall;  // even overall parity across the codeword
  return out;
}

BatchDecodeResult ExtendedHammingCode::decode_batch(
    const codec::BitSlab& received) const {
  if (received.bits() != n_)
    throw std::invalid_argument(name() + "::decode_batch: block size mismatch");
  const std::size_t inner_n = n_ - 1;
  const std::size_t m = base_.parity_bits();
  // Overall-parity plane (bit l set <=> lane l has odd overall parity)
  // and the inner syndrome bit-planes, all word-parallel.
  std::uint64_t odd_parity = received.word(n_ - 1);
  std::uint64_t syn[16] = {};
  for (std::size_t pos = 1; pos <= inner_n; ++pos) {
    const std::uint64_t w = received.word(pos - 1);
    odd_parity ^= w;
    for (std::size_t j = 0; j < m; ++j)
      if (pos & (std::size_t{1} << j)) syn[j] ^= w;
  }
  std::uint64_t any_syn = 0;
  for (std::size_t j = 0; j < m; ++j) any_syn |= syn[j];

  // SECDED case split as lane masks.  Odd overall parity => single
  // error, the inner correction is trustworthy (a zero inner syndrome
  // means the flip hit the parity bit itself — nothing to repair).
  // Even parity with a non-zero inner syndrome => double error: detect,
  // suppress the inner miscorrection, hand back the raw data words.
  codec::BitSlab corrected = received;
  for (std::uint64_t fix = odd_parity & any_syn; fix != 0; fix &= fix - 1) {
    const unsigned l = static_cast<unsigned>(std::countr_zero(fix));
    std::size_t s = 0;
    for (std::size_t j = 0; j < m; ++j)
      s |= static_cast<std::size_t>((syn[j] >> l) & 1u) << j;
    corrected.word(s - 1) ^= std::uint64_t{1} << l;
  }

  BatchDecodeResult result;
  result.messages = codec::BitSlab(k_, received.lanes());
  for (std::size_t i = 0; i < k_; ++i)
    result.messages.word(i) = corrected.word(base_.data_position(i) - 1);
  result.error_detected = odd_parity | any_syn;
  result.corrected = odd_parity;
  return result;
}

double ExtendedHammingCode::decoded_ber(double raw_p) const {
  if (raw_p < 0.0 || raw_p > 1.0)
    throw std::domain_error("decoded_ber: raw p outside [0, 1]");
  if (raw_p == 0.0) return 0.0;
  return raw_p -
         raw_p * std::pow(1.0 - raw_p, static_cast<double>(n_ - 1));
}

}  // namespace photecc::ecc
