#include "photecc/ecc/extended_hamming.hpp"

#include <cmath>
#include <stdexcept>

namespace photecc::ecc {
namespace {

// Data bits of an inner Hamming word, taken as received (no correction).
BitVec extract_raw_data(const BitVec& inner, std::size_t k) {
  BitVec data(k);
  std::size_t idx = 0;
  for (std::size_t pos = 1; idx < k; ++pos) {
    const bool is_parity = (pos & (pos - 1)) == 0;
    if (!is_parity) data.set(idx++, inner.get(pos - 1));
  }
  return data;
}

}  // namespace

ExtendedHammingCode::ExtendedHammingCode(std::size_t m) : base_(m) {
  n_ = base_.block_length() + 1;
  k_ = base_.message_length();
}

std::string ExtendedHammingCode::name() const {
  return "eH(" + std::to_string(n_) + "," + std::to_string(k_) + ")";
}

BitVec ExtendedHammingCode::encode(const BitVec& message) const {
  if (message.size() != k_)
    throw std::invalid_argument(name() + "::encode: message size mismatch");
  const BitVec inner = base_.encode(message);
  const bool overall = (inner.popcount() % 2) != 0;
  BitVec out = inner.concat(BitVec(1));
  out.set(n_ - 1, overall);  // even overall parity across the codeword
  return out;
}

DecodeResult ExtendedHammingCode::decode(const BitVec& received) const {
  if (received.size() != n_)
    throw std::invalid_argument(name() + "::decode: block size mismatch");
  const BitVec inner = received.slice(0, n_ - 1);
  const bool parity_ok = (received.popcount() % 2) == 0;
  DecodeResult inner_result = base_.decode(inner);

  DecodeResult result;
  if (!inner_result.error_detected && parity_ok) {
    result.message = inner_result.message;
    return result;  // clean word
  }
  result.error_detected = true;
  if (!parity_ok) {
    // Odd overall parity => single error somewhere (inner position or
    // the overall parity bit itself); the inner decoder's correction is
    // trustworthy.
    result.message = inner_result.message;
    result.corrected = true;
    result.corrected_position = inner_result.corrected_position;
    return result;
  }
  // Non-zero inner syndrome with even overall parity => double error.
  // Detected but not correctable: suppress the inner miscorrection and
  // hand back the raw data bits.
  result.message = extract_raw_data(inner, k_);
  result.corrected = false;
  return result;
}

double ExtendedHammingCode::decoded_ber(double raw_p) const {
  if (raw_p < 0.0 || raw_p > 1.0)
    throw std::domain_error("decoded_ber: raw p outside [0, 1]");
  if (raw_p == 0.0) return 0.0;
  return raw_p -
         raw_p * std::pow(1.0 - raw_p, static_cast<double>(n_ - 1));
}

}  // namespace photecc::ecc
