#include "photecc/ecc/uncoded.hpp"

#include <stdexcept>

namespace photecc::ecc {

UncodedScheme::UncodedScheme(std::size_t width) : width_(width) {
  if (width == 0)
    throw std::invalid_argument("UncodedScheme: zero width");
}

BitVec UncodedScheme::encode(const BitVec& message) const {
  if (message.size() != width_)
    throw std::invalid_argument("UncodedScheme::encode: size mismatch");
  return message;
}

DecodeResult UncodedScheme::decode(const BitVec& received) const {
  if (received.size() != width_)
    throw std::invalid_argument("UncodedScheme::decode: size mismatch");
  DecodeResult result;
  result.message = received;
  return result;  // no redundancy: nothing to detect or correct
}

codec::BitSlab UncodedScheme::encode_batch(
    const codec::BitSlab& messages) const {
  if (messages.bits() != width_)
    throw std::invalid_argument("UncodedScheme::encode_batch: size mismatch");
  return messages;
}

BatchDecodeResult UncodedScheme::decode_batch(
    const codec::BitSlab& received) const {
  if (received.bits() != width_)
    throw std::invalid_argument("UncodedScheme::decode_batch: size mismatch");
  BatchDecodeResult result;
  result.messages = received;
  return result;  // no redundancy: nothing to detect or correct
}

double UncodedScheme::decoded_ber(double raw_p) const {
  if (raw_p < 0.0 || raw_p > 1.0)
    throw std::domain_error("decoded_ber: raw p outside [0, 1]");
  return raw_p;
}

RawBerRequirement UncodedScheme::required_raw_ber_checked(
    double target_ber, RawBerSolveTrace* trace) const {
  if (trace) *trace = {};  // closed form: zero iterations
  if (target_ber <= 0.0 || target_ber > 0.5)
    throw std::domain_error("required_raw_ber: target outside (0, 0.5]");
  return {target_ber, false};
}

}  // namespace photecc::ecc
