#include "photecc/ecc/crc.hpp"

#include <stdexcept>

namespace photecc::ecc {

Crc::Crc(unsigned width, std::uint32_t polynomial, std::string name)
    : width_(width), polynomial_(polynomial), name_(std::move(name)) {
  if (width < 1 || width > 32)
    throw std::invalid_argument("Crc: width outside [1, 32]");
  top_bit_ = width == 32 ? 0x80000000u : (1u << (width - 1));
  mask_ = width == 32 ? 0xFFFFFFFFu : ((1u << width) - 1);
}

std::uint32_t Crc::compute(const BitVec& data) const {
  // Bit-serial long division: shift data (plus `width` augmenting
  // zeros) through the register.
  std::uint32_t reg = 0;
  const auto step = [&](bool bit) {
    const bool msb = (reg & top_bit_) != 0;
    reg = (reg << 1) & mask_;
    if (bit) reg |= 1u;
    if (msb) reg ^= polynomial_ & mask_;
  };
  for (std::size_t i = 0; i < data.size(); ++i) step(data.get(i));
  for (unsigned i = 0; i < width_; ++i) step(false);
  return reg;
}

BitVec Crc::append(const BitVec& data) const {
  const std::uint32_t crc = compute(data);
  BitVec framed(data.size() + width_);
  for (std::size_t i = 0; i < data.size(); ++i)
    framed.set(i, data.get(i));
  // Most significant CRC bit first, matching the division order.
  for (unsigned i = 0; i < width_; ++i) {
    const bool bit = (crc >> (width_ - 1 - i)) & 1u;
    framed.set(data.size() + i, bit);
  }
  return framed;
}

bool Crc::check(const BitVec& framed) const {
  if (framed.size() < width_)
    throw std::invalid_argument("Crc::check: frame shorter than the CRC");
  const BitVec data = framed.slice(0, framed.size() - width_);
  std::uint32_t expected = 0;
  for (unsigned i = 0; i < width_; ++i) {
    expected <<= 1;
    if (framed.get(framed.size() - width_ + i)) expected |= 1u;
  }
  return compute(data) == expected;
}

}  // namespace photecc::ecc
