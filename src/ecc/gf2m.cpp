#include "photecc/ecc/gf2m.hpp"

#include <stdexcept>

namespace photecc::ecc {
namespace {

// Standard primitive polynomials over GF(2), bit i = coeff of x^i.
// Index by m; 0 entries are unsupported.
constexpr unsigned kPrimitivePoly[] = {
    0, 0,
    0x7,     // m=2:  x^2 + x + 1
    0xB,     // m=3:  x^3 + x + 1
    0x13,    // m=4:  x^4 + x + 1
    0x25,    // m=5:  x^5 + x^2 + 1
    0x43,    // m=6:  x^6 + x + 1
    0x89,    // m=7:  x^7 + x^3 + 1
    0x11D,   // m=8:  x^8 + x^4 + x^3 + x^2 + 1
    0x211,   // m=9:  x^9 + x^4 + 1
    0x409,   // m=10: x^10 + x^3 + 1
    0x805,   // m=11: x^11 + x^2 + 1
    0x1053,  // m=12: x^12 + x^6 + x^4 + x + 1
    0x201B,  // m=13: x^13 + x^4 + x^3 + x + 1
    0x402B,  // m=14: x^14 + x^5 + x^3 + x + 1
};

}  // namespace

GF2m::GF2m(unsigned m) : m_(m) {
  if (m < 2 || m > 14)
    throw std::invalid_argument("GF2m: m must be in [2, 14]");
  q_ = 1u << m;
  poly_ = kPrimitivePoly[m];
  exp_.resize(2 * (q_ - 1));
  log_.assign(q_, 0);
  unsigned x = 1;
  for (unsigned i = 0; i < q_ - 1; ++i) {
    exp_[i] = x;
    log_[x] = i;
    x <<= 1;
    if (x & q_) x ^= poly_;
  }
  // Doubled table avoids a modulo in mul().
  for (unsigned i = 0; i < q_ - 1; ++i) exp_[q_ - 1 + i] = exp_[i];
}

unsigned GF2m::alpha_pow(int power) const noexcept {
  const int n = static_cast<int>(q_ - 1);
  int reduced = power % n;
  if (reduced < 0) reduced += n;
  return exp_[static_cast<unsigned>(reduced)];
}

unsigned GF2m::log(unsigned x) const {
  if (x == 0 || x >= q_)
    throw std::domain_error("GF2m::log: argument outside (0, q)");
  return log_[x];
}

unsigned GF2m::mul(unsigned a, unsigned b) const noexcept {
  if (a == 0 || b == 0) return 0;
  return exp_[log_[a] + log_[b]];
}

unsigned GF2m::inv(unsigned x) const {
  if (x == 0) throw std::domain_error("GF2m::inv: zero has no inverse");
  return exp_[(q_ - 1) - log_[x]];
}

unsigned GF2m::div(unsigned a, unsigned b) const {
  if (b == 0) throw std::domain_error("GF2m::div: division by zero");
  if (a == 0) return 0;
  return exp_[log_[a] + (q_ - 1) - log_[b]];
}

unsigned GF2m::pow(unsigned x, int e) const {
  if (x == 0) {
    if (e < 0) throw std::domain_error("GF2m::pow: 0 to negative power");
    return e == 0 ? 1u : 0u;
  }
  const int n = static_cast<int>(q_ - 1);
  long long idx = static_cast<long long>(log_[x]) * e % n;
  if (idx < 0) idx += n;
  return exp_[static_cast<unsigned>(idx)];
}

unsigned GF2m::eval_poly(const std::vector<unsigned>& coeffs,
                         unsigned x) const noexcept {
  unsigned acc = 0;
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    acc = add(mul(acc, x), coeffs[i]);
  }
  return acc;
}

std::uint64_t GF2m::minimal_polynomial(unsigned i) const {
  // The minimal polynomial of beta = alpha^i is prod over the cyclotomic
  // coset {i, 2i, 4i, ...} of (x - alpha^j).  Build it with polynomial
  // arithmetic over GF(2^m); the result has GF(2) coefficients.
  const unsigned n = q_ - 1;
  std::vector<unsigned> coset;
  unsigned j = i % n;
  do {
    coset.push_back(j);
    j = (2 * j) % n;
  } while (j != i % n);

  // poly starts as 1; multiply by (x + alpha^j) per coset member.
  std::vector<unsigned> poly{1};
  for (const unsigned e : coset) {
    const unsigned beta = alpha_pow(static_cast<int>(e));
    std::vector<unsigned> next(poly.size() + 1, 0);
    for (std::size_t d = 0; d < poly.size(); ++d) {
      next[d + 1] = add(next[d + 1], poly[d]);      // x * poly
      next[d] = add(next[d], mul(beta, poly[d]));   // beta * poly
    }
    poly = std::move(next);
  }
  std::uint64_t mask = 0;
  for (std::size_t d = 0; d < poly.size(); ++d) {
    if (poly[d] > 1)
      throw std::logic_error(
          "GF2m::minimal_polynomial: non-binary coefficient");
    if (poly[d]) mask |= std::uint64_t{1} << d;
  }
  return mask;
}

}  // namespace photecc::ecc
