#include "photecc/ecc/registry.hpp"

#include <mutex>
#include <stdexcept>
#include <utility>

#include "photecc/ecc/bch.hpp"
#include "photecc/ecc/extended_hamming.hpp"
#include "photecc/ecc/hamming.hpp"
#include "photecc/ecc/repetition.hpp"
#include "photecc/ecc/uncoded.hpp"

namespace photecc::ecc {
namespace {

struct FactoryRegistry {
  std::mutex mutex;
  std::vector<std::pair<std::string, CodeFactory>> factories;
};

FactoryRegistry& factory_registry() {
  static FactoryRegistry registry;
  return registry;
}

BlockCodePtr make_from_factories(const std::string& name) {
  auto& registry = factory_registry();
  // Snapshot under the lock, invoke outside it: a factory may call
  // make_code recursively (e.g. a cooling wrap resolving its inner
  // code), which must not re-enter the held mutex.
  std::vector<std::pair<std::string, CodeFactory>> factories;
  {
    const std::lock_guard<std::mutex> lock(registry.mutex);
    factories = registry.factories;
  }
  for (const auto& [key, factory] : factories) {
    if (auto code = factory(name)) return code;
  }
  return nullptr;
}

}  // namespace

void register_code_factory(const std::string& key, CodeFactory factory) {
  auto& registry = factory_registry();
  const std::lock_guard<std::mutex> lock(registry.mutex);
  for (const auto& [existing, _] : registry.factories) {
    if (existing == key) return;
  }
  registry.factories.emplace_back(key, std::move(factory));
}

BlockCodePtr make_code(const std::string& name) {
  if (name == "uncoded" || name == "w/o ECC")
    return std::make_shared<UncodedScheme>(64);
  if (name == "H(7,4)") return std::make_shared<HammingCode>(3);
  if (name == "H(15,11)") return std::make_shared<HammingCode>(4);
  if (name == "H(31,26)") return std::make_shared<HammingCode>(5);
  if (name == "H(63,57)") return std::make_shared<HammingCode>(6);
  if (name == "H(127,120)") return std::make_shared<HammingCode>(7);
  if (name == "H(71,64)")
    return std::make_shared<ShortenedHammingCode>(7, 56);
  if (name == "H(12,8)")
    return std::make_shared<ShortenedHammingCode>(4, 3);
  if (name == "H(38,32)")
    return std::make_shared<ShortenedHammingCode>(6, 25);
  if (name == "eH(8,4)") return std::make_shared<ExtendedHammingCode>(3);
  if (name == "eH(16,11)") return std::make_shared<ExtendedHammingCode>(4);
  if (name == "eH(64,57)") return std::make_shared<ExtendedHammingCode>(6);
  if (name == "REP(3,1)") return std::make_shared<RepetitionCode>(3);
  if (name == "REP(5,1)") return std::make_shared<RepetitionCode>(5);
  if (name == "REP(7,1)") return std::make_shared<RepetitionCode>(7);
  if (name == "BCH(15,7,2)") return std::make_shared<BchCode>(4, 2);
  if (name == "BCH(15,5,3)") return std::make_shared<BchCode>(4, 3);
  if (name == "BCH(31,21,2)") return std::make_shared<BchCode>(5, 2);
  if (name == "BCH(63,51,2)") return std::make_shared<BchCode>(6, 2);
  if (name == "BCH(127,113,2)") return std::make_shared<BchCode>(7, 2);
  if (auto code = make_from_factories(name)) return code;
  throw std::invalid_argument("make_code: unknown code '" + name + "'");
}

std::vector<BlockCodePtr> paper_schemes() {
  return {make_code("w/o ECC"), make_code("H(71,64)"), make_code("H(7,4)")};
}

std::vector<BlockCodePtr> hamming_family() {
  return {make_code("H(7,4)"),   make_code("H(15,11)"),
          make_code("H(31,26)"), make_code("H(63,57)"),
          make_code("H(71,64)"), make_code("H(127,120)")};
}

std::vector<BlockCodePtr> all_known_codes() {
  return {make_code("w/o ECC"),   make_code("H(7,4)"),
          make_code("H(15,11)"),  make_code("H(31,26)"),
          make_code("H(63,57)"),  make_code("H(127,120)"),
          make_code("H(71,64)"),  make_code("H(12,8)"),
          make_code("H(38,32)"),  make_code("eH(8,4)"),
          make_code("eH(16,11)"), make_code("eH(64,57)"),
          make_code("REP(3,1)"),  make_code("REP(5,1)"),
          make_code("REP(7,1)"),  make_code("BCH(15,7,2)"),
          make_code("BCH(15,5,3)"), make_code("BCH(31,21,2)"),
          make_code("BCH(63,51,2)"), make_code("BCH(127,113,2)")};
}

}  // namespace photecc::ecc
