// Word-parallel Monte-Carlo building blocks for the batch codec
// datapath: iid error injection straight into slab words, word-wide
// error counting, and the coded-trial engine the channel-level
// measurements and the Monte-Carlo cross-check tests run on.
//
// Determinism contract: everything here is a pure function of its seed
// (or the passed-in RNG state), so measurements are reproducible across
// runs and platforms.  inject_errors consumes one RNG draw per flipped
// bit (geometric gap sampling), NOT one per channel cell — that is what
// makes the batch path fast at low error rates while sampling the exact
// iid Bernoulli(p) flip distribution.
#ifndef PHOTECC_CODEC_BATCH_MC_HPP
#define PHOTECC_CODEC_BATCH_MC_HPP

#include <cstddef>
#include <cstdint>

#include "photecc/codec/bitslab.hpp"
#include "photecc/ecc/block_code.hpp"
#include "photecc/math/rng.hpp"

namespace photecc::codec {

/// Flips each bit of the active lanes independently with probability p
/// (iid BSC noise), sampled by geometric gap skipping: one uniform draw
/// per flipped bit.  Cells are ordered position-major (position 0 lane
/// 0, position 0 lane 1, ...); inactive lanes are not part of the cell
/// space, so the lane-mask invariant is preserved.  p <= 0 is a no-op;
/// p >= 1 flips every in-mask bit.
void inject_errors(BitSlab& slab, double p, math::Xoshiro256& rng);

/// Total number of differing bits between two slabs of identical shape
/// (XOR + popcount per word).  Throws std::invalid_argument on a shape
/// mismatch.
[[nodiscard]] std::uint64_t count_errors(const BitSlab& a, const BitSlab& b);

/// Fills a message slab with uniform random bits (one rng() draw per
/// bit position, masked to the active lanes).
[[nodiscard]] BitSlab random_message_slab(std::size_t bits, std::size_t lanes,
                                          math::Xoshiro256& rng);

/// Outcome of a batch of coded Monte-Carlo trials.
struct BatchTrialResult {
  std::uint64_t bit_errors = 0;  ///< message bits decoded wrong
  std::uint64_t bits = 0;        ///< message bits transmitted
  std::uint64_t detected_blocks = 0;
  std::uint64_t corrected_blocks = 0;
};

/// Runs `words` encode -> BSC(raw_p) -> decode trials through the batch
/// kernels, 64 codewords per slab pass, and counts residual message-bit
/// errors word-parallel.  Deterministic in `seed`.
[[nodiscard]] BatchTrialResult run_coded_trials(const ecc::BlockCode& code,
                                                double raw_p,
                                                std::uint64_t words,
                                                std::uint64_t seed);

}  // namespace photecc::codec

#endif  // PHOTECC_CODEC_BATCH_MC_HPP
