// Public entry point of the batch codec datapath: re-exports
// codec::BitSlab, which physically lives in the ecc include tree so the
// code classes can implement batch kernels against it without a
// dependency cycle (see photecc/ecc/bitslab.hpp for the layout and the
// lane-mask invariant).
#ifndef PHOTECC_CODEC_BITSLAB_HPP
#define PHOTECC_CODEC_BITSLAB_HPP

#include "photecc/ecc/bitslab.hpp"

#endif  // PHOTECC_CODEC_BITSLAB_HPP
