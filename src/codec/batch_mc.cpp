#include "photecc/codec/batch_mc.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace photecc::codec {

void inject_errors(BitSlab& slab, double p, math::Xoshiro256& rng) {
  if (!(p > 0.0)) return;
  const std::size_t lanes = slab.lanes();
  const std::uint64_t total =
      static_cast<std::uint64_t>(slab.bits()) * lanes;
  if (p >= 1.0) {
    const std::uint64_t mask = slab.lane_mask();
    for (std::uint64_t& w : slab.words()) w ^= mask;
    return;
  }
  // Geometric gap sampling: the index of the next flipped cell is the
  // current index plus floor(log(u) / log(1-p)) with u uniform in
  // (0, 1] — the exact distribution of the number of untouched cells
  // before the next Bernoulli(p) success.
  const double inv_log_q = 1.0 / std::log1p(-p);
  std::uint64_t cell = 0;
  while (cell < total) {
    const double u = 1.0 - rng.uniform01();  // (0, 1]
    const double gap = std::floor(std::log(u) * inv_log_q);
    if (gap >= static_cast<double>(total - cell)) break;
    cell += static_cast<std::uint64_t>(gap);
    slab.word(static_cast<std::size_t>(cell / lanes)) ^=
        std::uint64_t{1} << (cell % lanes);
    ++cell;
  }
}

std::uint64_t count_errors(const BitSlab& a, const BitSlab& b) {
  if (a.bits() != b.bits() || a.lanes() != b.lanes())
    throw std::invalid_argument("codec::count_errors: shape mismatch");
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < a.bits(); ++i)
    total += static_cast<std::uint64_t>(std::popcount(a.word(i) ^ b.word(i)));
  return total;
}

BitSlab random_message_slab(std::size_t bits, std::size_t lanes,
                            math::Xoshiro256& rng) {
  BitSlab slab(bits, lanes);
  const std::uint64_t mask = slab.lane_mask();
  for (std::size_t i = 0; i < bits; ++i) slab.word(i) = rng() & mask;
  return slab;
}

BatchTrialResult run_coded_trials(const ecc::BlockCode& code, double raw_p,
                                  std::uint64_t words, std::uint64_t seed) {
  math::Xoshiro256 rng(seed);
  const std::size_t k = code.message_length();
  BatchTrialResult result;
  for (std::uint64_t done = 0; done < words;) {
    const std::size_t lanes = static_cast<std::size_t>(
        words - done < BitSlab::kLanes ? words - done : BitSlab::kLanes);
    const BitSlab messages = random_message_slab(k, lanes, rng);
    BitSlab sent = code.encode_batch(messages);
    inject_errors(sent, raw_p, rng);
    const ecc::BatchDecodeResult decoded = code.decode_batch(sent);
    result.bit_errors += count_errors(messages, decoded.messages);
    result.bits += static_cast<std::uint64_t>(k) * lanes;
    result.detected_blocks +=
        static_cast<std::uint64_t>(std::popcount(decoded.error_detected));
    result.corrected_blocks +=
        static_cast<std::uint64_t>(std::popcount(decoded.corrected));
    done += lanes;
  }
  return result;
}

}  // namespace photecc::codec
