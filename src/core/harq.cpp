#include "photecc/core/harq.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "photecc/math/modulation.hpp"
#include "photecc/math/roots.hpp"
#include "photecc/math/special.hpp"

#include "photecc/photonics/microring.hpp"

namespace photecc::core {

HarqScheme::HarqScheme(const HarqParams& params) : params_(params) {
  if (params.m < 3 || params.m > 12)
    throw std::invalid_argument("HarqScheme: m outside [3, 12]");
  if (params.max_retransmission_rate <= 0.0 ||
      params.max_retransmission_rate >= 1.0)
    throw std::invalid_argument("HarqScheme: rtx cap outside (0, 1)");
  n_ = (std::size_t{1} << params.m);          // 2^m (extended)
  k_ = n_ - 1 - params.m;                      // data bits
}

std::string HarqScheme::name() const {
  return "HARQ-eH(" + std::to_string(n_) + "," + std::to_string(k_) + ")";
}

double HarqScheme::residual_ber(double raw_p) const {
  if (raw_p < 0.0 || raw_p > 1.0)
    throw std::domain_error("residual_ber: p outside [0, 1]");
  if (raw_p == 0.0) return 0.0;
  // Silent miscorrection: odd-weight >= 3 patterns alias onto a single
  // error (even overall parity flips).  Exact odd-weight tail
  // (1 - (1-2p)^n)/2 minus the weight-1 term; computed via expm1/log1p
  // so the small difference is not lost to 1.0-scale rounding;
  // ~4 wrong bits out of n after the bogus "correction".
  const double n = static_cast<double>(n_);
  if (raw_p > 0.5) {
    // Degenerate channel: the expm1/log1p forms below need 1-2p > 0.
    // Direct evaluation is exact here (no cancellation at this scale;
    // n is an even integer so the negative base is fine for pow).
    const double odd_total =
        0.5 * (1.0 - std::pow(1.0 - 2.0 * raw_p, n));
    const double weight1 = n * raw_p * std::pow(1.0 - raw_p, n - 1.0);
    return std::max(0.0, odd_total - weight1) * 4.0 / n;
  }
  // odd_total = (1 - (1-2p)^n) / 2, accurate for tiny p.
  const double odd_total =
      -0.5 * std::expm1(n * std::log1p(-2.0 * raw_p));
  const double weight1 =
      n * raw_p * std::exp((n - 1.0) * std::log1p(-raw_p));
  double odd_ge3 = odd_total - weight1;
  if (odd_ge3 <= odd_total * 1e-8) {
    // The two terms agree to ~8 digits: the subtraction has lost the
    // weight >= 3 tail to cancellation (for n p << 1 both are ~ n p
    // while the tail is ~ (n p)^3 / 6).  Use the leading weight-3 term
    // C(n,3) p^3 (1-p)^(n-3) directly; in this regime the weight-5
    // correction is below the switchover's own truncation error.
    odd_ge3 = n * (n - 1.0) * (n - 2.0) / 6.0 * raw_p * raw_p * raw_p *
              std::exp((n - 3.0) * std::log1p(-raw_p));
  }
  return odd_ge3 * 4.0 / n;
}

double HarqScheme::retransmission_rate(double raw_p) const {
  if (raw_p < 0.0 || raw_p > 1.0)
    throw std::domain_error("retransmission_rate: p outside [0, 1]");
  if (raw_p == 0.0) return 0.0;
  // Detected uncorrectable = even-weight >= 2 patterns (overall parity
  // consistent, inner syndrome non-zero).  Exact even-weight tail
  // (1 + (1-2p)^n)/2 - q^n, rearranged to (1 - q^n) - (1 - (1-2p)^n)/2
  // and computed via expm1/log1p to preserve the tiny difference.
  const double n = static_cast<double>(n_);
  if (raw_p > 0.5) {
    // The expm1/log1p forms need 1-2p > 0; evaluate directly on the
    // degenerate half of the domain (no cancellation at this scale,
    // and n is an even integer so the negative pow base is fine).
    const double one_minus_qn = 1.0 - std::pow(1.0 - raw_p, n);
    const double odd_total =
        0.5 * (1.0 - std::pow(1.0 - 2.0 * raw_p, n));
    return std::max(0.0, one_minus_qn - odd_total);
  }
  const double one_minus_qn = -std::expm1(n * std::log1p(-raw_p));
  const double odd_total =
      -0.5 * std::expm1(n * std::log1p(-2.0 * raw_p));
  return std::max(0.0, one_minus_qn - odd_total);
}

double HarqScheme::effective_ct(double raw_p) const {
  const double rtx = retransmission_rate(raw_p);
  if (rtx >= 1.0) return std::numeric_limits<double>::infinity();
  const double overhead =
      static_cast<double>(n_) / static_cast<double>(k_);
  return overhead / (1.0 - rtx);
}

std::optional<double> HarqScheme::required_raw_ber(
    double target_ber) const {
  if (target_ber <= 0.0 || target_ber >= 0.5)
    throw std::domain_error("required_raw_ber: target outside (0, 0.5)");
  // Cap from the retransmission budget (monotone; bisect).
  const auto rtx_cap = [&](double log10_p) {
    return retransmission_rate(std::pow(10.0, log10_p)) -
           params_.max_retransmission_rate;
  };
  double log10_p_cap = std::log10(0.4);
  if (rtx_cap(log10_p_cap) > 0.0) {
    const auto cap =
        math::bisect(rtx_cap, ecc::kMinSearchLog10RawBer, log10_p_cap);
    if (!cap || !cap->converged) return std::nullopt;
    log10_p_cap = cap->root;
  }
  const double p_cap = std::pow(10.0, log10_p_cap);
  if (residual_ber(p_cap) <= target_ber) return p_cap;
  // Explicit saturation at the shared bracket floor (matching
  // ecc::BlockCode::required_raw_ber_checked): targets below what
  // p = kMinSearchRawBer produces have no representable inverse, so
  // report the floor instead of bisecting outside the bracket.
  if (residual_ber(ecc::kMinSearchRawBer) >= target_ber)
    return ecc::kMinSearchRawBer;
  const auto f = [&](double log10_p) {
    return std::log10(residual_ber(std::pow(10.0, log10_p))) -
           std::log10(target_ber);
  };
  const auto result =
      math::bisect(f, ecc::kMinSearchLog10RawBer, log10_p_cap);
  if (!result || !result->converged) return std::nullopt;
  return std::pow(10.0, result->root);
}

HarqOperatingPoint HarqScheme::solve(const link::MwsrChannel& channel,
                                     double target_ber) const {
  HarqOperatingPoint point;
  point.target_ber = target_ber;
  const auto p = required_raw_ber(target_ber);
  if (!p) return point;
  point.raw_ber = *p;
  point.snr =
      math::snr_from_ber_clamped(channel.params().modulation, *p);
  point.retransmission_rate = retransmission_rate(*p);
  point.expected_transmissions = 1.0 / (1.0 - point.retransmission_rate);
  point.effective_ct = effective_ct(*p);
  point.residual_ber = residual_ber(*p);

  const std::size_t ch = channel.worst_channel();
  const double margin =
      channel.eye_transmission(ch) - channel.crosstalk_transmission(ch);
  if (margin <= 0.0) return point;
  const auto& det = channel.detector().params();
  point.op_laser_w =
      point.snr * det.dark_current_a / (det.responsivity_a_per_w * margin);
  const auto electrical = channel.laser().electrical_power(
      point.op_laser_w, channel.environment().activity);
  if (!electrical) return point;
  point.p_laser_w = *electrical;
  point.feasible = true;
  return point;
}

SchemeMetrics HarqScheme::evaluate(const link::MwsrChannel& channel,
                                   double target_ber,
                                   const SystemConfig& config) const {
  const HarqOperatingPoint harq = solve(channel, target_ber);
  SchemeMetrics m;
  m.scheme = name();
  m.modulation = channel.params().modulation;
  const double bits_per_symbol =
      static_cast<double>(math::bits_per_symbol(m.modulation));
  m.target_ber = target_ber;
  m.code_rate = static_cast<double>(k_) / static_cast<double>(n_);
  m.ct = harq.effective_ct / bits_per_symbol;
  m.feasible = harq.feasible;
  m.operating_point.target_ber = target_ber;
  m.operating_point.raw_ber = harq.raw_ber;
  m.operating_point.snr = harq.snr;
  m.operating_point.op_laser_w = harq.op_laser_w;
  m.operating_point.p_laser_w = harq.p_laser_w;
  m.operating_point.feasible = harq.feasible;
  m.p_mr_w = photonics::multilevel_modulation_power_w(
      channel.params().ring.modulation_power_w,
      math::levels(m.modulation));
  // A SECDED codec costs about what the paper's Hamming codecs cost;
  // charge the H(71,64) interface figures (closest block structure).
  m.p_enc_dec_w = config.interface_pair.enc_dec_power_per_wavelength_w(
      interface::InterfaceMode::kHamming7164, config.wavelengths);
  if (m.feasible) {
    m.p_laser_w = harq.p_laser_w;
    m.p_channel_w = m.p_laser_w + m.p_mr_w + m.p_enc_dec_w;
    m.energy_per_bit_j = m.p_channel_w * m.ct / config.f_mod_hz;
    m.p_waveguide_w =
        m.p_channel_w * static_cast<double>(config.wavelengths);
    m.p_interconnect_w =
        m.p_waveguide_w *
        static_cast<double>(config.waveguides_per_channel) *
        static_cast<double>(config.oni_count);
  }
  return m;
}

}  // namespace photecc::core
