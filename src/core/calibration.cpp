#include "photecc/core/calibration.hpp"

#include <cmath>
#include <stdexcept>

#include "photecc/channel_sim/monte_carlo.hpp"
#include "photecc/link/snr_solver.hpp"
#include "photecc/math/units.hpp"

namespace photecc::core {
namespace {

/// SNR seen at the detector for a given laser output on the channel's
/// worst wavelength.
double snr_at(const link::MwsrChannel& channel, double op_laser_w) {
  const std::size_t ch = channel.worst_channel();
  const double margin =
      channel.eye_transmission(ch) - channel.crosstalk_transmission(ch);
  const auto& det = channel.detector().params();
  return det.responsivity_a_per_w * op_laser_w * margin /
         det.dark_current_a;
}

}  // namespace

CalibrationResult calibrate_laser(const link::MwsrChannel& channel,
                                  const ecc::BlockCode& code,
                                  const CalibrationConfig& config) {
  if (config.target_ber <= 0.0 || config.target_ber >= 0.5)
    throw std::invalid_argument("calibrate_laser: bad target BER");
  if (config.step_db <= 0.0 || config.margin < 1.0)
    throw std::invalid_argument("calibrate_laser: bad step/margin");

  CalibrationResult result;
  const double activity = channel.environment().activity;
  const double op_max = channel.laser().max_optical_power(activity);

  // Start 3 dB below the analytic operating point: the loop must climb.
  const auto analytic =
      link::solve_operating_point(channel, code, config.target_ber);
  double op = (analytic.feasible ? analytic.op_laser_w : op_max) *
              math::from_db(-3.0);
  op = std::min(op, op_max);

  std::uint64_t seed = config.seed;
  const auto measure = [&](double op_laser) {
    CalibrationStep step;
    step.op_laser_w = op_laser;
    step.snr = snr_at(channel, op_laser);
    channel_sim::MonteCarloOptions options;
    options.seed = ++seed;
    const auto m = channel_sim::measure_coded_ber(
        code, step.snr, config.blocks_per_measurement, options);
    step.measured_ber = m.measured_ber;
    step.ci_upper = m.interval.upper;
    step.met_target = step.ci_upper <= config.target_ber * config.margin;
    result.history.push_back(step);
    return step;
  };

  // Phase 1: climb until the target holds (with margin).
  bool met = false;
  for (unsigned i = 0; i < config.max_iterations; ++i) {
    const CalibrationStep step = measure(op);
    if (step.ci_upper <= config.target_ber) {
      met = true;
      break;
    }
    const double next = op * math::from_db(config.step_db);
    if (next > op_max) {
      // Ceiling: best effort at the maximum.
      if (op >= op_max) break;
      op = op_max;
    } else {
      op = next;
    }
  }
  if (!met) {
    result.op_laser_w = op;
    const auto p = channel.laser().electrical_power(op, activity);
    result.p_laser_w = p.value_or(0.0);
    result.measured_ber = result.history.back().measured_ber;
    return result;  // not converged
  }

  // Phase 2: back off while the target still holds with the margin.
  for (unsigned i = 0; i < config.max_iterations; ++i) {
    const double candidate = op * math::from_db(-config.step_db);
    const CalibrationStep step = measure(candidate);
    if (step.ci_upper * config.margin <= config.target_ber) {
      op = candidate;
    } else {
      break;
    }
  }

  result.converged = true;
  result.op_laser_w = op;
  const auto p = channel.laser().electrical_power(op, activity);
  result.p_laser_w = p.value_or(0.0);
  result.measured_ber = result.history.back().measured_ber;
  return result;
}

}  // namespace photecc::core
