#include "photecc/core/tradeoff.hpp"

#include <algorithm>

#include "photecc/math/parallel.hpp"

namespace photecc::core {

bool is_dominated(const SchemeMetrics& a, const SchemeMetrics& b) {
  if (!b.feasible) return false;
  if (!a.feasible) return true;
  const bool no_worse =
      b.p_channel_w <= a.p_channel_w && b.ct <= a.ct;
  const bool strictly_better =
      b.p_channel_w < a.p_channel_w || b.ct < a.ct;
  return no_worse && strictly_better;
}

std::vector<std::size_t> pareto_front_indices(
    const std::vector<SchemeMetrics>& points) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!points[i].feasible) continue;
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (j != i && is_dominated(points[i], points[j])) dominated = true;
    }
    if (!dominated) front.push_back(i);
  }
  std::sort(front.begin(), front.end(),
            [&](std::size_t lhs, std::size_t rhs) {
              if (points[lhs].ct != points[rhs].ct)
                return points[lhs].ct < points[rhs].ct;
              return points[lhs].p_channel_w < points[rhs].p_channel_w;
            });
  return front;
}

std::vector<std::size_t> TradeoffSweep::pareto_front() const {
  return pareto_front_indices(points);
}

TradeoffSweep sweep_tradeoff(const link::MwsrChannel& channel,
                             const std::vector<ecc::BlockCodePtr>& codes,
                             const std::vector<double>& ber_targets,
                             const SystemConfig& config,
                             std::size_t threads) {
  TradeoffSweep sweep;
  if (codes.empty() || ber_targets.empty()) return sweep;
  // Lower once: the plan hoists the worst-channel scan and per-code
  // constants, so each cell only runs the (code, BER) inversion and the
  // closed-form tail — bit-identical to per-cell evaluate_scheme.
  const ChannelSweepPlan plan{channel, codes, config};
  // Slot-indexed writes through the shared parallel engine keep the
  // BER-major, code-minor point order identical for any thread count.
  sweep.points.resize(codes.size() * ber_targets.size());
  math::parallel_for(
      sweep.points.size(), threads, [&](std::size_t i) {
        sweep.points[i] = plan.evaluate(i % codes.size(),
                                        ber_targets[i / codes.size()]);
      });
  return sweep;
}

}  // namespace photecc::core
