#include "photecc/core/channel_power.hpp"

#include <stdexcept>

#include "photecc/photonics/microring.hpp"

namespace photecc::core {

double enc_dec_power_per_wavelength_w(const ecc::BlockCode& code,
                                      const SystemConfig& config) {
  const std::string name = code.name();
  if (name == "w/o ECC")
    return config.interface_pair.enc_dec_power_per_wavelength_w(
        interface::InterfaceMode::kUncoded, config.wavelengths);
  if (name == "H(7,4)")
    return config.interface_pair.enc_dec_power_per_wavelength_w(
        interface::InterfaceMode::kHamming74, config.wavelengths);
  if (name == "H(71,64)")
    return config.interface_pair.enc_dec_power_per_wavelength_w(
        interface::InterfaceMode::kHamming7164, config.wavelengths);
  // Codes outside Table I: estimate a dedicated coder/decoder pair plus
  // SER/DES sized for the coded frame.
  const interface::SynthesisEstimator estimator;
  const std::size_t k = code.message_length();
  const std::size_t n_data = estimator.clocks().n_data;
  const std::size_t blocks = (n_data + k - 1) / k;
  const std::size_t frame = blocks * code.block_length();
  const double tx_uw = estimator.encoder_bank(code).dynamic_uw +
                       estimator.serializer(frame).dynamic_uw +
                       estimator.path_mux(3, 1).dynamic_uw;
  const double rx_uw = estimator.decoder_bank(code).dynamic_uw +
                       estimator.deserializer(frame).dynamic_uw +
                       estimator.path_mux(3, n_data).dynamic_uw;
  return (tx_uw + rx_uw) * 1e-6 / static_cast<double>(config.wavelengths);
}

std::string scheme_display_name(const SchemeMetrics& metrics) {
  if (metrics.modulation == math::Modulation::kOok) return metrics.scheme;
  return metrics.scheme + " @" + math::to_string(metrics.modulation);
}

SchemeMetrics evaluate_scheme(const link::MwsrChannel& channel,
                              const ecc::BlockCode& code, double target_ber,
                              const SystemConfig& config,
                              const env::EnvironmentSample& environment,
                              const SchemeMetrics* previous) {
  if (config.wavelengths == 0 || config.f_mod_hz <= 0.0)
    throw std::invalid_argument("evaluate_scheme: bad SystemConfig");
  SchemeMetrics m;
  m.scheme = code.name();
  m.modulation = channel.params().modulation;
  const double bits_per_symbol =
      static_cast<double>(math::bits_per_symbol(m.modulation));
  m.target_ber = target_ber;
  m.code_rate = code.code_rate();
  // Multilevel symbols carry bits_per_symbol payload bits per Fmod
  // cycle, dividing the serial transfer time of the same frame.
  m.ct = code.communication_time() / bits_per_symbol;
  // A previous-cell solution is only a valid warm start for the same
  // code; the link solver additionally requires a bit-equal target.
  const link::LinkOperatingPoint* warm =
      (previous && previous->scheme == m.scheme)
          ? &previous->operating_point
          : nullptr;
  m.operating_point = link::solve_operating_point(channel, code, target_ber,
                                                  environment, warm);
  m.feasible = m.operating_point.feasible;
  m.duty_bound = code.transmit_duty_bound();

  m.p_mr_w = photonics::multilevel_modulation_power_w(
      channel.params().ring.modulation_power_w,
      math::levels(m.modulation));
  m.p_enc_dec_w = enc_dec_power_per_wavelength_w(code, config);
  if (m.feasible) {
    m.p_laser_w = m.operating_point.p_laser_w;
    m.p_channel_w = m.p_laser_w + m.p_mr_w + m.p_enc_dec_w;
    // Energy per payload bit: the channel burns Pchannel while moving
    // payload at Fmod * bits_per_symbol * Rc useful bits per second
    // per wavelength.
    m.energy_per_bit_j =
        m.p_channel_w / (config.f_mod_hz * bits_per_symbol * m.code_rate);
    m.p_waveguide_w =
        m.p_channel_w * static_cast<double>(config.wavelengths);
    m.p_interconnect_w =
        m.p_waveguide_w *
        static_cast<double>(config.waveguides_per_channel) *
        static_cast<double>(config.oni_count);
  }
  return m;
}

SchemeMetrics evaluate_scheme(const link::MwsrChannel& channel,
                              const ecc::BlockCode& code, double target_ber,
                              const SystemConfig& config,
                              const env::EnvironmentSample& environment) {
  return evaluate_scheme(channel, code, target_ber, config, environment,
                         nullptr);
}

SchemeMetrics evaluate_scheme(const link::MwsrChannel& channel,
                              const ecc::BlockCode& code, double target_ber,
                              const SystemConfig& config) {
  return evaluate_scheme(channel, code, target_ber, config,
                         channel.environment());
}

ChannelSweepPlan::ChannelSweepPlan(const link::MwsrChannel& channel,
                                   std::vector<ecc::BlockCodePtr> codes,
                                   const SystemConfig& config)
    : channel_(&channel),
      solver_(channel),
      environment_(channel.environment()),
      modulation_(channel.params().modulation) {
  if (config.wavelengths == 0 || config.f_mod_hz <= 0.0)
    throw std::invalid_argument("ChannelSweepPlan: bad SystemConfig");
  bits_per_symbol_ =
      static_cast<double>(math::bits_per_symbol(modulation_));
  f_mod_x_bits_per_symbol_hz_ = config.f_mod_hz * bits_per_symbol_;
  p_mr_w_ = photonics::multilevel_modulation_power_w(
      channel.params().ring.modulation_power_w, math::levels(modulation_));
  wavelengths_d_ = static_cast<double>(config.wavelengths);
  waveguides_d_ = static_cast<double>(config.waveguides_per_channel);
  oni_d_ = static_cast<double>(config.oni_count);
  codes_.reserve(codes.size());
  for (auto& code : codes) {
    if (!code)
      throw std::invalid_argument("ChannelSweepPlan: null code");
    CodeInvariants inv;
    inv.name = code->name();
    inv.code_rate = code->code_rate();
    inv.communication_time = code->communication_time();
    inv.p_enc_dec_w = enc_dec_power_per_wavelength_w(*code, config);
    inv.duty_bound = code->transmit_duty_bound();
    inv.code = std::move(code);
    codes_.push_back(std::move(inv));
  }
}

SchemeMetrics ChannelSweepPlan::evaluate_with_requirement(
    std::size_t code_index, double target_ber, double raw_ber) const {
  return evaluate_with_solution(
      code_index, target_ber, raw_ber,
      math::snr_from_ber_clamped(modulation_, raw_ber));
}

SchemeMetrics ChannelSweepPlan::evaluate_with_solution(
    std::size_t code_index, double target_ber, double raw_ber,
    double snr) const {
  if (target_ber <= 0.0 || target_ber >= 0.5)
    throw std::domain_error(
        "ChannelSweepPlan: target BER outside (0, 0.5)");
  const CodeInvariants& inv = codes_.at(code_index);
  SchemeMetrics m;
  m.scheme = inv.name;
  m.modulation = modulation_;
  m.target_ber = target_ber;
  m.code_rate = inv.code_rate;
  m.ct = inv.communication_time / bits_per_symbol_;
  m.operating_point = solver_.solve_from_snr(raw_ber, snr, target_ber,
                                             environment_, inv.duty_bound);
  m.feasible = m.operating_point.feasible;
  m.duty_bound = inv.duty_bound;

  m.p_mr_w = p_mr_w_;
  m.p_enc_dec_w = inv.p_enc_dec_w;
  if (m.feasible) {
    m.p_laser_w = m.operating_point.p_laser_w;
    m.p_channel_w = m.p_laser_w + m.p_mr_w + m.p_enc_dec_w;
    m.energy_per_bit_j =
        m.p_channel_w / (f_mod_x_bits_per_symbol_hz_ * m.code_rate);
    m.p_waveguide_w = m.p_channel_w * wavelengths_d_;
    m.p_interconnect_w = m.p_waveguide_w * waveguides_d_ * oni_d_;
  }
  return m;
}

SchemeMetrics ChannelSweepPlan::evaluate(std::size_t code_index,
                                         double target_ber,
                                         ecc::RawBerSolveTrace* trace) const {
  const CodeInvariants& inv = codes_.at(code_index);
  return evaluate_with_requirement(
      code_index, target_ber,
      inv.code->required_raw_ber_checked(target_ber, trace).raw_ber);
}

double thermal_headroom_w(const link::MwsrChannel& channel,
                          const SchemeMetrics& metrics,
                          const env::EnvironmentSample& environment) {
  const double op_max = channel.laser().max_optical_power(
      metrics.duty_bound < 1.0
          ? environment.activity * metrics.duty_bound
          : environment.activity);
  return op_max - metrics.operating_point.op_laser_w;
}

std::vector<SchemeMetrics> evaluate_schemes(
    const link::MwsrChannel& channel,
    const std::vector<ecc::BlockCodePtr>& codes, double target_ber,
    const SystemConfig& config, const env::EnvironmentSample& environment) {
  std::vector<SchemeMetrics> out;
  out.reserve(codes.size());
  for (const auto& code : codes) {
    if (!code) throw std::invalid_argument("evaluate_schemes: null code");
    out.push_back(
        evaluate_scheme(channel, *code, target_ber, config, environment));
  }
  return out;
}

std::vector<SchemeMetrics> evaluate_schemes(
    const link::MwsrChannel& channel,
    const std::vector<ecc::BlockCodePtr>& codes, double target_ber,
    const SystemConfig& config) {
  return evaluate_schemes(channel, codes, target_ber, config,
                          channel.environment());
}

}  // namespace photecc::core
