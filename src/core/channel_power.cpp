#include "photecc/core/channel_power.hpp"

#include <stdexcept>

#include "photecc/photonics/microring.hpp"

namespace photecc::core {

double enc_dec_power_per_wavelength_w(const ecc::BlockCode& code,
                                      const SystemConfig& config) {
  const std::string name = code.name();
  if (name == "w/o ECC")
    return config.interface_pair.enc_dec_power_per_wavelength_w(
        interface::InterfaceMode::kUncoded, config.wavelengths);
  if (name == "H(7,4)")
    return config.interface_pair.enc_dec_power_per_wavelength_w(
        interface::InterfaceMode::kHamming74, config.wavelengths);
  if (name == "H(71,64)")
    return config.interface_pair.enc_dec_power_per_wavelength_w(
        interface::InterfaceMode::kHamming7164, config.wavelengths);
  // Codes outside Table I: estimate a dedicated coder/decoder pair plus
  // SER/DES sized for the coded frame.
  const interface::SynthesisEstimator estimator;
  const std::size_t k = code.message_length();
  const std::size_t n_data = estimator.clocks().n_data;
  const std::size_t blocks = (n_data + k - 1) / k;
  const std::size_t frame = blocks * code.block_length();
  const double tx_uw = estimator.encoder_bank(code).dynamic_uw +
                       estimator.serializer(frame).dynamic_uw +
                       estimator.path_mux(3, 1).dynamic_uw;
  const double rx_uw = estimator.decoder_bank(code).dynamic_uw +
                       estimator.deserializer(frame).dynamic_uw +
                       estimator.path_mux(3, n_data).dynamic_uw;
  return (tx_uw + rx_uw) * 1e-6 / static_cast<double>(config.wavelengths);
}

std::string scheme_display_name(const SchemeMetrics& metrics) {
  if (metrics.modulation == math::Modulation::kOok) return metrics.scheme;
  return metrics.scheme + " @" + math::to_string(metrics.modulation);
}

SchemeMetrics evaluate_scheme(const link::MwsrChannel& channel,
                              const ecc::BlockCode& code, double target_ber,
                              const SystemConfig& config,
                              const env::EnvironmentSample& environment) {
  if (config.wavelengths == 0 || config.f_mod_hz <= 0.0)
    throw std::invalid_argument("evaluate_scheme: bad SystemConfig");
  SchemeMetrics m;
  m.scheme = code.name();
  m.modulation = channel.params().modulation;
  const double bits_per_symbol =
      static_cast<double>(math::bits_per_symbol(m.modulation));
  m.target_ber = target_ber;
  m.code_rate = code.code_rate();
  // Multilevel symbols carry bits_per_symbol payload bits per Fmod
  // cycle, dividing the serial transfer time of the same frame.
  m.ct = code.communication_time() / bits_per_symbol;
  m.operating_point =
      link::solve_operating_point(channel, code, target_ber, environment);
  m.feasible = m.operating_point.feasible;

  m.p_mr_w = photonics::multilevel_modulation_power_w(
      channel.params().ring.modulation_power_w,
      math::levels(m.modulation));
  m.p_enc_dec_w = enc_dec_power_per_wavelength_w(code, config);
  if (m.feasible) {
    m.p_laser_w = m.operating_point.p_laser_w;
    m.p_channel_w = m.p_laser_w + m.p_mr_w + m.p_enc_dec_w;
    // Energy per payload bit: the channel burns Pchannel while moving
    // payload at Fmod * bits_per_symbol * Rc useful bits per second
    // per wavelength.
    m.energy_per_bit_j =
        m.p_channel_w / (config.f_mod_hz * bits_per_symbol * m.code_rate);
    m.p_waveguide_w =
        m.p_channel_w * static_cast<double>(config.wavelengths);
    m.p_interconnect_w =
        m.p_waveguide_w *
        static_cast<double>(config.waveguides_per_channel) *
        static_cast<double>(config.oni_count);
  }
  return m;
}

SchemeMetrics evaluate_scheme(const link::MwsrChannel& channel,
                              const ecc::BlockCode& code, double target_ber,
                              const SystemConfig& config) {
  return evaluate_scheme(channel, code, target_ber, config,
                         channel.environment());
}

std::vector<SchemeMetrics> evaluate_schemes(
    const link::MwsrChannel& channel,
    const std::vector<ecc::BlockCodePtr>& codes, double target_ber,
    const SystemConfig& config, const env::EnvironmentSample& environment) {
  std::vector<SchemeMetrics> out;
  out.reserve(codes.size());
  for (const auto& code : codes) {
    if (!code) throw std::invalid_argument("evaluate_schemes: null code");
    out.push_back(
        evaluate_scheme(channel, *code, target_ber, config, environment));
  }
  return out;
}

std::vector<SchemeMetrics> evaluate_schemes(
    const link::MwsrChannel& channel,
    const std::vector<ecc::BlockCodePtr>& codes, double target_ber,
    const SystemConfig& config) {
  return evaluate_schemes(channel, codes, target_ber, config,
                          channel.environment());
}

}  // namespace photecc::core
