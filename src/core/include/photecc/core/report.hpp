// Rendering helpers: turn SchemeMetrics / sweeps into the aligned text
// tables and CSV series the benches print for each paper artefact.
#ifndef PHOTECC_CORE_REPORT_HPP
#define PHOTECC_CORE_REPORT_HPP

#include <ostream>
#include <vector>

#include "photecc/core/tradeoff.hpp"
#include "photecc/math/table.hpp"

namespace photecc::core {

/// One row per scheme: BER, SNR, OPlaser, Plaser, Pchannel, CT, E/bit.
math::TextTable metrics_table(const std::vector<SchemeMetrics>& metrics);

/// Fig. 6a-style breakdown: one row per scheme with the three power
/// contributions.
math::TextTable breakdown_table(const std::vector<SchemeMetrics>& metrics);

/// Fig. 6b-style series: (CT, Pchannel) per scheme per BER, with a
/// Pareto marker column.
math::TextTable pareto_table(const TradeoffSweep& sweep);

/// Streams a table with a caption line above it.
void print_table(std::ostream& os, const std::string& caption,
                 const math::TextTable& table);

}  // namespace photecc::core

#endif  // PHOTECC_CORE_REPORT_HPP
