// Optical Link Energy/Performance Manager (paper Section III-C):
//
// A source ONI sends a request (destination + communication
// requirements); the manager answers with the configuration both sides
// must apply — the coding scheme (w/ or w/o ECC) and the laser output
// power that meets the BER target.  Policies arbitrate between the
// feasible schemes: real-time traffic wants minimum communication time,
// energy-bounded traffic wants minimum energy per bit, thermally
// constrained regions want minimum channel power.
#ifndef PHOTECC_CORE_MANAGER_HPP
#define PHOTECC_CORE_MANAGER_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "photecc/core/channel_power.hpp"
#include "photecc/env/environment.hpp"

namespace photecc::core {

/// Selection policy among the feasible schemes.
enum class Policy {
  kMinPower,   ///< minimise Pchannel (thermal / power-wall relief)
  kMinEnergy,  ///< minimise energy per payload bit
  kMinTime,    ///< minimise communication time (real-time traffic)
};

[[nodiscard]] std::string to_string(Policy policy);

/// Exact inverse of to_string(Policy): "min-power" / "min-energy" /
/// "min-time" (case-sensitive); nullopt for anything else.
[[nodiscard]] std::optional<Policy> policy_from_string(
    std::string_view name);

/// Every Policy enumerator, in declaration order (for registries and
/// error messages that list the valid names).
[[nodiscard]] const std::vector<Policy>& all_policies();

/// One communication request from a source ONI.
struct CommunicationRequest {
  double target_ber = 1e-9;
  Policy policy = Policy::kMinEnergy;
  /// Deadline expressed as the maximum tolerated communication-time
  /// ratio (1.0 = no slack over an uncoded transfer).
  std::optional<double> max_ct;
  /// Per-wavelength channel power cap [W].
  std::optional<double> max_channel_power_w;

  [[nodiscard]] bool operator==(const CommunicationRequest&) const = default;
};

/// The manager's answer: scheme + laser operating point for both ONIs.
struct LinkConfiguration {
  ecc::BlockCodePtr code;
  SchemeMetrics metrics;
  /// Laser output power to program into the laser output power
  /// controller (LOPC) [W].
  double laser_output_w = 0.0;
};

/// Centralised manager for one MWSR channel.
class LinkManager {
 public:
  /// `codes` is the scheme menu (paper: uncoded, H(71,64), H(7,4)).
  LinkManager(link::MwsrChannel channel,
              std::vector<ecc::BlockCodePtr> codes,
              SystemConfig config = {});

  /// Resolves a request to a configuration, or std::nullopt when no
  /// scheme meets all constraints (the caller may relax the request).
  /// Evaluated at the channel's t = 0 environment sample.
  [[nodiscard]] std::optional<LinkConfiguration> configure(
      const CommunicationRequest& request) const;

  /// Same, at an explicit environment sample — one solve of the
  /// time-varying decision problem.  RecalibratingManager wraps this
  /// with drift hysteresis so a simulator does not re-solve per event.
  [[nodiscard]] std::optional<LinkConfiguration> configure(
      const CommunicationRequest& request,
      const env::EnvironmentSample& environment) const;

  /// All candidate evaluations for a target BER (for inspection).
  [[nodiscard]] std::vector<SchemeMetrics> candidates(
      double target_ber) const;

  /// Same, at an explicit environment sample.
  [[nodiscard]] std::vector<SchemeMetrics> candidates(
      double target_ber, const env::EnvironmentSample& environment) const;

  /// Lowest BER any scheme in the menu can reach on this channel.
  [[nodiscard]] double best_reachable_ber() const;

  /// Same, at an explicit environment sample.
  [[nodiscard]] double best_reachable_ber(
      const env::EnvironmentSample& environment) const;

  [[nodiscard]] const link::MwsrChannel& channel() const noexcept {
    return channel_;
  }
  [[nodiscard]] const std::vector<ecc::BlockCodePtr>& codes()
      const noexcept {
    return codes_;
  }
  [[nodiscard]] const SystemConfig& config() const noexcept {
    return config_;
  }

 private:
  link::MwsrChannel channel_;
  std::vector<ecc::BlockCodePtr> codes_;
  SystemConfig config_;
};

/// Knobs of the closed recalibration loop.
struct RecalibrationConfig {
  /// Re-solve when the sampled activity drifts more than this from the
  /// activity the cached configuration was solved at.  The paper's
  /// manager solves once and trusts it forever — that is hysteresis 1.
  double activity_hysteresis = 0.02;
  /// Cost of one manager round trip (request + re-solve + LOPC
  /// reprogramming) charged per recalibration.
  double recalibration_latency_s = 20e-9;
  double recalibration_energy_j = 2e-12;
};

/// Counters of the closed loop, for energy/latency accounting.  The
/// first solve of a request is a cold solve (the manager round trip
/// the paper already assumes) — only drift-triggered *re*-solves are
/// recalibrations and carry the recalibration energy/latency cost, so
/// a constant environment accrues zero cost regardless of the config.
struct RecalibrationStats {
  std::uint64_t solves = 0;           ///< total solves (cold + drift)
  std::uint64_t recalibrations = 0;   ///< drift-triggered re-solves only
  std::uint64_t reuses = 0;           ///< requests served from the cache
  double energy_j = 0.0;      ///< recalibrations x recalibration_energy_j
  double latency_s = 0.0;     ///< recalibrations x recalibration_latency_s
};

/// Stateful wrapper that closes the loop between a drifting environment
/// and the LinkManager: each configure() call carries the current
/// environment sample; the manager re-solves only when no cached
/// configuration exists for the request or the activity has drifted
/// past the hysteresis band, and counts the energy/latency every
/// re-solve costs.  Under a constant environment this reduces to one
/// solve per distinct request — the static special case.
class RecalibratingManager {
 public:
  RecalibratingManager(std::shared_ptr<const LinkManager> manager,
                       RecalibrationConfig config = {});

  /// Resolves `request` at `environment`, reusing the cached
  /// configuration while the activity stays within the hysteresis band.
  /// `recalibrated` is true only for drift-triggered re-solves (not the
  /// cold first solve of a request) so callers can charge the
  /// recalibration latency to the right event.
  struct Outcome {
    std::optional<LinkConfiguration> configuration;
    bool recalibrated = false;
  };
  [[nodiscard]] Outcome configure(const CommunicationRequest& request,
                                  const env::EnvironmentSample& environment);

  [[nodiscard]] const RecalibrationStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const RecalibrationConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const LinkManager& manager() const noexcept {
    return *manager_;
  }

 private:
  struct CacheEntry {
    CommunicationRequest request;
    double activity = 0.0;
    std::optional<LinkConfiguration> configuration;
  };

  std::shared_ptr<const LinkManager> manager_;
  RecalibrationConfig config_;
  RecalibrationStats stats_;
  std::vector<CacheEntry> cache_;
};

}  // namespace photecc::core

#endif  // PHOTECC_CORE_MANAGER_HPP
