// Optical Link Energy/Performance Manager (paper Section III-C):
//
// A source ONI sends a request (destination + communication
// requirements); the manager answers with the configuration both sides
// must apply — the coding scheme (w/ or w/o ECC) and the laser output
// power that meets the BER target.  Policies arbitrate between the
// feasible schemes: real-time traffic wants minimum communication time,
// energy-bounded traffic wants minimum energy per bit, thermally
// constrained regions want minimum channel power.
#ifndef PHOTECC_CORE_MANAGER_HPP
#define PHOTECC_CORE_MANAGER_HPP

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "photecc/core/channel_power.hpp"

namespace photecc::core {

/// Selection policy among the feasible schemes.
enum class Policy {
  kMinPower,   ///< minimise Pchannel (thermal / power-wall relief)
  kMinEnergy,  ///< minimise energy per payload bit
  kMinTime,    ///< minimise communication time (real-time traffic)
};

[[nodiscard]] std::string to_string(Policy policy);

/// Exact inverse of to_string(Policy): "min-power" / "min-energy" /
/// "min-time" (case-sensitive); nullopt for anything else.
[[nodiscard]] std::optional<Policy> policy_from_string(
    std::string_view name);

/// Every Policy enumerator, in declaration order (for registries and
/// error messages that list the valid names).
[[nodiscard]] const std::vector<Policy>& all_policies();

/// One communication request from a source ONI.
struct CommunicationRequest {
  double target_ber = 1e-9;
  Policy policy = Policy::kMinEnergy;
  /// Deadline expressed as the maximum tolerated communication-time
  /// ratio (1.0 = no slack over an uncoded transfer).
  std::optional<double> max_ct;
  /// Per-wavelength channel power cap [W].
  std::optional<double> max_channel_power_w;
};

/// The manager's answer: scheme + laser operating point for both ONIs.
struct LinkConfiguration {
  ecc::BlockCodePtr code;
  SchemeMetrics metrics;
  /// Laser output power to program into the laser output power
  /// controller (LOPC) [W].
  double laser_output_w = 0.0;
};

/// Centralised manager for one MWSR channel.
class LinkManager {
 public:
  /// `codes` is the scheme menu (paper: uncoded, H(71,64), H(7,4)).
  LinkManager(link::MwsrChannel channel,
              std::vector<ecc::BlockCodePtr> codes,
              SystemConfig config = {});

  /// Resolves a request to a configuration, or std::nullopt when no
  /// scheme meets all constraints (the caller may relax the request).
  [[nodiscard]] std::optional<LinkConfiguration> configure(
      const CommunicationRequest& request) const;

  /// All candidate evaluations for a target BER (for inspection).
  [[nodiscard]] std::vector<SchemeMetrics> candidates(
      double target_ber) const;

  /// Lowest BER any scheme in the menu can reach on this channel.
  [[nodiscard]] double best_reachable_ber() const;

  [[nodiscard]] const link::MwsrChannel& channel() const noexcept {
    return channel_;
  }
  [[nodiscard]] const std::vector<ecc::BlockCodePtr>& codes()
      const noexcept {
    return codes_;
  }
  [[nodiscard]] const SystemConfig& config() const noexcept {
    return config_;
  }

 private:
  link::MwsrChannel channel_;
  std::vector<ecc::BlockCodePtr> codes_;
  SystemConfig config_;
};

}  // namespace photecc::core

#endif  // PHOTECC_CORE_MANAGER_HPP
