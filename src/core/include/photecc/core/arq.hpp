// ARQ (detect-and-retransmit) transmission scheme: the classic
// alternative to the paper's forward error correction.  Frames carry a
// CRC; the receiver requests retransmission on a failed check.  Energy
// goes down with laser power like FEC, but the cost is paid in
// *expected* retransmissions instead of fixed parity overhead, and the
// quality floor is the CRC's undetected-error probability.
//
// Model (per frame of F payload bits + c CRC bits, raw channel error
// probability p):
//   frame error rate     FER  = 1 - (1-p)^(F+c)
//   undetected fraction  2^-c   (random-error model of CRC aliasing)
//   residual BER        ~ FER * 2^-c / 2   (half the bits of an
//                          undetected bad frame are wrong on average)
//   expected sends       E[T] = 1 / (1 - FER)
//   effective CT         (F+c)/F * E[T]    (vs one uncoded pass)
#ifndef PHOTECC_CORE_ARQ_HPP
#define PHOTECC_CORE_ARQ_HPP

#include <optional>
#include <string>

#include "photecc/core/channel_power.hpp"
#include "photecc/link/mwsr_channel.hpp"

namespace photecc::core {

/// ARQ configuration.
struct ArqParams {
  std::size_t frame_payload_bits = 64;
  unsigned crc_width = 16;
  /// Operating cap on the frame error rate: beyond this the link
  /// thrashes (goodput collapse); the solver refuses to run hotter.
  double max_frame_error_rate = 0.5;
};

/// Solved ARQ operating point on a channel.
struct ArqOperatingPoint {
  double target_ber = 0.0;
  double raw_ber = 0.0;             ///< channel p at the operating point
  double snr = 0.0;
  double op_laser_w = 0.0;
  double p_laser_w = 0.0;
  double frame_error_rate = 0.0;
  double expected_transmissions = 1.0;
  double effective_ct = 1.0;        ///< includes CRC overhead + resends
  double residual_ber = 0.0;        ///< undetected-error floor achieved
  bool feasible = false;
};

/// Analytic ARQ scheme model.
class ArqScheme {
 public:
  explicit ArqScheme(const ArqParams& params = {});

  [[nodiscard]] std::string name() const;
  [[nodiscard]] const ArqParams& params() const noexcept { return params_; }

  /// Frame length on the wire (payload + CRC).
  [[nodiscard]] std::size_t frame_bits() const noexcept;

  /// Residual (post-ARQ) BER at raw channel error probability p.
  [[nodiscard]] double residual_ber(double raw_p) const;

  /// Frame error rate at raw p.
  [[nodiscard]] double frame_error_rate(double raw_p) const;

  /// Effective communication-time ratio at raw p (CRC overhead plus
  /// expected retransmissions), relative to one uncoded payload pass.
  [[nodiscard]] double effective_ct(double raw_p) const;

  /// Largest raw p meeting `target_ber` residual BER and the FER cap;
  /// std::nullopt when the CRC's aliasing floor makes the target
  /// unreachable at any operating point.
  [[nodiscard]] std::optional<double> required_raw_ber(
      double target_ber) const;

  /// Full solve on an MWSR channel (laser sized like the FEC solver).
  [[nodiscard]] ArqOperatingPoint solve(const link::MwsrChannel& channel,
                                        double target_ber) const;

  /// SchemeMetrics-compatible evaluation for side-by-side tables: CT is
  /// the *expected* effective CT at the operating point.
  [[nodiscard]] SchemeMetrics evaluate(const link::MwsrChannel& channel,
                                       double target_ber,
                                       const SystemConfig& config = {}) const;

 private:
  ArqParams params_;
};

}  // namespace photecc::core

#endif  // PHOTECC_CORE_ARQ_HPP
