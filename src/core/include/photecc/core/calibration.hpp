// Closed-loop transceiver power self-calibration (the direction of
// Mineo et al. [6], applied to the optical link): instead of trusting
// the analytic link model, a controller steps the laser output power
// while *measuring* the post-decoding BER on the live channel, and
// settles at the cheapest setting that meets the target with a margin.
//
// This tracks model error and slow channel drift (temperature,
// ageing) that an open-loop table cannot.  The measurement plant here
// is the bit-true Monte-Carlo stack.
#ifndef PHOTECC_CORE_CALIBRATION_HPP
#define PHOTECC_CORE_CALIBRATION_HPP

#include <vector>

#include "photecc/ecc/block_code.hpp"
#include "photecc/link/mwsr_channel.hpp"

namespace photecc::core {

/// Controller settings.
struct CalibrationConfig {
  double target_ber = 1e-4;       ///< must be measurable in the budget
  double step_db = 0.5;           ///< laser power step per iteration
  double margin = 2.0;            ///< settle when CI upper * margin <= target
  unsigned max_iterations = 64;
  std::uint64_t blocks_per_measurement = 4000;
  std::uint64_t seed = 0xCA11B;
};

/// One controller step, for inspection/plotting.
struct CalibrationStep {
  double op_laser_w = 0.0;
  double snr = 0.0;
  double measured_ber = 0.0;
  double ci_upper = 0.0;
  bool met_target = false;
};

/// Outcome of a calibration run.
struct CalibrationResult {
  bool converged = false;
  double op_laser_w = 0.0;         ///< final setting
  double p_laser_w = 0.0;          ///< electrical power at the setting
  double measured_ber = 0.0;
  std::vector<CalibrationStep> history;
};

/// Runs the closed loop for `code` on `channel`: starts from the
/// analytic operating point minus a few dB (deliberately optimistic),
/// raises the laser until the measured BER upper confidence bound meets
/// the target, then backs off while it still holds.
CalibrationResult calibrate_laser(const link::MwsrChannel& channel,
                                  const ecc::BlockCode& code,
                                  const CalibrationConfig& config = {});

}  // namespace photecc::core

#endif  // PHOTECC_CORE_CALIBRATION_HPP
