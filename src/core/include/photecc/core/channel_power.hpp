// Channel power and energy roll-up (paper Section IV-E):
//
//   Pchannel = P_ENC+DEC + P_MR + P_laser     (per wavelength)
//
// plus the derived figures the evaluation reports: communication time
// CT, energy per payload bit, per-waveguide and whole-interconnect
// power.
#ifndef PHOTECC_CORE_CHANNEL_POWER_HPP
#define PHOTECC_CORE_CHANNEL_POWER_HPP

#include <optional>
#include <string>
#include <vector>

#include "photecc/ecc/block_code.hpp"
#include "photecc/interface/synthesis_model.hpp"
#include "photecc/link/snr_solver.hpp"
#include "photecc/math/modulation.hpp"

namespace photecc::core {

/// System-level constants of the evaluation (paper Section V).
struct SystemConfig {
  double f_mod_hz = 10e9;            ///< modulation speed per wavelength
  std::size_t wavelengths = 16;      ///< NW per waveguide
  std::size_t waveguides_per_channel = 16;
  std::size_t oni_count = 12;        ///< MWSR channels in the interconnect
  /// Interface synthesis source for P_ENC+DEC (Table I by default).
  interface::InterfacePair interface_pair = interface::table1_reference();
};

/// All figures the paper reports for one (code, target BER) pair.
struct SchemeMetrics {
  std::string scheme;          ///< code name
  /// Signaling format the scheme was evaluated at (from the channel).
  math::Modulation modulation = math::Modulation::kOok;
  double target_ber = 0.0;
  double code_rate = 1.0;      ///< Rc = k/n
  /// Communication time normalised to an uncoded OOK transmission of
  /// the same payload: (n/k) / bits_per_symbol(modulation).
  double ct = 1.0;
  link::LinkOperatingPoint operating_point{};
  bool feasible = false;
  /// The code's guaranteed wire-duty bound (see
  /// ecc::BlockCode::transmit_duty_bound); 1.0 for non-cooling codes.
  double duty_bound = 1.0;

  // Per-wavelength power breakdown [W]:
  double p_laser_w = 0.0;
  double p_mr_w = 0.0;
  double p_enc_dec_w = 0.0;
  double p_channel_w = 0.0;

  // Derived figures:
  double energy_per_bit_j = 0.0;       ///< per payload bit
  double p_waveguide_w = 0.0;          ///< Pchannel x NW
  double p_interconnect_w = 0.0;       ///< x waveguides x ONIs
};

/// Maps the paper's three schemes onto Table I interface modes; other
/// codes fall back to the DSENT-style estimator.
double enc_dec_power_per_wavelength_w(const ecc::BlockCode& code,
                                      const SystemConfig& config);

/// Display name of one (scheme, modulation) pair: the scheme name for
/// OOK (the paper's tables), "<scheme> @<format>" otherwise.
std::string scheme_display_name(const SchemeMetrics& metrics);

/// Full evaluation of one scheme at one target BER on one channel, at
/// the channel's t = 0 environment sample (the static operating point).
SchemeMetrics evaluate_scheme(const link::MwsrChannel& channel,
                              const ecc::BlockCode& code, double target_ber,
                              const SystemConfig& config = {});

/// Same, at an explicit environment sample — the manager's
/// recalibration loop re-evaluates here whenever the sampled
/// environment drifts.
SchemeMetrics evaluate_scheme(const link::MwsrChannel& channel,
                              const ecc::BlockCode& code, double target_ber,
                              const SystemConfig& config,
                              const env::EnvironmentSample& environment);

/// Warm-start overload: `previous` is an optional previous-cell result
/// (nullptr = cold).  When it evaluated the SAME code (matched by
/// scheme name) its operating point is offered to the link solver,
/// which reuses the raw-BER/SNR head when the target also bit-matches;
/// any mismatch degrades to the cold evaluation bit-identically.
SchemeMetrics evaluate_scheme(const link::MwsrChannel& channel,
                              const ecc::BlockCode& code, double target_ber,
                              const SystemConfig& config,
                              const env::EnvironmentSample& environment,
                              const SchemeMetrics* previous);

/// Lower-once/execute-many core of evaluate_scheme over one channel:
/// hoists the channel geometry (the worst-channel scan inside
/// link::OperatingPointSolver), the t = 0 environment sample, the
/// per-modulation ring power and the per-code interface/rate algebra
/// out of the per-cell path, leaving only the per-(code, target BER)
/// solve — or, with evaluate_with_requirement, nothing but closed-form
/// arithmetic.  Every entry point is bit-identical to the one-shot
/// evaluate_scheme on the same inputs (the hoisted subexpressions keep
/// its exact evaluation order).  The channel must outlive the plan.
class ChannelSweepPlan {
 public:
  ChannelSweepPlan(const link::MwsrChannel& channel,
                   std::vector<ecc::BlockCodePtr> codes,
                   const SystemConfig& config = {});

  [[nodiscard]] std::size_t code_count() const noexcept {
    return codes_.size();
  }
  [[nodiscard]] const ecc::BlockCode& code(std::size_t i) const {
    return *codes_.at(i).code;
  }
  [[nodiscard]] const link::OperatingPointSolver& solver() const noexcept {
    return solver_;
  }

  /// Bit-identical to
  /// evaluate_scheme(channel, *codes[code_index], target_ber, config).
  [[nodiscard]] SchemeMetrics evaluate(
      std::size_t code_index, double target_ber,
      ecc::RawBerSolveTrace* trace = nullptr) const;

  /// Tail of evaluate() from a precomputed raw-BER requirement (the
  /// explore plan's shared (code, BER) table).  `raw_ber` must equal
  /// code.required_raw_ber(target_ber) for bit-identity.
  [[nodiscard]] SchemeMetrics evaluate_with_requirement(
      std::size_t code_index, double target_ber, double raw_ber) const;

  /// Tail from a precomputed (raw BER, SNR) pair — the batched entry
  /// for struct-of-arrays cell blocks.  `snr` must equal
  /// math::snr_from_ber_clamped(modulation, raw_ber) for bit-identity.
  [[nodiscard]] SchemeMetrics evaluate_with_solution(
      std::size_t code_index, double target_ber, double raw_ber,
      double snr) const;

  [[nodiscard]] math::Modulation modulation() const noexcept {
    return modulation_;
  }

 private:
  struct CodeInvariants {
    ecc::BlockCodePtr code;
    std::string name;
    double code_rate = 1.0;
    double communication_time = 1.0;
    double p_enc_dec_w = 0.0;
    double duty_bound = 1.0;
  };

  const link::MwsrChannel* channel_;
  link::OperatingPointSolver solver_;
  env::EnvironmentSample environment_{};
  math::Modulation modulation_ = math::Modulation::kOok;
  double bits_per_symbol_ = 1.0;
  double f_mod_x_bits_per_symbol_hz_ = 0.0;
  double p_mr_w_ = 0.0;
  double wavelengths_d_ = 0.0;
  double waveguides_d_ = 0.0;
  double oni_d_ = 0.0;
  std::vector<CodeInvariants> codes_;
};

/// Laser-power headroom of an evaluated scheme under `environment`: the
/// deliverable maximum at the duty-bounded activity minus the required
/// operating point, in watts.  Negative means infeasible.  Shared by
/// the explore evaluators and the lowered plan so the cooling metric
/// columns are byte-identical across both paths.
double thermal_headroom_w(const link::MwsrChannel& channel,
                          const SchemeMetrics& metrics,
                          const env::EnvironmentSample& environment);

/// Evaluates several schemes at the same target.
std::vector<SchemeMetrics> evaluate_schemes(
    const link::MwsrChannel& channel,
    const std::vector<ecc::BlockCodePtr>& codes, double target_ber,
    const SystemConfig& config = {});

/// Same, at an explicit environment sample.
std::vector<SchemeMetrics> evaluate_schemes(
    const link::MwsrChannel& channel,
    const std::vector<ecc::BlockCodePtr>& codes, double target_ber,
    const SystemConfig& config, const env::EnvironmentSample& environment);

}  // namespace photecc::core

#endif  // PHOTECC_CORE_CHANNEL_POWER_HPP
