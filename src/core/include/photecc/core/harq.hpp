// Type-I Hybrid ARQ on a SECDED (extended Hamming) block code: the
// receiver corrects single errors in place, requests a retransmission
// on a *detected* double error, and is silently corrupted only by the
// rare >= 3-error patterns that alias onto a single-error syndrome.
// Completes the scheme taxonomy between the paper's pure FEC (fixed
// time, higher laser power) and pure ARQ (lowest power, no single-pass
// guarantee).
//
// Per-block model (n bits, raw error probability p, q = 1 - p):
//   P0 = q^n                      clean
//   P1 = C(n,1) p q^(n-1)         corrected in place
//   P2 = C(n,2) p^2 q^(n-2)       detected -> retransmit
//   P3+ = 1 - P0 - P1 - P2        odd-weight part miscorrects silently,
//                                 even-weight part is detected
// Retransmission probability  P_rtx = P2 + (even part of P3+)
// Residual BER ~ (odd part of P3+) * (w+1)/n with w ~ 3 dominating:
// we bound it with the leading term  P(weight 3) * 4 / n.
#ifndef PHOTECC_CORE_HARQ_HPP
#define PHOTECC_CORE_HARQ_HPP

#include <optional>
#include <string>

#include "photecc/core/channel_power.hpp"
#include "photecc/link/mwsr_channel.hpp"

namespace photecc::core {

/// HARQ configuration: the SECDED code eH(2^m, 2^m - 1 - m).
struct HarqParams {
  unsigned m = 6;  ///< eH(64,57): one block per 64-lambda-ish frame
  double max_retransmission_rate = 0.5;
};

/// Solved HARQ operating point.
struct HarqOperatingPoint {
  double target_ber = 0.0;
  double raw_ber = 0.0;
  double snr = 0.0;
  double op_laser_w = 0.0;
  double p_laser_w = 0.0;
  double retransmission_rate = 0.0;  ///< per block
  double expected_transmissions = 1.0;
  double effective_ct = 1.0;
  double residual_ber = 0.0;
  bool feasible = false;
};

/// Analytic type-I HARQ scheme model over eH(2^m, 2^m - 1 - m).
class HarqScheme {
 public:
  explicit HarqScheme(const HarqParams& params = {});

  [[nodiscard]] std::string name() const;
  [[nodiscard]] const HarqParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] std::size_t block_length() const noexcept { return n_; }
  [[nodiscard]] std::size_t message_length() const noexcept { return k_; }

  /// Residual (post-HARQ) BER at raw channel error probability p:
  /// the silent-miscorrection floor.
  [[nodiscard]] double residual_ber(double raw_p) const;

  /// Probability that a block needs retransmission at raw p.
  [[nodiscard]] double retransmission_rate(double raw_p) const;

  /// Expected communication-time ratio: rate overhead n/k times the
  /// expected number of transmissions.
  [[nodiscard]] double effective_ct(double raw_p) const;

  /// Largest admissible raw p for a target residual BER (also bounded
  /// by the retransmission-rate cap).
  [[nodiscard]] std::optional<double> required_raw_ber(
      double target_ber) const;

  /// Full solve on an MWSR channel.
  [[nodiscard]] HarqOperatingPoint solve(const link::MwsrChannel& channel,
                                         double target_ber) const;

  /// SchemeMetrics-compatible evaluation for side-by-side tables.
  [[nodiscard]] SchemeMetrics evaluate(const link::MwsrChannel& channel,
                                       double target_ber,
                                       const SystemConfig& config = {}) const;

 private:
  HarqParams params_;
  std::size_t n_;
  std::size_t k_;
};

}  // namespace photecc::core

#endif  // PHOTECC_CORE_HARQ_HPP
