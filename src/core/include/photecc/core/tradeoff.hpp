// Power/performance trade-off exploration (paper Section V-C, Fig. 6b):
// sweep (code, BER) combinations, collect (Pchannel, CT) points and
// extract the Pareto front (both objectives minimised).
#ifndef PHOTECC_CORE_TRADEOFF_HPP
#define PHOTECC_CORE_TRADEOFF_HPP

#include <cstddef>
#include <vector>

#include "photecc/core/channel_power.hpp"

namespace photecc::core {

/// Full sweep result: one SchemeMetrics per (code, BER target).
struct TradeoffSweep {
  std::vector<SchemeMetrics> points;

  /// Indices of `points` forming the Pareto front in (Pchannel, CT),
  /// both minimised, considering only feasible points.  Sorted by CT.
  [[nodiscard]] std::vector<std::size_t> pareto_front() const;
};

/// Evaluates every code at every BER target (BER-major, code-minor
/// order).  Cells are evaluated through the same deterministic parallel
/// primitive as explore::SweepRunner (math::parallel_for with
/// slot-indexed writes): `threads` = 1 runs sequentially on the calling
/// thread, 0 uses hardware concurrency, and the returned points are
/// identical for any thread count.  For multi-axis sweeps use
/// explore::ScenarioGrid, the declarative front-end of this engine.
TradeoffSweep sweep_tradeoff(const link::MwsrChannel& channel,
                             const std::vector<ecc::BlockCodePtr>& codes,
                             const std::vector<double>& ber_targets,
                             const SystemConfig& config = {},
                             std::size_t threads = 1);

/// True when `a` is dominated by `b` (b no worse on both objectives and
/// strictly better on at least one).  Infeasible points are dominated by
/// every feasible point.
bool is_dominated(const SchemeMetrics& a, const SchemeMetrics& b);

/// Pareto front of an arbitrary point set (indices into `points`).
std::vector<std::size_t> pareto_front_indices(
    const std::vector<SchemeMetrics>& points);

}  // namespace photecc::core

#endif  // PHOTECC_CORE_TRADEOFF_HPP
