#include "photecc/core/arq.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "photecc/math/modulation.hpp"
#include "photecc/math/roots.hpp"
#include "photecc/math/special.hpp"

#include "photecc/photonics/microring.hpp"

namespace photecc::core {

ArqScheme::ArqScheme(const ArqParams& params) : params_(params) {
  if (params.frame_payload_bits == 0)
    throw std::invalid_argument("ArqScheme: empty frame");
  if (params.crc_width < 1 || params.crc_width > 32)
    throw std::invalid_argument("ArqScheme: CRC width outside [1, 32]");
  if (params.max_frame_error_rate <= 0.0 ||
      params.max_frame_error_rate >= 1.0)
    throw std::invalid_argument("ArqScheme: FER cap outside (0, 1)");
}

std::string ArqScheme::name() const {
  return "ARQ+CRC" + std::to_string(params_.crc_width);
}

std::size_t ArqScheme::frame_bits() const noexcept {
  return params_.frame_payload_bits + params_.crc_width;
}

double ArqScheme::frame_error_rate(double raw_p) const {
  if (raw_p < 0.0 || raw_p > 1.0)
    throw std::domain_error("frame_error_rate: p outside [0, 1]");
  // 1 - (1-p)^bits via expm1/log1p so tiny p does not cancel against
  // the 1.0 (1 - pow(...) loses the FER entirely for p < ~1e-17).
  return -std::expm1(static_cast<double>(frame_bits()) *
                     std::log1p(-raw_p));
}

double ArqScheme::residual_ber(double raw_p) const {
  const double aliasing = std::pow(2.0, -static_cast<double>(
                                             params_.crc_width));
  return 0.5 * frame_error_rate(raw_p) * aliasing;
}

double ArqScheme::effective_ct(double raw_p) const {
  const double fer = frame_error_rate(raw_p);
  if (fer >= 1.0) return std::numeric_limits<double>::infinity();
  const double overhead =
      static_cast<double>(frame_bits()) /
      static_cast<double>(params_.frame_payload_bits);
  return overhead / (1.0 - fer);
}

std::optional<double> ArqScheme::required_raw_ber(double target_ber) const {
  if (target_ber <= 0.0 || target_ber >= 0.5)
    throw std::domain_error("required_raw_ber: target outside (0, 0.5)");
  // residual_ber is increasing in p; the largest admissible p is the
  // smaller of the residual-BER inverse and the FER cap.
  const double p_cap_fer =
      1.0 - std::pow(1.0 - params_.max_frame_error_rate,
                     1.0 / static_cast<double>(frame_bits()));
  if (residual_ber(p_cap_fer) <= target_ber) return p_cap_fer;
  // Explicit saturation at the shared bracket floor (matching
  // ecc::BlockCode::required_raw_ber_checked).
  if (residual_ber(ecc::kMinSearchRawBer) >= target_ber)
    return ecc::kMinSearchRawBer;
  // residual -> 0 with p, so inside the bracket a solution exists;
  // solve by bisection.
  const auto f = [&](double log10_p) {
    return std::log10(residual_ber(std::pow(10.0, log10_p))) -
           std::log10(target_ber);
  };
  const auto result = math::bisect(f, ecc::kMinSearchLog10RawBer,
                                   std::log10(p_cap_fer));
  if (!result || !result->converged) return std::nullopt;
  return std::pow(10.0, result->root);
}

ArqOperatingPoint ArqScheme::solve(const link::MwsrChannel& channel,
                                   double target_ber) const {
  ArqOperatingPoint point;
  point.target_ber = target_ber;
  const auto p = required_raw_ber(target_ber);
  if (!p) return point;
  point.raw_ber = *p;
  point.snr =
      math::snr_from_ber_clamped(channel.params().modulation, *p);
  point.frame_error_rate = frame_error_rate(*p);
  point.expected_transmissions = 1.0 / (1.0 - point.frame_error_rate);
  point.effective_ct = effective_ct(*p);
  point.residual_ber = residual_ber(*p);

  const std::size_t ch = channel.worst_channel();
  const double margin =
      channel.eye_transmission(ch) - channel.crosstalk_transmission(ch);
  if (margin <= 0.0) return point;
  const auto& det = channel.detector().params();
  point.op_laser_w =
      point.snr * det.dark_current_a / (det.responsivity_a_per_w * margin);
  const auto electrical = channel.laser().electrical_power(
      point.op_laser_w, channel.environment().activity);
  if (!electrical) return point;
  point.p_laser_w = *electrical;
  point.feasible = true;
  return point;
}

SchemeMetrics ArqScheme::evaluate(const link::MwsrChannel& channel,
                                  double target_ber,
                                  const SystemConfig& config) const {
  const ArqOperatingPoint arq = solve(channel, target_ber);
  SchemeMetrics m;
  m.scheme = name();
  m.modulation = channel.params().modulation;
  const double bits_per_symbol =
      static_cast<double>(math::bits_per_symbol(m.modulation));
  m.target_ber = target_ber;
  m.code_rate = static_cast<double>(params_.frame_payload_bits) /
                static_cast<double>(frame_bits());
  m.ct = arq.effective_ct / bits_per_symbol;
  m.feasible = arq.feasible;
  m.operating_point.target_ber = target_ber;
  m.operating_point.raw_ber = arq.raw_ber;
  m.operating_point.snr = arq.snr;
  m.operating_point.op_laser_w = arq.op_laser_w;
  m.operating_point.p_laser_w = arq.p_laser_w;
  m.operating_point.feasible = arq.feasible;
  m.p_mr_w = photonics::multilevel_modulation_power_w(
      channel.params().ring.modulation_power_w,
      math::levels(m.modulation));
  // CRC hardware is far simpler than a Hamming codec; charge the
  // uncoded interface figures (SER/DES + mux dominate either way).
  m.p_enc_dec_w = config.interface_pair.enc_dec_power_per_wavelength_w(
      interface::InterfaceMode::kUncoded, config.wavelengths);
  if (m.feasible) {
    m.p_laser_w = arq.p_laser_w;
    m.p_channel_w = m.p_laser_w + m.p_mr_w + m.p_enc_dec_w;
    // Energy per *delivered* payload bit: retransmissions burn channel
    // time at the same power, so E/bit scales with the effective CT.
    m.energy_per_bit_j = m.p_channel_w * m.ct / config.f_mod_hz;
    m.p_waveguide_w =
        m.p_channel_w * static_cast<double>(config.wavelengths);
    m.p_interconnect_w =
        m.p_waveguide_w *
        static_cast<double>(config.waveguides_per_channel) *
        static_cast<double>(config.oni_count);
  }
  return m;
}

}  // namespace photecc::core
