#include "photecc/core/manager.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "photecc/link/snr_solver.hpp"

namespace photecc::core {

std::string to_string(Policy policy) {
  switch (policy) {
    case Policy::kMinPower: return "min-power";
    case Policy::kMinEnergy: return "min-energy";
    case Policy::kMinTime: return "min-time";
  }
  throw std::logic_error("to_string: bad Policy");
}

std::optional<Policy> policy_from_string(std::string_view name) {
  for (const Policy policy : all_policies())
    if (name == to_string(policy)) return policy;
  return std::nullopt;
}

const std::vector<Policy>& all_policies() {
  static const std::vector<Policy> policies{
      Policy::kMinPower, Policy::kMinEnergy, Policy::kMinTime};
  return policies;
}

LinkManager::LinkManager(link::MwsrChannel channel,
                         std::vector<ecc::BlockCodePtr> codes,
                         SystemConfig config)
    : channel_(std::move(channel)),
      codes_(std::move(codes)),
      config_(config) {
  if (codes_.empty())
    throw std::invalid_argument("LinkManager: empty scheme menu");
  for (const auto& code : codes_)
    if (!code) throw std::invalid_argument("LinkManager: null code");
}

std::vector<SchemeMetrics> LinkManager::candidates(double target_ber) const {
  return candidates(target_ber, channel_.environment());
}

std::vector<SchemeMetrics> LinkManager::candidates(
    double target_ber, const env::EnvironmentSample& environment) const {
  return evaluate_schemes(channel_, codes_, target_ber, config_,
                          environment);
}

std::optional<LinkConfiguration> LinkManager::configure(
    const CommunicationRequest& request) const {
  return configure(request, channel_.environment());
}

std::optional<LinkConfiguration> LinkManager::configure(
    const CommunicationRequest& request,
    const env::EnvironmentSample& environment) const {
  const std::vector<SchemeMetrics> all =
      candidates(request.target_ber, environment);

  std::optional<std::size_t> best;
  const auto objective = [&](const SchemeMetrics& m) {
    switch (request.policy) {
      case Policy::kMinPower: return m.p_channel_w;
      case Policy::kMinEnergy: return m.energy_per_bit_j;
      case Policy::kMinTime: return m.ct;
    }
    throw std::logic_error("configure: bad Policy");
  };
  for (std::size_t i = 0; i < all.size(); ++i) {
    const SchemeMetrics& m = all[i];
    if (!m.feasible) continue;
    if (request.max_ct && m.ct > *request.max_ct + 1e-12) continue;
    if (request.max_channel_power_w &&
        m.p_channel_w > *request.max_channel_power_w) continue;
    if (!best || objective(m) < objective(all[*best]) ||
        (objective(m) == objective(all[*best]) &&
         m.p_channel_w < all[*best].p_channel_w)) {
      best = i;
    }
  }
  if (!best) return std::nullopt;

  LinkConfiguration configuration;
  configuration.code = codes_[*best];
  configuration.metrics = all[*best];
  configuration.laser_output_w = all[*best].operating_point.op_laser_w;
  return configuration;
}

double LinkManager::best_reachable_ber() const {
  return best_reachable_ber(channel_.environment());
}

double LinkManager::best_reachable_ber(
    const env::EnvironmentSample& environment) const {
  double best = 0.5;
  for (const auto& code : codes_)
    best = std::min(
        best, link::best_achievable_ber(channel_, *code, environment));
  return best;
}

RecalibratingManager::RecalibratingManager(
    std::shared_ptr<const LinkManager> manager, RecalibrationConfig config)
    : manager_(std::move(manager)), config_(config) {
  if (!manager_)
    throw std::invalid_argument("RecalibratingManager: null manager");
  if (config_.activity_hysteresis < 0.0)
    throw std::invalid_argument(
        "RecalibratingManager: negative hysteresis");
}

RecalibratingManager::Outcome RecalibratingManager::configure(
    const CommunicationRequest& request,
    const env::EnvironmentSample& environment) {
  CacheEntry* entry = nullptr;
  for (CacheEntry& candidate : cache_) {
    if (candidate.request == request) {
      entry = &candidate;
      break;
    }
  }
  const bool drifted =
      entry != nullptr &&
      std::abs(environment.activity - entry->activity) >
          config_.activity_hysteresis;
  if (entry != nullptr && !drifted) {
    ++stats_.reuses;
    return {entry->configuration, false};
  }
  if (entry == nullptr) {
    cache_.push_back({request, 0.0, std::nullopt});
    entry = &cache_.back();
  }
  entry->activity = environment.activity;
  entry->configuration = manager_->configure(request, environment);
  ++stats_.solves;
  // Only a drift-triggered re-solve is a recalibration; the cold first
  // solve of a request is the ordinary manager round trip.
  if (drifted) {
    ++stats_.recalibrations;
    stats_.energy_j += config_.recalibration_energy_j;
    stats_.latency_s += config_.recalibration_latency_s;
  }
  return {entry->configuration, drifted};
}

}  // namespace photecc::core
