#include "photecc/core/manager.hpp"

#include <algorithm>
#include <stdexcept>

#include "photecc/link/snr_solver.hpp"

namespace photecc::core {

std::string to_string(Policy policy) {
  switch (policy) {
    case Policy::kMinPower: return "min-power";
    case Policy::kMinEnergy: return "min-energy";
    case Policy::kMinTime: return "min-time";
  }
  throw std::logic_error("to_string: bad Policy");
}

std::optional<Policy> policy_from_string(std::string_view name) {
  for (const Policy policy : all_policies())
    if (name == to_string(policy)) return policy;
  return std::nullopt;
}

const std::vector<Policy>& all_policies() {
  static const std::vector<Policy> policies{
      Policy::kMinPower, Policy::kMinEnergy, Policy::kMinTime};
  return policies;
}

LinkManager::LinkManager(link::MwsrChannel channel,
                         std::vector<ecc::BlockCodePtr> codes,
                         SystemConfig config)
    : channel_(std::move(channel)),
      codes_(std::move(codes)),
      config_(config) {
  if (codes_.empty())
    throw std::invalid_argument("LinkManager: empty scheme menu");
  for (const auto& code : codes_)
    if (!code) throw std::invalid_argument("LinkManager: null code");
}

std::vector<SchemeMetrics> LinkManager::candidates(double target_ber) const {
  return evaluate_schemes(channel_, codes_, target_ber, config_);
}

std::optional<LinkConfiguration> LinkManager::configure(
    const CommunicationRequest& request) const {
  const std::vector<SchemeMetrics> all = candidates(request.target_ber);

  std::optional<std::size_t> best;
  const auto objective = [&](const SchemeMetrics& m) {
    switch (request.policy) {
      case Policy::kMinPower: return m.p_channel_w;
      case Policy::kMinEnergy: return m.energy_per_bit_j;
      case Policy::kMinTime: return m.ct;
    }
    throw std::logic_error("configure: bad Policy");
  };
  for (std::size_t i = 0; i < all.size(); ++i) {
    const SchemeMetrics& m = all[i];
    if (!m.feasible) continue;
    if (request.max_ct && m.ct > *request.max_ct + 1e-12) continue;
    if (request.max_channel_power_w &&
        m.p_channel_w > *request.max_channel_power_w) continue;
    if (!best || objective(m) < objective(all[*best]) ||
        (objective(m) == objective(all[*best]) &&
         m.p_channel_w < all[*best].p_channel_w)) {
      best = i;
    }
  }
  if (!best) return std::nullopt;

  LinkConfiguration configuration;
  configuration.code = codes_[*best];
  configuration.metrics = all[*best];
  configuration.laser_output_w = all[*best].operating_point.op_laser_w;
  return configuration;
}

double LinkManager::best_reachable_ber() const {
  double best = 0.5;
  for (const auto& code : codes_)
    best = std::min(best, link::best_achievable_ber(channel_, *code));
  return best;
}

}  // namespace photecc::core
