#include "photecc/core/report.hpp"

#include <algorithm>

#include "photecc/math/units.hpp"

namespace photecc::core {

math::TextTable metrics_table(const std::vector<SchemeMetrics>& metrics) {
  math::TextTable table({"scheme", "target BER", "SNR", "OPlaser [uW]",
                         "Plaser [mW]", "Pchannel [mW]", "CT",
                         "E/bit [pJ]", "feasible"});
  for (const auto& m : metrics) {
    table.add_row({
        scheme_display_name(m),
        math::format_sci(m.target_ber, 0),
        math::format_fixed(m.operating_point.snr, 2),
        m.feasible ? math::format_fixed(
                         math::as_micro(m.operating_point.op_laser_w), 1)
                   // append() instead of "literal" + string: GCC 12's
                   // -Wrestrict false positive (PR105651) fires on the
                   // operator+ form under -O2.
                   : std::string(">").append(math::format_fixed(
                         math::as_micro(m.operating_point.op_laser_w), 1)),
        m.feasible ? math::format_fixed(math::as_milli(m.p_laser_w), 2)
                   : "-",
        m.feasible ? math::format_fixed(math::as_milli(m.p_channel_w), 2)
                   : "-",
        math::format_fixed(m.ct, 3),
        m.feasible ? math::format_fixed(math::as_pico(m.energy_per_bit_j), 2)
                   : "-",
        m.feasible ? "yes" : "NO",
    });
  }
  return table;
}

math::TextTable breakdown_table(const std::vector<SchemeMetrics>& metrics) {
  math::TextTable table({"scheme", "Penc+dec [uW]", "PMR [mW]",
                         "Plaser [mW]", "Pchannel [mW]", "laser share"});
  for (const auto& m : metrics) {
    if (!m.feasible) {
      table.add_row({scheme_display_name(m), "-", "-", "-", "infeasible",
                     "-"});
      continue;
    }
    table.add_row({
        scheme_display_name(m),
        math::format_fixed(math::as_micro(m.p_enc_dec_w), 2),
        math::format_fixed(math::as_milli(m.p_mr_w), 2),
        math::format_fixed(math::as_milli(m.p_laser_w), 2),
        math::format_fixed(math::as_milli(m.p_channel_w), 2),
        math::format_fixed(100.0 * m.p_laser_w / m.p_channel_w, 1) + " %",
    });
  }
  return table;
}

math::TextTable pareto_table(const TradeoffSweep& sweep) {
  const std::vector<std::size_t> front = sweep.pareto_front();
  math::TextTable table({"scheme", "target BER", "CT", "Pchannel [mW]",
                         "E/bit [pJ]", "pareto"});
  for (std::size_t i = 0; i < sweep.points.size(); ++i) {
    const auto& m = sweep.points[i];
    const bool on_front =
        std::find(front.begin(), front.end(), i) != front.end();
    table.add_row({
        scheme_display_name(m),
        math::format_sci(m.target_ber, 0),
        math::format_fixed(m.ct, 3),
        m.feasible ? math::format_fixed(math::as_milli(m.p_channel_w), 2)
                   : "infeasible",
        m.feasible ? math::format_fixed(math::as_pico(m.energy_per_bit_j), 2)
                   : "-",
        on_front ? "*" : "",
    });
  }
  return table;
}

void print_table(std::ostream& os, const std::string& caption,
                 const math::TextTable& table) {
  os << caption << '\n';
  table.render(os);
  os << '\n';
}

}  // namespace photecc::core
