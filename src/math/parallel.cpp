#include "photecc/math/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace photecc::math {

std::size_t default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads == 0) threads = default_thread_count();
  if (threads > n) threads = n;
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;
  const auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (std::size_t t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (auto& thread : pool) thread.join();
  if (error) std::rethrow_exception(error);
}

void parallel_for_blocks(
    std::size_t n, std::size_t block_size, std::size_t threads,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (block_size == 0) block_size = 1;
  const std::size_t blocks = (n + block_size - 1) / block_size;
  parallel_for(blocks, threads, [&](std::size_t b) {
    const std::size_t begin = b * block_size;
    const std::size_t end = std::min(n, begin + block_size);
    fn(begin, end);
  });
}

}  // namespace photecc::math
