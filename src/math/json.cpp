#include "photecc/math/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace photecc::math::json {

Value::Type Value::type() const noexcept {
  switch (data_.index()) {
    case 0: return Type::kNull;
    case 1: return Type::kBool;
    case 2: return Type::kNumber;
    case 3: return Type::kString;
    case 4: return Type::kArray;
    default: return Type::kObject;
  }
}

std::string Value::type_name() const {
  switch (type()) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kNumber: return "number";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "?";
}

namespace {

[[noreturn]] void type_mismatch(const Value& value, const char* wanted) {
  throw TypeError(std::string("expected ") + wanted + ", got " +
                  value.type_name());
}

}  // namespace

bool Value::as_bool() const {
  if (const bool* b = std::get_if<bool>(&data_)) return *b;
  type_mismatch(*this, "bool");
}

const std::string& Value::number_token() const {
  if (const Number* n = std::get_if<Number>(&data_)) return n->token;
  type_mismatch(*this, "number");
}

double Value::as_double() const {
  const std::string& token = number_token();
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size())
    throw TypeError("number token '" + token + "' does not fit a double");
  return value;
}

std::uint64_t Value::as_uint64() const {
  const std::string& token = number_token();
  if (token.find_first_of(".eE-") != std::string::npos)
    throw TypeError("expected unsigned integer, got '" + token + "'");
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size())
    throw TypeError("integer '" + token + "' does not fit 64 bits");
  return value;
}

const std::string& Value::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&data_)) return *s;
  type_mismatch(*this, "string");
}

const Value::Array& Value::as_array() const {
  if (const Array* a = std::get_if<Array>(&data_)) return *a;
  type_mismatch(*this, "array");
}

const Value::Object& Value::as_object() const {
  if (const Object* o = std::get_if<Object>(&data_)) return *o;
  type_mismatch(*this, "object");
}

const Value* Value::find(const std::string& key) const {
  for (const auto& [name, value] : as_object())
    if (name == key) return &value;
  return nullptr;
}

namespace {

constexpr std::size_t kMaxDepth = 128;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& reason) const {
    // Derive 1-based line/column from the byte offset on demand; errors
    // are rare, so the rescan costs nothing on the happy path.
    std::size_t line = 1, column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw ParseError(reason, line, column);
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

  void skip_whitespace() {
    while (!at_end() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                         peek() == '\r'))
      ++pos_;
  }

  void expect(char c, const char* context) {
    if (at_end())
      fail(std::string("unexpected end of input, expected '") + c + "' " +
           context);
    if (peek() != c)
      fail(std::string("expected '") + c + "' " + context + ", got '" +
           peek() + "'");
    ++pos_;
  }

  Value parse_value(std::size_t depth) {
    if (depth >= kMaxDepth) fail("nesting deeper than 128 levels");
    skip_whitespace();
    if (at_end()) fail("unexpected end of input, expected a value");
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Value::make_string(parse_string());
      case 't': return parse_literal("true", Value::make_bool(true));
      case 'f': return parse_literal("false", Value::make_bool(false));
      case 'n': return parse_literal("null", Value{});
      default: return parse_number();
    }
  }

  Value parse_literal(std::string_view word, Value value) {
    if (text_.substr(pos_, word.size()) != word)
      fail("invalid literal (expected one of true/false/null)");
    pos_ += word.size();
    return value;
  }

  Value parse_object(std::size_t depth) {
    expect('{', "to open object");
    Value::Object members;
    skip_whitespace();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return Value::make_object(std::move(members));
    }
    while (true) {
      skip_whitespace();
      if (at_end() || peek() != '"')
        fail("expected '\"' to start an object key");
      std::string key = parse_string();
      for (const auto& [existing, value] : members) {
        (void)value;
        if (existing == key) fail("duplicate object key \"" + key + "\"");
      }
      skip_whitespace();
      expect(':', "after object key");
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      if (at_end()) fail("unexpected end of input inside object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}', "to close object");
      return Value::make_object(std::move(members));
    }
  }

  Value parse_array(std::size_t depth) {
    expect('[', "to open array");
    Value::Array elements;
    skip_whitespace();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return Value::make_array(std::move(elements));
    }
    while (true) {
      elements.push_back(parse_value(depth + 1));
      skip_whitespace();
      if (at_end()) fail("unexpected end of input inside array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']', "to close array");
      return Value::make_array(std::move(elements));
    }
  }

  std::string parse_string() {
    expect('"', "to open string");
    std::string out;
    while (true) {
      if (at_end()) fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(peek());
      ++pos_;
      if (c == '"') return out;
      if (c == '\\') {
        if (at_end()) fail("unterminated escape sequence");
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': append_unicode_escape(out); break;
          default:
            fail(std::string("invalid escape character '\\") + esc + "'");
        }
      } else if (c < 0x20) {
        fail("unescaped control character in string");
      } else {
        out += static_cast<char>(c);
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid hex digit in \\u escape");
    }
    pos_ += 4;
    return code;
  }

  void append_unicode_escape(std::string& out) {
    unsigned code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: the low half must follow immediately.
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u')
        fail("high surrogate not followed by \\u low surrogate");
      pos_ += 2;
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF)
        fail("invalid low surrogate in \\u pair");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("lone low surrogate");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    const auto digit = [this] {
      return !at_end() && peek() >= '0' && peek() <= '9';
    };
    if (!at_end() && peek() == '-') ++pos_;
    if (!digit()) fail("invalid number (expected a digit)");
    if (peek() == '0') {
      ++pos_;
      if (digit()) fail("invalid number (leading zero)");
    } else {
      while (digit()) ++pos_;
    }
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (!digit()) fail("invalid number (expected digit after '.')");
      while (digit()) ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digit()) fail("invalid number (expected digit in exponent)");
      while (digit()) ++pos_;
    }
    return Value::make_number(std::string(text_.substr(start, pos_ - start)));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser{text}.run(); }

std::string escape(std::string_view raw) {
  std::string out = "\"";
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string number(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[64];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  return ec == std::errc{} ? std::string(buffer, ptr) : std::string("null");
}

namespace {

void write_value(const Value& value, std::string& out) {
  switch (value.type()) {
    case Value::Type::kNull:
      out += "null";
      break;
    case Value::Type::kBool:
      out += value.as_bool() ? "true" : "false";
      break;
    case Value::Type::kNumber:
      // The verbatim source token: numbers survive a parse/write round
      // trip byte-for-byte (a double detour would reformat "1e-06").
      out += value.number_token();
      break;
    case Value::Type::kString:
      out += escape(value.as_string());
      break;
    case Value::Type::kArray: {
      out += '[';
      const Value::Array& array = value.as_array();
      for (std::size_t i = 0; i < array.size(); ++i) {
        if (i) out += ',';
        write_value(array[i], out);
      }
      out += ']';
      break;
    }
    case Value::Type::kObject: {
      out += '{';
      const Value::Object& object = value.as_object();
      for (std::size_t i = 0; i < object.size(); ++i) {
        if (i) out += ',';
        out += escape(object[i].first);
        out += ':';
        write_value(object[i].second, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string write(const Value& value) {
  std::string out;
  write_value(value, out);
  return out;
}

}  // namespace photecc::math::json
