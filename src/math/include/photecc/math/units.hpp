// Unit helpers and physical constants used across photecc.
//
// All internal computation is done in SI base units (watts, metres,
// seconds, amperes).  These helpers make intent explicit at call sites
// (`milli_watts(14.3)`) and centralise the dB conversions that the
// photonic link budget is built from.
#ifndef PHOTECC_MATH_UNITS_HPP
#define PHOTECC_MATH_UNITS_HPP

#include <cmath>

namespace photecc::math {

// ---- scale helpers (value -> SI) -------------------------------------
constexpr double kilo  = 1e3;
constexpr double mega  = 1e6;
constexpr double giga  = 1e9;
constexpr double milli = 1e-3;
constexpr double micro = 1e-6;
constexpr double nano  = 1e-9;
constexpr double pico  = 1e-12;
constexpr double femto = 1e-15;

/// Watts from milliwatts.
constexpr double milli_watts(double mw) noexcept { return mw * milli; }
/// Watts from microwatts.
constexpr double micro_watts(double uw) noexcept { return uw * micro; }
/// Metres from centimetres.
constexpr double centi_metres(double cm) noexcept { return cm * 1e-2; }
/// Metres from nanometres.
constexpr double nano_metres(double nm) noexcept { return nm * nano; }
/// Hertz from gigahertz.
constexpr double giga_hertz(double ghz) noexcept { return ghz * giga; }
/// Amperes from microamperes.
constexpr double micro_amps(double ua) noexcept { return ua * micro; }

/// SI value expressed in milli-units (for reporting).
constexpr double as_milli(double v) noexcept { return v / milli; }
/// SI value expressed in micro-units (for reporting).
constexpr double as_micro(double v) noexcept { return v / micro; }
/// SI value expressed in pico-units (for reporting).
constexpr double as_pico(double v) noexcept { return v / pico; }

// ---- decibel conversions ---------------------------------------------

/// Power ratio -> dB.  Requires ratio > 0.
inline double to_db(double power_ratio) noexcept {
  return 10.0 * std::log10(power_ratio);
}

/// dB -> power ratio.
inline double from_db(double db) noexcept { return std::pow(10.0, db / 10.0); }

/// A loss expressed in dB (positive number) -> multiplicative transmission.
inline double loss_db_to_transmission(double loss_db) noexcept {
  return from_db(-loss_db);
}

/// Multiplicative transmission (0..1] -> loss in dB (positive number).
inline double transmission_to_loss_db(double transmission) noexcept {
  return -to_db(transmission);
}

// ---- physical constants -----------------------------------------------
/// Speed of light in vacuum [m/s].
constexpr double speed_of_light = 299'792'458.0;
/// Elementary charge [C].
constexpr double elementary_charge = 1.602'176'634e-19;
/// Boltzmann constant [J/K].
constexpr double boltzmann = 1.380'649e-23;

}  // namespace photecc::math

#endif  // PHOTECC_MATH_UNITS_HPP
