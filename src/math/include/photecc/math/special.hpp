// Special functions needed by the BER models of the paper:
//   Eq. (3)  p   = 1/2 * erfc(sqrt(SNR))
//   inverse  SNR = [erfc^-1(2 p)]^2
//
// The standard library provides erfc but not its inverse; we implement
// erfc_inv with a rational initial guess refined by Halley iterations,
// accurate to ~1e-14 relative over the full useful domain (arguments in
// (0, 2), i.e. BERs down to denormal range).
#ifndef PHOTECC_MATH_SPECIAL_HPP
#define PHOTECC_MATH_SPECIAL_HPP

namespace photecc::math {

/// Inverse complementary error function: erfc(erfc_inv(y)) == y for
/// y in (0, 2).  Returns +inf as y -> 0+ and -inf as y -> 2-.
/// Throws std::domain_error outside [0, 2].
double erfc_inv(double y);

/// Inverse error function: erf(erf_inv(x)) == x for x in (-1, 1).
double erf_inv(double x);

/// Gaussian tail Q(x) = P(N(0,1) > x) = 1/2 erfc(x / sqrt(2)).
double q_function(double x);

/// Inverse of the Gaussian tail: q_inv(q_function(x)) == x.
double q_inv(double p);

/// Raw OOK bit-error probability from linear SNR, Eq. (3) of the paper:
/// p = 1/2 erfc(sqrt(snr)).  Requires snr >= 0.
double raw_ber_from_snr(double snr);

/// Inverse of raw_ber_from_snr: linear SNR required so that the raw
/// channel error probability equals `ber`.  Requires ber in (0, 0.5].
double snr_from_raw_ber(double ber);

/// log10 of raw_ber_from_snr, stable for very large SNR where the BER
/// underflows double precision (uses the asymptotic expansion of erfc).
double log10_raw_ber_from_snr(double snr);

}  // namespace photecc::math

#endif  // PHOTECC_MATH_SPECIAL_HPP
