// Multilevel signaling formats and their BER mappings.
//
// The paper evaluates OOK links only; following the cross-layer analysis
// of Karempudi et al. ("Photonic Networks-on-Chip Employing Multilevel
// Signaling"), M-ary PAM reuses the same eye opening for M amplitude
// levels: each symbol carries log2(M) bits at the same symbol rate, at
// the cost of splitting the eye into M-1 sub-eyes.
//
// Conventions (consistent with special.hpp and channel_sim's AWGN
// calibration, where a channel of linear SNR `snr` has OOK error
// probability exactly 1/2 erfc(sqrt(snr))):
//
//   per-boundary error  p_b = 1/2 erfc(sqrt(snr) / (M-1))
//   symbol error rate   SER = 2 (M-1)/M * p_b      (interior levels see
//                                                   two boundaries)
//   Gray-coded BER      BER = SER / log2(M)        (adjacent-level slips
//                                                   flip exactly one bit)
//
// M = 2 reduces exactly to the paper's Eq. 3.  Because the erfc argument
// is linear in the per-sub-eye amplitude, reaching a given raw BER with
// M-PAM requires (M-1)^2 times the OOK SNR — and, through Eq. 4's linear
// SNR -> optical-power map, (M-1)^2 times the laser output power — while
// cutting the serial transfer time by log2(M).
#ifndef PHOTECC_MATH_MODULATION_HPP
#define PHOTECC_MATH_MODULATION_HPP

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace photecc::math {

/// Signaling format of one wavelength channel.
enum class Modulation {
  kOok,   ///< 2-level on-off keying (the paper's format)
  kPam4,  ///< 4-level PAM, 2 bits/symbol
  kPam8,  ///< 8-level PAM, 3 bits/symbol
};

/// Amplitude levels M of the format (2, 4, 8).
[[nodiscard]] std::size_t levels(Modulation modulation);

/// Payload bits carried per symbol: log2(M).
[[nodiscard]] std::size_t bits_per_symbol(Modulation modulation);

/// Canonical lower-case name: "ook", "pam4", "pam8".
[[nodiscard]] std::string to_string(Modulation modulation);

/// Inverse of to_string (case-sensitive); nullopt for unknown names.
[[nodiscard]] std::optional<Modulation> modulation_from_string(
    std::string_view name);

/// Every supported format, in level order.
[[nodiscard]] const std::vector<Modulation>& all_modulations();

/// log2(M) for a raw level count M; the shared validation of every
/// levels-keyed entry point.  Throws std::invalid_argument unless M is
/// a power of two >= 2.
[[nodiscard]] std::size_t pam_bits_per_symbol(std::size_t levels);

/// Symbol error rate of Gray-coded M-PAM at full-eye linear SNR `snr`:
/// SER = (M-1)/M * erfc(sqrt(snr)/(M-1)).  Requires snr >= 0 and
/// `levels` a power of two >= 2.
[[nodiscard]] double pam_ser_from_snr(double snr, std::size_t levels);

/// Gray-coded bit error rate: SER / log2(M).  For levels == 2 this is
/// exactly raw_ber_from_snr (Eq. 3).
[[nodiscard]] double pam_ber_from_snr(double snr, std::size_t levels);

/// Largest BER the format can produce (at SNR = 0):
/// (M-1) / (M log2(M)); 0.5 for OOK, 0.375 for PAM4.
[[nodiscard]] double max_pam_ber(std::size_t levels);

/// Inverse of pam_ber_from_snr: full-eye linear SNR required for a raw
/// BER of `ber`.  Requires ber in (0, max_pam_ber(levels)].
[[nodiscard]] double snr_from_pam_ber(double ber, std::size_t levels);

/// Convenience overloads keyed by format.
[[nodiscard]] double ber_from_snr(Modulation modulation, double snr);
[[nodiscard]] double snr_from_ber(Modulation modulation, double ber);

/// Like snr_from_ber, but a raw BER at or above the format's zero-SNR
/// error rate max_pam_ber returns 0 (no eye needed) instead of
/// throwing — the solver-facing form: code inversions can demand raw
/// BERs (up to 0.5) that a denser constellation produces at zero SNR.
[[nodiscard]] double snr_from_ber_clamped(Modulation modulation, double ber);

}  // namespace photecc::math

#endif  // PHOTECC_MATH_MODULATION_HPP
