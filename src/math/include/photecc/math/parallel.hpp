// Deterministic parallel execution over an index space — the execution
// primitive shared by core::sweep_tradeoff and explore::SweepRunner.
//
// Indices are handed out through an atomic counter (work-stealing from a
// shared queue of one-cell tasks), so the *scheduling* is
// nondeterministic; callers MUST write the result of cell i into slot i
// of a pre-sized container.  With that convention the output is
// byte-identical for any thread count, which is what lets the explore
// engine promise "parallel == sequential" exports.
#ifndef PHOTECC_MATH_PARALLEL_HPP
#define PHOTECC_MATH_PARALLEL_HPP

#include <cstddef>
#include <functional>

namespace photecc::math {

/// Worker count used when a caller passes threads == 0:
/// std::thread::hardware_concurrency(), or 1 when it is unknown.
[[nodiscard]] std::size_t default_thread_count();

/// Evaluates fn(i) for every i in [0, n) exactly once using `threads`
/// workers (0 = default_thread_count(); 1 = inline on the calling
/// thread, no spawning).  Blocks until every index has been evaluated.
/// If any invocation throws, remaining indices are abandoned and the
/// first exception is rethrown on the calling thread after the workers
/// join.
void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t)>& fn);

/// Evaluates fn(begin, end) over a FIXED partition of [0, n) into
/// contiguous blocks of `block_size` indices (the last block may be
/// short).  The partition depends only on (n, block_size) — never on
/// the thread count — and blocks are handed to workers through the same
/// atomic queue as parallel_for, so slot-indexed writers stay
/// byte-identical at any thread count while each worker sees an
/// axis-contiguous index range (what keeps sweep warm-starts valid
/// under work stealing).  block_size == 0 is treated as 1.  Exception
/// semantics match parallel_for.
void parallel_for_blocks(std::size_t n, std::size_t block_size,
                         std::size_t threads,
                         const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace photecc::math

#endif  // PHOTECC_MATH_PARALLEL_HPP
