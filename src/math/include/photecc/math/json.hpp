// Strict JSON reader — the parsing twin of the repo's hand-rolled JSON
// writers (explore::ExperimentResult::write_json, the bench summary
// blocks, spec::ExperimentSpec::to_json).
//
// Design constraints, in order:
//   1. *Strict*: full RFC 8259 grammar, nothing more.  Duplicate object
//      keys, trailing garbage, control characters in strings, lone
//      surrogates, leading zeros and truncated input are all hard
//      errors — a config that parses is a config whose meaning is
//      unambiguous.
//   2. *Precise errors*: every rejection carries 1-based line/column
//      and says what was expected, so a spec-layer caller can prepend a
//      field path and hand the user an actionable message.
//   3. *Exact numbers*: a Number value keeps its source token.
//      as_double() converts via from_chars (shortest-round-trip exact);
//      as_uint64() re-parses the token as a decimal integer so 64-bit
//      seeds survive even beyond 2^53 where a double detour would
//      silently round.
//
// Objects preserve insertion order (vector of pairs, like the writers),
// so reader + writer compose to byte-stable round trips.
#ifndef PHOTECC_MATH_JSON_HPP
#define PHOTECC_MATH_JSON_HPP

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace photecc::math::json {

/// Parse failure: `what()` is "json parse error at line L, column C:
/// <reason>"; line/column are also exposed for callers that want them.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& reason, std::size_t line, std::size_t column)
      : std::runtime_error("json parse error at line " +
                           std::to_string(line) + ", column " +
                           std::to_string(column) + ": " + reason),
        line_(line),
        column_(column) {}

  [[nodiscard]] std::size_t line() const noexcept { return line_; }
  [[nodiscard]] std::size_t column() const noexcept { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

/// Type-mismatch or range failure on an accessor of an already-parsed
/// Value ("expected string, got number").
class TypeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One parsed JSON value.  Accessors throw TypeError on kind mismatch.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Value>;
  /// Insertion-ordered; the parser guarantees key uniqueness.
  using Object = std::vector<std::pair<std::string, Value>>;

  Value() : data_(nullptr) {}  // null
  static Value make_bool(bool b) { return Value{Data{b}}; }
  static Value make_number(std::string token) {
    return Value{Data{Number{std::move(token)}}};
  }
  static Value make_string(std::string s) { return Value{Data{std::move(s)}}; }
  static Value make_array(Array a) { return Value{Data{std::move(a)}}; }
  static Value make_object(Object o) { return Value{Data{std::move(o)}}; }

  [[nodiscard]] Type type() const noexcept;
  /// Lower-case type name ("null", "bool", "number", ...), for messages.
  [[nodiscard]] std::string type_name() const;

  [[nodiscard]] bool is_null() const noexcept {
    return type() == Type::kNull;
  }

  [[nodiscard]] bool as_bool() const;
  /// Exact double of a number token (from_chars).
  [[nodiscard]] double as_double() const;
  /// Exact unsigned integer; TypeError when the token is negative,
  /// fractional, uses an exponent, or overflows 64 bits.
  [[nodiscard]] std::uint64_t as_uint64() const;
  /// The verbatim source token of a number ("1e-06", "4096", ...).
  [[nodiscard]] const std::string& number_token() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; nullptr when absent (TypeError on non-object).
  [[nodiscard]] const Value* find(const std::string& key) const;

 private:
  struct Number {
    std::string token;
  };
  using Data = std::variant<std::nullptr_t, bool, Number, std::string, Array,
                            Object>;

  explicit Value(Data data) : data_(std::move(data)) {}

  Data data_;
};

/// Parses exactly one JSON document (any trailing non-whitespace is an
/// error).  Throws ParseError.  Nesting is limited to 128 levels so
/// adversarial input ("[[[[…") cannot exhaust the stack.
[[nodiscard]] Value parse(std::string_view text);

/// Writer-side helpers shared with the hand-rolled emitters:

/// Quotes and escapes one string ('ab"c' -> "\"ab\\\"c\"").
[[nodiscard]] std::string escape(std::string_view raw);

/// Shortest round-trip number emission (std::to_chars): deterministic,
/// and parse(number(x)).as_double() == x exactly.  Non-finite values
/// emit "null" (JSON has no NaN/Inf).
[[nodiscard]] std::string number(double value);

/// Minified single-line emission of a parsed Value: no whitespace, keys
/// in insertion order, number tokens verbatim.  parse(write(v)) is the
/// same Value, and write(parse(text)) is a canonical minification of
/// `text` — what the serve layer uses to embed a multi-line spec
/// document in a one-line NDJSON request.
[[nodiscard]] std::string write(const Value& value);

}  // namespace photecc::math::json

#endif  // PHOTECC_MATH_JSON_HPP
