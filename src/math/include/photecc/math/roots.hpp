// Scalar root finding used to invert the paper's BER / link models
// (Eq. 2 inversion, laser operating-point solves).
#ifndef PHOTECC_MATH_ROOTS_HPP
#define PHOTECC_MATH_ROOTS_HPP

#include <functional>
#include <optional>

namespace photecc::math {

/// Options controlling the iterative solvers.
struct RootOptions {
  double x_tolerance = 1e-14;   ///< absolute tolerance on the root
  double f_tolerance = 0.0;     ///< |f| early-exit tolerance (0 = off)
  int max_iterations = 200;     ///< iteration budget
};

/// Result of a root solve.
struct RootResult {
  double root = 0.0;
  double residual = 0.0;
  int iterations = 0;
  bool converged = false;
  /// True when a warm-start shortcut produced the result (exact guess
  /// hit or a valid warm bracket); false on every cold solve, including
  /// the cold fallback of brent_warm.
  bool warm = false;
};

/// Warm-start hint for brent_warm: a guess (typically the neighboring
/// cell's root) plus a half-width `window` for the shrunken bracket
/// [guess - window, guess + window] to try before the cold bracket.
struct WarmStart {
  double guess = 0.0;
  double window = 0.0;  ///< <= 0 disables the warm-bracket attempt
};

/// Bisection on [lo, hi].  f(lo) and f(hi) must bracket a sign change;
/// returns std::nullopt otherwise.  Robust and derivative-free.
std::optional<RootResult> bisect(const std::function<double(double)>& f,
                                 double lo, double hi,
                                 const RootOptions& opts = {});

/// Brent's method on [lo, hi] (bracketing required).  Faster convergence
/// than bisection with the same robustness guarantees.
std::optional<RootResult> brent(const std::function<double(double)>& f,
                                double lo, double hi,
                                const RootOptions& opts = {});

/// Warm-started Brent on [lo, hi] — the guess/bracket-reuse entry point
/// of the sweep hot path.  The contract, in order:
///   1. guess inside [lo, hi] with f(guess) == 0.0 exactly: returns the
///      guess with zero iterations (warm == true).
///   2. warm.window > 0 and the shrunken bracket
///      [max(lo, guess - window), min(hi, guess + window)] shows a sign
///      change: Brent on that bracket (warm == true) — typically 1-3
///      iterations for a near-root guess.
///   3. Anything else — guess outside [lo, hi] or non-finite, stale
///      window without a sign change, or a monotonicity-violating guess
///      (f(guess) opposing the sign of both warm endpoints, the
///      local-dip signature) — falls back to brent(f, lo, hi, opts) and
///      is bit-identical to the cold solve (warm == false).
std::optional<RootResult> brent_warm(const std::function<double(double)>& f,
                                     double lo, double hi,
                                     const WarmStart& warm,
                                     const RootOptions& opts = {});

/// Newton-Raphson with analytic derivative, safeguarded by an optional
/// bracket: steps leaving [lo, hi] are replaced by bisection steps.
std::optional<RootResult> newton(const std::function<double(double)>& f,
                                 const std::function<double(double)>& df,
                                 double x0, double lo, double hi,
                                 const RootOptions& opts = {});

/// Finds a bracketing interval for a monotone function by geometric
/// expansion from [lo, hi]; returns the expanded (lo, hi) or nullopt.
std::optional<std::pair<double, double>> expand_bracket(
    const std::function<double(double)>& f, double lo, double hi,
    int max_doublings = 60);

}  // namespace photecc::math

#endif  // PHOTECC_MATH_ROOTS_HPP
