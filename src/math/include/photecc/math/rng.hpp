// Deterministic, fast random number generation for Monte-Carlo channel
// simulation.  xoshiro256** (Blackman & Vigna) with a splitmix64 seeder:
// reproducible across platforms, much faster than std::mt19937_64, and
// satisfies the UniformRandomBitGenerator concept so it composes with
// <random> distributions.
#ifndef PHOTECC_MATH_RNG_HPP
#define PHOTECC_MATH_RNG_HPP

#include <array>
#include <cstdint>

namespace photecc::math {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless sub-seed derivation: a splitmix64 finalisation of the base
/// seed XOR-folded with a golden-ratio multiple of the stream index.
/// Composite users (nested traffic generators, sweep cells) MUST derive
/// child seeds with distinct stream indices through this mixer instead
/// of handing out base+1, base+2, ... — arithmetic neighbours collide
/// between siblings at different nesting depths and give correlated
/// child RNG streams.  derive_seed(base, i) and derive_seed(base, j)
/// are decorrelated for any i != j, as are equal streams of different
/// bases.
[[nodiscard]] constexpr std::uint64_t derive_seed(
    std::uint64_t base, std::uint64_t stream) noexcept {
  std::uint64_t state = base ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
  return splitmix64(state);
}

/// xoshiro256** PRNG.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
      noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  constexpr bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Standard normal via Marsaglia polar method (cached second draw).
  double normal() noexcept;

  /// Uniform integer in [0, bound) without modulo bias (Lemire).
  std::uint64_t bounded(std::uint64_t bound) noexcept;

  /// Jump function: advances the stream by 2^128 steps (for making
  /// independent parallel sub-streams from one seed).
  void jump() noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace photecc::math

#endif  // PHOTECC_MATH_RNG_HPP
