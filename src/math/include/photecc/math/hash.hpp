// Stable 64-bit hashing for cache keys and content fingerprints.
//
// FNV-1a is deliberately simple: a byte-at-a-time multiply/xor with
// fixed public constants, so the value of fnv1a64(bytes) is a stable
// part of our serialization contracts — the same bytes hash to the same
// 64-bit value on every platform, build and run (unlike std::hash,
// which promises nothing across processes).  The serve layer keys its
// plan cache on fnv1a64 of the canonical spec dump and tests pin
// specific values, so the constants here must never change.
//
// FNV is *not* collision-resistant; callers that need exactness (the
// plan cache does) must compare the full byte strings on a hash match.
#ifndef PHOTECC_MATH_HASH_HPP
#define PHOTECC_MATH_HASH_HPP

#include <cstdint>
#include <string>
#include <string_view>

namespace photecc::math {

/// FNV-1a offset basis / prime (64-bit variant, public constants).
inline constexpr std::uint64_t kFnv1a64OffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnv1a64Prime = 0x100000001b3ULL;

/// FNV-1a over `bytes`, continuing from `seed` — chain calls to hash
/// discontiguous buffers as if concatenated:
/// fnv1a64("ab") == fnv1a64("b", fnv1a64("a")).
[[nodiscard]] constexpr std::uint64_t fnv1a64(
    std::string_view bytes, std::uint64_t seed = kFnv1a64OffsetBasis) {
  std::uint64_t hash = seed;
  for (const char c : bytes) {
    hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    hash *= kFnv1a64Prime;
  }
  return hash;
}

/// Fixed-width lower-case hex rendering ("00ff00ff00ff00ff") — the
/// canonical wire form of a 64-bit hash (serve's "spec_hash" field).
[[nodiscard]] inline std::string hex64(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xf];
    value >>= 4;
  }
  return out;
}

}  // namespace photecc::math

#endif  // PHOTECC_MATH_HASH_HPP
