// Streaming statistics and proportion confidence intervals used by the
// Monte-Carlo BER measurements.
#ifndef PHOTECC_MATH_STATS_HPP
#define PHOTECC_MATH_STATS_HPP

#include <cstddef>
#include <cstdint>

namespace photecc::math {

/// Zero-based index of the nearest-rank percentile in a sorted sample
/// of `count` elements: the 1-indexed rank is ceil(percentile * count),
/// clamped to [1, count] — the classic no-interpolation definition
/// (for count = 20, percentile 0.95 selects the 19th smallest value).
/// Throws std::invalid_argument for count == 0 or percentile outside
/// (0, 1].
[[nodiscard]] std::size_t nearest_rank_index(std::size_t count,
                                             double percentile);

/// Welford streaming accumulator for mean / variance / extrema.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided confidence interval for a binomial proportion.
struct ProportionInterval {
  double lower = 0.0;
  double upper = 0.0;
  [[nodiscard]] bool contains(double p) const noexcept {
    return p >= lower && p <= upper;
  }
};

/// Wilson score interval for `successes` out of `trials` at confidence
/// `confidence` (e.g. 0.99).  Well behaved for tiny proportions, which
/// is exactly the BER-measurement regime.
ProportionInterval wilson_interval(std::uint64_t successes,
                                   std::uint64_t trials,
                                   double confidence = 0.99);

}  // namespace photecc::math

#endif  // PHOTECC_MATH_STATS_HPP
