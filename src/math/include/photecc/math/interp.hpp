// Piecewise-linear interpolation over tabulated curves (e.g. a measured
// laser wall-plug curve loaded as a lookup table).
#ifndef PHOTECC_MATH_INTERP_HPP
#define PHOTECC_MATH_INTERP_HPP

#include <cstddef>
#include <vector>

namespace photecc::math {

/// Immutable piecewise-linear curve y(x) over strictly increasing knots.
/// Outside the knot range the curve extrapolates linearly from the first
/// or last segment (clamping is available via `evaluate_clamped`).
class PiecewiseLinear {
 public:
  PiecewiseLinear() = default;

  /// Builds the curve; throws std::invalid_argument if sizes differ,
  /// fewer than two knots are given, or xs is not strictly increasing.
  PiecewiseLinear(std::vector<double> xs, std::vector<double> ys);

  /// y at x with linear extrapolation beyond the ends.
  [[nodiscard]] double evaluate(double x) const;

  /// y at x with the ends clamped to the first/last knot value.
  [[nodiscard]] double evaluate_clamped(double x) const;

  /// Inverse lookup x(y) for a monotone curve; throws std::logic_error
  /// if the stored ys are not strictly monotone.
  [[nodiscard]] double inverse(double y) const;

  [[nodiscard]] std::size_t size() const noexcept { return xs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return xs_.empty(); }
  [[nodiscard]] const std::vector<double>& xs() const noexcept { return xs_; }
  [[nodiscard]] const std::vector<double>& ys() const noexcept { return ys_; }
  [[nodiscard]] double x_min() const { return xs_.front(); }
  [[nodiscard]] double x_max() const { return xs_.back(); }

  /// True when the stored ys are strictly increasing or decreasing.
  [[nodiscard]] bool is_strictly_monotone() const noexcept;

 private:
  [[nodiscard]] std::size_t segment_for(double x) const noexcept;

  std::vector<double> xs_;
  std::vector<double> ys_;
};

/// `count` evenly spaced values covering [lo, hi] inclusive.
std::vector<double> linspace(double lo, double hi, std::size_t count);

/// `count` log10-spaced values covering [lo, hi] inclusive (lo, hi > 0).
std::vector<double> logspace(double lo, double hi, std::size_t count);

}  // namespace photecc::math

#endif  // PHOTECC_MATH_INTERP_HPP
