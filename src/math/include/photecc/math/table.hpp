// Plain-text table rendering used by the benchmark harness to print the
// paper's tables and figure data series in aligned columns, plus a CSV
// writer for plotting.
#ifndef PHOTECC_MATH_TABLE_HPP
#define PHOTECC_MATH_TABLE_HPP

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace photecc::math {

/// Column-aligned text table.  Build rows of strings (helpers provided
/// for formatted numbers), then stream it.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator line.
  void add_separator();

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with ASCII rules, padded to the widest cell per column.
  void render(std::ostream& os) const;

  /// Renders as CSV (no separators; quotes cells containing commas).
  void render_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

/// Fixed-precision formatting: e.g. format_fixed(3.14159, 2) == "3.14".
std::string format_fixed(double value, int decimals);

/// Scientific formatting: e.g. format_sci(1.3e-11, 2) == "1.30e-11".
std::string format_sci(double value, int decimals);

/// Engineering-style value with SI suffix for watts ("14.35 mW").
std::string format_power(double watts, int decimals = 2);

}  // namespace photecc::math

#endif  // PHOTECC_MATH_TABLE_HPP
