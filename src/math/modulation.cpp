#include "photecc/math/modulation.hpp"

#include <cmath>
#include <stdexcept>

#include "photecc/math/special.hpp"

namespace photecc::math {
namespace {

double log2_levels(std::size_t m) {
  return static_cast<double>(pam_bits_per_symbol(m));
}

}  // namespace

std::size_t pam_bits_per_symbol(std::size_t levels) {
  if (levels < 2 || (levels & (levels - 1)) != 0)
    throw std::invalid_argument(
        "modulation: levels must be a power of two >= 2");
  std::size_t bits = 0;
  for (std::size_t v = levels; v > 1; v >>= 1) ++bits;
  return bits;
}

std::size_t levels(Modulation modulation) {
  switch (modulation) {
    case Modulation::kOok: return 2;
    case Modulation::kPam4: return 4;
    case Modulation::kPam8: return 8;
  }
  throw std::logic_error("levels: bad Modulation");
}

std::size_t bits_per_symbol(Modulation modulation) {
  switch (modulation) {
    case Modulation::kOok: return 1;
    case Modulation::kPam4: return 2;
    case Modulation::kPam8: return 3;
  }
  throw std::logic_error("bits_per_symbol: bad Modulation");
}

std::string to_string(Modulation modulation) {
  switch (modulation) {
    case Modulation::kOok: return "ook";
    case Modulation::kPam4: return "pam4";
    case Modulation::kPam8: return "pam8";
  }
  throw std::logic_error("to_string: bad Modulation");
}

std::optional<Modulation> modulation_from_string(std::string_view name) {
  if (name == "ook") return Modulation::kOok;
  if (name == "pam4") return Modulation::kPam4;
  if (name == "pam8") return Modulation::kPam8;
  return std::nullopt;
}

const std::vector<Modulation>& all_modulations() {
  static const std::vector<Modulation> all{
      Modulation::kOok, Modulation::kPam4, Modulation::kPam8};
  return all;
}

double pam_ser_from_snr(double snr, std::size_t levels) {
  (void)pam_bits_per_symbol(levels);
  if (snr < 0.0)
    throw std::domain_error("pam_ser_from_snr: negative SNR");
  const double m = static_cast<double>(levels);
  return (m - 1.0) / m * std::erfc(std::sqrt(snr) / (m - 1.0));
}

double pam_ber_from_snr(double snr, std::size_t levels) {
  return pam_ser_from_snr(snr, levels) / log2_levels(levels);
}

double max_pam_ber(std::size_t levels) {
  (void)pam_bits_per_symbol(levels);
  const double m = static_cast<double>(levels);
  return (m - 1.0) / (m * log2_levels(levels));
}

double snr_from_pam_ber(double ber, std::size_t levels) {
  (void)pam_bits_per_symbol(levels);
  if (ber <= 0.0 || ber > max_pam_ber(levels))
    throw std::domain_error(
        "snr_from_pam_ber: BER outside (0, max_pam_ber]");
  const double m = static_cast<double>(levels);
  // Invert BER * log2(M) * M/(M-1) = erfc(sqrt(snr)/(M-1)).
  const double x =
      erfc_inv(ber * log2_levels(levels) * m / (m - 1.0));
  const double scaled = (m - 1.0) * x;
  return scaled * scaled;
}

double ber_from_snr(Modulation modulation, double snr) {
  return pam_ber_from_snr(snr, levels(modulation));
}

double snr_from_ber(Modulation modulation, double ber) {
  return snr_from_pam_ber(ber, levels(modulation));
}

double snr_from_ber_clamped(Modulation modulation, double ber) {
  const std::size_t m = levels(modulation);
  if (ber >= max_pam_ber(m)) return 0.0;
  return snr_from_pam_ber(ber, m);
}

}  // namespace photecc::math
