#include "photecc/math/interp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace photecc::math {

PiecewiseLinear::PiecewiseLinear(std::vector<double> xs,
                                 std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  if (xs_.size() != ys_.size())
    throw std::invalid_argument("PiecewiseLinear: xs/ys size mismatch");
  if (xs_.size() < 2)
    throw std::invalid_argument("PiecewiseLinear: need at least two knots");
  for (std::size_t i = 1; i < xs_.size(); ++i) {
    if (!(xs_[i] > xs_[i - 1]))
      throw std::invalid_argument(
          "PiecewiseLinear: xs must be strictly increasing");
  }
}

std::size_t PiecewiseLinear::segment_for(double x) const noexcept {
  // Index i of the segment [xs_[i], xs_[i+1]] used for x, clamped so
  // extrapolation uses the first/last segment.
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  if (it == xs_.begin()) return 0;
  std::size_t i = static_cast<std::size_t>(it - xs_.begin()) - 1;
  return std::min(i, xs_.size() - 2);
}

double PiecewiseLinear::evaluate(double x) const {
  if (empty()) throw std::logic_error("PiecewiseLinear: empty");
  const std::size_t i = segment_for(x);
  const double t = (x - xs_[i]) / (xs_[i + 1] - xs_[i]);
  return ys_[i] + t * (ys_[i + 1] - ys_[i]);
}

double PiecewiseLinear::evaluate_clamped(double x) const {
  if (empty()) throw std::logic_error("PiecewiseLinear: empty");
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  return evaluate(x);
}

bool PiecewiseLinear::is_strictly_monotone() const noexcept {
  if (ys_.size() < 2) return false;
  const bool increasing = ys_[1] > ys_[0];
  for (std::size_t i = 1; i < ys_.size(); ++i) {
    if (increasing ? !(ys_[i] > ys_[i - 1]) : !(ys_[i] < ys_[i - 1]))
      return false;
  }
  return true;
}

double PiecewiseLinear::inverse(double y) const {
  if (!is_strictly_monotone())
    throw std::logic_error("PiecewiseLinear::inverse: ys not monotone");
  const bool increasing = ys_[1] > ys_[0];
  // Binary search on ys (reversed comparison when decreasing).
  std::size_t lo = 0, hi = ys_.size() - 1;
  while (hi - lo > 1) {
    const std::size_t mid = (lo + hi) / 2;
    const bool go_right = increasing ? (ys_[mid] <= y) : (ys_[mid] >= y);
    if (go_right) lo = mid; else hi = mid;
  }
  const double t = (y - ys_[lo]) / (ys_[hi] - ys_[lo]);
  return xs_[lo] + t * (xs_[hi] - xs_[lo]);
}

std::vector<double> linspace(double lo, double hi, std::size_t count) {
  if (count == 0) return {};
  if (count == 1) return {lo};
  std::vector<double> out(count);
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i)
    out[i] = lo + step * static_cast<double>(i);
  out.back() = hi;  // avoid accumulated rounding at the endpoint
  return out;
}

std::vector<double> logspace(double lo, double hi, std::size_t count) {
  if (lo <= 0.0 || hi <= 0.0)
    throw std::invalid_argument("logspace: bounds must be positive");
  auto exps = linspace(std::log10(lo), std::log10(hi), count);
  for (double& e : exps) e = std::pow(10.0, e);
  if (!exps.empty()) {
    exps.front() = lo;
    exps.back() = hi;
  }
  return exps;
}

}  // namespace photecc::math
