#include "photecc/math/special.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace photecc::math {
namespace {

constexpr double sqrt_pi = 1.772453850905516027298;

// Initial guess for erf_inv via the Giles (2012) single-precision-style
// polynomial, then refined below; accurate enough to converge in <=3
// Halley steps everywhere.
double erf_inv_initial(double x) {
  const double w = -std::log((1.0 - x) * (1.0 + x));
  double p;
  if (w < 6.25) {
    const double ww = w - 3.125;
    p = -3.6444120640178196996e-21;
    p = -1.685059138182016589e-19 + p * ww;
    p = 1.2858480715256400167e-18 + p * ww;
    p = 1.115787767802518096e-17 + p * ww;
    p = -1.333171662854620906e-16 + p * ww;
    p = 2.0972767875968561637e-17 + p * ww;
    p = 6.6376381343583238325e-15 + p * ww;
    p = -4.0545662729752068639e-14 + p * ww;
    p = -8.1519341976054721522e-14 + p * ww;
    p = 2.6335093153082322977e-12 + p * ww;
    p = -1.2975133253453532498e-11 + p * ww;
    p = -5.4154120542946279317e-11 + p * ww;
    p = 1.051212273321532285e-09 + p * ww;
    p = -4.1126339803469836976e-09 + p * ww;
    p = -2.9070369957882005086e-08 + p * ww;
    p = 4.2347877827932403518e-07 + p * ww;
    p = -1.3654692000834678645e-06 + p * ww;
    p = -1.3882523362786468719e-05 + p * ww;
    p = 0.0001867342080340571352 + p * ww;
    p = -0.00074070253416626697512 + p * ww;
    p = -0.0060336708714301490533 + p * ww;
    p = 0.24015818242558961693 + p * ww;
    p = 1.6536545626831027356 + p * ww;
  } else if (w < 16.0) {
    const double s = std::sqrt(w) - 3.25;
    p = 2.2137376921775787049e-09;
    p = 9.0756561938885390979e-08 + p * s;
    p = -2.7517406297064545428e-07 + p * s;
    p = 1.8239629214389227755e-08 + p * s;
    p = 1.5027403968909827627e-06 + p * s;
    p = -4.013867526981545969e-06 + p * s;
    p = 2.9234449089955446044e-06 + p * s;
    p = 1.2475304481671778723e-05 + p * s;
    p = -4.7318229009055733981e-05 + p * s;
    p = 6.8284851459573175448e-05 + p * s;
    p = 2.4031110387097893999e-05 + p * s;
    p = -0.0003550375203628474796 + p * s;
    p = 0.00095328937973738049703 + p * s;
    p = -0.0016882755560235047313 + p * s;
    p = 0.0024914420961078508066 + p * s;
    p = -0.0037512085075692412107 + p * s;
    p = 0.005370914553590063617 + p * s;
    p = 1.0052589676941592334 + p * s;
    p = 3.0838856104922207635 + p * s;
  } else {
    const double s = std::sqrt(w) - 5.0;
    p = -2.7109920616438573243e-11;
    p = -2.5556418169965252055e-10 + p * s;
    p = 1.5076572693500548083e-09 + p * s;
    p = -3.7894654401267369937e-09 + p * s;
    p = 7.6157012080783393804e-09 + p * s;
    p = -1.4960026627149240478e-08 + p * s;
    p = 2.9147953450901080826e-08 + p * s;
    p = -6.7711997758452339498e-08 + p * s;
    p = 2.2900482228026654717e-07 + p * s;
    p = -9.9298272942317002539e-07 + p * s;
    p = 4.5260625972231537039e-06 + p * s;
    p = -1.9681778105531670567e-05 + p * s;
    p = 7.5995277030017761139e-05 + p * s;
    p = -0.00021503011930044477347 + p * s;
    p = -0.00013871931833623122026 + p * s;
    p = 1.0103004648645343977 + p * s;
    p = 4.849906401408584002 + p * s;
  }
  return p * x;
}

// One Halley refinement step for solving erf(z) = x.
double halley_step_erf(double z, double x) {
  const double err = std::erf(z) - x;
  const double deriv = 2.0 / sqrt_pi * std::exp(-z * z);
  if (deriv == 0.0) return z;
  // Halley: z' = z - f/f' * (1 + f*f''/(2 f'^2));  f'' = -2 z f'.
  const double u = err / deriv;
  return z - u / (1.0 + z * u);
}

}  // namespace

double erf_inv(double x) {
  if (std::isnan(x)) return std::numeric_limits<double>::quiet_NaN();
  if (x <= -1.0 || x >= 1.0) {
    if (x == 1.0) return std::numeric_limits<double>::infinity();
    if (x == -1.0) return -std::numeric_limits<double>::infinity();
    throw std::domain_error("erf_inv: argument outside [-1, 1]");
  }
  if (x == 0.0) return 0.0;
  double z = erf_inv_initial(x);
  // erf underflows its sensitivity for |z| > ~6; the polynomial alone is
  // already at full double accuracy there relative to erfc-based use.
  for (int i = 0; i < 3; ++i) z = halley_step_erf(z, x);
  return z;
}

double erfc_inv(double y) {
  if (std::isnan(y)) return std::numeric_limits<double>::quiet_NaN();
  if (y < 0.0 || y > 2.0)
    throw std::domain_error("erfc_inv: argument outside [0, 2]");
  if (y == 0.0) return std::numeric_limits<double>::infinity();
  if (y == 2.0) return -std::numeric_limits<double>::infinity();
  if (y >= 0.25 && y <= 1.75) {
    return erf_inv(1.0 - y);  // well-conditioned region
  }
  // Tail region: solve erfc(z) = y on the side where y is small.
  const bool upper = (y < 1.0);
  const double yy = upper ? y : 2.0 - y;  // yy in (0, 0.25)
  // Initial guess from the asymptotic expansion
  //   erfc(z) ~ exp(-z^2) / (z sqrt(pi))
  //   => z^2 + log(z) ~ -log(yy sqrt(pi))
  const double l = -std::log(yy * sqrt_pi);
  double z = std::sqrt(l > 1.0 ? l - 0.5 * std::log(l) : l);
  // Newton on g(z) = log(erfc(z)) - log(yy) using the scaled erfc to
  // avoid underflow:  erfc(z) = exp(-z^2) erfcx(z);  we use the identity
  // d/dz log erfc(z) = -2 exp(-z^2) / (sqrt(pi) erfc(z)).
  for (int i = 0; i < 60; ++i) {
    const double e = std::erfc(z);
    if (e <= 0.0) {  // beyond double range; fall back to asymptotic form
      break;
    }
    const double g = std::log(e) - std::log(yy);
    const double dg = -2.0 * std::exp(-z * z) / (sqrt_pi * e);
    const double step = g / dg;
    z -= step;
    if (std::abs(step) < 1e-15 * std::max(1.0, std::abs(z))) break;
  }
  return upper ? z : -z;
}

double q_function(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

double q_inv(double p) {
  if (p <= 0.0 || p >= 1.0)
    throw std::domain_error("q_inv: argument outside (0, 1)");
  return std::sqrt(2.0) * erfc_inv(2.0 * p);
}

double raw_ber_from_snr(double snr) {
  if (snr < 0.0) throw std::domain_error("raw_ber_from_snr: negative SNR");
  return 0.5 * std::erfc(std::sqrt(snr));
}

double snr_from_raw_ber(double ber) {
  if (ber <= 0.0 || ber > 0.5)
    throw std::domain_error("snr_from_raw_ber: BER outside (0, 0.5]");
  const double z = erfc_inv(2.0 * ber);
  return z * z;
}

double log10_raw_ber_from_snr(double snr) {
  if (snr < 0.0)
    throw std::domain_error("log10_raw_ber_from_snr: negative SNR");
  const double p = raw_ber_from_snr(snr);
  if (p > 0.0) return std::log10(p);
  // Asymptotic: p ~ exp(-snr) / (2 sqrt(pi snr)).
  const double ln10 = std::log(10.0);
  return (-snr - std::log(2.0 * std::sqrt(snr) * sqrt_pi)) / ln10;
}

}  // namespace photecc::math
