#include "photecc/math/rng.hpp"

#include <cmath>

namespace photecc::math {

double Xoshiro256::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * uniform01() - 1.0;
    v = 2.0 * uniform01() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

std::uint64_t Xoshiro256::bounded(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
      0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (const std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      (*this)();
    }
  }
  state_ = {s0, s1, s2, s3};
}

}  // namespace photecc::math
