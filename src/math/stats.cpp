#include "photecc/math/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "photecc/math/special.hpp"

namespace photecc::math {

std::size_t nearest_rank_index(std::size_t count, double percentile) {
  if (count == 0)
    throw std::invalid_argument("nearest_rank_index: empty sample");
  if (!(percentile > 0.0) || percentile > 1.0)
    throw std::invalid_argument(
        "nearest_rank_index: percentile outside (0, 1]");
  const auto rank = static_cast<std::size_t>(
      std::ceil(percentile * static_cast<double>(count)));
  return std::clamp<std::size_t>(rank, 1, count) - 1;
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

ProportionInterval wilson_interval(std::uint64_t successes,
                                   std::uint64_t trials,
                                   double confidence) {
  if (trials == 0)
    throw std::invalid_argument("wilson_interval: zero trials");
  if (successes > trials)
    throw std::invalid_argument("wilson_interval: successes > trials");
  if (confidence <= 0.0 || confidence >= 1.0)
    throw std::invalid_argument("wilson_interval: confidence outside (0,1)");
  const double z = q_inv((1.0 - confidence) / 2.0);
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return ProportionInterval{std::max(0.0, centre - half),
                            std::min(1.0, centre + half)};
}

}  // namespace photecc::math
