#include "photecc/math/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace photecc::math {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty())
    throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("TextTable: row arity mismatch");
  rows_.push_back(std::move(row));
}

void TextTable::add_separator() { rows_.emplace_back(); }

void TextTable::render(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }
  const auto rule = [&] {
    os << '+';
    for (const std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) {
    if (row.empty()) rule(); else line(row);
  }
  rule();
}

void TextTable::render_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      const bool quote = cells[c].find(',') != std::string::npos;
      if (quote) os << '"';
      os << cells[c];
      if (quote) os << '"';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) {
    if (!row.empty()) emit(row);
  }
}

std::string format_fixed(double value, int decimals) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(decimals) << value;
  return ss.str();
}

std::string format_sci(double value, int decimals) {
  std::ostringstream ss;
  ss << std::scientific << std::setprecision(decimals) << value;
  return ss.str();
}

std::string format_power(double watts, int decimals) {
  const double aw = std::abs(watts);
  if (aw >= 1.0) return format_fixed(watts, decimals) + " W";
  if (aw >= 1e-3) return format_fixed(watts * 1e3, decimals) + " mW";
  if (aw >= 1e-6) return format_fixed(watts * 1e6, decimals) + " uW";
  if (aw >= 1e-9) return format_fixed(watts * 1e9, decimals) + " nW";
  if (aw == 0.0) return "0 W";
  return format_fixed(watts * 1e12, decimals) + " pW";
}

}  // namespace photecc::math
