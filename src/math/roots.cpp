#include "photecc/math/roots.hpp"

#include <algorithm>
#include <cmath>

namespace photecc::math {

std::optional<RootResult> bisect(const std::function<double(double)>& f,
                                 double lo, double hi,
                                 const RootOptions& opts) {
  if (!(lo < hi)) return std::nullopt;
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return RootResult{lo, 0.0, 0, true};
  if (fhi == 0.0) return RootResult{hi, 0.0, 0, true};
  if (std::signbit(flo) == std::signbit(fhi)) return std::nullopt;

  RootResult r;
  for (r.iterations = 0; r.iterations < opts.max_iterations; ++r.iterations) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (fmid == 0.0 || (hi - lo) < opts.x_tolerance ||
        (opts.f_tolerance > 0.0 && std::abs(fmid) < opts.f_tolerance)) {
      r.root = mid;
      r.residual = fmid;
      r.converged = true;
      return r;
    }
    if (std::signbit(fmid) == std::signbit(flo)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  r.root = 0.5 * (lo + hi);
  r.residual = f(r.root);
  r.converged = (hi - lo) < 1e4 * opts.x_tolerance;
  return r;
}

std::optional<RootResult> brent(const std::function<double(double)>& f,
                                double lo, double hi,
                                const RootOptions& opts) {
  double a = lo, b = hi;
  double fa = f(a), fb = f(b);
  if (fa == 0.0) return RootResult{a, 0.0, 0, true};
  if (fb == 0.0) return RootResult{b, 0.0, 0, true};
  if (std::signbit(fa) == std::signbit(fb)) return std::nullopt;

  double c = a, fc = fa;
  double d = b - a, e = d;
  RootResult r;
  for (r.iterations = 0; r.iterations < opts.max_iterations; ++r.iterations) {
    if (std::abs(fc) < std::abs(fb)) {
      a = b; b = c; c = a;
      fa = fb; fb = fc; fc = fa;
    }
    const double tol = 2.0 * std::numeric_limits<double>::epsilon() *
                           std::abs(b) + 0.5 * opts.x_tolerance;
    const double m = 0.5 * (c - b);
    if (std::abs(m) <= tol || fb == 0.0 ||
        (opts.f_tolerance > 0.0 && std::abs(fb) < opts.f_tolerance)) {
      r.root = b;
      r.residual = fb;
      r.converged = true;
      return r;
    }
    if (std::abs(e) >= tol && std::abs(fa) > std::abs(fb)) {
      // Attempt inverse quadratic interpolation / secant.
      const double s = fb / fa;
      double p, q;
      if (a == c) {
        p = 2.0 * m * s;
        q = 1.0 - s;
      } else {
        const double qq = fa / fc;
        const double rr = fb / fc;
        p = s * (2.0 * m * qq * (qq - rr) - (b - a) * (rr - 1.0));
        q = (qq - 1.0) * (rr - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q; else p = -p;
      if (2.0 * p < std::min(3.0 * m * q - std::abs(tol * q),
                             std::abs(e * q))) {
        e = d;
        d = p / q;
      } else {
        d = m;
        e = m;
      }
    } else {
      d = m;
      e = m;
    }
    a = b;
    fa = fb;
    b += (std::abs(d) > tol) ? d : (m > 0.0 ? tol : -tol);
    fb = f(b);
    if (std::signbit(fb) == std::signbit(fc)) {
      c = a;
      fc = fa;
      d = b - a;
      e = d;
    }
  }
  r.root = b;
  r.residual = fb;
  r.converged = false;
  return r;
}

std::optional<RootResult> brent_warm(const std::function<double(double)>& f,
                                     double lo, double hi,
                                     const WarmStart& warm,
                                     const RootOptions& opts) {
  if (lo < hi && std::isfinite(warm.guess) && warm.guess >= lo &&
      warm.guess <= hi) {
    const double fg = f(warm.guess);
    if (fg == 0.0) return RootResult{warm.guess, 0.0, 0, true, true};
    if (warm.window > 0.0 && std::isfinite(warm.window)) {
      const double wlo = std::max(lo, warm.guess - warm.window);
      const double whi = std::min(hi, warm.guess + warm.window);
      if (wlo < whi && warm.guess > wlo && warm.guess < whi) {
        const double flo = f(wlo);
        const double fhi = f(whi);
        // A monotone f crossing once inside the window has endpoint
        // signs that differ AND the guess's sign matching one of them.
        // Same-sign endpoints mean the window is stale (no crossing) or
        // the guess sits in a local dip/bump (f(guess) opposing both
        // ends — a monotonicity violation); both reject to cold.
        const bool brackets = flo != 0.0 && fhi != 0.0 &&
                              std::signbit(flo) != std::signbit(fhi);
        if (brackets) {
          auto result = brent(f, wlo, whi, opts);
          if (result && result->converged) {
            result->warm = true;
            return result;
          }
        }
      }
    }
  }
  return brent(f, lo, hi, opts);  // cold fallback: bit-identical
}

std::optional<RootResult> newton(const std::function<double(double)>& f,
                                 const std::function<double(double)>& df,
                                 double x0, double lo, double hi,
                                 const RootOptions& opts) {
  if (!(lo <= x0 && x0 <= hi)) return std::nullopt;
  double x = x0;
  RootResult r;
  for (r.iterations = 0; r.iterations < opts.max_iterations; ++r.iterations) {
    const double fx = f(x);
    if (opts.f_tolerance > 0.0 && std::abs(fx) < opts.f_tolerance) {
      r.root = x;
      r.residual = fx;
      r.converged = true;
      return r;
    }
    const double dfx = df(x);
    double next;
    if (dfx == 0.0 || !std::isfinite(dfx)) {
      next = 0.5 * (lo + hi);  // derivative unusable: bisect the bracket
    } else {
      next = x - fx / dfx;
      if (next < lo || next > hi) next = 0.5 * (lo + hi);
    }
    // Maintain the bracket if f changes sign across it.
    if (std::abs(next - x) < opts.x_tolerance) {
      r.root = next;
      r.residual = f(next);
      r.converged = true;
      return r;
    }
    if (fx > 0.0) hi = std::min(hi, x); else lo = std::max(lo, x);
    x = next;
  }
  r.root = x;
  r.residual = f(x);
  r.converged = false;
  return r;
}

std::optional<std::pair<double, double>> expand_bracket(
    const std::function<double(double)>& f, double lo, double hi,
    int max_doublings) {
  if (!(lo < hi)) return std::nullopt;
  double flo = f(lo), fhi = f(hi);
  for (int i = 0; i < max_doublings; ++i) {
    if (std::signbit(flo) != std::signbit(fhi) || flo == 0.0 || fhi == 0.0)
      return std::make_pair(lo, hi);
    const double w = hi - lo;
    if (std::abs(flo) < std::abs(fhi)) {
      lo -= w;
      flo = f(lo);
    } else {
      hi += w;
      fhi = f(hi);
    }
  }
  return std::nullopt;
}

}  // namespace photecc::math
