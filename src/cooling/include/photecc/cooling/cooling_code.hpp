// Cooling codes as ecc::BlockCode schemes: enumerative weight-bounding
// outer coding, optionally concatenated with a systematic FEC inner code
// from the existing ecc menu.
//
// Two name forms, both registered with ecc::make_code via
// register_cooling_codes():
//
//   "COOL(64,16)"         pure cooling code: 64-wire words, weight <= 16
//                         (no error correction, min_distance 1)
//   "COOL(H(71,64),16)"   error-correcting cooling code: bounded-weight
//                         64-bit words fed through the systematic
//                         H(71,64) encoder; wire weight <= 16 + 7
//
// The guaranteed wire duty bound (transmit_duty_bound) is
// (w + n - m) / n for an (n, m) systematic inner code — message
// positions carry the bounded-weight word verbatim, and the n - m
// parity positions can at worst all be hot.  The thermal stack
// multiplies channel activity by this bound (see
// ecc::BlockCode::transmit_duty_bound).
#ifndef PHOTECC_COOLING_COOLING_CODE_HPP
#define PHOTECC_COOLING_COOLING_CODE_HPP

#include <cstddef>
#include <optional>
#include <string>

#include "photecc/cooling/enumerative.hpp"
#include "photecc/ecc/block_code.hpp"

namespace photecc::cooling {

/// Parsed form of a cooling-code name.
struct CoolingName {
  bool pure = false;         ///< "COOL(n,w)" (no inner FEC)
  std::string inner;         ///< inner code name when !pure
  std::size_t length = 0;    ///< n, when pure
  std::size_t weight = 0;    ///< the outer weight bound w
};

/// "COOL(n,w)" — pure cooling code name.
[[nodiscard]] std::string cooling_name(std::size_t length, std::size_t weight);
/// "COOL(<inner>,w)" — concatenated cooling code name.
[[nodiscard]] std::string cooling_name(const std::string& inner,
                                       std::size_t weight);

/// True when `name` is shaped like a cooling-code name ("COOL(...)").
/// Shape only — the inner name / parameters may still be invalid.
[[nodiscard]] bool is_cooling_name(const std::string& name);

/// Parses "COOL(n,w)" / "COOL(<inner>,w)".  Returns nullopt when the
/// name is not COOL-shaped; throws std::invalid_argument when it is
/// COOL-shaped but malformed (missing comma, nested COOL inner, zero
/// weight, non-numeric n).
[[nodiscard]] std::optional<CoolingName> parse_cooling_name(
    const std::string& name);

/// Weight-bounding block code: enumerative outer encoding into words of
/// weight <= weight(), then a systematic inner FEC encode (identity for
/// the pure form).  message_length() = floor(log2 sum_{i<=w} C(m, i))
/// for an m-bit inner message.
class CoolingScheme : public ecc::BlockCode {
 public:
  /// Builds from a parsed name.  Throws std::invalid_argument when the
  /// inner code is unknown, the weight is out of range, or the inner
  /// encoder fails the construction-time systematic-form check (message
  /// bits must appear verbatim in the codeword — the property the wire
  /// weight bound rests on; all menu codes pass).
  explicit CoolingScheme(const CoolingName& parsed);

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::size_t block_length() const noexcept override;
  [[nodiscard]] std::size_t message_length() const noexcept override {
    return coder_.message_bits();
  }
  [[nodiscard]] std::size_t min_distance() const noexcept override;
  [[nodiscard]] ecc::BitVec encode(const ecc::BitVec& message) const override;
  [[nodiscard]] ecc::DecodeResult decode(
      const ecc::BitVec& received) const override;

  /// Bitsliced wraps: the inner FEC runs its batch kernel; the
  /// enumerative rank/unrank stays lane-serial (it is a data-dependent
  /// walk of Pascal's triangle) but works on whole 64-bit lane values,
  /// so the FEC datapath still dominates.  Bit-identical to the scalar
  /// path.
  [[nodiscard]] codec::BitSlab encode_batch(
      const codec::BitSlab& messages) const override;
  [[nodiscard]] ecc::BatchDecodeResult decode_batch(
      const codec::BitSlab& received) const override;

  [[nodiscard]] double decoded_ber(double raw_p) const override;
  [[nodiscard]] double transmit_duty_bound() const noexcept override {
    return duty_bound_;
  }

  /// The outer weight bound w: every inner message word has <= w ones.
  [[nodiscard]] std::size_t weight_bound() const noexcept {
    return coder_.max_weight();
  }
  /// The inner FEC scheme (UncodedScheme for the pure form).
  [[nodiscard]] const ecc::BlockCode& inner() const noexcept {
    return *inner_;
  }

 private:
  ecc::BlockCodePtr inner_;
  BoundedWeightCoder coder_;
  std::string name_;
  double duty_bound_ = 1.0;
};

/// Builds a cooling code from its name.  Throws std::invalid_argument
/// for anything that is not a valid cooling-code name.
[[nodiscard]] ecc::BlockCodePtr make_cooling_code(const std::string& name);

/// Factory form for the ecc registry: nullptr when `name` is not
/// COOL-shaped, otherwise make_cooling_code (which may throw on
/// malformed parameters — the error carries the reason).
[[nodiscard]] ecc::BlockCodePtr try_make_cooling_code(const std::string& name);

/// Registers the COOL(...) family with ecc::make_code.  Idempotent and
/// thread-safe; every entry point that resolves code names (spec
/// validation, explore evaluators, lowered plans) calls it.
void register_cooling_codes();

}  // namespace photecc::cooling

#endif  // PHOTECC_COOLING_COOLING_CODE_HPP
