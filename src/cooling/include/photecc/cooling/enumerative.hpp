// Enumerative coding of bounded-weight binary words — the combinatorial
// core of the cooling-code subsystem.
//
// A cooling code C(m, w) transmits only words whose Hamming weight is at
// most w, bounding the number of simultaneously-hot wires (Chee/Etzion/
// Kiah/Vardy, "Cooling Codes", PAPERS.md).  The words of length m with
// weight <= w form a set of size
//
//   N(m, w) = sum_{i=0}^{w} C(m, i)
//
// and the encoder is the classic combinatorial number system: rank() maps
// a bounded-weight word to its index in increasing integer order,
// unrank() inverts it.  A k = floor(log2 N) bit message therefore embeds
// injectively into the bounded-weight set — the enumerative (arithmetic)
// encoding of the paper's Construction.
//
// All counts are computed in saturating uint64 arithmetic: ranks are
// bounded by 2^63 (k is capped at 63 so messages fit BitVec::to_uint),
// and a saturated count compares correctly against any representable
// rank, so unrank stays exact even when the full N(m, w) overflows.
#ifndef PHOTECC_COOLING_ENUMERATIVE_HPP
#define PHOTECC_COOLING_ENUMERATIVE_HPP

#include <cstddef>
#include <cstdint>

#include <vector>

#include "photecc/ecc/bitvec.hpp"

namespace photecc::cooling {

/// Enumerative encoder/decoder between integers and length-`length`
/// words of Hamming weight <= `max_weight`.  Bit `length - 1` is the
/// most significant digit of the ordering (words compare as integers).
class BoundedWeightCoder {
 public:
  /// Requires 1 <= max_weight <= length and length >= 2.
  /// Throws std::invalid_argument otherwise.
  BoundedWeightCoder(std::size_t length, std::size_t max_weight);

  [[nodiscard]] std::size_t length() const noexcept { return length_; }
  [[nodiscard]] std::size_t max_weight() const noexcept {
    return max_weight_;
  }

  /// N(length, max_weight), saturated at uint64 max when the true count
  /// overflows (the saturation is invisible to rank/unrank — see above).
  [[nodiscard]] std::uint64_t word_count() const noexcept { return count_; }

  /// Message width k = floor(log2 N(length, max_weight)), capped at 63
  /// so every message value round-trips through BitVec::to_uint.
  [[nodiscard]] std::size_t message_bits() const noexcept {
    return message_bits_;
  }

  /// The `value`-th bounded-weight word (value in [0, 2^message_bits)).
  /// Throws std::invalid_argument when value is out of range.
  [[nodiscard]] ecc::BitVec unrank(std::uint64_t value) const;

  /// Index of `word` in the bounded-weight ordering — the exact inverse
  /// of unrank.  Throws std::invalid_argument when the word has the
  /// wrong length or weight > max_weight.
  [[nodiscard]] std::uint64_t rank(const ecc::BitVec& word) const;

 private:
  /// cle_[j * (max_weight_ + 1) + r] = sum_{i=0}^{r} C(j, i), saturating.
  [[nodiscard]] std::uint64_t count_le(std::size_t j,
                                       std::size_t r) const noexcept {
    return cle_[j * (max_weight_ + 1) + r];
  }

  std::size_t length_ = 0;
  std::size_t max_weight_ = 0;
  std::uint64_t count_ = 0;
  std::size_t message_bits_ = 0;
  std::vector<std::uint64_t> cle_;
};

}  // namespace photecc::cooling

#endif  // PHOTECC_COOLING_ENUMERATIVE_HPP
